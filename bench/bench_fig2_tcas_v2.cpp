//===- bench_fig2_tcas_v2.cpp - Regenerates the Figure 2 case study ------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Figure 2 of the paper walks TCAS v2 (the NOZCROSS constant fault in
// Inhibit_Biased_Climb) through all of its failing tests and reports the
// union of suspect lines -- 8 locations in the paper, all "pointing to
// line 2 as the base cause". This harness reproduces that run: every
// failing test is localized, the union and per-line frequencies are
// printed, and the injected line is marked.
//
//===----------------------------------------------------------------------===//

#include "core/BugAssist.h"
#include "core/Pipeline.h"
#include "core/Ranking.h"
#include "lang/Sema.h"
#include "programs/Tcas.h"
#include "programs/TcasMutants.h"
#include "support/Timer.h"

#include <cstdio>

using namespace bugassist;

int main() {
  const TcasMutant &V2 = tcasMutants()[1];
  std::printf("TCAS v2: %s\n", V2.Description.c_str());
  std::printf("injected fault line: %u\n\n", V2.BugLines[0]);

  DiagEngine Diags;
  auto Golden = parseAndAnalyze(tcasSource(), Diags);
  auto Faulty = parseAndAnalyze(V2.Source, Diags);
  if (!Golden || !Faulty) {
    std::printf("%s", Diags.render().c_str());
    return 1;
  }

  FailingTests Failing = segregateFailingTests(
      *Golden, *Faulty, tcasTestPool(1600), "main", tcasExecOptions());
  std::printf("failing tests: %zu (the paper's v2 had 69)\n",
              Failing.Inputs.size());
  if (Failing.Inputs.empty())
    return 1;

  BugAssistDriver Driver(*Faulty, "main", tcasUnrollOptions());
  LocalizeOptions LO;
  LO.MaxDiagnoses = 24;
  Spec S;
  S.CheckObligations = false;

  Timer T;
  RankingReport R = rankSuspects(Driver.formula(), Failing.Inputs, S,
                                 &Failing.Goldens, LO);
  double Elapsed = T.seconds();

  std::printf("\nunion of reported lines over %zu runs: %zu locations "
              "(paper: 8)\n",
              R.Runs, R.Ranked.size());
  std::printf("%-6s %-6s %s\n", "line", "freq", "");
  for (const RankedLine &RL : R.Ranked)
    std::printf("%-6u %4.0f%%  %s\n", RL.Line, RL.Frequency * 100,
                RL.Line == V2.BugLines[0] ? "<-- injected fault (reported "
                                            "in every run, as in the paper)"
                                          : "");
  std::printf("\ntotal time %.1fs (%.3fs per run); %llu MaxSAT-driven SAT "
              "calls\n",
              Elapsed, Elapsed / static_cast<double>(R.Runs),
              static_cast<unsigned long long>(R.SatCalls));
  return 0;
}
