//===- bench_table3_large.cpp - Regenerates Table 3 ----------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Table 3 runs BugAssist on four larger programs, one injected fault each,
// with a trace-reduction recipe per row, and reports the error-trace /
// formula sizes before and after reduction plus the number of reported
// fault locations and the runtime:
//
//   row 1  tot_info      S   (static slicing)
//   row 2  print_tokens  C   (concolic concretization of the tokenizer)
//   row 3  schedule      DS  (ddmin input minimization + slicing)
//   row 4  schedule      DS  at a larger input scale
//   row 5  tot_info      CS  (concretize totals + slice)
//   row 6  schedule2     S
//
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"
#include "core/BugAssist.h"
#include "lang/Sema.h"
#include "programs/LargeBenchmarks.h"
#include "reduce/Concretizer.h"
#include "reduce/DeltaDebug.h"
#include "reduce/Slicer.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace bugassist;

namespace {

size_t countLines(const std::string &S) {
  size_t N = 1;
  for (char C : S)
    N += C == '\n';
  return N;
}

size_t countProcs(const Program &P) { return P.functions().size(); }

struct RowResult {
  size_t Loc = 0;
  size_t Procs = 0;
  size_t AssignBefore = 0, AssignAfter = 0;
  size_t VarBefore = 0, VarAfter = 0;
  size_t ClauseBefore = 0, ClauseAfter = 0;
  size_t Faults = 0;
  bool Detected = false;
  double Seconds = 0;
};

UnrollOptions baseOpts(const LargeBenchmark &B) {
  UnrollOptions O;
  O.BitWidth = 16;
  O.MaxLoopUnwind = B.MaxLoopUnwind;
  O.LoopUnwindByLine = B.LoopUnwindByLine;
  O.MaxInlineDepth = B.MaxInlineDepth;
  O.HardLines = B.HardLines;
  return O;
}

size_t PortfolioThreads = 1; // --threads N: portfolio per MaxSAT query

/// Runs one Table 3 row. \p Reduction is a combination of 'D', 'C', 'S'.
RowResult runRow(const LargeBenchmark &B, const char *Reduction,
                 InputVector Input) {
  RowResult Row;
  Row.Loc = countLines(B.FaultySource) - 1;

  DiagEngine Diags;
  auto Good = parseAndAnalyze(B.CorrectSource, Diags);
  auto Bad = parseAndAnalyze(B.FaultySource, Diags);
  if (!Good || !Bad) {
    std::printf("%s: %s", B.Name.c_str(), Diags.render().c_str());
    return Row;
  }
  Row.Procs = countProcs(*Bad);

  ExecOptions IO;
  IO.BitWidth = 16;
  IO.CheckDivByZero = false;
  Interpreter GI(*Good, IO);
  Interpreter BI(*Bad, IO);

  Timer T;

  // D: minimize the failure-inducing input first (Section 6.2). The win
  // materializes through the trace: a shorter op string halts the driver
  // loop earlier, so the unwind bounds -- chosen from the concrete trace,
  // as BMC practice does -- drop and the formula shrinks.
  bool Minimized = false;
  if (std::strchr(Reduction, 'D')) {
    auto Fails = [&](const InputVector &In) {
      ExecResult G = GI.run("main", In);
      ExecResult F = BI.run("main", In);
      return G.Status == ExecStatus::Ok && F.Status == ExecStatus::Ok &&
             G.ReturnValue != F.ReturnValue;
    };
    if (Fails(Input)) {
      Input = minimizeFailingInput(Input, Fails);
      Minimized = true;
    }
  }
  int64_t GoldenOut = GI.run("main", Input).ReturnValue;

  // Unroll; 'C' seeds the concolic shadow execution.
  bool Concretize = std::strchr(Reduction, 'C') != nullptr;
  UnrollOptions UO = baseOpts(B);
  UnrollOptions ReducedUO = UO;
  if (Minimized && !Input.empty() && Input[0].IsArray) {
    // Trace length of the minimized run: ops up to the first halt (0).
    size_t Steps = 0;
    while (Steps < Input[0].Array.size() && Input[0].Array[Steps] != 0)
      ++Steps;
    int Bound = static_cast<int>(Steps) + 2;
    for (auto &[Line, Old] : ReducedUO.LoopUnwindByLine)
      Old = std::min(Old, Bound);
    ReducedUO.MaxLoopUnwind = std::min(ReducedUO.MaxLoopUnwind, Bound);
  }
  if (Concretize) {
    ReducedUO.TrustedFunctions = B.TrustedFunctions;
    ReducedUO.ConcreteInputs = Input;
  }

  // "Before" metrics: the plain encoding of the full (unreduced) trace.
  {
    UnrolledProgram Full = unrollProgram(*Bad, "main", UO);
    EncodeOptions EO;
    EO.BitWidth = 16;
    EncodedProgram Plain = encodeProgram(Full, EO);
    Row.AssignBefore = Full.numAssignDefs();
    Row.VarBefore = static_cast<size_t>(Plain.Formula.numVars());
    Row.ClauseBefore = Plain.Formula.numClauses();
  }

  // Apply D (shorter trace), C (encoder-level), S (IR-level); measure.
  UnrolledProgram UP = unrollProgram(*Bad, "main", ReducedUO);
  UnrolledProgram Reduced = std::strchr(Reduction, 'S')
                                ? sliceProgram(UP)
                                : std::move(UP);
  EncodeOptions EO;
  EO.BitWidth = 16;
  EO.ConcretizeTrusted = Concretize;
  EncodedProgram After = encodeProgram(Reduced, EO);
  size_t AssignAfter = 0;
  for (const TraceDef &D : Reduced.Defs)
    if (D.Role == DefRole::UserAssign &&
        !(Concretize && D.Trusted && D.Shadow))
      ++AssignAfter;
  Row.AssignAfter = AssignAfter;
  Row.VarAfter = static_cast<size_t>(After.Formula.numVars());
  Row.ClauseAfter = After.Formula.numClauses();

  // Localize on the reduced formula.
  TraceFormula TF(std::move(After));
  Spec S;
  S.CheckObligations = false;
  S.GoldenReturn = GoldenOut;
  LocalizeOptions LO;
  LO.MaxDiagnoses = 8;
  // Per-SAT-call budget: blocked instances on division-heavy rows can be
  // exponentially hard (the paper's row 4 ran 11 hours); bound each call
  // so the whole table regenerates in minutes.
  LO.ConflictBudget = 400000;
  LO.Threads = PortfolioThreads;
  LocalizationReport Rep = localizeFault(TF, Input, S, LO);
  Row.Seconds = T.seconds();
  Row.Faults = Rep.AllLines.size();
  for (uint32_t L : B.BugLines)
    Row.Detected |= std::find(Rep.AllLines.begin(), Rep.AllLines.end(), L) !=
                    Rep.AllLines.end();
  // Enumeration order can push the fault past the cap; the deterministic
  // membership test decides whether it belongs to SOME CoMSS.
  if (!Row.Detected)
    Row.Detected = isValidCorrection(TF, Input, S, B.BugLines, 2000000);
  return Row;
}

void printRow(int N, const char *Name, const char *Reduction,
              const RowResult &R) {
  std::printf("%d %-13s %4zu %6zu  %-4s %8zu %8zu %9zu %9zu %9zu %9zu %7zu "
              "%5s %8.2fs\n",
              N, Name, R.Loc, R.Procs, Reduction, R.AssignBefore,
              R.AssignAfter, R.VarBefore, R.VarAfter, R.ClauseBefore,
              R.ClauseAfter, R.Faults, R.Detected ? "yes" : "NO", R.Seconds);
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    matchThreadsFlag(argc, argv, I, PortfolioThreads);
  std::printf("Table 3: BugAssist on larger benchmark programs "
              "(S=slice, C=concretize, D=ddmin)\n\n");
  std::printf("%-16s %4s %6s  %-4s %8s %8s %9s %9s %9s %9s %7s %5s %9s\n",
              "# Program", "LOC", "Proc#", "Red", "assignB", "assignA",
              "varB", "varA", "clauseB", "clauseA", "Fault#", "hit",
              "time");

  const LargeBenchmark &TotInfo = largeBenchmark("tot_info");
  const LargeBenchmark &PrintTokens = largeBenchmark("print_tokens");
  const LargeBenchmark &Schedule = largeBenchmark("schedule");
  const LargeBenchmark &Schedule2 = largeBenchmark("schedule2");

  printRow(1, "tot_info", "S", runRow(TotInfo, "S", TotInfo.FailingInput));
  printRow(2, "print_tokens", "C",
           runRow(PrintTokens, "C", PrintTokens.FailingInput));
  printRow(3, "schedule", "DS",
           runRow(Schedule, "DS", Schedule.FailingInput));

  // Row 4: the same scheduler at a larger input scale -- the op string
  // fills the whole window with no halt, so ddmin has real work and the
  // final flush runs at maximum queue depth (the paper's row 4 used a much
  // larger failure-inducing input; its 11h runtime came from the unreduced
  // MaxSAT instances).
  InputVector BigInput = {InputValue::array({1, 2, 1, 2, 3, 1, 2, 1})};
  printRow(4, "schedule", "DS", runRow(Schedule, "DS", BigInput));

  printRow(5, "tot_info", "CS", runRow(TotInfo, "CS", TotInfo.FailingInput));
  printRow(6, "schedule2", "S",
           runRow(Schedule2, "S", Schedule2.FailingInput));

  std::printf("\nShape targets (paper): reductions shrink assign#/var#/"
              "clause# by 1-3 orders of magnitude and the fault stays in "
              "the reported set (paper missed only print_tokens' exact "
              "line).\n");
  return 0;
}
