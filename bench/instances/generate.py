#!/usr/bin/env python3
"""Regenerates the three large known-answer instances in this directory.

Deterministic (no randomness): running it twice produces identical files.

All three instances share one structural idea: a small semantic core whose
answer is known by construction, with every internal wire routed through a
chain of definitional buffer variables (v <-> w pairs).  That is the shape
of unoptimized Tseitin output -- netlists full of single-fanout
definitions -- and it is exactly what the SatELite-style pass removes:
each buffer has two occurrences per polarity, so bounded variable
elimination collapses whole chains back to the core.  Without the pass,
every implication crawls the full chain and every solver in a portfolio
pays to load and search the bloated clause database; with it, one
prototype is simplified once and the workers inherit the shrunken formula.

  php_soft8.wcnf      soft pigeonhole PHP(8,7), optimum 1
  php_weighted8.wcnf  same core with non-unit weights, optimum 1
  adder_miter8.cnf    miter of two 8-bit adders, UNSAT
"""

import os

HERE = os.path.dirname(os.path.abspath(__file__))

# Buffer-chain length per wire. Long enough that elimination pays for
# itself on the bench wall clock, short enough that the no-preprocess
# differential runs stay fast in CI.
PHP_BUFFERS = 10
MITER_BUFFERS = 10


class Cnf:
    def __init__(self):
        self.num_vars = 0
        self.clauses = []

    def var(self):
        self.num_vars += 1
        return self.num_vars

    def add(self, *lits):
        self.clauses.append(list(lits))


def buffered(cnf, src, length):
    """Routes `src` through `length` buffer equivalences; returns the far
    end."""
    cur = src
    for _ in range(length):
        nxt = cnf.var()
        cnf.add(-cur, nxt)
        cnf.add(cur, -nxt)
        cur = nxt
    return cur


def soft_pigeonhole(pigeons, holes, weights):
    """x[i][j] = pigeon i sits in hole j. "Every pigeon is placed" is a
    soft clause (over the raw x, which the MaxSAT session freezes); "no
    two pigeons share a hole" is hard, phrased over the buffered copies of
    the x (which elimination collapses). One more pigeon than holes, so
    the optimum leaves exactly one pigeon out: the cheapest soft weight.
    Proving that optimal demands a full PHP(pigeons-1 placed) refutation
    -- real search, not propagation."""
    cnf = Cnf()
    x = [[cnf.var() for _ in range(holes)] for _ in range(pigeons)]
    xb = [[buffered(cnf, x[i][j], PHP_BUFFERS) for j in range(holes)]
          for i in range(pigeons)]
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                cnf.add(-xb[i1][j], -xb[i2][j])
    soft = [(weights[i], list(x[i])) for i in range(pigeons)]
    return cnf, soft


def write_wcnf(path, comment_lines, cnf, soft):
    top = sum(w for w, _ in soft) + 1
    with open(path, "w") as f:
        for line in comment_lines:
            f.write("c " + line + "\n")
        f.write("p wcnf %d %d %d\n" % (cnf.num_vars,
                                       len(cnf.clauses) + len(soft), top))
        for cl in cnf.clauses:
            f.write("%d %s 0\n" % (top, " ".join(map(str, cl))))
        for w, cl in soft:
            f.write("%d %s 0\n" % (w, " ".join(map(str, cl))))


def write_cnf(path, comment_lines, cnf):
    with open(path, "w") as f:
        for line in comment_lines:
            f.write("c " + line + "\n")
        f.write("p cnf %d %d\n" % (cnf.num_vars, len(cnf.clauses)))
        for cl in cnf.clauses:
            f.write("%s 0\n" % " ".join(map(str, cl)))


def gate_xor(cnf, x, y):
    z = cnf.var()
    cnf.add(-x, -y, -z)
    cnf.add(x, y, -z)
    cnf.add(x, -y, z)
    cnf.add(-x, y, z)
    return z


def gate_and(cnf, x, y):
    z = cnf.var()
    cnf.add(-z, x)
    cnf.add(-z, y)
    cnf.add(z, -x, -y)
    return z


def gate_or(cnf, x, y):
    z = cnf.var()
    cnf.add(z, -x)
    cnf.add(z, -y)
    cnf.add(-z, x, y)
    return z


def gate_maj(cnf, x, y, c):
    z = cnf.var()
    cnf.add(-z, x, y)
    cnf.add(-z, x, c)
    cnf.add(-z, y, c)
    cnf.add(z, -x, -y)
    cnf.add(z, -x, -c)
    cnf.add(z, -y, -c)
    return z


def adder_miter(bits):
    """Two structurally different ripple adders over shared inputs: adder A
    computes the carry as ab | c(a^b), adder B as maj(a,b,c). The sum bits
    are pin-equal, so asserting some bit differs is UNSAT. Every gate
    output is buffered before its consumers see it."""
    cnf = Cnf()
    a = [cnf.var() for _ in range(bits)]
    b = [cnf.var() for _ in range(bits)]

    def buf(v):
        return buffered(cnf, v, MITER_BUFFERS)

    # Adder A: s = (a ^ b) ^ c, carry = ab | c(a ^ b).
    sums_a = []
    carry = None  # c_0 = 0 folded into the first bit's gates
    for i in range(bits):
        t = buf(gate_xor(cnf, a[i], b[i]))
        if carry is None:
            sums_a.append(t)
            carry = buf(gate_and(cnf, a[i], b[i]))
        else:
            sums_a.append(buf(gate_xor(cnf, t, carry)))
            g = buf(gate_and(cnf, a[i], b[i]))
            p = buf(gate_and(cnf, carry, t))
            carry = buf(gate_or(cnf, g, p))

    # Adder B: s = a ^ (b ^ c), carry = maj(a, b, c).
    sums_b = []
    carry = None
    for i in range(bits):
        if carry is None:
            sums_b.append(buf(gate_xor(cnf, a[i], b[i])))
            carry = buf(gate_and(cnf, b[i], a[i]))
        else:
            u = buf(gate_xor(cnf, b[i], carry))
            sums_b.append(buf(gate_xor(cnf, a[i], u)))
            carry = buf(gate_maj(cnf, a[i], b[i], carry))

    # Miter: some sum bit differs.
    diff = None
    for i in range(bits):
        d = buf(gate_xor(cnf, sums_a[i], sums_b[i]))
        diff = d if diff is None else buf(gate_or(cnf, diff, d))
    cnf.add(diff)
    return cnf


def main():
    pigeons, holes = 8, 7
    cnf, soft = soft_pigeonhole(pigeons, holes, [1] * pigeons)
    write_wcnf(
        os.path.join(HERE, "php_soft8.wcnf"),
        ["soft pigeonhole PHP(8,7): placing each pigeon is a soft unit-",
         "weight clause, the hole-exclusion clauses are hard and phrased",
         "over copies of the pigeon variables routed through %d"
         % PHP_BUFFERS,
         "definitional buffers each (the unoptimized-Tseitin shape",
         "bounded variable elimination collapses). One pigeon too many,",
         "so the optimum leaves exactly one out. Known optimum: 1.",
         "Regenerate with generate.py."],
        cnf, soft)

    weights = [1 if i % 3 == 0 else (i % 3) + 1 for i in range(pigeons)]
    cnf, soft = soft_pigeonhole(pigeons, holes, weights)
    write_wcnf(
        os.path.join(HERE, "php_weighted8.wcnf"),
        ["the soft pigeonhole of php_soft8.wcnf with pigeon weights",
         "cycling 1,2,3: the optimum leaves out one of the weight-1",
         "pigeons. Known optimum: 1 (exercises the linear-search",
         "engine). Regenerate with generate.py."],
        cnf, soft)

    write_cnf(
        os.path.join(HERE, "adder_miter8.cnf"),
        ["miter of two structurally different 8-bit adders over shared",
         "inputs (carry as ab | c(a^b) vs maj(a,b,c)), every gate output",
         "routed through %d definitional buffer variables. The sum bits"
         % MITER_BUFFERS,
         "agree, so asserting a difference is UNSAT.",
         "Regenerate with generate.py."],
        adder_miter(8))


if __name__ == "__main__":
    main()
