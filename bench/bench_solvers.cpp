//===- bench_solvers.cpp - SAT / MaxSAT micro-benchmarks (A2) ------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// google-benchmark microbenchmarks for the solver substrate: CDCL on
// random 3-SAT around the phase transition and on pigeonhole instances,
// and Fu-Malik vs. linear-search partial MaxSAT on localization-shaped
// instances (hard program constraints + soft unit selectors).
//
//===----------------------------------------------------------------------===//

#include "maxsat/MaxSat.h"
#include "sat/Solver.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <set>

using namespace bugassist;

namespace {

std::vector<Clause> random3Sat(Rng &R, int Vars, int Clauses) {
  std::vector<Clause> Cs;
  for (int I = 0; I < Clauses; ++I) {
    Clause C;
    std::set<Var> Used;
    while (C.size() < 3) {
      Var V = static_cast<Var>(R.below(static_cast<uint64_t>(Vars)));
      if (!Used.insert(V).second)
        continue;
      C.push_back(mkLit(V, R.chance(1, 2)));
    }
    Cs.push_back(std::move(C));
  }
  return Cs;
}

/// Localization-shaped MaxSAT: a chain of "statements" y_{i+1} = f(y_i)
/// modeled as selector-guarded equivalences, with contradictory hard
/// endpoints; the optimum disables exactly one selector.
MaxSatInstance selectorChain(int Length) {
  MaxSatInstance Inst;
  // y_0 .. y_Length, selectors s_1 .. s_Length
  Inst.NumVars = (Length + 1) + Length;
  auto Y = [](int I) { return mkLit(I); };
  auto Sel = [Length](int I) { return mkLit(Length + I); };
  Inst.Hard.push_back({Y(0)});        // y_0
  Inst.Hard.push_back({~Y(Length)});  // ~y_Length: contradiction
  for (int I = 1; I <= Length; ++I) {
    // s_i -> (y_{i-1} <-> y_i)
    Inst.Hard.push_back({~Sel(I), ~Y(I - 1), Y(I)});
    Inst.Hard.push_back({~Sel(I), Y(I - 1), ~Y(I)});
    Inst.Soft.push_back({{Sel(I)}, 1});
  }
  return Inst;
}

void BM_Sat_PhaseTransition(benchmark::State &State) {
  int Vars = static_cast<int>(State.range(0));
  int Clauses = static_cast<int>(Vars * 4.26);
  uint64_t Seed = 1;
  for (auto _ : State) {
    Rng R(Seed++);
    auto Cs = random3Sat(R, Vars, Clauses);
    Solver S;
    S.ensureVars(Vars);
    bool Ok = true;
    for (const Clause &C : Cs)
      Ok = Ok && S.addClause(C);
    LBool Res = Ok ? S.solve() : LBool::False;
    benchmark::DoNotOptimize(Res);
  }
}
BENCHMARK(BM_Sat_PhaseTransition)->Arg(50)->Arg(75)->Arg(100)->Arg(125);

void BM_Sat_Pigeonhole(benchmark::State &State) {
  int Holes = static_cast<int>(State.range(0));
  int Pigeons = Holes + 1;
  for (auto _ : State) {
    Solver S;
    S.ensureVars(Pigeons * Holes);
    auto VarOf = [Holes](int P, int H) { return P * Holes + H; };
    for (int P = 0; P < Pigeons; ++P) {
      Clause C;
      for (int H = 0; H < Holes; ++H)
        C.push_back(mkLit(VarOf(P, H)));
      S.addClause(C);
    }
    for (int H = 0; H < Holes; ++H)
      for (int P1 = 0; P1 < Pigeons; ++P1)
        for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
          S.addClause({~mkLit(VarOf(P1, H)), ~mkLit(VarOf(P2, H))});
    LBool Res = S.solve();
    benchmark::DoNotOptimize(Res);
  }
}
BENCHMARK(BM_Sat_Pigeonhole)->Arg(5)->Arg(6)->Arg(7);

void BM_MaxSat_FuMalik_SelectorChain(benchmark::State &State) {
  MaxSatInstance Inst = selectorChain(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    MaxSatResult R = solveFuMalik(Inst);
    benchmark::DoNotOptimize(R.Cost);
  }
}
BENCHMARK(BM_MaxSat_FuMalik_SelectorChain)->Arg(50)->Arg(200)->Arg(800);

void BM_MaxSat_Linear_SelectorChain(benchmark::State &State) {
  MaxSatInstance Inst = selectorChain(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    MaxSatResult R = solveLinear(Inst);
    benchmark::DoNotOptimize(R.Cost);
  }
}
BENCHMARK(BM_MaxSat_Linear_SelectorChain)->Arg(50)->Arg(200)->Arg(800);

void BM_MaxSat_Weighted_Random(benchmark::State &State) {
  // Random weighted soft units over a small hard core.
  int N = static_cast<int>(State.range(0));
  Rng R(99);
  MaxSatInstance Inst;
  Inst.NumVars = N;
  for (int I = 0; I + 1 < N; I += 2)
    Inst.Hard.push_back({mkLit(I), mkLit(I + 1)});
  for (int I = 0; I < N; ++I)
    Inst.Soft.push_back(
        {{mkLit(I, R.chance(1, 2))}, static_cast<uint64_t>(R.range(1, 8))});
  for (auto _ : State) {
    MaxSatResult Res = solveLinear(Inst);
    benchmark::DoNotOptimize(Res.Cost);
  }
}
BENCHMARK(BM_MaxSat_Weighted_Random)->Arg(40)->Arg(80);

} // namespace

BENCHMARK_MAIN();
