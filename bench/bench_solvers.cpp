//===- bench_solvers.cpp - SAT / MaxSAT micro-benchmarks (A2) ----------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Solver-substrate benchmarks: CDCL on random 3-SAT around the phase
// transition and on pigeonhole instances, Fu-Malik and linear-search
// partial MaxSAT on localization-shaped instances, and -- the headline --
// the Fu-Malik TCAS localization workload run both through the incremental
// one-persistent-solver engine and the seed's rebuilt-per-round baseline.
// `--threads N` (default 4) additionally races the N-worker portfolio
// (diversified solvers + glue sharing, maxsat/Portfolio.h) on the
// conflict-heavy SAT workloads and on the TCAS localization, recording the
// per-worker win counts and exchange traffic.
//
// Every workload is emitted as machine-readable JSON (BENCH_solvers.json:
// wall time, conflicts, propagations, SatCalls) so the perf trajectory is
// tracked across PRs. `--json=PATH` overrides the output path.
//
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"
#include "cnf/DimacsReader.h"
#include "core/BugAssist.h"
#include "core/Pipeline.h"
#include "lang/Sema.h"
#include "maxsat/MaxSat.h"
#include "maxsat/Portfolio.h"
#include "maxsat/ReferenceMaxSat.h"
#include "programs/Tcas.h"
#include "programs/TcasMutants.h"
#include "sat/Solver.h"
#include "support/Rng.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace bugassist;

namespace {

struct WorkloadResult {
  std::string Name;
  double WallSeconds = 0;
  uint64_t Conflicts = 0;
  uint64_t Propagations = 0;
  uint64_t SatCalls = 0;
  uint64_t Restarts = 0;
  uint64_t RestartsBlocked = 0;
  uint64_t LbdSum = 0;
  uint64_t LbdCount = 0;
  uint64_t VarsEliminated = 0;
  uint64_t ClausesSubsumed = 0;
  uint64_t Extra = 0; ///< workload-specific (cost, diagnoses, ...)
  const char *ExtraKey = nullptr;
  // Portfolio workloads only.
  size_t Workers = 0;    ///< portfolio width (0 = single solver)
  uint64_t Exported = 0; ///< clauses pushed into the exchange
  uint64_t Imported = 0; ///< foreign clauses injected at restarts
  int Winner = -1;       ///< winning worker of the (last) race
  std::vector<uint64_t> Wins; ///< races won per worker

  void addSearch(const SolverStats &S) {
    Conflicts += S.Conflicts;
    Propagations += S.Propagations;
    Restarts += S.Restarts;
    RestartsBlocked += S.RestartsBlocked;
    LbdSum += S.LbdSum;
    LbdCount += S.LbdCount;
    VarsEliminated += S.VarsEliminated;
    ClausesSubsumed += S.ClausesSubsumed;
    Exported += S.ClausesExported;
    Imported += S.ClausesImported;
  }
  double avgLbd() const {
    return LbdCount ? static_cast<double>(LbdSum) /
                          static_cast<double>(LbdCount)
                    : 0.0;
  }
};

std::vector<WorkloadResult> Results;

void record(WorkloadResult R) {
  std::printf("%-44s %9.3fs  conflicts=%-9llu propagations=%-11llu "
              "sat_calls=%-5llu restarts=%llu/%llu avg_lbd=%.2f",
              R.Name.c_str(), R.WallSeconds,
              static_cast<unsigned long long>(R.Conflicts),
              static_cast<unsigned long long>(R.Propagations),
              static_cast<unsigned long long>(R.SatCalls),
              static_cast<unsigned long long>(R.Restarts),
              static_cast<unsigned long long>(R.RestartsBlocked), R.avgLbd());
  if (R.ExtraKey)
    std::printf("  %s=%llu", R.ExtraKey,
                static_cast<unsigned long long>(R.Extra));
  if (!R.Wins.empty()) {
    std::printf("  shared=%llu/%llu wins=[",
                static_cast<unsigned long long>(R.Exported),
                static_cast<unsigned long long>(R.Imported));
    for (size_t I = 0; I < R.Wins.size(); ++I)
      std::printf("%s%llu", I ? "," : "",
                  static_cast<unsigned long long>(R.Wins[I]));
    std::printf("]");
  }
  std::printf("\n");
  Results.push_back(std::move(R));
}

// --- plain SAT workloads ----------------------------------------------------

std::vector<Clause> random3Sat(Rng &R, int Vars, int Clauses) {
  std::vector<Clause> Cs;
  for (int I = 0; I < Clauses; ++I) {
    Clause C;
    std::set<Var> Used;
    while (C.size() < 3) {
      Var V = static_cast<Var>(R.below(static_cast<uint64_t>(Vars)));
      if (!Used.insert(V).second)
        continue;
      C.push_back(mkLit(V, R.chance(1, 2)));
    }
    Cs.push_back(std::move(C));
  }
  return Cs;
}

/// Both clause-management policies run every conflict-heavy SAT workload,
/// so the JSON tracks the Glucose-vs-seed comparison where reduceDB and
/// restarts actually fire.
const char *policySuffix(const Solver::Options &O) {
  return O.Retention == Solver::Options::RetentionPolicy::LbdTiers
             ? "_lbd_tiers"
             : "_activity_halving";
}

void benchPhaseTransition(int Vars, int Rounds, const Solver::Options &Opts) {
  WorkloadResult W;
  W.Name = "sat_phase_transition_v" + std::to_string(Vars) +
           policySuffix(Opts);
  Timer T;
  uint64_t Seed = 1;
  for (int I = 0; I < Rounds; ++I) {
    Rng R(Seed++);
    auto Cs = random3Sat(R, Vars, static_cast<int>(Vars * 4.26));
    Solver S{Opts};
    S.ensureVars(Vars);
    bool Ok = true;
    for (const Clause &C : Cs)
      Ok = Ok && S.addClause(C);
    if (Ok)
      S.solve();
    ++W.SatCalls;
    W.addSearch(S.stats());
  }
  W.WallSeconds = T.seconds();
  record(std::move(W));
}

std::vector<Clause> pigeonholeClauses(int Holes) {
  int Pigeons = Holes + 1;
  auto VarOf = [Holes](int P, int H) { return P * Holes + H; };
  std::vector<Clause> Cs;
  for (int P = 0; P < Pigeons; ++P) {
    Clause C;
    for (int H = 0; H < Holes; ++H)
      C.push_back(mkLit(VarOf(P, H)));
    Cs.push_back(std::move(C));
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        Cs.push_back({~mkLit(VarOf(P1, H)), ~mkLit(VarOf(P2, H))});
  return Cs;
}

void benchPigeonhole(int Holes, const Solver::Options &Opts) {
  WorkloadResult W;
  W.Name = "sat_pigeonhole_h" + std::to_string(Holes) + policySuffix(Opts);
  Timer T;
  Solver S{Opts};
  S.ensureVars((Holes + 1) * Holes);
  for (const Clause &C : pigeonholeClauses(Holes))
    S.addClause(C);
  S.solve();
  W.WallSeconds = T.seconds();
  W.SatCalls = 1;
  W.addSearch(S.stats());
  record(std::move(W));
}

// --- portfolio workloads ----------------------------------------------------

void recordRace(WorkloadResult &W, const SatRaceResult &R) {
  W.addSearch(R.Aggregate);
  W.Winner = R.Winner;
  if (W.Wins.empty())
    W.Wins.assign(R.PerWorker.size(), 0);
  if (R.Winner >= 0 && static_cast<size_t>(R.Winner) < W.Wins.size())
    ++W.Wins[static_cast<size_t>(R.Winner)];
}

/// Races the portfolio on the pigeonhole refutation -- the conflict-heavy
/// UNSAT workload where diversification plus glue sharing has to prove
/// itself against the single solver above.
void benchPigeonholePortfolio(int Holes, size_t Threads) {
  WorkloadResult W;
  W.Name = "sat_pigeonhole_h" + std::to_string(Holes) + "_portfolio_t" +
           std::to_string(Threads);
  W.Workers = Threads;
  auto Cs = pigeonholeClauses(Holes);
  Timer T;
  SatRaceResult R = racePortfolioSat(Cs, (Holes + 1) * Holes, Threads);
  W.WallSeconds = T.seconds();
  W.SatCalls = 1;
  recordRace(W, R);
  record(std::move(W));
}

void benchPhaseTransitionPortfolio(int Vars, int Rounds, size_t Threads) {
  WorkloadResult W;
  W.Name = "sat_phase_transition_v" + std::to_string(Vars) + "_portfolio_t" +
           std::to_string(Threads);
  W.Workers = Threads;
  Timer T;
  uint64_t Seed = 1;
  for (int I = 0; I < Rounds; ++I) {
    Rng R(Seed++);
    auto Cs = random3Sat(R, Vars, static_cast<int>(Vars * 4.26));
    SatRaceResult Race = racePortfolioSat(Cs, Vars, Threads);
    ++W.SatCalls;
    recordRace(W, Race);
  }
  W.WallSeconds = T.seconds();
  record(std::move(W));
}

// --- MaxSAT workloads -------------------------------------------------------

/// Localization-shaped MaxSAT: a chain of "statements" y_{i+1} = f(y_i)
/// modeled as selector-guarded equivalences, with contradictory hard
/// endpoints; the optimum disables exactly one selector.
MaxSatInstance selectorChain(int Length) {
  MaxSatInstance Inst;
  Inst.NumVars = (Length + 1) + Length;
  auto Y = [](int I) { return mkLit(I); };
  auto Sel = [Length](int I) { return mkLit(Length + I); };
  Inst.Hard.push_back({Y(0)});
  Inst.Hard.push_back({~Y(Length)});
  for (int I = 1; I <= Length; ++I) {
    Inst.Hard.push_back({~Sel(I), ~Y(I - 1), Y(I)});
    Inst.Hard.push_back({~Sel(I), Y(I - 1), ~Y(I)});
    Inst.Soft.push_back({{Sel(I)}, 1});
  }
  return Inst;
}

template <typename Fn>
void benchMaxSat(const std::string &Name, const MaxSatInstance &Inst, Fn Solve) {
  WorkloadResult W;
  W.Name = Name;
  Timer T;
  MaxSatResult R = Solve(Inst);
  W.WallSeconds = T.seconds();
  W.addSearch(R.Search);
  W.SatCalls = R.SatCalls;
  W.Extra = R.Cost;
  W.ExtraKey = "cost";
  record(std::move(W));
}

// --- external DIMACS / WCNF instances (--wcnf DIR) --------------------------

/// Sweeps every *.cnf / *.wcnf file in \p Dir (sorted by name) through the
/// solver substrate: CNF instances are decided (raced over the portfolio
/// when Threads > 1), WCNF instances are optimized with the auto-selected
/// MaxSAT engine. This is how MaxSAT-Evaluation benchmark directories
/// become bench workloads without any code changes.
void benchWcnfSweep(const std::string &Dir, size_t Threads) {
  std::vector<std::string> Files;
  DIR *D = opendir(Dir.c_str());
  if (!D) {
    std::printf("--wcnf: cannot open directory '%s'\n", Dir.c_str());
    return;
  }
  while (dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    auto EndsWith = [&](const char *Suffix) {
      size_t L = std::strlen(Suffix);
      return Name.size() >= L &&
             Name.compare(Name.size() - L, L, Suffix) == 0;
    };
    if (EndsWith(".cnf") || EndsWith(".wcnf"))
      Files.push_back(std::move(Name));
  }
  closedir(D);
  std::sort(Files.begin(), Files.end());
  if (Files.empty()) {
    std::printf("--wcnf: no .cnf/.wcnf files in '%s'\n", Dir.c_str());
    return;
  }

  for (const std::string &Name : Files) {
    DimacsParseError Err;
    auto Parsed = readDimacsFile(Dir + "/" + Name, Err);
    if (!Parsed) {
      std::printf("%-44s skipped: %s\n", Name.c_str(), Err.render().c_str());
      continue;
    }
    // Each instance runs twice -- preprocessing on (the default path) and
    // off (`_nopre`) -- so the JSON carries its own same-machine baseline
    // for the conflicts/propagations/wall comparison.
    for (bool Preprocess : {true, false}) {
      Solver::Options Opts;
      Opts.Preprocess = Preprocess;
      WorkloadResult W;
      W.Name = "dimacs_" + Name;
      if (Threads > 1)
        W.Name += "_t" + std::to_string(Threads);
      if (!Preprocess)
        W.Name += "_nopre";

      auto RunOnce = [&](WorkloadResult &Out) {
        if (Parsed->Soft.empty()) {
          Timer T;
          if (Threads > 1) {
            Out.Workers = Threads;
            SatRaceResult R =
                racePortfolioSat(Parsed->Hard, Parsed->NumVars, Threads, Opts);
            Out.SatCalls = 1;
            recordRace(Out, R);
            Out.Extra = R.Result == LBool::True;
          } else {
            Solver S{Opts};
            S.ensureVars(Parsed->NumVars);
            bool Ok = true;
            for (const Clause &C : Parsed->Hard)
              Ok = Ok && S.addClause(C);
            Out.Extra = Ok && S.solve() == LBool::True;
            Out.SatCalls = 1;
            Out.addSearch(S.stats());
          }
          Out.WallSeconds = T.seconds();
          Out.ExtraKey = "sat";
        } else {
          bool AnyWeight = false;
          MaxSatInstance Inst = toMaxSatInstance(*Parsed, &AnyWeight);
          Timer T;
          MaxSatResult R;
          if (Threads > 1) {
            Out.Workers = Threads;
            auto Session = makePortfolioSession(Inst, AnyWeight, Threads,
                                                /*ConflictBudget=*/0, Opts);
            R = Session->solve();
            const PortfolioStats &PS = Session->portfolioStats();
            Out.Wins = PS.WinsByWorker;
            Out.Winner = PS.LastWinner;
          } else {
            auto Session = makeMaxSatSession(Inst, AnyWeight,
                                             /*ConflictBudget=*/0, Opts,
                                             /*Canonical=*/true);
            R = Session->solve();
          }
          Out.WallSeconds = T.seconds();
          Out.SatCalls = R.SatCalls;
          Out.addSearch(R.Search);
          Out.Extra = R.Status == MaxSatStatus::Optimum ? R.Cost : 0;
          Out.ExtraKey =
              R.Status == MaxSatStatus::Optimum ? "cost" : "hard_unsat";
        }
      };
      // Some checked-in instances solve in microseconds, where a single
      // wall measurement is scheduler noise: keep the first run's search
      // statistics (the deterministic part) and a best-of-N wall time,
      // with more reps the shorter the workload so the minimum settles.
      RunOnce(W);
      int WallReps = W.WallSeconds < 0.001 ? 25 : 5;
      for (int Rep = 1; Rep < WallReps; ++Rep) {
        WorkloadResult Retime;
        RunOnce(Retime);
        W.WallSeconds = std::min(W.WallSeconds, Retime.WallSeconds);
      }
      record(std::move(W));
    }
  }
}

// --- the TCAS Fu-Malik localization workload --------------------------------

/// Algorithm 1's enumeration with the seed engine: the whole MaxSAT is
/// rebuilt from scratch for every diagnosis AND every relaxation round
/// rebuilds its solver. This is the baseline the incremental engine is
/// measured against.
void rebuiltEnumerate(MaxSatInstance Inst, const CnfFormula &F,
                      size_t MaxDiagnoses, WorkloadResult &W) {
  for (size_t Diagnoses = 0; Diagnoses < MaxDiagnoses;) {
    MaxSatResult R = referenceSolveFuMalik(Inst);
    W.SatCalls += R.SatCalls;
    W.addSearch(R.Search);
    if (R.Status != MaxSatStatus::Optimum || R.FalsifiedSoft.empty())
      break;
    Clause Blocking;
    for (size_t SoftIdx : R.FalsifiedSoft)
      Blocking.push_back(mkLit(F.group(static_cast<GroupId>(SoftIdx)).Selector));
    Inst.Hard.push_back(std::move(Blocking));
    ++Diagnoses;
    ++W.Extra; // total diagnoses across runs
  }
}

/// Algorithm 1's enumeration over ONE incremental Fu-Malik session with the
/// given solver policies: blocking clauses are added through the session so
/// learned clauses survive every diagnosis. Running this once with the
/// Glucose policies and once with the seed policies isolates the clause
/// management change on identical workloads.
void sessionEnumerate(const MaxSatInstance &Inst, const CnfFormula &F,
                      size_t MaxDiagnoses, WorkloadResult &W,
                      const Solver::Options &Opts) {
  auto Session = makeFuMalikSession(Inst, /*ConflictBudget=*/0, Opts);
  SolverStats Final; // session stats are cumulative; keep only the last
  for (size_t Diagnoses = 0; Diagnoses < MaxDiagnoses;) {
    MaxSatResult R = Session->solve();
    W.SatCalls += R.SatCalls;
    Final = R.Search;
    if (R.Status != MaxSatStatus::Optimum || R.FalsifiedSoft.empty())
      break;
    Clause Blocking;
    for (size_t SoftIdx : R.FalsifiedSoft)
      Blocking.push_back(mkLit(F.group(static_cast<GroupId>(SoftIdx)).Selector));
    // The CoMSS just found counts even when blocking it exhausts the hard
    // formula, matching rebuiltEnumerate and the driver's enumeration.
    ++Diagnoses;
    ++W.Extra;
    if (!Session->addHardClause(Blocking))
      break;
  }
  W.addSearch(Final);
}

void benchTcasLocalization(size_t NumMutants, size_t TestsPerMutant,
                           size_t MaxDiagnoses, size_t Threads) {
  DiagEngine Diags;
  auto Golden = parseAndAnalyze(tcasSource(), Diags);
  if (!Golden) {
    std::printf("golden TCAS failed to compile\n");
    return;
  }
  auto Pool = tcasTestPool(400);
  auto GoldenOut = goldenOutputs(*Golden, Pool, "main", tcasExecOptions());

  WorkloadResult Inc, Pf, Lbd, Seed, Reb;
  Inc.Name = "tcas_fumalik_localize_incremental";
  Inc.ExtraKey = "diagnoses";
  Pf.Name = "tcas_fumalik_localize_portfolio_t" + std::to_string(Threads);
  Pf.ExtraKey = "diagnoses";
  Pf.Workers = Threads;
  Lbd.Name = "tcas_fumalik_comss_lbd_tiers";
  Lbd.ExtraKey = "diagnoses";
  Seed.Name = "tcas_fumalik_comss_activity_halving";
  Seed.ExtraKey = "diagnoses";
  Reb.Name = "tcas_fumalik_localize_rebuilt";
  Reb.ExtraKey = "diagnoses";

  size_t MutantsUsed = 0;
  for (const TcasMutant &M : tcasMutants()) {
    if (MutantsUsed >= NumMutants)
      break;
    DiagEngine D2;
    auto Faulty = parseAndAnalyze(M.Source, D2);
    if (!Faulty)
      continue;
    FailingTests Failing = segregateFailingTests(
        GoldenOut, *Faulty, Pool, "main", tcasExecOptions(), TestsPerMutant);
    if (Failing.Inputs.empty())
      continue;
    ++MutantsUsed;

    BugAssistDriver Driver(*Faulty, "main", tcasUnrollOptions());
    for (size_t Idx = 0; Idx < Failing.Inputs.size(); ++Idx) {
      Spec S;
      S.CheckObligations = false;
      S.GoldenReturn = Failing.Goldens[Idx];

      LocalizeOptions LO;
      LO.MaxDiagnoses = MaxDiagnoses;
      Timer T1;
      LocalizationReport Rep = Driver.localize(Failing.Inputs[Idx], S, LO);
      Inc.WallSeconds += T1.seconds();
      Inc.SatCalls += Rep.SatCalls;
      Inc.addSearch(Rep.Search);
      Inc.Extra += Rep.Diagnoses.size();

      if (Threads > 1) {
        LocalizeOptions PLO = LO;
        PLO.Threads = Threads;
        Timer TP;
        LocalizationReport PRep = Driver.localize(Failing.Inputs[Idx], S, PLO);
        Pf.WallSeconds += TP.seconds();
        Pf.SatCalls += PRep.SatCalls;
        Pf.addSearch(PRep.Search);
        Pf.Extra += PRep.Diagnoses.size();
        if (Pf.Wins.empty())
          Pf.Wins.assign(PRep.PortfolioWins.size(), 0);
        for (size_t WI = 0; WI < PRep.PortfolioWins.size(); ++WI)
          Pf.Wins[WI] += PRep.PortfolioWins[WI];
      }

      MaxSatInstance Inst =
          Driver.formula().localizationInstance(Failing.Inputs[Idx], S);
      const CnfFormula &F = Driver.formula().encoded().Formula;

      Timer T2;
      sessionEnumerate(Inst, F, MaxDiagnoses, Lbd, Solver::Options());
      Lbd.WallSeconds += T2.seconds();

      Timer T3;
      sessionEnumerate(Inst, F, MaxDiagnoses, Seed, Solver::Options::seed());
      Seed.WallSeconds += T3.seconds();

      Timer T4;
      rebuiltEnumerate(Inst, F, MaxDiagnoses, Reb);
      Reb.WallSeconds += T4.seconds();
    }
  }
  if (MutantsUsed == 0) {
    std::printf("no TCAS mutant with failing tests found\n");
    return;
  }
  double WorkInc = static_cast<double>(Inc.Conflicts + Inc.Propagations);
  double WorkLbd = static_cast<double>(Lbd.Conflicts + Lbd.Propagations);
  double WorkSeed = static_cast<double>(Seed.Conflicts + Seed.Propagations);
  double WorkReb = static_cast<double>(Reb.Conflicts + Reb.Propagations);
  double WallInc = Inc.WallSeconds, WallLbd = Lbd.WallSeconds,
         WallSeed = Seed.WallSeconds, WallReb = Reb.WallSeconds;
  double WallPf = Pf.WallSeconds;
  record(std::move(Inc));
  if (Threads > 1)
    record(std::move(Pf));
  record(std::move(Lbd));
  record(std::move(Seed));
  record(std::move(Reb));
  if (Threads > 1)
    std::printf("tcas portfolio (t=%zu) vs single session: wall %.2fx "
                "(identical diagnoses by construction)\n",
                Threads, WallPf > 0 ? WallInc / WallPf : 0.0);
  std::printf("tcas incremental vs rebuilt (%zu mutants): "
              "conflicts+propagations %.2fx, wall %.2fx\n",
              MutantsUsed, WorkInc > 0 ? WorkReb / WorkInc : 0.0,
              WallInc > 0 ? WallReb / WallInc : 0.0);
  std::printf("tcas lbd-tiers vs activity-halving (CoMSS sessions): "
              "conflicts+propagations %.2fx, wall %.2fx\n",
              WorkLbd > 0 ? WorkSeed / WorkLbd : 0.0,
              WallLbd > 0 ? WallSeed / WallLbd : 0.0);
}

void writeJson(const char *Path) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::printf("cannot open %s\n", Path);
    return;
  }
  unsigned Cores = std::thread::hardware_concurrency();
  std::fprintf(F,
               "{\n  \"bench\": \"bench_solvers\",\n"
               "  \"hardware_concurrency\": %u,\n  \"workloads\": [\n",
               Cores);
  for (size_t I = 0; I < Results.size(); ++I) {
    const WorkloadResult &W = Results[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"wall_s\": %.6f, "
                 "\"conflicts\": %llu, \"propagations\": %llu, "
                 "\"sat_calls\": %llu, \"restarts\": %llu, "
                 "\"restarts_blocked\": %llu, \"avg_lbd\": %.3f, "
                 "\"vars_eliminated\": %llu, \"clauses_subsumed\": %llu",
                 W.Name.c_str(), W.WallSeconds,
                 static_cast<unsigned long long>(W.Conflicts),
                 static_cast<unsigned long long>(W.Propagations),
                 static_cast<unsigned long long>(W.SatCalls),
                 static_cast<unsigned long long>(W.Restarts),
                 static_cast<unsigned long long>(W.RestartsBlocked),
                 W.avgLbd(),
                 static_cast<unsigned long long>(W.VarsEliminated),
                 static_cast<unsigned long long>(W.ClausesSubsumed));
    if (W.ExtraKey)
      std::fprintf(F, ", \"%s\": %llu", W.ExtraKey,
                   static_cast<unsigned long long>(W.Extra));
    if (W.Workers)
      // Wall times of a race wider than the machine measure scheduler
      // time-slicing, not parallel speedup; tag them so the perf tracker
      // compares like with like.
      std::fprintf(F, ", \"workers\": %zu, \"serialized\": %s", W.Workers,
                   Cores && W.Workers > Cores ? "true" : "false");
    if (!W.Wins.empty()) {
      std::fprintf(F, ", \"shared_exported\": %llu, \"shared_imported\": %llu",
                   static_cast<unsigned long long>(W.Exported),
                   static_cast<unsigned long long>(W.Imported));
      if (W.Winner >= 0)
        std::fprintf(F, ", \"last_winner\": %d", W.Winner);
      std::fprintf(F, ", \"wins\": [");
      for (size_t J = 0; J < W.Wins.size(); ++J)
        std::fprintf(F, "%s%llu", J ? ", " : "",
                     static_cast<unsigned long long>(W.Wins[J]));
      std::fprintf(F, "]");
    }
    std::fprintf(F, "}%s\n", I + 1 < Results.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path);
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = "BENCH_solvers.json";
  const char *WcnfDir = nullptr;
  bool Quick = false, Smoke = false;
  size_t Threads = 4; // portfolio width for the *_portfolio workloads
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else if (std::strncmp(argv[I], "--wcnf=", 7) == 0)
      WcnfDir = argv[I] + 7;
    else if (std::strcmp(argv[I], "--wcnf") == 0 && I + 1 < argc)
      WcnfDir = argv[++I];
    else if (std::strcmp(argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = Quick = true; // smoke: CI-sized subset of the quick run
    else
      matchThreadsFlag(argc, argv, I, Threads);
  }

  int PhaseVars = Smoke ? 60 : 100;
  int PhaseRounds = Smoke ? 2 : Quick ? 4 : 16;
  int Holes = Smoke ? 5 : Quick ? 6 : 7;
  for (const Solver::Options &O :
       {Solver::Options(), Solver::Options::seed()}) {
    benchPhaseTransition(PhaseVars, PhaseRounds, O);
    benchPigeonhole(Holes, O);
  }
  if (!Quick)
    benchPigeonhole(8, Solver::Options()); // the larger refutation
  if (Threads > 1) {
    benchPhaseTransitionPortfolio(PhaseVars, PhaseRounds, Threads);
    benchPigeonholePortfolio(Holes, Threads);
    if (!Quick)
      benchPigeonholePortfolio(8, Threads);
  }

  std::vector<int> ChainLens = Smoke ? std::vector<int>{100}
                                     : std::vector<int>{200, 800};
  for (int Len : ChainLens) {
    MaxSatInstance Chain = selectorChain(Len);
    std::string Suffix = "_chain" + std::to_string(Len);
    benchMaxSat("maxsat_fumalik_incremental" + Suffix, Chain,
                [](const MaxSatInstance &I) { return solveFuMalik(I); });
    benchMaxSat("maxsat_fumalik_rebuilt" + Suffix, Chain,
                [](const MaxSatInstance &I) { return referenceSolveFuMalik(I); });
    benchMaxSat("maxsat_linear_incremental" + Suffix, Chain,
                [](const MaxSatInstance &I) { return solveLinear(I); });
    benchMaxSat("maxsat_linear_rebuilt" + Suffix, Chain,
                [](const MaxSatInstance &I) { return referenceSolveLinear(I); });
  }

  benchTcasLocalization(/*NumMutants=*/Quick ? 1 : 6,
                        /*TestsPerMutant=*/Quick ? 1 : 2,
                        /*MaxDiagnoses=*/Smoke ? 8 : 24, Threads);

  // External DIMACS/WCNF instances ride along after the standard suite,
  // each solved with inprocessing on and off (the *_nopre twin) so the
  // recorded JSON carries its own preprocessing baseline.
  if (WcnfDir)
    benchWcnfSweep(WcnfDir, Threads);

  writeJson(JsonPath);
  return 0;
}
