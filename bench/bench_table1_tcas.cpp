//===- bench_table1_tcas.cpp - Regenerates Table 1 ----------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Reproduces the paper's Table 1: for every faulty TCAS version, run
// BugAssist on its failing test cases (golden outputs from the correct
// version, Section 6.1 methodology) and report
//   TC#        number of failing tests in the 1600-test pool,
//   Error#     number of injected faults,
//   Detect#    runs whose report contains the injected fault line,
//   SizeReduc% average |suspect lines| / LOC,
//   RunTime    average seconds per localization,
//   Type       the Table 2 error type.
//
// By default each version replays at most 5 failing tests so the whole
// table regenerates in minutes; `--full` replays every failing test (the
// paper's 1440 runs), `--tests=N` picks another cap, `--threads N` races
// an N-worker portfolio per MaxSAT query (identical results, see
// maxsat/Portfolio.h), `--legend` prints Table 2.
//
//===----------------------------------------------------------------------===//

#include "BenchArgs.h"
#include "core/BugAssist.h"
#include "core/Pipeline.h"
#include "lang/Sema.h"
#include "programs/Tcas.h"
#include "programs/TcasMutants.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace bugassist;

namespace {

size_t countLines(const std::string &S) {
  size_t N = 1;
  for (char C : S)
    N += C == '\n';
  return N;
}

void printLegend() {
  std::printf("Table 2: Type of Error\n");
  std::printf("%-8s  %s\n", "Type", "Explanation");
  for (ErrorType T :
       {ErrorType::Op, ErrorType::Code, ErrorType::Assign, ErrorType::AddCode,
        ErrorType::Const, ErrorType::Init, ErrorType::Index,
        ErrorType::Branch})
    std::printf("%-8s  %s\n", errorTypeName(T), errorTypeDescription(T));
}

} // namespace

int main(int argc, char **argv) {
  size_t TestCap = 5;
  size_t Threads = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--legend") == 0) {
      printLegend();
      return 0;
    }
    if (std::strcmp(argv[I], "--full") == 0)
      TestCap = SIZE_MAX;
    else if (std::strncmp(argv[I], "--tests=", 8) == 0)
      TestCap = static_cast<size_t>(std::atol(argv[I] + 8));
    else
      matchThreadsFlag(argc, argv, I, Threads);
  }

  DiagEngine Diags;
  auto Golden = parseAndAnalyze(tcasSource(), Diags);
  if (!Golden) {
    std::printf("golden TCAS failed to compile:\n%s", Diags.render().c_str());
    return 1;
  }
  auto Pool = tcasTestPool(1600);
  // Golden outputs once; every version screens against them.
  auto GoldenOut = goldenOutputs(*Golden, Pool, "main", tcasExecOptions());

  const size_t Loc = countLines(tcasSource()) - 1;
  std::printf("Table 1: BugAssist on the TCAS task (pool=1600, LOC=%zu, "
              "cap=%zu failing tests/version)\n\n",
              Loc, TestCap == SIZE_MAX ? 0 : TestCap);
  std::printf("%-5s %5s %7s %8s %10s %9s  %s\n", "Ver", "TC#", "Error#",
              "Detect#", "SizeReduc%", "RunTime", "Type");

  size_t TotalRuns = 0, TotalDetect = 0;
  for (const TcasMutant &M : tcasMutants()) {
    DiagEngine D2;
    auto Faulty = parseAndAnalyze(M.Source, D2);
    if (!Faulty) {
      std::printf("v%-4d failed to compile\n", M.Version);
      continue;
    }
    // Segregate failing tests against the golden outputs (Section 6.1).
    FailingTests Failing = segregateFailingTests(GoldenOut, *Faulty, Pool,
                                                 "main", tcasExecOptions());

    if (Failing.Inputs.empty()) {
      std::printf("v%-4d %5d %7d %8s %10s %9s  %s   (no failing tests; "
                  "omitted from the paper's table)\n",
                  M.Version, 0, M.ErrorCount, "-", "-", "-",
                  errorTypeName(M.Type));
      continue;
    }

    BugAssistDriver Driver(*Faulty, "main", tcasUnrollOptions());
    LocalizeOptions LO;
    LO.MaxDiagnoses = 24;
    LO.Threads = Threads; // >1: portfolio per MaxSAT query (same results)

    size_t Runs = std::min(TestCap, Failing.Inputs.size());
    size_t Detect = 0;
    double TotalTime = 0;
    double TotalSuspects = 0;
    for (size_t R = 0; R < Runs; ++R) {
      Spec S;
      S.CheckObligations = false;
      S.GoldenReturn = Failing.Goldens[R];
      Timer T;
      LocalizationReport Rep = Driver.localize(Failing.Inputs[R], S, LO);
      TotalTime += T.seconds();
      TotalSuspects += static_cast<double>(Rep.AllLines.size());
      bool Hit = false;
      for (uint32_t L : M.BugLines)
        Hit |= std::find(Rep.AllLines.begin(), Rep.AllLines.end(), L) !=
               Rep.AllLines.end();
      Detect += Hit;
    }
    TotalRuns += Runs;
    TotalDetect += Detect;

    std::printf("v%-4d %5zu %7d %5zu/%-2zu %9.1f%% %8.3fs  %s\n", M.Version,
                Failing.Inputs.size(), M.ErrorCount, Detect, Runs,
                100.0 * TotalSuspects / (static_cast<double>(Runs) *
                                         static_cast<double>(Loc)),
                TotalTime / static_cast<double>(Runs),
                errorTypeName(M.Type));
  }

  std::printf("\nOverall: %zu/%zu runs pinpointed the injected fault line "
              "(%.0f%%; the paper reports 1367/1440 = 95%%)\n",
              TotalDetect, TotalRuns,
              TotalRuns ? 100.0 * static_cast<double>(TotalDetect) /
                              static_cast<double>(TotalRuns)
                        : 0.0);
  return 0;
}
