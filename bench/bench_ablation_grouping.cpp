//===- bench_ablation_grouping.cpp - Clause grouping ablation (A1) -------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Section 3.4 motivates grouping all clauses of one statement under one
// selector ("keep the resulting MAX-SAT instance small"). This ablation
// measures what that buys: the same localization run with per-line
// selectors vs. one selector per SSA definition, comparing soft-constraint
// counts, MaxSAT-driven SAT calls, wall time, and whether the injected
// fault line is still reported.
//
//===----------------------------------------------------------------------===//

#include "core/BugAssist.h"
#include "lang/Sema.h"
#include "programs/SmallDemos.h"
#include "programs/Tcas.h"
#include "programs/TcasMutants.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>

using namespace bugassist;

namespace {

struct AblationResult {
  size_t SoftCount = 0;
  size_t Diagnoses = 0;
  uint64_t SatCalls = 0;
  double Seconds = 0;
  bool BugFound = false;
};

AblationResult runOnce(const Program &Prog, const UnrollOptions &UO,
                       bool PerDefinition, const InputVector &Failing,
                       const Spec &S, uint32_t BugLine) {
  UnrolledProgram UP = unrollProgram(Prog, "main", UO);
  EncodeOptions EO;
  EO.BitWidth = UO.BitWidth;
  EO.GroupPerDefinition = PerDefinition;
  TraceFormula TF(encodeProgram(UP, EO));

  AblationResult R;
  R.SoftCount = TF.encoded().Formula.numGroups();
  LocalizeOptions LO;
  LO.MaxDiagnoses = 24;
  Timer T;
  LocalizationReport Rep = localizeFault(TF, Failing, S, LO);
  R.Seconds = T.seconds();
  R.Diagnoses = Rep.Diagnoses.size();
  R.SatCalls = Rep.SatCalls;
  R.BugFound = std::find(Rep.AllLines.begin(), Rep.AllLines.end(), BugLine) !=
               Rep.AllLines.end();
  return R;
}

void printPair(const char *Name, const AblationResult &Grouped,
               const AblationResult &PerDef) {
  std::printf("%-12s %-9s %8zu %8zu %9llu %8.3fs   %s\n", Name, "grouped",
              Grouped.SoftCount, Grouped.Diagnoses,
              static_cast<unsigned long long>(Grouped.SatCalls),
              Grouped.Seconds, Grouped.BugFound ? "bug found" : "MISSED");
  std::printf("%-12s %-9s %8zu %8zu %9llu %8.3fs   %s\n", Name, "per-def",
              PerDef.SoftCount, PerDef.Diagnoses,
              static_cast<unsigned long long>(PerDef.SatCalls),
              PerDef.Seconds, PerDef.BugFound ? "bug found" : "MISSED");
}

} // namespace

int main() {
  std::printf("Ablation A1: per-line clause grouping (the paper's Section "
              "3.4) vs one selector per definition\n\n");
  std::printf("%-12s %-9s %8s %8s %9s %9s\n", "program", "mode", "soft#",
              "diag#", "satcalls", "time");

  // Program 1 with the bounds spec.
  {
    DiagEngine Diags;
    auto P = parseAndAnalyze(program1Source(), Diags);
    UnrollOptions UO;
    UO.BitWidth = 16;
    InputVector Failing{InputValue::scalar(1)};
    AblationResult G = runOnce(*P, UO, false, Failing, Spec{},
                               program1BugLine());
    AblationResult D = runOnce(*P, UO, true, Failing, Spec{},
                               program1BugLine());
    printPair("program1", G, D);
  }

  // TCAS v2 with a golden-output spec.
  {
    const TcasMutant &V2 = tcasMutants()[1];
    DiagEngine Diags;
    auto Golden = parseAndAnalyze(tcasSource(), Diags);
    auto Faulty = parseAndAnalyze(V2.Source, Diags);
    Interpreter GI(*Golden, tcasExecOptions());
    Interpreter FI(*Faulty, tcasExecOptions());
    InputVector Failing;
    int64_t Want = 0;
    for (const InputVector &In : tcasTestPool(1600)) {
      int64_t W = GI.run("main", In).ReturnValue;
      if (FI.run("main", In).ReturnValue != W) {
        Failing = In;
        Want = W;
        break;
      }
    }
    Spec S;
    S.CheckObligations = false;
    S.GoldenReturn = Want;
    AblationResult G = runOnce(*Faulty, tcasUnrollOptions(), false, Failing,
                               S, V2.BugLines[0]);
    AblationResult D = runOnce(*Faulty, tcasUnrollOptions(), true, Failing,
                               S, V2.BugLines[0]);
    printPair("tcas_v2", G, D);
  }

  std::printf("\nExpected shape: grouping cuts the number of soft "
              "constraints by the average statements-per-line circuit size "
              "and keeps diagnoses at statement granularity; per-def "
              "selectors inflate the instance and fragment diagnoses.\n");
  return 0;
}
