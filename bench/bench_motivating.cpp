//===- bench_motivating.cpp - The Section 2 walkthrough, measured --------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Program 1, exactly as narrated in Section 2: BMC finds index == 1, the
// first CoMSS maps to the buggy arithmetic line, iterating with blocking
// clauses reveals the branch-condition alternative, and the suspect set is
// strictly finer than the backward slice.
//
//===----------------------------------------------------------------------===//

#include "core/BugAssist.h"
#include "lang/Sema.h"
#include "programs/SmallDemos.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>

using namespace bugassist;

int main() {
  DiagEngine Diags;
  auto Prog = parseAndAnalyze(program1Source(), Diags);
  if (!Prog) {
    std::printf("%s", Diags.render().c_str());
    return 1;
  }

  Timer T;
  BugAssistDriver Driver(*Prog, "main");
  double BuildTime = T.seconds();
  const CnfFormula &F = Driver.formula().encoded().Formula;
  std::printf("trace formula: %d variables, %zu clauses, %zu statement "
              "groups (built in %.3fs)\n",
              F.numVars(), F.numClauses(), F.numGroups(), BuildTime);

  T.reset();
  auto Cex = Driver.findCounterexample(Spec{});
  std::printf("counterexample generation: %.3fs -> index = %lld "
              "(paper: index = 1)\n",
              T.seconds(),
              Cex ? static_cast<long long>((*Cex)[0].Scalar) : -1);
  if (!Cex)
    return 1;

  T.reset();
  LocalizationReport R = Driver.localize(*Cex, Spec{});
  double LocTime = T.seconds();
  std::printf("localization: %.3fs, %llu SAT calls\n", LocTime,
              static_cast<unsigned long long>(R.SatCalls));
  for (size_t I = 0; I < R.Diagnoses.size(); ++I) {
    std::printf("  CoMSS %zu (cost %llu): line", I + 1,
                static_cast<unsigned long long>(R.Diagnoses[I].Cost));
    for (uint32_t L : R.Diagnoses[I].Lines)
      std::printf(" %u", L);
    std::printf("\n");
  }

  // The Section 2 comparison: the backward slice of the trace covers the
  // branch (3), the else assignment (6), AND the copy (7); BugAssist
  // reports them as separate single-line diagnoses and never mentions the
  // then-branch (4).
  bool Bug = std::find(R.AllLines.begin(), R.AllLines.end(),
                       program1BugLine()) != R.AllLines.end();
  bool ThenBranch =
      std::find(R.AllLines.begin(), R.AllLines.end(), 4u) != R.AllLines.end();
  std::printf("\ninjected fault line %u reported: %s\n", program1BugLine(),
              Bug ? "yes" : "NO");
  std::printf("unreachable then-branch (line 4) reported: %s (must be no)\n",
              ThenBranch ? "YES" : "no");
  std::printf("finer than the backward slice: each diagnosis is an "
              "independently sufficient fix location.\n");
  return Bug && !ThenBranch ? 0 : 1;
}
