//===- BenchArgs.h - shared bench command-line helpers ----------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the bench drivers' hand-rolled argument
/// parsing (the benches deliberately have no flag framework).
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_BENCH_BENCHARGS_H
#define BUGASSIST_BENCH_BENCHARGS_H

#include <cstddef>
#include <cstdlib>
#include <cstring>

namespace bugassist {

/// Portfolio width from a `--threads` argument, clamped to [1, 64]: atol
/// on garbage returns 0, and a negative would wrap catastrophically
/// through size_t into a billions-of-workers allocation.
inline size_t parseThreads(const char *Arg) {
  long V = std::atol(Arg);
  if (V < 1)
    return 1;
  return static_cast<size_t>(V < 64 ? V : 64);
}

/// Recognizes `--threads N` / `--threads=N` at argv[I]. On a match, stores
/// the clamped width in \p Out, advances \p I past any consumed value
/// argument, and returns true.
inline bool matchThreadsFlag(int Argc, char **Argv, int &I, size_t &Out) {
  if (std::strncmp(Argv[I], "--threads=", 10) == 0) {
    Out = parseThreads(Argv[I] + 10);
    return true;
  }
  if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 < Argc &&
      std::strncmp(Argv[I + 1], "--", 2) != 0) {
    // The value is only consumed when it is not itself a flag, so
    // `--threads --smoke` cannot silently swallow `--smoke`.
    Out = parseThreads(Argv[++I]);
    return true;
  }
  return false;
}

} // namespace bugassist

#endif // BUGASSIST_BENCH_BENCHARGS_H
