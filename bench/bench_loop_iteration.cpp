//===- bench_loop_iteration.cpp - Section 6.4, measured ------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Program 3 (squareroot) under the Section 5.2 weighted per-iteration
// localization. The paper ran CBMC with unwinding 50 and reported the
// loop's boundary unwinding as the first faulty iteration; val = 50 makes
// the loop run 7 times, so the last executed iteration is kappa = 7 (the
// paper narrates the same boundary as the 8th unwinding, where i first
// holds the bad value).
//
//===----------------------------------------------------------------------===//

#include "core/LoopDiagnosis.h"
#include "lang/Sema.h"
#include "programs/SmallDemos.h"
#include "support/Timer.h"

#include <cstdio>

using namespace bugassist;

int main() {
  DiagEngine Diags;
  auto Prog = parseAndAnalyze(program3Source(), Diags);
  if (!Prog) {
    std::printf("%s", Diags.render().c_str());
    return 1;
  }

  for (int Eta : {10, 20, 50}) {
    // Phase 1: unrestricted cheapest fix (the line to actually change).
    LoopDiagnosisOptions Opts;
    Opts.Unroll.MaxLoopUnwind = Eta;
    Opts.Localize.MaxDiagnoses = 1;
    Timer T;
    LoopDiagnosisResult R = diagnoseLoopFault(*Prog, "main", {}, Spec{}, Opts);

    // Phase 2: the Section 6.4 question -- pin everything outside the loop
    // and ask which iteration's constraints must change.
    LoopDiagnosisOptions LoopOnly = Opts;
    LoopOnly.RestrictToLoopGroups = true;
    LoopOnly.Localize.MaxDiagnoses = 3;
    LoopDiagnosisResult RL =
        diagnoseLoopFault(*Prog, "main", {}, Spec{}, LoopOnly);
    double Secs = T.seconds();

    uint32_t FirstLoopIter = 0, FirstLoopLine = 0;
    if (!RL.First.empty()) {
      FirstLoopLine = RL.First[0].Line;
      FirstLoopIter = RL.First[0].Iteration;
    }
    std::printf("eta=%-3d  %.2fs  cheapest fix: line %u%s  in-loop "
                "diagnosis: line %u @ iteration %u\n",
                Eta, Secs, R.First.empty() ? 0 : R.First[0].Line,
                (!R.First.empty() && R.First[0].Iteration == 0)
                    ? " (outside the loop)"
                    : "",
                FirstLoopLine, FirstLoopIter);
  }
  std::printf("\npaper (eta=50): fault at line `res = i`; boundary "
              "iteration of the 7-step loop reported (narrated as the 8th "
              "unwinding).\n");
  return 0;
}
