//===- bench_repair_offbyone.cpp - Section 6.3, measured -----------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// The strncat off-by-one study: find the violation by BMC, localize with
// the library trusted (its constraints hard, Section 6.3), and synthesize
// the kappa +/- 1 repair of Algorithm 2, timing every stage.
//
//===----------------------------------------------------------------------===//

#include "core/BugAssist.h"
#include "core/Repair.h"
#include "lang/Sema.h"
#include "programs/SmallDemos.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>

using namespace bugassist;

int main() {
  DiagEngine Diags;
  auto Prog = parseAndAnalyze(program2Source(), Diags);
  if (!Prog) {
    std::printf("%s", Diags.render().c_str());
    return 1;
  }

  UnrollOptions UO;
  UO.BitWidth = 16;
  UO.MaxLoopUnwind = 10;
  UO.TrustedFunctions.insert(program2LibraryFunction());
  UO.HardLines = program2HardLines();

  Timer T;
  BugAssistDriver Driver(*Prog, "main", UO);
  std::printf("encode: %.3fs (%d vars, %zu clauses)\n", T.seconds(),
              Driver.formula().encoded().Formula.numVars(),
              Driver.formula().encoded().Formula.numClauses());

  T.reset();
  auto Cex = Driver.findCounterexample(Spec{});
  std::printf("BMC bounds-violation search: %.3fs -> %s\n", T.seconds(),
              Cex ? "violation found" : "none (unexpected)");
  if (!Cex)
    return 1;

  T.reset();
  LocalizationReport R = Driver.localize(*Cex, Spec{});
  std::printf("localization: %.3fs, suspect lines:", T.seconds());
  for (uint32_t L : R.AllLines)
    std::printf(" %u", L);
  bool CallSite = std::find(R.AllLines.begin(), R.AllLines.end(),
                            program2BugLine()) != R.AllLines.end();
  std::printf("  (call site line %u %s)\n", program2BugLine(),
              CallSite ? "blamed, as in the paper" : "MISSED");

  T.reset();
  RepairOptions RO;
  RO.Unroll = UO;
  RO.OperatorSwap = false; // the study tries the two one-off constants
  RepairResult Fix =
      repairProgram(*Prog, "main", {*Cex}, Spec{}, nullptr, RO);
  std::printf("repair synthesis: %.3fs, %zu candidates -> %s\n", T.seconds(),
              Fix.CandidatesTried,
              Fix.Found ? Fix.Suggestion.Description.c_str()
                        : "no fix validated");
  if (Fix.Found)
    std::printf("paper's outcome: SIZE -> SIZE-1 validated; here: line %u, "
                "%s\n",
                Fix.Suggestion.Line, Fix.Suggestion.Description.c_str());
  return Fix.Found && CallSite ? 0 : 1;
}
