//===- bench_repair_offbyone.cpp - Section 6.3, measured -----------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// The strncat off-by-one study: find the violation by BMC, localize with
// the library trusted (its constraints hard, Section 6.3), and synthesize
// the kappa +/- 1 repair of Algorithm 2, timing every stage. The repair
// runs twice -- through the encode-once pipeline seam (prepared driver,
// pooled prescreen) and through the rebuild-everything reference overload
// -- and the candidate-validation funnels of both twins are merged into
// BENCH_solvers.json next to the solver workloads, so the perf tracker
// sees how many candidates each path planned, screened, and verified.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "core/Repair.h"
#include "programs/SmallDemos.h"
#include "serve/Json.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace bugassist;

namespace {

/// Re-serializes a parsed JSON tree compactly. Numbers keep their raw
/// token (Json.h preserves it), so merged entries round-trip exactly.
std::string renderJson(const JsonValue &V) {
  switch (V.K) {
  case JsonValue::Kind::Null:
    return "null";
  case JsonValue::Kind::Bool:
    return V.BoolVal ? "true" : "false";
  case JsonValue::Kind::Number:
    return V.Text;
  case JsonValue::Kind::String:
    return "\"" + jsonEscape(V.Text) + "\"";
  case JsonValue::Kind::Array: {
    std::string Out = "[";
    for (size_t I = 0; I < V.Elements.size(); ++I)
      Out += (I ? ", " : "") + renderJson(V.Elements[I]);
    return Out + "]";
  }
  case JsonValue::Kind::Object: {
    std::string Out = "{";
    for (size_t I = 0; I < V.Members.size(); ++I)
      Out += std::string(I ? ", " : "") + "\"" +
             jsonEscape(V.Members[I].first) +
             "\": " + renderJson(V.Members[I].second);
    return Out + "}";
  }
  }
  return "null";
}

/// One twin's workload entry: the wall time plus the Algorithm 2
/// candidate-validation funnel.
std::string workloadEntry(const char *Name, double WallSeconds,
                          const RepairResult &R) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"name\": \"%s\", \"wall_s\": %.6f, \"found\": %s, "
      "\"lines_considered\": %llu, \"lines_screened_out\": %llu, "
      "\"prescreen_sat_calls\": %llu, \"candidates_planned\": %llu, "
      "\"candidates_tried\": %llu, \"sema_rejected\": %llu, "
      "\"test_screen_rejected\": %llu, \"bmc_rejected\": %llu, "
      "\"formula_builds\": %llu}",
      Name, WallSeconds, R.Found ? "true" : "false",
      static_cast<unsigned long long>(R.Stats.LinesConsidered),
      static_cast<unsigned long long>(R.Stats.LinesScreenedOut),
      static_cast<unsigned long long>(R.Stats.PrescreenSatCalls),
      static_cast<unsigned long long>(R.Stats.CandidatesPlanned),
      static_cast<unsigned long long>(R.Stats.CandidatesTried),
      static_cast<unsigned long long>(R.Stats.SemaRejected),
      static_cast<unsigned long long>(R.Stats.TestScreenRejected),
      static_cast<unsigned long long>(R.Stats.BmcRejected),
      static_cast<unsigned long long>(R.Stats.FormulaBuilds));
  return Buf;
}

/// Read-merge-write: keeps every existing workload except prior
/// repair_offbyone_* entries, appends the fresh twins, leaves the other
/// top-level keys (bench name, hardware_concurrency) untouched.
void mergeIntoJson(const char *Path, const std::vector<std::string> &Fresh) {
  std::string HeadKeys;
  std::vector<std::string> Kept;
  std::ifstream In(Path);
  if (In) {
    std::stringstream SS;
    SS << In.rdbuf();
    std::string Error;
    auto Root = parseJson(SS.str(), Error);
    if (Root && Root->isObject()) {
      for (const auto &KV : Root->Members) {
        if (KV.first == "workloads") {
          for (const JsonValue &W : KV.second.Elements) {
            const JsonValue *Name = W.find("name");
            if (Name &&
                Name->Text.rfind("repair_offbyone", 0) == 0)
              continue; // replaced by this run
            Kept.push_back(renderJson(W));
          }
          continue;
        }
        HeadKeys += "  \"" + jsonEscape(KV.first) +
                    "\": " + renderJson(KV.second) + ",\n";
      }
    }
  }
  if (HeadKeys.empty())
    HeadKeys = "  \"bench\": \"bench_repair_offbyone\",\n";

  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::printf("cannot open %s\n", Path);
    return;
  }
  std::fprintf(F, "{\n%s  \"workloads\": [\n", HeadKeys.c_str());
  for (size_t I = 0; I < Kept.size(); ++I)
    std::fprintf(F, "    %s,\n", Kept[I].c_str());
  for (size_t I = 0; I < Fresh.size(); ++I)
    std::fprintf(F, "    %s%s\n", Fresh[I].c_str(),
                 I + 1 < Fresh.size() ? "," : "");
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("merged %zu workload(s) into %s (%zu kept)\n", Fresh.size(),
              Path, Kept.size());
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = "BENCH_solvers.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc)
      JsonPath = argv[++I];
  }

  UnrollOptions UO;
  UO.BitWidth = 16;
  UO.MaxLoopUnwind = 10;
  UO.TrustedFunctions.insert(program2LibraryFunction());
  UO.HardLines = program2HardLines();
  EncodeOptions EO;
  EO.BitWidth = UO.BitWidth;

  // Encode once through the pipeline seam -- the same prepared driver
  // serves BMC, localization, the prescreen, and the pooled repair twin.
  Timer T;
  std::string Error;
  auto P = prepareProgram(program2Source(), "main", UO, EO, Error);
  if (!P) {
    std::printf("%s", Error.c_str());
    return 1;
  }
  std::printf("encode: %.3fs (%d vars, %zu clauses)\n", T.seconds(),
              P->Driver->formula().encoded().Formula.numVars(),
              P->Driver->formula().encoded().Formula.numClauses());

  T.reset();
  auto Cex = P->Driver->findCounterexample(Spec{});
  std::printf("BMC bounds-violation search: %.3fs -> %s\n", T.seconds(),
              Cex ? "violation found" : "none (unexpected)");
  if (!Cex)
    return 1;

  // Pooled twin: localization and repair through runRepairPipeline, the
  // exact seam the CLI `repair` subcommand and the serve daemon drive.
  RepairRequest R;
  R.Unroll = UO;
  R.Encode = EO;
  R.Inputs = {*Cex};
  R.Repair.OperatorSwap = false; // the study tries the two one-off constants
  T.reset();
  RepairPipelineResult Pooled = runRepairPipeline(*P, R);
  double PooledWall = T.seconds();
  if (Pooled.Status != PipelineStatus::Localized) {
    std::printf("localization failed: %s\n", Pooled.Message.c_str());
    return 1;
  }
  std::printf("pooled localize+repair: %.3fs, suspect lines:", PooledWall);
  for (uint32_t L : Pooled.Report.AllLines)
    std::printf(" %u", L);
  bool CallSite = std::find(Pooled.Report.AllLines.begin(),
                            Pooled.Report.AllLines.end(),
                            program2BugLine()) != Pooled.Report.AllLines.end();
  std::printf("  (call site line %u %s)\n", program2BugLine(),
              CallSite ? "blamed, as in the paper" : "MISSED");

  // Rebuild twin: the reference overload re-encodes per verification, the
  // funnel shows what the pooled seam saves.
  RepairOptions RO;
  RO.Unroll = UO;
  RO.OperatorSwap = false;
  T.reset();
  RepairResult Rebuild =
      repairProgram(*P->Prog, "main", {*Cex}, Spec{}, nullptr, RO);
  double RebuildWall = T.seconds();

  for (const auto &Twin :
       {std::make_pair("pooled", &Pooled.Repair),
        std::make_pair("rebuild", &Rebuild)}) {
    const RepairResult &Fix = *Twin.second;
    std::printf("%s repair: %zu tried of %zu planned (%zu test-rejected, "
                "%zu bmc-rejected, %zu formula builds) -> %s\n", Twin.first,
                Fix.CandidatesTried, Fix.Stats.CandidatesPlanned,
                Fix.Stats.TestScreenRejected, Fix.Stats.BmcRejected,
                Fix.Stats.FormulaBuilds,
                Fix.Found ? Fix.Suggestion.Description.c_str()
                          : "no fix validated");
  }
  if (Pooled.Repair.Found)
    std::printf("paper's outcome: SIZE -> SIZE-1 validated; here: line %u, "
                "%s\n",
                Pooled.Repair.Suggestion.Line,
                Pooled.Repair.Suggestion.Description.c_str());
  bool Agree =
      Pooled.Repair.Found == Rebuild.Found &&
      (!Pooled.Repair.Found ||
       (Pooled.Repair.Suggestion.Line == Rebuild.Suggestion.Line &&
        Pooled.Repair.Suggestion.Description ==
            Rebuild.Suggestion.Description));
  if (!Agree)
    std::printf("TWIN MISMATCH: pooled and rebuild disagree\n");

  mergeIntoJson(JsonPath,
                {workloadEntry("repair_offbyone_pooled", PooledWall,
                               Pooled.Repair),
                 workloadEntry("repair_offbyone_rebuild", RebuildWall,
                               Rebuild)});

  return Pooled.Repair.Found && CallSite && Agree ? 0 : 1;
}
