//===- offbyone_repair.cpp - The strncat study (Section 6.3) -----------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Program 2: MyFunCopy passes SIZE instead of SIZE-1 to strncat, so the
// library's guaranteed null termination writes one byte past the buffer.
// With the library trusted (its constraints hard), BugAssist blames the
// call site and the off-by-one synthesizer validates the SIZE-1 fix.
//
// Run:  ./example_offbyone_repair
//
//===----------------------------------------------------------------------===//

#include "core/BugAssist.h"
#include "core/Repair.h"
#include "lang/AstPrinter.h"
#include "lang/Sema.h"
#include "programs/SmallDemos.h"

#include <cstdio>

using namespace bugassist;

int main() {
  std::printf("=== Program 2 (array-based strncat misuse) ===\n%s\n",
              program2Source().c_str());

  DiagEngine Diags;
  auto Prog = parseAndAnalyze(program2Source(), Diags);
  if (!Prog) {
    std::printf("%s", Diags.render().c_str());
    return 1;
  }

  UnrollOptions UO;
  UO.BitWidth = 16;
  UO.MaxLoopUnwind = 10;
  UO.TrustedFunctions.insert(program2LibraryFunction());
  UO.HardLines = program2HardLines(); // the input-string setup is fixture

  // Find a failing execution: BMC locates an input string that drives the
  // out-of-bounds terminator write.
  BugAssistDriver Driver(*Prog, "main", UO);
  auto Cex = Driver.findCounterexample(Spec{});
  if (!Cex) {
    std::printf("no bounds violation found -- unexpected\n");
    return 1;
  }
  std::printf("failing input string:");
  for (const InputValue &V : *Cex)
    std::printf(" %lld", static_cast<long long>(V.Scalar));
  std::printf("\n");

  // Localize with library constraints hard (Section 6.3).
  LocalizationReport R = Driver.localize(*Cex, Spec{});
  std::printf("suspect lines:");
  for (uint32_t L : R.AllLines)
    std::printf(" %u", L);
  std::printf("   (call site is line %u)\n", program2BugLine());

  // Synthesize the off-by-one fix (Algorithm 2).
  RepairOptions RO;
  RO.Unroll = UO;
  RO.OperatorSwap = false; // the paper's study tries constants only
  RepairResult Fix = repairProgram(*Prog, "main", {*Cex}, Spec{}, nullptr, RO);
  if (!Fix.Found) {
    std::printf("no repair validated (%zu candidates)\n",
                Fix.CandidatesTried);
    return 1;
  }
  std::printf("\nvalidated repair at line %u: %s\n", Fix.Suggestion.Line,
              Fix.Suggestion.Description.c_str());
  std::printf("\n=== Fixed program ===\n%s",
              printProgram(*Fix.Suggestion.FixedProgram).c_str());
  return 0;
}
