//===- loop_debug.cpp - Loop-iteration diagnosis (Section 6.4) ----------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Program 3: the nearest-integer square root returns i instead of i - 1
// after the loop. Per-iteration selectors with the Eq. 3 weights
// (alpha + eta - kappa) tell the programmer both where the fix belongs
// (line 10, outside the loop) and which loop iteration first carries the
// bad value.
//
// Run:  ./example_loop_debug
//
//===----------------------------------------------------------------------===//

#include "core/LoopDiagnosis.h"
#include "lang/Sema.h"
#include "programs/SmallDemos.h"

#include <cstdio>

using namespace bugassist;

int main() {
  std::printf("=== Program 3 (squareroot, bug at line %u) ===\n%s\n",
              program3BugLine(), program3Source().c_str());

  DiagEngine Diags;
  auto Prog = parseAndAnalyze(program3Source(), Diags);
  if (!Prog) {
    std::printf("%s", Diags.render().c_str());
    return 1;
  }

  LoopDiagnosisOptions Opts;
  Opts.Unroll.MaxLoopUnwind = 10; // val = 50 needs 7 iterations
  Opts.Localize.MaxDiagnoses = 16;
  LoopDiagnosisResult R = diagnoseLoopFault(*Prog, "main", {}, Spec{}, Opts);

  std::printf("weighted diagnoses (alpha=%u, eta=%d):\n", 1,
              Opts.Unroll.MaxLoopUnwind);
  for (size_t I = 0; I < R.Report.Diagnoses.size(); ++I) {
    const Diagnosis &D = R.Report.Diagnoses[I];
    std::printf("  #%zu cost %llu:", I + 1,
                static_cast<unsigned long long>(D.Cost));
    for (size_t J = 0; J < D.Lines.size(); ++J) {
      if (D.Unwindings[J] > 0)
        std::printf(" line %u @ iteration %u", D.Lines[J], D.Unwindings[J]);
      else
        std::printf(" line %u", D.Lines[J]);
    }
    std::printf("\n");
  }

  if (!R.First.empty())
    std::printf("\ncheapest fix: line %u%s -- the paper's conclusion: the "
                "fault is outside the loop even though diagnosing it needs "
                "the loop analysis.\n",
                R.First[0].Line,
                R.First[0].Iteration
                    ? (" @ iteration " + std::to_string(R.First[0].Iteration))
                          .c_str()
                    : "");
  for (const Diagnosis &D : R.Report.Diagnoses) {
    if (D.Lines.size() == 1 && D.Unwindings[0] > 0) {
      std::printf("cheapest pure in-loop fix: line %u at iteration %u (the "
                  "last executed iteration of the failing run).\n",
                  D.Lines[0], D.Unwindings[0]);
      break;
    }
  }
  return 0;
}
