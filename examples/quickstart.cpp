//===- quickstart.cpp - BugAssist-Repro in ~60 lines -------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Walks the whole pipeline of the paper's Figure 1 on the Section 2
// motivating example (Program 1):
//   mini-C source -> parse/sema -> BMC counterexample -> trace formula ->
//   partial MaxSAT -> CoMSS enumeration -> suspect lines -> repair.
//
// Run:  ./example_quickstart
//
//===----------------------------------------------------------------------===//

#include "core/BugAssist.h"
#include "core/Repair.h"
#include "lang/AstPrinter.h"
#include "lang/Sema.h"
#include "programs/SmallDemos.h"

#include <cstdio>

using namespace bugassist;

int main() {
  // Program 1: the array dereference is out of bounds when index == 1.
  const std::string &Source = program1Source();
  std::printf("=== Program under test ===\n%s\n", Source.c_str());

  DiagEngine Diags;
  std::unique_ptr<Program> Prog = parseAndAnalyze(Source, Diags);
  if (!Prog) {
    std::printf("compilation failed:\n%s", Diags.render().c_str());
    return 1;
  }

  // Step 1 (Section 4.1): find a failing execution by bounded model
  // checking -- no test suite needed.
  BugAssistDriver Driver(*Prog, "main");
  std::optional<InputVector> Failing = Driver.findCounterexample(Spec{});
  if (!Failing) {
    std::printf("no counterexample found: the program verifies.\n");
    return 0;
  }
  std::printf("counterexample input: index = %lld\n",
              static_cast<long long>((*Failing)[0].Scalar));

  // Step 2 (Algorithm 1): enumerate minimal sets of suspect lines.
  LocalizationReport Report = Driver.localize(*Failing, Spec{});
  std::printf("\n=== Suspects (CoMSS enumeration) ===\n");
  for (size_t I = 0; I < Report.Diagnoses.size(); ++I) {
    const Diagnosis &D = Report.Diagnoses[I];
    std::printf("diagnosis %zu (cost %llu): line%s", I + 1,
                static_cast<unsigned long long>(D.Cost),
                D.Lines.size() > 1 ? "s" : "");
    for (uint32_t L : D.Lines)
      std::printf(" %u", L);
    std::printf("\n");
  }
  std::printf("union of suspect lines:");
  for (uint32_t L : Report.AllLines)
    std::printf(" %u", L);
  std::printf("  (bug injected at line %u)\n", program1BugLine());

  // Step 3 (Algorithm 2): try common-error fixes on the suspects.
  RepairResult Fix = repairProgram(*Prog, "main", {*Failing}, Spec{});
  if (Fix.Found) {
    std::printf("\n=== Suggested repair ===\n");
    std::printf("line %u: %s\n", Fix.Suggestion.Line,
                Fix.Suggestion.Description.c_str());
    std::printf("\n=== Fixed program ===\n%s",
                printProgram(*Fix.Suggestion.FixedProgram).c_str());
  } else {
    std::printf("\nno off-by-one / operator repair validated "
                "(%zu candidates tried)\n",
                Fix.CandidatesTried);
  }
  return 0;
}
