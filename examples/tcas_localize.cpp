//===- tcas_localize.cpp - The Figure 2 case study ----------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Reproduces the Section 6.1 / Figure 2 workflow on TCAS v2 (the NOZCROSS
// constant fault): generate the golden outputs from the correct version,
// segregate failing tests, localize each failure, and rank the reported
// lines by frequency (Section 4.3).
//
// Run:  ./example_tcas_localize [version]     (default version: 2)
//
//===----------------------------------------------------------------------===//

#include "core/BugAssist.h"
#include "core/Pipeline.h"
#include "core/Ranking.h"
#include "lang/Sema.h"
#include "programs/Tcas.h"
#include "programs/TcasMutants.h"

#include <cstdio>
#include <cstdlib>

using namespace bugassist;

int main(int argc, char **argv) {
  int Version = argc > 1 ? std::atoi(argv[1]) : 2;
  if (Version < 1 || Version > 41) {
    std::printf("usage: %s [1..41]\n", argv[0]);
    return 1;
  }
  const TcasMutant &M = tcasMutants()[static_cast<size_t>(Version - 1)];
  std::printf("TCAS v%d (%s): %s\n", M.Version, errorTypeName(M.Type),
              M.Description.c_str());
  std::printf("ground-truth fault line(s):");
  for (uint32_t L : M.BugLines)
    std::printf(" %u", L);
  std::printf("\n\n");

  DiagEngine Diags;
  auto Golden = parseAndAnalyze(tcasSource(), Diags);
  auto Faulty = parseAndAnalyze(M.Source, Diags);
  if (!Golden || !Faulty) {
    std::printf("%s", Diags.render().c_str());
    return 1;
  }

  // Golden outputs + failing-test segregation (Section 6.1 methodology).
  FailingTests Failing = segregateFailingTests(
      *Golden, *Faulty, tcasTestPool(1600), "main", tcasExecOptions());
  std::printf("failing tests: %zu of %zu\n", Failing.Inputs.size(),
              Failing.PoolSize);
  if (Failing.Inputs.empty()) {
    std::printf("this version is indistinguishable on the pool "
                "(v33/v38 are designed that way).\n");
    return 0;
  }

  // Localize a handful of failures and rank lines by frequency.
  size_t Runs = std::min<size_t>(Failing.Inputs.size(), 8);
  Failing.Inputs.resize(Runs);
  Failing.Goldens.resize(Runs);
  BugAssistDriver Driver(*Faulty, "main", tcasUnrollOptions());
  Spec S;
  S.CheckObligations = false;
  LocalizeOptions LO;
  LO.MaxDiagnoses = 24;
  RankingReport R = rankSuspects(Driver.formula(), Failing.Inputs, S,
                                 &Failing.Goldens, LO);

  std::printf("\nline  freq   (over %zu failing runs)\n", R.Runs);
  for (const RankedLine &RL : R.Ranked) {
    bool IsBug = false;
    for (uint32_t L : M.BugLines)
      IsBug |= RL.Line == L;
    std::printf("%4u  %4.0f%%  %s\n", RL.Line, RL.Frequency * 100,
                IsBug ? "<-- injected fault" : "");
  }
  return 0;
}
