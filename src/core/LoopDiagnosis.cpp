//===- LoopDiagnosis.cpp - Faulty loop-iteration diagnosis -------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/LoopDiagnosis.h"

#include "bmc/Encoder.h"

using namespace bugassist;

LoopDiagnosisResult bugassist::diagnoseLoopFault(const Program &Prog,
                                                 const std::string &Entry,
                                                 const InputVector &FailingTest,
                                                 const Spec &S,
                                                 LoopDiagnosisOptions Opts) {
  UnrolledProgram UP = unrollProgram(Prog, Entry, Opts.Unroll);

  EncodeOptions EO;
  EO.BitWidth = Opts.Unroll.BitWidth;
  EO.PerIterationGroups = true;
  EO.BaseWeight = Opts.BaseWeight;
  TraceFormula TF(encodeProgram(UP, EO));

  LoopDiagnosisResult Result;
  LocalizeOptions LO = Opts.Localize;
  LO.Weighted = true; // Eq. 3 weights need the weighted solver

  MaxSatInstance Inst = TF.localizationInstance(FailingTest, S);
  if (Opts.RestrictToLoopGroups) {
    // Pin every non-loop statement enabled: its selector becomes a hard
    // unit, and its soft clause is trivially satisfied alongside.
    for (const ClauseGroup &G : TF.encoded().Formula.groups())
      if (G.Unwinding == 0)
        Inst.Hard.push_back({mkLit(G.Selector)});
  }
  Result.Report = enumerateCoMSSes(std::move(Inst),
                                   TF.encoded().Formula, LO);

  for (size_t D = 0; D < Result.Report.Diagnoses.size(); ++D) {
    const Diagnosis &Diag = Result.Report.Diagnoses[D];
    for (size_t I = 0; I < Diag.Lines.size(); ++I) {
      IterationSuspect IS{Diag.Lines[I], Diag.Unwindings[I]};
      if (D == 0)
        Result.First.push_back(IS);
      Result.All.push_back(IS);
    }
  }
  return Result;
}
