//===- Pipeline.cpp - End-to-end localization pipeline ----------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "interp/Interpreter.h"
#include "lang/AstPrinter.h"

#include <algorithm>
#include <charconv>
#include <map>

using namespace bugassist;

namespace {

/// Interpreter options agreeing with the encoding the pipeline builds:
/// same bit width, same bounds checking. Division-by-zero trapping follows
/// the obligation setting (the encoder emits obligations for both).
ExecOptions execOptionsFor(const PipelineRequest &R) {
  ExecOptions EO;
  EO.BitWidth = R.Unroll.BitWidth;
  EO.CheckArrayBounds = R.Unroll.CheckArrayBounds && R.CheckObligations;
  EO.CheckDivByZero = R.CheckObligations;
  return EO;
}

/// Does \p Run violate the spec of \p R?
bool violatesSpec(const ExecResult &Run, const PipelineRequest &R) {
  if (R.CheckObligations && Run.failed())
    return true;
  if (R.GoldenReturn && Run.Status == ExecStatus::Ok &&
      Run.ReturnValue != *R.GoldenReturn)
    return true;
  return false;
}

void appendDiagnosisLines(std::string &Out, const Diagnosis &D) {
  for (size_t J = 0; J < D.Lines.size(); ++J) {
    Out += ' ';
    Out += std::to_string(D.Lines[J]);
    if (J < D.Unwindings.size() && D.Unwindings[J] != 0) {
      Out += '@';
      Out += std::to_string(D.Unwindings[J]);
    }
  }
}

/// Per-line hit counts over all diagnoses, ordered by hits descending then
/// line ascending -- the single-run analogue of core/Ranking.h.
std::vector<std::pair<uint32_t, size_t>>
lineHits(const LocalizationReport &R) {
  std::map<uint32_t, size_t> Hits;
  for (const Diagnosis &D : R.Diagnoses) {
    std::vector<uint32_t> Unique(D.Lines);
    std::sort(Unique.begin(), Unique.end());
    Unique.erase(std::unique(Unique.begin(), Unique.end()), Unique.end());
    for (uint32_t L : Unique)
      ++Hits[L];
  }
  std::vector<std::pair<uint32_t, size_t>> Order(Hits.begin(), Hits.end());
  std::sort(Order.begin(), Order.end(),
            [](const auto &A, const auto &B) {
              return A.second != B.second ? A.second > B.second
                                          : A.first < B.first;
            });
  return Order;
}

/// The query-answering back half shared by the one-shot and prepared
/// paths: judge the input (or find one by BMC), then enumerate CoMSSes --
/// on \p Session when given, else on a session built from scratch.
PipelineResult runOnDriver(const Program &Prog, const BugAssistDriver &Driver,
                           const PipelineRequest &R, MaxSatSession *Session) {
  PipelineResult Res;
  Res.SpecUsed.CheckObligations = R.CheckObligations;
  Res.SpecUsed.GoldenReturn = R.GoldenReturn;

  if (R.Input) {
    // Sanity-check the given input concretely before blaming anything:
    // a passing input would make the MaxSAT instance satisfiable at cost
    // zero and the report vacuous.
    Interpreter I(Prog, execOptionsFor(R));
    ExecResult Run = I.run(R.Entry, *R.Input);
    if (Run.Status == ExecStatus::SetupError) {
      Res.Status = PipelineStatus::InputNotFailing;
      Res.Code = ErrorCode::InputNotFailing;
      Res.Message = "input does not match the entry function's parameters";
      return Res;
    }
    if (Run.Status == ExecStatus::AssumeFail) {
      Res.Status = PipelineStatus::InputNotFailing;
      Res.Code = ErrorCode::InputNotFailing;
      Res.Message = "input rejected by an assume(): execution infeasible";
      return Res;
    }
    if (!violatesSpec(Run, R)) {
      Res.Status = PipelineStatus::InputNotFailing;
      Res.Code = ErrorCode::InputNotFailing;
      if (Run.Status != ExecStatus::Ok) {
        // Reachable only when the run aborted but obligations are not
        // part of the spec (or the step limit hit): there is no return
        // value to judge and nothing this spec blames.
        const char *Kind = Run.Status == ExecStatus::AssertFail
                               ? "an assert failure"
                               : Run.Status == ExecStatus::BoundsFail
                                     ? "an out-of-bounds access"
                                     : Run.Status == ExecStatus::DivByZero
                                           ? "a division by zero"
                                           : "the step limit";
        Res.Message = std::string("input stops on ") + Kind +
                      ", which the requested spec does not count as a "
                      "failure";
      } else if (R.GoldenReturn) {
        Res.Message = "input returns " + std::to_string(Run.ReturnValue) +
                      ", matching the golden value; the spec holds";
      } else {
        Res.Message = "input satisfies every obligation; the spec holds";
      }
      return Res;
    }
    Res.FailingInput = *R.Input;
  } else {
    // No input given: find one by bounded model checking (Section 4.1).
    auto Cex = Driver.findCounterexample(Res.SpecUsed, R.BmcConflictBudget);
    if (!Cex) {
      Res.Status = PipelineStatus::NoCounterexample;
      Res.Code = ErrorCode::Ok;
      Res.Message = "no spec violation found within the unwinding bounds";
      return Res;
    }
    Res.FailingInput = *Cex;
  }

  if (Session)
    Res.Report = localizeFault(*Session, Driver.formula(), Res.FailingInput,
                               Res.SpecUsed, R.Localize);
  else
    Res.Report = Driver.localize(Res.FailingInput, Res.SpecUsed, R.Localize);
  Res.Status = PipelineStatus::Localized;
  Res.Code = Res.Report.Incomplete ? ErrorCode::BudgetExhausted : ErrorCode::Ok;
  return Res;
}

} // namespace

PipelineResult bugassist::runLocalizePipeline(const Program &Prog,
                                              const PipelineRequest &R) {
  BugAssistDriver Driver(Prog, R.Entry, R.Unroll, R.Encode);
  return runOnDriver(Prog, Driver, R, /*Session=*/nullptr);
}

PipelineResult bugassist::runLocalizePipeline(std::string_view Source,
                                              const PipelineRequest &R) {
  DiagEngine Diags;
  std::unique_ptr<Program> Prog = parseAndAnalyze(Source, Diags);
  if (!Prog) {
    PipelineResult Res;
    Res.Status = PipelineStatus::CompileError;
    Res.Code = ErrorCode::CompileError;
    Res.Message = Diags.render();
    return Res;
  }
  return runLocalizePipeline(*Prog, R);
}

std::unique_ptr<PreparedProgram>
bugassist::prepareProgram(std::string_view Source, const std::string &Entry,
                          const UnrollOptions &Unroll,
                          const EncodeOptions &Encode, std::string &Error) {
  DiagEngine Diags;
  std::unique_ptr<Program> Prog = parseAndAnalyze(Source, Diags);
  if (!Prog) {
    Error = Diags.render();
    return nullptr;
  }
  auto P = std::make_unique<PreparedProgram>();
  P->Driver =
      std::make_unique<BugAssistDriver>(*Prog, Entry, Unroll, Encode);
  P->Prog = std::move(Prog);
  return P;
}

PipelineResult bugassist::runLocalizePipeline(const PreparedProgram &P,
                                              const PipelineRequest &R,
                                              MaxSatSession *Session) {
  return runOnDriver(*P.Prog, *P.Driver, R, Session);
}

std::vector<int64_t> bugassist::goldenOutputs(
    const Program &Golden, const std::vector<InputVector> &Pool,
    const std::string &Entry, const ExecOptions &EO) {
  Interpreter GI(Golden, EO);
  std::vector<int64_t> Out;
  Out.reserve(Pool.size());
  for (const InputVector &In : Pool)
    Out.push_back(GI.run(Entry, In).ReturnValue);
  return Out;
}

FailingTests bugassist::segregateFailingTests(
    const Program &Golden, const Program &Faulty,
    const std::vector<InputVector> &Pool, const std::string &Entry,
    const ExecOptions &EO, size_t MaxTests, size_t MaxPassing) {
  FailingTests Out;
  Out.PoolSize = Pool.size();
  Interpreter GI(Golden, EO);
  Interpreter FI(Faulty, EO);
  for (const InputVector &In : Pool) {
    if (Out.Inputs.size() >= MaxTests &&
        Out.PassingInputs.size() >= MaxPassing)
      break;
    int64_t Want = GI.run(Entry, In).ReturnValue;
    if (FI.run(Entry, In).ReturnValue != Want) {
      if (Out.Inputs.size() < MaxTests) {
        Out.Inputs.push_back(In);
        Out.Goldens.push_back(Want);
      }
    } else if (Out.PassingInputs.size() < MaxPassing) {
      Out.PassingInputs.push_back(In);
      Out.PassingGoldens.push_back(Want);
    }
  }
  return Out;
}

FailingTests bugassist::segregateFailingTests(
    const std::vector<int64_t> &GoldenOut, const Program &Faulty,
    const std::vector<InputVector> &Pool, const std::string &Entry,
    const ExecOptions &EO, size_t MaxTests, size_t MaxPassing) {
  FailingTests Out;
  Out.PoolSize = Pool.size();
  Interpreter FI(Faulty, EO);
  for (size_t I = 0; I < Pool.size(); ++I) {
    if (Out.Inputs.size() >= MaxTests &&
        Out.PassingInputs.size() >= MaxPassing)
      break;
    if (FI.run(Entry, Pool[I]).ReturnValue != GoldenOut[I]) {
      if (Out.Inputs.size() < MaxTests) {
        Out.Inputs.push_back(Pool[I]);
        Out.Goldens.push_back(GoldenOut[I]);
      }
    } else if (Out.PassingInputs.size() < MaxPassing) {
      Out.PassingInputs.push_back(Pool[I]);
      Out.PassingGoldens.push_back(GoldenOut[I]);
    }
  }
  return Out;
}

std::string bugassist::renderInputVector(const InputVector &In) {
  std::string Out;
  for (size_t I = 0; I < In.size(); ++I) {
    if (I)
      Out += ',';
    if (In[I].IsArray) {
      Out += '[';
      for (size_t J = 0; J < In[I].Array.size(); ++J) {
        if (J)
          Out += ',';
        Out += std::to_string(In[I].Array[J]);
      }
      Out += ']';
    } else {
      Out += std::to_string(In[I].Scalar);
    }
  }
  return Out;
}

namespace {

bool parseScalar(std::string_view T, int64_t &Out) {
  // Trim surrounding whitespace; from_chars is strict about the rest.
  while (!T.empty() && (T.front() == ' ' || T.front() == '\t'))
    T.remove_prefix(1);
  while (!T.empty() && (T.back() == ' ' || T.back() == '\t'))
    T.remove_suffix(1);
  if (T.empty())
    return false;
  const char *B = T.data(), *E = T.data() + T.size();
  auto [P, Ec] = std::from_chars(B, E, Out);
  return Ec == std::errc() && P == E;
}

} // namespace

std::optional<InputVector> bugassist::parseInputVector(std::string_view Text,
                                                       std::string &Error) {
  InputVector Out;
  size_t Pos = 0;
  auto skipWs = [&] {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t'))
      ++Pos;
  };
  skipWs();
  if (Pos == Text.size())
    return Out; // empty vector: entry with no parameters
  for (;;) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '[') {
      size_t Close = Text.find(']', Pos);
      if (Close == std::string_view::npos) {
        Error = "unterminated '[' in input";
        return std::nullopt;
      }
      std::vector<int64_t> Elems;
      std::string_view Inner = Text.substr(Pos + 1, Close - Pos - 1);
      size_t Start = 0;
      bool Empty = true;
      for (size_t I = 0; I <= Inner.size(); ++I) {
        if (I == Inner.size() || Inner[I] == ',') {
          std::string_view Item = Inner.substr(Start, I - Start);
          bool Blank = true;
          for (char C : Item)
            Blank = Blank && (C == ' ' || C == '\t');
          if (!Blank) {
            int64_t V;
            if (!parseScalar(Item, V)) {
              Error = "bad array element '" + std::string(Item) + "'";
              return std::nullopt;
            }
            Elems.push_back(V);
            Empty = false;
          } else if (!Empty || I != Inner.size()) {
            Error = "empty array element";
            return std::nullopt;
          }
          Start = I + 1;
        }
      }
      Out.push_back(InputValue::array(std::move(Elems)));
      Pos = Close + 1;
    } else {
      size_t End = Pos;
      while (End < Text.size() && Text[End] != ',')
        ++End;
      int64_t V;
      if (!parseScalar(Text.substr(Pos, End - Pos), V)) {
        Error = "bad input value '" +
                std::string(Text.substr(Pos, End - Pos)) + "'";
        return std::nullopt;
      }
      Out.push_back(InputValue::scalar(V));
      Pos = End;
    }
    skipWs();
    if (Pos == Text.size())
      break;
    if (Text[Pos] != ',') {
      Error = std::string("expected ',' before '") + Text[Pos] + "'";
      return std::nullopt;
    }
    ++Pos;
  }
  return Out;
}

bool bugassist::parseHardLinesSpec(std::string_view Spec,
                                   std::set<uint32_t> &Out) {
  constexpr int64_t MaxLine = 1000000;
  auto parseLine = [](std::string_view T, int64_t &V) {
    if (T.empty())
      return false;
    const char *B = T.data(), *E = T.data() + T.size();
    auto [P, Ec] = std::from_chars(B, E, V);
    return Ec == std::errc() && P == E;
  };
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string_view::npos)
      End = Spec.size();
    std::string_view Item = Spec.substr(Pos, End - Pos);
    if (Item.empty())
      return false;
    size_t Dash = Item.find('-');
    int64_t Lo = 0, Hi = 0;
    if (Dash == std::string_view::npos) {
      if (!parseLine(Item, Lo) || Lo < 1 || Lo > MaxLine)
        return false;
      Hi = Lo;
    } else {
      if (!parseLine(Item.substr(0, Dash), Lo) ||
          !parseLine(Item.substr(Dash + 1), Hi) || Lo < 1 || Hi < Lo ||
          Hi > MaxLine)
        return false;
    }
    for (int64_t L = Lo; L <= Hi; ++L)
      Out.insert(static_cast<uint32_t>(L));
    Pos = End + 1;
    if (End == Spec.size())
      break;
  }
  return true;
}

std::string bugassist::renderLocalizationReport(const LocalizationReport &R) {
  std::string Out;
  for (size_t I = 0; I < R.Diagnoses.size(); ++I) {
    const Diagnosis &D = R.Diagnoses[I];
    Out += "diagnosis " + std::to_string(I + 1) + " (cost " +
           std::to_string(D.Cost) + "): line" +
           (D.Lines.size() > 1 ? "s" : "");
    appendDiagnosisLines(Out, D);
    Out += '\n';
  }
  Out += "suspect lines:";
  for (uint32_t L : R.AllLines)
    Out += ' ' + std::to_string(L);
  Out += '\n';
  if (!R.Diagnoses.empty()) {
    Out += "line  hits\n";
    for (const auto &[Line, Hits] : lineHits(R))
      Out += "  " + std::to_string(Line) + "  " + std::to_string(Hits) + "/" +
             std::to_string(R.Diagnoses.size()) + "\n";
  }
  if (R.Exhausted)
    Out += "no more suspects (enumeration exhausted after " +
           std::to_string(R.Diagnoses.size()) + " diagnoses)\n";
  else if (R.Incomplete)
    // Deterministic at every thread count: only the count of *completed*
    // diagnoses appears, never the budget-dependent partial state.
    Out += "INCOMPLETE: resource budget exhausted after " +
           std::to_string(R.Diagnoses.size()) +
           " diagnoses (more may exist)\n";
  else
    Out += "diagnosis cap reached (" + std::to_string(R.Diagnoses.size()) +
           " diagnoses; more may exist)\n";
  return Out;
}

std::string bugassist::renderLocalizationJson(const LocalizationReport &R) {
  std::string Out = "{\n  \"diagnoses\": [";
  for (size_t I = 0; I < R.Diagnoses.size(); ++I) {
    const Diagnosis &D = R.Diagnoses[I];
    Out += I ? ",\n    " : "\n    ";
    Out += "{\"cost\": " + std::to_string(D.Cost) + ", \"lines\": [";
    for (size_t J = 0; J < D.Lines.size(); ++J)
      Out += (J ? ", " : "") + std::to_string(D.Lines[J]);
    Out += "], \"unwindings\": [";
    for (size_t J = 0; J < D.Unwindings.size(); ++J)
      Out += (J ? ", " : "") + std::to_string(D.Unwindings[J]);
    Out += "]}";
  }
  Out += R.Diagnoses.empty() ? "],\n" : "\n  ],\n";
  Out += "  \"suspect_lines\": [";
  for (size_t I = 0; I < R.AllLines.size(); ++I)
    Out += (I ? ", " : "") + std::to_string(R.AllLines[I]);
  Out += "],\n  \"line_hits\": [";
  auto Hits = lineHits(R);
  for (size_t I = 0; I < Hits.size(); ++I)
    Out += std::string(I ? ", " : "") + "{\"line\": " +
           std::to_string(Hits[I].first) +
           ", \"hits\": " + std::to_string(Hits[I].second) + "}";
  Out += "],\n  \"exhausted\": ";
  Out += R.Exhausted ? "true" : "false";
  Out += ",\n  \"incomplete\": ";
  Out += R.Incomplete ? "true" : "false";
  Out += "\n}\n";
  return Out;
}

std::string bugassist::renderSearchStats(const LocalizationReport &R) {
  const SolverStats &S = R.Search;
  std::string Out;
  Out += "sat calls:    " + std::to_string(R.SatCalls) + "\n";
  Out += "conflicts:    " + std::to_string(S.Conflicts) + "\n";
  Out += "decisions:    " + std::to_string(S.Decisions) + "\n";
  Out += "propagations: " + std::to_string(S.Propagations) + "\n";
  Out += "restarts:     " + std::to_string(S.Restarts) + " (+" +
         std::to_string(S.RestartsBlocked) + " blocked)\n";
  Out += "learnts:      " + std::to_string(S.LearnedClauses) + " learned, " +
         std::to_string(S.DeletedClauses) + " deleted\n";
  if (S.VarsEliminated || S.ClausesSubsumed || S.LitsSelfSubsumed)
    Out += "simplify:     " + std::to_string(S.VarsEliminated) +
           " vars eliminated, " + std::to_string(S.ClausesSubsumed) +
           " clauses subsumed, " + std::to_string(S.LitsSelfSubsumed) +
           " lits self-subsumed, " + std::to_string(S.ReconstructBytes) +
           " reconstruction bytes\n";
  if (S.ClausesExported || S.ClausesImported)
    Out += "exchange:     " + std::to_string(S.ClausesExported) +
           " exported, " + std::to_string(S.ClausesImported) + " imported\n";
  if (!R.PortfolioWins.empty()) {
    Out += "races won:   ";
    for (uint64_t W : R.PortfolioWins)
      Out += ' ' + std::to_string(W);
    Out += '\n';
  }
  return Out;
}

std::string bugassist::renderLocalizeOutput(const PipelineResult &Res,
                                            bool Json) {
  switch (Res.Status) {
  case PipelineStatus::CompileError:
  case PipelineStatus::InputNotFailing:
    return ""; // reported out of band, never on stdout
  case PipelineStatus::NoCounterexample:
    return Res.Message + "\n";
  case PipelineStatus::Localized:
    break;
  }
  if (!Json)
    return "failing input: " + renderInputVector(Res.FailingInput) + "\n" +
           renderLocalizationReport(Res.Report);
  std::string Out =
      "{\n  \"input\": \"" + renderInputVector(Res.FailingInput) +
      "\",\n  \"report\": ";
  std::string Rep = renderLocalizationJson(Res.Report);
  // Indent the nested object by two spaces to keep the output readable.
  for (size_t I = 0; I < Rep.size(); ++I) {
    Out += Rep[I];
    if (Rep[I] == '\n' && I + 1 < Rep.size())
      Out += "  ";
  }
  Out += "}\n";
  return Out;
}

RepairPipelineResult bugassist::runRepairPipeline(const PreparedProgram &P,
                                                  const RepairRequest &R,
                                                  MaxSatSession *Session) {
  RepairPipelineResult Out;
  if (R.Inputs.empty()) {
    Out.Status = PipelineStatus::InputNotFailing;
    Out.Code = ErrorCode::BadRequest;
    Out.Message = "repair requires at least one failing input";
    return Out;
  }
  if (!R.Goldens.empty() && R.Goldens.size() != R.Inputs.size()) {
    Out.Status = PipelineStatus::InputNotFailing;
    Out.Code = ErrorCode::BadRequest;
    Out.Message = "golden count does not match input count";
    return Out;
  }

  // Localize Inputs[0] through the standard seam: this judges the input
  // concretely (InputNotFailing when it meets the spec) and yields the
  // canonical report the candidate lines come from.
  PipelineRequest L;
  L.Entry = R.Entry;
  L.Unroll = R.Unroll;
  L.Encode = R.Encode;
  L.Input = R.Inputs[0];
  if (!R.Goldens.empty())
    L.GoldenReturn = R.Goldens[0];
  L.CheckObligations = R.CheckObligations;
  L.Localize = R.Localize;
  PipelineResult LR = runLocalizePipeline(P, L, Session);
  Out.Status = LR.Status;
  Out.Code = LR.Code;
  Out.Message = LR.Message;
  Out.FailingInput = LR.FailingInput;
  Out.Report = std::move(LR.Report);
  if (LR.Status != PipelineStatus::Localized)
    return Out;

  // Candidate lines in first-seen diagnosis order: the first CoMSS is the
  // most likely fix location and gets mutated first.
  std::vector<uint32_t> Lines;
  std::set<uint32_t> Seen;
  for (const Diagnosis &D : Out.Report.Diagnoses)
    for (uint32_t Line : D.Lines)
      if (Seen.insert(Line).second)
        Lines.push_back(Line);

  RepairOptions RO = R.Repair;
  RO.CandidateLines = std::move(Lines);
  RO.Unroll = R.Unroll;
  RO.Localize = R.Localize;
  const std::vector<int64_t> *Goldens =
      R.Goldens.empty() ? nullptr : &R.Goldens;
  Out.Repair = repairProgram(*P.Prog, *P.Driver, R.Entry, R.Inputs,
                             LR.SpecUsed, Goldens, RO);

  if (Out.Report.Incomplete || (Out.Repair.Truncated && !Out.Repair.Found))
    Out.Code = ErrorCode::BudgetExhausted;
  else
    Out.Code = ErrorCode::Ok;
  return Out;
}

namespace {

/// Minimal JSON string escaping for the repair renderer (descriptions and
/// pretty-printed programs: quotes, backslashes, newlines, tabs).
void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
      break;
    }
  }
  Out += '"';
}

} // namespace

std::string bugassist::renderRepairOutput(const RepairPipelineResult &Res,
                                          bool Json) {
  switch (Res.Status) {
  case PipelineStatus::CompileError:
  case PipelineStatus::InputNotFailing:
  case PipelineStatus::NoCounterexample:
    return ""; // reported out of band, never on stdout
  case PipelineStatus::Localized:
    break;
  }
  const RepairResult &R = Res.Repair;
  const RepairStats &St = R.Stats;
  if (!Json) {
    std::string Out =
        "failing input: " + renderInputVector(Res.FailingInput) + "\n";
    Out += "suspect lines:";
    for (uint32_t L : R.SuspectLines)
      Out += ' ' + std::to_string(L);
    Out += '\n';
    Out += "prescreen: " + std::to_string(St.LinesScreenedOut) + " of " +
           std::to_string(St.LinesConsidered) + " lines ruled out (" +
           std::to_string(St.PrescreenSatCalls) + " sat calls)\n";
    Out += "candidates: " + std::to_string(R.CandidatesTried) + " tried of " +
           std::to_string(St.CandidatesPlanned) + " planned (" +
           std::to_string(St.TestScreenRejected) + " failed tests, " +
           std::to_string(St.BmcRejected) + " failed verification)\n";
    if (R.Found) {
      Out += "repair: line " + std::to_string(R.Suggestion.Line) + ": " +
             R.Suggestion.Description + "\n";
      Out += "fixed program:\n" + printProgram(*R.Suggestion.FixedProgram);
    } else if (R.Truncated) {
      Out += "repair: NONE within candidate budget (more candidates exist)\n";
    } else {
      Out += "repair: none validated (template space exhausted)\n";
    }
    return Out;
  }
  std::string Out = "{\n  \"input\": \"" +
                    renderInputVector(Res.FailingInput) + "\",\n";
  Out += "  \"found\": ";
  Out += R.Found ? "true" : "false";
  Out += ",\n";
  if (R.Found) {
    Out += "  \"line\": " + std::to_string(R.Suggestion.Line) + ",\n";
    Out += "  \"fix\": ";
    appendJsonString(Out, R.Suggestion.Description);
    Out += ",\n";
  }
  Out += "  \"suspect_lines\": [";
  for (size_t I = 0; I < R.SuspectLines.size(); ++I)
    Out += (I ? ", " : "") + std::to_string(R.SuspectLines[I]);
  Out += "],\n";
  Out += "  \"truncated\": ";
  Out += R.Truncated ? "true" : "false";
  Out += ",\n  \"stats\": {\"lines_considered\": " +
         std::to_string(St.LinesConsidered) +
         ", \"lines_screened_out\": " + std::to_string(St.LinesScreenedOut) +
         ", \"prescreen_sat_calls\": " +
         std::to_string(St.PrescreenSatCalls) +
         ", \"candidates_planned\": " + std::to_string(St.CandidatesPlanned) +
         ", \"candidates_tried\": " + std::to_string(St.CandidatesTried) +
         ", \"sema_rejected\": " + std::to_string(St.SemaRejected) +
         ", \"test_screen_rejected\": " +
         std::to_string(St.TestScreenRejected) +
         ", \"bmc_rejected\": " + std::to_string(St.BmcRejected) +
         ", \"formula_builds\": " + std::to_string(St.FormulaBuilds) + "}";
  if (R.Found) {
    Out += ",\n  \"fixed_program\": ";
    appendJsonString(Out, printProgram(*R.Suggestion.FixedProgram));
  }
  Out += "\n}\n";
  return Out;
}
