//===- Repair.cpp - Automated repair suggestions -----------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Repair.h"

#include "lang/AstPrinter.h"
#include "lang/AstWalk.h"
#include "lang/Sema.h"
#include "sat/Solver.h"

#include <functional>
#include <set>

using namespace bugassist;

namespace {

/// One candidate mutation, addressed by expression ordinal.
struct Mutation {
  size_t Ordinal = 0;
  uint32_t Line = 0;
  bool IsConstant = false; ///< else operator swap
  int64_t NewConstant = 0;
  BinaryOp NewOp = BinaryOp::Add;
  std::string Description;
};

void planMutationsOnLine(Program &P, uint32_t Line, const RepairOptions &Opts,
                         std::vector<Mutation> &Plan) {
  forEachExpr(P, [&](Expr *E, size_t Ordinal) {
    if (E->loc().Line != Line)
      return;
    if (Opts.OffByOne) {
      if (auto *IL = dyn_cast<IntLiteral>(E)) {
        for (int64_t Delta : {+1, -1}) {
          Mutation M;
          M.Ordinal = Ordinal;
          M.Line = E->loc().Line;
          M.IsConstant = true;
          M.NewConstant = IL->value() + Delta;
          M.Description = "constant " + std::to_string(IL->value()) +
                          " -> " + std::to_string(M.NewConstant);
          Plan.push_back(std::move(M));
        }
      }
    }
    if (Opts.OperatorSwap) {
      if (auto *BE = dyn_cast<BinaryExpr>(E)) {
        for (BinaryOp NewOp : nearMissOps(BE->op())) {
          Mutation M;
          M.Ordinal = Ordinal;
          M.Line = E->loc().Line;
          M.NewOp = NewOp;
          M.Description = std::string("'") + binaryOpSpelling(BE->op()) +
                          "' -> '" + binaryOpSpelling(NewOp) + "'";
          Plan.push_back(std::move(M));
        }
      }
    }
  });
}

/// Collects the mutations to try, visiting candidate lines in diagnosis
/// order (Algorithm 2 iterates over BugLoc in the order CoMSSes were
/// reported, so the most likely fix location is mutated first).
std::vector<Mutation> planMutations(Program &P,
                                    const std::vector<uint32_t> &OrderedLines,
                                    const RepairOptions &Opts) {
  std::vector<Mutation> Plan;
  for (uint32_t Line : OrderedLines)
    planMutationsOnLine(P, Line, Opts, Plan);
  return Plan;
}

/// Applies \p M to a clone of \p P; returns nullptr if the mutant fails
/// Sema (e.g. a swap created a type error).
std::unique_ptr<Program> applyMutation(const Program &P, const Mutation &M) {
  auto Clone = cloneProgram(P);
  bool Applied = false;
  forEachExpr(*Clone, [&](Expr *E, size_t Ordinal) {
    if (Ordinal != M.Ordinal)
      return;
    if (M.IsConstant) {
      if (auto *IL = dyn_cast<IntLiteral>(E)) {
        IL->setValue(M.NewConstant);
        Applied = true;
      }
    } else if (auto *BE = dyn_cast<BinaryExpr>(E)) {
      BE->setOp(M.NewOp);
      Applied = true;
    }
  });
  if (!Applied)
    return nullptr;
  DiagEngine Diags;
  if (!analyzeProgram(*Clone, Diags))
    return nullptr;
  return Clone;
}

/// Sound per-line pre-filter on the prepared trace formula: freeing every
/// clause group of line L over-approximates any single-line mutation of L
/// within the encoding bounds, so if the failing test still cannot pass
/// (UNSAT), every candidate on L is doomed and is dropped before any
/// mutant formula gets built. One incremental solver carries the hard
/// clauses once; each line costs one solve under assumptions. Undef
/// (budget exhausted) keeps the line -- the filter only removes certainties.
void prescreenLines(const BugAssistDriver &Driver,
                    const InputVector &FailingTest, const Spec &S,
                    std::vector<uint32_t> &Lines, uint64_t ConflictBudget,
                    RepairStats &Stats) {
  const TraceFormula &TF = Driver.formula();
  MaxSatInstance Inst = TF.localizationInstance(FailingTest, S);
  const CnfFormula &F = TF.encoded().Formula;
  Solver Solve;
  Solve.ensureVars(Inst.NumVars);
  for (const Clause &C : Inst.Hard)
    if (!Solve.addClause(C))
      return; // hard core is contradictory; leave the funnel untouched
  if (ConflictBudget)
    Solve.setConflictBudget(ConflictBudget);
  std::vector<uint32_t> Kept;
  std::vector<Lit> Assumptions;
  for (uint32_t L : Lines) {
    Assumptions.clear();
    for (const ClauseGroup &G : F.groups())
      Assumptions.push_back(mkLit(G.Selector, /*Negated=*/G.Line == L));
    ++Stats.PrescreenSatCalls;
    if (Solve.solve(Assumptions) == LBool::False) {
      ++Stats.LinesScreenedOut;
      continue;
    }
    Kept.push_back(L);
  }
  Lines = std::move(Kept);
}

/// Shared Algorithm 2 body. \p PreparedDriver selects the pooled path:
/// localization and the line prescreen run on its ready-made formula
/// instead of rebuilding.
RepairResult repairCore(const Program &Prog,
                        const BugAssistDriver *PreparedDriver,
                        const std::string &Entry,
                        const std::vector<InputVector> &FailingTests,
                        const Spec &S,
                        const std::vector<int64_t> *GoldenPerTest,
                        const RepairOptions &Opts) {
  RepairResult Result;

  Spec S0 = S;
  if (GoldenPerTest && !GoldenPerTest->empty())
    S0.GoldenReturn = (*GoldenPerTest)[0];

  // Step 1 (Algorithm 2, line 1): localize unless lines were given. Keep
  // the lines in diagnosis order -- the first CoMSS is the most likely fix
  // location and is mutated first.
  std::vector<uint32_t> Lines = Opts.CandidateLines;
  if (Lines.empty() && !FailingTests.empty()) {
    LocalizationReport R;
    if (PreparedDriver) {
      R = PreparedDriver->localize(FailingTests[0], S0, Opts.Localize);
    } else {
      BugAssistDriver Driver(Prog, Entry, Opts.Unroll);
      ++Result.Stats.FormulaBuilds;
      R = Driver.localize(FailingTests[0], S0, Opts.Localize);
    }
    std::set<uint32_t> Seen;
    for (const Diagnosis &D : R.Diagnoses)
      for (uint32_t L : D.Lines)
        if (Seen.insert(L).second)
          Lines.push_back(L);
  }
  Result.SuspectLines = Lines;
  Result.Stats.LinesConsidered = Lines.size();

  if (PreparedDriver && Opts.PrescreenLines && !FailingTests.empty())
    prescreenLines(*PreparedDriver, FailingTests[0], S0, Lines,
                   Opts.VerifyBudget, Result.Stats);

  // Step 2: plan and screen mutations.
  std::vector<Mutation> Plan =
      planMutations(const_cast<Program &>(Prog), Lines, Opts);
  Result.Stats.CandidatesPlanned = Plan.size();

  ExecOptions IOpts;
  IOpts.BitWidth = Opts.Unroll.BitWidth;
  IOpts.CheckArrayBounds = Opts.Unroll.CheckArrayBounds;
  IOpts.CheckDivByZero = false; // encoder-aligned
  if (Opts.MaxInterpSteps)
    IOpts.MaxSteps = Opts.MaxInterpSteps;

  for (const Mutation &M : Plan) {
    if (Result.CandidatesTried >= Opts.MaxCandidates) {
      Result.Truncated = true;
      break;
    }
    ++Result.CandidatesTried;
    std::unique_ptr<Program> Mutant = applyMutation(Prog, M);
    if (!Mutant) {
      ++Result.Stats.SemaRejected;
      continue;
    }

    // Screen: every failing test must now satisfy the spec concretely.
    Interpreter Interp(*Mutant, IOpts);
    bool AllPass = true;
    for (size_t T = 0; T < FailingTests.size() && AllPass; ++T) {
      ExecResult R = Interp.run(Entry, FailingTests[T]);
      if (R.Status != ExecStatus::Ok) {
        AllPass = false;
        break;
      }
      if (GoldenPerTest && R.ReturnValue != (*GoldenPerTest)[T])
        AllPass = false;
      else if (!GoldenPerTest && S.GoldenReturn &&
               R.ReturnValue != *S.GoldenReturn)
        AllPass = false;
    }
    if (!AllPass) {
      ++Result.Stats.TestScreenRejected;
      continue;
    }

    // Verify: bounded model checking must find no violation (Algorithm 2,
    // lines 6-9). With per-test goldens the global spec is obligations
    // only; the goldens were already screened above.
    Spec VerifySpec = S;
    if (GoldenPerTest)
      VerifySpec.GoldenReturn = std::nullopt;
    if (VerifySpec.CheckObligations || VerifySpec.GoldenReturn) {
      UnrolledProgram UP = unrollProgram(*Mutant, Entry, Opts.Unroll);
      EncodeOptions EO;
      EO.BitWidth = Opts.Unroll.BitWidth;
      TraceFormula TF(encodeProgram(UP, EO));
      ++Result.Stats.FormulaBuilds;
      bool Decided = false;
      auto Cex = TF.findCounterexample(VerifySpec, Decided, Opts.VerifyBudget);
      if (Cex.has_value() || !Decided) {
        ++Result.Stats.BmcRejected;
        continue;
      }
    }

    Result.Found = true;
    Result.Suggestion.Line = M.Line;
    Result.Suggestion.Description = M.Description;
    Result.Suggestion.FixedProgram = std::move(Mutant);
    Result.Stats.CandidatesTried = Result.CandidatesTried;
    return Result;
  }
  Result.Stats.CandidatesTried = Result.CandidatesTried;
  return Result;
}

} // namespace

RepairResult bugassist::repairProgram(const Program &Prog,
                                      const std::string &Entry,
                                      const std::vector<InputVector> &FailingTests,
                                      const Spec &S,
                                      const std::vector<int64_t> *GoldenPerTest,
                                      const RepairOptions &Opts) {
  return repairCore(Prog, nullptr, Entry, FailingTests, S, GoldenPerTest,
                    Opts);
}

RepairResult bugassist::repairProgram(const Program &Prog,
                                      const BugAssistDriver &Driver,
                                      const std::string &Entry,
                                      const std::vector<InputVector> &FailingTests,
                                      const Spec &S,
                                      const std::vector<int64_t> *GoldenPerTest,
                                      const RepairOptions &Opts) {
  return repairCore(Prog, &Driver, Entry, FailingTests, S, GoldenPerTest,
                    Opts);
}
