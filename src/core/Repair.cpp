//===- Repair.cpp - Automated repair suggestions -----------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Repair.h"

#include "lang/AstPrinter.h"
#include "lang/Sema.h"

#include <functional>
#include <set>

using namespace bugassist;

namespace {

/// Preorder walk over every expression in the program, with a running
/// ordinal that is stable across clones (the mutator's addressing scheme).
void forEachExpr(Program &P, const std::function<void(Expr *, size_t)> &Fn) {
  size_t Ordinal = 0;
  std::function<void(Expr *)> VisitExpr = [&](Expr *E) {
    if (!E)
      return;
    Fn(E, Ordinal++);
    switch (E->kind()) {
    case Expr::ArrayIndexKind:
      VisitExpr(cast<ArrayIndex>(E)->base());
      VisitExpr(cast<ArrayIndex>(E)->index());
      break;
    case Expr::UnaryKind:
      VisitExpr(cast<UnaryExpr>(E)->operand());
      break;
    case Expr::BinaryKind:
      VisitExpr(cast<BinaryExpr>(E)->lhs());
      VisitExpr(cast<BinaryExpr>(E)->rhs());
      break;
    case Expr::ConditionalKind:
      VisitExpr(cast<ConditionalExpr>(E)->cond());
      VisitExpr(cast<ConditionalExpr>(E)->thenExpr());
      VisitExpr(cast<ConditionalExpr>(E)->elseExpr());
      break;
    case Expr::CallKind:
      for (const auto &A : cast<CallExpr>(E)->args())
        VisitExpr(A.get());
      break;
    default:
      break;
    }
  };
  std::function<void(Stmt *)> VisitStmt = [&](Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case Stmt::BlockStmtKind:
      for (const auto &Sub : cast<BlockStmt>(S)->stmts())
        VisitStmt(Sub.get());
      break;
    case Stmt::DeclStmtKind:
      VisitExpr(cast<DeclStmt>(S)->decl()->init());
      break;
    case Stmt::AssignStmtKind:
      VisitExpr(cast<AssignStmt>(S)->index());
      VisitExpr(cast<AssignStmt>(S)->value());
      break;
    case Stmt::IfStmtKind:
      VisitExpr(cast<IfStmt>(S)->cond());
      VisitStmt(cast<IfStmt>(S)->thenStmt());
      VisitStmt(cast<IfStmt>(S)->elseStmt());
      break;
    case Stmt::WhileStmtKind:
      VisitExpr(cast<WhileStmt>(S)->cond());
      VisitStmt(cast<WhileStmt>(S)->body());
      break;
    case Stmt::ReturnStmtKind:
      VisitExpr(cast<ReturnStmt>(S)->value());
      break;
    case Stmt::AssertStmtKind:
      VisitExpr(cast<AssertStmt>(S)->cond());
      break;
    case Stmt::AssumeStmtKind:
      VisitExpr(cast<AssumeStmt>(S)->cond());
      break;
    case Stmt::ExprStmtKind:
      VisitExpr(cast<ExprStmt>(S)->expr());
      break;
    }
  };
  for (const auto &G : P.globals())
    VisitExpr(G->init());
  for (const auto &F : P.functions())
    VisitStmt(F->body());
}

/// One candidate mutation, addressed by expression ordinal.
struct Mutation {
  size_t Ordinal = 0;
  uint32_t Line = 0;
  bool IsConstant = false; ///< else operator swap
  int64_t NewConstant = 0;
  BinaryOp NewOp = BinaryOp::Add;
  std::string Description;
};

std::vector<BinaryOp> nearMissOps(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
    return {BinaryOp::Le, BinaryOp::Gt, BinaryOp::Ge};
  case BinaryOp::Le:
    return {BinaryOp::Lt, BinaryOp::Ge, BinaryOp::Gt};
  case BinaryOp::Gt:
    return {BinaryOp::Ge, BinaryOp::Lt, BinaryOp::Le};
  case BinaryOp::Ge:
    return {BinaryOp::Gt, BinaryOp::Le, BinaryOp::Lt};
  case BinaryOp::Eq:
    return {BinaryOp::Ne};
  case BinaryOp::Ne:
    return {BinaryOp::Eq};
  case BinaryOp::Add:
    return {BinaryOp::Sub};
  case BinaryOp::Sub:
    return {BinaryOp::Add};
  case BinaryOp::Mul:
    return {BinaryOp::Div};
  case BinaryOp::Div:
    return {BinaryOp::Mul};
  case BinaryOp::LogAnd:
    return {BinaryOp::LogOr};
  case BinaryOp::LogOr:
    return {BinaryOp::LogAnd};
  default:
    return {};
  }
}

void planMutationsOnLine(Program &P, uint32_t Line, const RepairOptions &Opts,
                         std::vector<Mutation> &Plan) {
  forEachExpr(P, [&](Expr *E, size_t Ordinal) {
    if (E->loc().Line != Line)
      return;
    if (Opts.OffByOne) {
      if (auto *IL = dyn_cast<IntLiteral>(E)) {
        for (int64_t Delta : {+1, -1}) {
          Mutation M;
          M.Ordinal = Ordinal;
          M.Line = E->loc().Line;
          M.IsConstant = true;
          M.NewConstant = IL->value() + Delta;
          M.Description = "constant " + std::to_string(IL->value()) +
                          " -> " + std::to_string(M.NewConstant);
          Plan.push_back(std::move(M));
        }
      }
    }
    if (Opts.OperatorSwap) {
      if (auto *BE = dyn_cast<BinaryExpr>(E)) {
        for (BinaryOp NewOp : nearMissOps(BE->op())) {
          Mutation M;
          M.Ordinal = Ordinal;
          M.Line = E->loc().Line;
          M.NewOp = NewOp;
          M.Description = std::string("'") + binaryOpSpelling(BE->op()) +
                          "' -> '" + binaryOpSpelling(NewOp) + "'";
          Plan.push_back(std::move(M));
        }
      }
    }
  });
}

/// Collects the mutations to try, visiting candidate lines in diagnosis
/// order (Algorithm 2 iterates over BugLoc in the order CoMSSes were
/// reported, so the most likely fix location is mutated first).
std::vector<Mutation> planMutations(Program &P,
                                    const std::vector<uint32_t> &OrderedLines,
                                    const RepairOptions &Opts) {
  std::vector<Mutation> Plan;
  for (uint32_t Line : OrderedLines)
    planMutationsOnLine(P, Line, Opts, Plan);
  return Plan;
}

/// Applies \p M to a clone of \p P; returns nullptr if the mutant fails
/// Sema (e.g. a swap created a type error).
std::unique_ptr<Program> applyMutation(const Program &P, const Mutation &M) {
  auto Clone = cloneProgram(P);
  bool Applied = false;
  forEachExpr(*Clone, [&](Expr *E, size_t Ordinal) {
    if (Ordinal != M.Ordinal)
      return;
    if (M.IsConstant) {
      if (auto *IL = dyn_cast<IntLiteral>(E)) {
        IL->setValue(M.NewConstant);
        Applied = true;
      }
    } else if (auto *BE = dyn_cast<BinaryExpr>(E)) {
      BE->setOp(M.NewOp);
      Applied = true;
    }
  });
  if (!Applied)
    return nullptr;
  DiagEngine Diags;
  if (!analyzeProgram(*Clone, Diags))
    return nullptr;
  return Clone;
}

} // namespace

RepairResult bugassist::repairProgram(const Program &Prog,
                                      const std::string &Entry,
                                      const std::vector<InputVector> &FailingTests,
                                      const Spec &S,
                                      const std::vector<int64_t> *GoldenPerTest,
                                      const RepairOptions &Opts) {
  RepairResult Result;

  // Step 1 (Algorithm 2, line 1): localize unless lines were given. Keep
  // the lines in diagnosis order -- the first CoMSS is the most likely fix
  // location and is mutated first.
  std::vector<uint32_t> Lines = Opts.CandidateLines;
  if (Lines.empty() && !FailingTests.empty()) {
    BugAssistDriver Driver(Prog, Entry, Opts.Unroll);
    Spec S0 = S;
    if (GoldenPerTest)
      S0.GoldenReturn = (*GoldenPerTest)[0];
    LocalizationReport R =
        Driver.localize(FailingTests[0], S0, Opts.Localize);
    std::set<uint32_t> Seen;
    for (const Diagnosis &D : R.Diagnoses)
      for (uint32_t L : D.Lines)
        if (Seen.insert(L).second)
          Lines.push_back(L);
  }
  Result.SuspectLines = Lines;

  // Step 2: plan and screen mutations.
  std::vector<Mutation> Plan =
      planMutations(const_cast<Program &>(Prog), Lines, Opts);

  ExecOptions IOpts;
  IOpts.BitWidth = Opts.Unroll.BitWidth;
  IOpts.CheckArrayBounds = Opts.Unroll.CheckArrayBounds;
  IOpts.CheckDivByZero = false; // encoder-aligned

  for (const Mutation &M : Plan) {
    if (Result.CandidatesTried >= Opts.MaxCandidates)
      break;
    ++Result.CandidatesTried;
    std::unique_ptr<Program> Mutant = applyMutation(Prog, M);
    if (!Mutant)
      continue;

    // Screen: every failing test must now satisfy the spec concretely.
    Interpreter Interp(*Mutant, IOpts);
    bool AllPass = true;
    for (size_t T = 0; T < FailingTests.size() && AllPass; ++T) {
      ExecResult R = Interp.run(Entry, FailingTests[T]);
      if (R.Status != ExecStatus::Ok) {
        AllPass = false;
        break;
      }
      if (GoldenPerTest && R.ReturnValue != (*GoldenPerTest)[T])
        AllPass = false;
      else if (!GoldenPerTest && S.GoldenReturn &&
               R.ReturnValue != *S.GoldenReturn)
        AllPass = false;
    }
    if (!AllPass)
      continue;

    // Verify: bounded model checking must find no violation (Algorithm 2,
    // lines 6-9). With per-test goldens the global spec is obligations
    // only; the goldens were already screened above.
    Spec VerifySpec = S;
    if (GoldenPerTest)
      VerifySpec.GoldenReturn = std::nullopt;
    if (VerifySpec.CheckObligations || VerifySpec.GoldenReturn) {
      UnrolledProgram UP = unrollProgram(*Mutant, Entry, Opts.Unroll);
      EncodeOptions EO;
      EO.BitWidth = Opts.Unroll.BitWidth;
      TraceFormula TF(encodeProgram(UP, EO));
      bool Decided = false;
      auto Cex = TF.findCounterexample(VerifySpec, Decided, Opts.VerifyBudget);
      if (Cex.has_value() || !Decided)
        continue;
    }

    Result.Found = true;
    Result.Suggestion.Line = M.Line;
    Result.Suggestion.Description = M.Description;
    Result.Suggestion.FixedProgram = std::move(Mutant);
    return Result;
  }
  return Result;
}
