//===- LoopDiagnosis.h - Faulty loop-iteration diagnosis --------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5.2: localize with one selector per (statement, unwinding) and
/// soft weights alpha + eta - kappa (Eq. 3), so the weighted MaxSAT solver
/// pinpoints which loop iteration's constraints must change to remove the
/// failure. Used by the Program 3 (squareroot) experiment of Section 6.4.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_CORE_LOOPDIAGNOSIS_H
#define BUGASSIST_CORE_LOOPDIAGNOSIS_H

#include "core/BugAssist.h"

namespace bugassist {

/// One (line, iteration) suspect from the weighted localization.
struct IterationSuspect {
  uint32_t Line = 0;
  uint32_t Iteration = 0; ///< unwinding index kappa (1-based; 0 = no loop)
};

struct LoopDiagnosisResult {
  /// Suspects of the first (optimal) CoMSS, in report order.
  std::vector<IterationSuspect> First;
  /// All suspects across enumerated CoMSSes.
  std::vector<IterationSuspect> All;
  LocalizationReport Report;
};

struct LoopDiagnosisOptions {
  UnrollOptions Unroll;
  /// alpha of Eq. 3.
  uint64_t BaseWeight = 1;
  LocalizeOptions Localize;
  /// Restrict the diagnosis to loop iterations: every non-loop statement
  /// is pinned enabled, so the CoMSSes answer exactly "which iteration's
  /// constraints must change" (the Section 6.4 question).
  bool RestrictToLoopGroups = false;
};

/// Runs the weighted per-iteration localization on \p FailingTest.
LoopDiagnosisResult diagnoseLoopFault(const Program &Prog,
                                      const std::string &Entry,
                                      const InputVector &FailingTest,
                                      const Spec &S,
                                      LoopDiagnosisOptions Opts = {});

} // namespace bugassist

#endif // BUGASSIST_CORE_LOOPDIAGNOSIS_H
