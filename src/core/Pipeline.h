//===- Pipeline.h - End-to-end localization pipeline ------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one driver seam behind every front-end: the `bugassist` CLI, the
/// examples, and the bench harnesses all run source -> parse -> sema ->
/// unroll -> trace formula -> CoMSS enumeration through
/// runLocalizePipeline instead of each wiring the stages by hand.
///
/// The pipeline also owns the two workflow conveniences the paper's
/// Section 6.1 methodology needs around the core algorithm:
///
///  * segregateFailingTests -- judge a test pool against a golden program
///    version and collect the failing inputs with their expected outputs;
///  * renderLocalizationReport / renderLocalizationJson -- the canonical
///    serializations of a LocalizationReport. The CLI prints these
///    verbatim, so a library caller can diff its own report against CLI
///    output byte for byte (the reports are deterministic at every
///    portfolio width; solver statistics, which are not, are rendered
///    separately via renderSearchStats).
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_CORE_PIPELINE_H
#define BUGASSIST_CORE_PIPELINE_H

#include "core/BugAssist.h"
#include "core/ErrorCode.h"
#include "core/Repair.h"
#include "lang/Sema.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bugassist {

/// Everything runLocalizePipeline needs besides the program itself.
struct PipelineRequest {
  std::string Entry = "main";
  UnrollOptions Unroll;
  EncodeOptions Encode; ///< BitWidth is synced from Unroll by the driver
  /// The failing input. When absent, the pipeline finds a counterexample
  /// to the spec by bounded model checking (Section 4.1) -- only possible
  /// for obligation specs, since a golden return is input-specific.
  std::optional<InputVector> Input;
  /// Expected return value for Input: the spec becomes "returns this"
  /// (the wrong-output failures of the TCAS methodology).
  std::optional<int64_t> GoldenReturn;
  /// Check assert/bounds obligations as part of the spec.
  bool CheckObligations = true;
  LocalizeOptions Localize;
  /// Conflict budget for the BMC counterexample search (0 = unlimited).
  uint64_t BmcConflictBudget = 0;
};

enum class PipelineStatus {
  Localized,      ///< Report holds the diagnoses
  CompileError,   ///< parse/sema failed; Message holds the diagnostics
  NoCounterexample, ///< BMC found no failing input within bounds
  InputNotFailing ///< the given input satisfies the spec; nothing to blame
};

struct PipelineResult {
  PipelineStatus Status = PipelineStatus::CompileError;
  /// Structured classification of the outcome (core/ErrorCode.h): Ok for
  /// Localized / NoCounterexample runs that completed, BudgetExhausted
  /// when the report is budget-truncated, else the specific failure code.
  /// Front-ends branch on this instead of matching Message strings.
  ErrorCode Code = ErrorCode::CompileError;
  /// Diagnostics (CompileError) or a human-readable explanation for the
  /// other non-Localized statuses.
  std::string Message;
  /// The input that was localized (the given one, or the BMC-found one).
  InputVector FailingInput;
  /// The spec the failing input violates.
  Spec SpecUsed;
  LocalizationReport Report;
};

/// Runs the full pipeline on an analyzed program (\p Prog must have passed
/// Sema). Never returns CompileError.
PipelineResult runLocalizePipeline(const Program &Prog,
                                   const PipelineRequest &R);

/// Runs the full pipeline from source text (parse + sema included).
PipelineResult runLocalizePipeline(std::string_view Source,
                                   const PipelineRequest &R);

/// The front half of the pipeline, done once: a parsed program with its
/// unroll + encode driver. Serve mode caches these keyed by source text +
/// entry + options (serve/FormulaCache.h) and answers every query on the
/// cached copy. Safe to share across threads: every query-answering entry
/// point below only reads it.
struct PreparedProgram {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<BugAssistDriver> Driver;
};

/// Runs parse -> sema -> unroll -> encode once. \returns nullptr and fills
/// \p Error with the rendered diagnostics when the source does not
/// compile. \p Unroll.BitWidth is propagated into the encoder exactly as
/// the one-shot pipeline does.
std::unique_ptr<PreparedProgram> prepareProgram(std::string_view Source,
                                                const std::string &Entry,
                                                const UnrollOptions &Unroll,
                                                const EncodeOptions &Encode,
                                                std::string &Error);

/// The back half of the pipeline on a prepared program. \p R's Entry,
/// Unroll, and Encode fields MUST equal the prepare-time values (serve
/// guarantees this by keying its cache on them); only the per-query fields
/// (Input, GoldenReturn, CheckObligations, Localize, BmcConflictBudget)
/// vary. When \p Session is non-null it must be a fresh, never-solved
/// session over Driver->formula().sharedInstance() -- e.g. a clone() of a
/// cached base session -- and the enumeration runs on it (R.Localize's
/// Threads/Weighted/ConflictBudget session knobs are then fixed by the
/// session itself; its budget knobs still apply). Reports are canonical,
/// so both paths produce byte-identical output.
PipelineResult runLocalizePipeline(const PreparedProgram &P,
                                   const PipelineRequest &R,
                                   MaxSatSession *Session = nullptr);

/// Everything runRepairPipeline needs besides the prepared program: the
/// localize knobs plus the repair knobs and the failing test set.
struct RepairRequest {
  std::string Entry = "main";
  UnrollOptions Unroll;
  EncodeOptions Encode;
  /// Failing tests (at least one). Inputs[0] drives localization; all of
  /// them screen repair candidates.
  std::vector<InputVector> Inputs;
  /// Expected (golden) return per input, parallel to Inputs. Empty =
  /// obligation spec only.
  std::vector<int64_t> Goldens;
  bool CheckObligations = true;
  LocalizeOptions Localize;
  /// CandidateLines/Unroll/Localize inside are overwritten by the driver
  /// (lines come from the localization report, the rest from above).
  RepairOptions Repair;
};

struct RepairPipelineResult {
  PipelineStatus Status = PipelineStatus::CompileError;
  /// Ok when the repair search decided (found a fix or exhausted the
  /// template space); BudgetExhausted when either the localization report
  /// or the candidate search was truncated by a budget; else the failure.
  ErrorCode Code = ErrorCode::CompileError;
  std::string Message;
  InputVector FailingInput;
  /// The localization the candidate lines came from (canonical).
  LocalizationReport Report;
  RepairResult Repair;
};

/// Algorithm 2 through the pipeline seam: judges Inputs[0] concretely,
/// localizes it (on \p Session when given -- serve's cloned session pool),
/// derives candidate lines from the report in first-seen diagnosis order,
/// and runs the pooled repairProgram overload against P.Driver's formula
/// (prescreen + no localization rebuild). Requirements on \p R's
/// Entry/Unroll/Encode and on \p Session match runLocalizePipeline.
RepairPipelineResult runRepairPipeline(const PreparedProgram &P,
                                       const RepairRequest &R,
                                       MaxSatSession *Session = nullptr);

/// The canonical stdout of a repair run, shared verbatim by `bugassist
/// repair` and serve's `repair` command (deterministic: work counters
/// only, no wall-clock or solver search statistics). Error statuses
/// render empty, as with renderLocalizeOutput.
std::string renderRepairOutput(const RepairPipelineResult &Res, bool Json);

/// The failing subset of a test pool, judged against a golden program
/// version (Section 6.1: run both, keep inputs where the outputs differ).
struct FailingTests {
  std::vector<InputVector> Inputs;
  /// Expected (golden) return value per failing input, parallel to Inputs.
  std::vector<int64_t> Goldens;
  /// Regression witnesses: pool inputs where the faulty version already
  /// agrees with the golden one, with their (identical) return values.
  /// Algorithm 2's candidate screen replays these alongside the failing
  /// tests -- a "fix" that repairs the failures by breaking previously
  /// passing behavior is an imposter and must be rejected.
  std::vector<InputVector> PassingInputs;
  std::vector<int64_t> PassingGoldens;
  /// Size of the pool that was screened.
  size_t PoolSize = 0;
};

/// Runs \p Entry of \p Golden on every pool input and returns the return
/// values. Compute this once when screening many faulty versions against
/// the same pool (the Table 1 benches), then use the GoldenOut overload
/// of segregateFailingTests below.
std::vector<int64_t> goldenOutputs(const Program &Golden,
                                   const std::vector<InputVector> &Pool,
                                   const std::string &Entry,
                                   const ExecOptions &EO);

/// Screens \p Pool: runs \p Entry of both programs on every input and
/// collects up to \p MaxTests inputs where the faulty return differs from
/// the golden one, plus up to \p MaxPassing agreeing inputs as regression
/// witnesses for the repair candidate screen.
FailingTests segregateFailingTests(const Program &Golden,
                                   const Program &Faulty,
                                   const std::vector<InputVector> &Pool,
                                   const std::string &Entry,
                                   const ExecOptions &EO,
                                   size_t MaxTests = SIZE_MAX,
                                   size_t MaxPassing = 0);

/// Same screening against precomputed golden outputs (parallel to
/// \p Pool), saving the golden re-interpretation per faulty version.
FailingTests segregateFailingTests(const std::vector<int64_t> &GoldenOut,
                                   const Program &Faulty,
                                   const std::vector<InputVector> &Pool,
                                   const std::string &Entry,
                                   const ExecOptions &EO,
                                   size_t MaxTests = SIZE_MAX,
                                   size_t MaxPassing = 0);

/// Renders an input vector as the CLI's `--input` syntax: scalars
/// comma-separated, arrays bracketed (`3,[1,2,4],0`).
std::string renderInputVector(const InputVector &In);

/// Parses the `--input` syntax back into an InputVector. \returns
/// std::nullopt and fills \p Error on malformed input.
std::optional<InputVector> parseInputVector(std::string_view Text,
                                            std::string &Error);

/// Parses a hard-lines spec -- comma-separated line numbers or A-B ranges
/// (`3,10-12`) -- into \p Out, as the CLI's `--hard-lines` and the serve
/// protocol's `hard_lines` field use it. Line numbers are capped at 1e6:
/// far above any real source file, low enough that a typo'd range cannot
/// hang the caller or wrap uint32_t. \returns false on malformed specs.
bool parseHardLinesSpec(std::string_view Spec, std::set<uint32_t> &Out);

/// Canonical text form of a report: one line per diagnosis, the suspect
/// union, per-line hit counts, and the termination reason. Deterministic
/// at every thread count (no solver statistics).
std::string renderLocalizationReport(const LocalizationReport &R);

/// Canonical JSON form of the same data.
std::string renderLocalizationJson(const LocalizationReport &R);

/// Solver statistics block (conflicts, propagations, portfolio wins...).
/// NOT deterministic across thread counts or machines; kept out of the
/// canonical report so that byte-for-byte comparisons stay meaningful.
std::string renderSearchStats(const LocalizationReport &R);

/// The canonical stdout of a localize run: exactly what `bugassist
/// localize` prints for \p Res (the CLI and serve mode both emit this
/// verbatim, which is what makes their outputs byte-comparable).
/// Localized renders the failing input plus the text or JSON report;
/// NoCounterexample renders the explanatory message; the error statuses
/// (CompileError, InputNotFailing) render empty -- their messages travel
/// on stderr (CLI) or in the response header (serve).
std::string renderLocalizeOutput(const PipelineResult &Res, bool Json);

} // namespace bugassist

#endif // BUGASSIST_CORE_PIPELINE_H
