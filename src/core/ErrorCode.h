//===- ErrorCode.h - Structured error taxonomy ------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one error vocabulary shared by the pipeline, the serve protocol,
/// and the CLI. Front-ends used to classify failures by matching ad-hoc
/// message strings; every failure now carries one of these codes alongside
/// its human-readable message, and the serve response header reports the
/// code verbatim (`"code":"worker-crashed"`), so clients can branch on a
/// stable token while the prose stays free to improve. docs/SERVE.md
/// ("Failure semantics") tabulates the codes against statuses and exit
/// codes.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_CORE_ERRORCODE_H
#define BUGASSIST_CORE_ERRORCODE_H

#include <cstdint>

namespace bugassist {

enum class ErrorCode : uint8_t {
  Ok = 0,          ///< request answered in full
  BadRequest,      ///< malformed JSON line or invalid request field
  FileUnreadable,  ///< a `file` reference could not be read
  CompileError,    ///< program failed parse/sema
  InputNotFailing, ///< given input satisfies the spec; nothing to blame
  BadDimacs,       ///< malformed DIMACS/WCNF text
  BudgetExhausted, ///< per-request budget (or an interrupt) truncated the
                   ///< answer; partial result returned
  WorkerCrashed,   ///< request crashed its worker on every retry attempt
  Cancelled,       ///< accepted but drained before any work started
  Internal         ///< unexpected exception outside a worker's request
};

/// The stable wire token for \p C ("ok", "bad-request", ...). Never
/// changes meaning once published; clients branch on it.
inline const char *errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::Ok:              return "ok";
  case ErrorCode::BadRequest:      return "bad-request";
  case ErrorCode::FileUnreadable:  return "file-unreadable";
  case ErrorCode::CompileError:    return "compile-error";
  case ErrorCode::InputNotFailing: return "input-not-failing";
  case ErrorCode::BadDimacs:       return "bad-dimacs";
  case ErrorCode::BudgetExhausted: return "budget-exhausted";
  case ErrorCode::WorkerCrashed:   return "worker-crashed";
  case ErrorCode::Cancelled:       return "cancelled";
  case ErrorCode::Internal:        return "internal";
  }
  return "internal";
}

} // namespace bugassist

#endif // BUGASSIST_CORE_ERRORCODE_H
