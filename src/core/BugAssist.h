//===- BugAssist.h - Error localization via MaxSAT --------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Algorithm 1 and the surrounding driver: given a program, a
/// failing test, and a specification, enumerate minimal sets of source
/// lines (CoMSSes of the partial MaxSAT instance) whose replacement can
/// make the failure infeasible.
///
/// Typical use:
/// \code
///   BugAssistDriver Driver(Prog, "main");
///   auto Failing = Driver.findCounterexample(Spec{});      // Section 4.1
///   auto Report = Driver.localize(*Failing, Spec{});       // Algorithm 1
///   for (const Diagnosis &D : Report.Diagnoses)
///     ... D.Lines ...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_CORE_BUGASSIST_H
#define BUGASSIST_CORE_BUGASSIST_H

#include "bmc/TraceFormula.h"
#include "bmc/Unroller.h"
#include "interp/Interpreter.h"
#include "lang/Ast.h"
#include "maxsat/MaxSat.h"

#include <optional>
#include <set>
#include <string>
#include <vector>

namespace bugassist {

/// One CoMSS mapped back to source: a minimal set of lines such that
/// simultaneously changing all of them can eliminate the failure.
struct Diagnosis {
  /// Source lines (sorted, unique).
  std::vector<uint32_t> Lines;
  /// Loop unwinding indexes per group when per-iteration grouping is on
  /// (parallel to Lines; 0 = not iteration-specific).
  std::vector<uint32_t> Unwindings;
  /// Total soft weight of the CoMSS.
  uint64_t Cost = 0;
};

/// Result of running Algorithm 1 to exhaustion (or to MaxDiagnoses).
struct LocalizationReport {
  std::vector<Diagnosis> Diagnoses;
  /// Union of all reported lines, sorted -- the paper's "potential bug
  /// locations" used for the SizeReduc% metric of Table 1.
  std::vector<uint32_t> AllLines;
  /// True when enumeration stopped because the hard part became UNSAT
  /// ("No more suspects") rather than hitting MaxDiagnoses.
  bool Exhausted = false;
  /// True when a resource budget (timeout / conflict cap / memory cap)
  /// stopped the enumeration early: Diagnoses holds every CoMSS completed
  /// before the budget bit, but more may exist. Mutually exclusive with
  /// Exhausted.
  bool Incomplete = false;
  uint64_t SatCalls = 0;
  /// Cumulative statistics of the incremental MaxSAT session's solver
  /// (conflicts, propagations, ...) over the whole enumeration; for a
  /// portfolio run, summed over all workers (including the clause-exchange
  /// counters ClausesExported / ClausesImported).
  SolverStats Search;
  /// Portfolio runs only: races won per worker (empty when Threads == 1).
  std::vector<uint64_t> PortfolioWins;
};

struct LocalizeOptions {
  /// Stop after this many CoMSSes (the paper iterates interactively).
  size_t MaxDiagnoses = 16;
  /// Use the weighted linear-search solver instead of Fu-Malik.
  bool Weighted = false;
  /// Per-SAT-call conflict budget (0 = unlimited).
  uint64_t ConflictBudget = 0;
  /// Portfolio width: > 1 races this many diversified persistent MaxSAT
  /// sessions per solve with learnt-clause sharing (maxsat/Portfolio.h).
  /// Sessions canonicalize their optima, so diagnoses of unbudgeted runs
  /// are identical at every thread count.
  size_t Threads = 1;
  /// Run SatELite-style clause-database simplification (subsumption,
  /// self-subsuming resolution, bounded variable elimination) at solver
  /// load and restart boundaries. Canonicalized diagnoses are identical
  /// with it on or off; turn off to debug or to bound preprocessing cost.
  bool Preprocess = true;
  // --- query-wide resource budget (0 = unlimited for each knob) ------------
  // When any knob is set and the budget is exhausted mid-enumeration, the
  // report carries the diagnoses completed so far with Incomplete = true
  // instead of running forever or aborting.
  /// Wall-clock deadline for the whole enumeration, in seconds.
  double TimeoutSeconds = 0;
  /// Total conflict cap across the whole enumeration (unlike
  /// ConflictBudget, which is per SAT call).
  uint64_t MaxConflicts = 0;
  /// Clause-arena cap per solver, in mebibytes.
  uint64_t MaxMemoryMb = 0;

  /// True when any budget knob is set.
  bool hasBudget() const {
    return TimeoutSeconds > 0 || MaxConflicts > 0 || MaxMemoryMb > 0;
  }
  /// The Solver::Budget equivalent. The deadline starts ticking at the
  /// moment of this call.
  Solver::Budget solverBudget() const {
    Solver::Budget B;
    B.MaxConflicts = MaxConflicts;
    B.MaxArenaBytes = MaxMemoryMb << 20;
    if (TimeoutSeconds > 0)
      B.setDeadlineIn(TimeoutSeconds);
    return B;
  }
};

/// Algorithm 1's enumeration loop on a prebuilt instance whose soft
/// clauses mirror \p F's clause groups (soft index == group id).
LocalizationReport enumerateCoMSSes(MaxSatInstance Inst, const CnfFormula &F,
                                    const LocalizeOptions &Opts = {});

/// Algorithm 1's enumeration loop on an *existing* session whose soft
/// clauses mirror \p F's clause groups. The serve-mode seam: the caller
/// builds (or clones) the session once and this runs the blocking loop on
/// it, installing Opts' query-wide budget first. Opts.Threads is ignored
/// -- the session's own parallelism (if any) applies. Sessions
/// canonicalize their optima, so the report depends only on the formula,
/// never on which session produced it.
LocalizationReport enumerateCoMSSesOn(MaxSatSession &Session,
                                      const CnfFormula &F,
                                      const LocalizeOptions &Opts = {});

/// Algorithm 1 on a prebuilt trace formula: enumerates CoMSSes of
/// (Phi_H, Phi_S), blocking each one with a hard clause (lambda_1 \/ ... \/
/// lambda_k) and removing its selectors from the soft set.
LocalizationReport localizeFault(const TraceFormula &TF,
                                 const InputVector &FailingTest,
                                 const Spec &S,
                                 const LocalizeOptions &Opts = {});

/// localizeFault on a prebuilt session over TF.sharedInstance() -- e.g. a
/// clone() of a never-solved base session in serve mode. Completes the
/// instance by adding TF.testClauses(FailingTest, S) as hard clauses, then
/// enumerates. The session is consumed (blocking clauses accumulate); do
/// not reuse it for another test.
LocalizationReport localizeFault(MaxSatSession &Session, const TraceFormula &TF,
                                 const InputVector &FailingTest, const Spec &S,
                                 const LocalizeOptions &Opts = {});

/// Decision procedure behind the paper's definition of a fix location:
/// \returns true iff replacing exactly the statements on \p Lines can make
/// the failing execution satisfy the spec (i.e., the trace formula with
/// those groups' selectors off and all others on is satisfiable). One SAT
/// call; deterministic, unlike enumeration order. \p ConflictBudget
/// bounds the call (0 = unlimited); exhaustion counts as "not valid".
bool isValidCorrection(const TraceFormula &TF, const InputVector &FailingTest,
                       const Spec &S, const std::vector<uint32_t> &Lines,
                       uint64_t ConflictBudget = 0);

/// End-to-end driver owning the unroll + encode pipeline for one program.
class BugAssistDriver {
public:
  /// \p Prog must have passed Sema and outlive the driver.
  BugAssistDriver(const Program &Prog, std::string Entry,
                  UnrollOptions UOpts = {}, EncodeOptions EOpts = {});

  const TraceFormula &formula() const { return TF; }
  const UnrolledProgram &unrolled() const { return UP; }

  /// Bounded model checking for a failing input (Section 4.1). \returns
  /// std::nullopt when no violation exists within bounds (or on budget).
  /// Const (the solve runs on a throwaway solver), so a shared driver can
  /// serve concurrent queries.
  std::optional<InputVector> findCounterexample(const Spec &S,
                                                uint64_t ConflictBudget = 0) const;

  /// Algorithm 1 for one failing test.
  LocalizationReport localize(const InputVector &FailingTest, const Spec &S,
                              const LocalizeOptions &Opts = {}) const;

private:
  UnrolledProgram UP;
  TraceFormula TF;
};

} // namespace bugassist

#endif // BUGASSIST_CORE_BUGASSIST_H
