//===- Repair.h - Automated repair suggestions ------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5.1 / Algorithm 2: after localization narrows the fault to a few
/// lines, mutate those lines with common-error fixes and keep any mutant
/// whose failure disappears:
///  * off-by-one: every constant kappa on a suspect line tried as kappa+1
///    and kappa-1 (the paper's headline repair, Section 6.3);
///  * operator replacement: comparison / arithmetic operator swapped for a
///    near miss (< vs <=, + vs -, ...), the "operator errors" extension the
///    paper sketches in Section 2.
///
/// A candidate is accepted when (a) every supplied failing test now passes
/// in the interpreter and (b) bounded model checking finds no new violation
/// within the encoding bounds.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_CORE_REPAIR_H
#define BUGASSIST_CORE_REPAIR_H

#include "core/BugAssist.h"

#include <memory>
#include <string>

namespace bugassist {

/// What kinds of mutations to attempt.
struct RepairOptions {
  bool OffByOne = true;
  bool OperatorSwap = true;
  /// Lines to mutate; when empty, localization runs first and its report
  /// supplies the lines.
  std::vector<uint32_t> CandidateLines;
  LocalizeOptions Localize;
  UnrollOptions Unroll;
  /// Conflict budget for the BMC re-verification of each candidate.
  uint64_t VerifyBudget = 200000;
  /// Max candidate mutants to try.
  size_t MaxCandidates = 256;
};

/// One accepted repair.
struct RepairSuggestion {
  uint32_t Line = 0;
  std::string Description; ///< e.g. "constant 15 -> 14" or "'<' -> '<='"
  std::unique_ptr<Program> FixedProgram;
};

struct RepairResult {
  bool Found = false;
  RepairSuggestion Suggestion;
  size_t CandidatesTried = 0;
  /// Lines localization proposed (useful when no repair validated).
  std::vector<uint32_t> SuspectLines;
};

/// Algorithm 2 generalized to off-by-one and operator mutations.
/// \p FailingTests drive both localization and candidate screening; the
/// spec's GoldenReturn (if any) applies per test via \p GoldenPerTest.
RepairResult repairProgram(const Program &Prog, const std::string &Entry,
                           const std::vector<InputVector> &FailingTests,
                           const Spec &S,
                           const std::vector<int64_t> *GoldenPerTest = nullptr,
                           const RepairOptions &Opts = {});

} // namespace bugassist

#endif // BUGASSIST_CORE_REPAIR_H
