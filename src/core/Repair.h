//===- Repair.h - Automated repair suggestions ------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5.1 / Algorithm 2: after localization narrows the fault to a few
/// lines, mutate those lines with common-error fixes and keep any mutant
/// whose failure disappears:
///  * off-by-one: every constant kappa on a suspect line tried as kappa+1
///    and kappa-1 (the paper's headline repair, Section 6.3);
///  * operator replacement: comparison / arithmetic operator swapped for a
///    near miss (< vs <=, + vs -, ...), the "operator errors" extension the
///    paper sketches in Section 2.
///
/// A candidate is accepted when (a) every supplied failing test now passes
/// in the interpreter and (b) bounded model checking finds no new violation
/// within the encoding bounds.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_CORE_REPAIR_H
#define BUGASSIST_CORE_REPAIR_H

#include "core/BugAssist.h"

#include <memory>
#include <string>

namespace bugassist {

/// What kinds of mutations to attempt.
struct RepairOptions {
  bool OffByOne = true;
  bool OperatorSwap = true;
  /// Lines to mutate; when empty, localization runs first and its report
  /// supplies the lines.
  std::vector<uint32_t> CandidateLines;
  LocalizeOptions Localize;
  UnrollOptions Unroll;
  /// Conflict budget for the BMC re-verification of each candidate.
  uint64_t VerifyBudget = 200000;
  /// Max candidate mutants to try.
  size_t MaxCandidates = 256;
  /// Interpreter fuel per screening run (0 = the interpreter default).
  /// Mutant sweeps lower this: a candidate that reintroduces a runaway
  /// loop should fail the screen quickly, not burn the default budget.
  uint64_t MaxInterpSteps = 0;
  /// Pooled-driver path only: before planning any mutant, check each
  /// candidate line against the prepared trace formula with
  /// isValidCorrection semantics -- if freeing every clause of a line
  /// cannot make the failing test pass within the encoding bounds, no
  /// single-line mutation there can either, and all its candidates are
  /// skipped without building a single mutant formula. One incremental
  /// solver serves all lines via assumptions.
  bool PrescreenLines = true;
};

/// Deterministic work counters for one repairProgram run (no wall-clock,
/// no solver search statistics -- safe to compare byte-for-byte).
struct RepairStats {
  size_t LinesConsidered = 0;   ///< candidate lines entering the funnel
  size_t LinesScreenedOut = 0;  ///< rejected by the pooled prescreen
  size_t PrescreenSatCalls = 0; ///< incremental solves in the prescreen
  size_t CandidatesPlanned = 0; ///< mutations planned on surviving lines
  size_t CandidatesTried = 0;   ///< mutants actually built and screened
  size_t SemaRejected = 0;      ///< mutants that no longer analyze
  size_t TestScreenRejected = 0; ///< mutants failing the interpreter screen
  size_t BmcRejected = 0;       ///< mutants failing BMC re-verification
  size_t FormulaBuilds = 0;     ///< unroll+encode runs (the expensive step)
};

/// One accepted repair.
struct RepairSuggestion {
  uint32_t Line = 0;
  std::string Description; ///< e.g. "constant 15 -> 14" or "'<' -> '<='"
  std::unique_ptr<Program> FixedProgram;
};

struct RepairResult {
  bool Found = false;
  RepairSuggestion Suggestion;
  size_t CandidatesTried = 0;
  /// Lines localization proposed (useful when no repair validated).
  std::vector<uint32_t> SuspectLines;
  /// MaxCandidates stopped the search before the plan was exhausted; the
  /// "no repair" answer is budget-truncated, not a decided negative.
  bool Truncated = false;
  RepairStats Stats;
};

/// Algorithm 2 generalized to off-by-one and operator mutations.
/// \p FailingTests drive both localization and candidate screening; the
/// spec's GoldenReturn (if any) applies per test via \p GoldenPerTest.
/// This overload rebuilds the trace formula from scratch for localization
/// and for every candidate verification (the reference path; see the
/// pooled overload below for the serve/CLI production path).
RepairResult repairProgram(const Program &Prog, const std::string &Entry,
                           const std::vector<InputVector> &FailingTests,
                           const Spec &S,
                           const std::vector<int64_t> *GoldenPerTest = nullptr,
                           const RepairOptions &Opts = {});

/// Pooled path: \p Driver must be the prepared unroll+encode of \p Prog
/// with Opts.Unroll (core/Pipeline.h's PreparedProgram supplies both, and
/// serve's FormulaCache shares one across requests). Localization reuses
/// Driver's formula instead of rebuilding, and candidate lines are
/// prescreened on one incremental solver over that formula (see
/// RepairOptions::PrescreenLines) before any per-candidate rebuild.
/// Results are identical to the rebuild overload whenever both decide --
/// the prescreen only removes candidates that could never validate.
RepairResult repairProgram(const Program &Prog, const BugAssistDriver &Driver,
                           const std::string &Entry,
                           const std::vector<InputVector> &FailingTests,
                           const Spec &S,
                           const std::vector<int64_t> *GoldenPerTest = nullptr,
                           const RepairOptions &Opts = {});

} // namespace bugassist

#endif // BUGASSIST_CORE_REPAIR_H
