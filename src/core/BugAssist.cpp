//===- BugAssist.cpp - Error localization via MaxSAT -----------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/BugAssist.h"

#include "bmc/Encoder.h"
#include "maxsat/Portfolio.h"
#include "sat/Solver.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace bugassist;

LocalizationReport bugassist::enumerateCoMSSesOn(MaxSatSession &Session,
                                                 const CnfFormula &F,
                                                 const LocalizeOptions &Opts) {
  LocalizationReport Report;
  std::set<uint32_t> AllLines;

  // Query-wide resource budget: one deadline / conflict cap / arena cap
  // covers the whole enumeration. Exhaustion mid-round surfaces as an
  // Unknown solve(), which flags the report Incomplete below.
  if (Opts.hasBudget())
    Session.setBudget(Opts.solverBudget());
  while (Report.Diagnoses.size() < Opts.MaxDiagnoses) {
    MaxSatResult R = Session.solve();
    Report.SatCalls += R.SatCalls;
    Report.Search = R.Search; // cumulative over the session
    if (R.Status == MaxSatStatus::HardUnsat) {
      Report.Exhausted = true; // "No more suspects"
      break;
    }
    if (R.Status != MaxSatStatus::Optimum) {
      // Budget exhausted: whatever was enumerated so far stands, flagged
      // incomplete -- the anytime contract of the whole pipeline.
      Report.Incomplete = true;
      break;
    }
    if (R.FalsifiedSoft.empty()) {
      // The formula is satisfiable without removing anything: the test is
      // not failing under this spec.
      Report.Exhausted = true;
      break;
    }

    // CoMSS -> diagnosis. Soft index == group id (the instance never
    // drops soft clauses; see below).
    Diagnosis D;
    D.Cost = R.Cost;
    Clause Blocking; // beta = (lambda_1 \/ ... \/ lambda_k), hard
    for (size_t SoftIdx : R.FalsifiedSoft) {
      const ClauseGroup &CG = F.group(static_cast<GroupId>(SoftIdx));
      D.Lines.push_back(CG.Line);
      D.Unwindings.push_back(CG.Unwinding);
      AllLines.insert(CG.Line);
      Blocking.push_back(mkLit(CG.Selector));
    }
    // Sort lines (with parallel unwindings) for stable output.
    std::vector<size_t> Order(D.Lines.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      return std::make_pair(D.Lines[A], D.Unwindings[A]) <
             std::make_pair(D.Lines[B], D.Unwindings[B]);
    });
    Diagnosis Sorted;
    Sorted.Cost = D.Cost;
    for (size_t I : Order) {
      Sorted.Lines.push_back(D.Lines[I]);
      Sorted.Unwindings.push_back(D.Unwindings[I]);
    }
    Report.Diagnoses.push_back(std::move(Sorted));

    // Phi_H := Phi_H + beta (Algorithm 1, line 14). Deviation from the
    // paper's "Phi_S := Phi_S \ beta": the selectors STAY soft. Removing
    // them would let later rounds disable those statements at zero cost,
    // silently bundling earlier diagnoses into new "CoMSSes" that look
    // smaller than they are. Keeping them soft preserves the paper's
    // intent ("other combinations of these locations are still allowed")
    // with honest costs; the hard beta still bans the reported CoMSS and
    // all of its supersets.
    Session.addHardClause(Blocking);
  }

  Report.AllLines.assign(AllLines.begin(), AllLines.end());
  return Report;
}

LocalizationReport bugassist::enumerateCoMSSes(MaxSatInstance Inst,
                                               const CnfFormula &F,
                                               const LocalizeOptions &Opts) {
  assert(Inst.Soft.size() == F.numGroups() &&
         "soft clauses must mirror clause groups");

  // Algorithm 1, lines 7-14, on ONE incremental MaxSAT session: the solver
  // (hard formula, learned clauses, heuristic state) persists across
  // diagnoses, and each blocking clause beta is added incrementally. With
  // Threads > 1 the session is a portfolio of diversified persistent
  // workers racing each solve. Either way the sessions canonicalize their
  // optima, so the enumeration is deterministic and identical at every
  // thread count.
  std::unique_ptr<MaxSatSession> Session;
  PortfolioSession *Portfolio = nullptr;
  Solver::Options SOpts;
  SOpts.Preprocess = Opts.Preprocess;
  if (Opts.Threads > 1) {
    auto P = makePortfolioSession(Inst, Opts.Weighted, Opts.Threads,
                                  Opts.ConflictBudget, SOpts);
    Portfolio = P.get();
    Session = std::move(P);
  } else {
    Session = makeMaxSatSession(Inst, Opts.Weighted, Opts.ConflictBudget,
                                SOpts, /*Canonical=*/true);
  }
  LocalizationReport Report = enumerateCoMSSesOn(*Session, F, Opts);
  if (Portfolio)
    Report.PortfolioWins = Portfolio->portfolioStats().WinsByWorker;
  return Report;
}

LocalizationReport bugassist::localizeFault(const TraceFormula &TF,
                                            const InputVector &FailingTest,
                                            const Spec &S,
                                            const LocalizeOptions &Opts) {
  // Phi_H, Phi_S (Algorithm 1, lines 5-6). Soft clause i is the unit
  // selector of clause group i, so CoMSS indexes map straight to groups.
  return enumerateCoMSSes(TF.localizationInstance(FailingTest, S),
                          TF.encoded().Formula, Opts);
}

LocalizationReport bugassist::localizeFault(MaxSatSession &Session,
                                            const TraceFormula &TF,
                                            const InputVector &FailingTest,
                                            const Spec &S,
                                            const LocalizeOptions &Opts) {
  // Complete a sharedInstance() session into the per-test instance: the
  // bindings and spec units range over original variables only, so the
  // session's guard numbering matches the fresh-session path exactly.
  for (const Clause &C : TF.testClauses(FailingTest, S))
    Session.addHardClause(C);
  return enumerateCoMSSesOn(Session, TF.encoded().Formula, Opts);
}

bool bugassist::isValidCorrection(const TraceFormula &TF,
                                  const InputVector &FailingTest,
                                  const Spec &S,
                                  const std::vector<uint32_t> &Lines,
                                  uint64_t ConflictBudget) {
  MaxSatInstance Inst = TF.localizationInstance(FailingTest, S);
  const CnfFormula &F = TF.encoded().Formula;
  Solver Solve;
  Solve.ensureVars(Inst.NumVars);
  for (const Clause &C : Inst.Hard)
    if (!Solve.addClause(C))
      return false;
  bool Ok = true;
  const std::set<uint32_t> LineSet(Lines.begin(), Lines.end());
  for (const ClauseGroup &G : F.groups()) {
    bool Off = LineSet.count(G.Line) != 0;
    Ok = Ok && Solve.addClause({mkLit(G.Selector, /*Negated=*/Off)});
  }
  if (!Ok)
    return false;
  if (ConflictBudget)
    Solve.setConflictBudget(ConflictBudget);
  return Solve.solve() == LBool::True;
}

BugAssistDriver::BugAssistDriver(const Program &Prog, std::string Entry,
                                 UnrollOptions UOpts, EncodeOptions EOpts)
    : UP(unrollProgram(Prog, Entry, UOpts)),
      TF((EOpts.BitWidth = UOpts.BitWidth, encodeProgram(UP, EOpts))) {}

std::optional<InputVector>
BugAssistDriver::findCounterexample(const Spec &S,
                                    uint64_t ConflictBudget) const {
  bool Decided = false;
  return TF.findCounterexample(S, Decided, ConflictBudget);
}

LocalizationReport BugAssistDriver::localize(const InputVector &FailingTest,
                                             const Spec &S,
                                             const LocalizeOptions &Opts) const {
  return localizeFault(TF, FailingTest, S, Opts);
}
