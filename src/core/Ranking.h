//===- Ranking.h - Multi-run suspect ranking --------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4.3: run the localization over multiple failing tests and rank
/// suspect lines by how often they are reported. Lines reported in more
/// than half the runs were the paper's reliability criterion for versions
/// (like TCAS v12/v28/v35) where single runs are noisy.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_CORE_RANKING_H
#define BUGASSIST_CORE_RANKING_H

#include "core/BugAssist.h"

#include <vector>

namespace bugassist {

/// One line with its report frequency across runs.
struct RankedLine {
  uint32_t Line = 0;
  /// Number of failing-test runs whose report includes the line.
  size_t Hits = 0;
  /// Hits / number of runs.
  double Frequency = 0.0;
};

/// Aggregated multi-test localization.
struct RankingReport {
  std::vector<RankedLine> Ranked; ///< descending by Hits, then by line
  size_t Runs = 0;
  uint64_t SatCalls = 0;
};

/// Runs localizeFault once per failing test (each test gets its own golden
/// return when \p GoldenPerTest is supplied) and ranks lines by frequency.
RankingReport rankSuspects(const TraceFormula &TF,
                           const std::vector<InputVector> &FailingTests,
                           const Spec &BaseSpec,
                           const std::vector<int64_t> *GoldenPerTest = nullptr,
                           const LocalizeOptions &Opts = {});

} // namespace bugassist

#endif // BUGASSIST_CORE_RANKING_H
