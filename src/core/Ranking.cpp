//===- Ranking.cpp - Multi-run suspect ranking -----------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Ranking.h"

#include <algorithm>
#include <map>

using namespace bugassist;

RankingReport bugassist::rankSuspects(const TraceFormula &TF,
                                      const std::vector<InputVector> &FailingTests,
                                      const Spec &BaseSpec,
                                      const std::vector<int64_t> *GoldenPerTest,
                                      const LocalizeOptions &Opts) {
  RankingReport Report;
  Report.Runs = FailingTests.size();
  std::map<uint32_t, size_t> Hits;

  for (size_t I = 0; I < FailingTests.size(); ++I) {
    Spec S = BaseSpec;
    if (GoldenPerTest)
      S.GoldenReturn = (*GoldenPerTest)[I];
    LocalizationReport R = localizeFault(TF, FailingTests[I], S, Opts);
    Report.SatCalls += R.SatCalls;
    for (uint32_t Line : R.AllLines)
      ++Hits[Line];
  }

  for (const auto &[Line, Count] : Hits) {
    RankedLine RL;
    RL.Line = Line;
    RL.Hits = Count;
    RL.Frequency = Report.Runs == 0
                       ? 0.0
                       : static_cast<double>(Count) /
                             static_cast<double>(Report.Runs);
    Report.Ranked.push_back(RL);
  }
  std::sort(Report.Ranked.begin(), Report.Ranked.end(),
            [](const RankedLine &A, const RankedLine &B) {
              if (A.Hits != B.Hits)
                return A.Hits > B.Hits;
              return A.Line < B.Line;
            });
  return Report;
}
