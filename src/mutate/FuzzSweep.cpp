//===- FuzzSweep.cpp - Differential mutant sweep --------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mutate/FuzzSweep.h"

#include "interp/Interpreter.h"

using namespace bugassist;

namespace {

/// The three differential configurations every mutant is localized under.
/// Reports are canonical, so all three must render byte-identically.
struct Config {
  const char *Name;
  int Threads;
  bool Preprocess;
};

} // namespace

FuzzResult bugassist::runFuzzSweep(const FuzzSubject &Subject,
                                   const FuzzOptions &Opts,
                                   const FuzzProgress &Progress) {
  FuzzResult Res;

  MutantGeneratorOptions GenOpts;
  GenOpts.Seed = Opts.Seed;
  GenOpts.Classes = Opts.Classes;
  GenOpts.ProtectedLines = Subject.ProtectedLines;
  MutantGenerator Gen(*Subject.Base, GenOpts);
  std::vector<GeneratedMutant> Mutants = Gen.generate(Opts.Count);
  Res.Generated = Mutants.size();

  // Pool judging runs encoder-aligned, exactly like the pipeline's
  // concrete judge, but with lowered fuel (runaway-loop mutants).
  ExecOptions EO;
  EO.BitWidth = Subject.Unroll.BitWidth;
  EO.CheckArrayBounds =
      Subject.Unroll.CheckArrayBounds && Subject.CheckObligations;
  EO.CheckDivByZero = Subject.CheckObligations;
  EO.MaxSteps = Opts.MaxInterpSteps;
  std::vector<int64_t> GoldenOut =
      goldenOutputs(*Subject.Base, Subject.Pool, Subject.Entry, EO);

  const Config Configs[] = {
      {"threads=1", 1, true},
      {"threads=K", Opts.Threads, true},
      {"no-preprocess", 1, false},
  };

  size_t Done = 0;
  for (GeneratedMutant &M : Mutants) {
    FuzzClassStats &Row = Res.PerClass[static_cast<size_t>(M.Spec.Type)];
    ++Row.Mutants;
    ++Done;

    FailingTests FT =
        segregateFailingTests(GoldenOut, *M.Prog, Subject.Pool, Subject.Entry,
                              EO, Opts.MaxFailingTests, Opts.MaxPassingTests);
    if (FT.Inputs.empty()) {
      if (Progress)
        Progress(Done, Mutants.size());
      continue; // behavior-preserving (or pool-invisible) mutant
    }

    // Encode the mutant once; all three configs and the repair run share
    // this prepared driver -- the encode-once seam under test.
    PreparedProgram P;
    P.Prog = std::move(M.Prog);
    P.Driver = std::make_unique<BugAssistDriver>(*P.Prog, Subject.Entry,
                                                 Subject.Unroll,
                                                 Subject.Encode);

    // The segregator judges by return value; the pipeline's concrete
    // judge is stricter (trap statuses, obligations). Try the failing
    // tests in order until one localizes.
    PipelineRequest Base;
    Base.Entry = Subject.Entry;
    Base.Unroll = Subject.Unroll;
    Base.Encode = Subject.Encode;
    Base.CheckObligations = Subject.CheckObligations;
    Base.Localize.MaxDiagnoses = Opts.MaxDiagnoses;

    PipelineResult FirstRes;
    size_t UsedTest = SIZE_MAX;
    for (size_t T = 0; T < FT.Inputs.size(); ++T) {
      PipelineRequest R = Base;
      R.Input = FT.Inputs[T];
      R.GoldenReturn = FT.Goldens[T];
      R.Localize.Threads = Configs[0].Threads;
      R.Localize.Preprocess = Configs[0].Preprocess;
      PipelineResult PR = runLocalizePipeline(P, R);
      if (PR.Status == PipelineStatus::Localized) {
        FirstRes = std::move(PR);
        UsedTest = T;
        break;
      }
    }
    if (UsedTest == SIZE_MAX) {
      if (Progress)
        Progress(Done, Mutants.size());
      continue; // return-diff only visible outside the encoding bounds
    }
    ++Row.Failing;

    // Differential: the remaining configs must reproduce config 0's
    // canonical report byte for byte.
    std::string FirstText = renderLocalizeOutput(FirstRes, /*Json=*/false);
    bool Mismatch = false;
    for (size_t C = 1; C < 3; ++C) {
      PipelineRequest R = Base;
      R.Input = FT.Inputs[UsedTest];
      R.GoldenReturn = FT.Goldens[UsedTest];
      R.Localize.Threads = Configs[C].Threads;
      R.Localize.Preprocess = Configs[C].Preprocess;
      PipelineResult PR = runLocalizePipeline(P, R);
      std::string Text = renderLocalizeOutput(PR, /*Json=*/false);
      if (Text != FirstText) {
        Mismatch = true;
        Res.MismatchNotes.push_back(
            std::string(errorTypeName(M.Spec.Type)) + " mutant (" +
            M.Spec.Description + "): report at " + Configs[C].Name +
            " differs from " + Configs[0].Name);
      }
    }
    if (Mismatch) {
      ++Row.Mismatches;
      ++Res.TotalMismatches;
    }

    if (!FirstRes.Report.Diagnoses.empty())
      ++Row.Localized;
    bool Hit = false;
    for (uint32_t L : FirstRes.Report.AllLines)
      Hit = Hit || L == M.Spec.Line;
    if (!Hit) {
      if (Progress)
        Progress(Done, Mutants.size());
      continue;
    }
    ++Row.Hits;

    if (Opts.TryRepair) {
      // Candidate lines come from the differential report; the localized
      // test leads so the prescreen and the goldens stay aligned with it.
      std::vector<InputVector> Tests;
      std::vector<int64_t> Goldens;
      Tests.push_back(FT.Inputs[UsedTest]);
      Goldens.push_back(FT.Goldens[UsedTest]);
      for (size_t T = 0; T < FT.Inputs.size(); ++T) {
        if (T == UsedTest)
          continue;
        Tests.push_back(FT.Inputs[T]);
        Goldens.push_back(FT.Goldens[T]);
      }
      // Regression witnesses: a candidate must keep these passing, or it
      // "repairs" the failures by breaking correct behavior elsewhere.
      for (size_t T = 0; T < FT.PassingInputs.size(); ++T) {
        Tests.push_back(FT.PassingInputs[T]);
        Goldens.push_back(FT.PassingGoldens[T]);
      }
      RepairOptions RO;
      RO.Unroll = Subject.Unroll;
      RO.MaxCandidates = Opts.RepairMaxCandidates;
      RO.VerifyBudget = Opts.RepairVerifyBudget;
      RO.MaxInterpSteps = Opts.MaxInterpSteps;
      std::set<uint32_t> Seen;
      for (const Diagnosis &D : FirstRes.Report.Diagnoses)
        for (uint32_t L : D.Lines)
          if (Seen.insert(L).second)
            RO.CandidateLines.push_back(L);
      Spec S;
      S.CheckObligations = Subject.CheckObligations;
      RepairResult RR = repairProgram(*P.Prog, *P.Driver, Subject.Entry,
                                      Tests, S, &Goldens, RO);
      if (RR.Found)
        ++Row.Repaired;
    }
    if (Progress)
      Progress(Done, Mutants.size());
  }
  return Res;
}

std::string bugassist::renderFuzzScorecard(const FuzzSubject &Subject,
                                           const FuzzOptions &Opts,
                                           const FuzzResult &Res) {
  std::string Out = "{\n";
  Out += "  \"subject\": \"" + Subject.Name + "\",\n";
  Out += "  \"seed\": " + std::to_string(Opts.Seed) + ",\n";
  Out += "  \"requested\": " + std::to_string(Opts.Count) + ",\n";
  Out += "  \"generated\": " + std::to_string(Res.Generated) + ",\n";
  Out += "  \"pool\": " + std::to_string(Subject.Pool.size()) + ",\n";
  Out += "  \"threads\": " + std::to_string(Opts.Threads) + ",\n";
  Out += "  \"classes\": [";
  bool FirstRow = true;
  for (ErrorType T : AllErrorTypes) {
    const FuzzClassStats &Row = Res.PerClass[static_cast<size_t>(T)];
    if (Row.Mutants == 0)
      continue;
    Out += FirstRow ? "\n" : ",\n";
    FirstRow = false;
    Out += std::string("    {\"class\": \"") + errorTypeName(T) +
           "\", \"mutants\": " + std::to_string(Row.Mutants) +
           ", \"failing\": " + std::to_string(Row.Failing) +
           ", \"localized\": " + std::to_string(Row.Localized) +
           ", \"hits\": " + std::to_string(Row.Hits) +
           ", \"repaired\": " + std::to_string(Row.Repaired) +
           ", \"mismatches\": " + std::to_string(Row.Mismatches) + "}";
  }
  Out += FirstRow ? "],\n" : "\n  ],\n";
  FuzzClassStats Total;
  for (const FuzzClassStats &Row : Res.PerClass) {
    Total.Mutants += Row.Mutants;
    Total.Failing += Row.Failing;
    Total.Localized += Row.Localized;
    Total.Hits += Row.Hits;
    Total.Repaired += Row.Repaired;
    Total.Mismatches += Row.Mismatches;
  }
  Out += "  \"total\": {\"mutants\": " + std::to_string(Total.Mutants) +
         ", \"failing\": " + std::to_string(Total.Failing) +
         ", \"localized\": " + std::to_string(Total.Localized) +
         ", \"hits\": " + std::to_string(Total.Hits) +
         ", \"repaired\": " + std::to_string(Total.Repaired) +
         ", \"mismatches\": " + std::to_string(Total.Mismatches) + "}\n";
  Out += "}\n";
  return Out;
}
