//===- FuzzSweep.h - Differential mutant sweep ------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generalized Table 1/2 experiment as a randomized differential test
/// for the whole stack. For each seeded mutant of a subject program the
/// sweep:
///
///  1. segregates failing tests against the golden version (Section 6.1);
///  2. localizes one failing test three times -- single-threaded,
///     portfolio width K, and with preprocessing disabled -- and asserts
///     the three canonical reports are byte-identical (any divergence is
///     a determinism bug in the portfolio/canonicalizer/preprocessor, and
///     is surfaced as a mismatch, never swallowed);
///  3. scores whether the ground-truth fault line appears in the
///     diagnosis (Table 1's "hit");
///  4. on hits, attempts Algorithm 2 repair through the pooled
///     repairProgram path and counts validated fixes.
///
/// Results aggregate into a Table-1-style per-fault-class scorecard whose
/// JSON rendering is canonical: same subject + options => byte-identical
/// scorecard (the fuzz-smoke CI job diffs it against a checked-in
/// expectation).
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_MUTATE_FUZZSWEEP_H
#define BUGASSIST_MUTATE_FUZZSWEEP_H

#include "core/Pipeline.h"
#include "mutate/MutantGenerator.h"

#include <array>
#include <functional>
#include <string>
#include <vector>

namespace bugassist {

/// The program under test plus everything needed to judge and localize
/// its mutants.
struct FuzzSubject {
  /// Golden (correct) analyzed program; must outlive the sweep.
  const Program *Base = nullptr;
  /// Subject tag in the scorecard ("tcas", "program1", ...).
  std::string Name;
  std::string Entry = "main";
  UnrollOptions Unroll;
  EncodeOptions Encode;
  /// Include assert/bounds obligations in the localization spec. The TCAS
  /// methodology uses golden-return specs only (false).
  bool CheckObligations = false;
  /// Test pool; mutants are judged by return-value difference vs Base.
  std::vector<InputVector> Pool;
  /// Never-mutated lines (harness + spec); also passed to the generator.
  std::set<uint32_t> ProtectedLines;
};

struct FuzzOptions {
  uint64_t Seed = 1;
  /// Mutants to generate.
  size_t Count = 100;
  /// The K in the width-1-vs-K differential (also the serve-parity width).
  int Threads = 4;
  size_t MaxDiagnoses = 8;
  /// Failing tests kept per mutant (screening depth for repair).
  size_t MaxFailingTests = 4;
  /// Passing tests replayed per repair candidate as regression witnesses:
  /// a "fix" that breaks previously passing pool behavior is rejected.
  size_t MaxPassingTests = 24;
  /// Interpreter fuel per pool run: far below the interpreter default so
  /// runaway-loop mutants (negated while conditions) stay cheap.
  uint64_t MaxInterpSteps = 100000;
  bool TryRepair = true;
  size_t RepairMaxCandidates = 64;
  uint64_t RepairVerifyBudget = 200000;
  /// Restrict to these fault classes (empty = all eight).
  std::vector<ErrorType> Classes;
};

/// Per-fault-class tallies, a row of the scorecard.
struct FuzzClassStats {
  size_t Mutants = 0;    ///< generated in this class
  size_t Failing = 0;    ///< had a localizable failing test
  size_t Localized = 0;  ///< localization produced >= 1 diagnosis
  size_t Hits = 0;       ///< ground-truth line among the suspects
  size_t Repaired = 0;   ///< a validated repair was found
  size_t Mismatches = 0; ///< differential reports disagreed (MUST be 0)
};

struct FuzzResult {
  std::array<FuzzClassStats, NumErrorTypes> PerClass;
  size_t Generated = 0;
  size_t TotalMismatches = 0;
  /// One human-readable note per mismatch (mutant description + configs).
  std::vector<std::string> MismatchNotes;
};

/// Optional progress hook: called after each mutant with (done, total).
using FuzzProgress = std::function<void(size_t, size_t)>;

/// Runs the sweep. Deterministic: same subject + options => same result
/// (all localize/repair queries run unbudgeted or with deterministic
/// conflict budgets, never wall-clock ones).
FuzzResult runFuzzSweep(const FuzzSubject &Subject, const FuzzOptions &Opts,
                        const FuzzProgress &Progress = nullptr);

/// Canonical JSON scorecard (Table 1 analogue). Deterministic byte-for-
/// byte; per-class rows appear in Table 2 order.
std::string renderFuzzScorecard(const FuzzSubject &Subject,
                                const FuzzOptions &Opts,
                                const FuzzResult &Res);

} // namespace bugassist

#endif // BUGASSIST_MUTATE_FUZZSWEEP_H
