//===- MutantGenerator.h - Seeded fault-catalog mutation engine -*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seed-driven AST mutation engine generalizing the
/// paper's Table 1/2 experiment: instead of the 41 hand-injected TCAS
/// versions, it walks any analyzed mini-C Program and synthesizes labeled
/// mutants for all eight ErrorType classes, each carrying its ground-truth
/// fault line and class tag. The fuzz sweep (mutate/FuzzSweep.h) feeds
/// these through the whole localize/repair stack as a differential test.
///
/// Mutants are planned against the base program using the ordinal-stable
/// preorder addressing of lang/AstWalk.h and applied to fresh
/// cloneProgram copies, so every mutant keeps the base source's line
/// numbering -- the ground-truth line stays meaningful, and UnrollOptions
/// hard lines for the subject remain valid.
///
/// Determinism contract: the same (base program, options, N) produces a
/// byte-identical mutant set -- all randomness flows through one SplitMix64
/// stream seeded from Options.Seed.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_MUTATE_MUTANTGENERATOR_H
#define BUGASSIST_MUTATE_MUTANTGENERATOR_H

#include "lang/Ast.h"
#include "programs/FaultCatalog.h"
#include "support/Rng.h"

#include <array>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace bugassist {

/// The label a generated mutant carries: which Table 2 class was injected,
/// on which base-source line, and a human-readable rendering of the edit.
struct MutantSpec {
  ErrorType Type = ErrorType::Op;
  /// Ground-truth fault line (base numbering; mutants preserve it). For
  /// ErrorType::Code this is the line of the *dropped* statement, which by
  /// construction is absent from the mutant's trace formula -- the paper's
  /// missing-code caveat (Section 6) applies.
  uint32_t Line = 0;
  /// e.g. "line 12: '<' -> '<='" or "line 7: constant 600 -> 601".
  std::string Description;
};

/// A mutant: its label plus the analyzed (parsed + sema'd) program.
struct GeneratedMutant {
  MutantSpec Spec;
  std::unique_ptr<Program> Prog;
};

struct MutantGeneratorOptions {
  /// SplitMix64 seed; the sole source of randomness.
  uint64_t Seed = 1;
  /// Fault classes to draw from, round-robin. Empty = all eight (classes
  /// with no sites in the subject are skipped).
  std::vector<ErrorType> Classes;
  /// Lines that must not be mutated -- the subject's test harness and
  /// specification lines (e.g. tcasUnrollOptions().HardLines).
  std::set<uint32_t> ProtectedLines;
  /// Re-draw budget per requested mutant before giving up on the slot
  /// (a draw can fail when e.g. an RHS redirection does not re-sema).
  unsigned MaxAttemptsPerMutant = 16;
};

/// Walks the base program once to discover mutation sites per fault class,
/// then serves seeded draws. Sites inside assert/assume conditions and on
/// protected lines are never mutated: the engine injects faults into the
/// code under test, not into the specification.
class MutantGenerator {
public:
  /// \p Base must be analyzed; the generator keeps its own re-analyzed
  /// clone, so \p Base need not outlive it.
  MutantGenerator(const Program &Base, MutantGeneratorOptions Opts = {});
  ~MutantGenerator();

  /// Number of discovered mutation sites for \p T (0 = the class can never
  /// be injected into this subject).
  size_t siteCount(ErrorType T) const;

  /// Draws the next \p N mutants (round-robin over enabled classes with
  /// sites). May return fewer than \p N if attempts are exhausted. Every
  /// returned program re-analyzed successfully; callers can run it
  /// directly. Consecutive calls continue the same stream: generate(4)
  /// twice == generate(8) once.
  std::vector<GeneratedMutant> generate(size_t N);

private:
  struct Impl;
  std::unique_ptr<Impl> M;
};

} // namespace bugassist

#endif // BUGASSIST_MUTATE_MUTANTGENERATOR_H
