//===- MutantGenerator.cpp - Seeded fault-catalog mutation engine ---------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mutate/MutantGenerator.h"

#include "lang/AstWalk.h"
#include "lang/Sema.h"

#include <algorithm>
#include <map>

using namespace bugassist;

namespace {

/// A fully planned edit, addressed so it can be replayed on any clone of
/// the base program. Exactly one of the Action cases below applies.
struct Plan {
  ErrorType Type = ErrorType::Op;
  enum ActionTy {
    SwapOp,        ///< expr ordinal: BinaryExpr op -> NewOp
    PerturbInt,    ///< expr ordinal: IntLiteral value += Delta
    RenameRef,     ///< expr ordinal: VarRef -> NewName (re-sema resolves)
    WrapExprIndex, ///< expr ordinal: ArrayIndex index -> index +/- 1
    WrapStmtIndex, ///< stmt ordinal: AssignStmt index -> index +/- 1
    DropStmt,      ///< stmt ordinal: erase from owner block
    DuplicateStmt, ///< stmt ordinal: re-insert a clone at InsertPos
    WrapInit,      ///< stmt ordinal (DeclStmt) or global: init -> init + 1
    NegateCond,    ///< stmt ordinal (If/While): comparison flip or !(cond)
  } Action = SwapOp;
  bool IsStmt = false;
  size_t Ordinal = 0;
  int GlobalIndex = -1; ///< WrapInit on a global instead of a DeclStmt
  int64_t Delta = 0;
  BinaryOp NewOp = BinaryOp::Add;
  std::string NewName;
  size_t InsertPos = 0;
  uint32_t Line = 0;
  std::string Description;
};

/// A discovered opportunity for one fault class; the seeded draw picks a
/// site uniformly and then fills in the class-specific payload.
struct Site {
  size_t Ordinal = 0;
  bool IsStmt = false;
  int GlobalIndex = -1;
  uint32_t Line = 0;
  int64_t Value = 0;                     ///< current literal value
  BinaryOp Op = BinaryOp::Add;           ///< current operator (Op/Branch)
  bool CondIsComparison = false;         ///< Branch: flip vs. !(...) wrap
  bool HasLiteral = false;               ///< Index: literal vs. wrap flavor
  std::vector<std::string> Alternatives; ///< Assign: candidate RHS names
  size_t BlockIndex = 0;                 ///< AddCode: position in owner
  size_t BlockSize = 0;                  ///< AddCode: owner child count
};

void collectExprTree(const Expr *E, std::vector<const Expr *> &Out) {
  if (!E)
    return;
  Out.push_back(E);
  switch (E->kind()) {
  case Expr::ArrayIndexKind:
    collectExprTree(cast<ArrayIndex>(E)->base(), Out);
    collectExprTree(cast<ArrayIndex>(E)->index(), Out);
    break;
  case Expr::UnaryKind:
    collectExprTree(cast<UnaryExpr>(E)->operand(), Out);
    break;
  case Expr::BinaryKind:
    collectExprTree(cast<BinaryExpr>(E)->lhs(), Out);
    collectExprTree(cast<BinaryExpr>(E)->rhs(), Out);
    break;
  case Expr::ConditionalKind:
    collectExprTree(cast<ConditionalExpr>(E)->cond(), Out);
    collectExprTree(cast<ConditionalExpr>(E)->thenExpr(), Out);
    collectExprTree(cast<ConditionalExpr>(E)->elseExpr(), Out);
    break;
  case Expr::CallKind:
    for (const auto &A : cast<CallExpr>(E)->args())
      collectExprTree(A.get(), Out);
    break;
  default:
    break;
  }
}

bool stmtContainsSpec(const Stmt *S) {
  if (!S)
    return false;
  switch (S->kind()) {
  case Stmt::AssertStmtKind:
  case Stmt::AssumeStmtKind:
    return true;
  case Stmt::BlockStmtKind:
    for (const auto &Sub : cast<BlockStmt>(S)->stmts())
      if (stmtContainsSpec(Sub.get()))
        return true;
    return false;
  case Stmt::IfStmtKind:
    return stmtContainsSpec(cast<IfStmt>(S)->thenStmt()) ||
           stmtContainsSpec(cast<IfStmt>(S)->elseStmt());
  case Stmt::WhileStmtKind:
    return stmtContainsSpec(cast<WhileStmt>(S)->body());
  default:
    return false;
  }
}

/// Finds the BlockStmt that directly owns \p Target, searching \p S.
BlockStmt *findOwnerBlock(Stmt *S, const Stmt *Target) {
  if (!S)
    return nullptr;
  switch (S->kind()) {
  case Stmt::BlockStmtKind: {
    auto *B = cast<BlockStmt>(S);
    for (const auto &Sub : B->stmts())
      if (Sub.get() == Target)
        return B;
    for (const auto &Sub : B->stmts())
      if (BlockStmt *Found = findOwnerBlock(Sub.get(), Target))
        return Found;
    return nullptr;
  }
  case Stmt::IfStmtKind:
    if (BlockStmt *Found = findOwnerBlock(cast<IfStmt>(S)->thenStmt(), Target))
      return Found;
    return findOwnerBlock(cast<IfStmt>(S)->elseStmt(), Target);
  case Stmt::WhileStmtKind:
    return findOwnerBlock(cast<WhileStmt>(S)->body(), Target);
  default:
    return nullptr;
  }
}

BlockStmt *findOwnerBlock(Program &P, const Stmt *Target) {
  for (const auto &F : P.functions())
    if (BlockStmt *Found = findOwnerBlock(F->body(), Target))
      return Found;
  return nullptr;
}

Expr *findExprByOrdinal(Program &P, size_t Wanted) {
  Expr *Found = nullptr;
  forEachExpr(P, [&](Expr *E, size_t Ordinal) {
    if (Ordinal == Wanted)
      Found = E;
  });
  return Found;
}

Stmt *findStmtByOrdinal(Program &P, size_t Wanted) {
  Stmt *Found = nullptr;
  forEachStmt(P, [&](Stmt *S, size_t Ordinal) {
    if (Ordinal == Wanted)
      Found = S;
  });
  return Found;
}

/// `old` +/- |Delta| as a new expression, reusing the wrapped node's loc so
/// the mutation stays on its line.
ExprPtr wrapPlusMinus(const Expr *Old, int64_t Delta) {
  BinaryOp Op = Delta >= 0 ? BinaryOp::Add : BinaryOp::Sub;
  int64_t Mag = Delta >= 0 ? Delta : -Delta;
  return std::make_unique<BinaryExpr>(
      Op, cloneExpr(Old), std::make_unique<IntLiteral>(Mag, Old->loc()),
      Old->loc());
}

/// The negation of a comparison operator (Lt <-> Ge etc.); non-comparison
/// conditions are negated by wrapping in LogNot instead.
BinaryOp negatedComparison(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
    return BinaryOp::Ge;
  case BinaryOp::Le:
    return BinaryOp::Gt;
  case BinaryOp::Gt:
    return BinaryOp::Le;
  case BinaryOp::Ge:
    return BinaryOp::Lt;
  case BinaryOp::Eq:
    return BinaryOp::Ne;
  default:
    return BinaryOp::Eq; // Ne
  }
}

std::string lineTag(uint32_t Line) {
  return "line " + std::to_string(Line) + ": ";
}

} // namespace

struct MutantGenerator::Impl {
  MutantGeneratorOptions Opts;
  std::unique_ptr<Program> Base;
  Rng Stream;
  std::array<std::vector<Site>, NumErrorTypes> Sites;
  /// Classes actually drawn from: requested (or all), sites present.
  std::vector<ErrorType> Enabled;
  size_t NextClass = 0;

  Impl(const Program &BaseProg, MutantGeneratorOptions O)
      : Opts(std::move(O)), Base(cloneProgram(BaseProg)), Stream(Opts.Seed) {
    DiagEngine Diags;
    bool Ok = analyzeProgram(*Base, Diags);
    assert(Ok && "MutantGenerator requires an analyzable base program");
    (void)Ok;
    discover();
    std::vector<ErrorType> Wanted =
        Opts.Classes.empty()
            ? std::vector<ErrorType>(std::begin(AllErrorTypes),
                                     std::end(AllErrorTypes))
            : Opts.Classes;
    for (ErrorType T : Wanted)
      if (!sitesFor(T).empty())
        Enabled.push_back(T);
  }

  std::vector<Site> &sitesFor(ErrorType T) {
    return Sites[static_cast<size_t>(T)];
  }

  bool lineProtected(uint32_t Line) const {
    return Line == 0 || Opts.ProtectedLines.count(Line) != 0;
  }

  void discover();
  bool plan(ErrorType T, Plan &P);
  bool apply(Program &Clone, const Plan &P) const;
  std::vector<GeneratedMutant> generate(size_t N);
};

void MutantGenerator::Impl::discover() {
  // Pass 1: pointer-keyed context, no ordinals involved. SpecExprs marks
  // assert/assume interiors (never mutated); InitExprs marks initializer
  // interiors (Init class, not Const); IndexExprs marks subscript
  // interiors (Index class, not Const); AssignRhs maps each VarRef inside
  // an assignment RHS to its enclosing function (for visible-name
  // alternatives).
  std::set<const Expr *> SpecExprs, InitExprs, IndexExprs, IndexRoots;
  std::map<const Expr *, const FunctionDecl *> AssignRhs;
  std::map<const Stmt *, std::pair<const BlockStmt *, size_t>> Owner;

  auto MarkTree = [](const Expr *Root, std::set<const Expr *> &Into) {
    std::vector<const Expr *> All;
    collectExprTree(Root, All);
    Into.insert(All.begin(), All.end());
  };

  for (const auto &G : Base->globals())
    if (G->init())
      MarkTree(G->init(), InitExprs);

  for (const auto &F : Base->functions()) {
    std::function<void(const Stmt *)> Walk = [&](const Stmt *S) {
      if (!S)
        return;
      switch (S->kind()) {
      case Stmt::BlockStmtKind: {
        const auto *B = cast<BlockStmt>(S);
        for (size_t I = 0; I < B->stmts().size(); ++I) {
          Owner[B->stmts()[I].get()] = {B, I};
          Walk(B->stmts()[I].get());
        }
        break;
      }
      case Stmt::DeclStmtKind:
        if (const Expr *Init = cast<DeclStmt>(S)->decl()->init())
          MarkTree(Init, InitExprs);
        break;
      case Stmt::AssignStmtKind: {
        const auto *A = cast<AssignStmt>(S);
        if (A->index()) {
          IndexRoots.insert(A->index());
          MarkTree(A->index(), IndexExprs);
        }
        std::vector<const Expr *> Rhs;
        collectExprTree(A->value(), Rhs);
        for (const Expr *E : Rhs)
          if (E->kind() == Expr::VarRefKind)
            AssignRhs[E] = F.get();
        break;
      }
      case Stmt::IfStmtKind:
        Walk(cast<IfStmt>(S)->thenStmt());
        Walk(cast<IfStmt>(S)->elseStmt());
        break;
      case Stmt::WhileStmtKind:
        Walk(cast<WhileStmt>(S)->body());
        break;
      case Stmt::AssertStmtKind:
        MarkTree(cast<AssertStmt>(S)->cond(), SpecExprs);
        break;
      case Stmt::AssumeStmtKind:
        MarkTree(cast<AssumeStmt>(S)->cond(), SpecExprs);
        break;
      default:
        break;
      }
    };
    Walk(F->body());
  }
  // Subscript interiors of array *reads* (a[i] on the RHS).
  forEachExpr(*Base, [&](Expr *E, size_t) {
    if (auto *AI = dyn_cast<ArrayIndex>(E)) {
      IndexRoots.insert(AI->index());
      MarkTree(AI->index(), IndexExprs);
    }
  });

  // Pass 2: expression-addressed sites, classified via the pass-1 context.
  forEachExpr(*Base, [&](Expr *E, size_t Ordinal) {
    uint32_t Line = E->loc().Line;
    if (lineProtected(Line) || SpecExprs.count(E))
      return;
    Site S;
    S.Ordinal = Ordinal;
    S.Line = Line;
    switch (E->kind()) {
    case Expr::BinaryKind: {
      auto *BE = cast<BinaryExpr>(E);
      if (!nearMissOps(BE->op()).empty()) {
        S.Op = BE->op();
        sitesFor(ErrorType::Op).push_back(S);
      }
      break;
    }
    case Expr::IntLiteralKind: {
      S.Value = cast<IntLiteral>(E)->value();
      S.HasLiteral = true;
      if (IndexExprs.count(E))
        sitesFor(ErrorType::Index).push_back(S);
      else if (InitExprs.count(E))
        sitesFor(ErrorType::Init).push_back(S);
      else
        sitesFor(ErrorType::Const).push_back(S);
      break;
    }
    case Expr::VarRefKind: {
      auto It = AssignRhs.find(E);
      if (It == AssignRhs.end() || IndexExprs.count(E))
        break;
      const auto *VR = cast<VarRef>(E);
      if (!VR->decl() || !VR->decl()->type().isScalar())
        break;
      // Visible same-type scalars: globals plus the enclosing function's
      // parameters. Locals are skipped (their scope here is unknown);
      // shadowing-induced type clashes are caught by the re-sema retry.
      Type Ty = VR->decl()->type();
      for (const auto &G : Base->globals())
        if (G->type() == Ty && G->name() != VR->name())
          S.Alternatives.push_back(G->name());
      for (const auto &Param : It->second->params())
        if (Param->type() == Ty && Param->name() != VR->name())
          S.Alternatives.push_back(Param->name());
      if (!S.Alternatives.empty())
        sitesFor(ErrorType::Assign).push_back(S);
      break;
    }
    case Expr::ArrayIndexKind:
      // Wrap flavor (index -> index +/- 1) for non-literal subscripts; a
      // literal subscript is already a literal-flavor site above.
      if (cast<ArrayIndex>(E)->index()->kind() != Expr::IntLiteralKind)
        sitesFor(ErrorType::Index).push_back(S);
      break;
    default:
      break;
    }
  });

  // Pass 3: statement-addressed sites.
  forEachStmt(*Base, [&](Stmt *St, size_t Ordinal) {
    uint32_t Line = St->loc().Line;
    if (lineProtected(Line))
      return;
    Site S;
    S.Ordinal = Ordinal;
    S.IsStmt = true;
    S.Line = Line;
    auto It = Owner.find(St);
    bool Owned = It != Owner.end();
    switch (St->kind()) {
    case Stmt::AssignStmtKind: {
      const auto *A = cast<AssignStmt>(St);
      if (Owned) {
        S.BlockIndex = It->second.second;
        S.BlockSize = It->second.first->stmts().size();
        sitesFor(ErrorType::AddCode).push_back(S);
        sitesFor(ErrorType::Code).push_back(S);
      }
      if (A->index() && A->index()->kind() != Expr::IntLiteralKind)
        sitesFor(ErrorType::Index).push_back(S);
      break;
    }
    case Stmt::ExprStmtKind:
      if (Owned)
        sitesFor(ErrorType::Code).push_back(S);
      break;
    case Stmt::IfStmtKind:
    case Stmt::WhileStmtKind: {
      // Dropping a statement that contains the spec would mutate the
      // property, not the program -- exclude those from the Code class.
      if (Owned && !stmtContainsSpec(St))
        sitesFor(ErrorType::Code).push_back(S);
      const Expr *Cond = St->kind() == Stmt::IfStmtKind
                             ? cast<IfStmt>(St)->cond()
                             : cast<WhileStmt>(St)->cond();
      if (!lineProtected(Cond->loc().Line)) {
        Site B = S;
        B.Line = Cond->loc().Line;
        if (const auto *BE = dyn_cast<BinaryExpr>(Cond))
          if (isComparisonOp(BE->op())) {
            B.CondIsComparison = true;
            B.Op = BE->op();
          }
        sitesFor(ErrorType::Branch).push_back(B);
      }
      break;
    }
    case Stmt::DeclStmtKind:
      if (cast<DeclStmt>(St)->decl()->init())
        sitesFor(ErrorType::Init).push_back(S);
      break;
    default:
      break;
    }
  });

  // Globals with initializers: the wrap flavor of Init.
  for (size_t I = 0; I < Base->globals().size(); ++I) {
    const VarDecl *G = Base->globals()[I].get();
    if (!G->init() || lineProtected(G->loc().Line))
      continue;
    Site S;
    S.GlobalIndex = static_cast<int>(I);
    S.Line = G->loc().Line;
    sitesFor(ErrorType::Init).push_back(S);
  }
}

bool MutantGenerator::Impl::plan(ErrorType T, Plan &P) {
  std::vector<Site> &Pool = sitesFor(T);
  if (Pool.empty())
    return false;
  const Site &S = Pool[Stream.below(Pool.size())];
  P.Type = T;
  P.IsStmt = S.IsStmt;
  P.Ordinal = S.Ordinal;
  P.GlobalIndex = S.GlobalIndex;
  P.Line = S.Line;
  static const int64_t Deltas[] = {1, -1, 2, -2};
  switch (T) {
  case ErrorType::Op: {
    std::vector<BinaryOp> Alts = nearMissOps(S.Op);
    P.Action = Plan::SwapOp;
    P.NewOp = Alts[Stream.below(Alts.size())];
    P.Description = lineTag(P.Line) + "'" + binaryOpSpelling(S.Op) +
                    "' -> '" + binaryOpSpelling(P.NewOp) + "'";
    return true;
  }
  case ErrorType::Const: {
    P.Action = Plan::PerturbInt;
    P.Delta = Deltas[Stream.below(4)];
    P.Description = lineTag(P.Line) + "constant " + std::to_string(S.Value) +
                    " -> " + std::to_string(S.Value + P.Delta);
    return true;
  }
  case ErrorType::Assign: {
    P.Action = Plan::RenameRef;
    P.NewName = S.Alternatives[Stream.below(S.Alternatives.size())];
    P.Description = lineTag(P.Line) + "rhs variable -> '" + P.NewName + "'";
    return true;
  }
  case ErrorType::Code: {
    P.Action = Plan::DropStmt;
    P.Description = lineTag(P.Line) + "dropped statement";
    return true;
  }
  case ErrorType::AddCode: {
    P.Action = Plan::DuplicateStmt;
    // Re-insert anywhere after the original within the same block.
    P.InsertPos =
        S.BlockIndex + 1 + Stream.below(S.BlockSize - S.BlockIndex);
    P.Description = lineTag(P.Line) + "duplicated statement";
    return true;
  }
  case ErrorType::Init: {
    if (S.HasLiteral) {
      P.Action = Plan::PerturbInt;
      P.IsStmt = false;
      P.Delta = Deltas[Stream.below(4)];
      P.Description = lineTag(P.Line) + "init constant " +
                      std::to_string(S.Value) + " -> " +
                      std::to_string(S.Value + P.Delta);
    } else {
      P.Action = Plan::WrapInit;
      P.Delta = Stream.chance(1, 2) ? 1 : -1;
      P.Description = lineTag(P.Line) + "init skewed by " +
                      (P.Delta > 0 ? std::string("+1") : std::string("-1"));
    }
    return true;
  }
  case ErrorType::Index: {
    P.Delta = Stream.chance(1, 2) ? 1 : -1;
    if (S.HasLiteral) {
      P.Action = Plan::PerturbInt;
      P.Description = lineTag(P.Line) + "index " + std::to_string(S.Value) +
                      " -> " + std::to_string(S.Value + P.Delta);
    } else {
      P.Action = S.IsStmt ? Plan::WrapStmtIndex : Plan::WrapExprIndex;
      P.Description = lineTag(P.Line) + "index skewed by " +
                      (P.Delta > 0 ? std::string("+1") : std::string("-1"));
    }
    return true;
  }
  case ErrorType::Branch: {
    P.Action = Plan::NegateCond;
    if (S.CondIsComparison) {
      P.NewOp = negatedComparison(S.Op);
      P.Description = lineTag(P.Line) + "'" + binaryOpSpelling(S.Op) +
                      "' -> '" + binaryOpSpelling(P.NewOp) + "'";
    } else {
      P.NewOp = BinaryOp::Add; // sentinel: wrap in !(...)
      P.Description = lineTag(P.Line) + "negated condition";
    }
    return true;
  }
  }
  return false;
}

bool MutantGenerator::Impl::apply(Program &Clone, const Plan &P) const {
  if (P.GlobalIndex >= 0) {
    // WrapInit on a global.
    VarDecl *G = Clone.globals()[static_cast<size_t>(P.GlobalIndex)].get();
    if (!G->init())
      return false;
    G->setInit(wrapPlusMinus(G->init(), P.Delta));
    return true;
  }
  if (!P.IsStmt) {
    Expr *E = findExprByOrdinal(Clone, P.Ordinal);
    if (!E)
      return false;
    switch (P.Action) {
    case Plan::SwapOp:
      cast<BinaryExpr>(E)->setOp(P.NewOp);
      return true;
    case Plan::PerturbInt: {
      auto *L = cast<IntLiteral>(E);
      L->setValue(L->value() + P.Delta);
      return true;
    }
    case Plan::RenameRef:
      cast<VarRef>(E)->setName(P.NewName);
      return true;
    case Plan::WrapExprIndex: {
      auto *AI = cast<ArrayIndex>(E);
      AI->setIndex(wrapPlusMinus(AI->index(), P.Delta));
      return true;
    }
    default:
      return false;
    }
  }
  Stmt *St = findStmtByOrdinal(Clone, P.Ordinal);
  if (!St)
    return false;
  switch (P.Action) {
  case Plan::WrapStmtIndex: {
    auto *A = cast<AssignStmt>(St);
    if (!A->index())
      return false;
    A->setIndex(wrapPlusMinus(A->index(), P.Delta));
    return true;
  }
  case Plan::DropStmt: {
    BlockStmt *B = findOwnerBlock(Clone, St);
    if (!B)
      return false;
    auto &Stmts = B->stmts();
    for (auto It = Stmts.begin(); It != Stmts.end(); ++It)
      if (It->get() == St) {
        Stmts.erase(It);
        return true;
      }
    return false;
  }
  case Plan::DuplicateStmt: {
    BlockStmt *B = findOwnerBlock(Clone, St);
    if (!B || P.InsertPos > B->stmts().size())
      return false;
    // cloneStmt keeps the original SourceLoc, so the duplicate lands on
    // the ground-truth line.
    B->stmts().insert(B->stmts().begin() + static_cast<long>(P.InsertPos),
                      cloneStmt(St));
    return true;
  }
  case Plan::WrapInit: {
    VarDecl *D = cast<DeclStmt>(St)->decl();
    if (!D->init())
      return false;
    D->setInit(wrapPlusMinus(D->init(), P.Delta));
    return true;
  }
  case Plan::NegateCond: {
    Expr *Cond = St->kind() == Stmt::IfStmtKind ? cast<IfStmt>(St)->cond()
                                                : cast<WhileStmt>(St)->cond();
    auto *BE = dyn_cast<BinaryExpr>(Cond);
    ExprPtr NewCond;
    if (BE && isComparisonOp(BE->op())) {
      BE->setOp(P.NewOp);
      return true;
    }
    NewCond = std::make_unique<UnaryExpr>(UnaryOp::LogNot, cloneExpr(Cond),
                                          Cond->loc());
    if (St->kind() == Stmt::IfStmtKind)
      cast<IfStmt>(St)->setCond(std::move(NewCond));
    else
      cast<WhileStmt>(St)->setCond(std::move(NewCond));
    return true;
  }
  default:
    return false;
  }
}

std::vector<GeneratedMutant> MutantGenerator::Impl::generate(size_t N) {
  std::vector<GeneratedMutant> Out;
  if (Enabled.empty())
    return Out;
  for (size_t Slot = 0; Slot < N; ++Slot) {
    ErrorType T = Enabled[NextClass % Enabled.size()];
    ++NextClass;
    for (unsigned Attempt = 0; Attempt < Opts.MaxAttemptsPerMutant;
         ++Attempt) {
      Plan P;
      if (!plan(T, P))
        break;
      auto Clone = cloneProgram(*Base);
      if (!apply(*Clone, P))
        continue;
      DiagEngine Diags;
      if (!analyzeProgram(*Clone, Diags))
        continue; // e.g. an RHS rename that no longer type-checks
      GeneratedMutant M;
      M.Spec.Type = P.Type;
      M.Spec.Line = P.Line;
      M.Spec.Description = std::move(P.Description);
      M.Prog = std::move(Clone);
      Out.push_back(std::move(M));
      break;
    }
  }
  return Out;
}

MutantGenerator::MutantGenerator(const Program &Base,
                                 MutantGeneratorOptions Opts)
    : M(std::make_unique<Impl>(Base, std::move(Opts))) {}

MutantGenerator::~MutantGenerator() = default;

size_t MutantGenerator::siteCount(ErrorType T) const {
  return M->Sites[static_cast<size_t>(T)].size();
}

std::vector<GeneratedMutant> MutantGenerator::generate(size_t N) {
  return M->generate(N);
}
