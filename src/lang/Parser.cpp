//===- Parser.cpp - Mini-C recursive-descent parser ---------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include <optional>

using namespace bugassist;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  std::unique_ptr<Program> parse();

private:
  // --- token plumbing ------------------------------------------------------
  const Token &peek(int Ahead = 0) const {
    size_t P = Pos + static_cast<size_t>(Ahead);
    return P < Tokens.size() ? Tokens[P] : Tokens.back();
  }
  const Token &advance() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }
  bool check(TokenKind K) const { return peek().is(K); }
  bool accept(TokenKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokenKind K, const char *Context) {
    if (accept(K))
      return true;
    Diags.error(peek().Loc, std::string("expected ") + tokenKindName(K) +
                                " " + Context + ", found " +
                                tokenKindName(peek().Kind));
    return false;
  }
  bool atTypeKeyword() const {
    return check(TokenKind::KwInt) || check(TokenKind::KwBool) ||
           check(TokenKind::KwVoid);
  }

  // --- grammar -------------------------------------------------------------
  std::optional<Type> parseScalarType();
  std::unique_ptr<VarDecl> parseVarDecl(Type Base, bool AllowInit);
  std::unique_ptr<FunctionDecl> parseFunctionRest(Type RetTy,
                                                  const Token &NameTok);
  std::unique_ptr<BlockStmt> parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseSimpleAssignNoSemi();
  ExprPtr parseExpr() { return parseConditional(); }
  ExprPtr parseConditional();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  DiagEngine &Diags;
  size_t Pos = 0;
};

/// Precedence table for binary operators; higher binds tighter.
int binPrec(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return 1;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::Pipe:
    return 3;
  case TokenKind::Caret:
    return 4;
  case TokenKind::Amp:
    return 5;
  case TokenKind::EqEq:
  case TokenKind::NotEq:
    return 6;
  case TokenKind::Lt:
  case TokenKind::Le:
  case TokenKind::Gt:
  case TokenKind::Ge:
    return 7;
  case TokenKind::Shl:
  case TokenKind::Shr:
    return 8;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 9;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 10;
  default:
    return 0;
  }
}

BinaryOp binOpFor(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return BinaryOp::LogOr;
  case TokenKind::AmpAmp:
    return BinaryOp::LogAnd;
  case TokenKind::Pipe:
    return BinaryOp::BitOr;
  case TokenKind::Caret:
    return BinaryOp::BitXor;
  case TokenKind::Amp:
    return BinaryOp::BitAnd;
  case TokenKind::EqEq:
    return BinaryOp::Eq;
  case TokenKind::NotEq:
    return BinaryOp::Ne;
  case TokenKind::Lt:
    return BinaryOp::Lt;
  case TokenKind::Le:
    return BinaryOp::Le;
  case TokenKind::Gt:
    return BinaryOp::Gt;
  case TokenKind::Ge:
    return BinaryOp::Ge;
  case TokenKind::Shl:
    return BinaryOp::Shl;
  case TokenKind::Shr:
    return BinaryOp::Shr;
  case TokenKind::Plus:
    return BinaryOp::Add;
  case TokenKind::Minus:
    return BinaryOp::Sub;
  case TokenKind::Star:
    return BinaryOp::Mul;
  case TokenKind::Slash:
    return BinaryOp::Div;
  case TokenKind::Percent:
    return BinaryOp::Rem;
  default:
    assert(false && "not a binary operator token");
    return BinaryOp::Add;
  }
}

std::optional<Type> Parser::parseScalarType() {
  if (accept(TokenKind::KwInt))
    return Type::intTy();
  if (accept(TokenKind::KwBool))
    return Type::boolTy();
  if (accept(TokenKind::KwVoid))
    return Type::voidTy();
  return std::nullopt;
}

std::unique_ptr<VarDecl> Parser::parseVarDecl(Type Base, bool AllowInit) {
  Token NameTok = peek();
  if (!expect(TokenKind::Identifier, "in declaration"))
    return nullptr;
  Type Ty = Base;
  if (accept(TokenKind::LBracket)) {
    if (!Base.isInt()) {
      Diags.error(NameTok.Loc, "only int arrays are supported");
      return nullptr;
    }
    Token SizeTok = peek();
    if (!expect(TokenKind::IntLiteral, "as array size"))
      return nullptr;
    if (SizeTok.IntValue <= 0 || SizeTok.IntValue > 1 << 20) {
      Diags.error(SizeTok.Loc, "array size out of range");
      return nullptr;
    }
    if (!expect(TokenKind::RBracket, "after array size"))
      return nullptr;
    Ty = Type::arrayTy(static_cast<int>(SizeTok.IntValue));
  }
  auto D = std::make_unique<VarDecl>(NameTok.Text, Ty, NameTok.Loc);
  if (accept(TokenKind::Assign)) {
    if (!AllowInit || Ty.isArray()) {
      Diags.error(peek().Loc, "initializer not allowed here");
      return nullptr;
    }
    ExprPtr Init = parseExpr();
    if (!Init)
      return nullptr;
    D->setInit(std::move(Init));
  }
  return D;
}

std::unique_ptr<FunctionDecl> Parser::parseFunctionRest(Type RetTy,
                                                        const Token &NameTok) {
  auto F = std::make_unique<FunctionDecl>(NameTok.Text, RetTy, NameTok.Loc);
  if (!expect(TokenKind::LParen, "after function name"))
    return nullptr;
  if (!check(TokenKind::RParen)) {
    do {
      std::optional<Type> PT = parseScalarType();
      if (!PT || PT->isVoid()) {
        Diags.error(peek().Loc, "expected parameter type");
        return nullptr;
      }
      auto P = parseVarDecl(*PT, /*AllowInit=*/false);
      if (!P)
        return nullptr;
      P->setParam(true);
      F->params().push_back(std::move(P));
    } while (accept(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "after parameters"))
    return nullptr;
  auto Body = parseBlock();
  if (!Body)
    return nullptr;
  F->setBody(std::move(Body));
  return F;
}

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  SourceLoc Loc = peek().Loc;
  if (!expect(TokenKind::LBrace, "to open block"))
    return nullptr;
  std::vector<StmtPtr> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    StmtPtr S = parseStmt();
    if (!S)
      return nullptr;
    Stmts.push_back(std::move(S));
  }
  if (!expect(TokenKind::RBrace, "to close block"))
    return nullptr;
  return std::make_unique<BlockStmt>(std::move(Stmts), Loc);
}

/// Parses `x = e` or `a[i] = e` without the trailing semicolon (for-loop
/// headers and regular assignment statements share this).
StmtPtr Parser::parseSimpleAssignNoSemi() {
  Token NameTok = peek();
  if (!expect(TokenKind::Identifier, "as assignment target"))
    return nullptr;
  ExprPtr Index;
  if (accept(TokenKind::LBracket)) {
    Index = parseExpr();
    if (!Index || !expect(TokenKind::RBracket, "after index"))
      return nullptr;
  }
  if (!expect(TokenKind::Assign, "in assignment"))
    return nullptr;
  ExprPtr Value = parseExpr();
  if (!Value)
    return nullptr;
  return std::make_unique<AssignStmt>(NameTok.Text, std::move(Index),
                                      std::move(Value), NameTok.Loc);
}

StmtPtr Parser::parseStmt() {
  SourceLoc Loc = peek().Loc;

  if (check(TokenKind::LBrace))
    return parseBlock();

  if (atTypeKeyword()) {
    std::optional<Type> T = parseScalarType();
    if (T->isVoid()) {
      Diags.error(Loc, "cannot declare a void variable");
      return nullptr;
    }
    auto D = parseVarDecl(*T, /*AllowInit=*/true);
    if (!D || !expect(TokenKind::Semi, "after declaration"))
      return nullptr;
    return std::make_unique<DeclStmt>(std::move(D), Loc);
  }

  if (accept(TokenKind::KwIf)) {
    if (!expect(TokenKind::LParen, "after 'if'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen, "after condition"))
      return nullptr;
    StmtPtr Then = parseStmt();
    if (!Then)
      return nullptr;
    StmtPtr Else;
    if (accept(TokenKind::KwElse)) {
      Else = parseStmt();
      if (!Else)
        return nullptr;
    }
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else), Loc);
  }

  if (accept(TokenKind::KwWhile)) {
    if (!expect(TokenKind::LParen, "after 'while'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen, "after condition"))
      return nullptr;
    StmtPtr Body = parseStmt();
    if (!Body)
      return nullptr;
    return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
  }

  if (accept(TokenKind::KwFor)) {
    // Desugar: for (init; cond; step) body
    //   ==>    { init; while (cond) { body; step; } }
    if (!expect(TokenKind::LParen, "after 'for'"))
      return nullptr;
    StmtPtr Init;
    if (!check(TokenKind::Semi)) {
      Init = parseSimpleAssignNoSemi();
      if (!Init)
        return nullptr;
    }
    if (!expect(TokenKind::Semi, "after for-initializer"))
      return nullptr;
    ExprPtr Cond;
    if (!check(TokenKind::Semi)) {
      Cond = parseExpr();
      if (!Cond)
        return nullptr;
    } else {
      Cond = std::make_unique<BoolLiteral>(true, Loc);
    }
    if (!expect(TokenKind::Semi, "after for-condition"))
      return nullptr;
    StmtPtr Step;
    if (!check(TokenKind::RParen)) {
      Step = parseSimpleAssignNoSemi();
      if (!Step)
        return nullptr;
    }
    if (!expect(TokenKind::RParen, "after for-header"))
      return nullptr;
    StmtPtr Body = parseStmt();
    if (!Body)
      return nullptr;

    std::vector<StmtPtr> Inner;
    Inner.push_back(std::move(Body));
    if (Step)
      Inner.push_back(std::move(Step));
    auto LoopBody = std::make_unique<BlockStmt>(std::move(Inner), Loc);
    auto Loop =
        std::make_unique<WhileStmt>(std::move(Cond), std::move(LoopBody), Loc);
    std::vector<StmtPtr> Outer;
    if (Init)
      Outer.push_back(std::move(Init));
    Outer.push_back(std::move(Loop));
    return std::make_unique<BlockStmt>(std::move(Outer), Loc);
  }

  if (accept(TokenKind::KwReturn)) {
    ExprPtr Value;
    if (!check(TokenKind::Semi)) {
      Value = parseExpr();
      if (!Value)
        return nullptr;
    }
    if (!expect(TokenKind::Semi, "after 'return'"))
      return nullptr;
    return std::make_unique<ReturnStmt>(std::move(Value), Loc);
  }

  if (accept(TokenKind::KwAssert) || check(TokenKind::KwAssume)) {
    bool IsAssume = accept(TokenKind::KwAssume);
    if (!expect(TokenKind::LParen, IsAssume ? "after 'assume'"
                                            : "after 'assert'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen, "after condition") ||
        !expect(TokenKind::Semi, "after statement"))
      return nullptr;
    if (IsAssume)
      return std::make_unique<AssumeStmt>(std::move(Cond), Loc);
    return std::make_unique<AssertStmt>(std::move(Cond), Loc);
  }

  if (check(TokenKind::Identifier)) {
    // Call statement or assignment.
    if (peek(1).is(TokenKind::LParen)) {
      ExprPtr Call = parsePostfix();
      if (!Call || !expect(TokenKind::Semi, "after call"))
        return nullptr;
      return std::make_unique<ExprStmt>(std::move(Call), Loc);
    }
    StmtPtr S = parseSimpleAssignNoSemi();
    if (!S || !expect(TokenKind::Semi, "after assignment"))
      return nullptr;
    return S;
  }

  Diags.error(Loc, std::string("expected statement, found ") +
                       tokenKindName(peek().Kind));
  return nullptr;
}

ExprPtr Parser::parseConditional() {
  ExprPtr Cond = parseBinary(1);
  if (!Cond)
    return nullptr;
  if (!accept(TokenKind::Question))
    return Cond;
  SourceLoc Loc = Cond->loc();
  ExprPtr Then = parseConditional();
  if (!Then || !expect(TokenKind::Colon, "in conditional expression"))
    return nullptr;
  ExprPtr Else = parseConditional();
  if (!Else)
    return nullptr;
  return std::make_unique<ConditionalExpr>(std::move(Cond), std::move(Then),
                                           std::move(Else), Loc);
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  for (;;) {
    int Prec = binPrec(peek().Kind);
    if (Prec == 0 || Prec < MinPrec)
      return Lhs;
    Token OpTok = advance();
    ExprPtr Rhs = parseBinary(Prec + 1);
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(binOpFor(OpTok.Kind), std::move(Lhs),
                                       std::move(Rhs), OpTok.Loc);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = peek().Loc;
  if (accept(TokenKind::Minus)) {
    ExprPtr E = parseUnary();
    return E ? std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(E), Loc)
             : nullptr;
  }
  if (accept(TokenKind::Bang)) {
    ExprPtr E = parseUnary();
    return E ? std::make_unique<UnaryExpr>(UnaryOp::LogNot, std::move(E), Loc)
             : nullptr;
  }
  if (accept(TokenKind::Tilde)) {
    ExprPtr E = parseUnary();
    return E ? std::make_unique<UnaryExpr>(UnaryOp::BitNot, std::move(E), Loc)
             : nullptr;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  for (;;) {
    if (accept(TokenKind::LBracket)) {
      SourceLoc Loc = E->loc();
      ExprPtr Index = parseExpr();
      if (!Index || !expect(TokenKind::RBracket, "after index"))
        return nullptr;
      E = std::make_unique<ArrayIndex>(std::move(E), std::move(Index), Loc);
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  Token T = peek();
  if (accept(TokenKind::IntLiteral))
    return std::make_unique<IntLiteral>(T.IntValue, T.Loc);
  if (accept(TokenKind::KwTrue))
    return std::make_unique<BoolLiteral>(true, T.Loc);
  if (accept(TokenKind::KwFalse))
    return std::make_unique<BoolLiteral>(false, T.Loc);
  if (accept(TokenKind::LParen)) {
    ExprPtr E = parseExpr();
    if (!E || !expect(TokenKind::RParen, "after expression"))
      return nullptr;
    return E;
  }
  if (accept(TokenKind::Identifier)) {
    if (accept(TokenKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!check(TokenKind::RParen)) {
        do {
          ExprPtr A = parseExpr();
          if (!A)
            return nullptr;
          Args.push_back(std::move(A));
        } while (accept(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "after call arguments"))
        return nullptr;
      return std::make_unique<CallExpr>(T.Text, std::move(Args), T.Loc);
    }
    return std::make_unique<VarRef>(T.Text, T.Loc);
  }
  Diags.error(T.Loc, std::string("expected expression, found ") +
                         tokenKindName(T.Kind));
  return nullptr;
}

std::unique_ptr<Program> Parser::parse() {
  auto Prog = std::make_unique<Program>();
  while (!check(TokenKind::Eof)) {
    SourceLoc Loc = peek().Loc;
    std::optional<Type> T = parseScalarType();
    if (!T) {
      Diags.error(Loc, std::string("expected declaration, found ") +
                           tokenKindName(peek().Kind));
      return nullptr;
    }
    Token NameTok = peek();
    if (!expect(TokenKind::Identifier, "as declaration name"))
      return nullptr;
    if (check(TokenKind::LParen)) {
      auto F = parseFunctionRest(*T, NameTok);
      if (!F)
        return nullptr;
      Prog->functions().push_back(std::move(F));
      continue;
    }
    // Global variable: reuse the tail of parseVarDecl by rewinding is
    // awkward, so duplicate the array/init suffix handling here.
    if (T->isVoid()) {
      Diags.error(Loc, "cannot declare a void variable");
      return nullptr;
    }
    Type Ty = *T;
    if (accept(TokenKind::LBracket)) {
      Token SizeTok = peek();
      if (!expect(TokenKind::IntLiteral, "as array size"))
        return nullptr;
      if (!expect(TokenKind::RBracket, "after array size"))
        return nullptr;
      Ty = Type::arrayTy(static_cast<int>(SizeTok.IntValue));
    }
    auto G = std::make_unique<VarDecl>(NameTok.Text, Ty, NameTok.Loc);
    G->setGlobal(true);
    if (accept(TokenKind::Assign)) {
      ExprPtr Init = parseExpr();
      if (!Init)
        return nullptr;
      G->setInit(std::move(Init));
    }
    if (!expect(TokenKind::Semi, "after global declaration"))
      return nullptr;
    Prog->globals().push_back(std::move(G));
  }
  return Prog;
}

} // namespace

std::unique_ptr<Program> bugassist::parseProgram(std::string_view Source,
                                                 DiagEngine &Diags) {
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.lexAll();
  if (Diags.hasErrors())
    return nullptr;
  Parser P(std::move(Tokens), Diags);
  auto Prog = P.parse();
  if (Diags.hasErrors())
    return nullptr;
  return Prog;
}
