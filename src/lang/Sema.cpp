//===- Sema.cpp - Mini-C semantic analysis -------------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include "lang/Parser.h"

#include <map>
#include <set>
#include <vector>

using namespace bugassist;

namespace {

class Sema {
public:
  Sema(Program &Prog, DiagEngine &Diags) : Prog(Prog), Diags(Diags) {}

  bool run();

private:
  // --- scopes ----------------------------------------------------------------
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  bool declare(VarDecl *D) {
    auto &Top = Scopes.back();
    if (Top.count(D->name())) {
      Diags.error(D->loc(), "redeclaration of '" + D->name() + "'");
      return false;
    }
    Top[D->name()] = D;
    return true;
  }
  VarDecl *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return nullptr;
  }

  // --- checking ----------------------------------------------------------------
  bool checkFunction(FunctionDecl &F);
  bool checkStmt(Stmt *S);
  /// Type checks \p E; returns false (with diagnostics) on error. On
  /// success E->type() is set.
  bool checkExpr(Expr *E);
  bool requireType(Expr *E, Type Expected, const char *Context);

  void markRecursion();

  Program &Prog;
  DiagEngine &Diags;
  std::vector<std::map<std::string, VarDecl *>> Scopes;
  FunctionDecl *CurFunction = nullptr;
};

bool Sema::run() {
  bool Ok = true;

  // Globals: unique names, literal initializers only.
  pushScope();
  for (const auto &G : Prog.globals()) {
    G->setGlobal(true);
    if (!declare(G.get()))
      Ok = false;
    if (Expr *Init = G->init()) {
      if (!isa<IntLiteral>(Init) && !isa<BoolLiteral>(Init)) {
        Diags.error(Init->loc(),
                    "global initializer must be a literal constant");
        Ok = false;
      } else if (!checkExpr(Init)) {
        Ok = false;
      } else if ((G->type().isInt() && !Init->type().isInt()) ||
                 (G->type().isBool() && !Init->type().isBool())) {
        Diags.error(Init->loc(), "initializer type mismatch for global '" +
                                     G->name() + "'");
        Ok = false;
      }
    }
  }

  // Function table: unique names.
  std::set<std::string> FunctionNames;
  for (const auto &F : Prog.functions()) {
    if (!FunctionNames.insert(F->name()).second) {
      Diags.error(F->loc(), "redefinition of function '" + F->name() + "'");
      Ok = false;
    }
  }

  for (const auto &F : Prog.functions())
    if (!checkFunction(*F))
      Ok = false;

  popScope();
  if (Ok)
    markRecursion();
  return Ok;
}

bool Sema::checkFunction(FunctionDecl &F) {
  CurFunction = &F;
  pushScope();
  bool Ok = true;
  for (const auto &P : F.params()) {
    P->setParam(true);
    if (!declare(P.get()))
      Ok = false;
  }
  if (!F.body()) {
    Diags.error(F.loc(), "function '" + F.name() + "' has no body");
    Ok = false;
  } else if (!checkStmt(F.body())) {
    Ok = false;
  }
  popScope();
  CurFunction = nullptr;
  return Ok;
}

bool Sema::checkStmt(Stmt *S) {
  switch (S->kind()) {
  case Stmt::BlockStmtKind: {
    auto *B = cast<BlockStmt>(S);
    pushScope();
    bool Ok = true;
    for (const auto &Sub : B->stmts())
      if (!checkStmt(Sub.get()))
        Ok = false;
    popScope();
    return Ok;
  }
  case Stmt::DeclStmtKind: {
    auto *D = cast<DeclStmt>(S);
    VarDecl *V = D->decl();
    bool Ok = true;
    if (Expr *Init = V->init()) {
      Ok = checkExpr(Init);
      if (Ok && !(Init->type() == V->type())) {
        Diags.error(Init->loc(), "cannot initialize '" + V->name() + "' of type " +
                                     V->type().str() + " with " +
                                     Init->type().str());
        Ok = false;
      }
    }
    // Declare after checking the initializer so `int x = x;` is an error.
    if (!declare(V))
      Ok = false;
    return Ok;
  }
  case Stmt::AssignStmtKind: {
    auto *A = cast<AssignStmt>(S);
    VarDecl *Target = lookup(A->target());
    if (!Target) {
      Diags.error(A->loc(), "use of undeclared variable '" + A->target() + "'");
      return false;
    }
    A->setTargetDecl(Target);
    bool Ok = checkExpr(A->value());
    if (A->index()) {
      if (!Target->type().isArray()) {
        Diags.error(A->loc(), "'" + A->target() + "' is not an array");
        return false;
      }
      if (!checkExpr(A->index()))
        return false;
      if (!A->index()->type().isInt()) {
        Diags.error(A->index()->loc(), "array index must be int");
        return false;
      }
      if (Ok && !A->value()->type().isInt()) {
        Diags.error(A->value()->loc(), "array elements are int");
        Ok = false;
      }
      return Ok;
    }
    if (Target->type().isArray()) {
      Diags.error(A->loc(), "cannot assign whole arrays");
      return false;
    }
    if (Ok && !(A->value()->type() == Target->type())) {
      Diags.error(A->value()->loc(),
                  "cannot assign " + A->value()->type().str() + " to '" +
                      A->target() + "' of type " + Target->type().str());
      Ok = false;
    }
    return Ok;
  }
  case Stmt::IfStmtKind: {
    auto *I = cast<IfStmt>(S);
    bool Ok = checkExpr(I->cond()) &&
              requireType(I->cond(), Type::boolTy(), "if condition");
    if (!checkStmt(I->thenStmt()))
      Ok = false;
    if (I->elseStmt() && !checkStmt(I->elseStmt()))
      Ok = false;
    return Ok;
  }
  case Stmt::WhileStmtKind: {
    auto *W = cast<WhileStmt>(S);
    bool Ok = checkExpr(W->cond()) &&
              requireType(W->cond(), Type::boolTy(), "while condition");
    if (!checkStmt(W->body()))
      Ok = false;
    return Ok;
  }
  case Stmt::ReturnStmtKind: {
    auto *R = cast<ReturnStmt>(S);
    assert(CurFunction && "return outside function");
    if (CurFunction->returnType().isVoid()) {
      if (R->value()) {
        Diags.error(R->loc(), "void function cannot return a value");
        return false;
      }
      return true;
    }
    if (!R->value()) {
      Diags.error(R->loc(), "non-void function must return a value");
      return false;
    }
    if (!checkExpr(R->value()))
      return false;
    if (!(R->value()->type() == CurFunction->returnType())) {
      Diags.error(R->value()->loc(),
                  "return type mismatch: expected " +
                      CurFunction->returnType().str() + ", got " +
                      R->value()->type().str());
      return false;
    }
    return true;
  }
  case Stmt::AssertStmtKind: {
    auto *A = cast<AssertStmt>(S);
    return checkExpr(A->cond()) &&
           requireType(A->cond(), Type::boolTy(), "assert condition");
  }
  case Stmt::AssumeStmtKind: {
    auto *A = cast<AssumeStmt>(S);
    return checkExpr(A->cond()) &&
           requireType(A->cond(), Type::boolTy(), "assume condition");
  }
  case Stmt::ExprStmtKind: {
    auto *E = cast<ExprStmt>(S);
    if (!isa<CallExpr>(E->expr())) {
      Diags.error(E->loc(), "only calls may be used as statements");
      return false;
    }
    return checkExpr(E->expr());
  }
  }
  return false;
}

bool Sema::requireType(Expr *E, Type Expected, const char *Context) {
  if (E->type() == Expected)
    return true;
  Diags.error(E->loc(), std::string(Context) + " must be " + Expected.str() +
                            ", got " + E->type().str());
  return false;
}

bool Sema::checkExpr(Expr *E) {
  switch (E->kind()) {
  case Expr::IntLiteralKind:
    E->setType(Type::intTy());
    return true;
  case Expr::BoolLiteralKind:
    E->setType(Type::boolTy());
    return true;
  case Expr::VarRefKind: {
    auto *V = cast<VarRef>(E);
    VarDecl *D = lookup(V->name());
    if (!D) {
      Diags.error(V->loc(), "use of undeclared variable '" + V->name() + "'");
      return false;
    }
    V->setDecl(D);
    V->setType(D->type());
    return true;
  }
  case Expr::ArrayIndexKind: {
    auto *A = cast<ArrayIndex>(E);
    if (!checkExpr(A->base()) || !checkExpr(A->index()))
      return false;
    if (!A->base()->type().isArray()) {
      Diags.error(A->loc(), "subscripted value is not an array");
      return false;
    }
    if (!A->index()->type().isInt()) {
      Diags.error(A->index()->loc(), "array index must be int");
      return false;
    }
    E->setType(Type::intTy());
    return true;
  }
  case Expr::UnaryKind: {
    auto *U = cast<UnaryExpr>(E);
    if (!checkExpr(U->operand()))
      return false;
    switch (U->op()) {
    case UnaryOp::Neg:
    case UnaryOp::BitNot:
      if (!U->operand()->type().isInt()) {
        Diags.error(U->loc(), "operand of arithmetic negation must be int");
        return false;
      }
      E->setType(Type::intTy());
      return true;
    case UnaryOp::LogNot:
      if (!U->operand()->type().isBool()) {
        Diags.error(U->loc(), "operand of '!' must be bool");
        return false;
      }
      E->setType(Type::boolTy());
      return true;
    }
    return false;
  }
  case Expr::BinaryKind: {
    auto *B = cast<BinaryExpr>(E);
    if (!checkExpr(B->lhs()) || !checkExpr(B->rhs()))
      return false;
    Type L = B->lhs()->type(), R = B->rhs()->type();
    if (isLogicalOp(B->op())) {
      if (!L.isBool() || !R.isBool()) {
        Diags.error(B->loc(), std::string("operands of '") +
                                  binaryOpSpelling(B->op()) +
                                  "' must be bool");
        return false;
      }
      E->setType(Type::boolTy());
      return true;
    }
    if (B->op() == BinaryOp::Eq || B->op() == BinaryOp::Ne) {
      if (!(L == R) || !L.isScalar()) {
        Diags.error(B->loc(), "equality operands must have the same scalar type");
        return false;
      }
      E->setType(Type::boolTy());
      return true;
    }
    if (isComparisonOp(B->op())) {
      if (!L.isInt() || !R.isInt()) {
        Diags.error(B->loc(), std::string("operands of '") +
                                  binaryOpSpelling(B->op()) +
                                  "' must be int");
        return false;
      }
      E->setType(Type::boolTy());
      return true;
    }
    // Arithmetic / bitwise / shifts.
    if (!L.isInt() || !R.isInt()) {
      Diags.error(B->loc(), std::string("operands of '") +
                                binaryOpSpelling(B->op()) + "' must be int");
      return false;
    }
    E->setType(Type::intTy());
    return true;
  }
  case Expr::ConditionalKind: {
    auto *C = cast<ConditionalExpr>(E);
    if (!checkExpr(C->cond()) || !checkExpr(C->thenExpr()) ||
        !checkExpr(C->elseExpr()))
      return false;
    if (!requireType(C->cond(), Type::boolTy(), "conditional guard"))
      return false;
    if (!(C->thenExpr()->type() == C->elseExpr()->type()) ||
        !C->thenExpr()->type().isScalar()) {
      Diags.error(C->loc(), "conditional arms must have the same scalar type");
      return false;
    }
    E->setType(C->thenExpr()->type());
    return true;
  }
  case Expr::CallKind: {
    auto *C = cast<CallExpr>(E);
    FunctionDecl *F = Prog.findFunction(C->callee());
    if (!F) {
      Diags.error(C->loc(), "call to undeclared function '" + C->callee() + "'");
      return false;
    }
    C->setDecl(F);
    if (C->args().size() != F->params().size()) {
      Diags.error(C->loc(), "wrong number of arguments to '" + C->callee() +
                                "': expected " +
                                std::to_string(F->params().size()) + ", got " +
                                std::to_string(C->args().size()));
      return false;
    }
    bool Ok = true;
    for (size_t I = 0; I < C->args().size(); ++I) {
      Expr *Arg = C->args()[I].get();
      if (!checkExpr(Arg)) {
        Ok = false;
        continue;
      }
      const Type &PT = F->params()[I]->type();
      if (PT.isArray()) {
        // Arrays are passed by reference; the argument must be a plain
        // array variable of the same size.
        auto *VR = dyn_cast<VarRef>(Arg);
        if (!VR || !VR->type().isArray() ||
            VR->type().ArraySize != PT.ArraySize) {
          Diags.error(Arg->loc(),
                      "array argument must be an array variable of type " +
                          PT.str());
          Ok = false;
        }
        continue;
      }
      if (!(Arg->type() == PT)) {
        Diags.error(Arg->loc(), "argument " + std::to_string(I + 1) +
                                    " to '" + C->callee() + "' must be " +
                                    PT.str() + ", got " + Arg->type().str());
        Ok = false;
      }
    }
    E->setType(F->returnType());
    return Ok;
  }
  }
  return false;
}

void Sema::markRecursion() {
  // Build the call graph and mark every function on a cycle (or reaching
  // itself) as recursive.
  std::map<const FunctionDecl *, std::set<FunctionDecl *>> Callees;
  for (const auto &F : Prog.functions()) {
    std::set<FunctionDecl *> Out;
    // Walk the body collecting CallExprs.
    std::vector<const Stmt *> Work{F->body()};
    auto VisitExpr = [&Out](const Expr *E, auto &&Self) -> void {
      if (!E)
        return;
      if (const auto *C = dyn_cast<CallExpr>(E)) {
        if (C->decl())
          Out.insert(C->decl());
        for (const auto &A : C->args())
          Self(A.get(), Self);
        return;
      }
      if (const auto *U = dyn_cast<UnaryExpr>(E))
        return Self(U->operand(), Self);
      if (const auto *B = dyn_cast<BinaryExpr>(E)) {
        Self(B->lhs(), Self);
        Self(B->rhs(), Self);
        return;
      }
      if (const auto *C = dyn_cast<ConditionalExpr>(E)) {
        Self(C->cond(), Self);
        Self(C->thenExpr(), Self);
        Self(C->elseExpr(), Self);
        return;
      }
      if (const auto *A = dyn_cast<ArrayIndex>(E)) {
        Self(A->base(), Self);
        Self(A->index(), Self);
        return;
      }
    };
    while (!Work.empty()) {
      const Stmt *S = Work.back();
      Work.pop_back();
      if (!S)
        continue;
      switch (S->kind()) {
      case Stmt::BlockStmtKind:
        for (const auto &Sub : cast<BlockStmt>(S)->stmts())
          Work.push_back(Sub.get());
        break;
      case Stmt::DeclStmtKind:
        VisitExpr(cast<DeclStmt>(S)->decl()->init(), VisitExpr);
        break;
      case Stmt::AssignStmtKind:
        VisitExpr(cast<AssignStmt>(S)->index(), VisitExpr);
        VisitExpr(cast<AssignStmt>(S)->value(), VisitExpr);
        break;
      case Stmt::IfStmtKind:
        VisitExpr(cast<IfStmt>(S)->cond(), VisitExpr);
        Work.push_back(cast<IfStmt>(S)->thenStmt());
        Work.push_back(cast<IfStmt>(S)->elseStmt());
        break;
      case Stmt::WhileStmtKind:
        VisitExpr(cast<WhileStmt>(S)->cond(), VisitExpr);
        Work.push_back(cast<WhileStmt>(S)->body());
        break;
      case Stmt::ReturnStmtKind:
        VisitExpr(cast<ReturnStmt>(S)->value(), VisitExpr);
        break;
      case Stmt::AssertStmtKind:
        VisitExpr(cast<AssertStmt>(S)->cond(), VisitExpr);
        break;
      case Stmt::AssumeStmtKind:
        VisitExpr(cast<AssumeStmt>(S)->cond(), VisitExpr);
        break;
      case Stmt::ExprStmtKind:
        VisitExpr(cast<ExprStmt>(S)->expr(), VisitExpr);
        break;
      }
    }
    Callees[F.get()] = std::move(Out);
  }

  // DFS reachability: F is recursive if F reaches F.
  for (const auto &F : Prog.functions()) {
    std::set<const FunctionDecl *> Visited;
    std::vector<const FunctionDecl *> Stack;
    for (FunctionDecl *C : Callees[F.get()])
      Stack.push_back(C);
    bool Recursive = false;
    while (!Stack.empty()) {
      const FunctionDecl *Cur = Stack.back();
      Stack.pop_back();
      if (Cur == F.get()) {
        Recursive = true;
        break;
      }
      if (!Visited.insert(Cur).second)
        continue;
      for (FunctionDecl *C : Callees[Cur])
        Stack.push_back(C);
    }
    F->setRecursive(Recursive);
  }
}

} // namespace

bool bugassist::analyzeProgram(Program &Prog, DiagEngine &Diags) {
  Sema S(Prog, Diags);
  return S.run();
}

std::unique_ptr<Program> bugassist::parseAndAnalyze(std::string_view Source,
                                                    DiagEngine &Diags) {
  auto Prog = parseProgram(Source, Diags);
  if (!Prog)
    return nullptr;
  if (!analyzeProgram(*Prog, Diags))
    return nullptr;
  return Prog;
}
