//===- AstWalk.cpp - Ordinal-stable AST traversals ----------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/AstWalk.h"

using namespace bugassist;

namespace {

void visitExpr(Expr *E, size_t &Ordinal,
               const std::function<void(Expr *, size_t)> &Fn) {
  if (!E)
    return;
  Fn(E, Ordinal++);
  switch (E->kind()) {
  case Expr::ArrayIndexKind:
    visitExpr(cast<ArrayIndex>(E)->base(), Ordinal, Fn);
    visitExpr(cast<ArrayIndex>(E)->index(), Ordinal, Fn);
    break;
  case Expr::UnaryKind:
    visitExpr(cast<UnaryExpr>(E)->operand(), Ordinal, Fn);
    break;
  case Expr::BinaryKind:
    visitExpr(cast<BinaryExpr>(E)->lhs(), Ordinal, Fn);
    visitExpr(cast<BinaryExpr>(E)->rhs(), Ordinal, Fn);
    break;
  case Expr::ConditionalKind:
    visitExpr(cast<ConditionalExpr>(E)->cond(), Ordinal, Fn);
    visitExpr(cast<ConditionalExpr>(E)->thenExpr(), Ordinal, Fn);
    visitExpr(cast<ConditionalExpr>(E)->elseExpr(), Ordinal, Fn);
    break;
  case Expr::CallKind:
    for (const auto &A : cast<CallExpr>(E)->args())
      visitExpr(A.get(), Ordinal, Fn);
    break;
  default:
    break;
  }
}

void visitStmtExprs(Stmt *S, size_t &Ordinal,
                    const std::function<void(Expr *, size_t)> &Fn) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::BlockStmtKind:
    for (const auto &Sub : cast<BlockStmt>(S)->stmts())
      visitStmtExprs(Sub.get(), Ordinal, Fn);
    break;
  case Stmt::DeclStmtKind:
    visitExpr(cast<DeclStmt>(S)->decl()->init(), Ordinal, Fn);
    break;
  case Stmt::AssignStmtKind:
    visitExpr(cast<AssignStmt>(S)->index(), Ordinal, Fn);
    visitExpr(cast<AssignStmt>(S)->value(), Ordinal, Fn);
    break;
  case Stmt::IfStmtKind:
    visitExpr(cast<IfStmt>(S)->cond(), Ordinal, Fn);
    visitStmtExprs(cast<IfStmt>(S)->thenStmt(), Ordinal, Fn);
    visitStmtExprs(cast<IfStmt>(S)->elseStmt(), Ordinal, Fn);
    break;
  case Stmt::WhileStmtKind:
    visitExpr(cast<WhileStmt>(S)->cond(), Ordinal, Fn);
    visitStmtExprs(cast<WhileStmt>(S)->body(), Ordinal, Fn);
    break;
  case Stmt::ReturnStmtKind:
    visitExpr(cast<ReturnStmt>(S)->value(), Ordinal, Fn);
    break;
  case Stmt::AssertStmtKind:
    visitExpr(cast<AssertStmt>(S)->cond(), Ordinal, Fn);
    break;
  case Stmt::AssumeStmtKind:
    visitExpr(cast<AssumeStmt>(S)->cond(), Ordinal, Fn);
    break;
  case Stmt::ExprStmtKind:
    visitExpr(cast<ExprStmt>(S)->expr(), Ordinal, Fn);
    break;
  }
}

void visitStmt(Stmt *S, size_t &Ordinal,
               const std::function<void(Stmt *, size_t)> &Fn) {
  if (!S)
    return;
  Fn(S, Ordinal++);
  switch (S->kind()) {
  case Stmt::BlockStmtKind:
    for (const auto &Sub : cast<BlockStmt>(S)->stmts())
      visitStmt(Sub.get(), Ordinal, Fn);
    break;
  case Stmt::IfStmtKind:
    visitStmt(cast<IfStmt>(S)->thenStmt(), Ordinal, Fn);
    visitStmt(cast<IfStmt>(S)->elseStmt(), Ordinal, Fn);
    break;
  case Stmt::WhileStmtKind:
    visitStmt(cast<WhileStmt>(S)->body(), Ordinal, Fn);
    break;
  default:
    break;
  }
}

} // namespace

void bugassist::forEachExpr(Program &P,
                            const std::function<void(Expr *, size_t)> &Fn) {
  size_t Ordinal = 0;
  for (const auto &G : P.globals())
    visitExpr(G->init(), Ordinal, Fn);
  for (const auto &F : P.functions())
    visitStmtExprs(F->body(), Ordinal, Fn);
}

void bugassist::forEachStmt(Program &P,
                            const std::function<void(Stmt *, size_t)> &Fn) {
  size_t Ordinal = 0;
  for (const auto &F : P.functions())
    visitStmt(F->body(), Ordinal, Fn);
}
