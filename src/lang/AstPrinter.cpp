//===- AstPrinter.cpp - Render mini-C ASTs back to source ---------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

using namespace bugassist;

std::string bugassist::printExpr(const Expr *E) {
  if (!E)
    return "<null>";
  switch (E->kind()) {
  case Expr::IntLiteralKind:
    return std::to_string(cast<IntLiteral>(E)->value());
  case Expr::BoolLiteralKind:
    return cast<BoolLiteral>(E)->value() ? "true" : "false";
  case Expr::VarRefKind:
    return cast<VarRef>(E)->name();
  case Expr::ArrayIndexKind: {
    const auto *A = cast<ArrayIndex>(E);
    return printExpr(A->base()) + "[" + printExpr(A->index()) + "]";
  }
  case Expr::UnaryKind: {
    const auto *U = cast<UnaryExpr>(E);
    return std::string(unaryOpSpelling(U->op())) + "(" +
           printExpr(U->operand()) + ")";
  }
  case Expr::BinaryKind: {
    const auto *B = cast<BinaryExpr>(E);
    return "(" + printExpr(B->lhs()) + " " + binaryOpSpelling(B->op()) + " " +
           printExpr(B->rhs()) + ")";
  }
  case Expr::ConditionalKind: {
    const auto *C = cast<ConditionalExpr>(E);
    return "(" + printExpr(C->cond()) + " ? " + printExpr(C->thenExpr()) +
           " : " + printExpr(C->elseExpr()) + ")";
  }
  case Expr::CallKind: {
    const auto *C = cast<CallExpr>(E);
    std::string Out = C->callee() + "(";
    for (size_t I = 0; I < C->args().size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(C->args()[I].get());
    }
    return Out + ")";
  }
  }
  return "<?>";
}

static std::string pad(int Indent) { return std::string(Indent * 2, ' '); }

static std::string printVarDecl(const VarDecl *D) {
  std::string Out;
  if (D->type().isArray())
    Out = "int " + D->name() + "[" + std::to_string(D->type().ArraySize) + "]";
  else
    Out = D->type().str() + " " + D->name();
  if (D->init())
    Out += " = " + printExpr(D->init());
  return Out;
}

std::string bugassist::printStmt(const Stmt *S, int Indent) {
  if (!S)
    return pad(Indent) + ";\n";
  switch (S->kind()) {
  case Stmt::DeclStmtKind:
    return pad(Indent) + printVarDecl(cast<DeclStmt>(S)->decl()) + ";\n";
  case Stmt::AssignStmtKind: {
    const auto *A = cast<AssignStmt>(S);
    std::string Out = pad(Indent) + A->target();
    if (A->index())
      Out += "[" + printExpr(A->index()) + "]";
    return Out + " = " + printExpr(A->value()) + ";\n";
  }
  case Stmt::IfStmtKind: {
    const auto *I = cast<IfStmt>(S);
    std::string Out =
        pad(Indent) + "if (" + printExpr(I->cond()) + ")\n" +
        printStmt(I->thenStmt(), Indent + (isa<BlockStmt>(I->thenStmt()) ? 0 : 1));
    if (I->elseStmt())
      Out += pad(Indent) + "else\n" +
             printStmt(I->elseStmt(),
                       Indent + (isa<BlockStmt>(I->elseStmt()) ? 0 : 1));
    return Out;
  }
  case Stmt::WhileStmtKind: {
    const auto *W = cast<WhileStmt>(S);
    return pad(Indent) + "while (" + printExpr(W->cond()) + ")\n" +
           printStmt(W->body(), Indent + (isa<BlockStmt>(W->body()) ? 0 : 1));
  }
  case Stmt::ReturnStmtKind: {
    const auto *R = cast<ReturnStmt>(S);
    if (R->value())
      return pad(Indent) + "return " + printExpr(R->value()) + ";\n";
    return pad(Indent) + "return;\n";
  }
  case Stmt::AssertStmtKind:
    return pad(Indent) + "assert(" + printExpr(cast<AssertStmt>(S)->cond()) +
           ");\n";
  case Stmt::AssumeStmtKind:
    return pad(Indent) + "assume(" + printExpr(cast<AssumeStmt>(S)->cond()) +
           ");\n";
  case Stmt::BlockStmtKind: {
    const auto *B = cast<BlockStmt>(S);
    std::string Out = pad(Indent) + "{\n";
    for (const auto &Sub : B->stmts())
      Out += printStmt(Sub.get(), Indent + 1);
    return Out + pad(Indent) + "}\n";
  }
  case Stmt::ExprStmtKind:
    return pad(Indent) + printExpr(cast<ExprStmt>(S)->expr()) + ";\n";
  }
  return pad(Indent) + "<?>;\n";
}

std::string bugassist::printProgram(const Program &P) {
  std::string Out;
  for (const auto &G : P.globals())
    Out += printVarDecl(G.get()) + ";\n";
  if (!P.globals().empty())
    Out += "\n";
  for (const auto &F : P.functions()) {
    Out += F->returnType().str() + " " + F->name() + "(";
    for (size_t I = 0; I < F->params().size(); ++I) {
      if (I)
        Out += ", ";
      const VarDecl *Param = F->params()[I].get();
      if (Param->type().isArray())
        Out += "int " + Param->name() + "[" +
               std::to_string(Param->type().ArraySize) + "]";
      else
        Out += Param->type().str() + " " + Param->name();
    }
    Out += ")\n";
    Out += printStmt(F->body(), 0);
    Out += "\n";
  }
  return Out;
}
