//===- AstWalk.h - Ordinal-stable AST traversals ----------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Preorder walks over a whole program with a running ordinal that is
/// stable across cloneProgram copies -- the addressing scheme shared by
/// the repair engine (core/Repair.cpp) and the mutation engine
/// (mutate/MutantGenerator.cpp): a mutation planned against the base
/// program's ordinal N applies to the clone's ordinal N.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_LANG_ASTWALK_H
#define BUGASSIST_LANG_ASTWALK_H

#include "lang/Ast.h"

#include <functional>

namespace bugassist {

/// Visits every expression in \p P in preorder (globals' initializers
/// first, then each function body in order), calling \p Fn with the node
/// and its running ordinal.
void forEachExpr(Program &P, const std::function<void(Expr *, size_t)> &Fn);

/// Visits every statement in \p P in preorder (blocks included, before
/// their children), calling \p Fn with the node and its running ordinal.
void forEachStmt(Program &P, const std::function<void(Stmt *, size_t)> &Fn);

} // namespace bugassist

#endif // BUGASSIST_LANG_ASTWALK_H
