//===- Ast.h - Mini-C abstract syntax ---------------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AST for mini-C, the paper's imperative input language (Section 3.1)
/// with the C subset BugAssist's benchmarks need: fixed-width ints, bools,
/// fixed-size arrays, functions (including bounded recursion), while loops,
/// assert/assume, and the full C operator set. Pointers are excluded;
/// arrays are passed to functions by reference (C semantics) instead.
///
/// Nodes carry SourceLocs: the line number is the clause-group key the
/// localization maps suspects back to.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_LANG_AST_H
#define BUGASSIST_LANG_AST_H

#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bugassist {

/// Value types. Arrays are one-dimensional with a compile-time size.
struct Type {
  enum KindTy { Int, Bool, Array, Void } Kind = Void;
  /// Element count for arrays.
  int ArraySize = 0;

  static Type intTy() { return {Int, 0}; }
  static Type boolTy() { return {Bool, 0}; }
  static Type arrayTy(int N) { return {Array, N}; }
  static Type voidTy() { return {Void, 0}; }

  bool isInt() const { return Kind == Int; }
  bool isBool() const { return Kind == Bool; }
  bool isArray() const { return Kind == Array; }
  bool isVoid() const { return Kind == Void; }
  bool isScalar() const { return isInt() || isBool(); }

  friend bool operator==(const Type &A, const Type &B) {
    return A.Kind == B.Kind && (A.Kind != Array || A.ArraySize == B.ArraySize);
  }
  friend bool operator!=(const Type &A, const Type &B) { return !(A == B); }

  std::string str() const;
};

enum class UnaryOp { Neg, LogNot, BitNot };

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  BitAnd,
  BitOr,
  BitXor,
  LogAnd,
  LogOr
};

/// \returns the source spelling of \p Op (e.g. "<=").
const char *binaryOpSpelling(BinaryOp Op);
const char *unaryOpSpelling(UnaryOp Op);
bool isComparisonOp(BinaryOp Op);
bool isLogicalOp(BinaryOp Op);

/// \returns the "near-miss" substitutions for \p Op: the operators a
/// programmer plausibly confuses with it (< vs <=, + vs -, && vs ||).
/// Shared by the repair candidate planner and the mutation engine; the
/// enumeration order is part of the repair engine's determinism contract.
std::vector<BinaryOp> nearMissOps(BinaryOp Op);

class VarDecl;
class FunctionDecl;

// --- expressions -------------------------------------------------------------

class Expr {
public:
  enum KindTy {
    IntLiteralKind,
    BoolLiteralKind,
    VarRefKind,
    ArrayIndexKind,
    UnaryKind,
    BinaryKind,
    ConditionalKind,
    CallKind
  };

  virtual ~Expr() = default;

  KindTy kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  const Type &type() const { return Ty; }
  void setType(Type T) { Ty = T; }

protected:
  Expr(KindTy Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  KindTy Kind;
  SourceLoc Loc;
  Type Ty;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLiteral : public Expr {
public:
  IntLiteral(int64_t Value, SourceLoc Loc)
      : Expr(IntLiteralKind, Loc), Value(Value) {}
  int64_t value() const { return Value; }
  void setValue(int64_t V) { Value = V; } // used by the repair mutator
  static bool classof(const Expr *E) { return E->kind() == IntLiteralKind; }

private:
  int64_t Value;
};

class BoolLiteral : public Expr {
public:
  BoolLiteral(bool Value, SourceLoc Loc)
      : Expr(BoolLiteralKind, Loc), Value(Value) {}
  bool value() const { return Value; }
  static bool classof(const Expr *E) { return E->kind() == BoolLiteralKind; }

private:
  bool Value;
};

class VarRef : public Expr {
public:
  VarRef(std::string Name, SourceLoc Loc)
      : Expr(VarRefKind, Loc), Name(std::move(Name)) {}
  const std::string &name() const { return Name; }
  /// Retargets the reference; the stale Decl is cleared and Sema must be
  /// re-run to resolve the new name (used by the mutation engine).
  void setName(std::string N) {
    Name = std::move(N);
    Decl = nullptr;
  }
  VarDecl *decl() const { return Decl; }
  void setDecl(VarDecl *D) { Decl = D; }
  static bool classof(const Expr *E) { return E->kind() == VarRefKind; }

private:
  std::string Name;
  VarDecl *Decl = nullptr;
};

class ArrayIndex : public Expr {
public:
  ArrayIndex(ExprPtr Base, ExprPtr Index, SourceLoc Loc)
      : Expr(ArrayIndexKind, Loc), Base(std::move(Base)),
        Index(std::move(Index)) {}
  Expr *base() const { return Base.get(); }
  Expr *index() const { return Index.get(); }
  void setIndex(ExprPtr E) { Index = std::move(E); } // used by the mutation engine
  static bool classof(const Expr *E) { return E->kind() == ArrayIndexKind; }

private:
  ExprPtr Base;
  ExprPtr Index;
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLoc Loc)
      : Expr(UnaryKind, Loc), Op(Op), Operand(std::move(Operand)) {}
  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand.get(); }
  static bool classof(const Expr *E) { return E->kind() == UnaryKind; }

private:
  UnaryOp Op;
  ExprPtr Operand;
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, SourceLoc Loc)
      : Expr(BinaryKind, Loc), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  BinaryOp op() const { return Op; }
  void setOp(BinaryOp O) { Op = O; } // used by the repair mutator
  Expr *lhs() const { return Lhs.get(); }
  Expr *rhs() const { return Rhs.get(); }
  static bool classof(const Expr *E) { return E->kind() == BinaryKind; }

private:
  BinaryOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;
};

class ConditionalExpr : public Expr {
public:
  ConditionalExpr(ExprPtr Cond, ExprPtr Then, ExprPtr Else, SourceLoc Loc)
      : Expr(ConditionalKind, Loc), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}
  Expr *cond() const { return Cond.get(); }
  Expr *thenExpr() const { return Then.get(); }
  Expr *elseExpr() const { return Else.get(); }
  static bool classof(const Expr *E) { return E->kind() == ConditionalKind; }

private:
  ExprPtr Cond;
  ExprPtr Then;
  ExprPtr Else;
};

class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(CallKind, Loc), Callee(std::move(Callee)), Args(std::move(Args)) {
  }
  const std::string &callee() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }
  FunctionDecl *decl() const { return Decl; }
  void setDecl(FunctionDecl *D) { Decl = D; }
  static bool classof(const Expr *E) { return E->kind() == CallKind; }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
  FunctionDecl *Decl = nullptr;
};

/// LLVM-style checked/unchecked downcasts over the Kind tag.
template <typename T> bool isa(const Expr *E) { return T::classof(E); }
template <typename T> T *cast(Expr *E) {
  assert(isa<T>(E) && "bad Expr cast");
  return static_cast<T *>(E);
}
template <typename T> const T *cast(const Expr *E) {
  assert(isa<T>(E) && "bad Expr cast");
  return static_cast<const T *>(E);
}
template <typename T> T *dyn_cast(Expr *E) {
  return isa<T>(E) ? static_cast<T *>(E) : nullptr;
}
template <typename T> const T *dyn_cast(const Expr *E) {
  return isa<T>(E) ? static_cast<const T *>(E) : nullptr;
}

// --- declarations ------------------------------------------------------------

/// A variable: global, local, or function parameter.
class VarDecl {
public:
  VarDecl(std::string Name, Type Ty, SourceLoc Loc)
      : Name(std::move(Name)), Ty(Ty), Loc(Loc) {}

  const std::string &name() const { return Name; }
  const Type &type() const { return Ty; }
  SourceLoc loc() const { return Loc; }

  Expr *init() const { return Init.get(); }
  void setInit(ExprPtr E) { Init = std::move(E); }

  bool isGlobal() const { return Global; }
  void setGlobal(bool B) { Global = B; }
  bool isParam() const { return Param; }
  void setParam(bool B) { Param = B; }

private:
  std::string Name;
  Type Ty;
  SourceLoc Loc;
  ExprPtr Init;
  bool Global = false;
  bool Param = false;
};

// --- statements --------------------------------------------------------------

class Stmt {
public:
  enum KindTy {
    DeclStmtKind,
    AssignStmtKind,
    IfStmtKind,
    WhileStmtKind,
    ReturnStmtKind,
    AssertStmtKind,
    AssumeStmtKind,
    BlockStmtKind,
    ExprStmtKind
  };

  virtual ~Stmt() = default;
  KindTy kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(KindTy Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  KindTy Kind;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

class DeclStmt : public Stmt {
public:
  DeclStmt(std::unique_ptr<VarDecl> Decl, SourceLoc Loc)
      : Stmt(DeclStmtKind, Loc), Decl(std::move(Decl)) {}
  VarDecl *decl() const { return Decl.get(); }
  static bool classof(const Stmt *S) { return S->kind() == DeclStmtKind; }

private:
  std::unique_ptr<VarDecl> Decl;
};

/// `x = e;` or `a[i] = e;`. The target variable is stored by name plus the
/// Sema-resolved VarDecl; Index is null for scalar targets.
class AssignStmt : public Stmt {
public:
  AssignStmt(std::string Target, ExprPtr Index, ExprPtr Value, SourceLoc Loc)
      : Stmt(AssignStmtKind, Loc), Target(std::move(Target)),
        Index(std::move(Index)), Value(std::move(Value)) {}
  const std::string &target() const { return Target; }
  VarDecl *targetDecl() const { return Decl; }
  void setTargetDecl(VarDecl *D) { Decl = D; }
  Expr *index() const { return Index.get(); }
  void setIndex(ExprPtr E) { Index = std::move(E); } // used by the mutation engine
  Expr *value() const { return Value.get(); }
  static bool classof(const Stmt *S) { return S->kind() == AssignStmtKind; }

private:
  std::string Target;
  VarDecl *Decl = nullptr;
  ExprPtr Index;
  ExprPtr Value;
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc Loc)
      : Stmt(IfStmtKind, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  Expr *cond() const { return Cond.get(); }
  void setCond(ExprPtr E) { Cond = std::move(E); } // used by the mutation engine
  Stmt *thenStmt() const { return Then.get(); }
  Stmt *elseStmt() const { return Else.get(); }
  static bool classof(const Stmt *S) { return S->kind() == IfStmtKind; }

private:
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc Loc)
      : Stmt(WhileStmtKind, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {
  }
  Expr *cond() const { return Cond.get(); }
  void setCond(ExprPtr E) { Cond = std::move(E); } // used by the mutation engine
  Stmt *body() const { return Body.get(); }
  static bool classof(const Stmt *S) { return S->kind() == WhileStmtKind; }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(ReturnStmtKind, Loc), Value(std::move(Value)) {}
  Expr *value() const { return Value.get(); } // null for `return;`
  static bool classof(const Stmt *S) { return S->kind() == ReturnStmtKind; }

private:
  ExprPtr Value;
};

class AssertStmt : public Stmt {
public:
  AssertStmt(ExprPtr Cond, SourceLoc Loc)
      : Stmt(AssertStmtKind, Loc), Cond(std::move(Cond)) {}
  Expr *cond() const { return Cond.get(); }
  static bool classof(const Stmt *S) { return S->kind() == AssertStmtKind; }

private:
  ExprPtr Cond;
};

class AssumeStmt : public Stmt {
public:
  AssumeStmt(ExprPtr Cond, SourceLoc Loc)
      : Stmt(AssumeStmtKind, Loc), Cond(std::move(Cond)) {}
  Expr *cond() const { return Cond.get(); }
  static bool classof(const Stmt *S) { return S->kind() == AssumeStmtKind; }

private:
  ExprPtr Cond;
};

class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Stmts, SourceLoc Loc)
      : Stmt(BlockStmtKind, Loc), Stmts(std::move(Stmts)) {}
  const std::vector<StmtPtr> &stmts() const { return Stmts; }
  /// Mutable access for the mutation engine's dropped/duplicated-statement
  /// fault classes.
  std::vector<StmtPtr> &stmts() { return Stmts; }
  static bool classof(const Stmt *S) { return S->kind() == BlockStmtKind; }

private:
  std::vector<StmtPtr> Stmts;
};

/// A call used as a statement (void procedures).
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLoc Loc) : Stmt(ExprStmtKind, Loc), E(std::move(E)) {}
  Expr *expr() const { return E.get(); }
  static bool classof(const Stmt *S) { return S->kind() == ExprStmtKind; }

private:
  ExprPtr E;
};

template <typename T> bool isa(const Stmt *S) { return T::classof(S); }
template <typename T> T *cast(Stmt *S) {
  assert(isa<T>(S) && "bad Stmt cast");
  return static_cast<T *>(S);
}
template <typename T> const T *cast(const Stmt *S) {
  assert(isa<T>(S) && "bad Stmt cast");
  return static_cast<const T *>(S);
}
template <typename T> T *dyn_cast(Stmt *S) {
  return isa<T>(S) ? static_cast<T *>(S) : nullptr;
}
template <typename T> const T *dyn_cast(const Stmt *S) {
  return isa<T>(S) ? static_cast<const T *>(S) : nullptr;
}

// --- functions and programs --------------------------------------------------

class FunctionDecl {
public:
  FunctionDecl(std::string Name, Type ReturnTy, SourceLoc Loc)
      : Name(std::move(Name)), ReturnTy(ReturnTy), Loc(Loc) {}

  const std::string &name() const { return Name; }
  const Type &returnType() const { return ReturnTy; }
  SourceLoc loc() const { return Loc; }

  std::vector<std::unique_ptr<VarDecl>> &params() { return Params; }
  const std::vector<std::unique_ptr<VarDecl>> &params() const { return Params; }

  BlockStmt *body() const { return Body.get(); }
  void setBody(std::unique_ptr<BlockStmt> B) { Body = std::move(B); }

  bool isRecursive() const { return Recursive; }
  void setRecursive(bool B) { Recursive = B; }

private:
  std::string Name;
  Type ReturnTy;
  SourceLoc Loc;
  std::vector<std::unique_ptr<VarDecl>> Params;
  std::unique_ptr<BlockStmt> Body;
  bool Recursive = false;
};

/// A whole mini-C translation unit.
class Program {
public:
  std::vector<std::unique_ptr<VarDecl>> &globals() { return Globals; }
  const std::vector<std::unique_ptr<VarDecl>> &globals() const {
    return Globals;
  }
  std::vector<std::unique_ptr<FunctionDecl>> &functions() { return Functions; }
  const std::vector<std::unique_ptr<FunctionDecl>> &functions() const {
    return Functions;
  }

  FunctionDecl *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }

  VarDecl *findGlobal(const std::string &Name) const {
    for (const auto &G : Globals)
      if (G->name() == Name)
        return G.get();
    return nullptr;
  }

private:
  std::vector<std::unique_ptr<VarDecl>> Globals;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;
};

/// Deep structural copy helpers; the repair engine mutates copies of the
/// AST rather than the original.
ExprPtr cloneExpr(const Expr *E);
StmtPtr cloneStmt(const Stmt *S);
std::unique_ptr<Program> cloneProgram(const Program &P);

} // namespace bugassist

#endif // BUGASSIST_LANG_AST_H
