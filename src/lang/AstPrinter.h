//===- AstPrinter.h - Render mini-C ASTs back to source ---------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-prints ASTs as mini-C source. Used by the repair engine to show
/// suggested fixes and by tests to check parse trees structurally.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_LANG_ASTPRINTER_H
#define BUGASSIST_LANG_ASTPRINTER_H

#include "lang/Ast.h"

#include <string>

namespace bugassist {

/// Renders \p E as an expression string (fully parenthesized).
std::string printExpr(const Expr *E);

/// Renders \p S with \p Indent leading spaces per level.
std::string printStmt(const Stmt *S, int Indent = 0);

/// Renders a whole program.
std::string printProgram(const Program &P);

} // namespace bugassist

#endif // BUGASSIST_LANG_ASTPRINTER_H
