//===- Lexer.cpp - Mini-C tokenizer ------------------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace bugassist;

const char *bugassist::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwAssert:
    return "'assert'";
  case TokenKind::KwAssume:
    return "'assume'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Shl:
    return "'<<'";
  case TokenKind::Shr:
    return "'>>'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  }
  return "?";
}

Lexer::Lexer(std::string_view Source, DiagEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::peek(int Ahead) const {
  size_t P = Pos + static_cast<size_t>(Ahead);
  return P < Source.size() ? Source[P] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::next() {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"int", TokenKind::KwInt},       {"bool", TokenKind::KwBool},
      {"void", TokenKind::KwVoid},     {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},   {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},     {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},       {"return", TokenKind::KwReturn},
      {"assert", TokenKind::KwAssert}, {"assume", TokenKind::KwAssume},
  };

  skipWhitespaceAndComments();
  Token T;
  T.Loc = here();
  if (Pos >= Source.size()) {
    T.Kind = TokenKind::Eof;
    return T;
  }

  char C = advance();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text.push_back(advance());
    auto It = Keywords.find(Text);
    T.Kind = It != Keywords.end() ? It->second : TokenKind::Identifier;
    T.Text = std::move(Text);
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = C - '0';
    std::string Text(1, C);
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      char D = advance();
      Text.push_back(D);
      Value = Value * 10 + (D - '0');
      if (Value > INT64_MAX / 2) {
        Diags.error(T.Loc, "integer literal too large");
        break;
      }
    }
    T.Kind = TokenKind::IntLiteral;
    T.IntValue = Value;
    T.Text = std::move(Text);
    return T;
  }

  switch (C) {
  case '(':
    T.Kind = TokenKind::LParen;
    return T;
  case ')':
    T.Kind = TokenKind::RParen;
    return T;
  case '{':
    T.Kind = TokenKind::LBrace;
    return T;
  case '}':
    T.Kind = TokenKind::RBrace;
    return T;
  case '[':
    T.Kind = TokenKind::LBracket;
    return T;
  case ']':
    T.Kind = TokenKind::RBracket;
    return T;
  case ';':
    T.Kind = TokenKind::Semi;
    return T;
  case ',':
    T.Kind = TokenKind::Comma;
    return T;
  case '?':
    T.Kind = TokenKind::Question;
    return T;
  case ':':
    T.Kind = TokenKind::Colon;
    return T;
  case '+':
    T.Kind = TokenKind::Plus;
    return T;
  case '-':
    T.Kind = TokenKind::Minus;
    return T;
  case '*':
    T.Kind = TokenKind::Star;
    return T;
  case '/':
    T.Kind = TokenKind::Slash;
    return T;
  case '%':
    T.Kind = TokenKind::Percent;
    return T;
  case '~':
    T.Kind = TokenKind::Tilde;
    return T;
  case '^':
    T.Kind = TokenKind::Caret;
    return T;
  case '=':
    T.Kind = match('=') ? TokenKind::EqEq : TokenKind::Assign;
    return T;
  case '!':
    T.Kind = match('=') ? TokenKind::NotEq : TokenKind::Bang;
    return T;
  case '<':
    T.Kind = match('<')   ? TokenKind::Shl
             : match('=') ? TokenKind::Le
                          : TokenKind::Lt;
    return T;
  case '>':
    T.Kind = match('>')   ? TokenKind::Shr
             : match('=') ? TokenKind::Ge
                          : TokenKind::Gt;
    return T;
  case '&':
    T.Kind = match('&') ? TokenKind::AmpAmp : TokenKind::Amp;
    return T;
  case '|':
    T.Kind = match('|') ? TokenKind::PipePipe : TokenKind::Pipe;
    return T;
  default:
    Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
    T.Kind = TokenKind::Error;
    return T;
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = next();
    bool Done = T.is(TokenKind::Eof);
    Tokens.push_back(std::move(T));
    if (Done)
      return Tokens;
  }
}
