//===- Lexer.h - Mini-C tokenizer -------------------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written tokenizer for mini-C. Tracks line/column positions because
/// the whole point of BugAssist is mapping clauses back to source lines.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_LANG_LEXER_H
#define BUGASSIST_LANG_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bugassist {

enum class TokenKind {
  // literals / identifiers
  Identifier,
  IntLiteral,
  // keywords
  KwInt,
  KwBool,
  KwVoid,
  KwTrue,
  KwFalse,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwAssert,
  KwAssume,
  // punctuation
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Question,
  Colon,
  Assign, // =
  // operators
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Shl,
  Shr,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  Amp,
  AmpAmp,
  Pipe,
  PipePipe,
  Caret,
  Tilde,
  Bang,
  // control
  Eof,
  Error
};

/// \returns a printable name for \p K, for diagnostics.
const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Tokenizes a whole buffer up front. Unknown characters produce Error
/// tokens plus diagnostics, and lexing continues.
class Lexer {
public:
  Lexer(std::string_view Source, DiagEngine &Diags);

  /// Lexes the entire buffer; the final token is always Eof.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(int Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  SourceLoc here() const { return SourceLoc(Line, Col); }

  std::string_view Source;
  DiagEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace bugassist

#endif // BUGASSIST_LANG_LEXER_H
