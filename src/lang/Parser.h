//===- Parser.h - Mini-C recursive-descent parser ---------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser building the mini-C AST. `for` loops are
/// desugared into `while` loops at parse time so downstream passes handle a
/// single loop construct.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_LANG_PARSER_H
#define BUGASSIST_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Lexer.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string_view>

namespace bugassist {

/// Parses one translation unit. On syntax errors, diagnostics are reported
/// and nullptr is returned.
std::unique_ptr<Program> parseProgram(std::string_view Source,
                                      DiagEngine &Diags);

} // namespace bugassist

#endif // BUGASSIST_LANG_PARSER_H
