//===- Ast.cpp - Mini-C abstract syntax --------------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

using namespace bugassist;

std::string Type::str() const {
  switch (Kind) {
  case Int:
    return "int";
  case Bool:
    return "bool";
  case Array:
    return "int[" + std::to_string(ArraySize) + "]";
  case Void:
    return "void";
  }
  return "?";
}

const char *bugassist::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Shl:
    return "<<";
  case BinaryOp::Shr:
    return ">>";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::BitAnd:
    return "&";
  case BinaryOp::BitOr:
    return "|";
  case BinaryOp::BitXor:
    return "^";
  case BinaryOp::LogAnd:
    return "&&";
  case BinaryOp::LogOr:
    return "||";
  }
  return "?";
}

const char *bugassist::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::LogNot:
    return "!";
  case UnaryOp::BitNot:
    return "~";
  }
  return "?";
}

bool bugassist::isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return true;
  default:
    return false;
  }
}

bool bugassist::isLogicalOp(BinaryOp Op) {
  return Op == BinaryOp::LogAnd || Op == BinaryOp::LogOr;
}

std::vector<BinaryOp> bugassist::nearMissOps(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
    return {BinaryOp::Le, BinaryOp::Gt, BinaryOp::Ge};
  case BinaryOp::Le:
    return {BinaryOp::Lt, BinaryOp::Ge, BinaryOp::Gt};
  case BinaryOp::Gt:
    return {BinaryOp::Ge, BinaryOp::Lt, BinaryOp::Le};
  case BinaryOp::Ge:
    return {BinaryOp::Gt, BinaryOp::Le, BinaryOp::Lt};
  case BinaryOp::Eq:
    return {BinaryOp::Ne};
  case BinaryOp::Ne:
    return {BinaryOp::Eq};
  case BinaryOp::Add:
    return {BinaryOp::Sub};
  case BinaryOp::Sub:
    return {BinaryOp::Add};
  case BinaryOp::Mul:
    return {BinaryOp::Div};
  case BinaryOp::Div:
    return {BinaryOp::Mul};
  case BinaryOp::LogAnd:
    return {BinaryOp::LogOr};
  case BinaryOp::LogOr:
    return {BinaryOp::LogAnd};
  default:
    return {};
  }
}

// --- deep copies -------------------------------------------------------------
//
// Clones drop Sema results (resolved decls, types); callers re-run Sema on
// the cloned program. This keeps clone free of cross-AST pointer fixups.

ExprPtr bugassist::cloneExpr(const Expr *E) {
  if (!E)
    return nullptr;
  switch (E->kind()) {
  case Expr::IntLiteralKind: {
    const auto *L = cast<IntLiteral>(E);
    return std::make_unique<IntLiteral>(L->value(), L->loc());
  }
  case Expr::BoolLiteralKind: {
    const auto *L = cast<BoolLiteral>(E);
    return std::make_unique<BoolLiteral>(L->value(), L->loc());
  }
  case Expr::VarRefKind: {
    const auto *V = cast<VarRef>(E);
    return std::make_unique<VarRef>(V->name(), V->loc());
  }
  case Expr::ArrayIndexKind: {
    const auto *A = cast<ArrayIndex>(E);
    return std::make_unique<ArrayIndex>(cloneExpr(A->base()),
                                        cloneExpr(A->index()), A->loc());
  }
  case Expr::UnaryKind: {
    const auto *U = cast<UnaryExpr>(E);
    return std::make_unique<UnaryExpr>(U->op(), cloneExpr(U->operand()),
                                       U->loc());
  }
  case Expr::BinaryKind: {
    const auto *B = cast<BinaryExpr>(E);
    return std::make_unique<BinaryExpr>(B->op(), cloneExpr(B->lhs()),
                                        cloneExpr(B->rhs()), B->loc());
  }
  case Expr::ConditionalKind: {
    const auto *C = cast<ConditionalExpr>(E);
    return std::make_unique<ConditionalExpr>(cloneExpr(C->cond()),
                                             cloneExpr(C->thenExpr()),
                                             cloneExpr(C->elseExpr()),
                                             C->loc());
  }
  case Expr::CallKind: {
    const auto *C = cast<CallExpr>(E);
    std::vector<ExprPtr> Args;
    for (const auto &A : C->args())
      Args.push_back(cloneExpr(A.get()));
    return std::make_unique<CallExpr>(C->callee(), std::move(Args), C->loc());
  }
  }
  return nullptr;
}

static std::unique_ptr<VarDecl> cloneVarDecl(const VarDecl *D) {
  auto New = std::make_unique<VarDecl>(D->name(), D->type(), D->loc());
  New->setGlobal(D->isGlobal());
  New->setParam(D->isParam());
  if (D->init())
    New->setInit(cloneExpr(D->init()));
  return New;
}

StmtPtr bugassist::cloneStmt(const Stmt *S) {
  if (!S)
    return nullptr;
  switch (S->kind()) {
  case Stmt::DeclStmtKind: {
    const auto *D = cast<DeclStmt>(S);
    return std::make_unique<DeclStmt>(cloneVarDecl(D->decl()), D->loc());
  }
  case Stmt::AssignStmtKind: {
    const auto *A = cast<AssignStmt>(S);
    return std::make_unique<AssignStmt>(A->target(), cloneExpr(A->index()),
                                        cloneExpr(A->value()), A->loc());
  }
  case Stmt::IfStmtKind: {
    const auto *I = cast<IfStmt>(S);
    return std::make_unique<IfStmt>(cloneExpr(I->cond()),
                                    cloneStmt(I->thenStmt()),
                                    cloneStmt(I->elseStmt()), I->loc());
  }
  case Stmt::WhileStmtKind: {
    const auto *W = cast<WhileStmt>(S);
    return std::make_unique<WhileStmt>(cloneExpr(W->cond()),
                                       cloneStmt(W->body()), W->loc());
  }
  case Stmt::ReturnStmtKind: {
    const auto *R = cast<ReturnStmt>(S);
    return std::make_unique<ReturnStmt>(cloneExpr(R->value()), R->loc());
  }
  case Stmt::AssertStmtKind: {
    const auto *A = cast<AssertStmt>(S);
    return std::make_unique<AssertStmt>(cloneExpr(A->cond()), A->loc());
  }
  case Stmt::AssumeStmtKind: {
    const auto *A = cast<AssumeStmt>(S);
    return std::make_unique<AssumeStmt>(cloneExpr(A->cond()), A->loc());
  }
  case Stmt::BlockStmtKind: {
    const auto *B = cast<BlockStmt>(S);
    std::vector<StmtPtr> Stmts;
    for (const auto &Sub : B->stmts())
      Stmts.push_back(cloneStmt(Sub.get()));
    return std::make_unique<BlockStmt>(std::move(Stmts), B->loc());
  }
  case Stmt::ExprStmtKind: {
    const auto *E = cast<ExprStmt>(S);
    return std::make_unique<ExprStmt>(cloneExpr(E->expr()), E->loc());
  }
  }
  return nullptr;
}

std::unique_ptr<Program> bugassist::cloneProgram(const Program &P) {
  auto New = std::make_unique<Program>();
  for (const auto &G : P.globals())
    New->globals().push_back(cloneVarDecl(G.get()));
  for (const auto &F : P.functions()) {
    auto NF = std::make_unique<FunctionDecl>(F->name(), F->returnType(),
                                             F->loc());
    for (const auto &Param : F->params())
      NF->params().push_back(cloneVarDecl(Param.get()));
    if (F->body()) {
      StmtPtr B = cloneStmt(F->body());
      NF->setBody(std::unique_ptr<BlockStmt>(cast<BlockStmt>(B.release())));
    }
    New->functions().push_back(std::move(NF));
  }
  return New;
}
