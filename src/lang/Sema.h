//===- Sema.h - Mini-C semantic analysis ------------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and type checking for mini-C. After a successful run,
/// every VarRef/CallExpr/AssignStmt carries its resolved declaration and
/// every expression its type -- the invariants the interpreter and the BMC
/// encoder rely on. Also marks functions reachable through call-graph
/// cycles as recursive (they need bounded inlining).
///
/// Mini-C is strictly typed: int and bool do not interconvert, conditions
/// must be bool, and arrays are only indexed or passed whole to array
/// parameters (by reference, C-style).
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_LANG_SEMA_H
#define BUGASSIST_LANG_SEMA_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

namespace bugassist {

/// Resolves and type checks \p Prog in place. \returns true on success;
/// on failure, diagnostics describe every error found.
bool analyzeProgram(Program &Prog, DiagEngine &Diags);

/// Convenience: parse + analyze. \returns nullptr on any error.
std::unique_ptr<Program> parseAndAnalyze(std::string_view Source,
                                         DiagEngine &Diags);

} // namespace bugassist

#endif // BUGASSIST_LANG_SEMA_H
