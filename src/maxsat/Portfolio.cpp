//===- Portfolio.cpp - Parallel portfolio MaxSAT / SAT -----------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Racing protocol: every worker runs on its own thread; the first thread
// whose session produces a decided result (not Unknown) takes the win
// under the race mutex and interrupts everyone else. Losers return
// promptly (Solver::interrupt is polled once per search iteration), their
// sessions stay internally consistent, and all threads are joined before
// solve() returns -- so between rounds the portfolio is single-threaded
// and the exchange cursors, stats, and session state can be read freely.
//
// A decided loser result is impossible by construction: a worker is only
// interrupted after the winner claimed the race, so any later-finishing
// worker's result is discarded. Unknown results never claim the win; when
// every surviving worker exhausts its budget the survivors' anytime
// bounds are merged deterministically (see PortfolioSession::solve).
//
// Fault isolation and self-healing: an exception escaping a worker's
// solve() is caught at the thread boundary. The crashed worker is retired
// -- its engine state is indeterminate mid-solve -- and the round
// continues on the survivors. The *next* solve() rebuilds every retired
// worker from the stored construction inputs plus the addHardClause
// broadcasts so far (respawnRetired), so a transient fault costs one
// round of parallelism, not the session's lifetime.
//
//===----------------------------------------------------------------------===//

#include "maxsat/Portfolio.h"

#include "sat/Solver.h"

#include <algorithm>
#include <cassert>
#include <thread>

using namespace bugassist;

// --- ClauseExchange ---------------------------------------------------------

ClauseExchange::ClauseExchange(size_t NumWorkers, size_t Capacity)
    : Cursor(NumWorkers, 0), Capacity(Capacity ? Capacity : 1) {}

void ClauseExchange::publish(size_t Worker, const std::vector<Lit> &Lits,
                             uint32_t Lbd) {
  std::lock_guard<std::mutex> G(M);
  assert(Worker < Cursor.size() && "unknown worker");
  Buf.push_back({Lits, Lbd, Worker});
  ++Published;
  while (Buf.size() > Capacity) {
    Buf.pop_front();
    ++BaseSeq;
    ++Dropped;
  }
}

bool ClauseExchange::fetch(size_t Worker, std::vector<Lit> &Lits,
                           uint32_t &Lbd) {
  std::lock_guard<std::mutex> G(M);
  assert(Worker < Cursor.size() && "unknown worker");
  uint64_t Seq = std::max(Cursor[Worker], BaseSeq); // dropped entries skipped
  uint64_t EndSeq = BaseSeq + Buf.size();
  while (Seq < EndSeq) {
    const Entry &E = Buf[static_cast<size_t>(Seq - BaseSeq)];
    ++Seq;
    if (E.Source == Worker)
      continue; // never hand a worker its own clause back
    Lits = E.Lits;
    Lbd = E.Lbd;
    Cursor[Worker] = Seq;
    return true;
  }
  Cursor[Worker] = Seq;
  return false;
}

uint64_t ClauseExchange::published() const {
  std::lock_guard<std::mutex> G(M);
  return Published;
}

uint64_t ClauseExchange::dropped() const {
  std::lock_guard<std::mutex> G(M);
  return Dropped;
}

// --- diversification --------------------------------------------------------

Solver::Options bugassist::diversifiedOptions(const Solver::Options &Base,
                                              size_t WorkerId) {
  Solver::Options O = Base;
  if (WorkerId == 0)
    return O; // the anchor: exactly the base configuration
  // Distinct seeds decorrelate the random decisions and random phases even
  // between workers that share a policy mix.
  O.RandSeed = Base.RandSeed + 0x9e3779b97f4a7c15ull * WorkerId;
  switch (WorkerId % 8) {
  case 1: // model-hunter: positive phases, eager EMA restarts
    O.InitPhase = Solver::Options::PhaseInit::True;
    O.RestartMargin = 1.1;
    break;
  case 2: // Luby fast restarts with extra random branching
    O.Restart = Solver::Options::RestartPolicy::Luby;
    O.LubyUnit = 100;
    O.RandomBranchFreq = 0.05;
    break;
  case 3: // the seed retention policy under EMA restarts, random phases
    O.Retention = Solver::Options::RetentionPolicy::ActivityHalving;
    O.InitPhase = Solver::Options::PhaseInit::Random;
    break;
  case 4: // wide tiers, heavy randomization
    O.RandomBranchFreq = 0.1;
    O.CoreLbdCut = 4;
    O.MidLbdCut = 8;
    break;
  case 5: // Luby slow restarts, positive phases (deep SAT dives)
    O.Restart = Solver::Options::RestartPolicy::Luby;
    O.LubyUnit = 512;
    O.InitPhase = Solver::Options::PhaseInit::True;
    break;
  case 6: // conservative EMA restarts, random phases
    O.RestartMargin = 1.4;
    O.BlockMargin = 1.2;
    O.InitPhase = Solver::Options::PhaseInit::Random;
    O.RandomBranchFreq = 0.05;
    break;
  case 7: // the full seed-policy solver (Luby + activity halving)
    O.Restart = Solver::Options::RestartPolicy::Luby;
    O.Retention = Solver::Options::RetentionPolicy::ActivityHalving;
    break;
  default: // 0 mod 8 beyond the anchor: base policies, fresh seed
    break;
  }
  return O;
}

namespace {

/// Wires one worker's solver into the exchange. The exchange must outlive
/// the solver: the installed lambdas hold a reference to it.
void installShareHooks(Solver &S, ClauseExchange &Ex, size_t Id,
                       Var ShareVarLimit) {
  S.setShareHooks(
      [&Ex, Id](const std::vector<Lit> &L, uint32_t Lbd) {
        Ex.publish(Id, L, Lbd);
      },
      [&Ex, Id](std::vector<Lit> &L, uint32_t &Lbd) {
        return Ex.fetch(Id, L, Lbd);
      },
      ShareVarLimit);
}

} // namespace

// --- plain-SAT racing -------------------------------------------------------

SatRaceResult bugassist::racePortfolioSat(const std::vector<Clause> &Clauses,
                                          int NumVars, size_t Threads,
                                          const Solver::Options &Base,
                                          const Solver::Budget &Bud) {
  SatRaceResult Race;
  size_t N = Threads ? Threads : 1;

  ClauseExchange Exchange(N); // declared first: the hooks reference it

  // Load the clauses and run the simplification pass ONCE, on a prototype
  // with the anchor's options, then copy-construct every worker from it.
  // Two birds: the race does not pay N times for loading + preprocessing,
  // and elimination runs before any exchange hooks exist -- with hooks
  // installed, every variable below ShareVarLimit is structurally frozen
  // and bounded variable elimination cannot fire at all. Soundness of
  // sharing afterwards: all workers inherit the same eliminated set and a
  // learnt clause can only mention variables occurring in its worker's
  // clause database, so exchanged clauses never touch an eliminated
  // variable.
  Solver Proto{diversifiedOptions(Base, 0)};
  Proto.ensureVars(NumVars);
  for (const Clause &C : Clauses)
    if (!Proto.addClause(C))
      break; // root-level UNSAT: solve() will report False immediately
  if (!Bud.unlimited())
    Proto.setBudget(Bud); // the pass counts against the query's budget too
  Proto.preprocess();     // self-gated on Options::Preprocess

  std::vector<std::unique_ptr<Solver>> Solvers;
  Solvers.reserve(N);
  for (size_t Id = 0; Id < N; ++Id) {
    auto S = std::make_unique<Solver>(Proto);
    if (Id > 0) {
      S->adoptOptions(diversifiedOptions(Base, Id));
      S->clearStats(); // the shared pass is counted once, on worker 0
    }
    if (N > 1)
      installShareHooks(*S, Exchange, Id, /*ShareVarLimit=*/NumVars);
    if (!Bud.unlimited())
      S->setBudget(Bud);
    Solvers.push_back(std::move(S));
  }

  if (N == 1) {
    Race.Result = Solvers[0]->solve();
    Race.Winner = Race.Result == LBool::Undef ? -1 : 0;
  } else {
    std::mutex RaceM;
    int Winner = -1;
    auto Body = [&](size_t Id) {
      LBool R = LBool::Undef;
      try {
        R = Solvers[Id]->solve();
      } catch (...) {
        // Fault isolation: the crashed worker is retired and the race
        // continues on the survivors. Its solver may be mid-search; only
        // its plain stats counters are read after the join.
        std::lock_guard<std::mutex> G(RaceM);
        ++Race.Faults;
        return;
      }
      std::lock_guard<std::mutex> G(RaceM);
      if (R != LBool::Undef && Winner < 0) {
        Winner = static_cast<int>(Id);
        Race.Result = R;
        for (size_t J = 0; J < N; ++J)
          if (J != Id)
            Solvers[J]->interrupt();
      }
    };
    std::vector<std::thread> Pool;
    Pool.reserve(N);
    for (size_t Id = 0; Id < N; ++Id)
      Pool.emplace_back(Body, Id);
    for (std::thread &T : Pool)
      T.join();
    Race.Winner = Winner;
  }

  // All threads are joined: reading the winner's model is race-free.
  if (Race.Result == LBool::True && Race.Winner >= 0) {
    const Solver &W = *Solvers[static_cast<size_t>(Race.Winner)];
    Race.Model.reserve(static_cast<size_t>(NumVars));
    for (Var V = 0; V < NumVars; ++V)
      Race.Model.push_back(W.modelValue(V));
  }

  for (auto &S : Solvers) {
    S->clearInterrupt();
    Race.PerWorker.push_back(S->stats());
    Race.Aggregate += S->stats();
  }
  return Race;
}

// --- PortfolioSession -------------------------------------------------------

PortfolioSession::PortfolioSession(const MaxSatInstance &Inst, bool Weighted,
                                   size_t Threads, uint64_t ConflictBudget,
                                   const Solver::Options &Base)
    : Inst(Inst), Weighted(Weighted), ConflictBudget(ConflictBudget),
      Base(Base) {
  size_t N = Threads ? Threads : 1;
  Exchange = std::make_unique<ClauseExchange>(N);
  PStats.WinsByWorker.assign(N, 0);
  Retired.assign(N, 0);
  Workers.reserve(N);
  // Worker 0 is built once and preprocessed before any exchange hooks
  // exist (hooks structurally freeze every variable below ShareVarLimit,
  // which would block elimination entirely); the other workers are clones
  // that inherit the shrunken clause database and the reconstruction
  // stack, then re-diversify via adoptOptions. Sharing stays sound: all
  // workers descend from the same preprocessed base, so an exchanged
  // clause can never mention a variable some worker eliminated.
  for (size_t Id = 0; Id < N; ++Id) {
    std::unique_ptr<MaxSatSession> Sess;
    if (Id == 0) {
      // Every worker canonicalizes, so the race winner's diagnosis is the
      // same set any other worker would have reported.
      Sess = makeMaxSatSession(Inst, Weighted, ConflictBudget,
                               diversifiedOptions(Base, 0),
                               /*Canonical=*/true);
      Sess->solver().preprocess(); // self-gated on Options::Preprocess
    } else {
      Sess = Workers[0]->clone();
      Sess->solver().adoptOptions(diversifiedOptions(Base, Id));
      Sess->solver().clearStats(); // the shared pass is counted on worker 0
    }
    if (N > 1) {
      // Only clauses over the original variables travel between workers:
      // every session's auxiliary encoding is a conservative extension of
      // the shared hard clauses, so these clauses are implied by the hard
      // clauses alone and sound everywhere.
      installShareHooks(Sess->solver(), *Exchange, Id,
                        /*ShareVarLimit=*/Inst.NumVars);
    }
    Workers.push_back(std::move(Sess));
  }
}

PortfolioSession::~PortfolioSession() = default;

void PortfolioSession::respawnRetired() {
  for (size_t Id = 0; Id < Workers.size(); ++Id) {
    if (!Retired[Id])
      continue;
    // A retired worker cannot be rebuilt as a clone: clone() is only
    // valid on never-solved sessions, and worker 0 (or its replacement)
    // has solved. Rebuild from the stored instance instead, then replay
    // every addHardClause broadcast so the replacement optimizes exactly
    // the formula the survivors hold.
    std::unique_ptr<MaxSatSession> Sess =
        makeMaxSatSession(Inst, Weighted, ConflictBudget,
                          diversifiedOptions(Base, Id), /*Canonical=*/true);
    if (Workers.size() > 1) {
      // Hooks go in *before* any solving and the replacement never runs
      // its own preprocess: with hooks installed every variable below
      // ShareVarLimit is structurally frozen, and an independent
      // elimination pass would give this worker a different eliminated
      // set than the clone family descended from worker 0. Sharing stays
      // sound without one: exchanged clauses are implied by the hard
      // clauses alone, and a survivor importing a replacement's clause
      // over a variable *it* eliminated drops it defensively
      // (Solver::addImportedClause).
      installShareHooks(Sess->solver(), *Exchange, Id,
                        /*ShareVarLimit=*/Inst.NumVars);
    } else {
      Sess->solver().preprocess(); // single worker: no sharing to respect
    }
    for (const Clause &C : AddedHard)
      Sess->addHardClause(C);
    if (CurBudget)
      Sess->setBudget(*CurBudget);
    Workers[Id] = std::move(Sess);
    Retired[Id] = 0;
    ++PStats.WorkerRespawns;
  }
}

MaxSatResult PortfolioSession::solve() {
  respawnRetired();
  MaxSatResult Winning;
  if (Workers.size() == 1) {
    Winning = Workers[0]->solve();
    PStats.LastWinner = Winning.Status == MaxSatStatus::Unknown ? -1 : 0;
    if (PStats.LastWinner == 0)
      ++PStats.WinsByWorker[0];
  } else {
    for (size_t Id = 0; Id < Workers.size(); ++Id)
      if (!Retired[Id])
        Workers[Id]->solver().clearInterrupt();

    std::mutex RaceM;
    int Winner = -1;
    // Per-worker round results, kept so the bounds of every survivor can
    // be merged deterministically when nobody decides.
    std::vector<MaxSatResult> Round(Workers.size());
    std::vector<char> HaveResult(Workers.size(), 0);
    auto Body = [&](size_t Id) {
      MaxSatResult R;
      try {
        R = Workers[Id]->solve();
      } catch (...) {
        // Fault isolation: an escaped exception (std::bad_alloc, an
        // injected fault) retires this worker permanently -- its engine
        // state is indeterminate mid-solve -- and the race continues on
        // the survivors.
        std::lock_guard<std::mutex> G(RaceM);
        Retired[Id] = 1;
        ++PStats.WorkerFaults;
        return;
      }
      std::lock_guard<std::mutex> G(RaceM);
      // First *fully decided* answer wins; anyone interrupted after this
      // point returns Unknown and is discarded, so a stale (pre-interrupt)
      // decided result can never leak out of a loser. A budget-truncated
      // canonicalization never wins either -- which worker ran out of
      // budget mid-canonicalization is timing-dependent, and letting it
      // win would make the reported diagnosis timing-dependent too.
      if (R.Status != MaxSatStatus::Unknown && !R.CanonicalTruncated &&
          Winner < 0) {
        Winner = static_cast<int>(Id);
        Winning = std::move(R);
        for (size_t J = 0; J < Workers.size(); ++J)
          if (J != Id && !Retired[J])
            Workers[J]->solver().interrupt();
      } else {
        Round[Id] = std::move(R);
        HaveResult[Id] = 1;
      }
    };
    std::vector<std::thread> Pool;
    Pool.reserve(Workers.size());
    for (size_t Id = 0; Id < Workers.size(); ++Id)
      if (!Retired[Id])
        Pool.emplace_back(Body, Id);
    for (std::thread &T : Pool)
      T.join();

    for (size_t Id = 0; Id < Workers.size(); ++Id)
      if (!Retired[Id])
        Workers[Id]->solver().clearInterrupt();
    PStats.LastWinner = Winner;
    if (Winner >= 0) {
      ++PStats.WinsByWorker[static_cast<size_t>(Winner)];
    } else {
      // Nobody decided (every survivor truncated or exhausted its budget,
      // or crashed). Fall back to the lowest-id survivor with a decided
      // (necessarily truncated-canonicalization) answer -- a proven
      // optimum beats any Unknown; otherwise merge the survivors' anytime
      // bounds: tightest proven lower bound, cheapest witnessed upper
      // bound, the witness taken from the lowest-id worker attaining it
      // so ties break deterministically.
      bool Decided = false;
      for (size_t Id = 0; Id < Workers.size() && !Decided; ++Id)
        if (HaveResult[Id] && Round[Id].decided()) {
          Winning = std::move(Round[Id]);
          Decided = true;
        }
      if (!Decided) {
        for (size_t Id = 0; Id < Workers.size(); ++Id) {
          if (!HaveResult[Id])
            continue;
          const MaxSatResult &R = Round[Id];
          Winning.LowerBound = std::max(Winning.LowerBound, R.LowerBound);
          if (R.UpperBound < Winning.UpperBound) {
            Winning.UpperBound = R.UpperBound;
            Winning.BestModel = R.BestModel;
          }
          Winning.SatCalls += R.SatCalls;
        }
      }
    }
  }
  PStats.ClausesPublished = Exchange->published();
  PStats.ClausesDropped = Exchange->dropped();
  Winning.Search = stats(); // surface the whole fleet's work
  return Winning;
}

bool PortfolioSession::addHardClause(const Clause &C) {
  // Recorded before broadcasting: a worker respawned later must replay
  // every clause the survivors received, including this one.
  AddedHard.push_back(C);
  bool Ok = true;
  for (size_t Id = 0; Id < Workers.size(); ++Id)
    if (!Retired[Id])
      Ok = Workers[Id]->addHardClause(C) && Ok;
  return Ok;
}

const SolverStats &PortfolioSession::stats() const {
  // Retired workers are included: their counters record real work done
  // before the crash and are plain structs, safe to read after the join.
  Agg = SolverStats{};
  for (const auto &W : Workers)
    Agg += W->stats();
  return Agg;
}

Solver &PortfolioSession::solver() { return Workers[0]->solver(); }

void PortfolioSession::setBudget(const Solver::Budget &B) {
  CurBudget = B; // respawns inherit the budget in force
  for (size_t Id = 0; Id < Workers.size(); ++Id)
    if (!Retired[Id])
      Workers[Id]->setBudget(B);
}

void PortfolioSession::clearBudget() {
  CurBudget.reset();
  for (size_t Id = 0; Id < Workers.size(); ++Id)
    if (!Retired[Id])
      Workers[Id]->clearBudget();
}

size_t PortfolioSession::aliveWorkers() const {
  size_t N = 0;
  for (char R : Retired)
    N += R == 0;
  return N;
}

std::unique_ptr<PortfolioSession>
bugassist::makePortfolioSession(const MaxSatInstance &Inst, bool Weighted,
                                size_t Threads, uint64_t ConflictBudget,
                                const Solver::Options &Base) {
  return std::make_unique<PortfolioSession>(Inst, Weighted, Threads,
                                            ConflictBudget, Base);
}
