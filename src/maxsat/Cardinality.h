//===- Cardinality.h - Cardinality & PB encodings ---------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CNF encodings of cardinality and pseudo-Boolean constraints, the
/// "cardinality constraints used to constrain the number of relaxed
/// clauses" of the paper's Section 3.3. Fu-Malik needs exactly-one over
/// relaxation variables; the weighted linear-search solver needs
/// sum(w_i * x_i) <= K, encoded as a sequential weighted counter
/// (Hoelldobler/Sinz style).
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_MAXSAT_CARDINALITY_H
#define BUGASSIST_MAXSAT_CARDINALITY_H

#include "cnf/Lit.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace bugassist {

/// Destination for generated clauses plus a fresh-variable source, so the
/// encoders work against either a CnfFormula or a Solver.
struct ClauseSink {
  std::function<void(Clause)> AddClause;
  std::function<Var()> NewVar;
};

/// Emits clauses forcing at most one of \p Lits true. Uses pairwise
/// encoding for few literals, the sequential (ladder) encoding otherwise.
void encodeAtMostOne(const std::vector<Lit> &Lits, ClauseSink &Sink);

/// Emits clauses forcing exactly one of \p Lits true (Fu-Malik relaxation
/// constraint). \p Lits must be nonempty.
void encodeExactlyOne(const std::vector<Lit> &Lits, ClauseSink &Sink);

/// Emits clauses forcing sum of weights of true \p Lits <= \p Bound.
/// Sequential weighted counter: O(n * Bound) auxiliary variables.
/// Weights must be nonzero.
void encodePbLeq(const std::vector<Lit> &Lits,
                 const std::vector<uint64_t> &Weights, uint64_t Bound,
                 ClauseSink &Sink);

/// Emits a *saturating* sequential weighted counter over \p Lits and
/// returns its output literals Out[0..MaxSum-1], where every model of the
/// emitted clauses sets Out[J-1] true whenever the weighted sum of true
/// \p Lits is >= J (sums beyond MaxSum saturate at MaxSum). Unlike
/// encodePbLeq, no bound is baked in: assuming ~Out[K] enforces sum <= K
/// for any K < MaxSum, so an incremental MaxSAT session can tighten the
/// bound across solve() calls without re-encoding (Martins et al. style
/// incremental cardinality). Weights must be nonzero.
std::vector<Lit> encodePbCounter(const std::vector<Lit> &Lits,
                                 const std::vector<uint64_t> &Weights,
                                 uint64_t MaxSum, ClauseSink &Sink);

} // namespace bugassist

#endif // BUGASSIST_MAXSAT_CARDINALITY_H
