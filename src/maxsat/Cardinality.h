//===- Cardinality.h - Cardinality & PB encodings ---------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CNF encodings of cardinality and pseudo-Boolean constraints, the
/// "cardinality constraints used to constrain the number of relaxed
/// clauses" of the paper's Section 3.3. Fu-Malik needs exactly-one over
/// relaxation variables; the weighted linear-search solver needs
/// sum(w_i * x_i) <= K, encoded as a sequential weighted counter
/// (Hoelldobler/Sinz style).
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_MAXSAT_CARDINALITY_H
#define BUGASSIST_MAXSAT_CARDINALITY_H

#include "cnf/Lit.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace bugassist {

/// Destination for generated clauses plus a fresh-variable source, so the
/// encoders work against either a CnfFormula or a Solver.
struct ClauseSink {
  std::function<void(Clause)> AddClause;
  std::function<Var()> NewVar;
};

/// Emits clauses forcing at most one of \p Lits true. Uses pairwise
/// encoding for few literals, the sequential (ladder) encoding otherwise.
void encodeAtMostOne(const std::vector<Lit> &Lits, ClauseSink &Sink);

/// Emits clauses forcing exactly one of \p Lits true (Fu-Malik relaxation
/// constraint). \p Lits must be nonempty.
void encodeExactlyOne(const std::vector<Lit> &Lits, ClauseSink &Sink);

/// Emits clauses forcing sum of weights of true \p Lits <= \p Bound.
/// Sequential weighted counter: O(n * Bound) auxiliary variables.
/// Weights must be nonzero.
void encodePbLeq(const std::vector<Lit> &Lits,
                 const std::vector<uint64_t> &Weights, uint64_t Bound,
                 ClauseSink &Sink);

} // namespace bugassist

#endif // BUGASSIST_MAXSAT_CARDINALITY_H
