//===- Canonical.h - Greedy canonicalization of MaxSAT optima ---*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonicalization of an optimal MaxSAT model: among minimum-weight
/// models, greedily prefer keeping soft clauses satisfied in index
/// (program) order, so falsification lands on the latest statements. This
/// pins the reported CoMSS deterministically regardless of
/// search-heuristic history -- essential once heuristic state persists
/// across solve() calls (PR 1), and doubly so once a portfolio can return
/// whichever worker answered first: every worker canonicalizes to the same
/// set, so localization results are identical at every thread count.
///
/// The routine is engine-agnostic: the linear-search session probes under
/// its PB-counter bound, Fu-Malik under its live assumption guards; both
/// bind the mechanics through CanonicalHooks.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_MAXSAT_CANONICAL_H
#define BUGASSIST_MAXSAT_CANONICAL_H

#include "cnf/Lit.h"
#include "maxsat/MaxSat.h"

#include <functional>
#include <vector>

namespace bugassist {

/// Binds greedyCanonicalize to a concrete incremental session.
struct CanonicalHooks {
  /// Solves under the session's base assumptions -- which must hold the
  /// cost at the proven optimum -- plus \p Extra, refreshing the caller's
  /// witness model on True (the same model object passed to
  /// greedyCanonicalize).
  std::function<LBool(const std::vector<Lit> &Extra)> Probe;
  /// A literal that, when assumed, forces soft clause \p I satisfied.
  std::function<Lit(size_t I)> SatisfyLit;
};

/// Greedily canonicalizes \p Model (a witness of the optimum) in place via
/// incremental probes. A clause satisfied by the current witness commits
/// for free; each falsified position is located by a gallop-then-binary
/// search over the maximal additionally-satisfiable prefix ("satisfy
/// [Begin, E) too" is monotone in E). The first probe always tries just
/// one more clause, so an already-canonical witness costs exactly one
/// (cheap, UNSAT-by-assumption) probe per falsified clause. \returns false
/// when a probe exhausted the conflict budget; the witness keeps the last
/// successfully refreshed state.
bool greedyCanonicalize(const std::vector<SoftClause> &Soft,
                        const CanonicalHooks &Hooks,
                        std::vector<LBool> &Model);

} // namespace bugassist

#endif // BUGASSIST_MAXSAT_CANONICAL_H
