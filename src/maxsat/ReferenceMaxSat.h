//===- ReferenceMaxSat.h - Non-incremental MaxSAT baselines -----*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original rebuild-per-round MaxSAT implementations, kept verbatim as
/// baselines: every Fu-Malik relaxation round and every linear-search
/// improvement step constructs a fresh Solver, re-adds the whole formula,
/// and discards all learned clauses and heuristic state. The production
/// engines in MaxSat.h run incrementally over one persistent solver; these
/// references exist so tests can check the incremental paths against the
/// seed semantics and so bench_solvers can quantify the incremental win.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_MAXSAT_REFERENCEMAXSAT_H
#define BUGASSIST_MAXSAT_REFERENCEMAXSAT_H

#include "maxsat/MaxSat.h"

namespace bugassist {

/// Fu-Malik with a fresh solver per relaxation round (the seed
/// implementation). Result.Search accumulates stats across all solvers.
MaxSatResult referenceSolveFuMalik(const MaxSatInstance &Inst,
                                   uint64_t ConflictBudget = 0);

/// Linear search with a fresh solver and a freshly encoded PB bound per
/// improvement step (the seed implementation).
MaxSatResult referenceSolveLinear(const MaxSatInstance &Inst,
                                  uint64_t ConflictBudget = 0);

} // namespace bugassist

#endif // BUGASSIST_MAXSAT_REFERENCEMAXSAT_H
