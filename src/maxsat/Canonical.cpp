//===- Canonical.cpp - Greedy canonicalization of MaxSAT optima --------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "maxsat/Canonical.h"

#include <algorithm>

using namespace bugassist;

bool bugassist::greedyCanonicalize(const std::vector<SoftClause> &Soft,
                                   const CanonicalHooks &Hooks,
                                   std::vector<LBool> &Model) {
  const size_t N = Soft.size();
  std::vector<Lit> Committed;
  // Probe(Begin, E): can clauses [Begin, E) be satisfied on top of the
  // committed prefix (under the session's optimum-holding base)? On
  // success the witness Model is refreshed by the hook.
  auto Probe = [&](size_t Begin, size_t E) -> LBool {
    std::vector<Lit> Extra = Committed;
    for (size_t J = Begin; J < E; ++J)
      Extra.push_back(Hooks.SatisfyLit(J));
    return Hooks.Probe(Extra);
  };

  size_t Begin = 0; // clauses [0, Begin) are committed satisfied
  while (Begin < N) {
    if (clauseSatisfied(Soft[Begin].Lits, Model)) {
      Committed.push_back(Hooks.SatisfyLit(Begin)); // free commit
      ++Begin;
      continue;
    }
    // Model falsifies clause Begin. Find the largest E with [Begin, E)
    // satisfiable; E == Begin (the current witness) is SAT, E == N is
    // UNSAT (the optimum falsifies something >= Begin). Gallop from the
    // left -- the witness is usually already canonical, making the very
    // first one-clause probe UNSAT -- then binary search the rest.
    size_t Lo = Begin, Hi = N;
    size_t Step = 1;
    bool Galloping = true;
    while (Lo + 1 < Hi) {
      size_t Mid;
      if (Galloping) {
        Mid = std::min(Lo + Step, Hi - 1);
        Step *= 2;
      } else {
        Mid = Lo + (Hi - Lo + 1) / 2;
      }
      LBool R = Probe(Begin, Mid);
      if (R == LBool::Undef)
        return false; // budget exhausted: keep the optimum found so far
      if (R == LBool::False) {
        Hi = Mid;
        Galloping = false;
        continue;
      }
      // The fresh witness may satisfy well past Mid.
      Lo = Mid;
      while (Lo < Hi - 1 && clauseSatisfied(Soft[Lo].Lits, Model))
        ++Lo;
    }
    // [Begin, Lo) satisfiable, [Begin, Lo + 1) not: Lo stays falsified.
    // Re-probe only if the current witness lost it (a failed probe does
    // not restore the earlier model).
    if (Lo > Begin && !clauseSatisfied(Soft[Lo - 1].Lits, Model)) {
      if (Probe(Begin, Lo) != LBool::True)
        return false; // budget exhausted mid-search
    }
    for (size_t J = Begin; J < Lo; ++J)
      Committed.push_back(Hooks.SatisfyLit(J));
    Begin = Lo + 1;
  }
  return true;
}
