//===- ReferenceMaxSat.cpp - Non-incremental MaxSAT baselines ----------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// The seed's rebuild-per-round algorithms, preserved as baselines for
// differential tests and for bench_solvers' incremental-vs-rebuilt
// comparison. Deliberately NOT used by the production pipeline.
//
//===----------------------------------------------------------------------===//

#include "maxsat/ReferenceMaxSat.h"

#include "maxsat/Cardinality.h"
#include "sat/Solver.h"

#include <algorithm>
#include <cassert>

using namespace bugassist;

namespace {

void accumulate(SolverStats &Into, const SolverStats &From) {
  Into.Conflicts += From.Conflicts;
  Into.Decisions += From.Decisions;
  Into.Propagations += From.Propagations;
  Into.Restarts += From.Restarts;
  Into.RestartsBlocked += From.RestartsBlocked;
  Into.LearnedClauses += From.LearnedClauses;
  Into.DeletedClauses += From.DeletedClauses;
  Into.GcRuns += From.GcRuns;
  Into.LbdSum += From.LbdSum;
  Into.LbdCount += From.LbdCount;
  Into.LbdTightened += From.LbdTightened;
  // Tier gauges are per-solver instantaneous counts; summing over the
  // discarded per-round solvers would be meaningless, so they stay 0.
}

void collectFalsifiedSoft(const MaxSatInstance &Inst, MaxSatResult &Res) {
  Res.FalsifiedSoft.clear();
  uint64_t Cost = 0;
  for (size_t I = 0; I < Inst.Soft.size(); ++I) {
    if (!clauseSatisfied(Inst.Soft[I].Lits, Res.Model)) {
      Res.FalsifiedSoft.push_back(I);
      Cost += Inst.Soft[I].Weight;
    }
  }
  Res.Cost = Cost;
}

uint64_t modelCost(const MaxSatInstance &Inst,
                   const std::vector<LBool> &Model) {
  uint64_t Cost = 0;
  for (const SoftClause &S : Inst.Soft)
    if (!clauseSatisfied(S.Lits, Model))
      Cost += S.Weight;
  return Cost;
}

} // namespace

MaxSatResult bugassist::referenceSolveFuMalik(const MaxSatInstance &Inst,
                                              uint64_t ConflictBudget) {
  MaxSatResult Res;

  // Working copies: soft clauses accumulate relaxation literals; extra hard
  // clauses accumulate exactly-one constraints.
  std::vector<Clause> WorkingSoft;
  WorkingSoft.reserve(Inst.Soft.size());
  for (const SoftClause &S : Inst.Soft)
    WorkingSoft.push_back(S.Lits);
  std::vector<Clause> ExtraHard;
  int NextVar = Inst.NumVars;
  uint64_t Rounds = 0;

  for (;;) {
    // Build a fresh solver over the working formula. Each soft clause i is
    // guarded by assumption literal A_i via the hard clause (C_i \/ ~A_i);
    // assuming A_i enforces C_i, and a final conflict yields a core over
    // the A_i, i.e., over soft clauses.
    Solver S{Solver::Options::seed()}; // the rebuild-per-round baseline pins
                                       // the seed search policies
    S.ensureVars(NextVar);
    bool HardOk = true;
    for (const Clause &C : Inst.Hard)
      if (!S.addClause(C)) {
        HardOk = false;
        break;
      }
    if (HardOk)
      for (const Clause &C : ExtraHard)
        if (!S.addClause(C)) {
          HardOk = false;
          break;
        }
    if (!HardOk) {
      accumulate(Res.Search, S.stats());
      Res.Status = MaxSatStatus::HardUnsat;
      Res.LowerBound = Res.UpperBound = UINT64_MAX;
      return Res;
    }

    std::vector<Lit> Assumptions;
    std::vector<Var> AssumpVarOf(WorkingSoft.size(), NullVar);
    bool GuardsOk = true;
    for (size_t I = 0; I < WorkingSoft.size() && GuardsOk; ++I) {
      Var A = S.newVar();
      AssumpVarOf[I] = A;
      Clause Guarded = WorkingSoft[I];
      Guarded.push_back(mkLit(A, /*Negated=*/true));
      GuardsOk = S.addClause(std::move(Guarded));
      Assumptions.push_back(mkLit(A));
    }
    if (!GuardsOk) {
      // A guarded clause can only break the solver if hard clauses force
      // both the guard... impossible since A is fresh; defensive only.
      accumulate(Res.Search, S.stats());
      Res.Status = MaxSatStatus::HardUnsat;
      Res.LowerBound = Res.UpperBound = UINT64_MAX;
      return Res;
    }

    for (Var V : Inst.PreferTrue)
      S.setPolarity(V, true);
    if (ConflictBudget)
      S.setConflictBudget(ConflictBudget);
    ++Res.SatCalls;
    LBool R = S.solve(Assumptions);
    accumulate(Res.Search, S.stats());

    if (R == LBool::Undef) {
      Res.Status = MaxSatStatus::Unknown;
      // Anytime bounds: each completed round proved one more soft clause
      // must be falsified, and all weights are >= 1.
      Res.LowerBound = Rounds;
      return Res;
    }
    if (R == LBool::True) {
      Res.Status = MaxSatStatus::Optimum;
      Res.Model.resize(Inst.NumVars);
      for (Var V = 0; V < Inst.NumVars; ++V)
        Res.Model[V] = S.modelValue(V);
      collectFalsifiedSoft(Inst, Res);
      Res.LowerBound = Res.UpperBound = Res.Cost;
      Res.BestModel = Res.Model;
      // Fu-Malik invariant: rounds of relaxation == optimal cost for
      // unit weights.
      assert(Res.FalsifiedSoft.size() == Rounds &&
             "Fu-Malik cost does not match falsified soft clauses");
      return Res;
    }

    // UNSAT: harvest the core over assumption literals.
    std::vector<size_t> CoreSoft;
    for (Lit FL : S.conflictCore()) {
      Var V = FL.var();
      for (size_t I = 0; I < AssumpVarOf.size(); ++I)
        if (AssumpVarOf[I] == V) {
          CoreSoft.push_back(I);
          break;
        }
    }
    std::sort(CoreSoft.begin(), CoreSoft.end());
    CoreSoft.erase(std::unique(CoreSoft.begin(), CoreSoft.end()),
                   CoreSoft.end());

    if (CoreSoft.empty()) {
      // Conflict involves no soft clause: hard part is UNSAT.
      Res.Status = MaxSatStatus::HardUnsat;
      Res.LowerBound = Res.UpperBound = UINT64_MAX;
      return Res;
    }

    // Relax: fresh r per core soft clause; exactly one r true.
    ClauseSink Sink{
        [&ExtraHard](Clause C) { ExtraHard.push_back(std::move(C)); },
        [&NextVar]() { return NextVar++; }};
    std::vector<Lit> Relax;
    for (size_t I : CoreSoft) {
      Lit RL = mkLit(NextVar++);
      WorkingSoft[I].push_back(RL);
      Relax.push_back(RL);
    }
    encodeExactlyOne(Relax, Sink);
    ++Rounds;
  }
}

MaxSatResult bugassist::referenceSolveLinear(const MaxSatInstance &Inst,
                                             uint64_t ConflictBudget) {
  MaxSatResult Res;

  // The relaxed instance: soft clause i becomes hard (C_i \/ R_i).
  std::vector<Clause> Hard = Inst.Hard;
  std::vector<Lit> RelaxLits;
  std::vector<uint64_t> Weights;
  int NumVars = Inst.NumVars;
  for (const SoftClause &S : Inst.Soft) {
    Lit RL = mkLit(NumVars++);
    Clause C = S.Lits;
    C.push_back(RL);
    Hard.push_back(std::move(C));
    if (S.Lits.size() == 1)
      Hard.push_back({~RL, ~S.Lits[0]});
    RelaxLits.push_back(RL);
    Weights.push_back(S.Weight);
  }

  std::vector<LBool> BestModel;
  bool HaveModel = false;
  uint64_t BestCost = 0;

  for (;;) {
    Solver S{Solver::Options::seed()}; // the rebuild-per-round baseline pins
                                       // the seed search policies
    S.ensureVars(NumVars);
    bool Ok = true;
    for (const Clause &C : Hard)
      if (!S.addClause(C)) {
        Ok = false;
        break;
      }
    if (Ok && HaveModel) {
      if (BestCost == 0)
        break; // cannot improve on zero
      ClauseSink Sink{[&S](Clause C) { S.addClause(std::move(C)); },
                      [&S]() { return S.newVar(); }};
      encodePbLeq(RelaxLits, Weights, BestCost - 1, Sink);
      Ok = S.okay();
    }

    if (!Ok) {
      accumulate(Res.Search, S.stats());
      if (HaveModel)
        break; // previous model is optimal
      Res.Status = MaxSatStatus::HardUnsat;
      Res.LowerBound = Res.UpperBound = UINT64_MAX;
      return Res;
    }

    for (Var V : Inst.PreferTrue)
      S.setPolarity(V, true);
    if (ConflictBudget)
      S.setConflictBudget(ConflictBudget);
    ++Res.SatCalls;
    LBool SatRes = S.solve();
    accumulate(Res.Search, S.stats());
    if (SatRes == LBool::Undef) {
      Res.Status = MaxSatStatus::Unknown;
      // Anytime bounds from the search state: every completed improvement
      // step proved optimum < BestCost was still open, and BestModel
      // witnesses the best cost seen.
      if (HaveModel) {
        Res.UpperBound = BestCost;
        Res.BestModel = BestModel;
      }
      return Res;
    }
    if (SatRes == LBool::False) {
      if (!HaveModel) {
        Res.Status = MaxSatStatus::HardUnsat;
        Res.LowerBound = Res.UpperBound = UINT64_MAX;
        return Res;
      }
      break; // BestModel is optimal
    }

    std::vector<LBool> Model(Inst.NumVars);
    for (Var V = 0; V < Inst.NumVars; ++V)
      Model[V] = S.modelValue(V);
    uint64_t Cost = modelCost(Inst, Model);
    assert((!HaveModel || Cost < BestCost) &&
           "linear search failed to improve");
    BestModel = std::move(Model);
    BestCost = Cost;
    HaveModel = true;
    if (BestCost == 0)
      break;
  }

  Res.Status = MaxSatStatus::Optimum;
  Res.Model = std::move(BestModel);
  Res.Cost = BestCost;
  Res.LowerBound = Res.UpperBound = BestCost;
  Res.BestModel = Res.Model;
  for (size_t I = 0; I < Inst.Soft.size(); ++I)
    if (!clauseSatisfied(Inst.Soft[I].Lits, Res.Model))
      Res.FalsifiedSoft.push_back(I);
  return Res;
}
