//===- LinearSearch.cpp - Weighted MaxSAT by model-improving search ----------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// SAT-UNSAT linear search: relax every soft clause with a fresh literal,
// find any model, then repeatedly demand a strictly cheaper model through a
// pseudo-Boolean bound until UNSAT; the last model is optimal. This is the
// weighted engine behind the loop-diagnosis extension (paper Section 5.2),
// whose soft selector weights alpha + eta - kappa prioritize early loop
// iterations.
//
//===----------------------------------------------------------------------===//

#include "maxsat/MaxSat.h"

#include "maxsat/Cardinality.h"
#include "sat/Solver.h"

#include <cassert>

using namespace bugassist;

namespace {

/// The relaxed instance: soft clause i becomes hard (C_i \/ R_i).
struct RelaxedInstance {
  std::vector<Clause> Hard;
  std::vector<Lit> RelaxLits;
  std::vector<uint64_t> Weights;
  int NumVars = 0;
};

RelaxedInstance relax(const MaxSatInstance &Inst) {
  RelaxedInstance R;
  R.Hard = Inst.Hard;
  R.NumVars = Inst.NumVars;
  for (const SoftClause &S : Inst.Soft) {
    Lit RL = mkLit(R.NumVars++);
    Clause C = S.Lits;
    C.push_back(RL);
    R.Hard.push_back(std::move(C));
    // (~R \/ ~l) for each soft literal would make R equivalent to clause
    // falsification; cheaper: one direction suffices for minimization (a
    // model can always turn R off when the clause is satisfied), but we add
    // the equivalence for unit soft clauses so reported costs are exact
    // even before re-evaluation.
    if (S.Lits.size() == 1)
      R.Hard.push_back({~RL, ~S.Lits[0]});
    R.RelaxLits.push_back(RL);
    R.Weights.push_back(S.Weight);
  }
  return R;
}

uint64_t modelCost(const MaxSatInstance &Inst,
                   const std::vector<LBool> &Model) {
  uint64_t Cost = 0;
  for (const SoftClause &S : Inst.Soft)
    if (!clauseSatisfied(S.Lits, Model))
      Cost += S.Weight;
  return Cost;
}

} // namespace

MaxSatResult bugassist::solveLinear(const MaxSatInstance &Inst,
                                    uint64_t ConflictBudget) {
  MaxSatResult Res;
  RelaxedInstance R = relax(Inst);

  std::vector<LBool> BestModel;
  bool HaveModel = false;
  uint64_t BestCost = 0;

  for (;;) {
    Solver S;
    S.ensureVars(R.NumVars);
    bool Ok = true;
    for (const Clause &C : R.Hard)
      if (!S.addClause(C)) {
        Ok = false;
        break;
      }
    int SinkVars = R.NumVars;
    if (Ok && HaveModel) {
      if (BestCost == 0)
        break; // cannot improve on zero
      ClauseSink Sink{[&S](Clause C) { S.addClause(std::move(C)); },
                      [&S, &SinkVars]() {
                        ++SinkVars;
                        return S.newVar();
                      }};
      encodePbLeq(R.RelaxLits, R.Weights, BestCost - 1, Sink);
      Ok = S.okay();
    }

    if (!Ok) {
      if (HaveModel)
        break; // previous model is optimal
      Res.Status = MaxSatStatus::HardUnsat;
      return Res;
    }

    for (Var V : Inst.PreferTrue)
      S.setPolarity(V, true);
    if (ConflictBudget)
      S.setConflictBudget(ConflictBudget);
    ++Res.SatCalls;
    LBool SatRes = S.solve();
    if (SatRes == LBool::Undef) {
      Res.Status = MaxSatStatus::Unknown;
      return Res;
    }
    if (SatRes == LBool::False) {
      if (!HaveModel) {
        Res.Status = MaxSatStatus::HardUnsat;
        return Res;
      }
      break; // BestModel is optimal
    }

    std::vector<LBool> Model(Inst.NumVars);
    for (Var V = 0; V < Inst.NumVars; ++V)
      Model[V] = S.modelValue(V);
    uint64_t Cost = modelCost(Inst, Model);
    assert((!HaveModel || Cost < BestCost) &&
           "linear search failed to improve");
    BestModel = std::move(Model);
    BestCost = Cost;
    HaveModel = true;
    if (BestCost == 0)
      break;
  }

  Res.Status = MaxSatStatus::Optimum;
  Res.Model = std::move(BestModel);
  Res.Cost = BestCost;
  for (size_t I = 0; I < Inst.Soft.size(); ++I)
    if (!clauseSatisfied(Inst.Soft[I].Lits, Res.Model))
      Res.FalsifiedSoft.push_back(I);
  return Res;
}
