//===- LinearSearch.cpp - Weighted MaxSAT by model-improving search ----------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Lower-bound-guided model search: the session tracks a proven lower bound
// on the optimum (0 for a fresh instance; the previous optimum after a
// blocking clause, since added hard clauses can only raise the optimum).
// Each solve() first probes exactly at that bound -- a SAT answer is
// optimal immediately, with no descent and no bound-tightening calls. Only
// when the probe is UNSAT does the session fall back to one unbounded
// model (an upper bound) and a binary search between the two. This is the
// weighted engine behind the loop-diagnosis extension (paper Section 5.2),
// whose soft selector weights alpha + eta - kappa prioritize early loop
// iterations.
//
// Incremental: ONE solver lives for the whole session. The relaxed
// formula is loaded once, and bounds "sum <= K" are enforced purely by
// assumptions: K == 0 assumes every relaxation literal off (no counter at
// all -- the common localization round costs two propagation-only SAT
// calls), K >= 1 assumes the negation of a saturating sequential weighted
// counter output (Martins et al. style incremental cardinality). The
// counter is encoded lazily at the width the first UNSAT bound demands and
// only widened when a later blocking clause pushes the optimum past its
// range -- never re-encoded per step, so learned clauses and heuristic
// state survive every step and every blocking clause of the CoMSS
// enumeration.
//
//===----------------------------------------------------------------------===//

#include "maxsat/MaxSat.h"

#include "maxsat/Canonical.h"
#include "maxsat/Cardinality.h"
#include "sat/Solver.h"

#include <cassert>

using namespace bugassist;

namespace {

uint64_t modelCost(const std::vector<SoftClause> &Soft,
                   const std::vector<LBool> &Model) {
  uint64_t Cost = 0;
  for (const SoftClause &S : Soft)
    if (!clauseSatisfied(S.Lits, Model))
      Cost += S.Weight;
  return Cost;
}

class LinearSessionImpl final : public MaxSatSession {
public:
  LinearSessionImpl(const MaxSatInstance &Inst, uint64_t ConflictBudget,
                    const Solver::Options &SolverOpts)
      : S(SolverOpts), NumOrigVars(Inst.NumVars), Soft(Inst.Soft) {
    S.ensureVars(Inst.NumVars);
    // Frozen contract: canonicalization probes assume relaxation literals
    // off, bounds assume counter outputs, and the caller keeps talking
    // about soft-clause variables (blocking clauses, model readout) -- none
    // of these may be eliminated by inprocessing.
    for (Var V : Inst.Frozen)
      S.setFrozen(V, true);
    for (const SoftClause &SC : Inst.Soft)
      for (Lit L : SC.Lits)
        S.setFrozen(L.var(), true);
    for (const Clause &C : Inst.Hard)
      if (!S.addClause(C)) {
        HardBroken = true;
        return;
      }
    // Relax each soft clause once: soft clause i becomes hard (C_i \/ R_i).
    RelaxLits.reserve(Soft.size());
    Weights.reserve(Soft.size());
    for (const SoftClause &SC : Soft) {
      Lit RL = mkLit(S.newVar());
      S.setFrozen(RL.var(), true); // assumed off by K==0 bounds and probes
      Clause C = SC.Lits;
      C.push_back(RL);
      S.addClause(std::move(C));
      // One direction suffices for minimization (a model can always turn R
      // off when the clause is satisfied), but add the equivalence for unit
      // soft clauses so the counter tracks exact costs from the start.
      if (SC.Lits.size() == 1)
        S.addClause({~RL, ~SC.Lits[0]});
      RelaxLits.push_back(RL);
      Weights.push_back(SC.Weight);
    }
    PreferTrue = Inst.PreferTrue;
    if (ConflictBudget)
      S.setConflictBudget(ConflictBudget);
  }

  bool addHardClause(const Clause &C) override {
    if (HardBroken)
      return false;
    HardBroken = !S.addClause(C);
    return !HardBroken;
  }

  const SolverStats &stats() const override { return S.stats(); }

  Solver &solver() override { return S; }

  /// Member-wise deep copy: the Solver copy carries the arena and PB
  /// counter clauses, and the relaxation literals / weights / proven lower
  /// bound are plain values. Root level only.
  std::unique_ptr<MaxSatSession> clone() const override {
    return std::unique_ptr<MaxSatSession>(new LinearSessionImpl(*this));
  }

  MaxSatResult solve() override {
    MaxSatResult Res;
    if (HardBroken) {
      Res.Status = MaxSatStatus::HardUnsat;
      Res.LowerBound = Res.UpperBound = UINT64_MAX;
      Res.Search = S.stats();
      return Res;
    }

    // Phase saving overwrites polarities during search; re-seed the
    // "program as written" bias before every descent, exactly as the
    // per-round solver rebuild used to.
    auto SolveWith = [&](const std::vector<Lit> &Assumptions) {
      for (Var V : PreferTrue)
        S.setPolarity(V, true);
      ++Res.SatCalls;
      return S.solve(Assumptions);
    };
    // Bound "relax-weight sum <= K" as assumptions only: all relaxation
    // literals off for K == 0 (no counter needed), a counter output
    // otherwise (encoded lazily at exactly the width this bound demands).
    auto BoundAssumptions = [&](uint64_t K) {
      std::vector<Lit> A;
      if (K == 0) {
        A.reserve(RelaxLits.size());
        for (Lit RL : RelaxLits)
          A.push_back(~RL);
      } else {
        ensureCounter(K + 1);
        A.push_back(~CounterOut[K]);
      }
      return A;
    };
    std::vector<LBool> BestModel;
    uint64_t BestCost = 0;
    bool HaveModel = false;

    auto ExtractModel = [&](std::vector<LBool> &Model) {
      Model.resize(NumOrigVars);
      for (Var V = 0; V < NumOrigVars; ++V)
        Model[V] = S.modelValue(V);
      HaveModel = true;
    };
    // Anytime contract: hand back the proven lower bound plus the best
    // model seen so far (harvesting one under a bounded allowance when the
    // budget bit before any model was found).
    auto Unknown = [&]() {
      Res.Status = MaxSatStatus::Unknown;
      Res.LowerBound = LowerBound;
      if (HaveModel) {
        Res.UpperBound = BestCost;
        Res.BestModel = BestModel;
      } else {
        harvestUpperBound(Res);
      }
      Res.Search = S.stats();
      return Res;
    };

    // Probe exactly at the proven lower bound: SAT here is optimal with no
    // descent and no bound-tightening call.
    LBool R = SolveWith(BoundAssumptions(LowerBound));
    if (R == LBool::Undef)
      return Unknown();
    if (R == LBool::True) {
      ExtractModel(BestModel);
      BestCost = modelCost(Soft, BestModel);
      // relax-sum <= LB forces cost <= LB; optimum >= LB pins equality.
      assert(BestCost == LowerBound && "LB-probe model must be optimal");
    } else {
      // Optimum > LowerBound (or the hard part became UNSAT): take one
      // unbounded model as an upper bound, then binary-search between.
      LowerBound += 1;
      R = SolveWith({});
      if (R == LBool::Undef)
        return Unknown();
      if (R == LBool::False) {
        Res.Status = MaxSatStatus::HardUnsat;
        Res.LowerBound = Res.UpperBound = UINT64_MAX;
        Res.Search = S.stats();
        return Res;
      }
      ExtractModel(BestModel);
      BestCost = modelCost(Soft, BestModel);
      assert(BestCost >= LowerBound && "model beat the proven lower bound");
      while (BestCost > LowerBound) {
        uint64_t Mid = LowerBound + (BestCost - LowerBound) / 2;
        R = SolveWith(BoundAssumptions(Mid));
        if (R == LBool::Undef)
          return Unknown();
        if (R == LBool::False) {
          LowerBound = Mid + 1;
          continue;
        }
        ExtractModel(BestModel);
        BestCost = modelCost(Soft, BestModel);
        assert(BestCost <= Mid && "bound assumption did not hold");
      }
    }
    LowerBound = BestCost; // optima are monotone under added hard clauses

    if (BestCost > 0 && !RelaxLits.empty())
      canonicalize(BestModel, BestCost, Res);

    Res.Status = MaxSatStatus::Optimum;
    Res.Model = std::move(BestModel);
    Res.Cost = BestCost;
    Res.LowerBound = Res.UpperBound = BestCost;
    Res.BestModel = Res.Model;
    for (size_t I = 0; I < Soft.size(); ++I)
      if (!clauseSatisfied(Soft[I].Lits, Res.Model))
        Res.FalsifiedSoft.push_back(I);
    Res.Search = S.stats();
    return Res;
  }

private:
  /// Anytime upper bound after budget exhaustion: an unbounded solve under
  /// a small allowance yields a hard-satisfying model whose cost bounds the
  /// optimum from above. Only runs when the query budget tripped, so
  /// unbudgeted flows behave exactly as before.
  void harvestUpperBound(MaxSatResult &Res) {
    if (!S.budgetExhausted() || S.interrupted())
      return;
    Solver::Budget Saved = S.budget();
    S.clearBudget();
    Solver::Budget Allowance;
    Allowance.MaxConflicts = 1000;
    S.setBudget(Allowance);
    for (Var V : PreferTrue)
      S.setPolarity(V, true);
    ++Res.SatCalls;
    if (S.solve() == LBool::True) {
      Res.BestModel.resize(NumOrigVars);
      for (Var V = 0; V < NumOrigVars; ++V)
        Res.BestModel[V] = S.modelValue(V);
      Res.UpperBound = modelCost(Soft, Res.BestModel);
    }
    S.setBudget(Saved);
    S.markBudgetExhausted(); // the query budget stays sticky-exhausted
  }

  /// Canonicalizes the optimum (see Canonical.h): probes run under the
  /// counter bound "sum <= Cost", and soft clause J is forced satisfied by
  /// assuming its relaxation literal off (relaxation and counter clauses
  /// only constrain it upward, so a satisfied clause can always lower it).
  void canonicalize(std::vector<LBool> &Model, uint64_t Cost,
                    MaxSatResult &Res) {
    ensureCounter(Cost + 1);
    Lit HoldOptimum = ~CounterOut[Cost]; // hold sum <= Cost
    CanonicalHooks Hooks;
    Hooks.Probe = [&](const std::vector<Lit> &Extra) -> LBool {
      std::vector<Lit> Assumptions = {HoldOptimum};
      Assumptions.insert(Assumptions.end(), Extra.begin(), Extra.end());
      for (Var V : PreferTrue)
        S.setPolarity(V, true);
      ++Res.SatCalls;
      LBool R = S.solve(Assumptions);
      if (R == LBool::True)
        for (Var V = 0; V < NumOrigVars; ++V)
          Model[V] = S.modelValue(V);
      return R;
    };
    Hooks.SatisfyLit = [&](size_t J) { return ~RelaxLits[J]; };
    Res.CanonicalTruncated = !greedyCanonicalize(Soft, Hooks, Model);
  }

  /// Makes counter outputs available for thresholds 1..MaxNeeded. Encoded
  /// once in the common case; a later blocking clause can push the first
  /// model's cost past the current range, in which case a wider counter is
  /// encoded over the same relaxation literals (the narrower one stays as
  /// inert implications).
  void ensureCounter(uint64_t MaxNeeded) {
    if (CounterOut.size() >= MaxNeeded)
      return;
    ClauseSink Sink{[this](Clause C) { S.addClause(std::move(C)); },
                    [this]() { return S.newVar(); }};
    CounterOut = encodePbCounter(RelaxLits, Weights, MaxNeeded, Sink);
    // Counter outputs are assumed by every bounded solve from here on.
    for (Lit Out : CounterOut)
      S.setFrozen(Out.var(), true);
  }

  Solver S;
  int NumOrigVars;
  std::vector<SoftClause> Soft;
  std::vector<Var> PreferTrue;
  std::vector<Lit> RelaxLits;
  std::vector<uint64_t> Weights;
  std::vector<Lit> CounterOut; ///< CounterOut[J-1] <=> relax-weight sum >= J
  /// Proven lower bound on the current optimum: 0 initially, then the last
  /// optimum (added hard clauses can only raise it). solve() probes here
  /// first, so a re-optimization whose optimum is unchanged costs one SAT
  /// call and no bound tightening.
  uint64_t LowerBound = 0;
  bool HardBroken = false;
};

} // namespace

std::unique_ptr<MaxSatSession>
bugassist::makeLinearSession(const MaxSatInstance &Inst,
                             uint64_t ConflictBudget,
                             const Solver::Options &SolverOpts) {
  return std::make_unique<LinearSessionImpl>(Inst, ConflictBudget, SolverOpts);
}

MaxSatResult bugassist::solveLinear(const MaxSatInstance &Inst,
                                    uint64_t ConflictBudget,
                                    const Solver::Options &SolverOpts) {
  return LinearSessionImpl(Inst, ConflictBudget, SolverOpts).solve();
}
