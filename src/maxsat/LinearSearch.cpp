//===- LinearSearch.cpp - Weighted MaxSAT by model-improving search ----------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// SAT-UNSAT linear search: relax every soft clause with a fresh literal,
// find any model, then repeatedly demand a strictly cheaper model until
// UNSAT; the last model is optimal. This is the weighted engine behind the
// loop-diagnosis extension (paper Section 5.2), whose soft selector
// weights alpha + eta - kappa prioritize early loop iterations.
//
// Incremental: ONE solver lives for the whole session. The relaxed
// formula is loaded once, a saturating sequential weighted counter over
// the relaxation literals is encoded once (and lazily extended when a
// later blocking clause pushes the optimum past its range), and each
// improvement step tightens the bound "sum <= K" purely by assuming the
// negation of the counter output for threshold K+1 -- no re-encoding, so
// learned clauses and heuristic state survive every step and every
// blocking clause of the CoMSS enumeration.
//
//===----------------------------------------------------------------------===//

#include "maxsat/MaxSat.h"

#include "maxsat/Cardinality.h"
#include "sat/Solver.h"

#include <cassert>

using namespace bugassist;

namespace {

uint64_t modelCost(const std::vector<SoftClause> &Soft,
                   const std::vector<LBool> &Model) {
  uint64_t Cost = 0;
  for (const SoftClause &S : Soft)
    if (!clauseSatisfied(S.Lits, Model))
      Cost += S.Weight;
  return Cost;
}

class LinearSessionImpl final : public MaxSatSession {
public:
  LinearSessionImpl(const MaxSatInstance &Inst, uint64_t ConflictBudget,
                    const Solver::Options &SolverOpts)
      : S(SolverOpts), NumOrigVars(Inst.NumVars), Soft(Inst.Soft) {
    S.ensureVars(Inst.NumVars);
    for (const Clause &C : Inst.Hard)
      if (!S.addClause(C)) {
        HardBroken = true;
        return;
      }
    // Relax each soft clause once: soft clause i becomes hard (C_i \/ R_i).
    RelaxLits.reserve(Soft.size());
    Weights.reserve(Soft.size());
    for (const SoftClause &SC : Soft) {
      Lit RL = mkLit(S.newVar());
      Clause C = SC.Lits;
      C.push_back(RL);
      S.addClause(std::move(C));
      // One direction suffices for minimization (a model can always turn R
      // off when the clause is satisfied), but add the equivalence for unit
      // soft clauses so the counter tracks exact costs from the start.
      if (SC.Lits.size() == 1)
        S.addClause({~RL, ~SC.Lits[0]});
      RelaxLits.push_back(RL);
      Weights.push_back(SC.Weight);
    }
    PreferTrue = Inst.PreferTrue;
    if (ConflictBudget)
      S.setConflictBudget(ConflictBudget);
  }

  bool addHardClause(const Clause &C) override {
    if (HardBroken)
      return false;
    HardBroken = !S.addClause(C);
    return !HardBroken;
  }

  const SolverStats &stats() const override { return S.stats(); }

  MaxSatResult solve() override {
    MaxSatResult Res;
    if (HardBroken) {
      Res.Status = MaxSatStatus::HardUnsat;
      Res.Search = S.stats();
      return Res;
    }

    std::vector<LBool> BestModel;
    bool HaveModel = false;
    uint64_t BestCost = 0;
    std::vector<Lit> Assumptions; // empty, then {~Out[BestCost]} per step

    for (;;) {
      // Phase saving overwrites polarities during search; re-seed the
      // "program as written" bias so every descent starts from it, exactly
      // as the per-round solver rebuild used to.
      for (Var V : PreferTrue)
        S.setPolarity(V, true);
      ++Res.SatCalls;
      LBool R = S.solve(Assumptions);
      if (R == LBool::Undef) {
        Res.Status = MaxSatStatus::Unknown;
        Res.Search = S.stats();
        return Res;
      }
      if (R == LBool::False) {
        if (!HaveModel) {
          Res.Status = MaxSatStatus::HardUnsat;
          Res.Search = S.stats();
          return Res;
        }
        break; // BestModel is optimal
      }

      std::vector<LBool> Model(NumOrigVars);
      for (Var V = 0; V < NumOrigVars; ++V)
        Model[V] = S.modelValue(V);
      uint64_t Cost = modelCost(Soft, Model);
      assert((!HaveModel || Cost < BestCost) &&
             "linear search failed to improve");
      BestModel = std::move(Model);
      BestCost = Cost;
      HaveModel = true;
      if (BestCost == 0)
        break;
      // Tighten to "sum of relaxation weights <= BestCost - 1" by assuming
      // the counter output for threshold BestCost false.
      ensureCounter(BestCost);
      Assumptions = {~CounterOut[BestCost - 1]};
    }

    if (BestCost > 0 && !RelaxLits.empty())
      canonicalize(BestModel, BestCost, Res);

    Res.Status = MaxSatStatus::Optimum;
    Res.Model = std::move(BestModel);
    Res.Cost = BestCost;
    for (size_t I = 0; I < Soft.size(); ++I)
      if (!clauseSatisfied(Soft[I].Lits, Res.Model))
        Res.FalsifiedSoft.push_back(I);
    Res.Search = S.stats();
    return Res;
  }

private:
  /// Canonicalizes the optimum: among minimum-weight models, greedily
  /// prefer keeping soft clauses satisfied in index (program) order, so
  /// falsification lands on the latest statements. This pins the reported
  /// CoMSS deterministically regardless of search-heuristic history --
  /// essential now that heuristic state persists across improvement steps
  /// and blocking clauses.
  ///
  /// A clause satisfied by the current witness model commits for free: its
  /// relaxation literal can always be lowered to false (relaxation and
  /// counter clauses only constrain it upward), so the witness extends.
  /// Each falsified position is then located by a galloping binary search
  /// over the maximal additionally-satisfiable prefix ("satisfy [Begin, E)
  /// too" is monotone in E), which costs O(log N) incremental solves per
  /// falsified clause instead of crawling one re-solve per position.
  void canonicalize(std::vector<LBool> &Model, uint64_t Cost,
                    MaxSatResult &Res) {
    ensureCounter(Cost + 1);
    const size_t N = RelaxLits.size();
    std::vector<Lit> Committed = {~CounterOut[Cost]}; // hold sum <= Cost
    // Probe(E): can clauses [Begin, E) be satisfied on top of Committed?
    // On success the witness Model is refreshed.
    auto Probe = [&](size_t Begin, size_t E) -> LBool {
      std::vector<Lit> Assumptions = Committed;
      for (size_t J = Begin; J < E; ++J)
        Assumptions.push_back(~RelaxLits[J]);
      for (Var V : PreferTrue)
        S.setPolarity(V, true);
      ++Res.SatCalls;
      LBool R = S.solve(Assumptions);
      if (R == LBool::True)
        for (Var V = 0; V < NumOrigVars; ++V)
          Model[V] = S.modelValue(V);
      return R;
    };

    size_t Begin = 0; // clauses [0, Begin) are committed satisfied
    while (Begin < N) {
      if (clauseSatisfied(Soft[Begin].Lits, Model)) {
        Committed.push_back(~RelaxLits[Begin]); // free commit
        ++Begin;
        continue;
      }
      // Model falsifies clause Begin. Binary search the largest E with
      // [Begin, E) satisfiable; E == Begin (the current witness) is SAT,
      // E == N is UNSAT (the optimum falsifies something >= Begin).
      size_t Lo = Begin, Hi = N;
      while (Lo + 1 < Hi) {
        size_t Mid = Lo + (Hi - Lo + 1) / 2;
        LBool R = Probe(Begin, Mid);
        if (R == LBool::Undef)
          return; // budget exhausted: keep the optimum found so far
        if (R == LBool::False) {
          Hi = Mid;
          continue;
        }
        // Gallop: the fresh witness may satisfy well past Mid.
        Lo = Mid;
        while (Lo < Hi - 1 && clauseSatisfied(Soft[Lo].Lits, Model))
          ++Lo;
      }
      // [Begin, Lo) satisfiable, [Begin, Lo + 1) not: Lo stays falsified.
      // Re-probe only if the current witness lost it (a failed probe does
      // not restore the earlier model).
      if (Lo > Begin && !clauseSatisfied(Soft[Lo - 1].Lits, Model)) {
        if (Probe(Begin, Lo) != LBool::True)
          return; // budget exhausted mid-search
      }
      for (size_t J = Begin; J < Lo; ++J)
        Committed.push_back(~RelaxLits[J]);
      Begin = Lo + 1;
    }
  }

  /// Makes counter outputs available for thresholds 1..MaxNeeded. Encoded
  /// once in the common case; a later blocking clause can push the first
  /// model's cost past the current range, in which case a wider counter is
  /// encoded over the same relaxation literals (the narrower one stays as
  /// inert implications).
  void ensureCounter(uint64_t MaxNeeded) {
    if (CounterOut.size() >= MaxNeeded)
      return;
    ClauseSink Sink{[this](Clause C) { S.addClause(std::move(C)); },
                    [this]() { return S.newVar(); }};
    CounterOut = encodePbCounter(RelaxLits, Weights, MaxNeeded, Sink);
  }

  Solver S;
  int NumOrigVars;
  std::vector<SoftClause> Soft;
  std::vector<Var> PreferTrue;
  std::vector<Lit> RelaxLits;
  std::vector<uint64_t> Weights;
  std::vector<Lit> CounterOut; ///< CounterOut[J-1] <=> relax-weight sum >= J
  bool HardBroken = false;
};

} // namespace

std::unique_ptr<MaxSatSession>
bugassist::makeLinearSession(const MaxSatInstance &Inst,
                             uint64_t ConflictBudget,
                             const Solver::Options &SolverOpts) {
  return std::make_unique<LinearSessionImpl>(Inst, ConflictBudget, SolverOpts);
}

MaxSatResult bugassist::solveLinear(const MaxSatInstance &Inst,
                                    uint64_t ConflictBudget,
                                    const Solver::Options &SolverOpts) {
  return LinearSessionImpl(Inst, ConflictBudget, SolverOpts).solve();
}
