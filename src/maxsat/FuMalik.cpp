//===- FuMalik.cpp - Core-guided partial MaxSAT ------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// The Fu-Malik algorithm [10], the unsatisfiability-core-guided procedure
// engineered into MSUnCORE [21] that the paper's implementation calls:
// repeatedly solve; while UNSAT, take an unsatisfiable core, attach a fresh
// relaxation variable to every soft clause in the core, constrain exactly
// one relaxation per round to fire, and charge one unit of cost.
//
// This implementation is fully incremental: ONE solver lives for the whole
// session. Hard clauses are loaded once; each soft clause is guarded by an
// assumption literal, and a relaxation round retires the stale guard (stops
// assuming it and releases it as root-level false, so the superseded
// guarded copy is satisfied trivially and reclaimed) before re-guarding the
// relaxed copy. Learned clauses, VSIDS activity, and saved phases survive
// every round -- and every blocking clause the CoMSS enumeration adds.
//
//===----------------------------------------------------------------------===//

#include "maxsat/MaxSat.h"

#include "maxsat/Canonical.h"
#include "maxsat/Cardinality.h"
#include "sat/Solver.h"

#include <algorithm>
#include <cassert>

using namespace bugassist;

bool bugassist::clauseSatisfied(const Clause &C,
                                const std::vector<LBool> &Model) {
  for (Lit L : C) {
    if (L.var() >= static_cast<Var>(Model.size()))
      continue;
    LBool B = Model[L.var()];
    if (L.negated())
      B = lboolNeg(B);
    if (B == LBool::True)
      return true;
  }
  return false;
}

namespace {

void collectFalsifiedSoft(const std::vector<SoftClause> &Soft,
                          MaxSatResult &Res) {
  Res.FalsifiedSoft.clear();
  uint64_t Cost = 0;
  for (size_t I = 0; I < Soft.size(); ++I) {
    if (!clauseSatisfied(Soft[I].Lits, Res.Model)) {
      Res.FalsifiedSoft.push_back(I);
      Cost += Soft[I].Weight;
    }
  }
  Res.Cost = Cost;
}

class FuMalikSessionImpl final : public MaxSatSession {
public:
  FuMalikSessionImpl(const MaxSatInstance &Inst, uint64_t ConflictBudget,
                     const Solver::Options &SolverOpts, bool Canonical)
      : S(SolverOpts), NumOrigVars(Inst.NumVars), Soft(Inst.Soft),
        Canonical(Canonical) {
    S.ensureVars(Inst.NumVars);
    // Frozen contract (sat/Simplifier.h): the session keeps talking about
    // these variables after the first solve() -- guards are assumed,
    // soft/relaxation literals get re-added by later relaxation rounds,
    // canonicalization assumes unit soft literals, and blocking clauses
    // arrive through addHardClause -- so inprocessing must not eliminate
    // them. Inst.Frozen carries the caller's own late-bound variables.
    for (Var V : Inst.Frozen)
      S.setFrozen(V, true);
    for (const SoftClause &SC : Inst.Soft)
      for (Lit L : SC.Lits)
        S.setFrozen(L.var(), true);
    for (const Clause &C : Inst.Hard)
      if (!S.addClause(C)) {
        HardBroken = true;
        return;
      }
    // Guard each soft clause exactly once: assumption literal A_i enforces
    // C_i through the hard clause (C_i \/ ~A_i); a final conflict yields a
    // core over the A_i, i.e., over soft clauses.
    WorkingSoft.reserve(Soft.size());
    GuardOf.reserve(Soft.size());
    for (const SoftClause &SC : Soft) {
      WorkingSoft.push_back(SC.Lits);
      GuardOf.push_back(newGuard(GuardOf.size()));
      Clause Guarded = SC.Lits;
      Guarded.push_back(mkLit(GuardOf.back(), /*Negated=*/true));
      if (!S.addClause(std::move(Guarded)))
        HardBroken = true; // impossible while A is fresh; defensive only
    }
    PreferTrue = Inst.PreferTrue;
    if (ConflictBudget)
      S.setConflictBudget(ConflictBudget);
  }

  bool addHardClause(const Clause &C) override {
    if (HardBroken)
      return false;
    HardBroken = !S.addClause(C);
    return !HardBroken;
  }

  const SolverStats &stats() const override { return S.stats(); }

  Solver &solver() override { return S; }

  /// Member-wise deep copy: the Solver copy carries the arena and learnt
  /// state, and every piece of relaxation bookkeeping (guards, working
  /// soft clauses, rounds) is a plain value. Root level only.
  std::unique_ptr<MaxSatSession> clone() const override {
    return std::unique_ptr<MaxSatSession>(new FuMalikSessionImpl(*this));
  }

  MaxSatResult solve() override {
    MaxSatResult Res;
    for (; !HardBroken;) {
      std::vector<Lit> Assumptions;
      Assumptions.reserve(GuardOf.size());
      for (Var A : GuardOf)
        Assumptions.push_back(mkLit(A));
      // Phase saving overwrites polarities during search; re-seed the
      // "program as written" bias before every descent, exactly as the
      // per-round solver rebuild used to.
      for (Var V : PreferTrue)
        S.setPolarity(V, true);
      ++Res.SatCalls;
      LBool R = S.solve(Assumptions);

      if (R == LBool::Undef) {
        Res.Status = MaxSatStatus::Unknown;
        // Every completed round proved one more soft clause must be
        // falsified, and all weights are >= 1.
        Res.LowerBound = Rounds;
        harvestUpperBound(Res);
        break;
      }
      if (R == LBool::True) {
        Res.Status = MaxSatStatus::Optimum;
        Res.Model.resize(NumOrigVars);
        for (Var V = 0; V < NumOrigVars; ++V)
          Res.Model[V] = S.modelValue(V);
        if (Canonical && Rounds > 0)
          canonicalize(Assumptions, Res);
        collectFalsifiedSoft(Soft, Res);
        // Fu-Malik invariant: relaxation rounds == optimal cost for unit
        // weights. Holds across incremental blocking clauses too, since
        // Rounds accumulates over the session exactly as the optimum does.
        assert(Res.FalsifiedSoft.size() == Rounds &&
               "Fu-Malik cost does not match falsified soft clauses");
        break;
      }

      // UNSAT: harvest the core over assumption literals via the
      // direct-indexed var -> soft map (no nested scan).
      std::vector<size_t> CoreSoft;
      for (Lit FL : S.conflictCore()) {
        Var V = FL.var();
        if (V < static_cast<Var>(SoftIdxOfVar.size()) && SoftIdxOfVar[V] >= 0)
          CoreSoft.push_back(static_cast<size_t>(SoftIdxOfVar[V]));
      }
      std::sort(CoreSoft.begin(), CoreSoft.end());
      CoreSoft.erase(std::unique(CoreSoft.begin(), CoreSoft.end()),
                     CoreSoft.end());

      if (CoreSoft.empty()) {
        // Conflict involves no soft clause: hard part is UNSAT.
        Res.Status = MaxSatStatus::HardUnsat;
        break;
      }

      // Relax: fresh r per core soft clause; exactly one r true. The old
      // guard is retired -- dropped from the assumptions and fixed false at
      // the root, which satisfies the superseded guarded copy so the solver
      // reclaims it -- and the relaxed copy goes in under a fresh guard.
      ClauseSink Sink{[this](Clause C) { S.addClause(std::move(C)); },
                      [this]() { return S.newVar(); }};
      std::vector<Lit> Relax;
      Relax.reserve(CoreSoft.size());
      for (size_t I : CoreSoft) {
        Var OldGuard = GuardOf[I];
        SoftIdxOfVar[OldGuard] = -1;
        S.releaseVar(mkLit(OldGuard, /*Negated=*/true));

        Lit RL = mkLit(S.newVar());
        S.setFrozen(RL.var(), true); // future relaxed copies re-mention it
        WorkingSoft[I].push_back(RL);
        Relax.push_back(RL);

        GuardOf[I] = newGuard(I);
        Clause Guarded = WorkingSoft[I];
        Guarded.push_back(mkLit(GuardOf[I], /*Negated=*/true));
        S.addClause(std::move(Guarded));
      }
      encodeExactlyOne(Relax, Sink);
      ++Rounds;
      if (!S.okay()) {
        Res.Status = MaxSatStatus::HardUnsat;
        break;
      }
    }
    if (HardBroken)
      Res.Status = MaxSatStatus::HardUnsat;
    if (Res.Status == MaxSatStatus::Optimum) {
      Res.LowerBound = Res.UpperBound = Res.Cost;
      Res.BestModel = Res.Model;
    } else if (Res.Status == MaxSatStatus::HardUnsat) {
      Res.LowerBound = Res.UpperBound = UINT64_MAX;
    }
    Res.Search = S.stats();
    return Res;
  }

private:
  /// Canonicalizes the optimum (see Canonical.h). Probes run under the
  /// live guards: any guard-satisfying model falsifies exactly Rounds soft
  /// clauses -- each relaxation round's exactly-one constraint activates
  /// one relaxation literal, capping falsification at Rounds, while the
  /// optimum bounds it from below -- so no explicit cost bound is needed.
  ///
  /// Probe answers are a pure function of (hard clauses, optimum), not of
  /// this session's relaxation history, which is what makes the canonical
  /// set identical across diversified portfolio workers: every
  /// original-optimal falsified set F is representable in ANY terminal
  /// relaxation structure. Inductively, a partial witness falsifying the
  /// unmatched remainder G of F (guards of G off, earlier elements of F
  /// matched to earlier rounds) would satisfy the next core's formula
  /// outright if that core missed G -- contradicting the core's
  /// unsatisfiability -- so each round's core intersects G, one element of
  /// F moves onto the fresh relaxation literal, and after Rounds rounds F
  /// has a perfect matching into the rounds (Hall's condition holds).
  void canonicalize(const std::vector<Lit> &Guards, MaxSatResult &Res) {
    CanonicalHooks Hooks;
    Hooks.Probe = [&](const std::vector<Lit> &Extra) -> LBool {
      std::vector<Lit> Assumptions = Guards;
      Assumptions.insert(Assumptions.end(), Extra.begin(), Extra.end());
      for (Var V : PreferTrue)
        S.setPolarity(V, true);
      ++Res.SatCalls;
      LBool R = S.solve(Assumptions);
      if (R == LBool::True)
        for (Var V = 0; V < NumOrigVars; ++V)
          Res.Model[V] = S.modelValue(V);
      return R;
    };
    Hooks.SatisfyLit = [&](size_t J) { return satisfyLit(J); };
    Res.CanonicalTruncated = !greedyCanonicalize(Soft, Hooks, Res.Model);
  }

  /// Anytime upper bound after budget exhaustion: ANY model of the hard
  /// clauses alone bounds the optimum by its falsified-soft weight, so
  /// probe without the guard assumptions under a small bounded allowance.
  /// Only runs when the query budget (not the legacy per-call conflict
  /// cap) tripped, so unbudgeted flows behave exactly as before.
  void harvestUpperBound(MaxSatResult &Res) {
    if (!S.budgetExhausted() || S.interrupted())
      return;
    Solver::Budget Saved = S.budget();
    S.clearBudget();
    Solver::Budget Allowance;
    Allowance.MaxConflicts = 1000;
    S.setBudget(Allowance);
    ++Res.SatCalls;
    if (S.solve() == LBool::True) {
      Res.BestModel.resize(NumOrigVars);
      for (Var V = 0; V < NumOrigVars; ++V)
        Res.BestModel[V] = S.modelValue(V);
      uint64_t Ub = 0;
      for (const SoftClause &SC : Soft)
        if (!clauseSatisfied(SC.Lits, Res.BestModel))
          Ub += SC.Weight;
      Res.UpperBound = Ub;
    }
    S.setBudget(Saved);
    S.markBudgetExhausted(); // the query budget stays sticky-exhausted
  }

  /// A literal that, assumed true, forces original soft clause \p J to be
  /// satisfied: the clause's own literal when it is unit (the localization
  /// case), otherwise a lazily created selector T with (C_J \/ ~T). The
  /// selector clause is inert when T is unassumed, so it never perturbs
  /// ordinary rounds.
  Lit satisfyLit(size_t J) {
    if (Soft[J].Lits.size() == 1)
      return Soft[J].Lits[0];
    if (SatisfySelector.empty())
      SatisfySelector.assign(Soft.size(), NullVar);
    if (SatisfySelector[J] == NullVar) {
      Var T = S.newVar();
      S.setFrozen(T, true); // assumed by later canonicalization probes
      Clause C = Soft[J].Lits;
      C.push_back(mkLit(T, /*Negated=*/true));
      S.addClause(std::move(C));
      SatisfySelector[J] = T;
    }
    return mkLit(SatisfySelector[J]);
  }

  Var newGuard(size_t SoftIdx) {
    Var A = S.newVar();
    // Guards are assumed every round; releaseVar unfreezes on retirement.
    S.setFrozen(A, true);
    if (static_cast<Var>(SoftIdxOfVar.size()) <= A)
      SoftIdxOfVar.resize(A + 1, -1);
    SoftIdxOfVar[A] = static_cast<int32_t>(SoftIdx);
    return A;
  }

  Solver S;
  int NumOrigVars;
  std::vector<SoftClause> Soft;     ///< original soft clauses (for re-eval)
  std::vector<Var> PreferTrue;
  std::vector<Clause> WorkingSoft;  ///< soft + accumulated relaxation lits
  std::vector<Var> GuardOf;         ///< soft idx -> live guard variable
  std::vector<int32_t> SoftIdxOfVar; ///< guard var -> soft idx, -1 otherwise
  std::vector<Var> SatisfySelector; ///< soft idx -> canonicalization selector
  uint64_t Rounds = 0;
  bool Canonical;
  bool HardBroken = false;
};

} // namespace

std::unique_ptr<MaxSatSession>
bugassist::makeFuMalikSession(const MaxSatInstance &Inst,
                              uint64_t ConflictBudget,
                              const Solver::Options &SolverOpts,
                              bool Canonical) {
  return std::make_unique<FuMalikSessionImpl>(Inst, ConflictBudget, SolverOpts,
                                              Canonical);
}

MaxSatResult bugassist::solveFuMalik(const MaxSatInstance &Inst,
                                     uint64_t ConflictBudget,
                                     const Solver::Options &SolverOpts) {
  return FuMalikSessionImpl(Inst, ConflictBudget, SolverOpts,
                            /*Canonical=*/false)
      .solve();
}
