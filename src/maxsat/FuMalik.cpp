//===- FuMalik.cpp - Core-guided partial MaxSAT ------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// The Fu-Malik algorithm [10], the unsatisfiability-core-guided procedure
// engineered into MSUnCORE [21] that the paper's implementation calls:
// repeatedly solve; while UNSAT, take an unsatisfiable core, attach a fresh
// relaxation variable to every soft clause in the core, constrain exactly
// one relaxation per round to fire, and charge one unit of cost.
//
//===----------------------------------------------------------------------===//

#include "maxsat/MaxSat.h"

#include "maxsat/Cardinality.h"
#include "sat/Solver.h"

#include <algorithm>
#include <cassert>

using namespace bugassist;

bool bugassist::clauseSatisfied(const Clause &C,
                                const std::vector<LBool> &Model) {
  for (Lit L : C) {
    if (L.var() >= static_cast<Var>(Model.size()))
      continue;
    LBool B = Model[L.var()];
    if (L.negated())
      B = lboolNeg(B);
    if (B == LBool::True)
      return true;
  }
  return false;
}

static void collectFalsifiedSoft(const MaxSatInstance &Inst,
                                 MaxSatResult &Res) {
  Res.FalsifiedSoft.clear();
  uint64_t Cost = 0;
  for (size_t I = 0; I < Inst.Soft.size(); ++I) {
    if (!clauseSatisfied(Inst.Soft[I].Lits, Res.Model)) {
      Res.FalsifiedSoft.push_back(I);
      Cost += Inst.Soft[I].Weight;
    }
  }
  Res.Cost = Cost;
}

MaxSatResult bugassist::solveFuMalik(const MaxSatInstance &Inst,
                                     uint64_t ConflictBudget) {
  MaxSatResult Res;

  // Working copies: soft clauses accumulate relaxation literals; extra hard
  // clauses accumulate exactly-one constraints.
  std::vector<Clause> WorkingSoft;
  WorkingSoft.reserve(Inst.Soft.size());
  for (const SoftClause &S : Inst.Soft)
    WorkingSoft.push_back(S.Lits);
  std::vector<Clause> ExtraHard;
  int NextVar = Inst.NumVars;
  uint64_t Rounds = 0;

  for (;;) {
    // Build a fresh solver over the working formula. Each soft clause i is
    // guarded by assumption literal A_i via the hard clause (C_i \/ ~A_i);
    // assuming A_i enforces C_i, and a final conflict yields a core over
    // the A_i, i.e., over soft clauses.
    Solver S;
    S.ensureVars(NextVar);
    bool HardOk = true;
    for (const Clause &C : Inst.Hard)
      if (!S.addClause(C)) {
        HardOk = false;
        break;
      }
    if (HardOk)
      for (const Clause &C : ExtraHard)
        if (!S.addClause(C)) {
          HardOk = false;
          break;
        }
    if (!HardOk) {
      Res.Status = MaxSatStatus::HardUnsat;
      return Res;
    }

    std::vector<Lit> Assumptions;
    std::vector<size_t> AssumptionSoftIdx;
    std::vector<Var> AssumpVarOf(WorkingSoft.size(), NullVar);
    bool GuardsOk = true;
    for (size_t I = 0; I < WorkingSoft.size() && GuardsOk; ++I) {
      Var A = S.newVar();
      AssumpVarOf[I] = A;
      Clause Guarded = WorkingSoft[I];
      Guarded.push_back(mkLit(A, /*Negated=*/true));
      GuardsOk = S.addClause(std::move(Guarded));
      Assumptions.push_back(mkLit(A));
      AssumptionSoftIdx.push_back(I);
    }
    if (!GuardsOk) {
      // A guarded clause can only break the solver if hard clauses force
      // both the guard... impossible since A is fresh; defensive only.
      Res.Status = MaxSatStatus::HardUnsat;
      return Res;
    }

    for (Var V : Inst.PreferTrue)
      S.setPolarity(V, true);
    if (ConflictBudget)
      S.setConflictBudget(ConflictBudget);
    ++Res.SatCalls;
    LBool R = S.solve(Assumptions);

    if (R == LBool::Undef) {
      Res.Status = MaxSatStatus::Unknown;
      return Res;
    }
    if (R == LBool::True) {
      Res.Status = MaxSatStatus::Optimum;
      Res.Model.resize(Inst.NumVars);
      for (Var V = 0; V < Inst.NumVars; ++V)
        Res.Model[V] = S.modelValue(V);
      collectFalsifiedSoft(Inst, Res);
      // Fu-Malik invariant: rounds of relaxation == optimal cost for
      // unit weights.
      assert(Res.FalsifiedSoft.size() == Rounds &&
             "Fu-Malik cost does not match falsified soft clauses");
      return Res;
    }

    // UNSAT: harvest the core over assumption literals.
    std::vector<size_t> CoreSoft;
    for (Lit FL : S.conflictCore()) {
      // conflictCore holds assumption literals (possibly negated forms);
      // map the variable back to its soft clause.
      Var V = FL.var();
      for (size_t I = 0; I < AssumpVarOf.size(); ++I)
        if (AssumpVarOf[I] == V) {
          CoreSoft.push_back(I);
          break;
        }
    }
    std::sort(CoreSoft.begin(), CoreSoft.end());
    CoreSoft.erase(std::unique(CoreSoft.begin(), CoreSoft.end()),
                   CoreSoft.end());

    if (CoreSoft.empty()) {
      // Conflict involves no soft clause: hard part is UNSAT.
      Res.Status = MaxSatStatus::HardUnsat;
      return Res;
    }

    // Relax: fresh r per core soft clause; exactly one r true.
    ClauseSink Sink{
        [&ExtraHard](Clause C) { ExtraHard.push_back(std::move(C)); },
        [&NextVar]() { return NextVar++; }};
    std::vector<Lit> Relax;
    for (size_t I : CoreSoft) {
      Lit RL = mkLit(NextVar++);
      WorkingSoft[I].push_back(RL);
      Relax.push_back(RL);
    }
    encodeExactlyOne(Relax, Sink);
    ++Rounds;
  }
}
