//===- MaxSat.h - Partial MaxSAT interfaces ---------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partial (weighted) MaxSAT: given hard clauses that must hold and soft
/// clauses with weights, find an assignment satisfying all hard clauses
/// that minimizes the total weight of falsified soft clauses. The paper
/// (Section 3.3) uses this to compute CoMSSes -- minimal sets of clauses
/// whose removal restores satisfiability -- which map to suspect program
/// statements.
///
/// Two engines are provided, each running as an *incremental session* over
/// one persistent CDCL solver (MiniSAT 1.14-style assumption interface, as
/// engineered in MSUnCORE [21], the solver the paper used):
///
///  * Fu-Malik [10] (unweighted): every soft clause is guarded once by an
///    assumption literal A_i via the hard clause (C_i \/ ~A_i). When a
///    solve under all guards yields an unsatisfiable core, the core's soft
///    clauses are relaxed in place: the old guard is *retired* -- it stops
///    being assumed and the unit ~A_old is added, which satisfies the
///    stale guarded copy trivially and lets the solver reclaim it -- and
///    the relaxed copy (C_i \/ r_1 \/ ... \/ r_k \/ ~A_new) is added under
///    a fresh guard. Hard clauses are therefore loaded exactly once, and
///    learned clauses, VSIDS activity, and saved phases survive across
///    relaxation rounds. Guard-retirement invariant: at any time exactly
///    one guard per soft clause is live (assumed); every retired guard is
///    root-level false, so each soft clause has exactly one active guarded
///    copy and the working formula equals the classic per-round rebuild.
///
///  * Linear search (weighted): soft clauses are relaxed once with fresh
///    literals and the session tracks a proven lower bound on the optimum
///    (the previous optimum, across blocking clauses). Each solve() probes
///    at that bound first -- SAT is optimal immediately -- and only falls
///    back to an unbounded model plus a binary search when the optimum
///    moved. Bounds "sum <= K" are pure assumptions: all relaxation
///    literals off for K = 0, otherwise ~Out_{K+1} on a *saturating*
///    sequential weighted counter encoded lazily at the width the first
///    UNSAT bound demands (incremental cardinality in the style of
///    Martins et al.), never re-encoded per step.
///
/// Algorithm 1's CoMSS enumeration keeps one session alive across
/// diagnoses: each blocking clause beta is added incrementally through
/// MaxSatSession::addHardClause instead of restarting MaxSAT from scratch.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_MAXSAT_MAXSAT_H
#define BUGASSIST_MAXSAT_MAXSAT_H

#include "cnf/DimacsReader.h"
#include "cnf/Lit.h"
#include "sat/Solver.h"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace bugassist {

/// One soft clause with its violation weight.
struct SoftClause {
  Clause Lits;
  uint64_t Weight = 1;
};

/// A partial MaxSAT instance. NumVars must cover every literal mentioned;
/// solvers allocate relaxation variables above it.
struct MaxSatInstance {
  int NumVars = 0;
  std::vector<Clause> Hard;
  std::vector<SoftClause> Soft;
  /// Branching hint: variables whose saved phase should start at true.
  /// BugAssist passes the selector variables here, so the search departs
  /// from "the program as written" instead of "every statement disabled".
  std::vector<Var> PreferTrue;
  /// Variables the *caller* will still talk about after the session is
  /// built: sessions freeze them (Solver::setFrozen) so inprocessing never
  /// eliminates them. Soft-clause variables and session auxiliaries
  /// (guards, relaxation selectors, counter outputs) are frozen
  /// automatically; list here only variables mentioned by clauses the
  /// caller adds later through addHardClause -- serve mode passes the
  /// trace formula's test-interface bits (TraceFormula::sharedInstance),
  /// which per-query test clauses bind after the preprocessed base
  /// session was cloned.
  std::vector<Var> Frozen;
};

/// Converts a parsed DIMACS/WCNF instance (cnf/DimacsReader.h) into a
/// MaxSAT instance -- the one bridge used by the CLI, the bench sweep and
/// the tests. \p AnyNonUnitWeight (optional) receives whether any soft
/// weight differs from 1, the cue that Fu-Malik (which ignores weights)
/// is the wrong engine for the instance.
inline MaxSatInstance toMaxSatInstance(DimacsInstance D,
                                       bool *AnyNonUnitWeight = nullptr) {
  MaxSatInstance Inst;
  Inst.NumVars = D.NumVars;
  Inst.Hard = std::move(D.Hard);
  Inst.Soft.reserve(D.Soft.size());
  bool AnyWeight = false;
  for (DimacsSoftClause &C : D.Soft) {
    AnyWeight = AnyWeight || C.Weight != 1;
    Inst.Soft.push_back({std::move(C.Lits), C.Weight});
  }
  if (AnyNonUnitWeight)
    *AnyNonUnitWeight = AnyWeight;
  return Inst;
}

enum class MaxSatStatus {
  Optimum,   ///< optimal model found
  HardUnsat, ///< hard clauses alone are inconsistent
  Unknown    ///< resource budget exhausted
};

/// Result of a MaxSAT call. On Optimum, Model satisfies all hard clauses,
/// Cost is the total weight of falsified soft clauses (provably minimal),
/// and FalsifiedSoft lists their indices -- for BugAssist's encoding this is
/// exactly the CoMSS (paper Section 3.3).
struct MaxSatResult {
  MaxSatStatus Status = MaxSatStatus::Unknown;
  uint64_t Cost = 0;
  std::vector<LBool> Model;
  std::vector<size_t> FalsifiedSoft;
  /// SAT calls issued during this solve().
  uint64_t SatCalls = 0;
  /// True when a conflict budget truncated the canonicalization pass: the
  /// optimum (cost) is still proven, but FalsifiedSoft may not be the
  /// canonical set. A portfolio never lets such a result win a race; note
  /// that budgeted runs are best-effort regardless -- where a budget bites
  /// under clause exchange is timing-dependent -- so the byte-identical
  /// thread-count guarantee applies to unbudgeted runs.
  bool CanonicalTruncated = false;
  // --- anytime bounds (meaningful on every status) --------------------------
  // On Optimum both bounds equal Cost and BestModel is the optimal model.
  // On Unknown (budget exhausted) they are the best-so-far knowledge:
  // LowerBound is a proven lower bound on the optimum (0 when nothing was
  // proven), UpperBound is the cost of BestModel when one was found
  // (UINT64_MAX and an empty BestModel otherwise). On HardUnsat both
  // bounds are UINT64_MAX.
  /// Proven lower bound on the optimum cost.
  uint64_t LowerBound = 0;
  /// Cost of the best model found so far (UINT64_MAX when none).
  uint64_t UpperBound = UINT64_MAX;
  /// Best hard-satisfying model found so far; witnesses UpperBound.
  std::vector<LBool> BestModel;
  /// Cumulative statistics of the underlying solver (for a session, totals
  /// since the session was created; for one-shot calls, totals of the call).
  SolverStats Search;

  /// True when the run finished (Optimum or HardUnsat) rather than running
  /// out of budget.
  bool decided() const { return Status != MaxSatStatus::Unknown; }
};

/// An incremental MaxSAT session: one persistent solver, repeatedly
/// re-optimized as hard (blocking) clauses are added. This is the engine
/// behind Algorithm 1's CoMSS enumeration.
///
/// Contract (all implementations):
///  * solve() and addHardClause() may be interleaved freely and called
///    any number of times; each solve() optimizes the initial instance
///    plus every clause added so far, and engine state (learnt clauses,
///    activities, relaxations, PB bounds) carries over between calls.
///  * Calls must come from one thread at a time; a session is not
///    internally synchronized. (PortfolioSession is itself a
///    MaxSatSession and manages its workers' threads internally.)
///  * After addHardClause() returns false -- or solve() reports
///    HardUnsat -- the hard formula is permanently unsatisfiable; further
///    solve() calls keep reporting HardUnsat.
///  * Soft clauses are fixed at creation; "removing" one (Algorithm 1's
///    deviation, see core/BugAssist.cpp) is expressed through hard
///    blocking clauses instead, which keeps reported costs honest.
class MaxSatSession {
public:
  virtual ~MaxSatSession() = default;

  /// Optimizes the current formula (initial instance plus every hard
  /// clause added so far). May be called repeatedly; state carries over.
  virtual MaxSatResult solve() = 0;

  /// Incrementally adds a hard clause (Algorithm 1's beta). \returns false
  /// when the hard formula became unsatisfiable (next solve() reports
  /// HardUnsat).
  virtual bool addHardClause(const Clause &C) = 0;

  /// Live statistics of the persistent solver, including the learnt-tier
  /// gauges, restart/blocked-restart counters and average LBD. The same
  /// totals are snapshotted into MaxSatResult::Search by solve().
  virtual const SolverStats &stats() const = 0;

  /// The persistent solver behind this session. Exposed so a portfolio can
  /// interrupt a racing worker, install clause-exchange hooks, and
  /// aggregate solver state; ordinary callers should not steer the solver
  /// mid-session.
  virtual Solver &solver() = 0;

  /// Installs a query-wide resource budget (sat/Solver.h's Solver::Budget)
  /// on the session's solver(s). When it is exhausted mid-solve() the
  /// session returns an anytime result: Status Unknown with the
  /// LowerBound/UpperBound/BestModel fields carrying the best-so-far
  /// knowledge. Re-install (or clear) before each user query; the
  /// exhausted state is sticky. The default forwards to solver().
  virtual void setBudget(const Solver::Budget &B) { solver().setBudget(B); }

  /// Removes any budget and clears the exhausted state.
  virtual void clearBudget() { solver().clearBudget(); }

  /// Deep-copies the whole session -- solver (arena, learnts, activities,
  /// saved phases), relaxation structure, and proven bounds -- into an
  /// independent session that continues from exactly the same state. Root
  /// level only: cloning while a solve() is in flight is undefined.
  ///
  /// This is the serve-mode "one encoding, many queries" primitive
  /// (src/serve/FormulaCache.h): a *base* session is built once per cached
  /// trace formula from the shared hard clauses + soft selectors and never
  /// solved; each query clones it and adds its per-test clauses through
  /// addHardClause. Because the base is immutable after construction,
  /// concurrent clone() calls from several pool workers are safe. The
  /// canonicalization contract makes the shortcut sound: a cloned session's
  /// search may diverge from a freshly built one's, but the reported
  /// optimum cost and canonical falsified-soft set depend only on the
  /// formula, so localization reports stay byte-identical (see
  /// docs/SERVE.md, "Determinism contract").
  ///
  /// \returns nullptr when the engine does not support cloning (portfolio
  /// and reference sessions); callers must fall back to building a fresh
  /// session from the full instance.
  virtual std::unique_ptr<MaxSatSession> clone() const { return nullptr; }
};

/// Creates a Fu-Malik core-guided session (unweighted; weights ignored).
/// \p ConflictBudget bounds each underlying SAT call (0 = unlimited);
/// \p SolverOpts selects the persistent solver's search policies (defaults
/// to the Glucose-style LBD retention + EMA restarts; pass
/// Solver::Options::seed() to pin the original behavior). With
/// \p Canonical the reported optimum is canonicalized (greedily prefer
/// satisfying soft clauses in index order, see Canonical.h), making the
/// reported CoMSS independent of search history -- the localization
/// drivers and every portfolio worker enable this so results are
/// byte-identical at any thread count.
std::unique_ptr<MaxSatSession>
makeFuMalikSession(const MaxSatInstance &Inst, uint64_t ConflictBudget = 0,
                   const Solver::Options &SolverOpts = Solver::Options(),
                   bool Canonical = false);

/// Creates a weighted linear-search session with an incremental PB bound.
/// Linear-search results are always canonical.
std::unique_ptr<MaxSatSession>
makeLinearSession(const MaxSatInstance &Inst, uint64_t ConflictBudget = 0,
                  const Solver::Options &SolverOpts = Solver::Options());

/// Engine dispatch used by the localization drivers.
inline std::unique_ptr<MaxSatSession>
makeMaxSatSession(const MaxSatInstance &Inst, bool Weighted,
                  uint64_t ConflictBudget = 0,
                  const Solver::Options &SolverOpts = Solver::Options(),
                  bool Canonical = false) {
  return Weighted ? makeLinearSession(Inst, ConflictBudget, SolverOpts)
                  : makeFuMalikSession(Inst, ConflictBudget, SolverOpts,
                                       Canonical);
}

/// Fu-Malik core-guided partial MaxSAT (unweighted; weights ignored).
/// One-shot convenience wrapper over makeFuMalikSession.
MaxSatResult solveFuMalik(const MaxSatInstance &Inst,
                          uint64_t ConflictBudget = 0,
                          const Solver::Options &SolverOpts = Solver::Options());

/// Weighted partial MaxSAT by SAT-UNSAT linear search over a PB bound.
/// One-shot convenience wrapper over makeLinearSession.
MaxSatResult solveLinear(const MaxSatInstance &Inst,
                         uint64_t ConflictBudget = 0,
                         const Solver::Options &SolverOpts = Solver::Options());

/// Evaluates \p C under \p Model. Clauses with unassigned variables count
/// as falsified only if no literal is true.
bool clauseSatisfied(const Clause &C, const std::vector<LBool> &Model);

} // namespace bugassist

#endif // BUGASSIST_MAXSAT_MAXSAT_H
