//===- MaxSat.h - Partial MaxSAT interfaces ---------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partial (weighted) MaxSAT: given hard clauses that must hold and soft
/// clauses with weights, find an assignment satisfying all hard clauses
/// that minimizes the total weight of falsified soft clauses. The paper
/// (Section 3.3) uses this to compute CoMSSes -- minimal sets of clauses
/// whose removal restores satisfiability -- which map to suspect program
/// statements.
///
/// Two solvers are provided:
///  * solveFuMalik: the unsatisfiable-core-guided algorithm of Fu & Malik
///    [10], as engineered in MSUnCORE [21], the solver the paper used.
///    Unweighted (treats every soft clause as weight 1).
///  * solveLinear: weighted model-improving linear search with a
///    pseudo-Boolean bound (sequential weighted counter); handles the
///    weighted instances of the loop-diagnosis extension (paper Eq. 3).
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_MAXSAT_MAXSAT_H
#define BUGASSIST_MAXSAT_MAXSAT_H

#include "cnf/Lit.h"

#include <cstdint>
#include <vector>

namespace bugassist {

/// One soft clause with its violation weight.
struct SoftClause {
  Clause Lits;
  uint64_t Weight = 1;
};

/// A partial MaxSAT instance. NumVars must cover every literal mentioned;
/// solvers allocate relaxation variables above it.
struct MaxSatInstance {
  int NumVars = 0;
  std::vector<Clause> Hard;
  std::vector<SoftClause> Soft;
  /// Branching hint: variables whose saved phase should start at true.
  /// BugAssist passes the selector variables here, so the search departs
  /// from "the program as written" instead of "every statement disabled".
  std::vector<Var> PreferTrue;
};

enum class MaxSatStatus {
  Optimum,   ///< optimal model found
  HardUnsat, ///< hard clauses alone are inconsistent
  Unknown    ///< resource budget exhausted
};

/// Result of a MaxSAT call. On Optimum, Model satisfies all hard clauses,
/// Cost is the total weight of falsified soft clauses (provably minimal),
/// and FalsifiedSoft lists their indices -- for BugAssist's encoding this is
/// exactly the CoMSS (paper Section 3.3).
struct MaxSatResult {
  MaxSatStatus Status = MaxSatStatus::Unknown;
  uint64_t Cost = 0;
  std::vector<LBool> Model;
  std::vector<size_t> FalsifiedSoft;
  uint64_t SatCalls = 0;
};

/// Fu-Malik core-guided partial MaxSAT (unweighted; weights ignored).
/// \p ConflictBudget bounds each underlying SAT call (0 = unlimited).
MaxSatResult solveFuMalik(const MaxSatInstance &Inst,
                          uint64_t ConflictBudget = 0);

/// Weighted partial MaxSAT by SAT-UNSAT linear search over a PB bound.
MaxSatResult solveLinear(const MaxSatInstance &Inst,
                         uint64_t ConflictBudget = 0);

/// Evaluates \p C under \p Model. Clauses with unassigned variables count
/// as falsified only if no literal is true.
bool clauseSatisfied(const Clause &C, const std::vector<LBool> &Model);

} // namespace bugassist

#endif // BUGASSIST_MAXSAT_MAXSAT_H
