//===- Cardinality.cpp - Cardinality & PB encodings -------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "maxsat/Cardinality.h"

#include <algorithm>
#include <cassert>

using namespace bugassist;

void bugassist::encodeAtMostOne(const std::vector<Lit> &Lits,
                                ClauseSink &Sink) {
  size_t N = Lits.size();
  if (N <= 1)
    return;
  if (N <= 5) {
    // Pairwise: (~a \/ ~b) for every pair.
    for (size_t I = 0; I < N; ++I)
      for (size_t J = I + 1; J < N; ++J)
        Sink.AddClause({~Lits[I], ~Lits[J]});
    return;
  }
  // Sequential / ladder encoding: S_i means "some lit among the first i+1
  // is true".
  std::vector<Lit> S(N - 1);
  for (size_t I = 0; I + 1 < N; ++I)
    S[I] = mkLit(Sink.NewVar());
  Sink.AddClause({~Lits[0], S[0]});
  for (size_t I = 1; I + 1 < N; ++I) {
    Sink.AddClause({~Lits[I], S[I]});
    Sink.AddClause({~S[I - 1], S[I]});
    Sink.AddClause({~Lits[I], ~S[I - 1]});
  }
  Sink.AddClause({~Lits[N - 1], ~S[N - 2]});
}

void bugassist::encodeExactlyOne(const std::vector<Lit> &Lits,
                                 ClauseSink &Sink) {
  assert(!Lits.empty() && "exactly-one over empty set is unsatisfiable");
  Sink.AddClause(Clause(Lits.begin(), Lits.end())); // at least one
  encodeAtMostOne(Lits, Sink);
}

void bugassist::encodePbLeq(const std::vector<Lit> &Lits,
                            const std::vector<uint64_t> &Weights,
                            uint64_t Bound, ClauseSink &Sink) {
  assert(Lits.size() == Weights.size() && "weight per literal required");
  size_t N = Lits.size();
  if (N == 0)
    return;

  // Literals whose weight alone exceeds the bound must be false.
  std::vector<Lit> Ls;
  std::vector<uint64_t> Ws;
  for (size_t I = 0; I < N; ++I) {
    assert(Weights[I] > 0 && "zero-weight literal");
    if (Weights[I] > Bound) {
      Sink.AddClause({~Lits[I]});
      continue;
    }
    Ls.push_back(Lits[I]);
    Ws.push_back(Weights[I]);
  }
  N = Ls.size();
  if (N == 0 || Bound == 0)
    return;
  uint64_t Total = 0;
  for (uint64_t W : Ws)
    Total += W;
  if (Total <= Bound)
    return; // constraint is vacuous

  // Sequential weighted counter. Register R[i][j] (1-based j .. Bound) means
  // "the weighted sum of the first i+1 literals is >= j".
  auto Reg = [&](std::vector<std::vector<Lit>> &R, size_t I,
                 uint64_t J) -> Lit { return R[I][J - 1]; };

  std::vector<std::vector<Lit>> R(N, std::vector<Lit>(Bound));
  for (size_t I = 0; I < N; ++I)
    for (uint64_t J = 1; J <= Bound; ++J)
      R[I][J - 1] = mkLit(Sink.NewVar());

  // Base: first literal sets registers 1..w0.
  for (uint64_t J = 1; J <= std::min(Ws[0], Bound); ++J)
    Sink.AddClause({~Ls[0], Reg(R, 0, J)});

  for (size_t I = 1; I < N; ++I) {
    // Carry: sum >= j stays >= j.
    for (uint64_t J = 1; J <= Bound; ++J)
      Sink.AddClause({~Reg(R, I - 1, J), Reg(R, I, J)});
    // Adding literal i contributes w_i.
    for (uint64_t J = 1; J <= std::min(Ws[I], Bound); ++J)
      Sink.AddClause({~Ls[I], Reg(R, I, J)});
    for (uint64_t J = 1; J + Ws[I] <= Bound; ++J)
      Sink.AddClause({~Ls[I], ~Reg(R, I - 1, J), Reg(R, I, J + Ws[I])});
    // Overflow: literal i true while prefix already at Bound+1-w_i.
    if (Bound + 1 > Ws[I] && Bound + 1 - Ws[I] <= Bound)
      Sink.AddClause({~Ls[I], ~Reg(R, I - 1, Bound + 1 - Ws[I])});
  }
  // The very first literal alone cannot overflow (weights > Bound already
  // filtered), so no base overflow clause is needed.
}

std::vector<Lit> bugassist::encodePbCounter(const std::vector<Lit> &Lits,
                                            const std::vector<uint64_t> &Weights,
                                            uint64_t MaxSum, ClauseSink &Sink) {
  assert(Lits.size() == Weights.size() && "weight per literal required");
  assert(MaxSum > 0 && "counter needs at least one threshold");
  size_t N = Lits.size();
  if (N == 0) {
    // Sum is always 0; fresh unconstrained outputs (never forced true).
    std::vector<Lit> Out(MaxSum);
    for (uint64_t J = 0; J < MaxSum; ++J)
      Out[J] = mkLit(Sink.NewVar());
    return Out;
  }

  // R[j-1] after row i means "weighted sum of the first i+1 literals >= j"
  // (one-directional: high sums force registers true; assuming a register
  // false prunes). Saturation: contributions past MaxSum land on MaxSum.
  auto Sat = [MaxSum](uint64_t J) { return J < MaxSum ? J : MaxSum; };
  std::vector<Lit> Prev(MaxSum), Cur(MaxSum);
  for (size_t I = 0; I < N; ++I) {
    assert(Weights[I] > 0 && "zero-weight literal");
    for (uint64_t J = 1; J <= MaxSum; ++J)
      Cur[J - 1] = mkLit(Sink.NewVar());
    // Direct: literal i alone reaches thresholds 1..min(w_i, MaxSum).
    for (uint64_t J = 1; J <= Sat(Weights[I]); ++J)
      Sink.AddClause({~Lits[I], Cur[J - 1]});
    if (I > 0) {
      for (uint64_t J = 1; J <= MaxSum; ++J) {
        // Carry: prefix sum >= j stays >= j.
        Sink.AddClause({~Prev[J - 1], Cur[J - 1]});
        // Add: literal i lifts a prefix at j to min(j + w_i, MaxSum).
        Sink.AddClause({~Lits[I], ~Prev[J - 1], Cur[Sat(J + Weights[I]) - 1]});
      }
    }
    std::swap(Prev, Cur);
  }
  return Prev;
}
