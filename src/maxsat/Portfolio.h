//===- Portfolio.h - Parallel portfolio MaxSAT / SAT -----------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-threaded portfolio in the ManySAT / Glucose-syrup tradition:
/// N diversified solvers race on the same problem, the first answer wins,
/// the losers are cancelled cooperatively (Solver::interrupt), and workers
/// share low-LBD learnt clauses through a bounded exchange buffer.
///
/// Two entry points:
///
///  * PortfolioSession races N *persistent* incremental MaxSAT sessions
///    (Fu-Malik or linear search) behind the ordinary MaxSatSession
///    interface, so Algorithm 1's CoMSS enumeration parallelizes without
///    touching engine logic. Each worker keeps its own solver alive across
///    relaxation rounds and blocking clauses, preserving the PR 1
///    incrementality; clause sharing is restricted to the original
///    variable prefix (every session's auxiliary encoding -- guards,
///    relaxation selectors, counter internals -- is a conservative
///    extension of the shared hard clauses, so a learnt clause over
///    original variables is implied by the hard clauses alone and sound in
///    every worker). Results are deterministic at every thread count:
///    workers canonicalize their optima (Canonical.h), so whichever worker
///    wins reports the same cost and the same falsified-soft set.
///
///  * racePortfolioSat races plain solvers on one CNF formula -- the
///    conflict-heavy SAT benchmark path.
///
/// Diversification follows a fixed recipe (diversifiedOptions): worker 0
/// is always the unmodified base configuration, the others vary the
/// restart policy (Luby fast/slow vs. dual-EMA aggressive/conservative),
/// the retention policy (LBD tiers vs. activity halving), initial phase,
/// random-branch frequency, and RNG seed.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_MAXSAT_PORTFOLIO_H
#define BUGASSIST_MAXSAT_PORTFOLIO_H

#include "maxsat/MaxSat.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace bugassist {

/// Thread-safe bounded buffer of shared learnt clauses. Workers publish
/// low-LBD learnts; every *other* worker fetches each entry exactly once
/// (per-worker cursors over a monotone sequence). The buffer is a bounded
/// FIFO: when full, the oldest entries are dropped -- a slow consumer loses
/// old glue clauses instead of stalling the producers.
///
/// Invariants:
///  * Every published entry carries a monotonically increasing sequence
///    number; a worker's cursor only moves forward, so no clause is ever
///    delivered twice to the same worker and a worker never sees its own
///    publications (entries record their Source).
///  * Dropping only evicts from the front (the oldest sequence numbers);
///    a cursor lagging behind the new front is clamped forward at its
///    next fetch and the loss is counted in dropped(). Delivery is
///    therefore at-most-once, never out of order.
///  * Soundness of what flows through here is the *publisher's* burden:
///    portfolio sessions only export clauses over the original-variable
///    prefix (Solver::setShareHooks ShareVarLimit), which are implied by
///    the shared hard clauses alone -- see the file comment. The exchange
///    itself never inspects clause contents.
///  * All methods are safe to call concurrently from any thread; each
///    takes one short critical section (no allocation while locked beyond
///    the entry copy).
class ClauseExchange {
public:
  explicit ClauseExchange(size_t NumWorkers, size_t Capacity = 4096);

  /// Publishes one clause from \p Worker (not delivered back to it).
  void publish(size_t Worker, const std::vector<Lit> &Lits, uint32_t Lbd);

  /// Pulls the next unseen foreign clause for \p Worker. \returns false
  /// when the worker is fully caught up. Matches Solver::ImportFn.
  bool fetch(size_t Worker, std::vector<Lit> &Lits, uint32_t &Lbd);

  uint64_t published() const;
  uint64_t dropped() const;

private:
  struct Entry {
    std::vector<Lit> Lits;
    uint32_t Lbd;
    size_t Source;
  };

  mutable std::mutex M;
  std::deque<Entry> Buf;
  uint64_t BaseSeq = 0; ///< sequence number of Buf.front()
  std::vector<uint64_t> Cursor; ///< per-worker next sequence to read
  uint64_t Published = 0;
  uint64_t Dropped = 0;
  size_t Capacity;
};

/// The deterministic diversification recipe: worker 0 is the unmodified
/// \p Base (the portfolio's anchor -- a one-worker portfolio behaves
/// exactly like the plain session), workers 1+ permute restart policy,
/// retention policy, initial phase, and random-branch frequency, each
/// under its own RNG seed. Cycles with period 8.
Solver::Options diversifiedOptions(const Solver::Options &Base,
                                   size_t WorkerId);

/// Outcome of one raced plain-SAT solve.
struct SatRaceResult {
  LBool Result = LBool::Undef;
  int Winner = -1; ///< worker that produced the decision (-1: none)
  /// The winning worker's model over the original variables [0, NumVars);
  /// empty unless Result is True.
  std::vector<LBool> Model;
  SolverStats Aggregate; ///< summed over all workers (incl. export/import)
  std::vector<SolverStats> PerWorker;
  /// Workers whose thread died on an escaped exception (fault-isolated;
  /// the race continued on the survivors).
  uint64_t Faults = 0;
};

/// Races \p Threads diversified solvers over \p Clauses; first decision
/// wins and interrupts the rest. With Threads <= 1 this degenerates to a
/// plain single solver on the calling thread. A non-unlimited \p Bud is
/// installed on every worker; when all survivors exhaust it the race
/// returns Undef instead of running forever. A worker thread that dies on
/// an exception (std::bad_alloc, an injected fault) is retired and counted
/// in SatRaceResult::Faults; the race continues on the rest.
SatRaceResult
racePortfolioSat(const std::vector<Clause> &Clauses, int NumVars,
                 size_t Threads,
                 const Solver::Options &Base = Solver::Options(),
                 const Solver::Budget &Bud = Solver::Budget());

/// Aggregate view of a portfolio race, refreshed after every solve().
struct PortfolioStats {
  std::vector<uint64_t> WinsByWorker;
  int LastWinner = -1;
  uint64_t ClausesPublished = 0; ///< entries accepted by the exchange
  uint64_t ClausesDropped = 0;   ///< entries evicted before full delivery
  /// Workers retired after an exception escaped their solve() (fault
  /// isolation; the round continues on the survivors).
  uint64_t WorkerFaults = 0;
  /// Retired workers rebuilt at a later solve(): the pool self-heals
  /// between rounds, so a transient fault costs one round of parallelism,
  /// not the session's lifetime.
  uint64_t WorkerRespawns = 0;
};

/// N racing persistent MaxSAT sessions behind the MaxSatSession interface.
///
/// Threading contract: solve() spawns one thread per worker and joins all
/// of them before returning, so *between* calls the portfolio is plain
/// single-threaded state -- addHardClause, stats, and portfolioStats must
/// only be used between solves (the MaxSatSession one-caller rule).
/// Because addHardClause broadcasts to every worker before any further
/// solve, all workers always optimize the same formula; an interrupted
/// loser resumes from consistent engine state on the next round rather
/// than restarting.
class PortfolioSession final : public MaxSatSession {
public:
  /// \p Threads workers race each solve(); \p Base seeds the
  /// diversification recipe. Engine choice and budget match
  /// makeMaxSatSession. Workers canonicalize their optima, so results are
  /// identical to the single-threaded canonical session at every thread
  /// count.
  PortfolioSession(const MaxSatInstance &Inst, bool Weighted, size_t Threads,
                   uint64_t ConflictBudget = 0,
                   const Solver::Options &Base = Solver::Options());
  ~PortfolioSession() override;

  /// Races all workers; the first Optimum/HardUnsat answer wins and the
  /// losers are interrupted (their sessions stay consistent and resume on
  /// the next round). Result::Search carries the aggregated stats.
  ///
  /// Self-healing: workers retired by a crash in an earlier round are
  /// rebuilt first -- a fresh session over the stored instance plus every
  /// addHardClause broadcast so far, under the same diversified options
  /// and the current budget -- so the race always starts at full width
  /// (portfolioStats().WorkerRespawns counts the rebuilds). A worker that
  /// crashes *this* round is raced without only for the remainder of the
  /// round.
  MaxSatResult solve() override;

  /// Broadcasts the clause (Algorithm 1's beta) to every worker.
  bool addHardClause(const Clause &C) override;

  /// Summed SolverStats over all workers, including clause-exchange
  /// counters (ClausesExported / ClausesImported).
  const SolverStats &stats() const override;

  /// The anchor worker's solver (worker 0 runs the base configuration).
  Solver &solver() override;

  /// Installs the budget on every surviving worker, and records it so a
  /// later respawn starts under the same budget (retired workers are left
  /// alone until they are rebuilt).
  void setBudget(const Solver::Budget &B) override;
  void clearBudget() override;

  size_t workers() const { return Workers.size(); }
  /// Workers currently in the race. A worker whose solve() let an
  /// exception escape sits out until the next solve() rebuilds it.
  size_t aliveWorkers() const;
  bool workerRetired(size_t Id) const { return Retired[Id] != 0; }
  const PortfolioStats &portfolioStats() const { return PStats; }

private:
  /// Rebuilds every retired worker from the stored instance (hooks before
  /// any solving, no independent preprocess -- see the .cpp comment).
  void respawnRetired();

  std::unique_ptr<ClauseExchange> Exchange; // outlives the workers below
  std::vector<std::unique_ptr<MaxSatSession>> Workers;
  std::vector<char> Retired; ///< 1 = crashed, sitting out until respawned
  PortfolioStats PStats;
  mutable SolverStats Agg;

  // Everything a respawn needs to rebuild a worker equivalent to the
  // survivors' formula: the construction inputs, the addHardClause
  // broadcasts so far, and the budget currently installed.
  MaxSatInstance Inst;
  bool Weighted;
  uint64_t ConflictBudget;
  Solver::Options Base;
  std::vector<Clause> AddedHard;
  std::optional<Solver::Budget> CurBudget;
};

/// Factory mirroring makeMaxSatSession; Threads <= 1 still builds a
/// portfolio (of one canonical worker) so localization drivers have one
/// code path.
std::unique_ptr<PortfolioSession>
makePortfolioSession(const MaxSatInstance &Inst, bool Weighted,
                     size_t Threads, uint64_t ConflictBudget = 0,
                     const Solver::Options &Base = Solver::Options());

} // namespace bugassist

#endif // BUGASSIST_MAXSAT_PORTFOLIO_H
