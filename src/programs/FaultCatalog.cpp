//===- FaultCatalog.cpp - Error-type taxonomy (Table 2) ---------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "programs/FaultCatalog.h"

#include <cstring>

using namespace bugassist;

const char *bugassist::errorTypeName(ErrorType T) {
  switch (T) {
  case ErrorType::Op:
    return "op";
  case ErrorType::Const:
    return "const";
  case ErrorType::Assign:
    return "assign";
  case ErrorType::Code:
    return "code";
  case ErrorType::AddCode:
    return "addcode";
  case ErrorType::Init:
    return "init";
  case ErrorType::Index:
    return "index";
  case ErrorType::Branch:
    return "branch";
  }
  return "?";
}

bool bugassist::errorTypeFromName(const char *Name, ErrorType &T) {
  for (ErrorType Candidate : AllErrorTypes) {
    if (std::strcmp(Name, errorTypeName(Candidate)) == 0) {
      T = Candidate;
      return true;
    }
  }
  return false;
}

const char *bugassist::errorTypeDescription(ErrorType T) {
  switch (T) {
  case ErrorType::Op:
    return "Wrong operator usage, e.g. <= instead of <";
  case ErrorType::Const:
    return "Wrong constant value supplied, e.g. off-by-one error";
  case ErrorType::Assign:
    return "Wrong assignment expression";
  case ErrorType::Code:
    return "Logical coding bug";
  case ErrorType::AddCode:
    return "Error due to extra code fragments";
  case ErrorType::Init:
    return "Wrong value initialization of a variable";
  case ErrorType::Index:
    return "Use of wrong array index";
  case ErrorType::Branch:
    return "Error in branching due to negation of branching condition";
  }
  return "?";
}
