//===- SmallDemos.cpp - The paper's inline example programs -----------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "programs/SmallDemos.h"

using namespace bugassist;

const std::string &bugassist::program1Source() {
  static const std::string Source = R"(int Array[3];
int main(int index) {
  if (index != 1)
    index = 2;
  else
    index = index + 2;
  int i = index;
  assert(i >= 0 && i < 3);
  return Array[i];
}
)";
  return Source;
}

uint32_t bugassist::program1BugLine() { return 6; }

const std::string &bugassist::program2Source() {
  // Mini-C rendition of the paper's Program 2. Strings are int arrays
  // (0-terminated); strncat_arr appends up to n characters of src to dest
  // and, like the C library routine, writes the terminating 0 one slot
  // past the appended characters -- the documented strncat trap [22].
  // MyFunCopy's buffer has SIZE = 8 slots, so the last argument must be
  // SIZE - 1 = 7; the buggy call passes 8 (line 21).
  static const std::string Source = R"(int SRCLEN;
void strncat_arr(int dest[8], int src[8], int n) {
  int d = 0;
  while (d < 8 && dest[d] != 0)
    d = d + 1;
  int k = 0;
  bool stop = false;
  while (k < n && !stop) {
    int ch = src[k];
    dest[d + k] = ch;
    if (ch == 0)
      stop = true;
    k = k + 1;
  }
  if (!stop)
    dest[d + n] = 0;
}
int main(int c0, int c1, int c2, int c3, int c4, int c5, int c6, int c7) {
  int buf[8];
  int s[8];
  s[0] = c0; s[1] = c1; s[2] = c2; s[3] = c3;
  s[4] = c4; s[5] = c5; s[6] = c6; s[7] = c7;
  strncat_arr(buf, s, 8);
  return buf[0];
}
)";
  return Source;
}

uint32_t bugassist::program2BugLine() { return 23; }

const char *bugassist::program2LibraryFunction() { return "strncat_arr"; }

std::set<uint32_t> bugassist::program2HardLines() { return {21, 22}; }

const std::string &bugassist::program3Source() {
  static const std::string Source = R"(int main() {
  int val = 50;
  int i = 1;
  int v = 0;
  int res = 0;
  while (v < val) {
    v = v + 2 * i + 1;
    i = i + 1;
  }
  res = i;
  assert(res * res <= val && (res + 1) * (res + 1) > val);
  return res;
}
)";
  return Source;
}

uint32_t bugassist::program3BugLine() { return 10; }

const std::string &bugassist::program3FixedSource() {
  static const std::string Source = R"(int main() {
  int val = 50;
  int i = 1;
  int v = 0;
  int res = 0;
  while (v < val) {
    v = v + 2 * i + 1;
    i = i + 1;
  }
  res = i - 1;
  assert(res * res <= val && (res + 1) * (res + 1) > val);
  return res;
}
)";
  return Source;
}
