//===- SmallDemos.h - The paper's inline example programs -------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mini-C sources for the three programs printed in the paper:
///  * Program 1 (Section 2): the motivating `testme` example with the
///    out-of-bounds index bug;
///  * Program 2 (Section 6.3): the strncat off-by-one, rebuilt with
///    arrays+indices since mini-C has no pointers -- the library still
///    writes the terminator one slot past the copied length;
///  * Program 3 (Section 6.4): the nearest-integer square root with the
///    `res = i` bug whose diagnosis needs loop-iteration analysis.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_PROGRAMS_SMALLDEMOS_H
#define BUGASSIST_PROGRAMS_SMALLDEMOS_H

#include <cstdint>
#include <set>
#include <string>

namespace bugassist {

/// Program 1: `testme` with the bug on line 6 (`index = index + 2`).
/// Entry: main(int index); implicit bounds assertion on the dereference.
const std::string &program1Source();
/// Line of the injected fault in Program 1.
uint32_t program1BugLine();

/// Program 2: array-based strncat misuse; the call site passes SIZE
/// instead of SIZE-1 (fault line returned by program2BugLine()).
const std::string &program2Source();
uint32_t program2BugLine();
/// Name of the trusted library routine (`strncat_arr`).
const char *program2LibraryFunction();
/// Harness lines of Program 2 (the input-string setup in main); marked
/// hard so localization/repair cannot "fix" the test fixture itself.
std::set<uint32_t> program2HardLines();

/// Program 3: squareroot with `res = i` instead of `res = i - 1`.
const std::string &program3Source();
uint32_t program3BugLine();
/// The fixed variant (res = i - 1), for differential tests.
const std::string &program3FixedSource();

} // namespace bugassist

#endif // BUGASSIST_PROGRAMS_SMALLDEMOS_H
