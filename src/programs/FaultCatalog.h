//===- FaultCatalog.h - Error-type taxonomy (Table 2) -----------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Table 2: the taxonomy of injected fault types used to label
/// the TCAS versions of Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_PROGRAMS_FAULTCATALOG_H
#define BUGASSIST_PROGRAMS_FAULTCATALOG_H

#include <cstddef>

namespace bugassist {

/// Fault categories, exactly as in Table 2 of the paper.
enum class ErrorType {
  Op,      ///< wrong operator usage, e.g. <= instead of <
  Const,   ///< wrong constant value supplied, e.g. off-by-one
  Assign,  ///< wrong assignment expression
  Code,    ///< logical coding bug
  AddCode, ///< error due to extra code fragments
  Init,    ///< wrong value initialization of a variable
  Index,   ///< use of wrong array index
  Branch   ///< negated / wrong branching condition
};

/// Every fault class, in Table 2 order. Handy for sweeps that iterate or
/// index per-class tallies by `static_cast<size_t>(ErrorType)`.
inline constexpr ErrorType AllErrorTypes[] = {
    ErrorType::Op,   ErrorType::Const,   ErrorType::Assign, ErrorType::Code,
    ErrorType::AddCode, ErrorType::Init, ErrorType::Index,  ErrorType::Branch};
inline constexpr size_t NumErrorTypes = 8;

/// Short tag as printed in Table 1 ("op", "const", ...).
const char *errorTypeName(ErrorType T);

/// Parses a Table 1 tag back into its ErrorType. \returns false if \p Name
/// is not one of the eight tags.
bool errorTypeFromName(const char *Name, ErrorType &T);

/// The Table 2 explanation string.
const char *errorTypeDescription(ErrorType T);

} // namespace bugassist

#endif // BUGASSIST_PROGRAMS_FAULTCATALOG_H
