//===- TcasMutants.cpp - The 41 faulty TCAS versions ------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "programs/TcasMutants.h"

#include "programs/Tcas.h"

#include <algorithm>
#include <cassert>

using namespace bugassist;

namespace {

/// One textual replacement: the Occurrence-th match of From becomes To.
/// "AddCode" faults append statements to the line by setting To to
/// From + extra text, keeping every line number stable.
struct Replacement {
  const char *From;
  const char *To;
  int Occurrence = 1;
};

/// \returns the 1-based line of the Occurrence-th match of \p Needle.
uint32_t lineOfMatch(const std::string &Text, const std::string &Needle,
                     int Occurrence) {
  size_t Pos = 0;
  for (int Hit = 0;; ++Hit) {
    Pos = Text.find(Needle, Pos);
    assert(Pos != std::string::npos && "mutation fragment not found");
    if (Hit + 1 == Occurrence)
      break;
    ++Pos;
  }
  uint32_t Line = 1;
  for (size_t I = 0; I < Pos; ++I)
    if (Text[I] == '\n')
      ++Line;
  return Line;
}

std::string replaceOccurrence(const std::string &Text,
                              const std::string &From, const std::string &To,
                              int Occurrence) {
  size_t Pos = 0;
  for (int Hit = 0;; ++Hit) {
    Pos = Text.find(From, Pos);
    assert(Pos != std::string::npos && "mutation fragment not found");
    if (Hit + 1 == Occurrence)
      break;
    ++Pos;
  }
  std::string Out = Text;
  Out.replace(Pos, From.size(), To);
  return Out;
}

TcasMutant makeMutant(int Version, ErrorType Type,
                      std::initializer_list<Replacement> Repls,
                      const char *Description) {
  const std::string &Base = tcasSource();
  TcasMutant M;
  M.Version = Version;
  M.Type = Type;
  M.ErrorCount = static_cast<int>(Repls.size());
  M.Description = Description;
  M.Source = Base;
  for (const Replacement &R : Repls) {
    M.BugLines.push_back(lineOfMatch(Base, R.From, R.Occurrence));
    M.Source = replaceOccurrence(M.Source, R.From, R.To, R.Occurrence);
  }
  std::sort(M.BugLines.begin(), M.BugLines.end());
  return M;
}

std::vector<TcasMutant> buildMutants() {
  std::vector<TcasMutant> Ms;

  Ms.push_back(makeMutant(
      1, ErrorType::Op,
      {{"Own_Tracked_Alt_Rate <= 600", "Own_Tracked_Alt_Rate < 600"}},
      "enabled boundary: <= 600 weakened to < 600"));
  Ms.push_back(makeMutant(
      2, ErrorType::Const,
      {{"Up_Separation + 100", "Up_Separation + 300"}},
      "Figure 2 fault: NOZCROSS bias 100 -> 300 in Inhibit_Biased_Climb"));
  Ms.push_back(makeMutant(
      3, ErrorType::Op,
      {{"!(Down_Separation >= ALIM())", "!(Down_Separation > ALIM())"}},
      "climb threshold: >= weakened to >"));
  Ms.push_back(makeMutant(
      4, ErrorType::Op,
      {{"Cur_Vertical_Sep > 600", "Cur_Vertical_Sep >= 600"}},
      "enabled boundary: > 600 strengthened to >= 600"));
  Ms.push_back(makeMutant(5, ErrorType::Assign,
                          {{"alt_sep = 1;", "alt_sep = 2;"}},
                          "upward advisory assigned the downward code"));
  Ms.push_back(makeMutant(
      6, ErrorType::Op,
      {{"Inhibit_Biased_Climb() > Down_Separation",
        "Inhibit_Biased_Climb() >= Down_Separation", 1}},
      "upward_preferred tie broken the wrong way in Climb"));
  Ms.push_back(makeMutant(
      7, ErrorType::Const,
      {{"Other_RAC == 0", "Other_RAC == 1"}},
      "intent_not_known compares against the wrong RAC code"));
  Ms.push_back(makeMutant(
      8, ErrorType::Const,
      {{"Cur_Vertical_Sep > 600", "Cur_Vertical_Sep > 500"}},
      "MAXALTDIFF 600 -> 500 in the enabled test"));
  Ms.push_back(makeMutant(
      9, ErrorType::Op,
      {{"Own_Tracked_Alt < Other_Tracked_Alt",
        "Own_Tracked_Alt <= Other_Tracked_Alt"}},
      "Own_Below_Threat: < weakened to <="));
  Ms.push_back(makeMutant(
      10, ErrorType::Op,
      {{"Own_Tracked_Alt < Other_Tracked_Alt",
        "Own_Tracked_Alt <= Other_Tracked_Alt"},
       {"Other_Tracked_Alt < Own_Tracked_Alt",
        "Other_Tracked_Alt <= Own_Tracked_Alt"}},
      "both threat comparisons weakened"));
  Ms.push_back(makeMutant(
      11, ErrorType::Op,
      {{"!(Down_Separation >= ALIM())", "!(Down_Separation > ALIM())"},
       {"(Cur_Vertical_Sep >= 300) && (Down_Separation >= ALIM())",
        "(Cur_Vertical_Sep >= 300) && (Down_Separation > ALIM())"}},
      "both Down_Separation thresholds weakened"));
  Ms.push_back(makeMutant(12, ErrorType::Op,
                          {{"Other_RAC == 0", "Other_RAC != 0"}},
                          "intent_not_known test inverted"));
  Ms.push_back(makeMutant(13, ErrorType::Const,
                          {{"Other_Capability == 1", "Other_Capability == 2"}},
                          "tcas_equipped compares the wrong capability code"));
  Ms.push_back(makeMutant(14, ErrorType::Const,
                          {{"Up_Separation + 100", "Up_Separation + 50"}},
                          "NOZCROSS bias halved"));
  Ms.push_back(makeMutant(
      15, ErrorType::Const,
      {{"Positive_RA_Alt_Thresh[0] = 400", "Positive_RA_Alt_Thresh[0] = 402"},
       {"Positive_RA_Alt_Thresh[1] = 500", "Positive_RA_Alt_Thresh[1] = 502"},
       {"Positive_RA_Alt_Thresh[2] = 640", "Positive_RA_Alt_Thresh[2] = 642"}},
      "three ALIM table entries off by two"));
  Ms.push_back(makeMutant(
      16, ErrorType::Init,
      {{"Positive_RA_Alt_Thresh[0] = 400", "Positive_RA_Alt_Thresh[0] = 700"}},
      "ALIM layer 0 initialized wrongly"));
  Ms.push_back(makeMutant(
      17, ErrorType::Init,
      {{"Positive_RA_Alt_Thresh[1] = 500", "Positive_RA_Alt_Thresh[1] = 200"}},
      "ALIM layer 1 initialized wrongly"));
  Ms.push_back(makeMutant(
      18, ErrorType::Init,
      {{"Positive_RA_Alt_Thresh[2] = 640", "Positive_RA_Alt_Thresh[2] = 340"}},
      "ALIM layer 2 initialized wrongly"));
  Ms.push_back(makeMutant(
      19, ErrorType::Init,
      {{"Positive_RA_Alt_Thresh[3] = 740", "Positive_RA_Alt_Thresh[3] = 440"}},
      "ALIM layer 3 initialized wrongly"));
  Ms.push_back(makeMutant(
      20, ErrorType::Op,
      {{"(Own_Above_Threat() && (Up_Separation >= ALIM()))",
        "(Own_Above_Threat() && (Up_Separation > ALIM()))"}},
      "descend-side Up_Separation threshold weakened"));
  Ms.push_back(makeMutant(
      21, ErrorType::Op,
      {{"need_upward_RA && need_downward_RA",
        "need_upward_RA || need_downward_RA"}},
      "conflicting-advisory test || instead of &&"));
  Ms.push_back(makeMutant(
      22, ErrorType::Code,
      {{"result = !Own_Below_Threat() || (Own_Below_Threat() && "
        "!(Down_Separation >= ALIM()));",
        "result = !Own_Below_Threat() || (Own_Below_Threat() && "
        "(Down_Separation >= ALIM()));"}},
      "climb branch: negation on the Down_Separation test dropped"));
  Ms.push_back(makeMutant(
      23, ErrorType::Code,
      {{"result = !Own_Above_Threat() || (Own_Above_Threat() && "
        "(Up_Separation >= ALIM()));",
        "result = !Own_Above_Threat() || (Own_Above_Threat() && "
        "!(Up_Separation >= ALIM()));"}},
      "descend branch: spurious negation on the Up_Separation test"));
  Ms.push_back(makeMutant(
      24, ErrorType::Op,
      {{"(tcas_equipped && intent_not_known) || !tcas_equipped",
        "(tcas_equipped || intent_not_known) || !tcas_equipped"}},
      "arbitration && mutated to ||, making the test vacuous"));
  Ms.push_back(makeMutant(
      25, ErrorType::Code,
      {{"bool need_upward_RA = Non_Crossing_Biased_Climb() && "
        "Own_Below_Threat();",
        "bool need_upward_RA = Non_Crossing_Biased_Climb();"}},
      "need_upward_RA misses the Own_Below_Threat conjunct"));
  Ms.push_back(makeMutant(
      26, ErrorType::AddCode,
      {{"int alt_sep = 0;",
        "int alt_sep = 0; Down_Separation = Down_Separation + 60;"}},
      "stray Down_Separation bump before the advisory logic"));
  Ms.push_back(makeMutant(
      27, ErrorType::AddCode,
      {{"bool upward_preferred = Inhibit_Biased_Climb() > Down_Separation;",
        "bool upward_preferred = Inhibit_Biased_Climb() > Down_Separation; "
        "Up_Separation = Up_Separation + 50;",
        2}},
      "stray Up_Separation bump inside Non_Crossing_Biased_Descend"));
  Ms.push_back(makeMutant(
      28, ErrorType::Branch,
      {{"if (enabled && ((tcas_equipped && intent_not_known) || "
        "!tcas_equipped))",
        "if (!(enabled && ((tcas_equipped && intent_not_known) || "
        "!tcas_equipped)))"}},
      "top-level advisory guard negated"));
  Ms.push_back(makeMutant(
      29, ErrorType::Code,
      {{"bool need_downward_RA = Non_Crossing_Biased_Descend() && "
        "Own_Above_Threat();",
        "bool need_downward_RA = Non_Crossing_Biased_Descend() && "
        "Own_Below_Threat();"}},
      "need_downward_RA checks the wrong threat direction"));
  Ms.push_back(makeMutant(30, ErrorType::Code,
                          {{"alt_sep = 2;", "alt_sep = 1;"}},
                          "downward advisory emits the upward code"));
  Ms.push_back(makeMutant(
      31, ErrorType::AddCode,
      {{"int alt_sep = 0;",
        "int alt_sep = 0; Alt_Layer_Value = Alt_Layer_Value + 1;"},
       {"bool need_upward_RA = Non_Crossing_Biased_Climb() && "
        "Own_Below_Threat();",
        "bool need_upward_RA = Non_Crossing_Biased_Climb() && "
        "Own_Below_Threat(); Down_Separation = Down_Separation + 100;"}},
      "stray layer bump plus Down_Separation bump"));
  Ms.push_back(makeMutant(
      32, ErrorType::AddCode,
      {{"bool enabled = High_Confidence && (Own_Tracked_Alt_Rate <= 600) && "
        "(Cur_Vertical_Sep > 600);",
        "bool enabled = High_Confidence && (Own_Tracked_Alt_Rate <= 600) && "
        "(Cur_Vertical_Sep > 600); Alt_Layer_Value = 0;"},
       {"bool tcas_equipped = Other_Capability == 1;",
        "bool tcas_equipped = Other_Capability == 1; Other_RAC = Other_RAC "
        "+ 1;"}},
      "stray layer reset plus RAC bump"));
  Ms.push_back(makeMutant(
      33, ErrorType::Code,
      {{"result = !Own_Above_Threat() || (Own_Above_Threat() && "
        "(Up_Separation >= ALIM()));",
        "result = !Own_Above_Threat() || (Up_Separation >= ALIM());"}},
      "equivalent rewrite (absorption); produces no failures"));
  Ms.push_back(makeMutant(
      34, ErrorType::Op,
      {{"result = !Own_Below_Threat() || (Own_Below_Threat() && "
        "!(Down_Separation >= ALIM()));",
        "result = !Own_Below_Threat() && (Own_Below_Threat() && "
        "!(Down_Separation >= ALIM()));"}},
      "climb branch: || mutated to && (branch collapses to false)"));
  Ms.push_back(makeMutant(
      35, ErrorType::Code,
      {{"if (need_upward_RA && need_downward_RA)",
        "if (need_upward_RA)"}},
      "conflict test drops need_downward_RA"));
  Ms.push_back(makeMutant(
      36, ErrorType::Op,
      {{"bool enabled = High_Confidence && (Own_Tracked_Alt_Rate <= 600)",
        "bool enabled = High_Confidence || (Own_Tracked_Alt_Rate <= 600)"}},
      "enabled: && mutated to ||"));
  Ms.push_back(makeMutant(
      37, ErrorType::Index,
      {{"Positive_RA_Alt_Thresh[Alt_Layer_Value]",
        "Positive_RA_Alt_Thresh[Alt_Layer_Value - 1]"}},
      "ALIM reads the previous layer's threshold"));
  Ms.push_back(makeMutant(
      38, ErrorType::Assign,
      {{"alt_sep = 0;", "alt_sep = 0 * 1;", 3}},
      "semantically neutral rewrite; produces no failures"));
  Ms.push_back(makeMutant(
      39, ErrorType::Op,
      {{"result = Own_Below_Threat() && (Cur_Vertical_Sep >= 300)",
        "result = Own_Below_Threat() || (Cur_Vertical_Sep >= 300)"}},
      "descend branch: && mutated to ||"));
  // Note: the first rewrite spells the value "2 + 0" so that the second
  // replacement cannot re-match the freshly written statement.
  Ms.push_back(makeMutant(
      40, ErrorType::Assign,
      {{"alt_sep = 1;", "alt_sep = 2 + 0;"},
       {"alt_sep = 2;", "alt_sep = 1;"}},
      "upward and downward advisories swapped"));
  Ms.push_back(makeMutant(
      41, ErrorType::Assign,
      {{"bool upward_preferred = Inhibit_Biased_Climb() > Down_Separation;",
        "bool upward_preferred = Inhibit_Biased_Climb() > Up_Separation;",
        2}},
      "descend: upward_preferred computed against the wrong separation"));

  assert(Ms.size() == 41 && "expected all 41 versions");
  return Ms;
}

} // namespace

const std::vector<TcasMutant> &bugassist::tcasMutants() {
  static const std::vector<TcasMutant> Mutants = buildMutants();
  return Mutants;
}
