//===- LargeBenchmarks.cpp - Table 3 benchmark programs ----------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Like TcasMutants.cpp, the faulty sources are produced by targeted
// replacements on the correct sources so ground-truth fault lines are
// computed, not hand-maintained.
//
//===----------------------------------------------------------------------===//

#include "programs/LargeBenchmarks.h"

#include <cassert>

using namespace bugassist;

namespace {

uint32_t lineOfN(const std::string &Text, const std::string &Needle,
                 int Occurrence) {
  size_t Pos = 0;
  for (int Hit = 0;; ++Hit) {
    Pos = Text.find(Needle, Pos);
    assert(Pos != std::string::npos && "fragment not found");
    if (Hit + 1 == Occurrence)
      break;
    ++Pos;
  }
  uint32_t Line = 1;
  for (size_t I = 0; I < Pos; ++I)
    if (Text[I] == '\n')
      ++Line;
  return Line;
}

uint32_t lineOf(const std::string &Text, const std::string &Needle) {
  return lineOfN(Text, Needle, 1);
}

std::string replaceOnce(const std::string &Text, const std::string &From,
                        const std::string &To) {
  size_t Pos = Text.find(From);
  assert(Pos != std::string::npos && "fault fragment not found");
  std::string Out = Text;
  Out.replace(Pos, From.size(), To);
  return Out;
}

std::set<uint32_t> lineRange(uint32_t Lo, uint32_t Hi) {
  std::set<uint32_t> S;
  for (uint32_t L = Lo; L <= Hi; ++L)
    S.insert(L);
  return S;
}

// --- tot_info ---------------------------------------------------------------------
//
// Contingency-table information statistic over a 3x4 table of counts in
// [0, 9] (the assumes keep 16-bit arithmetic exact). The fault drops
// low-expectation cells from the statistic.

const char *TotInfoSource = R"(int table[12];
int rowtot[3];
int coltot[4];
int rowmean[3];
int grandtot;
int info;
void compute_totals() {
  int r = 0;
  while (r < 3) {
    int c = 0;
    while (c < 4) {
      int v = table[r * 4 + c];
      rowtot[r] = rowtot[r] + v;
      coltot[c] = coltot[c] + v;
      grandtot = grandtot + v;
      c = c + 1;
    }
    r = r + 1;
  }
}
void compute_means() {
  int r = 0;
  while (r < 3) {
    rowmean[r] = rowtot[r] * 100 / 4;
    r = r + 1;
  }
}
void compute_info() {
  info = 0;
  int r = 0;
  while (r < 3) {
    int c = 0;
    while (c < 4) {
      int expct = rowtot[r] * coltot[c] / grandtot;
      if (expct > 0) {
        int d = table[r * 4 + c] - expct;
        info = info + d * d;
      }
      c = c + 1;
    }
    r = r + 1;
  }
}
int main(int t[12]) {
  int k = 0;
  while (k < 12) {
    assume(t[k] >= 0 && t[k] <= 9);
    table[k] = t[k];
    k = k + 1;
  }
  compute_totals();
  compute_means();
  if (grandtot == 0)
    return 0;
  compute_info();
  return info;
}
)";

LargeBenchmark makeTotInfo() {
  LargeBenchmark B;
  B.Name = "tot_info";
  B.CorrectSource = TotInfoSource;
  const char *From = "if (expct > 0) {";
  B.FaultySource = replaceOnce(B.CorrectSource, From, "if (expct > 1) {");
  B.BugLines = {lineOf(B.CorrectSource, From)};
  // The statistic core (compute_info) is the code under test; totals are
  // the trusted substrate in the CS row.
  B.TrustedFunctions = {"compute_totals"};
  // A table with several expct == 1 cells so the threshold matters:
  // sparse counts around one heavy row.
  B.FailingInput = {InputValue::array({3, 1, 0, 1, //
                                       1, 4, 1, 0, //
                                       0, 1, 2, 1})};
  B.MaxLoopUnwind = 13;
  B.MaxInlineDepth = 4;
  // CBMC-style unwindset: the row/column loops run 3 / 4 times; only the
  // input-copy loop needs the deep bound.
  const std::string &Src = B.CorrectSource;
  B.LoopUnwindByLine[lineOfN(Src, "while (r < 3)", 1)] = 4;
  B.LoopUnwindByLine[lineOfN(Src, "while (r < 3)", 2)] = 4;
  B.LoopUnwindByLine[lineOfN(Src, "while (r < 3)", 3)] = 4;
  B.LoopUnwindByLine[lineOfN(Src, "while (c < 4)", 1)] = 5;
  B.LoopUnwindByLine[lineOfN(Src, "while (c < 4)", 2)] = 5;
  uint32_t MainLine = lineOf(Src, "int main(");
  B.HardLines = lineRange(MainLine, MainLine + 6); // the input-copy loop
  return B;
}

// --- print_tokens ------------------------------------------------------------------
//
// Recursive tokenizer: skip_blanks() walks blanks (code 0) by recursion,
// next_token() classifies the character under the cursor. The driver sums
// weighted token classes; the fault gives identifiers the wrong weight.
// Character codes: 0 blank, 1..9 digit, 10..35 letter, else operator.

const char *PrintTokensSource = R"(int input[16];
int cursor;
void skip_blanks() {
  if (cursor < 16 && input[cursor] == 0) {
    cursor = cursor + 1;
    skip_blanks();
  }
}
int next_token() {
  skip_blanks();
  if (cursor >= 16)
    return 0;
  int ch = input[cursor];
  cursor = cursor + 1;
  if (ch >= 1 && ch <= 9)
    return 2;
  if (ch >= 10 && ch <= 35)
    return 1;
  return 3;
}
int main(int inp[16]) {
  int k = 0;
  while (k < 16) {
    input[k] = inp[k];
    k = k + 1;
  }
  cursor = 0;
  int sum = 0;
  int n = 0;
  while (n < 8) {
    int t = next_token();
    if (t == 1)
      sum = sum + 2;
    if (t == 2)
      sum = sum + 10;
    if (t == 3)
      sum = sum + 100;
    n = n + 1;
  }
  return sum;
}
)";

LargeBenchmark makePrintTokens() {
  LargeBenchmark B;
  B.Name = "print_tokens";
  // The CORRECT weight for identifiers is 1; the shipped driver uses 2.
  B.CorrectSource = replaceOnce(PrintTokensSource, "sum = sum + 2;",
                                "sum = sum + 1;");
  B.FaultySource = PrintTokensSource;
  B.BugLines = {lineOf(PrintTokensSource, "sum = sum + 2;")};
  B.TrustedFunctions = {"skip_blanks", "next_token"};
  // Blanks interleaved with identifiers/digits/operators: exercises the
  // recursion and all three token classes.
  B.FailingInput = {InputValue::array({0, 12, 0, 0, 5, 40, 0, 20, //
                                       0, 0, 7, 15, 0, 41, 3, 0})};
  B.MaxLoopUnwind = 17;
  B.MaxInlineDepth = 18; // skip_blanks can recurse across all 16 cells
  const std::string &Src = B.FaultySource;
  B.LoopUnwindByLine[lineOf(Src, "while (k < 16)")] = 17; // input copy
  B.LoopUnwindByLine[lineOf(Src, "while (n < 8)")] = 9;   // token loop
  uint32_t MainLine = lineOf(Src, "int main(");
  B.HardLines = lineRange(MainLine, MainLine + 5); // input-copy loop
  return B;
}

// --- schedule ----------------------------------------------------------------------
//
// Two-level priority scheduler driven by an op string (0 halts; the
// default atom value, so ddmin shrinks the trace). Queues are stacks;
// pids are the op indices. flush_all drains both queues into the
// `finished` checksum -- with the classic off-by-one leaving one process
// behind.

const char *ScheduleSource = R"(int queue0[5];
int queue1[5];
int len0;
int len1;
int finished;
void enqueue(int prio, int pid) {
  if (prio == 1) {
    if (len1 < 5) {
      queue1[len1] = pid;
      len1 = len1 + 1;
    }
  } else {
    if (len0 < 5) {
      queue0[len0] = pid;
      len0 = len0 + 1;
    }
  }
}
int dequeue_high() {
  if (len1 > 0) {
    len1 = len1 - 1;
    return queue1[len1];
  }
  if (len0 > 0) {
    len0 = len0 - 1;
    return queue0[len0];
  }
  return -1;
}
void flush_all() {
  int n = len0 + len1 - 1;
  int i = 0;
  while (i < n) {
    finished = finished + dequeue_high();
    i = i + 1;
  }
}
int main(int ops[8]) {
  int k = 0;
  bool halted = false;
  while (k < 8 && !halted) {
    int op = ops[k];
    assume(op >= 0 && op <= 4);
    if (op == 0)
      halted = true;
    if (op == 1)
      enqueue(0, k + 1);
    if (op == 2)
      enqueue(1, k + 1);
    if (op == 3)
      finished = finished + dequeue_high();
    if (op == 4)
      flush_all();
    k = k + 1;
  }
  flush_all();
  return finished;
}
)";

LargeBenchmark makeSchedule() {
  LargeBenchmark B;
  B.Name = "schedule";
  const char *Fault = "int n = len0 + len1 - 1;";
  B.CorrectSource = replaceOnce(ScheduleSource, Fault, "int n = len0 + len1;");
  B.FaultySource = ScheduleSource;
  B.BugLines = {lineOf(ScheduleSource, Fault)};
  // enqueue two, run one, enqueue more, final flush leaves one behind.
  B.FailingInput = {InputValue::array({1, 2, 3, 1, 2, 1, 0, 0})};
  B.MaxLoopUnwind = 11;
  B.MaxInlineDepth = 4;
  const std::string &Src = B.FaultySource;
  B.LoopUnwindByLine[lineOf(Src, "while (k < 8 && !halted)")] = 9;
  B.LoopUnwindByLine[lineOf(Src, "while (i < n)")] = 11; // <= 10 enqueues
  B.HardLines = {};
  return B;
}

// --- schedule2 --------------------------------------------------------------------
//
// Three-queue variant with promote ops; the fault promotes from the low
// queue straight to the top queue, skipping the middle level.

const char *Schedule2Source = R"(int q0[6];
int q1[6];
int q2[6];
int n0;
int n1;
int n2;
int done;
void add_proc(int prio, int pid) {
  if (prio == 2 && n2 < 6) {
    q2[n2] = pid;
    n2 = n2 + 1;
  }
  if (prio == 1 && n1 < 6) {
    q1[n1] = pid;
    n1 = n1 + 1;
  }
  if (prio == 0 && n0 < 6) {
    q0[n0] = pid;
    n0 = n0 + 1;
  }
}
void promote_low() {
  if (n0 > 0) {
    n0 = n0 - 1;
    add_proc(2, q0[n0]);
  }
}
int run_one() {
  if (n2 > 0) {
    n2 = n2 - 1;
    return q2[n2];
  }
  if (n1 > 0) {
    n1 = n1 - 1;
    return q1[n1];
  }
  if (n0 > 0) {
    n0 = n0 - 1;
    return q0[n0];
  }
  return -1;
}
int main(int ops[10]) {
  int k = 0;
  bool halted = false;
  while (k < 10 && !halted) {
    int op = ops[k];
    assume(op >= 0 && op <= 4);
    if (op == 0)
      halted = true;
    if (op == 1)
      add_proc(0, k + 1);
    if (op == 2)
      add_proc(1, k + 1);
    if (op == 3)
      promote_low();
    if (op == 4)
      done = done * 2 + run_one();
    k = k + 1;
  }
  return done;
}
)";

LargeBenchmark makeSchedule2() {
  LargeBenchmark B;
  B.Name = "schedule2";
  const char *Fault = "add_proc(2, q0[n0]);";
  B.CorrectSource = replaceOnce(Schedule2Source, Fault, "add_proc(1, q0[n0]);");
  B.FaultySource = Schedule2Source;
  B.BugLines = {lineOf(Schedule2Source, Fault)};
  // Promote must race a middle-priority process: add low p1, promote it,
  // then add p3 at mid priority. Correctly promoted, p1 sits under p3 in
  // q1 and runs second; wrongly promoted to q2 it runs first, flipping
  // the run order and the checksum.
  B.FailingInput = {InputValue::array({1, 3, 2, 4, 4, 0, 0, 0, 0, 0})};
  B.MaxLoopUnwind = 11;
  B.MaxInlineDepth = 4;
  B.LoopUnwindByLine[lineOf(B.FaultySource,
                            "while (k < 10 && !halted)")] = 11;
  B.HardLines = {};
  return B;
}

std::vector<LargeBenchmark> buildAll() {
  std::vector<LargeBenchmark> Bs;
  Bs.push_back(makeTotInfo());
  Bs.push_back(makePrintTokens());
  Bs.push_back(makeSchedule());
  Bs.push_back(makeSchedule2());
  return Bs;
}

} // namespace

const std::vector<LargeBenchmark> &bugassist::largeBenchmarks() {
  static const std::vector<LargeBenchmark> All = buildAll();
  return All;
}

const LargeBenchmark &bugassist::largeBenchmark(const std::string &Name) {
  for (const LargeBenchmark &B : largeBenchmarks())
    if (B.Name == Name)
      return B;
  assert(false && "unknown benchmark");
  static LargeBenchmark Empty;
  return Empty;
}
