//===- Tcas.h - TCAS collision-avoidance benchmark --------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mini-C re-implementation of the Siemens-suite TCAS task (the aircraft
/// Traffic Collision Avoidance System altitude-separation logic of
/// Hutchins et al. [15]) -- the Section 6.1 benchmark. The Siemens
/// distribution itself is not redistributable, so the logic is rebuilt
/// from the published algorithm; behaviour (12 inputs, one resolution
/// advisory output: 0 = UNRESOLVED, 1 = UPWARD_RA, 2 = DOWNWARD_RA)
/// matches the original.
///
/// The seeded test-pool generator reproduces the paper's methodology:
/// golden outputs come from running this correct version, faulty versions
/// (see TcasMutants.h) are judged against them.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_PROGRAMS_TCAS_H
#define BUGASSIST_PROGRAMS_TCAS_H

#include "bmc/Unroller.h"
#include "interp/Interpreter.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace bugassist {

/// Mini-C source of the correct TCAS program. Entry point is `main` with
/// the 12 canonical inputs.
const std::string &tcasSource();

/// Number of entry parameters (12).
int tcasInputArity();

/// Draws one plausible TCAS input. Values are biased toward the decision
/// thresholds (300/600/ALIM table entries) so the pool discriminates
/// between versions, mirroring the Siemens suite's designed test pool.
InputVector randomTcasInput(Rng &R);

/// The seeded pool of \p Count tests (the paper's suite has 1600).
std::vector<InputVector> tcasTestPool(size_t Count, uint64_t Seed = 20110601);

/// Interpreter options the TCAS experiments use everywhere (16-bit words,
/// unchecked array bounds: the spec is the golden output, as in the paper).
ExecOptions tcasExecOptions();

/// Unroll options for TCAS localization: 16-bit words, bounds checks off,
/// and main's input-copy harness lines marked hard (the paper's CBMC
/// harness pins the parsed inputs as part of [[test]], so harness lines
/// are never suspects).
UnrollOptions tcasUnrollOptions();

} // namespace bugassist

#endif // BUGASSIST_PROGRAMS_TCAS_H
