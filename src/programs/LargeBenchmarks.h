//===- LargeBenchmarks.h - Table 3 benchmark programs -----------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analogs of the four larger Siemens programs of Section 6.2 / Table 3,
/// each with one injected fault and the trace-reduction recipe the paper
/// applied to it:
///
///  * tot_info  -- nested-loop contingency-table statistic with integer
///                 division; fault: threshold constant; reduction S
///                 (static slicing), plus a CS row (concretize + slice).
///  * print_tokens -- recursive tokenizer (`skip_blanks` recursion inlined
///                 8+ deep, like the paper's 8 unwindings); fault: token
///                 weighting constant in the driver; reduction C
///                 (concolic concretization of the trusted tokenizer).
///  * schedule  -- two-level priority scheduler driven by an op string;
///                 fault: off-by-one in the flush count; reduction D+S
///                 (ddmin input minimization, then slicing). Table 3 runs
///                 it at two input scales (rows 3 and 4).
///  * schedule2 -- three-queue variant with promote/demote ops; fault:
///                 promotion targets the wrong queue; reduction S.
///
/// The Siemens sources are not redistributable; these preserve the shape
/// that matters for the experiment: loop/recursion structure, array state,
/// input-dependent trace length, and a single realistic fault.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_PROGRAMS_LARGEBENCHMARKS_H
#define BUGASSIST_PROGRAMS_LARGEBENCHMARKS_H

#include "interp/Interpreter.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace bugassist {

/// One Table 3 benchmark: correct + faulty source and experiment recipe.
struct LargeBenchmark {
  std::string Name;
  std::string CorrectSource;
  std::string FaultySource;
  /// Ground-truth fault lines.
  std::vector<uint32_t> BugLines;
  /// Functions to trust/concretize for the "C" reduction (may be empty).
  std::set<std::string> TrustedFunctions;
  /// A failure-inducing input (faulty output != correct output).
  InputVector FailingInput;
  /// Loop-unwind bound sufficient for FailingInput's trace.
  int MaxLoopUnwind = 16;
  /// Tighter per-loop bounds (CBMC-style unwindset), keyed by loop line.
  std::map<uint32_t, int> LoopUnwindByLine;
  /// Recursion-inline bound sufficient for FailingInput's trace.
  int MaxInlineDepth = 8;
  /// Lines of the harness (input copies) that are never suspects.
  std::set<uint32_t> HardLines;
};

/// The four benchmarks: tot_info, print_tokens, schedule, schedule2.
const std::vector<LargeBenchmark> &largeBenchmarks();

/// Looks a benchmark up by name; asserts it exists.
const LargeBenchmark &largeBenchmark(const std::string &Name);

} // namespace bugassist

#endif // BUGASSIST_PROGRAMS_LARGEBENCHMARKS_H
