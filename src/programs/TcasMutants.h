//===- TcasMutants.h - The 41 faulty TCAS versions --------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Faulty versions of the TCAS benchmark, mirroring the Siemens suite's 41
/// injected-fault versions (Section 6.1 / Table 1). The exact Siemens
/// diffs are not redistributable; these mutants follow the Table 2
/// taxonomy and Table 1's per-version error types and counts, with v2
/// reproducing the Figure 2 fault verbatim (the NOZCROSS bias constant
/// 100 -> 300 in Inhibit_Biased_Climb). Versions v33 and v38 are designed
/// to produce no failing tests (the two versions missing from Table 1).
///
/// Each mutant records its ground-truth fault lines, the "human-verified
/// bug location" against which Detect# is scored.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_PROGRAMS_TCASMUTANTS_H
#define BUGASSIST_PROGRAMS_TCASMUTANTS_H

#include "programs/FaultCatalog.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bugassist {

/// One faulty TCAS version.
struct TcasMutant {
  int Version = 0;
  ErrorType Type = ErrorType::Op;
  int ErrorCount = 1;
  /// Ground-truth source lines of the injected fault(s), sorted.
  std::vector<uint32_t> BugLines;
  /// Full mutated mini-C source (same line numbering as tcasSource()).
  std::string Source;
  /// Human-readable description of the mutation(s).
  std::string Description;
};

/// All 41 faulty versions, ordered v1..v41.
const std::vector<TcasMutant> &tcasMutants();

} // namespace bugassist

#endif // BUGASSIST_PROGRAMS_TCASMUTANTS_H
