//===- Tcas.cpp - TCAS collision-avoidance benchmark -------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Line numbers are load-bearing: TcasMutants.cpp refers to them as ground
// truth and the Table 1 bench checks reported lines against them. Keep one
// statement per line and do not reflow.
//
//===----------------------------------------------------------------------===//

#include "programs/Tcas.h"

using namespace bugassist;

const std::string &bugassist::tcasSource() {
  static const std::string Source = R"(int Cur_Vertical_Sep;
bool High_Confidence;
bool Two_of_Three_Reports_Valid;
int Own_Tracked_Alt;
int Own_Tracked_Alt_Rate;
int Other_Tracked_Alt;
int Alt_Layer_Value;
int Up_Separation;
int Down_Separation;
int Other_RAC;
int Other_Capability;
bool Climb_Inhibit;
int Positive_RA_Alt_Thresh[4];
void initialize() {
  Positive_RA_Alt_Thresh[0] = 400;
  Positive_RA_Alt_Thresh[1] = 500;
  Positive_RA_Alt_Thresh[2] = 640;
  Positive_RA_Alt_Thresh[3] = 740;
}
int ALIM() {
  return Positive_RA_Alt_Thresh[Alt_Layer_Value];
}
int Inhibit_Biased_Climb() {
  return Climb_Inhibit ? Up_Separation + 100 : Up_Separation;
}
bool Own_Below_Threat() {
  return Own_Tracked_Alt < Other_Tracked_Alt;
}
bool Own_Above_Threat() {
  return Other_Tracked_Alt < Own_Tracked_Alt;
}
bool Non_Crossing_Biased_Climb() {
  bool upward_preferred = Inhibit_Biased_Climb() > Down_Separation;
  bool result;
  if (upward_preferred)
    result = !Own_Below_Threat() || (Own_Below_Threat() && !(Down_Separation >= ALIM()));
  else
    result = Own_Above_Threat() && (Cur_Vertical_Sep >= 300) && (Up_Separation >= ALIM());
  return result;
}
bool Non_Crossing_Biased_Descend() {
  bool upward_preferred = Inhibit_Biased_Climb() > Down_Separation;
  bool result;
  if (upward_preferred)
    result = Own_Below_Threat() && (Cur_Vertical_Sep >= 300) && (Down_Separation >= ALIM());
  else
    result = !Own_Above_Threat() || (Own_Above_Threat() && (Up_Separation >= ALIM()));
  return result;
}
int alt_sep_test() {
  bool enabled = High_Confidence && (Own_Tracked_Alt_Rate <= 600) && (Cur_Vertical_Sep > 600);
  bool tcas_equipped = Other_Capability == 1;
  bool intent_not_known = Two_of_Three_Reports_Valid && (Other_RAC == 0);
  int alt_sep = 0;
  if (enabled && ((tcas_equipped && intent_not_known) || !tcas_equipped)) {
    bool need_upward_RA = Non_Crossing_Biased_Climb() && Own_Below_Threat();
    bool need_downward_RA = Non_Crossing_Biased_Descend() && Own_Above_Threat();
    if (need_upward_RA && need_downward_RA)
      alt_sep = 0;
    else if (need_upward_RA)
      alt_sep = 1;
    else if (need_downward_RA)
      alt_sep = 2;
    else
      alt_sep = 0;
  }
  return alt_sep;
}
int main(int cvs, bool hc, bool ttrv, int ota, int otar, int otra, int alv, int us, int ds, int orac, int ocap, bool ci) {
  Cur_Vertical_Sep = cvs;
  High_Confidence = hc;
  Two_of_Three_Reports_Valid = ttrv;
  Own_Tracked_Alt = ota;
  Own_Tracked_Alt_Rate = otar;
  Other_Tracked_Alt = otra;
  Alt_Layer_Value = alv;
  Up_Separation = us;
  Down_Separation = ds;
  Other_RAC = orac;
  Other_Capability = ocap;
  Climb_Inhibit = ci;
  initialize();
  return alt_sep_test();
}
)";
  return Source;
}

int bugassist::tcasInputArity() { return 12; }

InputVector bugassist::randomTcasInput(Rng &R) {
  // Threshold-biased sampling: separations hover around the ALIM table
  // values and the NOZCROSS bias (100), vertical separation around the
  // 300 / 600 decision points, so the conditional structure is exercised
  // in both directions -- the property the Siemens pool was designed for.
  auto NearThreshold = [&R](int64_t Threshold) {
    // One draw in six lands exactly on the threshold: boundary mutants
    // (<= vs <, >= vs >) need equality witnesses to be distinguishable.
    return R.chance(1, 6) ? Threshold : Threshold + R.range(-150, 150);
  };
  static const int64_t AlimValues[4] = {400, 500, 640, 740};

  int64_t Alv = R.range(0, 3);
  int64_t Alim = AlimValues[Alv];

  int64_t Cvs;
  if (R.chance(1, 12))
    Cvs = 300; // MINSEP boundary
  else if (R.chance(1, 2))
    Cvs = NearThreshold(600);
  else
    Cvs = R.range(0, 1600);
  if (Cvs < 0)
    Cvs = 0;

  int64_t Up = R.chance(2, 3) ? NearThreshold(Alim) : R.range(0, 1200);
  if (Up < 0)
    Up = 0;
  int64_t Down;
  if (R.chance(1, 6))
    Down = Alim; // threshold equality for the >= / > mutants
  else if (R.chance(1, 6))
    Down = Up; // exact tie in the climb-inhibit comparison
  else if (R.chance(1, 12))
    Down = Up + 100; // tie after the NOZCROSS bias
  else if (R.chance(1, 3))
    Down = Up + R.range(-120, 120);
  else
    Down = R.chance(2, 3) ? NearThreshold(Alim) : R.range(0, 1200);
  if (Down < 0)
    Down = 0;

  int64_t OwnAlt = R.range(1000, 9000);
  int64_t OtherAlt;
  if (R.chance(1, 10))
    OtherAlt = OwnAlt; // equal-altitude witness for the threat mutants
  else if (R.chance(1, 3))
    OtherAlt = OwnAlt + R.range(-50, 50);
  else
    OtherAlt = R.range(1000, 9000);

  int64_t Otar =
      R.chance(1, 6) ? 600
                     : (R.chance(4, 5) ? R.range(0, 600) : R.range(601, 900));

  return {
      InputValue::scalar(Cvs),
      InputValue::scalar(R.chance(4, 5) ? 1 : 0), // High_Confidence
      InputValue::scalar(R.chance(3, 4) ? 1 : 0), // Two_of_Three_Reports
      InputValue::scalar(OwnAlt),
      InputValue::scalar(Otar),
      InputValue::scalar(OtherAlt),
      InputValue::scalar(Alv),
      InputValue::scalar(Up),
      InputValue::scalar(Down),
      InputValue::scalar(R.range(0, 2)), // Other_RAC
      InputValue::scalar(R.range(1, 2)), // Other_Capability
      InputValue::scalar(R.chance(1, 2) ? 1 : 0), // Climb_Inhibit
  };
}

std::vector<InputVector> bugassist::tcasTestPool(size_t Count, uint64_t Seed) {
  Rng R(Seed);
  std::vector<InputVector> Pool;
  Pool.reserve(Count);
  for (size_t I = 0; I < Count; ++I)
    Pool.push_back(randomTcasInput(R));
  return Pool;
}

ExecOptions bugassist::tcasExecOptions() {
  ExecOptions O;
  O.BitWidth = 16;
  O.CheckArrayBounds = false; // spec is the golden output, as in Section 6.1
  O.CheckDivByZero = false;
  return O;
}

UnrollOptions bugassist::tcasUnrollOptions() {
  UnrollOptions O;
  O.BitWidth = 16;
  O.CheckArrayBounds = false;
  // main() spans lines 69..84: the input-copy harness, the initialize()
  // call, and the top-level return. The statements of initialize() itself
  // (lines 15-18) remain soft -- the init-fault versions live there.
  for (uint32_t Line = 69; Line <= 84; ++Line)
    O.HardLines.insert(Line);
  return O;
}
