//===- Timer.cpp - Wall-clock timing ---------------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
// Timer is header-only; this file anchors the translation unit.
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"
