//===- Timer.h - Wall-clock timing for benches ------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simple steady-clock stopwatch used by the benchmark harnesses to report
/// the "RunTime" columns of Tables 1 and 3.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SUPPORT_TIMER_H
#define BUGASSIST_SUPPORT_TIMER_H

#include <chrono>

namespace bugassist {

/// Stopwatch measuring elapsed wall time since construction or reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// \returns elapsed seconds since the last reset (or construction).
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// \returns elapsed milliseconds since the last reset.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace bugassist

#endif // BUGASSIST_SUPPORT_TIMER_H
