//===- SourceLoc.h - Source positions for diagnostics ----------*- C++ -*-===//
//
// Part of BugAssist-Repro, a reproduction of "Cause Clue Clauses: Error
// Localization using Maximum Satisfiability" (Jose & Majumdar, PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight line/column positions used by the lexer, parser, and -- most
/// importantly -- the clause-grouping machinery: BugAssist reports suspects
/// as source *lines*, so every AST node and SSA statement carries a
/// SourceLoc whose line number becomes its clause-group key.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SUPPORT_SOURCELOC_H
#define BUGASSIST_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace bugassist {

/// A position in a mini-C source buffer. Lines and columns are 1-based;
/// line 0 denotes "unknown / synthesized".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  constexpr bool isValid() const { return Line != 0; }

  friend constexpr bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
  friend constexpr bool operator!=(SourceLoc A, SourceLoc B) {
    return !(A == B);
  }
  friend constexpr bool operator<(SourceLoc A, SourceLoc B) {
    return A.Line != B.Line ? A.Line < B.Line : A.Col < B.Col;
  }

  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

/// A half-open range of positions; used for diagnostics underlining.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc B, SourceLoc E) : Begin(B), End(E) {}
  explicit SourceRange(SourceLoc P) : Begin(P), End(P) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace bugassist

#endif // BUGASSIST_SUPPORT_SOURCELOC_H
