//===- Diagnostics.cpp - Error reporting sink -----------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace bugassist;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string DiagEngine::render() const {
  std::string Out;
  for (const Diag &D : All) {
    if (D.Loc.isValid()) {
      Out += D.Loc.str();
      Out += ": ";
    }
    Out += severityName(D.Severity);
    Out += ": ";
    Out += D.Message;
    Out += '\n';
  }
  return Out;
}
