//===- FaultInject.cpp - test-only fault injection hooks --------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <new>

namespace bugassist {
namespace faultinject {

namespace detail {

std::atomic<bool> Armed{false};

namespace {
std::atomic<uint64_t> Remaining{0};
std::atomic<uint8_t> ArmedEvent{0};
std::atomic<uint8_t> ArmedFault{0};
} // namespace

bool onEventSlow(Event E) {
  if (static_cast<uint8_t>(E) != ArmedEvent.load(std::memory_order_relaxed))
    return false;
  // Decrement without wrapping past zero; only the thread that observes the
  // 1 -> 0 transition fires the fault, so a concurrent portfolio loses
  // exactly one worker.
  uint64_t Cur = Remaining.load(std::memory_order_relaxed);
  do {
    if (Cur == 0)
      return false;
  } while (!Remaining.compare_exchange_weak(Cur, Cur - 1,
                                            std::memory_order_relaxed));
  if (Cur != 1)
    return false;
  Armed.store(false, std::memory_order_relaxed);
  if (static_cast<Fault>(ArmedFault.load(std::memory_order_relaxed)) ==
      Fault::BadAlloc)
    throw std::bad_alloc();
  return true;
}

} // namespace detail

void arm(Event E, Fault F, uint64_t Nth) {
  detail::ArmedEvent.store(static_cast<uint8_t>(E), std::memory_order_relaxed);
  detail::ArmedFault.store(static_cast<uint8_t>(F), std::memory_order_relaxed);
  detail::Remaining.store(Nth == 0 ? 1 : Nth, std::memory_order_relaxed);
  detail::Armed.store(true, std::memory_order_relaxed);
}

void disarm() {
  detail::Armed.store(false, std::memory_order_relaxed);
  detail::Remaining.store(0, std::memory_order_relaxed);
}

} // namespace faultinject
} // namespace bugassist
