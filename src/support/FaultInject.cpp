//===- FaultInject.cpp - programmable fault-injection campaigns -------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <cassert>
#include <cstdlib>
#include <new>

namespace bugassist {
namespace faultinject {

namespace detail {

std::atomic<bool> Armed{false};

namespace {

/// Per-event schedule state. All fields are atomics so a disarm racing an
/// in-flight onEvent is merely late, never undefined behavior. One
/// scripted rule + one probabilistic rule per event is enough for every
/// campaign the tests run; arm() overwrites the scripted slot.
struct Slot {
  std::atomic<uint64_t> Count{0};   ///< occurrences seen since arm
  std::atomic<uint64_t> FireAt{0};  ///< next scripted firing occurrence (0 = off)
  std::atomic<uint64_t> Period{0};  ///< 0 = one-shot, else repeat interval
  std::atomic<uint8_t> ScriptFault{0};
  std::atomic<uint32_t> ProbScaled{0}; ///< P(fire) * 2^32, 0 = off
  std::atomic<uint8_t> ProbFault{0};
  std::atomic<uint64_t> Fired{0};
};

Slot Slots[NumEvents];
std::atomic<uint64_t> RngState{0x9e3779b97f4a7c15ull};

Slot &slot(Event E) { return Slots[static_cast<size_t>(E)]; }

/// Shared xorshift64 draw; the CAS keeps concurrent draws distinct.
uint32_t nextRand() {
  uint64_t X = RngState.load(std::memory_order_relaxed);
  uint64_t N;
  do {
    N = X;
    N ^= N << 13;
    N ^= N >> 7;
    N ^= N << 17;
  } while (
      !RngState.compare_exchange_weak(X, N, std::memory_order_relaxed));
  return static_cast<uint32_t>(N >> 32);
}

/// After a one-shot exhausts, drop the armed flag if nothing anywhere is
/// still scheduled, restoring the single-load fast path. A racing arm()
/// re-raises the flag after writing its schedule, so the worst race costs
/// one extra slow-path call, never a missed fault.
void maybeDisarmFastPath() {
  for (const Slot &S : Slots)
    if (S.FireAt.load(std::memory_order_relaxed) ||
        S.ProbScaled.load(std::memory_order_relaxed))
      return;
  Armed.store(false, std::memory_order_relaxed);
}

void fire(Slot &S, Fault F) {
  S.Fired.fetch_add(1, std::memory_order_relaxed);
  if (F == Fault::BadAlloc)
    throw std::bad_alloc();
}

} // namespace

bool onEventSlow(Event E) {
  Slot &S = slot(E);
  uint64_t N = S.Count.fetch_add(1, std::memory_order_relaxed) + 1;

  // Scripted rule: occurrence numbers are unique per thread (fetch_add),
  // so exactly one thread matches FireAt; only it advances or clears the
  // schedule, making repeats exact even under contention.
  uint64_t FA = S.FireAt.load(std::memory_order_relaxed);
  if (FA && N == FA) {
    uint64_t P = S.Period.load(std::memory_order_relaxed);
    S.FireAt.store(P ? FA + P : 0, std::memory_order_relaxed);
    if (!P)
      maybeDisarmFastPath();
    fire(S, static_cast<Fault>(S.ScriptFault.load(std::memory_order_relaxed)));
    return true;
  }

  uint32_t Prob = S.ProbScaled.load(std::memory_order_relaxed);
  if (Prob && nextRand() < Prob) {
    fire(S, static_cast<Fault>(S.ProbFault.load(std::memory_order_relaxed)));
    return true;
  }
  return false;
}

} // namespace detail

using detail::Slots;

void arm(Event E, Fault F, uint64_t Nth, uint64_t Period) {
  detail::Slot &S = detail::slot(E);
  S.Count.store(0, std::memory_order_relaxed);
  S.ScriptFault.store(static_cast<uint8_t>(F), std::memory_order_relaxed);
  S.Period.store(Period, std::memory_order_relaxed);
  S.FireAt.store(Nth == 0 ? 1 : Nth, std::memory_order_relaxed);
  detail::Armed.store(true, std::memory_order_relaxed);
}

void armProbability(Event E, Fault F, double Probability) {
  if (Probability < 0)
    Probability = 0;
  if (Probability > 1)
    Probability = 1;
  detail::Slot &S = detail::slot(E);
  S.Count.store(0, std::memory_order_relaxed);
  S.ProbFault.store(static_cast<uint8_t>(F), std::memory_order_relaxed);
  // Scale into a uint32 threshold; a rate of 1.0 saturates (fires on every
  // draw but the all-ones one -- close enough for a test campaign, and it
  // keeps the comparison branch-free).
  uint64_t Scaled = static_cast<uint64_t>(Probability * 4294967296.0);
  if (Probability > 0 && Scaled == 0)
    Scaled = 1;
  if (Scaled > 0xffffffffull)
    Scaled = 0xffffffffull;
  S.ProbScaled.store(static_cast<uint32_t>(Scaled), std::memory_order_relaxed);
  if (Scaled)
    detail::Armed.store(true, std::memory_order_relaxed);
}

void setSeed(uint64_t Seed) {
  detail::RngState.store(Seed ? Seed : 0x9e3779b97f4a7c15ull,
                         std::memory_order_relaxed);
}

void disarm() {
  detail::Armed.store(false, std::memory_order_relaxed);
  for (detail::Slot &S : Slots) {
    S.FireAt.store(0, std::memory_order_relaxed);
    S.Period.store(0, std::memory_order_relaxed);
    S.ProbScaled.store(0, std::memory_order_relaxed);
    S.Count.store(0, std::memory_order_relaxed);
  }
}

uint64_t firedTotal() {
  uint64_t Total = 0;
  for (const detail::Slot &S : Slots)
    Total += S.Fired.load(std::memory_order_relaxed);
  return Total;
}

uint64_t firedCount(Event E) {
  return detail::slot(E).Fired.load(std::memory_order_relaxed);
}

namespace {

bool parseEvent(const std::string &Name, Event &E) {
  if (Name == "alloc")
    E = Event::Allocation;
  else if (Name == "restart")
    E = Event::Restart;
  else if (Name == "cachefill")
    E = Event::CacheFill;
  else if (Name == "jsonparse")
    E = Event::JsonParse;
  else if (Name == "queuepop")
    E = Event::QueuePop;
  else if (Name == "emitterflush")
    E = Event::EmitterFlush;
  else if (Name == "simplify")
    E = Event::SimplifyStep;
  else
    return false;
  return true;
}

bool parseFault(const std::string &Name, Fault &F) {
  if (Name == "badalloc")
    F = Fault::BadAlloc;
  else if (Name == "interrupt")
    F = Fault::Interrupt;
  else
    return false;
  return true;
}

bool parseU64(const std::string &Text, uint64_t &Out) {
  if (Text.empty() || Text.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  char *End = nullptr;
  Out = std::strtoull(Text.c_str(), &End, 10);
  return errno == 0 && End && *End == '\0';
}

} // namespace

bool armSpec(const std::string &Spec, std::string &Error) {
  disarm();
  for (detail::Slot &S : Slots)
    S.Fired.store(0, std::memory_order_relaxed);

  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Semi = Spec.find(';', Pos);
    std::string Clause = Spec.substr(
        Pos, Semi == std::string::npos ? std::string::npos : Semi - Pos);
    Pos = Semi == std::string::npos ? Spec.size() + 1 : Semi + 1;
    if (Clause.empty())
      continue;

    if (Clause.rfind("seed=", 0) == 0) {
      uint64_t Seed;
      if (!parseU64(Clause.substr(5), Seed)) {
        Error = "bad seed in fault spec clause '" + Clause + "'";
        disarm();
        return false;
      }
      setSeed(Seed);
      continue;
    }

    size_t Colon = Clause.find(':');
    size_t Sched = Clause.find_first_of("@%", Colon == std::string::npos
                                                  ? 0
                                                  : Colon + 1);
    Event E;
    Fault F;
    if (Colon == std::string::npos || Sched == std::string::npos ||
        !parseEvent(Clause.substr(0, Colon), E) ||
        !parseFault(Clause.substr(Colon + 1, Sched - Colon - 1), F)) {
      Error = "bad fault spec clause '" + Clause +
              "' (want event:fault@N[/P] or event:fault%RATE)";
      disarm();
      return false;
    }
    std::string Rest = Clause.substr(Sched + 1);
    if (Clause[Sched] == '@') {
      uint64_t Nth, Period = 0;
      size_t Slash = Rest.find('/');
      bool Ok = parseU64(Rest.substr(0, Slash), Nth) && Nth > 0;
      if (Ok && Slash != std::string::npos)
        Ok = parseU64(Rest.substr(Slash + 1), Period) && Period > 0;
      if (!Ok) {
        Error = "bad occurrence schedule in fault spec clause '" + Clause +
                "'";
        disarm();
        return false;
      }
      arm(E, F, Nth, Period);
    } else {
      char *End = nullptr;
      errno = 0;
      double Rate = std::strtod(Rest.c_str(), &End);
      if (Rest.empty() || errno != 0 || !End || *End != '\0' || !(Rate > 0) ||
          Rate > 1) {
        Error = "bad rate in fault spec clause '" + Clause +
                "' (want a number in (0, 1])";
        disarm();
        return false;
      }
      armProbability(E, F, Rate);
    }
  }
  return true;
}

ScopedFault::ScopedFault(const std::string &Spec) {
  std::string Error;
  bool Ok = armSpec(Spec, Error);
  assert(Ok && "bad fault spec");
  (void)Ok;
}

} // namespace faultinject
} // namespace bugassist
