//===- Rng.h - Deterministic random numbers ---------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SplitMix64 generator. Everything random in this repository (the TCAS
/// test pool, property-test inputs, solver restarts) flows through this so
/// that experiments are reproducible bit-for-bit across runs and platforms;
/// std::mt19937 distributions are not guaranteed portable.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SUPPORT_RNG_H
#define BUGASSIST_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace bugassist {

/// SplitMix64: tiny, fast, and passes BigCrush; ideal for reproducible
/// workload generation.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    // Modulo bias is negligible for the small bounds we draw.
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Bernoulli draw: true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  double unitReal() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

private:
  uint64_t State;
};

} // namespace bugassist

#endif // BUGASSIST_SUPPORT_RNG_H
