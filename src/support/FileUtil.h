//===- FileUtil.h - tiny file helpers ---------------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-file slurp shared by the DIMACS reader and the CLI. Kept
/// deliberately minimal: binary-mode stdio, no size limit (inputs are
/// benchmark instances and source files the caller chose).
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SUPPORT_FILEUTIL_H
#define BUGASSIST_SUPPORT_FILEUTIL_H

#include <cstdio>
#include <optional>
#include <string>

namespace bugassist {

/// Reads all of \p Path. \returns std::nullopt when the file cannot be
/// opened or a read error occurs.
inline std::optional<std::string> readFileToString(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return std::nullopt;
  std::string Text;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  bool Bad = std::ferror(F) != 0;
  std::fclose(F);
  if (Bad)
    return std::nullopt;
  return Text;
}

} // namespace bugassist

#endif // BUGASSIST_SUPPORT_FILEUTIL_H
