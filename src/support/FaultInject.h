//===- FaultInject.h - test-only fault injection hooks ----------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-global, one-shot fault injector for robustness tests: arm a
/// simulated fault (an OOM `std::bad_alloc` or a spurious interrupt) at the
/// Nth future occurrence of an instrumented event, and the next solver to
/// reach that event suffers it. The portfolio tests use this to crash
/// exactly one worker thread mid-race and assert that the survivors still
/// produce the canonical answer.
///
/// The hooks are compiled in unconditionally but cost a single relaxed
/// atomic load when disarmed (the default), so production paths pay nothing
/// measurable. Arming is one-shot: the fault fires once and the injector
/// disarms itself, which under a concurrent portfolio means exactly one
/// worker is hit. Not intended for use outside tests.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SUPPORT_FAULTINJECT_H
#define BUGASSIST_SUPPORT_FAULTINJECT_H

#include <atomic>
#include <cstdint>

namespace bugassist {
namespace faultinject {

/// Instrumented event sites inside the solver.
enum class Event : uint8_t {
  Allocation, ///< Solver::allocClause (every clause allocation)
  Restart     ///< Solver::solve restart boundary
};

/// What happens when the armed countdown reaches zero.
enum class Fault : uint8_t {
  BadAlloc, ///< throw std::bad_alloc from the event site (simulated OOM)
  Interrupt ///< report "fire" so the site raises a spurious interrupt
};

/// Arms a one-shot fault: the \p Nth future occurrence of \p E (1-based;
/// 0 is treated as 1) triggers \p F, after which the injector disarms
/// itself. Counting is global across all solvers and threads.
void arm(Event E, Fault F, uint64_t Nth);

/// Disarms without firing. Tests call this in teardown so a fault armed
/// but never reached cannot leak into the next test.
void disarm();

namespace detail {
extern std::atomic<bool> Armed;
bool onEventSlow(Event E);
} // namespace detail

/// True while a fault is armed. Single relaxed load; the instrumented
/// sites use it to skip the slow path entirely in normal operation.
inline bool active() {
  return detail::Armed.load(std::memory_order_relaxed);
}

/// Event-site hook. Counts down the armed fault; on the firing occurrence
/// either throws std::bad_alloc (Fault::BadAlloc) or returns true
/// (Fault::Interrupt, the caller raises its own interrupt flag). Returns
/// false when disarmed, counting, or armed for a different event.
inline bool onEvent(Event E) {
  return active() && detail::onEventSlow(E);
}

} // namespace faultinject
} // namespace bugassist

#endif // BUGASSIST_SUPPORT_FAULTINJECT_H
