//===- FaultInject.h - programmable fault-injection campaigns ---*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-global fault-injection campaign engine for robustness tests:
/// arm per-event schedules -- scripted (fire at the Nth future occurrence,
/// optionally repeating every P occurrences after that) and seeded
/// probabilistic (fire each occurrence with probability p) -- and the next
/// thread to reach an instrumented event site suffers the configured fault.
/// The serve soak harness uses this to crash workers, poison cache fills,
/// and raise spurious interrupts by the hundred while asserting that no
/// response is ever lost, duplicated, or changed.
///
/// The hooks are compiled in unconditionally but cost a single relaxed
/// atomic load when disarmed (the default), so production paths pay
/// nothing measurable. Scripted one-shot firings are exact under
/// concurrency: occurrence numbers are claimed by fetch_add, so exactly
/// one thread observes the firing occurrence. Campaigns are armed from a
/// spec string (the CLI's `BUGASSIST_FAULTS` env var / `--faults` flag
/// route here); see parseSpec. Not intended for use outside tests.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SUPPORT_FAULTINJECT_H
#define BUGASSIST_SUPPORT_FAULTINJECT_H

#include <atomic>
#include <cstdint>
#include <string>

namespace bugassist {
namespace faultinject {

/// Instrumented event sites. The first two live in the solver (PR 6); the
/// rest instrument the serve stack and the inprocessing simplifier.
enum class Event : uint8_t {
  Allocation,   ///< Solver::allocClause (every clause allocation)
  Restart,      ///< Solver::solve restart boundary
  CacheFill,    ///< FormulaCache entry build (parse + encode)
  JsonParse,    ///< serve request-line JSON parse
  QueuePop,     ///< serve worker RequestQueue::pop return
  EmitterFlush, ///< OrderedEmitter flush (after recording the payload)
  SimplifyStep  ///< Simplifier elimination-queue step
};
constexpr size_t NumEvents = 7;

/// What happens when a schedule fires.
enum class Fault : uint8_t {
  BadAlloc, ///< throw std::bad_alloc from the event site (simulated OOM)
  Interrupt ///< report "fire" so the site raises a spurious interrupt /
            ///< transient failure of its own choosing
};

/// Arms a scripted rule on \p E: the \p Nth future occurrence (1-based;
/// 0 is treated as 1) triggers \p F; when \p Period is nonzero the rule
/// then re-fires every \p Period further occurrences (a repeating crash
/// campaign), else it disarms after the one shot. Occurrence counting is
/// global across all threads and starts at this call. Other events'
/// schedules are unaffected; call disarm() first for a clean slate.
void arm(Event E, Fault F, uint64_t Nth, uint64_t Period = 0);

/// Arms a probabilistic rule on \p E: every occurrence fires \p F with
/// probability \p Probability (clamped to [0, 1]), drawn from the shared
/// seeded generator (setSeed).
void armProbability(Event E, Fault F, double Probability);

/// Seeds the shared xorshift generator used by probabilistic rules.
/// Single-threaded runs replay identically for a given seed; concurrent
/// runs interleave draws nondeterministically but still reproduce the
/// same marginal fault rate.
void setSeed(uint64_t Seed);

/// Disarms every schedule and zeroes occurrence counters without firing.
/// Tests call this in teardown (via ScopedFault) so a fault armed but
/// never reached cannot leak into the next test. Fired counters survive
/// until the next arm via armSpec/ScopedFault spec form.
void disarm();

/// Parses and arms a campaign spec. Grammar (clauses separated by ';'):
///
///   spec    := clause (';' clause)*
///   clause  := event ':' fault sched | 'seed=' integer
///   sched   := '@' N [ '/' P ]      -- scripted: fire at the Nth
///              occurrence, then every P after that (omit P: one-shot)
///            | '%' RATE             -- probabilistic: rate in (0, 1]
///   event   := alloc | restart | cachefill | jsonparse | queuepop
///            | emitterflush | simplify
///   fault   := badalloc | interrupt
///
/// Example: "queuepop:badalloc@3/5;alloc:interrupt%0.001;seed=42".
/// Disarms everything first, then arms the clauses. \returns false and
/// fills \p Error (leaving the engine disarmed) on a malformed spec.
bool armSpec(const std::string &Spec, std::string &Error);

/// Total faults fired since the last counter reset (disarm keeps them;
/// armSpec and the ScopedFault spec ctor reset them).
uint64_t firedTotal();
/// Faults fired at \p E's sites since the last counter reset.
uint64_t firedCount(Event E);

/// RAII guard: arms in the constructor, disarms in the destructor, so a
/// fault armed but never reached cannot leak into the next test case.
class ScopedFault {
public:
  ScopedFault(Event E, Fault F, uint64_t Nth, uint64_t Period = 0) {
    arm(E, F, Nth, Period);
  }
  /// Spec form (resets fired counters). Asserts the spec parses; use
  /// armSpec directly to handle errors.
  explicit ScopedFault(const std::string &Spec);
  ScopedFault(const ScopedFault &) = delete;
  ScopedFault &operator=(const ScopedFault &) = delete;
  ~ScopedFault() { disarm(); }
};

namespace detail {
extern std::atomic<bool> Armed;
bool onEventSlow(Event E);
} // namespace detail

/// True while any schedule is armed. Single relaxed load; the
/// instrumented sites use it to skip the slow path entirely in normal
/// operation.
inline bool active() {
  return detail::Armed.load(std::memory_order_relaxed);
}

/// Event-site hook. Advances \p E's occurrence counter and evaluates its
/// schedules; on a firing occurrence either throws std::bad_alloc
/// (Fault::BadAlloc) or returns true (Fault::Interrupt -- the caller
/// raises its own interrupt flag or simulates a transient failure).
/// Returns false when disarmed, counting, or armed for different events.
inline bool onEvent(Event E) {
  return active() && detail::onEventSlow(E);
}

} // namespace faultinject
} // namespace bugassist

#endif // BUGASSIST_SUPPORT_FAULTINJECT_H
