//===- Diagnostics.h - Error reporting sink ---------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal diagnostics engine. The library never throws; front-end and
/// semantic errors are pushed into a DiagEngine that callers inspect. This
/// mirrors the recoverable-error discipline of the LLVM coding standards.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SUPPORT_DIAGNOSTICS_H
#define BUGASSIST_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace bugassist {

enum class DiagSeverity { Note, Warning, Error };

/// One reported diagnostic: severity, position, and rendered message.
struct Diag {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced while processing one source buffer.
///
/// Typical use:
/// \code
///   DiagEngine Diags;
///   Parser P(Source, Diags);
///   auto Prog = P.parseProgram();
///   if (Diags.hasErrors()) { ... report Diags.render() ... }
/// \endcode
class DiagEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    All.push_back({DiagSeverity::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    All.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    All.push_back({DiagSeverity::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diag> &diags() const { return All; }
  void clear() {
    All.clear();
    NumErrors = 0;
  }

  /// Renders all diagnostics into a single human-readable string, one per
  /// line, in the order they were reported.
  std::string render() const;

private:
  std::vector<Diag> All;
  unsigned NumErrors = 0;
};

} // namespace bugassist

#endif // BUGASSIST_SUPPORT_DIAGNOSTICS_H
