//===- Slicer.cpp - Static backward slicing on the trace IR ------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "reduce/Slicer.h"

#include <vector>

using namespace bugassist;

UnrolledProgram bugassist::sliceProgram(const UnrolledProgram &UP,
                                        SliceStats *Stats) {
  std::vector<bool> Needed(UP.Vars.size(), false);
  std::vector<SsaId> Work;

  auto Mark = [&](SsaId Id) {
    if (Id != NoSsa && !Needed[Id]) {
      Needed[Id] = true;
      Work.push_back(Id);
    }
  };

  // Roots: the spec and everything that constrains feasibility.
  for (const TraceObligation &O : UP.Obligations) {
    Mark(O.Guard);
    Mark(O.Cond);
  }
  for (const TraceAssumption &A : UP.Assumptions) {
    Mark(A.Guard);
    Mark(A.Cond);
  }
  Mark(UP.RetVal);

  // Def lookup by SSA id.
  std::vector<const TraceDef *> DefOf(UP.Vars.size(), nullptr);
  for (const TraceDef &D : UP.Defs)
    DefOf[D.Def] = &D;

  // Transitive closure over RHS uses.
  while (!Work.empty()) {
    SsaId Id = Work.back();
    Work.pop_back();
    const TraceDef *D = DefOf[Id];
    if (!D || !D->Rhs)
      continue;
    std::vector<SsaId> Uses;
    collectSymExprUses(D->Rhs.get(), Uses);
    for (SsaId U : Uses)
      Mark(U);
  }

  UnrolledProgram Out;
  Out.Vars = UP.Vars;
  Out.Inputs = UP.Inputs;
  Out.InputShapes = UP.InputShapes;
  Out.RetVal = UP.RetVal;
  Out.RetIsBool = UP.RetIsBool;
  Out.MaxUnwinding = UP.MaxUnwinding;
  for (const TraceObligation &O : UP.Obligations)
    Out.Obligations.push_back(O);
  for (const TraceAssumption &A : UP.Assumptions)
    Out.Assumptions.push_back(A);

  size_t AssignsBefore = 0, AssignsAfter = 0;
  for (const TraceDef &D : UP.Defs) {
    if (D.Role == DefRole::UserAssign)
      ++AssignsBefore;
    // Inputs always survive: the trace formula binds them to the test.
    if (D.Role != DefRole::Input && !Needed[D.Def])
      continue;
    TraceDef Copy;
    Copy.Def = D.Def;
    Copy.Rhs = cloneSymExpr(D.Rhs.get());
    Copy.Role = D.Role;
    Copy.Line = D.Line;
    Copy.Label = D.Label;
    Copy.Unwinding = D.Unwinding;
    Copy.Trusted = D.Trusted;
    Copy.Shadow = D.Shadow;
    if (Copy.Role == DefRole::UserAssign)
      ++AssignsAfter;
    Out.Defs.push_back(std::move(Copy));
  }

  if (Stats) {
    Stats->DefsBefore = UP.Defs.size();
    Stats->DefsAfter = Out.Defs.size();
    Stats->AssignsBefore = AssignsBefore;
    Stats->AssignsAfter = AssignsAfter;
  }
  return Out;
}
