//===- DeltaDebug.cpp - ddmin input minimization ------------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "reduce/DeltaDebug.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace bugassist;

namespace {

/// Flat view of the scalar atoms of an InputVector.
struct AtomView {
  std::vector<int64_t> Values;

  static AtomView flatten(const InputVector &In) {
    AtomView V;
    for (const InputValue &I : In) {
      if (I.IsArray)
        V.Values.insert(V.Values.end(), I.Array.begin(), I.Array.end());
      else
        V.Values.push_back(I.Scalar);
    }
    return V;
  }

  /// Rebuilds an InputVector shaped like \p Template with only the atoms
  /// in \p Keep carrying their original value (others default to 0).
  InputVector rebuild(const InputVector &Template,
                      const std::vector<bool> &Keep) const {
    InputVector Out;
    size_t Cursor = 0;
    for (const InputValue &I : Template) {
      if (I.IsArray) {
        std::vector<int64_t> Vals;
        for (size_t J = 0; J < I.Array.size(); ++J, ++Cursor)
          Vals.push_back(Keep[Cursor] ? Values[Cursor] : 0);
        Out.push_back(InputValue::array(std::move(Vals)));
      } else {
        Out.push_back(
            InputValue::scalar(Keep[Cursor] ? Values[Cursor] : 0));
        ++Cursor;
      }
    }
    return Out;
  }
};

} // namespace

InputVector bugassist::minimizeFailingInput(const InputVector &Failing,
                                            const FailPredicate &StillFails,
                                            DdminStats *Stats) {
  AtomView Atoms = AtomView::flatten(Failing);
  size_t N = Atoms.Values.size();

  // Only atoms that differ from the default are interesting.
  std::vector<size_t> Active;
  for (size_t I = 0; I < N; ++I)
    if (Atoms.Values[I] != 0)
      Active.push_back(I);

  size_t Calls = 0;
  auto Fails = [&](const std::vector<size_t> &Kept) {
    std::vector<bool> Keep(N, false);
    for (size_t I : Kept)
      Keep[I] = true;
    ++Calls;
    return StillFails(Atoms.rebuild(Failing, Keep));
  };

  // ddmin main loop over the active atoms.
  size_t Granularity = 2;
  while (Active.size() >= 2) {
    size_t ChunkSize = std::max<size_t>(1, Active.size() / Granularity);
    bool Reduced = false;

    // Try removing each chunk (testing its complement).
    for (size_t Start = 0; Start < Active.size(); Start += ChunkSize) {
      std::vector<size_t> Complement;
      for (size_t I = 0; I < Active.size(); ++I)
        if (I < Start || I >= Start + ChunkSize)
          Complement.push_back(Active[I]);
      if (Complement.size() == Active.size())
        continue;
      if (Fails(Complement)) {
        Active = std::move(Complement);
        Granularity = std::max<size_t>(2, Granularity - 1);
        Reduced = true;
        break;
      }
    }
    if (Reduced)
      continue;
    if (Granularity >= Active.size())
      break;
    Granularity = std::min(Active.size(), Granularity * 2);
  }

  if (Stats) {
    Stats->PredicateCalls = Calls;
    Stats->AtomsBefore = N;
    Stats->AtomsAfter = Active.size();
  }
  std::vector<bool> Keep(N, false);
  for (size_t I : Active)
    Keep[I] = true;
  InputVector Result = Atoms.rebuild(Failing, Keep);
  assert(StillFails(Result) && "ddmin result must still fail");
  return Result;
}
