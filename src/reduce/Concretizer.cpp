//===- Concretizer.cpp - Concolic reduction measurement ------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "reduce/Concretizer.h"

using namespace bugassist;

size_t bugassist::countConcretizableDefs(const UnrolledProgram &UP) {
  size_t N = 0;
  for (const TraceDef &D : UP.Defs)
    if (D.Trusted && D.Shadow.has_value() && D.Role != DefRole::Input)
      ++N;
  return N;
}

ReductionReport bugassist::measureConcretization(const UnrolledProgram &UP,
                                                 EncodeOptions BaseOpts) {
  ReductionReport R;

  EncodeOptions Plain = BaseOpts;
  Plain.ConcretizeTrusted = false;
  EncodedProgram EPlain = encodeProgram(UP, Plain);
  R.VarsBefore = static_cast<size_t>(EPlain.Formula.numVars());
  R.ClausesBefore = EPlain.Formula.numClauses();

  EncodeOptions Conc = BaseOpts;
  Conc.ConcretizeTrusted = true;
  EncodedProgram EConc = encodeProgram(UP, Conc);
  R.VarsAfter = static_cast<size_t>(EConc.Formula.numVars());
  R.ClausesAfter = EConc.Formula.numClauses();

  for (const TraceDef &D : UP.Defs) {
    if (D.Role != DefRole::UserAssign)
      continue;
    ++R.AssignsBefore;
    if (!(D.Trusted && D.Shadow.has_value()))
      ++R.AssignsAfter;
  }
  return R;
}
