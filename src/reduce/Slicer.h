//===- Slicer.h - Static backward slicing on the trace IR -------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "S" trace reduction of Section 6.2: drop every definition the
/// specification cannot observe. Soundness for localization: a statement
/// that cannot influence any obligation, assumption, or the return value
/// can never appear in a CoMSS, so removing it changes no diagnosis.
/// The paper's totinfo row shrinks 734 assignments to 21 this way.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_REDUCE_SLICER_H
#define BUGASSIST_REDUCE_SLICER_H

#include "bmc/Trace.h"

namespace bugassist {

struct SliceStats {
  size_t DefsBefore = 0;
  size_t DefsAfter = 0;
  size_t AssignsBefore = 0; ///< UserAssign defs (the Table 3 assign# metric)
  size_t AssignsAfter = 0;
};

/// Backward-slices \p UP from its obligations, assumptions, and return
/// value. Input definitions survive unconditionally (the test binding
/// needs them). SSA ids are preserved; dropped definitions simply vanish
/// from Defs.
UnrolledProgram sliceProgram(const UnrolledProgram &UP,
                             SliceStats *Stats = nullptr);

} // namespace bugassist

#endif // BUGASSIST_REDUCE_SLICER_H
