//===- Concretizer.h - Concolic reduction measurement -----------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "C" trace reduction of Section 6.2: encode trusted (library /
/// already-verified) functions as the constants observed along the
/// concrete failing run instead of full symbolic circuits. The mechanism
/// lives in the unroller (shadow values) and encoder (ConcretizeTrusted);
/// this module packages the before/after measurement that Table 3 reports
/// (assign#, var#, clause#).
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_REDUCE_CONCRETIZER_H
#define BUGASSIST_REDUCE_CONCRETIZER_H

#include "bmc/Encoder.h"
#include "bmc/Trace.h"

namespace bugassist {

/// Formula-size metrics before and after a reduction, matching the
/// columns of the paper's Table 3.
struct ReductionReport {
  size_t AssignsBefore = 0;
  size_t AssignsAfter = 0;
  size_t VarsBefore = 0;
  size_t VarsAfter = 0;
  size_t ClausesBefore = 0;
  size_t ClausesAfter = 0;
};

/// Encodes \p UP twice -- plain vs. ConcretizeTrusted -- and reports the
/// shrinkage. "Assigns after" counts UserAssign definitions that still
/// have symbolic circuits (trusted+shadowed ones became constants).
ReductionReport measureConcretization(const UnrolledProgram &UP,
                                      EncodeOptions BaseOpts = {});

/// \returns the number of definitions eligible for concretization.
size_t countConcretizableDefs(const UnrolledProgram &UP);

} // namespace bugassist

#endif // BUGASSIST_REDUCE_CONCRETIZER_H
