//===- DeltaDebug.h - ddmin input minimization ------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Zeller & Hildebrandt's ddmin [33], the "D" trace reduction of
/// Section 6.2: minimize a failure-inducing input so the resulting
/// execution (and hence the trace formula) shrinks. Here the atoms are the
/// scalar elements of the entry input; removed atoms revert to a default
/// value (0), and the predicate decides whether the reduced input still
/// fails the same way.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_REDUCE_DELTADEBUG_H
#define BUGASSIST_REDUCE_DELTADEBUG_H

#include "interp/Interpreter.h"

#include <functional>

namespace bugassist {

/// \returns true when the candidate input still exhibits the failure.
using FailPredicate = std::function<bool(const InputVector &)>;

struct DdminStats {
  size_t PredicateCalls = 0;
  size_t AtomsBefore = 0;
  size_t AtomsAfter = 0; ///< atoms still carrying their original value
};

/// Classic ddmin over the scalar atoms of \p Failing. \p StillFails must
/// hold for \p Failing itself. \returns a 1-minimal input: resetting any
/// single remaining atom to 0 stops the failure.
InputVector minimizeFailingInput(const InputVector &Failing,
                                 const FailPredicate &StillFails,
                                 DdminStats *Stats = nullptr);

} // namespace bugassist

#endif // BUGASSIST_REDUCE_DELTADEBUG_H
