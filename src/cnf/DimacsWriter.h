//===- DimacsWriter.h - DIMACS / WCNF serialization -------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes CnfFormula instances to the standard DIMACS CNF format and to
/// the (weighted) partial MaxSAT WCNF format, so instances can be cross-
/// checked against external solvers. The WCNF writer emits the paper's
/// encoding directly: TF1 clauses (grouped, selector-guarded) are hard; the
/// unit selector clauses of TF2 are soft with their group weights.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_CNF_DIMACSWRITER_H
#define BUGASSIST_CNF_DIMACSWRITER_H

#include "cnf/Cnf.h"

#include <string>

namespace bugassist {

/// Renders \p F as a DIMACS "p cnf" instance (hard clauses only).
std::string writeDimacs(const CnfFormula &F);

/// Renders \p F as a classic "p wcnf" instance: every hard clause gets the
/// top weight, every group's selector becomes a soft unit clause with the
/// group's weight. Top = 1 + sum of soft weights.
std::string writeWcnf(const CnfFormula &F);

} // namespace bugassist

#endif // BUGASSIST_CNF_DIMACSWRITER_H
