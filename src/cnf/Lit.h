//===- Lit.h - Boolean variables and literals -------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniSAT-style variable and literal types shared by the CNF layer, the
/// CDCL solver, the MaxSAT solvers, and the bit blaster. A literal packs a
/// variable index and a sign into one integer: Lit = 2*Var + sign, so the
/// positive and negative literal of a variable are adjacent, which makes
/// watch lists and polarity flips branch-free.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_CNF_LIT_H
#define BUGASSIST_CNF_LIT_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace bugassist {

/// A Boolean variable is a dense 0-based index.
using Var = int32_t;

constexpr Var NullVar = -1;

/// A literal: variable plus polarity, encoded as 2*Var+sign. Sign bit set
/// means the *negative* literal.
class Lit {
public:
  constexpr Lit() : Code(-2) {}
  constexpr Lit(Var V, bool Negated) : Code(V * 2 + (Negated ? 1 : 0)) {}

  constexpr Var var() const { return Code >> 1; }
  constexpr bool negated() const { return Code & 1; }
  constexpr int32_t code() const { return Code; }

  constexpr Lit operator~() const { return fromCode(Code ^ 1); }
  constexpr bool isValid() const { return Code >= 0; }

  static constexpr Lit fromCode(int32_t C) {
    Lit L;
    L.Code = C;
    return L;
  }

  friend constexpr bool operator==(Lit A, Lit B) { return A.Code == B.Code; }
  friend constexpr bool operator!=(Lit A, Lit B) { return A.Code != B.Code; }
  friend constexpr bool operator<(Lit A, Lit B) { return A.Code < B.Code; }

  /// DIMACS rendering: 1-based, negative for negated literals.
  std::string str() const {
    return std::to_string(negated() ? -(var() + 1) : (var() + 1));
  }

private:
  int32_t Code;
};

constexpr Lit NullLit{};

/// Convenience builder for the common positive-literal case.
constexpr Lit mkLit(Var V, bool Negated = false) { return Lit(V, Negated); }

/// A clause is a disjunction of literals. At this layer it is just a vector;
/// the solver copies clauses into its own arena.
using Clause = std::vector<Lit>;

/// Ternary truth value used for assignments and model queries.
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

constexpr LBool lboolFromBool(bool B) { return B ? LBool::True : LBool::False; }

/// Negates a defined LBool; Undef stays Undef.
constexpr LBool lboolNeg(LBool B) {
  if (B == LBool::Undef)
    return LBool::Undef;
  return B == LBool::True ? LBool::False : LBool::True;
}

} // namespace bugassist

#endif // BUGASSIST_CNF_LIT_H
