//===- Cnf.cpp - Grouped CNF formulas --------------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "cnf/Cnf.h"

#include <cassert>

using namespace bugassist;

void CnfFormula::addClause(Clause C) {
  for ([[maybe_unused]] Lit L : C)
    assert(L.isValid() && L.var() < NumVars && "literal out of range");
  Hard.push_back(std::move(C));
}

GroupId CnfFormula::newGroup(uint32_t Line, std::string Label, uint64_t Weight,
                             uint32_t Unwinding) {
  ClauseGroup G;
  G.Id = static_cast<GroupId>(Groups.size());
  G.Selector = newVar();
  G.Line = Line;
  G.Label = std::move(Label);
  G.Weight = Weight;
  G.Unwinding = Unwinding;
  Groups.push_back(std::move(G));
  return Groups.back().Id;
}

void CnfFormula::addGroupedClause(GroupId Group, Clause C) {
  assert(Group >= 0 && Group < static_cast<GroupId>(Groups.size()) &&
         "bad group id");
  C.push_back(mkLit(Groups[Group].Selector, /*Negated=*/true));
  addClause(std::move(C));
}

GroupId CnfFormula::groupOfSelector(Var Selector) const {
  for (const ClauseGroup &G : Groups)
    if (G.Selector == Selector)
      return G.Id;
  return NoGroup;
}

size_t CnfFormula::literalCount() const {
  size_t N = 0;
  for (const Clause &C : Hard)
    N += C.size();
  return N;
}
