//===- DimacsWriter.cpp - DIMACS / WCNF serialization -----------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "cnf/DimacsWriter.h"

using namespace bugassist;

static void appendClause(std::string &Out, const Clause &C) {
  for (Lit L : C) {
    Out += L.str();
    Out += ' ';
  }
  Out += "0\n";
}

std::string bugassist::writeDimacs(const CnfFormula &F) {
  std::string Out = "p cnf " + std::to_string(F.numVars()) + " " +
                    std::to_string(F.numClauses()) + "\n";
  for (const Clause &C : F.hardClauses())
    appendClause(Out, C);
  return Out;
}

std::string bugassist::writeWcnf(const CnfFormula &F) {
  uint64_t SoftSum = 0;
  for (const ClauseGroup &G : F.groups())
    SoftSum += G.Weight;
  uint64_t Top = SoftSum + 1;

  size_t NumClauses = F.numClauses() + F.numGroups();
  std::string Out = "p wcnf " + std::to_string(F.numVars()) + " " +
                    std::to_string(NumClauses) + " " + std::to_string(Top) +
                    "\n";
  for (const Clause &C : F.hardClauses()) {
    Out += std::to_string(Top);
    Out += ' ';
    appendClause(Out, C);
  }
  for (const ClauseGroup &G : F.groups()) {
    Out += std::to_string(G.Weight);
    Out += ' ';
    appendClause(Out, Clause{mkLit(G.Selector)});
  }
  return Out;
}
