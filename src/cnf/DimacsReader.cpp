//===- DimacsReader.cpp - DIMACS / WCNF parsing -----------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "cnf/DimacsReader.h"

#include "support/FileUtil.h"

#include <charconv>
#include <limits>

using namespace bugassist;

std::string DimacsParseError::render() const {
  if (Line == 0)
    return Message;
  return "line " + std::to_string(Line) + ": " + Message;
}

namespace {

/// Upper bound on declared variables / clause literals: a corrupt header
/// must not turn into a multi-gigabyte solver allocation.
constexpr long MaxReasonableVar = 1L << 28;

/// One whitespace-delimited token with the line it started on.
struct Token {
  std::string_view Text;
  size_t Line = 0;
};

/// Whitespace/comment-skipping tokenizer over the raw file text. A 'c' as
/// the first token of a line introduces a comment running to end of line
/// (DIMACS comments are whole lines; 'c' elsewhere -- e.g. inside the
/// "p cnf" header -- is ordinary token text).
class Scanner {
public:
  explicit Scanner(std::string_view Text) : Text(Text) {}

  /// Reads the next token. \returns false at end of input.
  bool next(Token &T) {
    for (;;) {
      while (Pos < Text.size() && isSpace(Text[Pos]))
        advance();
      if (Pos >= Text.size())
        return false;
      if (Text[Pos] == 'c' && !LineHasToken) { // comment line
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      break;
    }
    size_t Start = Pos;
    T.Line = Line;
    LineHasToken = true;
    while (Pos < Text.size() && !isSpace(Text[Pos]))
      ++Pos;
    T.Text = Text.substr(Start, Pos - Start);
    return true;
  }

private:
  static bool isSpace(char C) {
    return C == ' ' || C == '\t' || C == '\r' || C == '\n' || C == '\f' ||
           C == '\v';
  }
  void advance() {
    if (Text[Pos] == '\n') {
      ++Line;
      LineHasToken = false;
    }
    ++Pos;
  }

  std::string_view Text;
  size_t Pos = 0;
  size_t Line = 1;
  bool LineHasToken = false;
};

bool parseInt64(std::string_view T, int64_t &Out) {
  const char *B = T.data(), *E = T.data() + T.size();
  auto [P, Ec] = std::from_chars(B, E, Out);
  return Ec == std::errc() && P == E;
}

bool parseUint64(std::string_view T, uint64_t &Out, bool &Overflow) {
  const char *B = T.data(), *E = T.data() + T.size();
  auto [P, Ec] = std::from_chars(B, E, Out);
  Overflow = Ec == std::errc::result_out_of_range;
  return Ec == std::errc() && P == E;
}

} // namespace

std::optional<DimacsInstance> bugassist::parseDimacs(std::string_view Text,
                                                     DimacsParseError &Err) {
  Scanner S(Text);
  DimacsInstance Inst;
  bool HaveHeader = false;
  bool NewFormat = false; // 2022+ p-line-less WCNF ('h' marks hard clauses)
  // True only when the header carried an actual top weight. The dialects
  // whose Top is the UINT64_MAX sentinel (old-style 'p wcnf V C', new
  // format) have no weight threshold: no weight, however large, is hard.
  bool HasRealTop = false;
  size_t DeclaredClauses = 0;
  long MaxVarSeen = 0;
  uint64_t SoftWeightSum = 0; // running total; overflow is diagnosed

  auto fail = [&](size_t Line, std::string Msg) {
    Err.Line = Line;
    Err.Message = std::move(Msg);
    return std::nullopt;
  };

  Token T;
  bool HavePending = S.next(T); // lookahead: first token of the next clause
  if (!HavePending)
    return fail(0, "empty input: no header or clauses");

  if (T.Text == "p") {
    size_t HdrLine = T.Line;
    Token Fmt;
    if (!S.next(Fmt) || (Fmt.Text != "cnf" && Fmt.Text != "wcnf"))
      return fail(HdrLine, "bad header: expected 'p cnf' or 'p wcnf'");
    Inst.Weighted = Fmt.Text == "wcnf";

    Token VarsT, ClausesT;
    int64_t Vars = 0, Clauses = 0;
    if (!S.next(VarsT) || !parseInt64(VarsT.Text, Vars) || Vars < 0 ||
        !S.next(ClausesT) || !parseInt64(ClausesT.Text, Clauses) ||
        Clauses < 0)
      return fail(HdrLine,
                  "bad header: expected non-negative variable and clause "
                  "counts after 'p " +
                      std::string(Fmt.Text) + "'");
    if (Vars > MaxReasonableVar)
      return fail(HdrLine, "bad header: variable count " +
                               std::string(VarsT.Text) + " is unreasonable");
    Inst.NumVars = static_cast<int>(Vars);
    DeclaredClauses = static_cast<size_t>(Clauses);

    HavePending = S.next(T);
    if (Inst.Weighted) {
      // Classic format carries TOP as a fourth header field; the older
      // weighted (non-partial) dialect omits it -- then nothing is hard.
      uint64_t Top = 0;
      bool Overflow = false;
      if (HavePending && T.Line == HdrLine &&
          parseUint64(T.Text, Top, Overflow)) {
        if (Top == 0)
          return fail(HdrLine, "bad header: top weight must be positive");
        Inst.Top = Top;
        HasRealTop = true;
        HavePending = S.next(T);
      } else if (Overflow) {
        return fail(HdrLine, "bad header: top weight overflows");
      } else {
        Inst.Top = std::numeric_limits<uint64_t>::max();
      }
    }
    HaveHeader = true;
  } else {
    // No p-line: the 2022+ MaxSAT-Evaluation WCNF format.
    NewFormat = true;
    Inst.Weighted = true;
    Inst.Top = std::numeric_limits<uint64_t>::max();
  }

  while (HavePending) {
    size_t ClauseLine = T.Line;
    bool IsHard = !Inst.Weighted;
    uint64_t Weight = 0;
    if (Inst.Weighted) {
      if (T.Text == "h") {
        if (!NewFormat)
          return fail(ClauseLine,
                      "'h' hard-clause marker is only valid without a "
                      "'p wcnf' header (new-format WCNF)");
        IsHard = true;
      } else {
        bool Overflow = false;
        if (!parseUint64(T.Text, Weight, Overflow))
          return fail(ClauseLine,
                      Overflow ? "clause weight '" + std::string(T.Text) +
                                     "' overflows"
                               : "expected clause weight, got '" +
                                     std::string(T.Text) + "'");
        if (Weight == 0)
          return fail(ClauseLine, "clause weight must be positive");
        IsHard = HasRealTop && Weight >= Inst.Top;
      }
    }

    Clause C;
    // In weighted inputs T held the clause's weight (or 'h') and has been
    // consumed; in plain CNF it already holds the first literal.
    bool UsePending = !Inst.Weighted;
    for (;;) {
      if (UsePending)
        UsePending = false;
      else if (!S.next(T))
        return fail(ClauseLine, "clause missing terminating 0");
      int64_t LitVal;
      if (!parseInt64(T.Text, LitVal))
        return fail(T.Line,
                    "expected literal, got '" + std::string(T.Text) + "'");
      if (LitVal == 0)
        break;
      long V = LitVal < 0 ? -LitVal : LitVal;
      if (V > MaxReasonableVar)
        return fail(T.Line, "literal " + std::string(T.Text) +
                                " out of any reasonable range");
      if (HaveHeader && V > Inst.NumVars)
        return fail(T.Line, "literal " + std::string(T.Text) +
                                " out of range: header declares " +
                                std::to_string(Inst.NumVars) + " variables");
      if (V > MaxVarSeen)
        MaxVarSeen = V;
      C.push_back(mkLit(static_cast<Var>(V - 1), LitVal < 0));
    }

    if (HaveHeader && Inst.Hard.size() + Inst.Soft.size() == DeclaredClauses)
      return fail(ClauseLine, "more clauses than the " +
                                  std::to_string(DeclaredClauses) +
                                  " declared in the header");
    if (IsHard) {
      Inst.Hard.push_back(std::move(C));
    } else {
      // The total soft weight must fit in uint64_t: MaxSAT engines compare
      // costs against it (a wrapped sum would silently corrupt optima). A
      // sum of exactly UINT64_MAX is still legal -- one sentinel-weight
      // soft clause stays representable.
      if (Weight > std::numeric_limits<uint64_t>::max() - SoftWeightSum)
        return fail(ClauseLine,
                    "total soft clause weight overflows 64 bits");
      SoftWeightSum += Weight;
      Inst.Soft.push_back({std::move(C), Weight});
    }

    HavePending = S.next(T);
  }

  if (HaveHeader &&
      Inst.Hard.size() + Inst.Soft.size() != DeclaredClauses)
    return fail(0, "header declares " + std::to_string(DeclaredClauses) +
                       " clauses but the file contains " +
                       std::to_string(Inst.Hard.size() + Inst.Soft.size()));
  if (!HaveHeader) {
    if (Inst.Hard.empty() && Inst.Soft.empty())
      return fail(0, "empty input: no header or clauses");
    Inst.NumVars = static_cast<int>(MaxVarSeen);
  }
  return Inst;
}

std::optional<DimacsInstance>
bugassist::readDimacsFile(const std::string &Path, DimacsParseError &Err) {
  std::optional<std::string> Text = readFileToString(Path);
  if (!Text) {
    Err = {0, "cannot open '" + Path + "'"};
    return std::nullopt;
  }
  return parseDimacs(*Text, Err);
}
