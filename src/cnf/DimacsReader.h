//===- DimacsReader.h - DIMACS / WCNF parsing -------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the standard DIMACS CNF format and the MaxSAT-Evaluation WCNF
/// formats, so external benchmark instances can be fed straight into the
/// solver substrate (the `bugassist sat` / `bugassist maxsat` subcommands
/// and the bench_solvers `--wcnf` sweep). The inverse of DimacsWriter.
///
/// Accepted inputs:
///
///  * `p cnf V C` -- plain CNF; every clause is hard.
///  * `p wcnf V C TOP` -- classic partial (weighted) MaxSAT: each clause
///    line starts with its weight; weight >= TOP means hard.
///  * `p wcnf V C` -- old-style weighted MaxSAT with no hard clauses.
///  * the 2022+ MaxSAT-Evaluation format with no p-line: clause lines
///    start with `h` (hard) or an integer weight (soft).
///
/// Comment lines (`c ...`) are skipped everywhere; clauses may span lines
/// (each must still end in the terminating 0). Parsing is strict about
/// everything the solver would otherwise mis-read silently: literals out
/// of the declared range, zero/overflowing weights, a clause missing its
/// terminating 0, clause-count mismatches against the header, and trailing
/// garbage all produce a diagnostic carrying the 1-based source line.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_CNF_DIMACSREADER_H
#define BUGASSIST_CNF_DIMACSREADER_H

#include "cnf/Cnf.h"

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bugassist {

/// One parsed soft clause (weight >= 1).
struct DimacsSoftClause {
  Clause Lits;
  uint64_t Weight = 1;
};

/// A parsed DIMACS instance. For CNF inputs Soft is empty and Top is 0;
/// for WCNF inputs Top is the hard-clause threshold (UINT64_MAX for the
/// p-line-less 2022 format, whose hard marker is `h`).
struct DimacsInstance {
  bool Weighted = false; ///< came from a WCNF (either dialect)
  int NumVars = 0;       ///< declared by the p-line, or max var seen
  uint64_t Top = 0;
  std::vector<Clause> Hard;
  std::vector<DimacsSoftClause> Soft;

  /// Sum of soft weights; the cost of falsifying everything. Saturates at
  /// UINT64_MAX instead of wrapping (the parser rejects inputs whose sum
  /// would exceed it, so saturation is defensive for hand-built instances).
  uint64_t softWeightSum() const {
    uint64_t S = 0;
    for (const DimacsSoftClause &C : Soft) {
      if (C.Weight > std::numeric_limits<uint64_t>::max() - S)
        return std::numeric_limits<uint64_t>::max();
      S += C.Weight;
    }
    return S;
  }
};

/// Diagnostic for a rejected input.
struct DimacsParseError {
  size_t Line = 0; ///< 1-based source line (0: file-level problem)
  std::string Message;

  /// "line N: message" (or just the message for file-level errors).
  std::string render() const;
};

/// Parses \p Text. \returns the instance, or std::nullopt with \p Err
/// filled in.
std::optional<DimacsInstance> parseDimacs(std::string_view Text,
                                          DimacsParseError &Err);

/// Reads and parses \p Path (file-level failures are reported with
/// Line == 0).
std::optional<DimacsInstance> readDimacsFile(const std::string &Path,
                                             DimacsParseError &Err);

} // namespace bugassist

#endif // BUGASSIST_CNF_DIMACSREADER_H
