//===- Cnf.h - Grouped CNF formulas -----------------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CnfFormula is the exchange format between the BMC encoder and the
/// (Max)SAT solvers. It supports the paper's *clause grouping* scheme
/// (Section 3.4): clauses born from the same program statement share a
/// ClauseGroup whose selector variable lambda is disjoined (negated) into
/// each of them, so a single soft unit clause (lambda) enables or disables
/// the whole statement.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_CNF_CNF_H
#define BUGASSIST_CNF_CNF_H

#include "cnf/Lit.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bugassist {

/// Identifies one clause group (one program statement / source line).
using GroupId = int32_t;

constexpr GroupId NoGroup = -1;

/// Metadata for a clause group: its selector variable, the source line it
/// maps back to, an optional label, and the soft weight used by the
/// weighted loop-diagnosis extension (paper Eq. 3).
struct ClauseGroup {
  GroupId Id = NoGroup;
  Var Selector = NullVar;
  uint32_t Line = 0;
  std::string Label;
  uint64_t Weight = 1;
  /// Loop-unwinding index this group's clauses came from (0 = not in a
  /// loop / first unwinding); used for per-iteration diagnosis.
  uint32_t Unwinding = 0;
};

/// A CNF formula with hard clauses, grouped soft selectors, and fresh
/// variable management.
///
/// Invariants:
///  * every literal in every clause refers to a variable < numVars();
///  * group selectors are ordinary variables of this formula;
///  * hard clauses added through addGroupedClause carry the group's
///    (~selector) guard literal.
class CnfFormula {
public:
  /// Allocates a fresh variable.
  Var newVar() { return NumVars++; }

  /// Allocates \p N fresh variables and returns the first.
  Var newVars(unsigned N) {
    Var First = NumVars;
    NumVars += N;
    return First;
  }

  int numVars() const { return NumVars; }
  size_t numClauses() const { return Hard.size(); }
  size_t numGroups() const { return Groups.size(); }

  /// Adds a hard (always enforced) clause.
  void addClause(Clause C);
  void addClause(Lit A) { addClause(Clause{A}); }
  void addClause(Lit A, Lit B) { addClause(Clause{A, B}); }
  void addClause(Lit A, Lit B, Lit C) { addClause(Clause{A, B, C}); }

  /// Creates a new clause group with a fresh selector variable.
  GroupId newGroup(uint32_t Line, std::string Label = "", uint64_t Weight = 1,
                   uint32_t Unwinding = 0);

  /// Adds a clause guarded by \p Group's selector: the stored clause is
  /// (~selector \/ C). Asserting the selector enforces C; unasserting it
  /// "removes the statement" (paper Section 3.4).
  void addGroupedClause(GroupId Group, Clause C);

  const ClauseGroup &group(GroupId Id) const { return Groups[Id]; }
  ClauseGroup &group(GroupId Id) { return Groups[Id]; }
  const std::vector<ClauseGroup> &groups() const { return Groups; }
  const std::vector<Clause> &hardClauses() const { return Hard; }

  /// \returns the selector literal (positive) of \p Group; the soft unit
  /// clauses of the paper's TF2 are exactly these.
  Lit selectorLit(GroupId Group) const {
    return mkLit(Groups[Group].Selector);
  }

  /// Looks up the group owning \p Selector, or NoGroup.
  GroupId groupOfSelector(Var Selector) const;

  /// Total number of literal occurrences across hard clauses.
  size_t literalCount() const;

private:
  Var NumVars = 0;
  std::vector<Clause> Hard;
  std::vector<ClauseGroup> Groups;
};

} // namespace bugassist

#endif // BUGASSIST_CNF_CNF_H
