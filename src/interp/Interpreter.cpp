//===- Interpreter.cpp - Concrete mini-C execution -----------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include <cassert>

using namespace bugassist;

int64_t bugassist::wrapToWidth(int64_t V, int BitWidth) {
  assert(BitWidth >= 1 && BitWidth <= 64 && "unsupported width");
  if (BitWidth == 64)
    return V;
  uint64_t Mask = (1ull << BitWidth) - 1;
  uint64_t U = static_cast<uint64_t>(V) & Mask;
  uint64_t SignBit = 1ull << (BitWidth - 1);
  if (U & SignBit)
    U |= ~Mask; // sign extend
  return static_cast<int64_t>(U);
}

int64_t bugassist::evalUnaryOp(UnaryOp Op, int64_t V, int BitWidth) {
  switch (Op) {
  case UnaryOp::Neg:
    // Negate in unsigned 64-bit to avoid UB on INT64_MIN, then wrap.
    return wrapToWidth(static_cast<int64_t>(-static_cast<uint64_t>(V)),
                       BitWidth);
  case UnaryOp::BitNot:
    return wrapToWidth(~V, BitWidth);
  case UnaryOp::LogNot:
    return V == 0 ? 1 : 0;
  }
  return 0;
}

int64_t bugassist::evalBinaryOp(BinaryOp Op, int64_t Lhs, int64_t Rhs,
                                int BitWidth, bool &DivByZero) {
  DivByZero = false;
  switch (Op) {
  case BinaryOp::Add:
    // Add/subtract in unsigned 64-bit to avoid UB, then wrap.
    return wrapToWidth(static_cast<int64_t>(static_cast<uint64_t>(Lhs) +
                                            static_cast<uint64_t>(Rhs)),
                       BitWidth);
  case BinaryOp::Sub:
    return wrapToWidth(static_cast<int64_t>(static_cast<uint64_t>(Lhs) -
                                            static_cast<uint64_t>(Rhs)),
                       BitWidth);
  case BinaryOp::Mul:
    // Multiply in unsigned 64-bit to avoid UB, then wrap.
    return wrapToWidth(static_cast<int64_t>(static_cast<uint64_t>(Lhs) *
                                            static_cast<uint64_t>(Rhs)),
                       BitWidth);
  case BinaryOp::Div:
    if (Rhs == 0) {
      DivByZero = true;
      return 0;
    }
    // INT_MIN / -1 wraps (two's complement), matching the circuit.
    if (Rhs == -1)
      return wrapToWidth(static_cast<int64_t>(-static_cast<uint64_t>(Lhs)),
                         BitWidth);
    return wrapToWidth(Lhs / Rhs, BitWidth);
  case BinaryOp::Rem:
    if (Rhs == 0) {
      DivByZero = true;
      return 0;
    }
    if (Rhs == -1)
      return 0;
    return wrapToWidth(Lhs % Rhs, BitWidth);
  case BinaryOp::Shl:
    if (Rhs < 0 || Rhs >= BitWidth)
      return 0;
    return wrapToWidth(
        static_cast<int64_t>(static_cast<uint64_t>(Lhs) << Rhs), BitWidth);
  case BinaryOp::Shr:
    // Arithmetic shift; out-of-range amounts fill with the sign bit.
    if (Rhs < 0 || Rhs >= BitWidth)
      return Lhs < 0 ? -1 : 0;
    return wrapToWidth(Lhs >> Rhs, BitWidth);
  case BinaryOp::Lt:
    return Lhs < Rhs;
  case BinaryOp::Le:
    return Lhs <= Rhs;
  case BinaryOp::Gt:
    return Lhs > Rhs;
  case BinaryOp::Ge:
    return Lhs >= Rhs;
  case BinaryOp::Eq:
    return Lhs == Rhs;
  case BinaryOp::Ne:
    return Lhs != Rhs;
  case BinaryOp::BitAnd:
    return wrapToWidth(Lhs & Rhs, BitWidth);
  case BinaryOp::BitOr:
    return wrapToWidth(Lhs | Rhs, BitWidth);
  case BinaryOp::BitXor:
    return wrapToWidth(Lhs ^ Rhs, BitWidth);
  case BinaryOp::LogAnd:
    return (Lhs != 0 && Rhs != 0) ? 1 : 0;
  case BinaryOp::LogOr:
    return (Lhs != 0 || Rhs != 0) ? 1 : 0;
  }
  return 0;
}

namespace {

/// A runtime storage cell: a scalar or an array.
struct Cell {
  bool IsArray = false;
  int64_t Scalar = 0;
  std::vector<int64_t> Array;
};

/// Execution engine; one instance per run().
class Machine {
public:
  Machine(const Program &Prog, const ExecOptions &Opts)
      : Prog(Prog), Opts(Opts) {}

  ExecResult run(const std::string &Entry, const InputVector &Inputs);

private:
  // Frames map declarations to storage. Array parameters alias the
  // caller's cell (C semantics), so cells are referenced by pointer.
  using Frame = std::map<const VarDecl *, Cell *>;

  struct Signal {
    enum Kind { None, Returned, Halted } K = None;
  };

  Cell *allocCell() {
    CellStorage.push_back(std::make_unique<Cell>());
    return CellStorage.back().get();
  }

  bool fuel(SourceLoc Loc) {
    if (++Result.Steps > Opts.MaxSteps) {
      halt(ExecStatus::StepLimit, Loc);
      return false;
    }
    return true;
  }

  void halt(ExecStatus St, SourceLoc Loc) {
    if (Halted)
      return;
    Halted = true;
    Result.Status = St;
    Result.FailLoc = Loc;
  }

  Cell *lookup(Frame &F, const VarDecl *D) {
    auto It = F.find(D);
    if (It != F.end())
      return It->second;
    auto GIt = GlobalCells.find(D);
    assert(GIt != GlobalCells.end() && "sema guarantees resolution");
    return GIt->second;
  }

  int64_t evalExpr(const Expr *E, Frame &F);
  int64_t callFunction(const FunctionDecl *Fn,
                       const std::vector<const Expr *> &Args, Frame &Caller,
                       SourceLoc Loc);
  Signal execStmt(const Stmt *S, Frame &F, Cell *RetCell);

  const Program &Prog;
  const ExecOptions &Opts;
  std::map<const VarDecl *, Cell *> GlobalCells;
  std::vector<std::unique_ptr<Cell>> CellStorage;
  ExecResult Result;
  bool Halted = false;
  int CallDepth = 0;
};

int64_t Machine::evalExpr(const Expr *E, Frame &F) {
  if (Halted || !fuel(E->loc()))
    return 0;
  switch (E->kind()) {
  case Expr::IntLiteralKind:
    return wrapToWidth(cast<IntLiteral>(E)->value(), Opts.BitWidth);
  case Expr::BoolLiteralKind:
    return cast<BoolLiteral>(E)->value() ? 1 : 0;
  case Expr::VarRefKind: {
    Cell *C = lookup(F, cast<VarRef>(E)->decl());
    assert(!C->IsArray && "sema rejects bare array reads");
    return C->Scalar;
  }
  case Expr::ArrayIndexKind: {
    const auto *A = cast<ArrayIndex>(E);
    const auto *Base = cast<VarRef>(A->base());
    Cell *C = lookup(F, Base->decl());
    int64_t Idx = evalExpr(A->index(), F);
    if (Halted)
      return 0;
    if (Idx < 0 || Idx >= static_cast<int64_t>(C->Array.size())) {
      if (Opts.CheckArrayBounds)
        halt(ExecStatus::BoundsFail, A->loc());
      return 0; // encoder-aligned OOB read value
    }
    return C->Array[static_cast<size_t>(Idx)];
  }
  case Expr::UnaryKind: {
    const auto *U = cast<UnaryExpr>(E);
    int64_t V = evalExpr(U->operand(), F);
    return Halted ? 0 : evalUnaryOp(U->op(), V, Opts.BitWidth);
  }
  case Expr::BinaryKind: {
    // Mini-C has eager (non-short-circuit) logical operators; see
    // Interpreter.h.
    const auto *B = cast<BinaryExpr>(E);
    int64_t L = evalExpr(B->lhs(), F);
    int64_t R = evalExpr(B->rhs(), F);
    if (Halted)
      return 0;
    bool DivZero = false;
    int64_t V = evalBinaryOp(B->op(), L, R, Opts.BitWidth, DivZero);
    if (DivZero && Opts.CheckDivByZero)
      halt(ExecStatus::DivByZero, B->loc());
    return V;
  }
  case Expr::ConditionalKind: {
    // Eager evaluation of both arms (matches the encoder's mux circuit).
    const auto *C = cast<ConditionalExpr>(E);
    int64_t Cond = evalExpr(C->cond(), F);
    int64_t T = evalExpr(C->thenExpr(), F);
    int64_t El = evalExpr(C->elseExpr(), F);
    return Halted ? 0 : (Cond != 0 ? T : El);
  }
  case Expr::CallKind: {
    const auto *C = cast<CallExpr>(E);
    std::vector<const Expr *> Args;
    for (const auto &A : C->args())
      Args.push_back(A.get());
    return callFunction(C->decl(), Args, F, C->loc());
  }
  }
  return 0;
}

int64_t Machine::callFunction(const FunctionDecl *Fn,
                              const std::vector<const Expr *> &Args,
                              Frame &Caller, SourceLoc Loc) {
  if (Halted)
    return 0;
  if (++CallDepth > 4096) {
    halt(ExecStatus::StepLimit, Loc);
    --CallDepth;
    return 0;
  }
  Frame Callee;
  for (size_t I = 0; I < Fn->params().size(); ++I) {
    const VarDecl *P = Fn->params()[I].get();
    if (P->type().isArray()) {
      // By-reference aliasing of the caller's array cell.
      const auto *VR = cast<VarRef>(Args[I]);
      Callee[P] = lookup(Caller, VR->decl());
      continue;
    }
    Cell *C = allocCell();
    C->Scalar = evalExpr(Args[I], Caller);
    Callee[P] = C;
  }
  Cell *RetCell = allocCell();
  RetCell->Scalar = 0; // functions falling off the end return 0/false
  if (!Halted)
    execStmt(Fn->body(), Callee, RetCell);
  --CallDepth;
  return Halted ? 0 : RetCell->Scalar;
}

Machine::Signal Machine::execStmt(const Stmt *S, Frame &F, Cell *RetCell) {
  if (Halted || !fuel(S->loc()))
    return {Signal::Halted};
  switch (S->kind()) {
  case Stmt::BlockStmtKind: {
    for (const auto &Sub : cast<BlockStmt>(S)->stmts()) {
      Signal Sig = execStmt(Sub.get(), F, RetCell);
      if (Sig.K != Signal::None)
        return Sig;
    }
    return {};
  }
  case Stmt::DeclStmtKind: {
    const VarDecl *D = cast<DeclStmt>(S)->decl();
    Cell *C = allocCell();
    if (D->type().isArray()) {
      C->IsArray = true;
      C->Array.assign(static_cast<size_t>(D->type().ArraySize), 0);
    } else if (D->init()) {
      C->Scalar = evalExpr(D->init(), F);
    }
    F[D] = C;
    return Halted ? Signal{Signal::Halted} : Signal{};
  }
  case Stmt::AssignStmtKind: {
    const auto *A = cast<AssignStmt>(S);
    Cell *C = lookup(F, A->targetDecl());
    int64_t V = evalExpr(A->value(), F);
    if (Halted)
      return {Signal::Halted};
    if (A->index()) {
      int64_t Idx = evalExpr(A->index(), F);
      if (Halted)
        return {Signal::Halted};
      if (Idx < 0 || Idx >= static_cast<int64_t>(C->Array.size())) {
        if (Opts.CheckArrayBounds) {
          halt(ExecStatus::BoundsFail, A->loc());
          return {Signal::Halted};
        }
        return {}; // encoder-aligned OOB write: dropped
      }
      C->Array[static_cast<size_t>(Idx)] = V;
      return {};
    }
    C->Scalar = V;
    return {};
  }
  case Stmt::IfStmtKind: {
    const auto *I = cast<IfStmt>(S);
    int64_t C = evalExpr(I->cond(), F);
    if (Halted)
      return {Signal::Halted};
    if (C != 0)
      return execStmt(I->thenStmt(), F, RetCell);
    if (I->elseStmt())
      return execStmt(I->elseStmt(), F, RetCell);
    return {};
  }
  case Stmt::WhileStmtKind: {
    const auto *W = cast<WhileStmt>(S);
    for (;;) {
      int64_t C = evalExpr(W->cond(), F);
      if (Halted)
        return {Signal::Halted};
      if (C == 0)
        return {};
      Signal Sig = execStmt(W->body(), F, RetCell);
      if (Sig.K != Signal::None)
        return Sig;
    }
  }
  case Stmt::ReturnStmtKind: {
    const auto *R = cast<ReturnStmt>(S);
    if (R->value()) {
      RetCell->Scalar = evalExpr(R->value(), F);
      if (Halted)
        return {Signal::Halted};
    }
    return {Signal::Returned};
  }
  case Stmt::AssertStmtKind: {
    const auto *A = cast<AssertStmt>(S);
    int64_t C = evalExpr(A->cond(), F);
    if (Halted)
      return {Signal::Halted};
    if (C == 0) {
      halt(ExecStatus::AssertFail, A->loc());
      return {Signal::Halted};
    }
    return {};
  }
  case Stmt::AssumeStmtKind: {
    const auto *A = cast<AssumeStmt>(S);
    int64_t C = evalExpr(A->cond(), F);
    if (Halted)
      return {Signal::Halted};
    if (C == 0) {
      halt(ExecStatus::AssumeFail, A->loc());
      return {Signal::Halted};
    }
    return {};
  }
  case Stmt::ExprStmtKind: {
    evalExpr(cast<ExprStmt>(S)->expr(), F);
    return Halted ? Signal{Signal::Halted} : Signal{};
  }
  }
  return {};
}

ExecResult Machine::run(const std::string &Entry, const InputVector &Inputs) {
  Result = ExecResult();
  Result.Status = ExecStatus::Ok;

  const FunctionDecl *Fn = Prog.findFunction(Entry);
  if (!Fn || Fn->params().size() != Inputs.size()) {
    Result.Status = ExecStatus::SetupError;
    return Result;
  }

  // Initialize globals.
  for (const auto &G : Prog.globals()) {
    Cell *C = allocCell();
    if (G->type().isArray()) {
      C->IsArray = true;
      C->Array.assign(static_cast<size_t>(G->type().ArraySize), 0);
    } else if (const Expr *Init = G->init()) {
      if (const auto *IL = dyn_cast<IntLiteral>(Init))
        C->Scalar = wrapToWidth(IL->value(), Opts.BitWidth);
      else if (const auto *BL = dyn_cast<BoolLiteral>(Init))
        C->Scalar = BL->value() ? 1 : 0;
    }
    GlobalCells[G.get()] = C;
  }

  // Bind entry parameters to inputs.
  Frame Top;
  for (size_t I = 0; I < Inputs.size(); ++I) {
    const VarDecl *P = Fn->params()[I].get();
    Cell *C = allocCell();
    if (P->type().isArray()) {
      if (!Inputs[I].IsArray ||
          Inputs[I].Array.size() !=
              static_cast<size_t>(P->type().ArraySize)) {
        Result.Status = ExecStatus::SetupError;
        return Result;
      }
      C->IsArray = true;
      C->Array = Inputs[I].Array;
      for (int64_t &V : C->Array)
        V = wrapToWidth(V, Opts.BitWidth);
    } else {
      if (Inputs[I].IsArray) {
        Result.Status = ExecStatus::SetupError;
        return Result;
      }
      C->Scalar = P->type().isBool() ? (Inputs[I].Scalar != 0)
                                     : wrapToWidth(Inputs[I].Scalar,
                                                   Opts.BitWidth);
    }
    Top[P] = C;
  }

  Cell *RetCell = allocCell();
  execStmt(Fn->body(), Top, RetCell);
  if (!Halted)
    Result.ReturnValue = RetCell->Scalar;
  return Result;
}

} // namespace

Interpreter::Interpreter(const Program &Prog, ExecOptions Opts)
    : Prog(Prog), Opts(Opts) {}

ExecResult Interpreter::run(const std::string &Entry,
                            const InputVector &Inputs) {
  Machine M(Prog, Opts);
  return M.run(Entry, Inputs);
}
