//===- Interpreter.h - Concrete mini-C execution ----------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bit-exact concrete interpreter for mini-C. Three roles in the paper's
/// pipeline:
///  1. producing *golden outputs* from the correct program version (the
///     Section 6.1 TCAS methodology);
///  2. segregating failing test cases from a test pool;
///  3. the concrete half of concolic trace reduction (Section 6.2 "C"):
///     shadow values computed here let the encoder replace trusted-function
///     constraints with constants.
///
/// Semantics deliberately mirror the BMC encoder bit for bit: W-bit two's
/// complement wraparound, C-style truncating division, shifts with
/// amounts outside [0, W) saturating (0 for shl, sign-fill for arithmetic
/// shr), out-of-range array reads yielding 0 and writes being dropped
/// (each guarded by a bounds obligation when checking is on). The encoder
/// property tests in tests/property_test.cpp enforce this agreement on
/// random programs.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_INTERP_INTERPRETER_H
#define BUGASSIST_INTERP_INTERPRETER_H

#include "lang/Ast.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bugassist {

/// One entry-function argument: a scalar or a whole array.
struct InputValue {
  bool IsArray = false;
  int64_t Scalar = 0;
  std::vector<int64_t> Array;

  static InputValue scalar(int64_t V) {
    InputValue I;
    I.Scalar = V;
    return I;
  }
  static InputValue array(std::vector<int64_t> Vs) {
    InputValue I;
    I.IsArray = true;
    I.Array = std::move(Vs);
    return I;
  }

  friend bool operator==(const InputValue &A, const InputValue &B) {
    return A.IsArray == B.IsArray && A.Scalar == B.Scalar && A.Array == B.Array;
  }
};

using InputVector = std::vector<InputValue>;

/// Interpreter configuration. BitWidth must match the encoder's.
struct ExecOptions {
  int BitWidth = 32;
  uint64_t MaxSteps = 1u << 22;
  /// When true, out-of-range array accesses abort execution with
  /// BoundsFail (the implicit assertion of the paper's Program 1).
  bool CheckArrayBounds = true;
  /// When true, division by zero aborts with DivByZero.
  bool CheckDivByZero = true;
};

enum class ExecStatus {
  Ok,           ///< ran to completion, all assertions held
  AssertFail,   ///< an assert() was violated
  BoundsFail,   ///< array index out of range (checking enabled)
  DivByZero,    ///< division/remainder by zero (checking enabled)
  AssumeFail,   ///< an assume() failed: execution infeasible, not a bug
  StepLimit,    ///< ran out of fuel (runaway loop / recursion)
  SetupError    ///< bad entry function or argument shape
};

/// Result of one concrete run.
struct ExecResult {
  ExecStatus Status = ExecStatus::SetupError;
  int64_t ReturnValue = 0;
  SourceLoc FailLoc;
  uint64_t Steps = 0;

  bool ok() const { return Status == ExecStatus::Ok; }
  bool failed() const {
    return Status == ExecStatus::AssertFail ||
           Status == ExecStatus::BoundsFail || Status == ExecStatus::DivByZero;
  }
};

/// Wraps \p V to a signed \p BitWidth-bit value (two's complement).
int64_t wrapToWidth(int64_t V, int BitWidth);

/// Evaluates a binary op with the encoder-aligned semantics described in
/// the file comment. \p DivByZero is set when Op is Div/Rem and Rhs == 0
/// (the result is then 0 and the caller decides whether to trap).
int64_t evalBinaryOp(BinaryOp Op, int64_t Lhs, int64_t Rhs, int BitWidth,
                     bool &DivByZero);

/// Evaluates a unary op at \p BitWidth.
int64_t evalUnaryOp(UnaryOp Op, int64_t V, int BitWidth);

/// Concrete interpreter. Stateless between run() calls: each run
/// reinitializes globals.
class Interpreter {
public:
  Interpreter(const Program &Prog, ExecOptions Opts = {});

  /// Runs \p Entry on \p Inputs (one InputValue per parameter).
  ExecResult run(const std::string &Entry, const InputVector &Inputs);

private:
  const Program &Prog;
  ExecOptions Opts;
};

} // namespace bugassist

#endif // BUGASSIST_INTERP_INTERPRETER_H
