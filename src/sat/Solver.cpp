//===- Solver.cpp - CDCL SAT solver ----------------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// The algorithm follows Een & Sorensson's "An Extensible SAT-solver"
// (MiniSAT), with the assumption-core extraction of MiniSAT 1.14+ that the
// Fu-Malik MaxSAT layer depends on. Clause storage is a flat arena in the
// style of MiniSAT's ClauseAllocator: headers and literals are inline in
// one contiguous buffer, so the propagation inner loop never chases a
// per-clause heap pointer, and freed clauses are reclaimed by a relocating
// garbage collector once a fifth of the arena is waste.
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include "cnf/Cnf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

using namespace bugassist;

Solver::Solver() = default;

float Solver::clauseActivity(ClauseRef CR) const {
  float A;
  int32_t Bits = Arena[CR + 1].code();
  std::memcpy(&A, &Bits, sizeof(A));
  return A;
}

void Solver::setClauseActivity(ClauseRef CR, float A) {
  int32_t Bits;
  std::memcpy(&Bits, &A, sizeof(Bits));
  Arena[CR + 1] = Lit::fromCode(Bits);
}

Var Solver::newVar() {
  Var V = static_cast<Var>(Assigns.size());
  Assigns.push_back(LBool::Undef);
  VarLevel.push_back(0);
  Reason.push_back(InvalidClause);
  Activity.push_back(0.0);
  HeapIndex.push_back(-1);
  SavedPhase.push_back(false);
  Released.push_back(false);
  Seen.push_back(0);
  Watches.emplace_back(); // positive literal
  Watches.emplace_back(); // negative literal
  heapInsert(V);
  return V;
}

void Solver::ensureVars(int N) {
  while (numVars() < N)
    newVar();
}

bool Solver::addClause(Clause C) {
  assert(decisionLevel() == 0 && "clauses must be added at the root level");
  if (!Ok)
    return false;
  for (Lit L : C) {
    assert(L.isValid() && "invalid literal");
    ensureVars(L.var() + 1);
  }

  // Level-0 simplification: drop false literals, detect tautologies and
  // duplicate literals.
  std::sort(C.begin(), C.end());
  Clause Simplified;
  Lit Prev = NullLit;
  for (Lit L : C) {
    if (value(L) == LBool::True || L == ~Prev)
      return true; // satisfied or tautological
    if (value(L) == LBool::False || L == Prev)
      continue; // falsified or duplicate literal
    Simplified.push_back(L);
    Prev = L;
  }

  if (Simplified.empty()) {
    Ok = false;
    return false;
  }
  if (Simplified.size() == 1) {
    uncheckedEnqueue(Simplified[0], InvalidClause);
    Ok = (propagate() == InvalidClause);
    return Ok;
  }
  ClauseRef CR = allocClause(Simplified, /*Learnt=*/false);
  ProblemClauses.push_back(CR);
  attachClause(CR);
  return true;
}

bool Solver::addFormula(const CnfFormula &F) {
  ensureVars(F.numVars());
  for (const Clause &C : F.hardClauses())
    if (!addClause(C))
      return false;
  return true;
}

bool Solver::releaseVar(Lit L) {
  assert(decisionLevel() == 0 && "release only at the root level");
  ensureVars(L.var() + 1);
  Released[L.var()] = true;
  if (HeapIndex[L.var()] != -1) {
    // Evict from the decision heap by raising to the top and popping.
    Activity[L.var()] = 1e300;
    heapDecrease(L.var());
    Var Top = heapPop();
    assert(Top == L.var() && "heap eviction failed");
    (void)Top;
    Activity[L.var()] = 0.0;
  }
  return addClause({L});
}

Solver::ClauseRef Solver::allocClause(const std::vector<Lit> &Lits,
                                      bool Learnt) {
  ClauseRef CR = static_cast<ClauseRef>(Arena.size());
  int32_t Header = static_cast<int32_t>(Lits.size() << 3);
  if (Learnt)
    Header |= LearntBit;
  Arena.push_back(Lit::fromCode(Header));
  Arena.push_back(Lit::fromCode(0)); // activity slot
  Arena.insert(Arena.end(), Lits.begin(), Lits.end());
  setClauseActivity(CR, Learnt ? static_cast<float>(ClaInc) : 0.0f);
  return CR;
}

void Solver::attachClause(ClauseRef CR) {
  const Lit *CL = clauseLits(CR);
  assert(clauseSize(CR) >= 2 && "cannot watch unit clause");
  Watches[(~CL[0]).code()].push_back({CR, CL[1]});
  Watches[(~CL[1]).code()].push_back({CR, CL[0]});
}

void Solver::detachClause(ClauseRef CR) {
  const Lit *CL = clauseLits(CR);
  for (int I = 0; I < 2; ++I) {
    auto &WL = Watches[(~CL[I]).code()];
    for (size_t J = 0; J < WL.size(); ++J) {
      if (WL[J].CRef == CR) {
        WL[J] = WL.back();
        WL.pop_back();
        break;
      }
    }
  }
}

bool Solver::isLocked(ClauseRef CR) const {
  Lit First = clauseLits(CR)[0];
  return value(First) == LBool::True && Reason[First.var()] == CR;
}

void Solver::removeClause(ClauseRef CR) {
  detachClause(CR);
  Arena[CR] = Lit::fromCode(header(CR) | FreedBit);
  ArenaWasted += HeaderWords + clauseSize(CR);
  ++Stats.DeletedClauses;
}

void Solver::uncheckedEnqueue(Lit L, ClauseRef From) {
  assert(value(L) == LBool::Undef && "enqueueing assigned literal");
  Assigns[L.var()] = L.negated() ? LBool::False : LBool::True;
  VarLevel[L.var()] = decisionLevel();
  Reason[L.var()] = From;
  SavedPhase[L.var()] = !L.negated();
  Trail.push_back(L);
}

Solver::ClauseRef Solver::propagate() {
  ClauseRef Confl = InvalidClause;
  while (PropagationHead < static_cast<int>(Trail.size())) {
    Lit P = Trail[PropagationHead++];
    ++Stats.Propagations;
    auto &WL = Watches[P.code()];
    size_t I = 0, J = 0;
    while (I < WL.size()) {
      Watcher W = WL[I];
      // Blocker literal already true: clause satisfied, keep the watch.
      if (value(W.Blocker) == LBool::True) {
        WL[J++] = WL[I++];
        continue;
      }
      Lit *CL = clauseLits(W.CRef);
      uint32_t Size = clauseSize(W.CRef);
      // Normalize so the false literal (~P) sits at index 1.
      Lit NotP = ~P;
      if (CL[0] == NotP)
        std::swap(CL[0], CL[1]);
      assert(CL[1] == NotP && "watch invariant broken");
      ++I;

      Lit First = CL[0];
      if (First != W.Blocker && value(First) == LBool::True) {
        WL[J++] = {W.CRef, First};
        continue;
      }

      // Look for a replacement watch.
      bool FoundWatch = false;
      for (uint32_t K = 2; K < Size; ++K) {
        if (value(CL[K]) != LBool::False) {
          std::swap(CL[1], CL[K]);
          Watches[(~CL[1]).code()].push_back({W.CRef, First});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;

      // Clause is unit or conflicting.
      WL[J++] = {W.CRef, First};
      if (value(First) == LBool::False) {
        Confl = W.CRef;
        PropagationHead = static_cast<int>(Trail.size());
        while (I < WL.size())
          WL[J++] = WL[I++];
        break;
      }
      uncheckedEnqueue(First, W.CRef);
    }
    WL.resize(J);
    if (Confl != InvalidClause)
      break;
  }
  return Confl;
}

void Solver::analyze(ClauseRef Confl, std::vector<Lit> &OutLearnt,
                     int &OutBtLevel) {
  OutLearnt.clear();
  OutLearnt.push_back(NullLit); // slot for the asserting literal
  int PathCount = 0;
  Lit P = NullLit;
  int Index = static_cast<int>(Trail.size()) - 1;

  do {
    assert(Confl != InvalidClause && "no reason for implied literal");
    if (clauseLearnt(Confl))
      claBumpActivity(Confl);
    const Lit *CL = clauseLits(Confl);
    uint32_t Size = clauseSize(Confl);
    for (uint32_t J = (P == NullLit ? 0 : 1); J < Size; ++J) {
      Lit Q = CL[J];
      if (Seen[Q.var()] || level(Q.var()) == 0)
        continue;
      Seen[Q.var()] = 1;
      varBumpActivity(Q.var());
      if (level(Q.var()) >= decisionLevel())
        ++PathCount;
      else
        OutLearnt.push_back(Q);
    }
    // Find the next literal on the trail to expand.
    while (!Seen[Trail[Index].var()])
      --Index;
    P = Trail[Index];
    --Index;
    Confl = Reason[P.var()];
    Seen[P.var()] = 0;
    --PathCount;
  } while (PathCount > 0);
  OutLearnt[0] = ~P;

  // Local clause minimization: a literal is redundant if the other literals
  // of its reason clause are all already in the learnt clause (marked seen).
  std::vector<Lit> Cleanup(OutLearnt.begin(), OutLearnt.end());
  for (Lit L : OutLearnt)
    Seen[L.var()] = 1;
  size_t Keep = 1;
  for (size_t I = 1; I < OutLearnt.size(); ++I) {
    Lit L = OutLearnt[I];
    ClauseRef R = Reason[L.var()];
    bool Redundant = false;
    if (R != InvalidClause) {
      Redundant = true;
      const Lit *RC = clauseLits(R);
      uint32_t RSize = clauseSize(R);
      for (uint32_t J = 1; J < RSize; ++J) {
        Lit Q = RC[J];
        if (!Seen[Q.var()] && level(Q.var()) > 0) {
          Redundant = false;
          break;
        }
      }
    }
    if (!Redundant)
      OutLearnt[Keep++] = L;
  }
  OutLearnt.resize(Keep);
  for (Lit L : Cleanup)
    Seen[L.var()] = 0;

  // Compute the backtrack level: second-highest decision level in clause.
  if (OutLearnt.size() == 1) {
    OutBtLevel = 0;
  } else {
    size_t MaxIdx = 1;
    for (size_t I = 2; I < OutLearnt.size(); ++I)
      if (level(OutLearnt[I].var()) > level(OutLearnt[MaxIdx].var()))
        MaxIdx = I;
    std::swap(OutLearnt[1], OutLearnt[MaxIdx]);
    OutBtLevel = level(OutLearnt[1].var());
  }
}

void Solver::analyzeFinal(Lit P) {
  // Called when assumption P is found forced false: collect the subset of
  // assumptions that (with the clauses) imply ~P. The resulting core holds
  // the assumption literals themselves (including P), so re-solving with
  // exactly the core as assumptions is again UNSAT.
  ConflictCore.clear();
  ConflictCore.push_back(P);
  if (decisionLevel() == 0)
    return;

  Seen[P.var()] = 1;
  for (int I = static_cast<int>(Trail.size()) - 1; I >= TrailLim[0]; --I) {
    Var V = Trail[I].var();
    if (!Seen[V])
      continue;
    if (Reason[V] == InvalidClause) {
      // Decision variable at this point == an assumption, decided true.
      assert(level(V) > 0 && "level-0 decision in final analysis");
      ConflictCore.push_back(Trail[I]);
    } else {
      const Lit *CL = clauseLits(Reason[V]);
      uint32_t Size = clauseSize(Reason[V]);
      for (uint32_t J = 1; J < Size; ++J)
        if (level(CL[J].var()) > 0)
          Seen[CL[J].var()] = 1;
    }
    Seen[V] = 0;
  }
  Seen[P.var()] = 0;
}

void Solver::cancelUntil(int Level) {
  if (decisionLevel() <= Level)
    return;
  for (int I = static_cast<int>(Trail.size()) - 1; I >= TrailLim[Level]; --I) {
    Var V = Trail[I].var();
    Assigns[V] = LBool::Undef;
    Reason[V] = InvalidClause;
    insertVarOrder(V);
  }
  PropagationHead = TrailLim[Level];
  Trail.resize(TrailLim[Level]);
  TrailLim.resize(Level);
}

Lit Solver::pickBranchLit() {
  Var Next = NullVar;
  // Occasional random decisions diversify restarts.
  if ((nextRand() & 1023) < 20 && !heapEmpty()) {
    Var Cand = Heap[nextRand() % Heap.size()];
    if (value(Cand) == LBool::Undef)
      Next = Cand;
  }
  while (Next == NullVar || value(Next) != LBool::Undef) {
    if (heapEmpty())
      return NullLit;
    Next = heapPop();
    if (value(Next) != LBool::Undef)
      Next = NullVar;
  }
  return mkLit(Next, /*Negated=*/!SavedPhase[Next]);
}

uint64_t Solver::lubyScale(uint64_t I) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  uint64_t K = 1;
  while ((1ull << (K + 1)) <= I + 1)
    ++K;
  while ((1ull << K) - 1 != I + 1) {
    I = I - ((1ull << K) - 1);
    K = 1;
    while ((1ull << (K + 1)) <= I + 1)
      ++K;
  }
  return 1ull << (K - 1);
}

LBool Solver::search(uint64_t ConflictsBeforeRestart) {
  uint64_t ConflictsHere = 0;
  std::vector<Lit> Learnt;
  int BtLevel = 0;

  for (;;) {
    ClauseRef Confl = propagate();
    if (Confl != InvalidClause) {
      // Conflict.
      ++Stats.Conflicts;
      ++ConflictsHere;
      ++ConflictsThisSolve;
      if (decisionLevel() == 0) {
        Ok = false;
        return LBool::False;
      }
      analyze(Confl, Learnt, BtLevel);
      cancelUntil(BtLevel);
      if (Learnt.size() == 1) {
        uncheckedEnqueue(Learnt[0], InvalidClause);
      } else {
        ClauseRef CR = allocClause(Learnt, /*Learnt=*/true);
        LearntClauses.push_back(CR);
        attachClause(CR);
        claBumpActivity(CR);
        uncheckedEnqueue(Learnt[0], CR);
        ++Stats.LearnedClauses;
      }
      varDecayActivity();
      claDecayActivity();
      continue;
    }

    // No conflict.
    if (ConflictsHere >= ConflictsBeforeRestart) {
      cancelUntil(0);
      return LBool::Undef; // restart
    }
    if (ConflictBudget != 0 && ConflictsThisSolve >= ConflictBudget)
      return LBool::Undef;
    if (static_cast<double>(LearntClauses.size()) >= MaxLearnts)
      reduceDB();

    // Assumption decisions come first.
    Lit Next = NullLit;
    while (decisionLevel() < static_cast<int>(CurAssumptions.size())) {
      Lit A = CurAssumptions[decisionLevel()];
      if (value(A) == LBool::True) {
        newDecisionLevel(); // dummy level keeps the indexing aligned
      } else if (value(A) == LBool::False) {
        analyzeFinal(A);
        return LBool::False;
      } else {
        Next = A;
        break;
      }
    }
    if (Next == NullLit) {
      ++Stats.Decisions;
      Next = pickBranchLit();
      if (Next == NullLit)
        return LBool::True; // all variables assigned: model found
    }
    newDecisionLevel();
    uncheckedEnqueue(Next, InvalidClause);
  }
}

LBool Solver::solve(const std::vector<Lit> &Assumptions) {
  ConflictCore.clear();
  if (!Ok) {
    return LBool::False;
  }
  for (Lit L : Assumptions)
    ensureVars(L.var() + 1);
  CurAssumptions = Assumptions;
  ConflictsThisSolve = 0;
  MaxLearnts =
      std::max<double>(1000.0, static_cast<double>(ProblemClauses.size()) / 3.0);

  simplifyLevel0();
  if (!Ok) {
    CurAssumptions.clear();
    return LBool::False;
  }
  checkGarbage();

  LBool Result = LBool::Undef;
  for (uint64_t RestartIdx = 0; Result == LBool::Undef; ++RestartIdx) {
    uint64_t Budget = 100 * lubyScale(RestartIdx);
    Result = search(Budget);
    if (Result == LBool::Undef) {
      ++Stats.Restarts;
      if (ConflictBudget != 0 && ConflictsThisSolve >= ConflictBudget)
        break;
    }
  }

  if (Result == LBool::True) {
    Model.assign(Assigns.begin(), Assigns.end());
    // Unassigned variables (possible when every clause was satisfied before
    // full assignment never happens in this implementation, but be safe).
    for (LBool &B : Model)
      if (B == LBool::Undef)
        B = LBool::False;
  }
  cancelUntil(0);
  CurAssumptions.clear();
  return Result;
}

void Solver::simplifyLevel0() {
  assert(decisionLevel() == 0 && "simplify only at root");
  if (propagate() != InvalidClause) {
    Ok = false;
    return;
  }
  auto SimplifySet = [&](std::vector<ClauseRef> &Set) {
    size_t J = 0;
    for (ClauseRef CR : Set) {
      if (clauseFreed(CR))
        continue;
      Lit *CL = clauseLits(CR);
      uint32_t Size = clauseSize(CR);
      bool Satisfied = false;
      for (uint32_t K = 0; K < Size; ++K) {
        if (value(CL[K]) == LBool::True && level(CL[K].var()) == 0) {
          Satisfied = true;
          break;
        }
      }
      if (Satisfied) {
        if (!isLocked(CR)) {
          removeClause(CR);
          continue;
        }
      } else {
        // Trim root-level false literals beyond the two watched positions;
        // after level-0 propagation the watches themselves are never false.
        uint32_t NewSize = Size;
        for (uint32_t K = 2; K < NewSize;) {
          if (value(CL[K]) == LBool::False) {
            CL[K] = CL[--NewSize];
            ++ArenaWasted;
          } else {
            ++K;
          }
        }
        if (NewSize != Size)
          setClauseSize(CR, NewSize);
      }
      Set[J++] = CR;
    }
    Set.resize(J);
  };
  SimplifySet(ProblemClauses);
  SimplifySet(LearntClauses);
}

void Solver::reduceDB() {
  // Remove the lowest-activity half of learnt clauses, keeping binary and
  // locked (reason) clauses.
  std::sort(LearntClauses.begin(), LearntClauses.end(),
            [&](ClauseRef A, ClauseRef B) {
              return clauseActivity(A) < clauseActivity(B);
            });
  size_t J = 0;
  for (size_t I = 0; I < LearntClauses.size(); ++I) {
    ClauseRef CR = LearntClauses[I];
    if (clauseFreed(CR))
      continue;
    bool Removable =
        clauseSize(CR) > 2 && !isLocked(CR) && I < LearntClauses.size() / 2;
    if (Removable)
      removeClause(CR);
    else
      LearntClauses[J++] = CR;
  }
  LearntClauses.resize(J);
  MaxLearnts = MaxLearnts * 1.1 + 100;
  checkGarbage();
}

// --- arena garbage collection ----------------------------------------------

void Solver::checkGarbage() {
  if (ArenaWasted * 5 >= Arena.size() && ArenaWasted > 0)
    garbageCollect();
}

void Solver::garbageCollect() {
  std::vector<Lit> To;
  To.reserve(Arena.size() - ArenaWasted);

  auto Reloc = [&](ClauseRef &CR) {
    if (header(CR) & RelocedBit) {
      CR = Arena[CR + 1].code();
      return;
    }
    ClauseRef NR = static_cast<ClauseRef>(To.size());
    uint32_t Size = clauseSize(CR);
    To.push_back(Arena[CR]);     // header
    To.push_back(Arena[CR + 1]); // activity
    for (uint32_t K = 0; K < Size; ++K)
      To.push_back(Arena[CR + HeaderWords + K]);
    Arena[CR] = Lit::fromCode(header(CR) | RelocedBit);
    Arena[CR + 1] = Lit::fromCode(NR);
    CR = NR;
  };

  for (auto &WL : Watches)
    for (Watcher &W : WL)
      Reloc(W.CRef);
  for (Lit L : Trail)
    if (Reason[L.var()] != InvalidClause)
      Reloc(Reason[L.var()]);
  auto RelocSet = [&](std::vector<ClauseRef> &Set) {
    size_t J = 0;
    for (ClauseRef CR : Set) {
      if (clauseFreed(CR) && !(header(CR) & RelocedBit))
        continue; // dead clause: dropped by collection
      Reloc(CR);
      Set[J++] = CR;
    }
    Set.resize(J);
  };
  RelocSet(ProblemClauses);
  RelocSet(LearntClauses);

  Arena = std::move(To);
  ArenaWasted = 0;
  ++Stats.GcRuns;
}

// --- VSIDS activity heap ----------------------------------------------------

void Solver::boostActivity(Var V, double Amount) {
  Activity[V] += Amount * VarInc;
  if (HeapIndex[V] != -1)
    heapDecrease(V);
}

void Solver::varBumpActivity(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (HeapIndex[V] != -1)
    heapDecrease(V);
}

void Solver::claBumpActivity(ClauseRef CR) {
  float A = clauseActivity(CR) + static_cast<float>(ClaInc);
  setClauseActivity(CR, A);
  if (A > 1e20f) {
    for (ClauseRef LR : LearntClauses)
      if (!clauseFreed(LR))
        setClauseActivity(LR, clauseActivity(LR) * 1e-20f);
    ClaInc *= 1e-20;
  }
}

void Solver::insertVarOrder(Var V) {
  if (HeapIndex[V] == -1 && !Released[V])
    heapInsert(V);
}

void Solver::heapInsert(Var V) {
  assert(HeapIndex[V] == -1 && "var already in heap");
  HeapIndex[V] = static_cast<int>(Heap.size());
  Heap.push_back(V);
  heapPercolateUp(HeapIndex[V]);
}

void Solver::heapDecrease(Var V) { heapPercolateUp(HeapIndex[V]); }

Var Solver::heapPop() {
  Var Top = Heap[0];
  HeapIndex[Top] = -1;
  Heap[0] = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    HeapIndex[Heap[0]] = 0;
    heapPercolateDown(0);
  }
  return Top;
}

void Solver::heapPercolateUp(int I) {
  Var V = Heap[I];
  while (I > 0) {
    int Parent = (I - 1) / 2;
    if (Activity[Heap[Parent]] >= Activity[V])
      break;
    Heap[I] = Heap[Parent];
    HeapIndex[Heap[I]] = I;
    I = Parent;
  }
  Heap[I] = V;
  HeapIndex[V] = I;
}

void Solver::heapPercolateDown(int I) {
  Var V = Heap[I];
  int N = static_cast<int>(Heap.size());
  for (;;) {
    int Child = 2 * I + 1;
    if (Child >= N)
      break;
    if (Child + 1 < N && Activity[Heap[Child + 1]] > Activity[Heap[Child]])
      ++Child;
    if (Activity[Heap[Child]] <= Activity[V])
      break;
    Heap[I] = Heap[Child];
    HeapIndex[Heap[I]] = I;
    I = Child;
  }
  Heap[I] = V;
  HeapIndex[V] = I;
}
