//===- Solver.cpp - CDCL SAT solver ----------------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// The algorithm follows Een & Sorensson's "An Extensible SAT-solver"
// (MiniSAT), with the assumption-core extraction of MiniSAT 1.14+ that the
// Fu-Malik MaxSAT layer depends on, and Glucose-style learned-clause
// management (Audemard & Simon, "Predicting Learnt Clauses Quality in
// Modern SAT Solvers", IJCAI'09): LBD-keyed three-tier retention and
// dual-EMA adaptive restarts with trail-size blocking. Clause storage is a
// flat arena in the style of MiniSAT's ClauseAllocator: headers, activity,
// LBD and literals are inline in one contiguous buffer, so the propagation
// inner loop never chases a per-clause heap pointer, and freed clauses are
// reclaimed by a relocating garbage collector once a fifth of the arena is
// waste.
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include "cnf/Cnf.h"
#include "support/FaultInject.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

using namespace bugassist;

Solver::Solver(const Options &O) : Opts(O) {
  RandState = O.RandSeed | 1;
  double Freq = std::min(1.0, std::max(0.0, O.RandomBranchFreq));
  RandBranchThreshold = static_cast<uint32_t>(Freq * 1024.0);
}

void Solver::adoptOptions(const Options &O) {
  assert(decisionLevel() == 0 && "adoptOptions only at the root level");
  Opts = O;
  RandState = O.RandSeed | 1;
  double Freq = std::min(1.0, std::max(0.0, O.RandomBranchFreq));
  RandBranchThreshold = static_cast<uint32_t>(Freq * 1024.0);
  for (Var V = 0; V < static_cast<Var>(Assigns.size()); ++V) {
    if (Assigns[V] != LBool::Undef)
      continue;
    bool Phase = false;
    switch (Opts.InitPhase) {
    case Options::PhaseInit::False:
      break;
    case Options::PhaseInit::True:
      Phase = true;
      break;
    case Options::PhaseInit::Random:
      Phase = nextRand() & 1;
      break;
    }
    SavedPhase[V] = Phase;
  }
}

float Solver::clauseActivity(ClauseRef CR) const {
  float A;
  int32_t Bits = Arena[CR + 1].code();
  std::memcpy(&A, &Bits, sizeof(A));
  return A;
}

void Solver::setClauseActivity(ClauseRef CR, float A) {
  int32_t Bits;
  std::memcpy(&Bits, &A, sizeof(Bits));
  Arena[CR + 1] = Lit::fromCode(Bits);
}

Var Solver::newVar() {
  Var V = static_cast<Var>(Assigns.size());
  Assigns.push_back(LBool::Undef);
  VarLevel.push_back(0);
  Reason.push_back(InvalidClause);
  Activity.push_back(0.0);
  HeapIndex.push_back(-1);
  bool Phase = false;
  switch (Opts.InitPhase) {
  case Options::PhaseInit::False:
    break;
  case Options::PhaseInit::True:
    Phase = true;
    break;
  case Options::PhaseInit::Random:
    Phase = nextRand() & 1;
    break;
  }
  SavedPhase.push_back(Phase);
  Released.push_back(false);
  FrozenVars.push_back(0);
  ElimVars.push_back(0);
  Seen.push_back(0);
  Watches.emplace_back(); // positive literal
  Watches.emplace_back(); // negative literal
  BinWatches.emplace_back();
  BinWatches.emplace_back();
  heapInsert(V);
  return V;
}

void Solver::ensureVars(int N) {
  while (numVars() < N)
    newVar();
}

bool Solver::addClause(Clause C) {
  assert(decisionLevel() == 0 && "clauses must be added at the root level");
  if (!Ok)
    return false;
  for (Lit L : C) {
    assert(L.isValid() && "invalid literal");
    ensureVars(L.var() + 1);
    if (ElimVars[L.var()])
      throw std::logic_error(
          "Solver::addClause: clause mentions an eliminated variable -- "
          "variables used in clauses added after the first solve() must be "
          "frozen (Solver::setFrozen) before preprocessing runs");
  }

  // Level-0 simplification: drop false literals, detect tautologies and
  // duplicate literals.
  std::sort(C.begin(), C.end());
  Clause Simplified;
  Lit Prev = NullLit;
  for (Lit L : C) {
    if (value(L) == LBool::True || L == ~Prev)
      return true; // satisfied or tautological
    if (value(L) == LBool::False || L == Prev)
      continue; // falsified or duplicate literal
    Simplified.push_back(L);
    Prev = L;
  }

  if (Simplified.empty()) {
    Ok = false;
    return false;
  }
  if (Simplified.size() == 1) {
    uncheckedEnqueue(Simplified[0], InvalidClause);
    Ok = (propagate() == InvalidClause);
    return Ok;
  }
  ClauseRef CR = allocClause(Simplified, /*Learnt=*/false);
  ProblemClauses.push_back(CR);
  attachClause(CR);
  return true;
}

bool Solver::addFormula(const CnfFormula &F) {
  ensureVars(F.numVars());
  for (const Clause &C : F.hardClauses())
    if (!addClause(C))
      return false;
  return true;
}

bool Solver::releaseVar(Lit L) {
  assert(decisionLevel() == 0 && "release only at the root level");
  ensureVars(L.var() + 1);
  Released[L.var()] = true;
  // A released variable is root-fixed below, so later elimination of its
  // remaining clause occurrences is sound again: unfreeze (the frozen
  // contract covers variables the session will still *use*).
  FrozenVars[L.var()] = 0;
  if (HeapIndex[L.var()] != -1) {
    // Evict from the decision heap by raising to the top and popping.
    Activity[L.var()] = 1e300;
    heapDecrease(L.var());
    Var Top = heapPop();
    assert(Top == L.var() && "heap eviction failed");
    (void)Top;
    Activity[L.var()] = 0.0;
  }
  return addClause({L});
}

void Solver::setFrozen(Var V, bool Frozen) {
  ensureVars(V + 1);
  FrozenVars[V] = Frozen ? 1 : 0;
}

void Solver::setBudget(const Budget &B) {
  Bud = B;
  BudgetArmed = !B.unlimited();
  BudgetExhaustedFlag = false;
  BudgetStartConflicts = Stats.Conflicts;
  BudgetStartPropagations = Stats.Propagations;
  BudgetPollCountdown = 0; // poll on the first search iteration
}

void Solver::clearBudget() {
  Bud = Budget();
  BudgetArmed = false;
  BudgetExhaustedFlag = false;
}

bool Solver::pollBudget() {
  if (!BudgetArmed)
    return false;
  if (BudgetExhaustedFlag)
    return true;
  if ((Bud.MaxConflicts != 0 &&
       Stats.Conflicts - BudgetStartConflicts >= Bud.MaxConflicts) ||
      (Bud.MaxPropagations != 0 &&
       Stats.Propagations - BudgetStartPropagations >= Bud.MaxPropagations) ||
      (Bud.MaxArenaBytes != 0 && Arena.size() * sizeof(Lit) > Bud.MaxArenaBytes) ||
      (Bud.HasDeadline && std::chrono::steady_clock::now() >= Bud.Deadline))
    BudgetExhaustedFlag = true;
  return BudgetExhaustedFlag;
}

Solver::ClauseRef Solver::allocClause(const std::vector<Lit> &Lits,
                                      bool Learnt) {
  if (faultinject::active() &&
      faultinject::onEvent(faultinject::Event::Allocation))
    InterruptRequested.store(true, std::memory_order_relaxed);
  // The arena cap degrades, never throws: the clause is still allocated
  // (one-clause overshoot) and the sticky flag makes the search loop hand
  // back Undef on its next iteration.
  if (BudgetArmed && Bud.MaxArenaBytes != 0 &&
      (Arena.size() + HeaderWords + Lits.size()) * sizeof(Lit) >
          Bud.MaxArenaBytes)
    BudgetExhaustedFlag = true;
  ClauseRef CR = static_cast<ClauseRef>(Arena.size());
  int32_t Header = static_cast<int32_t>(Lits.size() << 3);
  if (Learnt)
    Header |= LearntBit;
  Arena.push_back(Lit::fromCode(Header));
  Arena.push_back(Lit::fromCode(0)); // activity slot
  Arena.push_back(Lit::fromCode(0)); // lbd/flags slot
  Arena.insert(Arena.end(), Lits.begin(), Lits.end());
  setClauseActivity(CR, Learnt ? static_cast<float>(ClaInc) : 0.0f);
  return CR;
}

void Solver::attachClause(ClauseRef CR) {
  const Lit *CL = clauseLits(CR);
  assert(clauseSize(CR) >= 2 && "cannot watch unit clause");
  // Size-2 clauses live in the dedicated binary lists: the Blocker IS the
  // implied literal, so propagation needs no arena access at all.
  auto &Lists = clauseSize(CR) == 2 ? BinWatches : Watches;
  Lists[(~CL[0]).code()].push_back({CR, CL[1]});
  Lists[(~CL[1]).code()].push_back({CR, CL[0]});
}

void Solver::detachClause(ClauseRef CR) {
  const Lit *CL = clauseLits(CR);
  auto &Lists = clauseSize(CR) == 2 ? BinWatches : Watches;
  for (int I = 0; I < 2; ++I) {
    auto &WL = Lists[(~CL[I]).code()];
    for (size_t J = 0; J < WL.size(); ++J) {
      if (WL[J].CRef == CR) {
        WL[J] = WL.back();
        WL.pop_back();
        break;
      }
    }
  }
}

void Solver::rewatchAsBinary(ClauseRef CR) {
  // A clause that root-level trimming shrank to two literals migrates from
  // the long-clause watches into the binary lists (invariant: size 2 <=>
  // watched in BinWatches). The watched literals themselves are untouched
  // by trimming, so the stale entries are exactly at (~CL[0]) and (~CL[1]).
  const Lit *CL = clauseLits(CR);
  for (int I = 0; I < 2; ++I) {
    auto &WL = Watches[(~CL[I]).code()];
    for (size_t J = 0; J < WL.size(); ++J) {
      if (WL[J].CRef == CR) {
        WL[J] = WL.back();
        WL.pop_back();
        break;
      }
    }
  }
  attachClause(CR);
}

bool Solver::isLocked(ClauseRef CR) const {
  // Binary clauses skip propagate()'s normalizing swap, so the implied
  // literal may sit at either position.
  const Lit *CL = clauseLits(CR);
  if (value(CL[0]) == LBool::True && Reason[CL[0].var()] == CR)
    return true;
  return clauseSize(CR) == 2 && value(CL[1]) == LBool::True &&
         Reason[CL[1].var()] == CR;
}

void Solver::removeClause(ClauseRef CR) {
  detachClause(CR);
  Arena[CR] = Lit::fromCode(header(CR) | FreedBit);
  ArenaWasted += HeaderWords + clauseSize(CR);
  ++Stats.DeletedClauses;
}

void Solver::uncheckedEnqueue(Lit L, ClauseRef From) {
  assert(value(L) == LBool::Undef && "enqueueing assigned literal");
  Assigns[L.var()] = L.negated() ? LBool::False : LBool::True;
  VarLevel[L.var()] = decisionLevel();
  Reason[L.var()] = From;
  SavedPhase[L.var()] = !L.negated();
  Trail.push_back(L);
}

Solver::ClauseRef Solver::propagate() {
  ClauseRef Confl = InvalidClause;
  while (PropagationHead < static_cast<int>(Trail.size())) {
    Lit P = Trail[PropagationHead++];
    ++Stats.Propagations;

    // Binary fast path: the Blocker is the whole remaining clause, so each
    // watcher resolves with one value() lookup -- no header load, no
    // literal scan, no watch-list surgery.
    auto &BWL = BinWatches[P.code()];
    for (const Watcher &BW : BWL) {
      LBool BV = value(BW.Blocker);
      if (BV == LBool::False) {
        Confl = BW.CRef;
        break;
      }
      if (BV == LBool::Undef)
        uncheckedEnqueue(BW.Blocker, BW.CRef);
    }
    if (Confl != InvalidClause) {
      PropagationHead = static_cast<int>(Trail.size());
      break;
    }

    auto &WL = Watches[P.code()];
    size_t I = 0, J = 0;
    while (I < WL.size()) {
      Watcher W = WL[I];
      // Blocker literal already true: clause satisfied, keep the watch.
      if (value(W.Blocker) == LBool::True) {
        WL[J++] = WL[I++];
        continue;
      }
      Lit *CL = clauseLits(W.CRef);
      uint32_t Size = clauseSize(W.CRef);
      // Normalize so the false literal (~P) sits at index 1.
      Lit NotP = ~P;
      if (CL[0] == NotP)
        std::swap(CL[0], CL[1]);
      assert(CL[1] == NotP && "watch invariant broken");
      ++I;

      Lit First = CL[0];
      if (First != W.Blocker && value(First) == LBool::True) {
        WL[J++] = {W.CRef, First};
        continue;
      }

      // Look for a replacement watch.
      bool FoundWatch = false;
      for (uint32_t K = 2; K < Size; ++K) {
        if (value(CL[K]) != LBool::False) {
          std::swap(CL[1], CL[K]);
          Watches[(~CL[1]).code()].push_back({W.CRef, First});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;

      // Clause is unit or conflicting.
      WL[J++] = {W.CRef, First};
      if (value(First) == LBool::False) {
        Confl = W.CRef;
        PropagationHead = static_cast<int>(Trail.size());
        while (I < WL.size())
          WL[J++] = WL[I++];
        break;
      }
      uncheckedEnqueue(First, W.CRef);
    }
    WL.resize(J);
    if (Confl != InvalidClause)
      break;
  }
  return Confl;
}

uint32_t Solver::computeLbd(const Lit *Lits, uint32_t Size) {
  ++LbdStamp;
  uint32_t Distinct = 0;
  for (uint32_t I = 0; I < Size; ++I) {
    int L = level(Lits[I].var());
    if (L <= 0)
      continue;
    if (static_cast<size_t>(L) >= LbdStampOfLevel.size())
      LbdStampOfLevel.resize(static_cast<size_t>(L) + 1, 0);
    if (LbdStampOfLevel[L] != LbdStamp) {
      LbdStampOfLevel[L] = LbdStamp;
      ++Distinct;
    }
  }
  return Distinct ? Distinct : 1;
}

void Solver::analyze(ClauseRef Confl, std::vector<Lit> &OutLearnt,
                     int &OutBtLevel, uint32_t &OutLbd) {
  OutLearnt.clear();
  OutLearnt.push_back(NullLit); // slot for the asserting literal
  int PathCount = 0;
  Lit P = NullLit;
  int Index = static_cast<int>(Trail.size()) - 1;

  do {
    assert(Confl != InvalidClause && "no reason for implied literal");
    if (P != NullLit)
      normalizeBinaryReason(Confl, P);
    if (clauseLearnt(Confl)) {
      claBumpActivity(Confl);
      // Glucose: a learnt clause participating in conflict analysis gets
      // its LBD recomputed against the current levels; it can only
      // tighten, and a tightened clause is "interesting again" -- mark it
      // touched so the tier policy protects it at the next reduction.
      uint32_t Old = clauseLbd(Confl);
      if (Old > 2) {
        uint32_t New = computeLbd(clauseLits(Confl), clauseSize(Confl));
        if (New < Old) {
          setClauseLbd(Confl, New);
          ++Stats.LbdTightened;
        }
      }
      setClauseTouched(Confl, true);
    }
    const Lit *CL = clauseLits(Confl);
    uint32_t Size = clauseSize(Confl);
    for (uint32_t J = (P == NullLit ? 0 : 1); J < Size; ++J) {
      Lit Q = CL[J];
      if (Seen[Q.var()] || level(Q.var()) == 0)
        continue;
      Seen[Q.var()] = 1;
      varBumpActivity(Q.var());
      if (level(Q.var()) >= decisionLevel())
        ++PathCount;
      else
        OutLearnt.push_back(Q);
    }
    // Find the next literal on the trail to expand.
    while (!Seen[Trail[Index].var()])
      --Index;
    P = Trail[Index];
    --Index;
    Confl = Reason[P.var()];
    Seen[P.var()] = 0;
    --PathCount;
  } while (PathCount > 0);
  OutLearnt[0] = ~P;

  // Local clause minimization: a literal is redundant if the other literals
  // of its reason clause are all already in the learnt clause (marked seen).
  std::vector<Lit> Cleanup(OutLearnt.begin(), OutLearnt.end());
  for (Lit L : OutLearnt)
    Seen[L.var()] = 1;
  size_t Keep = 1;
  for (size_t I = 1; I < OutLearnt.size(); ++I) {
    Lit L = OutLearnt[I];
    ClauseRef R = Reason[L.var()];
    bool Redundant = false;
    if (R != InvalidClause) {
      normalizeBinaryReason(R, ~L); // ~L is the literal R implied
      Redundant = true;
      const Lit *RC = clauseLits(R);
      uint32_t RSize = clauseSize(R);
      for (uint32_t J = 1; J < RSize; ++J) {
        Lit Q = RC[J];
        if (!Seen[Q.var()] && level(Q.var()) > 0) {
          Redundant = false;
          break;
        }
      }
    }
    if (!Redundant)
      OutLearnt[Keep++] = L;
  }
  OutLearnt.resize(Keep);
  for (Lit L : Cleanup)
    Seen[L.var()] = 0;

  // The LBD of the minimized clause, measured before backjumping while the
  // trail levels are still those of the conflict.
  OutLbd = computeLbd(OutLearnt.data(), static_cast<uint32_t>(OutLearnt.size()));

  // Compute the backtrack level: second-highest decision level in clause.
  if (OutLearnt.size() == 1) {
    OutBtLevel = 0;
  } else {
    size_t MaxIdx = 1;
    for (size_t I = 2; I < OutLearnt.size(); ++I)
      if (level(OutLearnt[I].var()) > level(OutLearnt[MaxIdx].var()))
        MaxIdx = I;
    std::swap(OutLearnt[1], OutLearnt[MaxIdx]);
    OutBtLevel = level(OutLearnt[1].var());
  }
}

void Solver::analyzeFinal(Lit P) {
  // Called when assumption P is found forced false: collect the subset of
  // assumptions that (with the clauses) imply ~P. The resulting core holds
  // the assumption literals themselves (including P), so re-solving with
  // exactly the core as assumptions is again UNSAT.
  ConflictCore.clear();
  ConflictCore.push_back(P);
  if (decisionLevel() == 0)
    return;

  Seen[P.var()] = 1;
  for (int I = static_cast<int>(Trail.size()) - 1; I >= TrailLim[0]; --I) {
    Var V = Trail[I].var();
    if (!Seen[V])
      continue;
    if (Reason[V] == InvalidClause) {
      // Decision variable at this point == an assumption, decided true.
      assert(level(V) > 0 && "level-0 decision in final analysis");
      ConflictCore.push_back(Trail[I]);
    } else {
      normalizeBinaryReason(Reason[V], Trail[I]);
      const Lit *CL = clauseLits(Reason[V]);
      uint32_t Size = clauseSize(Reason[V]);
      for (uint32_t J = 1; J < Size; ++J)
        if (level(CL[J].var()) > 0)
          Seen[CL[J].var()] = 1;
    }
    Seen[V] = 0;
  }
  Seen[P.var()] = 0;
}

void Solver::cancelUntil(int Level) {
  if (decisionLevel() <= Level)
    return;
  for (int I = static_cast<int>(Trail.size()) - 1; I >= TrailLim[Level]; --I) {
    Var V = Trail[I].var();
    Assigns[V] = LBool::Undef;
    Reason[V] = InvalidClause;
    insertVarOrder(V);
  }
  PropagationHead = TrailLim[Level];
  Trail.resize(TrailLim[Level]);
  TrailLim.resize(Level);
}

Lit Solver::pickBranchLit() {
  Var Next = NullVar;
  // Occasional random decisions diversify restarts (and, in a portfolio,
  // decorrelate workers; the frequency is an Options knob).
  if ((nextRand() & 1023) < RandBranchThreshold && !heapEmpty()) {
    Var Cand = Heap[nextRand() % Heap.size()];
    if (value(Cand) == LBool::Undef)
      Next = Cand;
  }
  while (Next == NullVar || value(Next) != LBool::Undef) {
    if (heapEmpty())
      return NullLit;
    Next = heapPop();
    if (value(Next) != LBool::Undef)
      Next = NullVar;
  }
  return mkLit(Next, /*Negated=*/!SavedPhase[Next]);
}

uint64_t Solver::lubyScale(uint64_t I) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  uint64_t K = 1;
  while ((1ull << (K + 1)) <= I + 1)
    ++K;
  while ((1ull << K) - 1 != I + 1) {
    I = I - ((1ull << K) - 1);
    K = 1;
    while ((1ull << (K + 1)) <= I + 1)
      ++K;
  }
  return 1ull << (K - 1);
}

void Solver::pushLearnt(ClauseRef CR, uint32_t Lbd) {
  setClauseLbd(CR, Lbd);
  if (Opts.Retention == Options::RetentionPolicy::ActivityHalving) {
    LocalLearnts.push_back(CR);
    ++Stats.LocalLearnts;
    return;
  }
  if (Lbd <= Opts.CoreLbdCut || clauseSize(CR) <= 2) {
    CoreLearnts.push_back(CR);
    ++Stats.CoreLearnts;
  } else if (Lbd <= Opts.MidLbdCut) {
    MidLearnts.push_back(CR);
    ++Stats.MidLearnts;
  } else {
    LocalLearnts.push_back(CR);
    ++Stats.LocalLearnts;
  }
}

size_t Solver::reducibleLearnts() const {
  // Core clauses are permanent and never count against the reduction
  // trigger; under the seed policy every learnt lives in Local.
  return MidLearnts.size() + LocalLearnts.size();
}

void Solver::onConflictLearnt(uint32_t Lbd) {
  Stats.LbdSum += Lbd;
  ++Stats.LbdCount;
  if (Opts.Restart != Options::RestartPolicy::GlucoseEma)
    return;
  FastLbdEma += Opts.FastLbdAlpha * (static_cast<double>(Lbd) - FastLbdEma);
  FastLbdBias += Opts.FastLbdAlpha * (1.0 - FastLbdBias);
  double TrailSize = static_cast<double>(Trail.size());
  // Glucose blocking: an unusually deep trail at conflict time means the
  // solver is probably closing in on a model; cancel a pending restart
  // instead of throwing the assignment away. Decisive for the SAT-heavy
  // improvement steps of linear-search MaxSAT. The bias-corrected trail
  // EMA (and at least one prior sample) keeps the comparison meaningful
  // while the EMA warms up.
  if (ConflictsThisSolve >= Opts.BlockMinConflicts && TrailBias > 0 &&
      TrailSize > Opts.BlockMargin * (TrailEma / TrailBias) &&
      restartPending()) {
    ++Stats.RestartsBlocked;
    ConflictsSinceRestart = 0; // re-enter the warmup window
    // Drop the pending high-LBD signal: corrected fast EMA == lifetime avg.
    FastLbdEma = Stats.avgLearntLbd() * FastLbdBias;
  }
  TrailEma += Opts.TrailAlpha * (TrailSize - TrailEma);
  TrailBias += Opts.TrailAlpha * (1.0 - TrailBias);
}

bool Solver::restartPending() const {
  if (Stats.LbdCount == 0 || FastLbdBias <= 0)
    return false;
  return FastLbdEma / FastLbdBias > Opts.RestartMargin * Stats.avgLearntLbd();
}

bool Solver::shouldRestart() const {
  if (Opts.Restart == Options::RestartPolicy::Luby)
    return ConflictsSinceRestart >= CurRestartBudget;
  // At least one conflict must separate restarts, or a standing EMA signal
  // would spin the search loop without ever deciding.
  uint64_t Warmup = Opts.RestartMinConflicts ? Opts.RestartMinConflicts : 1;
  return ConflictsSinceRestart >= Warmup && restartPending();
}

LBool Solver::search() {
  std::vector<Lit> Learnt;
  int BtLevel = 0;
  uint32_t Lbd = 0;

  for (;;) {
    if (InterruptRequested.load(std::memory_order_relaxed))
      return LBool::Undef; // cooperative cancellation (portfolio racing)
    if (BudgetArmed && (BudgetExhaustedFlag || --BudgetPollCountdown <= 0)) {
      BudgetPollCountdown = BudgetPollPeriod;
      if (pollBudget())
        return LBool::Undef; // budget exhausted: degrade to Unknown
    }
    ClauseRef Confl = propagate();
    if (Confl != InvalidClause) {
      // Conflict.
      ++Stats.Conflicts;
      ++ConflictsThisSolve;
      ++ConflictsSinceRestart;
      if (decisionLevel() == 0) {
        Ok = false;
        return LBool::False;
      }
      analyze(Confl, Learnt, BtLevel, Lbd);
      onConflictLearnt(Lbd); // EMAs see the trail depth of the conflict
      cancelUntil(BtLevel);
      if (Learnt.size() == 1) {
        uncheckedEnqueue(Learnt[0], InvalidClause);
      } else {
        ClauseRef CR = allocClause(Learnt, /*Learnt=*/true);
        pushLearnt(CR, Lbd);
        attachClause(CR);
        claBumpActivity(CR);
        uncheckedEnqueue(Learnt[0], CR);
        ++Stats.LearnedClauses;
      }
      if (Export && Lbd <= Opts.ShareLbdMax &&
          Learnt.size() <= Opts.ShareMaxSize) {
        // Only clauses over the shared variable prefix travel: learnts
        // touching session-local auxiliaries stay private (they are only
        // implied by this worker's guard/counter structure).
        bool Shareable = true;
        for (Lit L : Learnt)
          if (L.var() >= ShareVarLimit) {
            Shareable = false;
            break;
          }
        if (Shareable) {
          Export(Learnt, Lbd);
          ++Stats.ClausesExported;
        }
      }
      varDecayActivity();
      claDecayActivity();
      continue;
    }

    // No conflict.
    if (shouldRestart()) {
      cancelUntil(0);
      return LBool::Undef; // restart
    }
    if (ConflictBudget != 0 && ConflictsThisSolve >= ConflictBudget)
      return LBool::Undef;
    if (static_cast<double>(reducibleLearnts()) >= MaxLearnts)
      reduceDB();

    // Assumption decisions come first.
    Lit Next = NullLit;
    while (decisionLevel() < static_cast<int>(CurAssumptions.size())) {
      Lit A = CurAssumptions[decisionLevel()];
      if (value(A) == LBool::True) {
        newDecisionLevel(); // dummy level keeps the indexing aligned
      } else if (value(A) == LBool::False) {
        analyzeFinal(A);
        return LBool::False;
      } else {
        Next = A;
        break;
      }
    }
    if (Next == NullLit) {
      ++Stats.Decisions;
      Next = pickBranchLit();
      if (Next == NullLit)
        return LBool::True; // all variables assigned: model found
    }
    newDecisionLevel();
    uncheckedEnqueue(Next, InvalidClause);
  }
}

LBool Solver::solve(const std::vector<Lit> &Assumptions) {
  ConflictCore.clear();
  if (!Ok) {
    return LBool::False;
  }
  for (Lit L : Assumptions) {
    ensureVars(L.var() + 1);
    if (ElimVars[L.var()])
      throw std::logic_error(
          "Solver::solve: assumption over an eliminated variable -- "
          "assumption variables must be frozen (Solver::setFrozen) before "
          "preprocessing runs");
  }
  CurAssumptions = Assumptions;
  ConflictsThisSolve = 0;
  MaxLearnts = std::max<double>(
      Opts.MaxLearntsBase, static_cast<double>(ProblemClauses.size()) / 3.0);

  simplifyLevel0();
  importSharedClauses(); // foreign clauses land at the root, like restarts
  if (Ok && Opts.Preprocess && !PreprocessedOnce)
    preprocess(); // load-time pass; restart boundaries re-run it below
  if (!Ok) {
    CurAssumptions.clear();
    return LBool::False;
  }
  checkGarbage();

  LBool Result = LBool::Undef;
  for (uint64_t RestartIdx = 0; Result == LBool::Undef; ++RestartIdx) {
    CurRestartBudget = Opts.LubyUnit * lubyScale(RestartIdx);
    ConflictsSinceRestart = 0;
    Result = search();
    if (Result == LBool::Undef) {
      if (InterruptRequested.load(std::memory_order_relaxed))
        break; // interrupted: hand back Undef without counting a restart
      if (BudgetExhaustedFlag)
        break; // budget exhausted: same contract as an interrupt
      if (faultinject::active() &&
          faultinject::onEvent(faultinject::Event::Restart))
        InterruptRequested.store(true, std::memory_order_relaxed);
      ++Stats.Restarts;
      if (ConflictBudget != 0 && ConflictsThisSolve >= ConflictBudget)
        break;
      // Restart boundary: the solver is at decision level 0, the one place
      // foreign clauses can be injected soundly and attached watchable.
      importSharedClauses();
      if (Ok && Opts.Preprocess && Opts.InprocessIntervalConflicts != 0 &&
          Stats.Conflicts - LastInprocConflicts >=
              Opts.InprocessIntervalConflicts)
        preprocess(); // inprocessing under the same budget accounting
      if (!Ok) {
        Result = LBool::False;
        break;
      }
    }
  }

  if (Result == LBool::True) {
    Model.assign(Assigns.begin(), Assigns.end());
    // Eliminated variables never appear on the trail; restore them from the
    // reconstruction stack before anything reads (or defaults) the model.
    extendModel();
    // Unassigned variables (possible when every clause was satisfied before
    // full assignment never happens in this implementation, but be safe).
    for (LBool &B : Model)
      if (B == LBool::Undef)
        B = LBool::False;
  }
  cancelUntil(0);
  CurAssumptions.clear();
  return Result;
}

void Solver::simplifyLevel0() {
  assert(decisionLevel() == 0 && "simplify only at root");
  if (propagate() != InvalidClause) {
    Ok = false;
    return;
  }
  auto SimplifySet = [&](std::vector<ClauseRef> &Set) {
    size_t J = 0;
    for (ClauseRef CR : Set) {
      if (clauseFreed(CR))
        continue;
      Lit *CL = clauseLits(CR);
      uint32_t Size = clauseSize(CR);
      bool Satisfied = false;
      for (uint32_t K = 0; K < Size; ++K) {
        if (value(CL[K]) == LBool::True && level(CL[K].var()) == 0) {
          Satisfied = true;
          break;
        }
      }
      if (Satisfied) {
        if (!isLocked(CR)) {
          removeClause(CR);
          continue;
        }
      } else {
        // Trim root-level false literals beyond the two watched positions;
        // after level-0 propagation the watches themselves are never false.
        uint32_t NewSize = Size;
        for (uint32_t K = 2; K < NewSize;) {
          if (value(CL[K]) == LBool::False) {
            CL[K] = CL[--NewSize];
            ++ArenaWasted;
          } else {
            ++K;
          }
        }
        if (NewSize != Size) {
          setClauseSize(CR, NewSize);
          if (NewSize == 2)
            rewatchAsBinary(CR); // keep the size-2 <=> BinWatches invariant
        }
      }
      Set[J++] = CR;
    }
    Set.resize(J);
  };
  SimplifySet(ProblemClauses);
  SimplifySet(CoreLearnts);
  SimplifySet(MidLearnts);
  SimplifySet(LocalLearnts);
  refreshTierGauges();
}

void Solver::reduceDB() {
  if (Opts.Retention == Options::RetentionPolicy::LbdTiers)
    reduceDbTiers();
  else
    reduceDbActivity();
}

void Solver::reduceLearntDb() {
  assert(decisionLevel() == 0 && "reduce only at the root level");
  reduceDB();
}

void Solver::reduceDbActivity() {
  // Seed policy: remove the lowest-activity half of learnt clauses, keeping
  // binary and locked (reason) clauses. Everything lives in Local.
  std::sort(LocalLearnts.begin(), LocalLearnts.end(),
            [&](ClauseRef A, ClauseRef B) {
              return clauseActivity(A) < clauseActivity(B);
            });
  size_t J = 0;
  for (size_t I = 0; I < LocalLearnts.size(); ++I) {
    ClauseRef CR = LocalLearnts[I];
    if (clauseFreed(CR))
      continue;
    bool Removable =
        clauseSize(CR) > 2 && !isLocked(CR) && I < LocalLearnts.size() / 2;
    if (Removable)
      removeClause(CR);
    else
      LocalLearnts[J++] = CR;
  }
  LocalLearnts.resize(J);
  MaxLearnts = MaxLearnts * 1.1 + 100;
  refreshTierGauges();
  checkGarbage();
}

void Solver::reduceDbTiers() {
  // Redistribute mid/local by their current (possibly tightened) LBD; the
  // core tier is permanent and never rescanned.
  std::vector<ClauseRef> Mid, Local;
  auto Classify = [&](ClauseRef CR, bool FromMid) {
    if (clauseFreed(CR))
      return;
    uint32_t Lbd = clauseLbd(CR);
    if (Lbd <= Opts.CoreLbdCut || clauseSize(CR) <= 2) {
      CoreLearnts.push_back(CR); // promoted for good
      return;
    }
    if (Lbd <= Opts.MidLbdCut) {
      if (clauseTouched(CR)) {
        // Used in a conflict since the last reduction: stays mid, young.
        setClauseTouched(CR, false);
        setClauseAge(CR, 0);
        Mid.push_back(CR);
        return;
      }
      if (FromMid) {
        // The stored age saturates at AgeMask, so a configured MidMaxAge
        // beyond the field's range degrades to AgeMask + 1 instead of
        // wrapping into immortality.
        uint32_t Age = clauseAge(CR) + 1;
        uint32_t MaxAge = std::min(Opts.MidMaxAge, AgeMask + 1);
        if (Age < MaxAge) {
          setClauseAge(CR, Age);
          Mid.push_back(CR);
          return;
        }
        // Unused for MidMaxAge reductions: falls into the local rotation.
      }
      // A clause that already aged out of mid only climbs back when a
      // conflict touches it again.
    }
    Local.push_back(CR);
  };
  for (ClauseRef CR : MidLearnts)
    Classify(CR, /*FromMid=*/true);
  for (ClauseRef CR : LocalLearnts)
    Classify(CR, /*FromMid=*/false);

  // Aggressive local rotation: the worst half by LBD-then-activity goes.
  // Locked clauses and clauses touched since the last reduction survive.
  std::sort(Local.begin(), Local.end(), [&](ClauseRef A, ClauseRef B) {
    if (clauseLbd(A) != clauseLbd(B))
      return clauseLbd(A) > clauseLbd(B);
    return clauseActivity(A) < clauseActivity(B);
  });
  size_t Target = Local.size() / 2;
  size_t Deleted = 0, J = 0;
  for (ClauseRef CR : Local) {
    if (Deleted < Target && !isLocked(CR) && !clauseTouched(CR)) {
      removeClause(CR);
      ++Deleted;
    } else {
      setClauseTouched(CR, false);
      Local[J++] = CR;
    }
  }
  Local.resize(J);

  MidLearnts = std::move(Mid);
  LocalLearnts = std::move(Local);
  MaxLearnts = MaxLearnts * 1.1 + 100;
  refreshTierGauges();
  checkGarbage();
}

void Solver::refreshTierGauges() {
  auto Live = [&](const std::vector<ClauseRef> &Set) {
    uint64_t N = 0;
    for (ClauseRef CR : Set)
      if (!clauseFreed(CR))
        ++N;
    return N;
  };
  Stats.CoreLearnts = Live(CoreLearnts);
  Stats.MidLearnts = Live(MidLearnts);
  Stats.LocalLearnts = Live(LocalLearnts);
}

std::vector<uint32_t> Solver::learntLbds() const {
  std::vector<uint32_t> Lbds;
  for (const auto *Set : {&CoreLearnts, &MidLearnts, &LocalLearnts})
    for (ClauseRef CR : *Set)
      if (!clauseFreed(CR))
        Lbds.push_back(clauseLbd(CR));
  return Lbds;
}

// --- portfolio clause exchange ----------------------------------------------

void Solver::importSharedClauses() {
  if (!Import || !Ok)
    return;
  assert(decisionLevel() == 0 && "imports only at the root level");
  std::vector<Lit> C;
  uint32_t Lbd = 0;
  bool Any = false;
  while (Ok && Import(C, Lbd)) {
    addImportedClause(C, Lbd);
    Any = true;
  }
  if (Ok && Any && propagate() != InvalidClause)
    Ok = false;
}

void Solver::addImportedClause(const std::vector<Lit> &Lits, uint32_t Lbd) {
  // Root-level simplification mirrors addClause, but the clause enters the
  // learnt tiers under its advertised LBD instead of the problem set: an
  // imported clause is a lemma, and the retention policy may drop it again.
  std::vector<Lit> C(Lits);
  for (Lit L : C) {
    ensureVars(L.var() + 1);
    // The exchange prefix is structurally frozen, so foreign clauses never
    // mention eliminated variables; drop defensively rather than corrupt.
    if (ElimVars[L.var()])
      return;
  }
  std::sort(C.begin(), C.end());
  std::vector<Lit> Simplified;
  Lit Prev = NullLit;
  for (Lit L : C) {
    if (value(L) == LBool::True || L == ~Prev)
      return; // satisfied at the root or tautological
    if (value(L) == LBool::False || L == Prev)
      continue;
    Simplified.push_back(L);
    Prev = L;
  }
  if (Simplified.empty()) {
    Ok = false; // shared clauses are implied: the formula is UNSAT
    return;
  }
  ++Stats.ClausesImported;
  if (Simplified.size() == 1) {
    uncheckedEnqueue(Simplified[0], InvalidClause);
    return; // caller propagates after the batch
  }
  ClauseRef CR = allocClause(Simplified, /*Learnt=*/true);
  pushLearnt(CR, std::max<uint32_t>(Lbd, 1));
  attachClause(CR);
}

// --- arena garbage collection ----------------------------------------------

void Solver::checkGarbage() {
  if (ArenaWasted * 5 >= Arena.size() && ArenaWasted > 0)
    garbageCollect();
}

void Solver::forceGarbageCollect() {
  assert(decisionLevel() == 0 && "collect only at the root level");
  garbageCollect();
}

void Solver::garbageCollect() {
  std::vector<Lit> To;
  To.reserve(Arena.size() - ArenaWasted);

  auto Reloc = [&](ClauseRef &CR) {
    if (header(CR) & RelocedBit) {
      CR = Arena[CR + 1].code();
      return;
    }
    ClauseRef NR = static_cast<ClauseRef>(To.size());
    uint32_t Size = clauseSize(CR);
    for (int H = 0; H < HeaderWords; ++H)
      To.push_back(Arena[CR + H]); // header, activity, lbd/flags
    for (uint32_t K = 0; K < Size; ++K)
      To.push_back(Arena[CR + HeaderWords + K]);
    Arena[CR] = Lit::fromCode(header(CR) | RelocedBit);
    Arena[CR + 1] = Lit::fromCode(NR);
    CR = NR;
  };

  for (auto &WL : Watches)
    for (Watcher &W : WL)
      Reloc(W.CRef);
  for (auto &WL : BinWatches)
    for (Watcher &W : WL)
      Reloc(W.CRef);
  for (Lit L : Trail)
    if (Reason[L.var()] != InvalidClause)
      Reloc(Reason[L.var()]);
  auto RelocSet = [&](std::vector<ClauseRef> &Set) {
    size_t J = 0;
    for (ClauseRef CR : Set) {
      if (clauseFreed(CR) && !(header(CR) & RelocedBit))
        continue; // dead clause: dropped by collection
      Reloc(CR);
      Set[J++] = CR;
    }
    Set.resize(J);
  };
  RelocSet(ProblemClauses);
  RelocSet(CoreLearnts);
  RelocSet(MidLearnts);
  RelocSet(LocalLearnts);

  Arena = std::move(To);
  ArenaWasted = 0;
  ++Stats.GcRuns;
}

// --- VSIDS activity heap ----------------------------------------------------

void Solver::boostActivity(Var V, double Amount) {
  Activity[V] += Amount * VarInc;
  if (HeapIndex[V] != -1)
    heapDecrease(V);
}

void Solver::varBumpActivity(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (HeapIndex[V] != -1)
    heapDecrease(V);
}

void Solver::claBumpActivity(ClauseRef CR) {
  float A = clauseActivity(CR) + static_cast<float>(ClaInc);
  setClauseActivity(CR, A);
  if (A > 1e20f) {
    for (auto *Set : {&CoreLearnts, &MidLearnts, &LocalLearnts})
      for (ClauseRef LR : *Set)
        if (!clauseFreed(LR))
          setClauseActivity(LR, clauseActivity(LR) * 1e-20f);
    ClaInc *= 1e-20;
  }
}

void Solver::insertVarOrder(Var V) {
  if (HeapIndex[V] == -1 && !Released[V] && !ElimVars[V])
    heapInsert(V);
}

void Solver::heapInsert(Var V) {
  assert(HeapIndex[V] == -1 && "var already in heap");
  HeapIndex[V] = static_cast<int>(Heap.size());
  Heap.push_back(V);
  heapPercolateUp(HeapIndex[V]);
}

void Solver::heapDecrease(Var V) { heapPercolateUp(HeapIndex[V]); }

Var Solver::heapPop() {
  Var Top = Heap[0];
  HeapIndex[Top] = -1;
  Heap[0] = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    HeapIndex[Heap[0]] = 0;
    heapPercolateDown(0);
  }
  return Top;
}

void Solver::heapPercolateUp(int I) {
  Var V = Heap[I];
  while (I > 0) {
    int Parent = (I - 1) / 2;
    if (Activity[Heap[Parent]] >= Activity[V])
      break;
    Heap[I] = Heap[Parent];
    HeapIndex[Heap[I]] = I;
    I = Parent;
  }
  Heap[I] = V;
  HeapIndex[V] = I;
}

void Solver::heapPercolateDown(int I) {
  Var V = Heap[I];
  int N = static_cast<int>(Heap.size());
  for (;;) {
    int Child = 2 * I + 1;
    if (Child >= N)
      break;
    if (Child + 1 < N && Activity[Heap[Child + 1]] > Activity[Heap[Child]])
      ++Child;
    if (Activity[Heap[Child]] <= Activity[V])
      break;
    Heap[I] = Heap[Child];
    HeapIndex[Heap[I]] = I;
    I = Child;
  }
  Heap[I] = V;
  HeapIndex[V] = I;
}
