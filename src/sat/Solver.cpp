//===- Solver.cpp - CDCL SAT solver ----------------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// The algorithm follows Een & Sorensson's "An Extensible SAT-solver"
// (MiniSAT), with the assumption-core extraction of MiniSAT 1.14+ that the
// Fu-Malik MaxSAT layer depends on.
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include "cnf/Cnf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace bugassist;

Solver::Solver() = default;

Var Solver::newVar() {
  Var V = static_cast<Var>(Assigns.size());
  Assigns.push_back(LBool::Undef);
  VarLevel.push_back(0);
  Reason.push_back(InvalidClause);
  Activity.push_back(0.0);
  HeapIndex.push_back(-1);
  SavedPhase.push_back(false);
  Seen.push_back(0);
  Watches.emplace_back(); // positive literal
  Watches.emplace_back(); // negative literal
  heapInsert(V);
  return V;
}

void Solver::ensureVars(int N) {
  while (numVars() < N)
    newVar();
}

bool Solver::addClause(Clause C) {
  assert(decisionLevel() == 0 && "clauses must be added at the root level");
  if (!Ok)
    return false;
  for (Lit L : C) {
    assert(L.isValid() && "invalid literal");
    ensureVars(L.var() + 1);
  }

  // Level-0 simplification: drop false literals, detect tautologies and
  // duplicate literals.
  std::sort(C.begin(), C.end());
  Clause Simplified;
  Lit Prev = NullLit;
  for (Lit L : C) {
    if (value(L) == LBool::True || L == ~Prev)
      return true; // satisfied or tautological
    if (value(L) == LBool::False || L == Prev)
      continue; // falsified or duplicate literal
    Simplified.push_back(L);
    Prev = L;
  }

  if (Simplified.empty()) {
    Ok = false;
    return false;
  }
  if (Simplified.size() == 1) {
    uncheckedEnqueue(Simplified[0], InvalidClause);
    Ok = (propagate() == InvalidClause);
    return Ok;
  }
  ClauseRef CR = allocClause(std::move(Simplified), /*Learnt=*/false);
  ProblemClauses.push_back(CR);
  attachClause(CR);
  return true;
}

bool Solver::addFormula(const CnfFormula &F) {
  ensureVars(F.numVars());
  for (const Clause &C : F.hardClauses())
    if (!addClause(C))
      return false;
  return true;
}

Solver::ClauseRef Solver::allocClause(std::vector<Lit> Lits, bool Learnt) {
  ClauseRef CR = static_cast<ClauseRef>(Clauses.size());
  ClauseData CD;
  CD.Lits = std::move(Lits);
  CD.Learnt = Learnt;
  CD.Activity = Learnt ? ClaInc : 0.0;
  Clauses.push_back(std::move(CD));
  return CR;
}

void Solver::attachClause(ClauseRef CR) {
  const ClauseData &C = Clauses[CR];
  assert(C.Lits.size() >= 2 && "cannot watch unit clause");
  Watches[(~C.Lits[0]).code()].push_back({CR, C.Lits[1]});
  Watches[(~C.Lits[1]).code()].push_back({CR, C.Lits[0]});
}

void Solver::detachClause(ClauseRef CR) {
  const ClauseData &C = Clauses[CR];
  for (int I = 0; I < 2; ++I) {
    auto &WL = Watches[(~C.Lits[I]).code()];
    for (size_t J = 0; J < WL.size(); ++J) {
      if (WL[J].CRef == CR) {
        WL[J] = WL.back();
        WL.pop_back();
        break;
      }
    }
  }
}

bool Solver::isLocked(ClauseRef CR) const {
  const ClauseData &C = Clauses[CR];
  Var V = C.Lits[0].var();
  return value(C.Lits[0]) == LBool::True && Reason[V] == CR;
}

void Solver::removeClause(ClauseRef CR) {
  detachClause(CR);
  Clauses[CR].Deleted = true;
  Clauses[CR].Lits.clear();
  Clauses[CR].Lits.shrink_to_fit();
  ++Stats.DeletedClauses;
}

void Solver::uncheckedEnqueue(Lit L, ClauseRef From) {
  assert(value(L) == LBool::Undef && "enqueueing assigned literal");
  Assigns[L.var()] = L.negated() ? LBool::False : LBool::True;
  VarLevel[L.var()] = decisionLevel();
  Reason[L.var()] = From;
  SavedPhase[L.var()] = !L.negated();
  Trail.push_back(L);
}

Solver::ClauseRef Solver::propagate() {
  ClauseRef Confl = InvalidClause;
  while (PropagationHead < static_cast<int>(Trail.size())) {
    Lit P = Trail[PropagationHead++];
    ++Stats.Propagations;
    auto &WL = Watches[P.code()];
    size_t I = 0, J = 0;
    while (I < WL.size()) {
      Watcher W = WL[I];
      // Blocker literal already true: clause satisfied, keep the watch.
      if (value(W.Blocker) == LBool::True) {
        WL[J++] = WL[I++];
        continue;
      }
      ClauseData &C = Clauses[W.CRef];
      // Normalize so the false literal (~P) sits at index 1.
      Lit NotP = ~P;
      if (C.Lits[0] == NotP)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == NotP && "watch invariant broken");
      ++I;

      Lit First = C.Lits[0];
      if (First != W.Blocker && value(First) == LBool::True) {
        WL[J++] = {W.CRef, First};
        continue;
      }

      // Look for a replacement watch.
      bool FoundWatch = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (value(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[(~C.Lits[1]).code()].push_back({W.CRef, First});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;

      // Clause is unit or conflicting.
      WL[J++] = {W.CRef, First};
      if (value(First) == LBool::False) {
        Confl = W.CRef;
        PropagationHead = static_cast<int>(Trail.size());
        while (I < WL.size())
          WL[J++] = WL[I++];
        break;
      }
      uncheckedEnqueue(First, W.CRef);
    }
    WL.resize(J);
    if (Confl != InvalidClause)
      break;
  }
  return Confl;
}

void Solver::analyze(ClauseRef Confl, std::vector<Lit> &OutLearnt,
                     int &OutBtLevel) {
  OutLearnt.clear();
  OutLearnt.push_back(NullLit); // slot for the asserting literal
  int PathCount = 0;
  Lit P = NullLit;
  int Index = static_cast<int>(Trail.size()) - 1;

  do {
    assert(Confl != InvalidClause && "no reason for implied literal");
    ClauseData &C = Clauses[Confl];
    if (C.Learnt)
      claBumpActivity(C);
    for (size_t J = (P == NullLit ? 0 : 1); J < C.Lits.size(); ++J) {
      Lit Q = C.Lits[J];
      if (Seen[Q.var()] || level(Q.var()) == 0)
        continue;
      Seen[Q.var()] = 1;
      varBumpActivity(Q.var());
      if (level(Q.var()) >= decisionLevel())
        ++PathCount;
      else
        OutLearnt.push_back(Q);
    }
    // Find the next literal on the trail to expand.
    while (!Seen[Trail[Index].var()])
      --Index;
    P = Trail[Index];
    --Index;
    Confl = Reason[P.var()];
    Seen[P.var()] = 0;
    --PathCount;
  } while (PathCount > 0);
  OutLearnt[0] = ~P;

  // Local clause minimization: a literal is redundant if the other literals
  // of its reason clause are all already in the learnt clause (marked seen).
  std::vector<Lit> Cleanup(OutLearnt.begin(), OutLearnt.end());
  for (Lit L : OutLearnt)
    Seen[L.var()] = 1;
  size_t Keep = 1;
  for (size_t I = 1; I < OutLearnt.size(); ++I) {
    Lit L = OutLearnt[I];
    ClauseRef R = Reason[L.var()];
    bool Redundant = false;
    if (R != InvalidClause) {
      Redundant = true;
      const ClauseData &RC = Clauses[R];
      for (size_t J = 1; J < RC.Lits.size(); ++J) {
        Lit Q = RC.Lits[J];
        if (!Seen[Q.var()] && level(Q.var()) > 0) {
          Redundant = false;
          break;
        }
      }
    }
    if (!Redundant)
      OutLearnt[Keep++] = L;
  }
  OutLearnt.resize(Keep);
  for (Lit L : Cleanup)
    Seen[L.var()] = 0;

  // Compute the backtrack level: second-highest decision level in clause.
  if (OutLearnt.size() == 1) {
    OutBtLevel = 0;
  } else {
    size_t MaxIdx = 1;
    for (size_t I = 2; I < OutLearnt.size(); ++I)
      if (level(OutLearnt[I].var()) > level(OutLearnt[MaxIdx].var()))
        MaxIdx = I;
    std::swap(OutLearnt[1], OutLearnt[MaxIdx]);
    OutBtLevel = level(OutLearnt[1].var());
  }
}

void Solver::analyzeFinal(Lit P) {
  // Called when assumption P is found forced false: collect the subset of
  // assumptions that (with the clauses) imply ~P. The resulting core holds
  // the assumption literals themselves (including P), so re-solving with
  // exactly the core as assumptions is again UNSAT.
  ConflictCore.clear();
  ConflictCore.push_back(P);
  if (decisionLevel() == 0)
    return;

  Seen[P.var()] = 1;
  for (int I = static_cast<int>(Trail.size()) - 1; I >= TrailLim[0]; --I) {
    Var V = Trail[I].var();
    if (!Seen[V])
      continue;
    if (Reason[V] == InvalidClause) {
      // Decision variable at this point == an assumption, decided true.
      assert(level(V) > 0 && "level-0 decision in final analysis");
      ConflictCore.push_back(Trail[I]);
    } else {
      const ClauseData &C = Clauses[Reason[V]];
      for (size_t J = 1; J < C.Lits.size(); ++J)
        if (level(C.Lits[J].var()) > 0)
          Seen[C.Lits[J].var()] = 1;
    }
    Seen[V] = 0;
  }
  Seen[P.var()] = 0;
}

void Solver::cancelUntil(int Level) {
  if (decisionLevel() <= Level)
    return;
  for (int I = static_cast<int>(Trail.size()) - 1; I >= TrailLim[Level]; --I) {
    Var V = Trail[I].var();
    Assigns[V] = LBool::Undef;
    Reason[V] = InvalidClause;
    if (HeapIndex[V] == -1)
      heapInsert(V);
  }
  PropagationHead = TrailLim[Level];
  Trail.resize(TrailLim[Level]);
  TrailLim.resize(Level);
}

Lit Solver::pickBranchLit() {
  Var Next = NullVar;
  // Occasional random decisions diversify restarts.
  if ((nextRand() & 1023) < 20 && !heapEmpty()) {
    Var Cand = Heap[nextRand() % Heap.size()];
    if (value(Cand) == LBool::Undef)
      Next = Cand;
  }
  while (Next == NullVar || value(Next) != LBool::Undef) {
    if (heapEmpty())
      return NullLit;
    Next = heapPop();
    if (value(Next) != LBool::Undef)
      Next = NullVar;
  }
  return mkLit(Next, /*Negated=*/!SavedPhase[Next]);
}

uint64_t Solver::lubyScale(uint64_t I) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  uint64_t K = 1;
  while ((1ull << (K + 1)) <= I + 1)
    ++K;
  while ((1ull << K) - 1 != I + 1) {
    I = I - ((1ull << K) - 1);
    K = 1;
    while ((1ull << (K + 1)) <= I + 1)
      ++K;
  }
  return 1ull << (K - 1);
}

LBool Solver::search(uint64_t ConflictsBeforeRestart) {
  uint64_t ConflictsHere = 0;
  std::vector<Lit> Learnt;
  int BtLevel = 0;

  for (;;) {
    ClauseRef Confl = propagate();
    if (Confl != InvalidClause) {
      // Conflict.
      ++Stats.Conflicts;
      ++ConflictsHere;
      ++ConflictsThisSolve;
      if (decisionLevel() == 0) {
        Ok = false;
        return LBool::False;
      }
      analyze(Confl, Learnt, BtLevel);
      cancelUntil(BtLevel);
      if (Learnt.size() == 1) {
        uncheckedEnqueue(Learnt[0], InvalidClause);
      } else {
        ClauseRef CR = allocClause(Learnt, /*Learnt=*/true);
        LearntClauses.push_back(CR);
        attachClause(CR);
        claBumpActivity(Clauses[CR]);
        uncheckedEnqueue(Learnt[0], CR);
        ++Stats.LearnedClauses;
      }
      varDecayActivity();
      claDecayActivity();
      continue;
    }

    // No conflict.
    if (ConflictsHere >= ConflictsBeforeRestart) {
      cancelUntil(0);
      return LBool::Undef; // restart
    }
    if (ConflictBudget != 0 && ConflictsThisSolve >= ConflictBudget)
      return LBool::Undef;
    if (static_cast<double>(LearntClauses.size()) >= MaxLearnts)
      reduceDB();

    // Assumption decisions come first.
    Lit Next = NullLit;
    while (decisionLevel() < static_cast<int>(CurAssumptions.size())) {
      Lit A = CurAssumptions[decisionLevel()];
      if (value(A) == LBool::True) {
        newDecisionLevel(); // dummy level keeps the indexing aligned
      } else if (value(A) == LBool::False) {
        analyzeFinal(A);
        return LBool::False;
      } else {
        Next = A;
        break;
      }
    }
    if (Next == NullLit) {
      ++Stats.Decisions;
      Next = pickBranchLit();
      if (Next == NullLit)
        return LBool::True; // all variables assigned: model found
    }
    newDecisionLevel();
    uncheckedEnqueue(Next, InvalidClause);
  }
}

LBool Solver::solve(const std::vector<Lit> &Assumptions) {
  ConflictCore.clear();
  if (!Ok) {
    return LBool::False;
  }
  for (Lit L : Assumptions)
    ensureVars(L.var() + 1);
  CurAssumptions = Assumptions;
  ConflictsThisSolve = 0;
  MaxLearnts =
      std::max<double>(1000.0, static_cast<double>(ProblemClauses.size()) / 3.0);

  simplifyLevel0();
  if (!Ok) {
    CurAssumptions.clear();
    return LBool::False;
  }

  LBool Result = LBool::Undef;
  for (uint64_t RestartIdx = 0; Result == LBool::Undef; ++RestartIdx) {
    uint64_t Budget = 100 * lubyScale(RestartIdx);
    Result = search(Budget);
    if (Result == LBool::Undef) {
      ++Stats.Restarts;
      if (ConflictBudget != 0 && ConflictsThisSolve >= ConflictBudget)
        break;
    }
  }

  if (Result == LBool::True) {
    Model.assign(Assigns.begin(), Assigns.end());
    // Unassigned variables (possible when every clause was satisfied before
    // full assignment never happens in this implementation, but be safe).
    for (LBool &B : Model)
      if (B == LBool::Undef)
        B = LBool::False;
  }
  cancelUntil(0);
  CurAssumptions.clear();
  return Result;
}

void Solver::simplifyLevel0() {
  assert(decisionLevel() == 0 && "simplify only at root");
  if (propagate() != InvalidClause) {
    Ok = false;
    return;
  }
  auto SimplifySet = [&](std::vector<ClauseRef> &Set) {
    size_t J = 0;
    for (ClauseRef CR : Set) {
      ClauseData &C = Clauses[CR];
      if (C.Deleted)
        continue;
      bool Satisfied = false;
      for (Lit L : C.Lits) {
        if (value(L) == LBool::True && level(L.var()) == 0) {
          Satisfied = true;
          break;
        }
      }
      if (Satisfied && !isLocked(CR)) {
        removeClause(CR);
        continue;
      }
      Set[J++] = CR;
    }
    Set.resize(J);
  };
  SimplifySet(ProblemClauses);
  SimplifySet(LearntClauses);
}

void Solver::reduceDB() {
  // Remove the lowest-activity half of learnt clauses, keeping binary and
  // locked (reason) clauses.
  std::sort(LearntClauses.begin(), LearntClauses.end(),
            [&](ClauseRef A, ClauseRef B) {
              return Clauses[A].Activity < Clauses[B].Activity;
            });
  size_t J = 0;
  for (size_t I = 0; I < LearntClauses.size(); ++I) {
    ClauseRef CR = LearntClauses[I];
    ClauseData &C = Clauses[CR];
    if (C.Deleted)
      continue;
    bool Removable =
        C.Lits.size() > 2 && !isLocked(CR) && I < LearntClauses.size() / 2;
    if (Removable)
      removeClause(CR);
    else
      LearntClauses[J++] = CR;
  }
  LearntClauses.resize(J);
  MaxLearnts = MaxLearnts * 1.1 + 100;
}

// --- VSIDS activity heap ----------------------------------------------------

void Solver::boostActivity(Var V, double Amount) {
  Activity[V] += Amount * VarInc;
  if (HeapIndex[V] != -1)
    heapDecrease(V);
}

void Solver::varBumpActivity(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (HeapIndex[V] != -1)
    heapDecrease(V);
}

void Solver::claBumpActivity(ClauseData &C) {
  C.Activity += ClaInc;
  if (C.Activity > 1e20) {
    for (ClauseRef CR : LearntClauses)
      Clauses[CR].Activity *= 1e-20;
    ClaInc *= 1e-20;
  }
}

void Solver::heapInsert(Var V) {
  assert(HeapIndex[V] == -1 && "var already in heap");
  HeapIndex[V] = static_cast<int>(Heap.size());
  Heap.push_back(V);
  heapPercolateUp(HeapIndex[V]);
}

void Solver::heapDecrease(Var V) { heapPercolateUp(HeapIndex[V]); }

Var Solver::heapPop() {
  Var Top = Heap[0];
  HeapIndex[Top] = -1;
  Heap[0] = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    HeapIndex[Heap[0]] = 0;
    heapPercolateDown(0);
  }
  return Top;
}

void Solver::heapPercolateUp(int I) {
  Var V = Heap[I];
  while (I > 0) {
    int Parent = (I - 1) / 2;
    if (Activity[Heap[Parent]] >= Activity[V])
      break;
    Heap[I] = Heap[Parent];
    HeapIndex[Heap[I]] = I;
    I = Parent;
  }
  Heap[I] = V;
  HeapIndex[V] = I;
}

void Solver::heapPercolateDown(int I) {
  Var V = Heap[I];
  int N = static_cast<int>(Heap.size());
  for (;;) {
    int Child = 2 * I + 1;
    if (Child >= N)
      break;
    if (Child + 1 < N && Activity[Heap[Child + 1]] > Activity[Heap[Child]])
      ++Child;
    if (Activity[Heap[Child]] <= Activity[V])
      break;
    Heap[I] = Heap[Child];
    HeapIndex[Heap[I]] = I;
    I = Child;
  }
  Heap[I] = V;
  HeapIndex[V] = I;
}
