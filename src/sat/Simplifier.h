//===- Simplifier.h - SatELite-style inprocessing ---------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clause-database simplification in the SatELite lineage (Een & Biere,
/// "Effective Preprocessing in SAT through Variable and Clause
/// Elimination", SAT'05), run as *inprocessing*: once when the solver first
/// solves and again at restart boundaries, so clauses learned or imported
/// between passes also feed the next pass's occurrence lists.
///
/// Three transformations, all satisfiability-preserving:
///
///  * **Backward subsumption** -- a clause C subsumes every clause D with
///    C (subseteq) D; D is removed. Candidates come from per-variable
///    occurrence lists over the arena, prefiltered by a 64-bit signature
///    (a Bloom bit per variable: C can only subsume D if
///    `Sig(C) & ~Sig(D) == 0`).
///
///  * **Self-subsuming resolution** -- if C = C' \/ l and D (supseteq)
///    C' \/ ~l, the resolvent on l strengthens D to D \ {~l}. Detected by
///    the same backward check (match all of C's literals in D, allowing
///    exactly one to match negated).
///
///  * **Bounded variable elimination** -- an unassigned, unfrozen variable
///    v is eliminated by replacing the clauses containing v with all
///    non-tautological resolvents on v, when that does not grow the clause
///    count (and no resolvent exceeds a size cap). One occurrence side plus
///    a default unit go to the solver's reconstruction stack so
///    Solver::extendModel can restore v's value in any model of the
///    reduced formula (MiniSAT's elimclauses scheme).
///
/// The frozen-variable contract (Solver::setFrozen) is what makes this
/// sound *incrementally*: elimination is equisatisfiable, not equivalent,
/// so variables the outside world will still talk about -- assumptions,
/// soft-clause guards and relaxation selectors, PB-counter outputs, the
/// clause-exchange original-variable prefix -- must never be eliminated.
/// Violations upstream surface as std::logic_error from the Solver, not as
/// wrong answers. Learnt clauses mentioning an eliminated variable are
/// swept after the pass (they are implied lemmas; dropping them is always
/// sound), so the LBD tiers never hold a clause over a ghost variable and
/// the relocating GC reclaims the eliminated originals like any other
/// freed clause.
///
/// A Simplifier is a transient: constructed on a Solver at decision level
/// 0, run once, discarded. It honours the solver's cooperative interrupt
/// and resource Budget (a pass aborted mid-way leaves the database in a
/// consistent state -- every individual rewrite commits atomically).
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SAT_SIMPLIFIER_H
#define BUGASSIST_SAT_SIMPLIFIER_H

#include "cnf/Lit.h"

#include <cstdint>
#include <vector>

namespace bugassist {

class Solver;

class Simplifier {
public:
  /// Effort caps. The defaults keep a pass linear-ish in formula size;
  /// Solver::eliminateVar lifts them for targeted test eliminations.
  struct Limits {
    uint32_t MaxOccurrences = 400; ///< skip BVE on vars occurring more often
    uint32_t MaxResolventSize = 24; ///< never create longer resolvents
    uint32_t MaxClauseSize = 64; ///< longer clauses neither subsume nor resolve
    int MaxRounds = 3; ///< subsumption+BVE alternations per pass
  };

  explicit Simplifier(Solver &S) : S(S) {}

  /// Runs one full pass (subsumption fixpoint and BVE sweep, alternated
  /// until quiescent or the round cap). \returns Solver::okay().
  bool run(const Limits &L);
  bool run(); // default Limits (separate overload: Limits is incomplete here)

  /// Eliminates exactly \p V. With \p Forced, the growth bounds are
  /// ignored and eliminating a frozen variable throws std::logic_error
  /// (without it, frozen/assigned variables are silently skipped).
  /// \returns true if \p V is eliminated on exit.
  bool eliminateOne(Var V, bool Forced);

private:
  using ClauseRef = int32_t;

  /// One problem clause under consideration. Sig/Size are maintained
  /// eagerly on strengthening; Dead marks clauses removed mid-pass (their
  /// occurrence-list entries go stale and are skipped lazily).
  struct Entry {
    ClauseRef CR;
    uint64_t Sig;
    uint32_t Size;
    bool Dead;
  };

  Solver &S;
  Limits Lim;
  std::vector<Entry> Cs;
  std::vector<std::vector<int>> Occ; // var -> indices into Cs (stale-tolerant)
  std::vector<int> Queue;            // entry indices pending backward checks
  size_t QueueHead = 0;
  std::vector<char> InQueue;
  std::vector<Lit> Scratch; // resolvent / stored-clause assembly buffer
  // Variables assumed by the in-flight solve() are frozen for this pass
  // only (the assumptions of *future* solves must be frozen by the caller).
  std::vector<char> TempFrozen;
  bool AbortLatch = false; // sticky interrupt/budget trip for this pass

  bool prepare();            // root propagate + simplify + collect entries
  void collect();            // build Cs/Occ/Queue from the problem clauses
  uint64_t signatureOf(ClauseRef CR) const;
  bool aborted();            // interrupt / budget poll (amortized)
  bool varTouchable(Var V) const; // unassigned, unfrozen, not eliminated
  bool entrySatisfied(int EI);    // root-satisfied? (marks Dead, removes)
  void enqueue(int EI);

  /// Subsumption fixpoint over Queue. \returns number of database changes.
  uint64_t subsumptionFixpoint();
  /// Backward check of entry \p EI against its occurrence candidates.
  uint64_t backwardCheck(int EI);
  /// Does Cs[CI] subsume Cs[DI] (Flip = NullLit), or strengthen it by
  /// removing ~Flip (exactly one literal matched negated)?
  bool subsumeOrStrengthen(int CI, int DI, Lit &Flip);
  /// Applies self-subsuming resolution: removes \p L from entry \p EI.
  void strengthenEntry(int EI, Lit L);

  /// One left-to-right BVE sweep over all variables. \returns eliminations.
  uint64_t bveSweep();
  bool tryEliminate(Var V, bool Forced);
  /// Builds the resolvent of Cs[PI] and Cs[NI] on \p V into Scratch.
  /// \returns false if tautological or root-satisfied (skip it).
  bool resolve(int PI, int NI, Var V);
  /// Installs a committed resolvent as a new problem clause + entry.
  void addResolvent(const std::vector<Lit> &Lits);
  /// Pushes one side's clauses + the default unit for \p V (see
  /// Solver::ElimStack layout).
  void pushReconstruction(Var V, const std::vector<int> &StoredSide,
                          Lit Default);

  /// Drops learnt clauses that mention an eliminated variable.
  void sweepLearnts();
};

} // namespace bugassist

#endif // BUGASSIST_SAT_SIMPLIFIER_H
