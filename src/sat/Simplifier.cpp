//===- Simplifier.cpp - SatELite-style inprocessing -------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Implements the Simplifier (see Simplifier.h for the algorithm overview)
// and the Solver entry points that belong to it: preprocess(),
// eliminateVar(), strengthenClause(), extendModel().
//
// Invariants relied on throughout, all established by prepare():
//  * decision level 0, propagation saturated, simplifyLevel0 done -- so a
//    non-satisfied problem clause holds only root-unassigned literals when
//    the pass starts. In-pass unit propagation (from strengthening and
//    unit resolvents) can falsify or satisfy literals afterwards; every
//    consumer re-validates against the arena and current assignment.
//  * A clause is locked (serves as a reason) only if it is root-satisfied,
//    so any clause that passes the entrySatisfied filter can be removed or
//    strengthened without corrupting Reason[].
//  * Occurrence lists are stale-tolerant: entries are never unlinked when
//    a clause dies or loses a literal, they are skipped (Dead flag) or
//    fail the literal scan.
//
//===----------------------------------------------------------------------===//

#include "sat/Simplifier.h"

#include "sat/Solver.h"
#include "support/FaultInject.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

using namespace bugassist;

// --- Solver entry points ----------------------------------------------------

bool Solver::preprocess() {
  assert(decisionLevel() == 0 && "preprocess only at the root level");
  if (!Opts.Preprocess || !Ok)
    return Ok;
  // The load-time decision is made exactly once (hence the latch before
  // the size check): a formula too small to amortize the pass skips it
  // for good, rather than paying it mid-session the moment incremental
  // clause additions cross the floor. Formulas that grow large through a
  // long run are inprocessed at restart boundaries anyway.
  PreprocessedOnce = true;
  if (ProblemClauses.size() < Opts.PreprocessMinClauses)
    return Ok;
  LastInprocConflicts = Stats.Conflicts;
  Simplifier Simp(*this);
  return Simp.run();
}

bool Solver::eliminateVar(Var V) {
  assert(decisionLevel() == 0 && "eliminate only at the root level");
  ensureVars(V + 1);
  if (ElimVars[V])
    return true;
  Simplifier Simp(*this);
  return Simp.eliminateOne(V, /*Forced=*/true);
}

bool Solver::strengthenClause(ClauseRef CR, Lit L) {
  assert(decisionLevel() == 0 && "strengthen only at the root level");
  assert(!clauseFreed(CR) && "strengthening a freed clause");
  assert(!isLocked(CR) && "strengthening a reason clause");
  detachClause(CR);
  uint32_t Size = clauseSize(CR);
  Lit *CL = clauseLits(CR);
  uint32_t K = 0;
  while (K < Size && CL[K] != L)
    ++K;
  assert(K < Size && "literal not in clause");
  CL[K] = CL[Size - 1];
  --Size;
  ++ArenaWasted;

  // Re-normalize against the root assignment: in-pass propagation may have
  // satisfied the clause or falsified literals, and watches must be
  // non-false at the root. Partition the unassigned literals to the front.
  bool Satisfied = false;
  uint32_t NonFalse = 0;
  for (uint32_t I = 0; I < Size; ++I) {
    if (value(CL[I]) == LBool::True) {
      Satisfied = true;
      break;
    }
    if (value(CL[I]) == LBool::Undef)
      std::swap(CL[NonFalse++], CL[I]);
  }
  if (Satisfied) {
    Arena[CR] = Lit::fromCode((static_cast<int32_t>(Size) << 3) |
                              (header(CR) & 7) | FreedBit);
    ArenaWasted += HeaderWords + Size;
    ++Stats.DeletedClauses;
    return Ok;
  }
  ArenaWasted += Size - NonFalse;
  Size = NonFalse;
  setClauseSize(CR, Size);
  if (Size == 0) {
    Ok = false;
    return false;
  }
  if (Size == 1) {
    Lit U = CL[0];
    Arena[CR] = Lit::fromCode(header(CR) | FreedBit);
    ArenaWasted += HeaderWords + 1;
    ++Stats.DeletedClauses;
    uncheckedEnqueue(U, InvalidClause);
    Ok = (propagate() == InvalidClause);
    return Ok;
  }
  attachClause(CR); // size 2 lands in BinWatches, preserving the invariant
  return true;
}

void Solver::extendModel() {
  // Walk the reconstruction stack backwards (see the ElimStack layout in
  // Solver.h). For each stored clause: if no literal is true under the
  // model, the leading literal (the eliminated variable's) is made true.
  // SatELite's extension argument guarantees at most one side of an
  // eliminated variable can be unsatisfied-by-the-rest, because the model
  // satisfies every resolvent. The default unit additionally never
  // overrides a value the search itself assigned (possible when a learnt
  // clause over the variable propagated at the root between its
  // elimination and the learnt sweep): such assignments are entailed, and
  // entailment makes the stored side satisfied without the flip.
  for (size_t I = ElimStack.size(); I > 0;) {
    int32_t N = ElimStack[--I].code();
    assert(N >= 1 && static_cast<size_t>(N) <= I && "corrupt elim stack");
    size_t Begin = I - static_cast<size_t>(N);
    bool Satisfied = false;
    for (size_t K = Begin; K < I; ++K) {
      Lit L = ElimStack[K];
      LBool B = Model[L.var()];
      if ((L.negated() ? lboolNeg(B) : B) == LBool::True) {
        Satisfied = true;
        break;
      }
    }
    if (!Satisfied) {
      Lit L0 = ElimStack[Begin];
      if (N > 1 || Model[L0.var()] == LBool::Undef)
        Model[L0.var()] = L0.negated() ? LBool::False : LBool::True;
    }
    I = Begin;
  }
}

// --- pass setup -------------------------------------------------------------

bool Simplifier::aborted() {
  if (AbortLatch)
    return true;
  if (S.InterruptRequested.load(std::memory_order_relaxed) || S.pollBudget())
    AbortLatch = true;
  return AbortLatch;
}

bool Simplifier::varTouchable(Var V) const {
  return S.value(V) == LBool::Undef && !S.ElimVars[V] && !S.isFrozen(V) &&
         !(V < static_cast<Var>(TempFrozen.size()) && TempFrozen[V]);
}

uint64_t Simplifier::signatureOf(ClauseRef CR) const {
  const Lit *CL = S.clauseLits(CR);
  uint32_t Size = S.clauseSize(CR);
  uint64_t Sig = 0;
  for (uint32_t I = 0; I < Size; ++I)
    Sig |= 1ull << (CL[I].var() & 63);
  return Sig;
}

bool Simplifier::prepare() {
  assert(S.decisionLevel() == 0 && "simplify only at the root level");
  if (!S.Ok)
    return false;
  if (S.propagate() != Solver::InvalidClause) {
    S.Ok = false;
    return false;
  }
  S.simplifyLevel0();
  if (!S.Ok)
    return false;
  TempFrozen.assign(S.numVars(), 0);
  for (Lit L : S.CurAssumptions)
    TempFrozen[L.var()] = 1;
  collect();
  return true;
}

void Simplifier::collect() {
  Cs.clear();
  Occ.assign(S.numVars(), {});
  Queue.clear();
  QueueHead = 0;
  InQueue.clear();
  for (ClauseRef CR : S.ProblemClauses) {
    if (S.clauseFreed(CR))
      continue;
    const Lit *CL = S.clauseLits(CR);
    uint32_t Size = S.clauseSize(CR);
    // simplifyLevel0 keeps root-satisfied clauses only while locked; those
    // stay out of the pass entirely.
    bool Satisfied = false;
    for (uint32_t I = 0; I < Size; ++I)
      if (S.value(CL[I]) == LBool::True) {
        Satisfied = true;
        break;
      }
    if (Satisfied)
      continue;
    int Idx = static_cast<int>(Cs.size());
    Cs.push_back({CR, signatureOf(CR), Size, false});
    InQueue.push_back(0);
    for (uint32_t I = 0; I < Size; ++I)
      Occ[CL[I].var()].push_back(Idx);
    enqueue(Idx);
  }
}

void Simplifier::enqueue(int EI) {
  if (InQueue[EI])
    return;
  InQueue[EI] = 1;
  Queue.push_back(EI);
}

bool Simplifier::entrySatisfied(int EI) {
  Entry &E = Cs[EI];
  if (E.Dead)
    return true;
  if (S.clauseFreed(E.CR)) {
    E.Dead = true;
    return true;
  }
  const Lit *CL = S.clauseLits(E.CR);
  for (uint32_t I = 0; I < E.Size; ++I) {
    if (S.value(CL[I]) == LBool::True) {
      E.Dead = true;
      if (!S.isLocked(E.CR))
        S.removeClause(E.CR);
      return true;
    }
  }
  return false;
}

// --- subsumption + self-subsuming resolution --------------------------------

uint64_t Simplifier::subsumptionFixpoint() {
  uint64_t Changes = 0;
  while (QueueHead < Queue.size()) {
    if (aborted() || !S.Ok)
      break;
    int EI = Queue[QueueHead++];
    InQueue[EI] = 0;
    Changes += backwardCheck(EI);
  }
  if (QueueHead >= Queue.size()) {
    Queue.clear();
    QueueHead = 0;
  }
  return Changes;
}

uint64_t Simplifier::backwardCheck(int EI) {
  Entry &E = Cs[EI];
  if (E.Dead || S.clauseFreed(E.CR) || entrySatisfied(EI))
    return 0;
  if (E.Size > Lim.MaxClauseSize)
    return 0; // too long to be an interesting subsumer

  // Candidates must contain every variable of E; the shortest occurrence
  // list among E's variables covers them all.
  const Lit *CL = S.clauseLits(E.CR);
  Var Best = CL[0].var();
  for (uint32_t I = 1; I < E.Size; ++I)
    if (Occ[CL[I].var()].size() < Occ[Best].size())
      Best = CL[I].var();

  uint64_t Changes = 0;
  auto &List = Occ[Best];
  for (size_t OI = 0; OI < List.size(); ++OI) {
    int DI = List[OI];
    if (DI == EI)
      continue;
    Entry &D = Cs[DI];
    if (D.Dead || S.clauseFreed(D.CR))
      continue;
    if (D.Size < E.Size)
      continue; // cannot contain E
    if (E.Sig & ~D.Sig)
      continue; // some variable of E is certainly missing from D
    if (entrySatisfied(DI))
      continue;
    Lit Flip = NullLit;
    if (!subsumeOrStrengthen(EI, DI, Flip))
      continue;
    if (Flip == NullLit) {
      // E (subseteq) D: D is redundant. D is unsatisfied, hence unlocked.
      S.removeClause(D.CR);
      D.Dead = true;
      ++S.Stats.ClausesSubsumed;
      ++Changes;
    } else {
      // E = E' \/ Flip, D (supseteq) E' \/ ~Flip: resolving on Flip
      // strengthens D in place by dropping ~Flip.
      strengthenEntry(DI, ~Flip);
      ++Changes;
      if (!S.Ok)
        break;
    }
  }
  return Changes;
}

bool Simplifier::subsumeOrStrengthen(int CI, int DI, Lit &Flip) {
  const Entry &C = Cs[CI];
  const Entry &D = Cs[DI];
  const Lit *CL = S.clauseLits(C.CR);
  const Lit *DL = S.clauseLits(D.CR);
  Flip = NullLit;
  for (uint32_t I = 0; I < C.Size; ++I) {
    Lit LC = CL[I];
    bool Found = false;
    for (uint32_t J = 0; J < D.Size; ++J) {
      if (DL[J] == LC) {
        Found = true;
        break;
      }
      if (DL[J] == ~LC) {
        if (Flip != NullLit)
          return false; // two flipped matches: plain resolution, not useful
        Flip = LC;
        Found = true;
        break;
      }
    }
    if (!Found)
      return false;
  }
  return true;
}

void Simplifier::strengthenEntry(int EI, Lit L) {
  Entry &E = Cs[EI];
  ++S.Stats.LitsSelfSubsumed;
  S.strengthenClause(E.CR, L);
  if (!S.Ok)
    return;
  if (S.clauseFreed(E.CR)) {
    E.Dead = true; // collapsed to a unit (enqueued) or became satisfied
    return;
  }
  E.Size = S.clauseSize(E.CR);
  E.Sig = signatureOf(E.CR);
  enqueue(EI); // a shorter clause is a stronger subsumer: recheck it
}

// --- bounded variable elimination -------------------------------------------

uint64_t Simplifier::bveSweep() {
  // Snapshot the variable order by occurrence count (cheapest first --
  // low-occurrence variables are both the most likely to eliminate and the
  // cheapest to try). Stale occurrence entries only overestimate.
  std::vector<std::pair<uint32_t, Var>> Order;
  for (Var V = 0; V < S.numVars(); ++V) {
    if (!varTouchable(V))
      continue;
    size_t N = Occ[V].size();
    if (N == 0 || N > Lim.MaxOccurrences)
      continue;
    Order.push_back({static_cast<uint32_t>(N), V});
  }
  std::sort(Order.begin(), Order.end());
  uint64_t Elims = 0;
  for (const auto &P : Order) {
    if (aborted() || !S.Ok)
      break;
    if (tryEliminate(P.second, /*Forced=*/false))
      ++Elims;
  }
  return Elims;
}

bool Simplifier::tryEliminate(Var V, bool Forced) {
  if (S.ElimVars[V])
    return false;
  if (S.isFrozen(V) ||
      (V < static_cast<Var>(TempFrozen.size()) && TempFrozen[V])) {
    if (Forced)
      throw std::logic_error(
          "Simplifier: attempt to eliminate a frozen variable");
    return false;
  }
  if (S.value(V) != LBool::Undef)
    return false; // root-fixed: its clauses simplify away instead

  // Gather the live occurrences, validated against the arena.
  std::vector<int> Pos, Neg;
  for (int EI : Occ[V]) {
    if (Cs[EI].Dead || S.clauseFreed(Cs[EI].CR) || entrySatisfied(EI))
      continue;
    const Entry &E = Cs[EI];
    const Lit *CL = S.clauseLits(E.CR);
    for (uint32_t I = 0; I < E.Size; ++I) {
      if (CL[I] == mkLit(V)) {
        Pos.push_back(EI);
        break;
      }
      if (CL[I] == mkLit(V, true)) {
        Neg.push_back(EI);
        break;
      }
    }
  }
  if (!Forced && Pos.size() + Neg.size() > Lim.MaxOccurrences)
    return false;

  // Count (and keep) the surviving resolvents; bail out as soon as the
  // bounded-growth criterion fails. Tautological and root-satisfied
  // resolvents do not count -- that asymmetry is what makes elimination
  // fire on real encodings (Tseitin definitions resolve mostly to
  // tautologies).
  std::vector<std::vector<Lit>> Resolvents;
  for (int PI : Pos) {
    for (int NI : Neg) {
      if (!resolve(PI, NI, V))
        continue;
      if (!Forced && Scratch.size() > Lim.MaxResolventSize)
        return false;
      Resolvents.push_back(Scratch);
      if (!Forced && Resolvents.size() > Pos.size() + Neg.size())
        return false;
    }
  }

  // Commit. Order matters: capture the reconstruction clauses before the
  // originals are freed, free the originals before resolvents allocate
  // (allocClause may grow the arena and invalidate literal pointers).
  bool StoreNeg = Pos.size() > Neg.size();
  pushReconstruction(V, StoreNeg ? Neg : Pos,
                     StoreNeg ? mkLit(V) : mkLit(V, true));
  for (int EI : Pos) {
    S.removeClause(Cs[EI].CR);
    Cs[EI].Dead = true;
  }
  for (int EI : Neg) {
    S.removeClause(Cs[EI].CR);
    Cs[EI].Dead = true;
  }
  S.ElimVars[V] = 1;
  ++S.Stats.VarsEliminated;
  S.Stats.ReconstructBytes = S.ElimStack.size() * sizeof(Lit);
  if (S.HeapIndex[V] != -1) {
    // Evict from the decision heap: raise to the top and pop (the same
    // trick releaseVar uses); insertVarOrder refuses eliminated vars.
    S.Activity[V] = 1e300;
    S.heapDecrease(V);
    Var Top = S.heapPop();
    assert(Top == V && "heap eviction failed");
    (void)Top;
    S.Activity[V] = 0.0;
  }
  for (const auto &R : Resolvents) {
    addResolvent(R);
    if (!S.Ok)
      break;
  }
  return true;
}

bool Simplifier::resolve(int PI, int NI, Var V) {
  Scratch.clear();
  auto Side = [&](int EI, Lit Pivot) -> bool {
    const Entry &E = Cs[EI];
    const Lit *CL = S.clauseLits(E.CR);
    for (uint32_t I = 0; I < E.Size; ++I) {
      Lit L = CL[I];
      if (L == Pivot)
        continue;
      if (S.value(L) == LBool::True)
        return false; // resolvent already satisfied at the root
      if (S.value(L) == LBool::False)
        continue; // root-false literals can never help
      Scratch.push_back(L);
    }
    return true;
  };
  if (!Side(PI, mkLit(V)) || !Side(NI, mkLit(V, true)))
    return false;
  std::sort(Scratch.begin(), Scratch.end());
  size_t J = 0;
  for (size_t I = 0; I < Scratch.size(); ++I) {
    if (J > 0 && Scratch[I] == Scratch[J - 1])
      continue; // duplicate
    if (J > 0 && Scratch[I] == ~Scratch[J - 1])
      return false; // tautology
    Scratch[J++] = Scratch[I];
  }
  Scratch.resize(J);
  return true;
}

void Simplifier::addResolvent(const std::vector<Lit> &Lits) {
  // Units enqueued by an earlier resolvent may have touched this one:
  // re-simplify against the current root assignment (mirrors addClause;
  // the literals are already sorted, deduplicated, and non-tautological).
  Scratch.clear();
  for (Lit L : Lits) {
    if (S.value(L) == LBool::True)
      return; // satisfied meanwhile
    if (S.value(L) == LBool::False)
      continue;
    Scratch.push_back(L);
  }
  if (Scratch.empty()) {
    S.Ok = false; // the empty resolvent: root-level UNSAT
    return;
  }
  if (Scratch.size() == 1) {
    S.uncheckedEnqueue(Scratch[0], Solver::InvalidClause);
    if (S.propagate() != Solver::InvalidClause)
      S.Ok = false;
    return;
  }
  ClauseRef CR = S.allocClause(Scratch, /*Learnt=*/false);
  S.ProblemClauses.push_back(CR);
  S.attachClause(CR);
  int Idx = static_cast<int>(Cs.size());
  Cs.push_back({CR, signatureOf(CR), static_cast<uint32_t>(Scratch.size()),
                false});
  InQueue.push_back(0);
  const Lit *CL = S.clauseLits(CR);
  for (uint32_t I = 0; I < Cs[Idx].Size; ++I)
    Occ[CL[I].var()].push_back(Idx);
  enqueue(Idx); // resolvents feed the next subsumption round
}

void Simplifier::pushReconstruction(Var V, const std::vector<int> &StoredSide,
                                    Lit Default) {
  // Layout per clause: [pivot literal][other live literals][size word];
  // then one [default literal][size word 1]. Root-false literals are
  // dropped (root assignments are permanent, so they can never satisfy the
  // clause in any later model).
  for (int EI : StoredSide) {
    const Entry &E = Cs[EI];
    const Lit *CL = S.clauseLits(E.CR);
    Scratch.clear();
    Lit Pivot = NullLit;
    for (uint32_t I = 0; I < E.Size; ++I) {
      Lit L = CL[I];
      if (L.var() == V) {
        Pivot = L;
        continue;
      }
      if (S.value(L) == LBool::False)
        continue;
      Scratch.push_back(L);
    }
    assert(Pivot != NullLit && "stored clause lost its pivot");
    S.ElimStack.push_back(Pivot);
    for (Lit L : Scratch)
      S.ElimStack.push_back(L);
    S.ElimStack.push_back(
        Lit::fromCode(static_cast<int32_t>(Scratch.size() + 1)));
  }
  S.ElimStack.push_back(Default);
  S.ElimStack.push_back(Lit::fromCode(1));
}

// --- learnt sweep + drivers -------------------------------------------------

void Simplifier::sweepLearnts() {
  // Learnt clauses are implied lemmas: dropping any of them is sound, and
  // any that mention an eliminated variable MUST go, or search would
  // branch on ghosts. A locked ghost learnt (it propagated at the root
  // between elimination and this sweep) stays -- it is root-satisfied and
  // serves as a Reason; extendModel handles the entailed value.
  auto Sweep = [&](std::vector<ClauseRef> &Set) {
    size_t J = 0;
    for (ClauseRef CR : Set) {
      if (S.clauseFreed(CR))
        continue;
      const Lit *CL = S.clauseLits(CR);
      uint32_t Size = S.clauseSize(CR);
      bool Ghost = false;
      for (uint32_t I = 0; I < Size; ++I)
        if (S.ElimVars[CL[I].var()]) {
          Ghost = true;
          break;
        }
      if (Ghost && !S.isLocked(CR)) {
        S.removeClause(CR);
        continue;
      }
      Set[J++] = CR;
    }
    Set.resize(J);
  };
  Sweep(S.CoreLearnts);
  Sweep(S.MidLearnts);
  Sweep(S.LocalLearnts);
}

bool Simplifier::run() { return run(Limits()); }

bool Simplifier::run(const Limits &L) {
  Lim = L;
  if (!prepare())
    return S.Ok;
  uint64_t TotalElims = 0;
  for (int Round = 0; Round < Lim.MaxRounds; ++Round) {
    // Test-only fault hook (one relaxed load when disarmed): BadAlloc
    // escapes to the caller -- the serve cache-poison tests crash a base
    // session build mid-preprocess here -- Interrupt abandons the pass
    // (always safe: the clause database is consistent between rounds).
    if (faultinject::active() &&
        faultinject::onEvent(faultinject::Event::SimplifyStep))
      break;
    uint64_t Subs = subsumptionFixpoint();
    if (!S.Ok || aborted())
      break;
    uint64_t Elims = bveSweep();
    TotalElims += Elims;
    if (!S.Ok || aborted())
      break;
    if (Subs == 0 && Elims == 0)
      break; // quiescent
  }
  if (S.Ok) {
    if (TotalElims)
      sweepLearnts();
    S.refreshTierGauges();
    S.checkGarbage();
  }
  return S.Ok;
}

bool Simplifier::eliminateOne(Var V, bool Forced) {
  Lim = Limits();
  if (!prepare())
    return false;
  if (!tryEliminate(V, Forced))
    return false;
  if (S.Ok) {
    sweepLearnts();
    S.refreshTierGauges();
    S.checkGarbage();
  }
  return S.ElimVars[V] != 0;
}
