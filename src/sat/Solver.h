//===- Solver.h - CDCL SAT solver -------------------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver in the MiniSAT lineage
/// (Een & Sorensson), built from scratch as the substrate the paper's
/// pipeline rests on: CBMC-style trace formulas are decided here, and the
/// MaxSAT layer drives it through the *assumptions* interface, harvesting
/// unsatisfiable cores over assumption literals (analyzeFinal) exactly the
/// way MSUnCORE does.
///
/// Features: two-watched-literal propagation, first-UIP learning with local
/// clause minimization, VSIDS variable activities with a binary heap, phase
/// saving, and incremental solving under assumptions with core extraction.
///
/// Learned-clause management is Glucose-style (Audemard & Simon, IJCAI'09):
/// every learnt clause carries its Literal Block Distance -- the number of
/// distinct decision levels among its literals -- computed at learn time and
/// tightened whenever the clause serves as a reason in conflict analysis.
/// Retention is three-tiered: *core* clauses (LBD <= CoreLbdCut, and all
/// binaries) are kept forever, *mid* clauses age out when they stop
/// participating in conflicts, and the *local* tier is rotated aggressively
/// by LBD-then-activity. Restarts follow glucose's dual-EMA scheme: a fast
/// EMA of recent learnt LBDs against the lifetime average triggers a
/// restart when the search degrades, and a trail-size EMA *blocks* pending
/// restarts when the assignment is unusually deep (the solver is probably
/// closing in on a model -- crucial for the SAT-heavy linear-search phase of
/// MaxSAT). Both policies are selectable through Solver::Options; the
/// seed's Luby restarts + activity-halving deletion remain available so the
/// rebuild-per-round reference engines and differential tests can pin the
/// original behavior.
///
/// The solver is designed to stay alive across many solve() calls: clauses
/// can be added between calls, learned clauses / VSIDS activity / saved
/// phases persist, and retired selector variables can be released
/// (releaseVar) so long-running incremental MaxSAT sessions do not bloat
/// the decision heap. Clause literals live in a flat arena (MiniSAT-style
/// ClauseAllocator: header + activity + LBD words with inline literals,
/// addressed by a 32-bit ClauseRef), so propagation walks contiguous memory
/// and deleted clauses are reclaimed by relocating garbage collection.
/// Binary clauses are watched in dedicated lists whose Watcher carries the
/// whole clause (the Blocker is the other literal), so the propagation fast
/// path over them never touches the arena.
///
/// For portfolio solving (maxsat/Portfolio.h) the solver additionally
/// supports cooperative cancellation -- interrupt() raises an atomic flag
/// polled once per search-loop iteration -- and glucose-syrup-style learnt
/// sharing: export/import hooks push low-LBD learnts over a shared variable
/// prefix into an exchange buffer and inject foreign clauses at restart
/// boundaries. Diversification knobs (RNG seed, random-branch frequency,
/// initial phase, plus the restart/retention policy mix) live in Options.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SAT_SOLVER_H
#define BUGASSIST_SAT_SOLVER_H

#include "cnf/Lit.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace bugassist {

class CnfFormula;

/// Aggregate statistics for solver-behaviour benches and tests.
struct SolverStats {
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t RestartsBlocked = 0; ///< restarts suppressed by the trail EMA
  uint64_t LearnedClauses = 0;
  uint64_t DeletedClauses = 0;
  uint64_t GcRuns = 0;
  uint64_t LbdSum = 0;   ///< sum of learn-time LBDs over all conflicts
  uint64_t LbdCount = 0; ///< conflicts that recorded an LBD (incl. units)
  uint64_t LbdTightened = 0; ///< reason-clause LBDs improved during analysis
  // Portfolio clause exchange (0 unless share hooks are installed).
  uint64_t ClausesExported = 0; ///< learnts pushed through the export hook
  uint64_t ClausesImported = 0; ///< foreign clauses injected at restarts
  // Live tier gauges (LbdTiers retention; seed policy reports all as Local).
  uint64_t CoreLearnts = 0;
  uint64_t MidLearnts = 0;
  uint64_t LocalLearnts = 0;
  // Inprocessing (sat/Simplifier.h; all 0 when preprocessing is off).
  uint64_t VarsEliminated = 0;   ///< variables removed by bounded elimination
  uint64_t ClausesSubsumed = 0;  ///< clauses removed by backward subsumption
  uint64_t LitsSelfSubsumed = 0; ///< literals removed by self-subsumption
  /// Size of the model-reconstruction stack in bytes (a gauge, like the
  /// tier counts: it only grows while variables stay eliminated).
  uint64_t ReconstructBytes = 0;

  /// Average learn-time LBD per conflict (unit learnts count with LBD 1),
  /// glucose's "average LBD" signal.
  double avgLearntLbd() const {
    return LbdCount
               ? static_cast<double>(LbdSum) / static_cast<double>(LbdCount)
               : 0.0;
  }

  /// Field-complete summation, kept next to the field list so a new
  /// counter cannot silently go missing from portfolio aggregates. (The
  /// tier gauges are instantaneous counts; summing them reads as the
  /// fleet-wide live-clause population.)
  SolverStats &operator+=(const SolverStats &O) {
    Conflicts += O.Conflicts;
    Decisions += O.Decisions;
    Propagations += O.Propagations;
    Restarts += O.Restarts;
    RestartsBlocked += O.RestartsBlocked;
    LearnedClauses += O.LearnedClauses;
    DeletedClauses += O.DeletedClauses;
    GcRuns += O.GcRuns;
    LbdSum += O.LbdSum;
    LbdCount += O.LbdCount;
    LbdTightened += O.LbdTightened;
    ClausesExported += O.ClausesExported;
    ClausesImported += O.ClausesImported;
    CoreLearnts += O.CoreLearnts;
    MidLearnts += O.MidLearnts;
    LocalLearnts += O.LocalLearnts;
    VarsEliminated += O.VarsEliminated;
    ClausesSubsumed += O.ClausesSubsumed;
    LitsSelfSubsumed += O.LitsSelfSubsumed;
    ReconstructBytes += O.ReconstructBytes;
    return *this;
  }
};

/// CDCL solver. Typical interactive use:
/// \code
///   Solver S;
///   S.ensureVars(F.numVars());
///   for (const Clause &C : F.hardClauses()) S.addClause(C);
///   LBool R = S.solve({assumption1, ~assumption2});
///   if (R == LBool::False) auto &Core = S.conflictCore();
/// \endcode
class Solver {
public:
  /// Search-policy knobs. Defaults are the Glucose-style policies; seed()
  /// pins the original Luby + activity-halving behavior for the reference
  /// engines and differential tests.
  ///
  /// Orientation for tuners:
  ///  * Restart/Retention select the *policies*; the grouped scalars below
  ///    them only apply to the selected policy.
  ///  * The EMA restart scalars trade restart frequency against model
  ///    finding: a lower RestartMargin restarts more eagerly (good on
  ///    UNSAT-heavy refutations), a lower BlockMargin blocks restarts
  ///    sooner when the trail grows (good for the SAT-heavy linear-search
  ///    phase of MaxSAT).
  ///  * The LBD tier cuts trade memory against re-learning: raising
  ///    CoreLbdCut keeps more clauses forever; raising MidMaxAge gives
  ///    mid-tier clauses more reductions to prove themselves.
  ///  * The diversification knobs (RandSeed / RandomBranchFreq /
  ///    InitPhase) exist so portfolio workers explore different parts of
  ///    the search space; diversifiedOptions (maxsat/Portfolio.h) is the
  ///    fixed 8-way recipe over them and is the intended way to set them.
  ///  * The share knobs only matter once setShareHooks installed an
  ///    exchange; ShareLbdMax = 2 exports "glue" clauses only, which is
  ///    the Glucose-syrup sweet spot between traffic and usefulness.
  struct Options {
    enum class RestartPolicy : uint8_t {
      Luby,      ///< fixed Luby sequence scaled by LubyUnit (seed behavior)
      GlucoseEma ///< dual-EMA LBD trigger with trail-size blocking
    };
    enum class RetentionPolicy : uint8_t {
      ActivityHalving, ///< drop the lowest-activity half (seed behavior)
      LbdTiers         ///< core/mid/local tiers keyed by LBD
    };
    enum class PhaseInit : uint8_t {
      False, ///< MiniSAT default: fresh variables start negative
      True,  ///< fresh variables start positive
      Random ///< fresh variables draw their phase from the solver RNG
    };

    RestartPolicy Restart = RestartPolicy::GlucoseEma;
    RetentionPolicy Retention = RetentionPolicy::LbdTiers;

    // -- portfolio diversification ----
    uint64_t RandSeed = 0x1234567890abcdefull; ///< decision/phase RNG seed
    double RandomBranchFreq = 0.02; ///< fraction of random decisions [0, 1]
    PhaseInit InitPhase = PhaseInit::False; ///< saved phase of fresh vars

    // -- learnt-clause sharing (only consulted once hooks are set) ----
    uint32_t ShareLbdMax = 2;   ///< export learnts with LBD <= this
    uint32_t ShareMaxSize = 32; ///< never export clauses longer than this

    // -- Luby restarts ----
    uint64_t LubyUnit = 100; ///< conflicts per Luby step

    // -- Glucose EMA restarts ----
    double FastLbdAlpha = 1.0 / 32;  ///< EMA weight of the recent-LBD signal
    double RestartMargin = 1.25;     ///< restart when fast > margin * lifetime
    uint64_t RestartMinConflicts = 50; ///< warmup conflicts after each restart
    double TrailAlpha = 1.0 / 256;   ///< EMA weight of the trail-size signal
    double BlockMargin = 1.4;        ///< block when trail > margin * trail EMA
    uint64_t BlockMinConflicts = 100; ///< conflicts before blocking can fire

    // -- LBD tier retention ----
    uint32_t CoreLbdCut = 3; ///< LBD <= cut (or binary) => kept forever
    uint32_t MidLbdCut = 6;  ///< LBD <= cut => mid tier, aged by usage
    uint32_t MidMaxAge = 2;  ///< reductions a mid clause may sit unused

    // -- shared ----
    double MaxLearntsBase = 1000.0; ///< floor of the first reduceDB trigger

    // -- inprocessing (sat/Simplifier.h) ----
    /// Run SatELite-style simplification (bounded variable elimination +
    /// subsumption + self-subsuming resolution) once at the first solve()
    /// and again at restart boundaries. Variables that outside code will
    /// assume, release, or share must be frozen first (setFrozen); the
    /// MaxSAT sessions register their control variables automatically.
    bool Preprocess = true;
    /// Conflicts between inprocessing passes at restart boundaries
    /// (0 = preprocess at load only).
    uint64_t InprocessIntervalConflicts = 20000;
    /// Skip the pass while the problem has fewer clauses than this: on a
    /// handful-of-clauses formula even building the occurrence lists
    /// costs more than simplification can ever recover. Tests that probe
    /// the pass on tiny hand-built formulas set it to 0.
    size_t PreprocessMinClauses = 16;

    /// The seed solver's policies: Luby restarts, activity-halving deletion,
    /// no preprocessing (the reference engines model the original solver).
    static Options seed() {
      Options O;
      O.Restart = RestartPolicy::Luby;
      O.Retention = RetentionPolicy::ActivityHalving;
      O.Preprocess = false;
      return O;
    }
  };

  Solver() : Solver(Options()) {}
  explicit Solver(const Options &O);

  /// Solvers are copyable *between* solve() calls (root level): the copy
  /// gets an independent arena, watch lists, learnt tiers, activities,
  /// saved phases, budget, and share hooks, and continues exactly where
  /// the original stood. This is the substrate of serve-mode session
  /// cloning (maxsat/MaxSat.h `MaxSatSession::clone`): one base solver is
  /// loaded with the shared hard clauses once and copied per query, which
  /// is a flat memcpy of the arena instead of per-clause re-simplification.
  /// Copying a solver whose solve() is in flight is undefined; a pending
  /// interrupt() is snapshotted as a plain value (interrupting the original
  /// never cancels the copy).
  Solver(const Solver &) = default;
  Solver &operator=(const Solver &) = default;

  const Options &options() const { return Opts; }

  /// Allocates a fresh variable and returns it.
  Var newVar();

  /// Ensures variables [0, N) all exist.
  void ensureVars(int N);

  int numVars() const { return static_cast<int>(Assigns.size()); }

  /// Adds a clause; performs level-0 simplification. \returns false if the
  /// solver became trivially UNSAT (empty clause / conflicting units).
  bool addClause(Clause C);

  /// Loads every hard clause of \p F (also allocating its variables).
  bool addFormula(const CnfFormula &F);

  /// Retires a variable from an incremental session: fixes \p L at the root
  /// level (so every clause mentioning it simplifies away or shrinks) and
  /// permanently removes the variable from branching. The MaxSAT layer
  /// calls this with ~A when assumption guard A is superseded, satisfying
  /// the stale guarded clause copy trivially without bloating the decision
  /// heap with dead selectors. \returns false if the solver became UNSAT.
  bool releaseVar(Lit L);

  /// \returns false once the clause database is known UNSAT regardless of
  /// assumptions.
  bool okay() const { return Ok; }

  /// Decides satisfiability. Undef is only returned when a conflict budget
  /// is set and exhausted.
  LBool solve() { return solve({}); }

  /// Decides satisfiability under \p Assumptions (literals forced true for
  /// this call only). On False, conflictCore() holds the subset of
  /// assumptions proved jointly inconsistent with the clauses.
  LBool solve(const std::vector<Lit> &Assumptions);

  /// Model access after a True result.
  LBool modelValue(Var V) const { return Model[V]; }
  LBool modelValue(Lit L) const {
    LBool B = Model[L.var()];
    return L.negated() ? lboolNeg(B) : B;
  }

  /// After a False result under assumptions: the failed assumptions (each
  /// element is one of the assumption literals passed to solve()).
  const std::vector<Lit> &conflictCore() const { return ConflictCore; }

  /// Limits the next solve() calls to \p MaxConflicts conflicts
  /// (0 = unlimited). When exhausted, solve returns Undef.
  void setConflictBudget(uint64_t MaxConflicts) { ConflictBudget = MaxConflicts; }

  // --- resource budgets (graceful degradation) -----------------------------

  /// A query-wide resource budget. Unlike the per-solve conflict budget
  /// above, every cap is cumulative across all solve() calls since
  /// setBudget() -- the MaxSAT sessions install one budget per user query
  /// and make dozens of solve() calls against it. A zero cap (or an unset
  /// deadline) means that dimension is unlimited.
  struct Budget {
    uint64_t MaxConflicts = 0;    ///< conflicts since setBudget (0 = off)
    uint64_t MaxPropagations = 0; ///< propagations since setBudget (0 = off)
    uint64_t MaxArenaBytes = 0;   ///< clause-arena size cap (0 = off)
    std::chrono::steady_clock::time_point Deadline{};
    bool HasDeadline = false;

    bool unlimited() const {
      return MaxConflicts == 0 && MaxPropagations == 0 && MaxArenaBytes == 0 &&
             !HasDeadline;
    }
    /// Sets the deadline to now + \p Seconds on the steady clock.
    void setDeadlineIn(double Seconds) {
      Deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(Seconds));
      HasDeadline = true;
    }
  };

  /// Installs \p B and starts counting against it from the solver's current
  /// cumulative stats. Exhaustion makes solve() return Undef -- never throw,
  /// never abort: arena growth past MaxArenaBytes is detected at the next
  /// allocation and degrades to Undef too. The exhausted state is sticky
  /// (later solve() calls return Undef immediately) until the budget is
  /// replaced or cleared.
  void setBudget(const Budget &B);

  /// Removes any budget and clears the exhausted state.
  void clearBudget();

  const Budget &budget() const { return Bud; }

  /// True once any budget dimension has tripped; sticky until clearBudget()
  /// or the next setBudget().
  bool budgetExhausted() const { return BudgetExhaustedFlag; }

  /// Re-latches the exhausted state. The MaxSAT sessions briefly lift an
  /// exhausted budget to harvest a bounded best-effort witness (the anytime
  /// upper bound); this restores the sticky Unknown contract afterwards.
  void markBudgetExhausted() {
    if (BudgetArmed)
      BudgetExhaustedFlag = true;
  }

  // --- cooperative cancellation (portfolio racing) -------------------------

  /// Asks a running solve() to stop at the next search-loop iteration; the
  /// call returns Undef. Safe to call from any thread; the flag is sticky
  /// until clearInterrupt(), so a solve() that has not started yet returns
  /// promptly too.
  void interrupt() { InterruptRequested.store(true, std::memory_order_relaxed); }

  /// Re-arms the solver after an interrupt. Call between solve()s only.
  void clearInterrupt() {
    InterruptRequested.store(false, std::memory_order_relaxed);
  }

  bool interrupted() const {
    return InterruptRequested.load(std::memory_order_relaxed);
  }

  // --- learnt-clause sharing (glucose-syrup-style portfolio exchange) ------

  /// Export hook: receives each learnt clause (post-minimization) with
  /// LBD <= Options::ShareLbdMax whose variables are all < ShareVarLimit.
  using ExportFn = std::function<void(const std::vector<Lit> &, uint32_t Lbd)>;
  /// Import hook: pulls one foreign clause at a time (returns false when
  /// drained). Drained at solve() entry and at every restart boundary, at
  /// decision level 0; imported clauses enter the learnt tiers with the
  /// advertised LBD. Hooks may be called from the solving thread only, but
  /// their implementations (e.g. ClauseExchange) are expected to be
  /// thread-safe so several solvers can share one buffer.
  using ImportFn = std::function<bool(std::vector<Lit> &, uint32_t &Lbd)>;

  /// Installs the exchange hooks. Only clauses whose variables are all
  /// below \p ShareVarLimit are exported -- portfolio sessions pass the
  /// number of *original* problem variables, so clauses over session-local
  /// auxiliaries (guards, relaxation selectors, counter internals) never
  /// leak into solvers where they would be unsound.
  void setShareHooks(ExportFn Export, ImportFn Import, Var ShareVarLimit) {
    this->Export = std::move(Export);
    this->Import = std::move(Import);
    this->ShareVarLimit = ShareVarLimit;
  }

  const SolverStats &stats() const { return Stats; }

  /// Zeroes the statistics counters (the formula and search state stay).
  /// Portfolio construction copies workers from one preprocessed
  /// prototype and resets the copies, so aggregated stats count the
  /// shared simplification pass once, not once per worker.
  void clearStats() { Stats = SolverStats(); }

  /// LBDs of the live learnt clauses across all tiers, in no particular
  /// order. Introspection surface for tests and benches; under the seed
  /// retention policy LBDs are still computed and reported.
  std::vector<uint32_t> learntLbds() const;

  /// Forces a learned-clause reduction with the configured retention
  /// policy. Must be called at the root level (between solve() calls);
  /// normally reductions trigger automatically during search.
  void reduceLearntDb();

  /// Forces a relocating arena collection (normally triggered once a fifth
  /// of the arena is waste). Root level only; exposed so tests can check
  /// that relocation preserves clause metadata.
  void forceGarbageCollect();

  /// Sets the saved phase of \p V to \p Phase; used to bias the search
  /// (e.g., prefer enabling selectors).
  void setPolarity(Var V, bool Phase) { SavedPhase[V] = Phase; }

  /// Raises \p V's VSIDS activity so it is decided early. BugAssist boosts
  /// the selector variables: deciding them first makes every descent start
  /// from a concrete candidate "program edit", which propagation then
  /// evaluates cheaply.
  void boostActivity(Var V, double Amount = 1.0);

  /// Pseudo-random tie breaking seed for restarts/decisions.
  void setRandomSeed(uint64_t Seed) { RandState = Seed | 1; }

  /// Swaps in a new option block at the root level: re-seeds the RNG and
  /// re-draws the saved phase of every unassigned variable under the new
  /// InitPhase policy (exactly what newVar would have done). This is how
  /// portfolio workers are re-diversified after being copy-constructed
  /// from one shared, already-preprocessed prototype (maxsat/Portfolio.cpp)
  /// instead of each paying for clause loading and the simplification pass.
  void adoptOptions(const Options &O);

  // --- inprocessing (sat/Simplifier.{h,cpp}) -------------------------------

  /// Marks \p V as off-limits for variable elimination. The frozen-variable
  /// contract: any variable that outside code will later pass to solve() as
  /// an assumption, retire through releaseVar, or mention in a clause added
  /// after the first solve() MUST be frozen before that solve. Violations
  /// are hard errors (std::logic_error), not silent unsoundness.
  /// releaseVar unfreezes (the variable is root-fixed afterwards, so
  /// elimination of its remaining occurrences is sound and desirable).
  void setFrozen(Var V, bool Frozen);

  /// True if \p V is frozen -- explicitly, or structurally because it lies
  /// in the clause-exchange original-variable prefix of an installed share
  /// hook (imported clauses may mention any prefix variable at any time).
  bool isFrozen(Var V) const {
    if (V < static_cast<Var>(FrozenVars.size()) && FrozenVars[V])
      return true;
    return (Export || Import) && V < ShareVarLimit;
  }

  /// True once \p V has been eliminated by the simplifier. Eliminated
  /// variables have no clause occurrences; their model values are restored
  /// from the reconstruction stack before solve() returns True.
  bool isEliminated(Var V) const {
    return V < static_cast<Var>(ElimVars.size()) && ElimVars[V] != 0;
  }

  /// Runs one full simplification pass now (root level, between solve()
  /// calls). No-op unless Options::Preprocess is set. \returns okay().
  bool preprocess();

  /// Test hook: force-eliminates \p V regardless of the resolvent growth
  /// bounds. Throws std::logic_error if \p V is frozen; returns false
  /// (without eliminating) if \p V is assigned at the root. \returns true
  /// if \p V is eliminated on exit.
  bool eliminateVar(Var V);

private:
  friend class Simplifier;
  // --- clause storage -----------------------------------------------------
  //
  // Clauses live in one flat arena of 32-bit words (stored as Lit for
  // type-clean access): [header][activity][lbd][lit_0 ... lit_{n-1}]. A
  // ClauseRef is the word offset of the header. Header layout:
  // size << 3 | Reloced << 2 | Learnt << 1 | Freed. The activity word
  // holds float bits (learnt clauses) or, after relocation during garbage
  // collection, the forwarding ClauseRef into the new arena. The lbd word
  // packs the clause's Literal Block Distance with its retention flags:
  // bits 0..19 LBD, bit 20 Touched (used in a conflict since the last
  // reduction), bits 21..23 Age (reductions survived without being used).
  using ClauseRef = int32_t;
  static constexpr ClauseRef InvalidClause = -1;
  static constexpr int32_t FreedBit = 1;
  static constexpr int32_t LearntBit = 2;
  static constexpr int32_t RelocedBit = 4;
  static constexpr int32_t HeaderWords = 3;
  static constexpr uint32_t LbdMask = (1u << 20) - 1;
  static constexpr uint32_t TouchedBit = 1u << 20;
  static constexpr uint32_t AgeShift = 21;
  static constexpr uint32_t AgeMask = 7;

  int32_t header(ClauseRef CR) const { return Arena[CR].code(); }
  uint32_t clauseSize(ClauseRef CR) const {
    return static_cast<uint32_t>(header(CR)) >> 3;
  }
  bool clauseLearnt(ClauseRef CR) const { return header(CR) & LearntBit; }
  bool clauseFreed(ClauseRef CR) const { return header(CR) & FreedBit; }
  void setClauseSize(ClauseRef CR, uint32_t Size) {
    Arena[CR] = Lit::fromCode(static_cast<int32_t>(Size << 3) |
                              (header(CR) & 7));
  }
  Lit *clauseLits(ClauseRef CR) { return &Arena[CR + HeaderWords]; }
  const Lit *clauseLits(ClauseRef CR) const { return &Arena[CR + HeaderWords]; }
  float clauseActivity(ClauseRef CR) const;
  void setClauseActivity(ClauseRef CR, float A);

  uint32_t lbdWord(ClauseRef CR) const {
    return static_cast<uint32_t>(Arena[CR + 2].code());
  }
  void setLbdWord(ClauseRef CR, uint32_t W) {
    Arena[CR + 2] = Lit::fromCode(static_cast<int32_t>(W));
  }
  uint32_t clauseLbd(ClauseRef CR) const { return lbdWord(CR) & LbdMask; }
  void setClauseLbd(ClauseRef CR, uint32_t Lbd) {
    setLbdWord(CR, (lbdWord(CR) & ~LbdMask) | (Lbd & LbdMask));
  }
  bool clauseTouched(ClauseRef CR) const { return lbdWord(CR) & TouchedBit; }
  void setClauseTouched(ClauseRef CR, bool T) {
    setLbdWord(CR, T ? (lbdWord(CR) | TouchedBit) : (lbdWord(CR) & ~TouchedBit));
  }
  uint32_t clauseAge(ClauseRef CR) const {
    return (lbdWord(CR) >> AgeShift) & AgeMask;
  }
  void setClauseAge(ClauseRef CR, uint32_t Age) {
    setLbdWord(CR, (lbdWord(CR) & ~(AgeMask << AgeShift)) |
                       ((Age & AgeMask) << AgeShift));
  }

  struct Watcher {
    ClauseRef CRef;
    Lit Blocker;
  };

  // --- core CDCL ----------------------------------------------------------
  LBool search();
  ClauseRef propagate();
  void analyze(ClauseRef Confl, std::vector<Lit> &OutLearnt, int &OutBtLevel,
               uint32_t &OutLbd);
  void analyzeFinal(Lit P);
  void uncheckedEnqueue(Lit L, ClauseRef From);
  void cancelUntil(int Level);
  Lit pickBranchLit();
  void newDecisionLevel() { TrailLim.push_back(static_cast<int>(Trail.size())); }
  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }

  LBool value(Lit L) const {
    LBool B = Assigns[L.var()];
    return L.negated() ? lboolNeg(B) : B;
  }
  LBool value(Var V) const { return Assigns[V]; }
  int level(Var V) const { return VarLevel[V]; }

  ClauseRef allocClause(const std::vector<Lit> &Lits, bool Learnt);
  void attachClause(ClauseRef CR);
  void detachClause(ClauseRef CR);
  void rewatchAsBinary(ClauseRef CR);
  void removeClause(ClauseRef CR);
  void importSharedClauses();
  void addImportedClause(const std::vector<Lit> &Lits, uint32_t Lbd);
  /// The binary fast path never normalizes clause literals during
  /// propagation, so a binary reason clause may have the implied literal at
  /// either position; callers reading reasons positionally fix it up here.
  void normalizeBinaryReason(ClauseRef CR, Lit Implied) {
    Lit *CL = clauseLits(CR);
    if (clauseSize(CR) == 2 && CL[0] != Implied)
      std::swap(CL[0], CL[1]);
  }
  bool isLocked(ClauseRef CR) const;
  void pushLearnt(ClauseRef CR, uint32_t Lbd);
  size_t reducibleLearnts() const;
  void reduceDB();
  void reduceDbActivity();
  void reduceDbTiers();
  void refreshTierGauges();
  void simplifyLevel0();
  void checkGarbage();
  void garbageCollect();

  // --- inprocessing helpers (implemented in Simplifier.cpp) ---------------
  /// Removes \p L from the clause (root level; clause must not be locked).
  /// Detaches, shrinks, re-attaches with two non-false watches; a clause
  /// collapsing to a unit is freed and its literal enqueued+propagated.
  /// \returns false if the solver became UNSAT.
  bool strengthenClause(ClauseRef CR, Lit L);
  /// Restores eliminated variables in Model by walking the reconstruction
  /// stack backwards (called on a True result before Model is defaulted).
  void extendModel();

  // --- LBD / restart machinery -------------------------------------------
  uint32_t computeLbd(const Lit *Lits, uint32_t Size);
  void onConflictLearnt(uint32_t Lbd);
  bool restartPending() const;
  bool shouldRestart() const;

  // --- activity heap ------------------------------------------------------
  void varBumpActivity(Var V);
  void varDecayActivity() { VarInc /= VarDecay; }
  void claBumpActivity(ClauseRef CR);
  void claDecayActivity() { ClaInc /= ClaDecay; }
  void insertVarOrder(Var V);
  void heapInsert(Var V);
  void heapDecrease(Var V);
  Var heapPop();
  bool heapEmpty() const { return Heap.empty(); }
  void heapPercolateUp(int I);
  void heapPercolateDown(int I);

  uint64_t nextRand() {
    RandState ^= RandState << 13;
    RandState ^= RandState >> 7;
    RandState ^= RandState << 17;
    return RandState;
  }

  static uint64_t lubyScale(uint64_t I);

  // --- state ----------------------------------------------------------------
  Options Opts;
  bool Ok = true;
  std::vector<Lit> Arena; // flat clause storage (see layout above)
  size_t ArenaWasted = 0; // words occupied by freed/shrunk clauses
  std::vector<ClauseRef> ProblemClauses;
  // Learnt tiers. The seed retention policy keeps everything in Local;
  // LbdTiers distributes by LBD and Core is never scanned for deletion.
  std::vector<ClauseRef> CoreLearnts;
  std::vector<ClauseRef> MidLearnts;
  std::vector<ClauseRef> LocalLearnts;
  std::vector<std::vector<Watcher>> Watches; // indexed by Lit code, size >= 3
  // Binary clauses get their own watch lists: the Watcher's Blocker IS the
  // other literal, so propagation over them never touches the arena (no
  // header load, no literal scan) -- see the fast path in propagate().
  std::vector<std::vector<Watcher>> BinWatches; // indexed by Lit code
  std::vector<LBool> Assigns;
  std::vector<int> VarLevel;
  std::vector<ClauseRef> Reason;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  int PropagationHead = 0;

  std::vector<double> Activity;
  double VarInc = 1.0;
  double VarDecay = 0.95;
  double ClaInc = 1.0;
  double ClaDecay = 0.999;
  std::vector<int> HeapIndex; // var -> position in Heap, -1 if absent
  std::vector<Var> Heap;

  std::vector<bool> SavedPhase;
  std::vector<bool> Released; // released vars never re-enter the heap
  // Inprocessing state (plain values: session cloning copies them).
  std::vector<char> FrozenVars; // explicit frozen marks (see setFrozen)
  std::vector<char> ElimVars;   // 1 once eliminated by the simplifier
  /// Model-reconstruction stack. Per eliminated variable one segment:
  /// for each clause of the stored occurrence side [lits...] with the
  /// eliminated variable's literal FIRST followed by a size word
  /// Lit::fromCode(n), then a single default unit [lit][size word 1].
  /// extendModel walks it backwards (MiniSAT's elimclauses layout).
  std::vector<Lit> ElimStack;
  bool PreprocessedOnce = false;     // load-time pass already ran
  uint64_t LastInprocConflicts = 0;  // Stats.Conflicts at the last pass
  std::vector<char> Seen;
  std::vector<Lit> AnalyzeStack;
  std::vector<uint64_t> LbdStampOfLevel; // level -> last stamp that saw it
  uint64_t LbdStamp = 0;

  std::vector<Lit> CurAssumptions;
  std::vector<Lit> ConflictCore;
  std::vector<LBool> Model;

  uint64_t ConflictBudget = 0;
  // Query-wide resource budget (see Budget above). The search loop keeps
  // the fast path cheap: one bool test plus a countdown, with the clock
  // read and counter comparisons amortized over BudgetPollPeriod
  // iterations (the arena cap additionally flips the sticky flag directly
  // from allocClause, so it is seen on the very next iteration).
  static constexpr int BudgetPollPeriod = 1024;
  bool pollBudget(); // slow path; returns and latches BudgetExhaustedFlag
  Budget Bud;
  bool BudgetArmed = false;
  bool BudgetExhaustedFlag = false;
  uint64_t BudgetStartConflicts = 0;
  uint64_t BudgetStartPropagations = 0;
  int BudgetPollCountdown = 0;
  uint64_t ConflictsThisSolve = 0;
  uint64_t ConflictsSinceRestart = 0;
  uint64_t CurRestartBudget = 0; // Luby policy: conflicts before restart
  double MaxLearnts = 0;
  // Restart EMAs persist across solve() calls, like the learnt clauses
  // whose quality they track. Each EMA carries a bias divisor (the Adam
  // correction 1 - (1-alpha)^n, accumulated incrementally) so the
  // corrected value is unbiased from the first sample; otherwise a fresh
  // solver's trail EMA underestimates for ~1/alpha conflicts and ordinary
  // trails would spuriously block every pending restart.
  double FastLbdEma = 0;
  double FastLbdBias = 0;
  double TrailEma = 0;
  double TrailBias = 0;
  uint64_t RandState = 0x1234567890abcdefull;
  uint32_t RandBranchThreshold = 20; // random decisions per 1024 (from Opts)

  /// std::atomic is not copyable; this wrapper snapshots the flag value so
  /// the defaulted Solver copy constructor (session cloning) stays
  /// member-wise. Memory ordering is the caller's choice, as before.
  struct CopyableAtomicBool {
    std::atomic<bool> V{false};
    CopyableAtomicBool() = default;
    CopyableAtomicBool(const CopyableAtomicBool &O)
        : V(O.V.load(std::memory_order_relaxed)) {}
    CopyableAtomicBool &operator=(const CopyableAtomicBool &O) {
      V.store(O.V.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
    void store(bool B, std::memory_order M) { V.store(B, M); }
    bool load(std::memory_order M) const { return V.load(M); }
  };

  CopyableAtomicBool InterruptRequested;
  ExportFn Export;
  ImportFn Import;
  Var ShareVarLimit = 0; // only clauses with all vars below this are exported

  SolverStats Stats;
};

} // namespace bugassist

#endif // BUGASSIST_SAT_SOLVER_H
