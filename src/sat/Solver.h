//===- Solver.h - CDCL SAT solver -------------------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver in the MiniSAT lineage
/// (Een & Sorensson), built from scratch as the substrate the paper's
/// pipeline rests on: CBMC-style trace formulas are decided here, and the
/// MaxSAT layer drives it through the *assumptions* interface, harvesting
/// unsatisfiable cores over assumption literals (analyzeFinal) exactly the
/// way MSUnCORE does.
///
/// Features: two-watched-literal propagation, first-UIP learning with local
/// clause minimization, VSIDS variable activities with a binary heap, phase
/// saving, Luby restarts, activity-driven learned-clause deletion, and
/// incremental solving under assumptions with core extraction.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SAT_SOLVER_H
#define BUGASSIST_SAT_SOLVER_H

#include "cnf/Lit.h"

#include <cstdint>
#include <vector>

namespace bugassist {

class CnfFormula;

/// Aggregate statistics for solver-behaviour benches and tests.
struct SolverStats {
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t LearnedClauses = 0;
  uint64_t DeletedClauses = 0;
};

/// CDCL solver. Typical interactive use:
/// \code
///   Solver S;
///   S.ensureVars(F.numVars());
///   for (const Clause &C : F.hardClauses()) S.addClause(C);
///   LBool R = S.solve({assumption1, ~assumption2});
///   if (R == LBool::False) auto &Core = S.conflictCore();
/// \endcode
class Solver {
public:
  Solver();

  /// Allocates a fresh variable and returns it.
  Var newVar();

  /// Ensures variables [0, N) all exist.
  void ensureVars(int N);

  int numVars() const { return static_cast<int>(Assigns.size()); }

  /// Adds a clause; performs level-0 simplification. \returns false if the
  /// solver became trivially UNSAT (empty clause / conflicting units).
  bool addClause(Clause C);

  /// Loads every hard clause of \p F (also allocating its variables).
  bool addFormula(const CnfFormula &F);

  /// \returns false once the clause database is known UNSAT regardless of
  /// assumptions.
  bool okay() const { return Ok; }

  /// Decides satisfiability. Undef is only returned when a conflict budget
  /// is set and exhausted.
  LBool solve() { return solve({}); }

  /// Decides satisfiability under \p Assumptions (literals forced true for
  /// this call only). On False, conflictCore() holds the subset of
  /// assumptions proved jointly inconsistent with the clauses.
  LBool solve(const std::vector<Lit> &Assumptions);

  /// Model access after a True result.
  LBool modelValue(Var V) const { return Model[V]; }
  LBool modelValue(Lit L) const {
    LBool B = Model[L.var()];
    return L.negated() ? lboolNeg(B) : B;
  }

  /// After a False result under assumptions: the failed assumptions (each
  /// element is one of the assumption literals passed to solve()).
  const std::vector<Lit> &conflictCore() const { return ConflictCore; }

  /// Limits the next solve() calls to \p MaxConflicts conflicts
  /// (0 = unlimited). When exhausted, solve returns Undef.
  void setConflictBudget(uint64_t MaxConflicts) { ConflictBudget = MaxConflicts; }

  const SolverStats &stats() const { return Stats; }

  /// Sets the saved phase of \p V to \p Phase; used to bias the search
  /// (e.g., prefer enabling selectors).
  void setPolarity(Var V, bool Phase) { SavedPhase[V] = Phase; }

  /// Raises \p V's VSIDS activity so it is decided early. BugAssist boosts
  /// the selector variables: deciding them first makes every descent start
  /// from a concrete candidate "program edit", which propagation then
  /// evaluates cheaply.
  void boostActivity(Var V, double Amount = 1.0);

  /// Pseudo-random tie breaking seed for restarts/decisions.
  void setRandomSeed(uint64_t Seed) { RandState = Seed | 1; }

private:
  // --- clause storage -----------------------------------------------------
  using ClauseRef = int32_t;
  static constexpr ClauseRef InvalidClause = -1;

  struct ClauseData {
    std::vector<Lit> Lits;
    double Activity = 0.0;
    bool Learnt = false;
    bool Deleted = false;
  };

  struct Watcher {
    ClauseRef CRef;
    Lit Blocker;
  };

  // --- core CDCL ----------------------------------------------------------
  LBool search(uint64_t ConflictsBeforeRestart);
  ClauseRef propagate();
  void analyze(ClauseRef Confl, std::vector<Lit> &OutLearnt, int &OutBtLevel);
  void analyzeFinal(Lit P);
  void uncheckedEnqueue(Lit L, ClauseRef From);
  void cancelUntil(int Level);
  Lit pickBranchLit();
  void newDecisionLevel() { TrailLim.push_back(static_cast<int>(Trail.size())); }
  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }

  LBool value(Lit L) const {
    LBool B = Assigns[L.var()];
    return L.negated() ? lboolNeg(B) : B;
  }
  LBool value(Var V) const { return Assigns[V]; }
  int level(Var V) const { return VarLevel[V]; }

  ClauseRef allocClause(std::vector<Lit> Lits, bool Learnt);
  void attachClause(ClauseRef CR);
  void detachClause(ClauseRef CR);
  void removeClause(ClauseRef CR);
  bool isLocked(ClauseRef CR) const;
  void reduceDB();
  void simplifyLevel0();

  // --- activity heap ------------------------------------------------------
  void varBumpActivity(Var V);
  void varDecayActivity() { VarInc /= VarDecay; }
  void claBumpActivity(ClauseData &C);
  void claDecayActivity() { ClaInc /= ClaDecay; }
  void heapInsert(Var V);
  void heapDecrease(Var V);
  Var heapPop();
  bool heapEmpty() const { return Heap.empty(); }
  void heapPercolateUp(int I);
  void heapPercolateDown(int I);

  uint64_t nextRand() {
    RandState ^= RandState << 13;
    RandState ^= RandState >> 7;
    RandState ^= RandState << 17;
    return RandState;
  }

  static uint64_t lubyScale(uint64_t I);

  // --- state ----------------------------------------------------------------
  bool Ok = true;
  std::vector<ClauseData> Clauses;
  std::vector<ClauseRef> ProblemClauses;
  std::vector<ClauseRef> LearntClauses;
  std::vector<std::vector<Watcher>> Watches; // indexed by Lit code
  std::vector<LBool> Assigns;
  std::vector<int> VarLevel;
  std::vector<ClauseRef> Reason;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  int PropagationHead = 0;

  std::vector<double> Activity;
  double VarInc = 1.0;
  double VarDecay = 0.95;
  double ClaInc = 1.0;
  double ClaDecay = 0.999;
  std::vector<int> HeapIndex; // var -> position in Heap, -1 if absent
  std::vector<Var> Heap;

  std::vector<bool> SavedPhase;
  std::vector<char> Seen;
  std::vector<Lit> AnalyzeStack;

  std::vector<Lit> CurAssumptions;
  std::vector<Lit> ConflictCore;
  std::vector<LBool> Model;

  uint64_t ConflictBudget = 0;
  uint64_t ConflictsThisSolve = 0;
  double MaxLearnts = 0;
  uint64_t RandState = 0x1234567890abcdefull;

  SolverStats Stats;
};

} // namespace bugassist

#endif // BUGASSIST_SAT_SOLVER_H
