//===- Solver.h - CDCL SAT solver -------------------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver in the MiniSAT lineage
/// (Een & Sorensson), built from scratch as the substrate the paper's
/// pipeline rests on: CBMC-style trace formulas are decided here, and the
/// MaxSAT layer drives it through the *assumptions* interface, harvesting
/// unsatisfiable cores over assumption literals (analyzeFinal) exactly the
/// way MSUnCORE does.
///
/// Features: two-watched-literal propagation, first-UIP learning with local
/// clause minimization, VSIDS variable activities with a binary heap, phase
/// saving, Luby restarts, activity-driven learned-clause deletion, and
/// incremental solving under assumptions with core extraction.
///
/// The solver is designed to stay alive across many solve() calls: clauses
/// can be added between calls, learned clauses / VSIDS activity / saved
/// phases persist, and retired selector variables can be released
/// (releaseVar) so long-running incremental MaxSAT sessions do not bloat
/// the decision heap. Clause literals live in a flat arena (MiniSAT-style
/// ClauseAllocator: header + inline literals addressed by a 32-bit
/// ClauseRef), so propagation walks contiguous memory and deleted clauses
/// are reclaimed by relocating garbage collection.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SAT_SOLVER_H
#define BUGASSIST_SAT_SOLVER_H

#include "cnf/Lit.h"

#include <cstdint>
#include <vector>

namespace bugassist {

class CnfFormula;

/// Aggregate statistics for solver-behaviour benches and tests.
struct SolverStats {
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t LearnedClauses = 0;
  uint64_t DeletedClauses = 0;
  uint64_t GcRuns = 0;
};

/// CDCL solver. Typical interactive use:
/// \code
///   Solver S;
///   S.ensureVars(F.numVars());
///   for (const Clause &C : F.hardClauses()) S.addClause(C);
///   LBool R = S.solve({assumption1, ~assumption2});
///   if (R == LBool::False) auto &Core = S.conflictCore();
/// \endcode
class Solver {
public:
  Solver();

  /// Allocates a fresh variable and returns it.
  Var newVar();

  /// Ensures variables [0, N) all exist.
  void ensureVars(int N);

  int numVars() const { return static_cast<int>(Assigns.size()); }

  /// Adds a clause; performs level-0 simplification. \returns false if the
  /// solver became trivially UNSAT (empty clause / conflicting units).
  bool addClause(Clause C);

  /// Loads every hard clause of \p F (also allocating its variables).
  bool addFormula(const CnfFormula &F);

  /// Retires a variable from an incremental session: fixes \p L at the root
  /// level (so every clause mentioning it simplifies away or shrinks) and
  /// permanently removes the variable from branching. The MaxSAT layer
  /// calls this with ~A when assumption guard A is superseded, satisfying
  /// the stale guarded clause copy trivially without bloating the decision
  /// heap with dead selectors. \returns false if the solver became UNSAT.
  bool releaseVar(Lit L);

  /// \returns false once the clause database is known UNSAT regardless of
  /// assumptions.
  bool okay() const { return Ok; }

  /// Decides satisfiability. Undef is only returned when a conflict budget
  /// is set and exhausted.
  LBool solve() { return solve({}); }

  /// Decides satisfiability under \p Assumptions (literals forced true for
  /// this call only). On False, conflictCore() holds the subset of
  /// assumptions proved jointly inconsistent with the clauses.
  LBool solve(const std::vector<Lit> &Assumptions);

  /// Model access after a True result.
  LBool modelValue(Var V) const { return Model[V]; }
  LBool modelValue(Lit L) const {
    LBool B = Model[L.var()];
    return L.negated() ? lboolNeg(B) : B;
  }

  /// After a False result under assumptions: the failed assumptions (each
  /// element is one of the assumption literals passed to solve()).
  const std::vector<Lit> &conflictCore() const { return ConflictCore; }

  /// Limits the next solve() calls to \p MaxConflicts conflicts
  /// (0 = unlimited). When exhausted, solve returns Undef.
  void setConflictBudget(uint64_t MaxConflicts) { ConflictBudget = MaxConflicts; }

  const SolverStats &stats() const { return Stats; }

  /// Sets the saved phase of \p V to \p Phase; used to bias the search
  /// (e.g., prefer enabling selectors).
  void setPolarity(Var V, bool Phase) { SavedPhase[V] = Phase; }

  /// Raises \p V's VSIDS activity so it is decided early. BugAssist boosts
  /// the selector variables: deciding them first makes every descent start
  /// from a concrete candidate "program edit", which propagation then
  /// evaluates cheaply.
  void boostActivity(Var V, double Amount = 1.0);

  /// Pseudo-random tie breaking seed for restarts/decisions.
  void setRandomSeed(uint64_t Seed) { RandState = Seed | 1; }

private:
  // --- clause storage -----------------------------------------------------
  //
  // Clauses live in one flat arena of 32-bit words (stored as Lit for
  // type-clean access): [header][activity][lit_0 ... lit_{n-1}]. A
  // ClauseRef is the word offset of the header. Header layout:
  // size << 3 | Reloced << 2 | Learnt << 1 | Freed. The activity word
  // holds float bits (learnt clauses) or, after relocation during garbage
  // collection, the forwarding ClauseRef into the new arena.
  using ClauseRef = int32_t;
  static constexpr ClauseRef InvalidClause = -1;
  static constexpr int32_t FreedBit = 1;
  static constexpr int32_t LearntBit = 2;
  static constexpr int32_t RelocedBit = 4;
  static constexpr int32_t HeaderWords = 2;

  int32_t header(ClauseRef CR) const { return Arena[CR].code(); }
  uint32_t clauseSize(ClauseRef CR) const {
    return static_cast<uint32_t>(header(CR)) >> 3;
  }
  bool clauseLearnt(ClauseRef CR) const { return header(CR) & LearntBit; }
  bool clauseFreed(ClauseRef CR) const { return header(CR) & FreedBit; }
  void setClauseSize(ClauseRef CR, uint32_t Size) {
    Arena[CR] = Lit::fromCode(static_cast<int32_t>(Size << 3) |
                              (header(CR) & 7));
  }
  Lit *clauseLits(ClauseRef CR) { return &Arena[CR + HeaderWords]; }
  const Lit *clauseLits(ClauseRef CR) const { return &Arena[CR + HeaderWords]; }
  float clauseActivity(ClauseRef CR) const;
  void setClauseActivity(ClauseRef CR, float A);

  struct Watcher {
    ClauseRef CRef;
    Lit Blocker;
  };

  // --- core CDCL ----------------------------------------------------------
  LBool search(uint64_t ConflictsBeforeRestart);
  ClauseRef propagate();
  void analyze(ClauseRef Confl, std::vector<Lit> &OutLearnt, int &OutBtLevel);
  void analyzeFinal(Lit P);
  void uncheckedEnqueue(Lit L, ClauseRef From);
  void cancelUntil(int Level);
  Lit pickBranchLit();
  void newDecisionLevel() { TrailLim.push_back(static_cast<int>(Trail.size())); }
  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }

  LBool value(Lit L) const {
    LBool B = Assigns[L.var()];
    return L.negated() ? lboolNeg(B) : B;
  }
  LBool value(Var V) const { return Assigns[V]; }
  int level(Var V) const { return VarLevel[V]; }

  ClauseRef allocClause(const std::vector<Lit> &Lits, bool Learnt);
  void attachClause(ClauseRef CR);
  void detachClause(ClauseRef CR);
  void removeClause(ClauseRef CR);
  bool isLocked(ClauseRef CR) const;
  void reduceDB();
  void simplifyLevel0();
  void checkGarbage();
  void garbageCollect();

  // --- activity heap ------------------------------------------------------
  void varBumpActivity(Var V);
  void varDecayActivity() { VarInc /= VarDecay; }
  void claBumpActivity(ClauseRef CR);
  void claDecayActivity() { ClaInc /= ClaDecay; }
  void insertVarOrder(Var V);
  void heapInsert(Var V);
  void heapDecrease(Var V);
  Var heapPop();
  bool heapEmpty() const { return Heap.empty(); }
  void heapPercolateUp(int I);
  void heapPercolateDown(int I);

  uint64_t nextRand() {
    RandState ^= RandState << 13;
    RandState ^= RandState >> 7;
    RandState ^= RandState << 17;
    return RandState;
  }

  static uint64_t lubyScale(uint64_t I);

  // --- state ----------------------------------------------------------------
  bool Ok = true;
  std::vector<Lit> Arena; // flat clause storage (see layout above)
  size_t ArenaWasted = 0; // words occupied by freed/shrunk clauses
  std::vector<ClauseRef> ProblemClauses;
  std::vector<ClauseRef> LearntClauses;
  std::vector<std::vector<Watcher>> Watches; // indexed by Lit code
  std::vector<LBool> Assigns;
  std::vector<int> VarLevel;
  std::vector<ClauseRef> Reason;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  int PropagationHead = 0;

  std::vector<double> Activity;
  double VarInc = 1.0;
  double VarDecay = 0.95;
  double ClaInc = 1.0;
  double ClaDecay = 0.999;
  std::vector<int> HeapIndex; // var -> position in Heap, -1 if absent
  std::vector<Var> Heap;

  std::vector<bool> SavedPhase;
  std::vector<bool> Released; // released vars never re-enter the heap
  std::vector<char> Seen;
  std::vector<Lit> AnalyzeStack;

  std::vector<Lit> CurAssumptions;
  std::vector<Lit> ConflictCore;
  std::vector<LBool> Model;

  uint64_t ConflictBudget = 0;
  uint64_t ConflictsThisSolve = 0;
  double MaxLearnts = 0;
  uint64_t RandState = 0x1234567890abcdefull;

  SolverStats Stats;
};

} // namespace bugassist

#endif // BUGASSIST_SAT_SOLVER_H
