//===- RequestQueue.cpp - Work-stealing queue for the serve pool ----------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/RequestQueue.h"

#include "support/FaultInject.h"

#include <cassert>
#include <stdexcept>

using namespace bugassist;

RequestQueue::RequestQueue(size_t Workers) : Deques(Workers ? Workers : 1) {}

void RequestQueue::push(size_t Item) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(!Closed && "push after close");
    Deques[NextWorker].push_back(Item);
    NextWorker = (NextWorker + 1) % Deques.size();
  }
  NonEmpty.notify_one();
}

bool RequestQueue::pop(size_t Worker, size_t &Item) {
  assert(Worker < Deques.size() && "worker id out of range");
  // Test-only fault hook (one relaxed load when disarmed), fired before
  // anything is dequeued so a killed worker loses no item: the request
  // stays queued for whoever pops next -- typically the respawned worker.
  if (faultinject::active() &&
      faultinject::onEvent(faultinject::Event::QueuePop))
    throw std::runtime_error("injected queue-pop fault");
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    // Own deque, newest first.
    if (!Deques[Worker].empty()) {
      Item = Deques[Worker].back();
      Deques[Worker].pop_back();
      return true;
    }
    // Steal from the longest backlog, oldest first (FIFO keeps stolen
    // work close to submission order).
    size_t Victim = Deques.size();
    size_t Longest = 0;
    for (size_t W = 0; W < Deques.size(); ++W)
      if (W != Worker && Deques[W].size() > Longest) {
        Longest = Deques[W].size();
        Victim = W;
      }
    if (Victim != Deques.size()) {
      Item = Deques[Victim].front();
      Deques[Victim].pop_front();
      return true;
    }
    if (Closed)
      return false;
    NonEmpty.wait(Lock);
  }
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Closed = true;
  }
  NonEmpty.notify_all();
}
