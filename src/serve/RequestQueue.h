//===- RequestQueue.h - Work-stealing queue for the serve pool --*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dispatch structure of the serve pool (docs/ARCHITECTURE.md, "Serve
/// mode"): one deque per worker, requests distributed round-robin by the
/// reader, each worker draining its own deque LIFO and stealing FIFO from
/// the most loaded peer when empty. Stealing keeps the pool busy when a
/// batch mixes second-long localizations with microsecond cache hits --
/// round-robin alone would let a worker idle behind a long request.
///
/// Items are request indexes (the server keeps the request objects); the
/// queue never owns payloads. A single mutex + condition variable guards
/// all deques: requests are MaxSAT queries, milliseconds at minimum, so
/// lock contention is noise and the simplicity buys obvious correctness
/// under TSan.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SERVE_REQUESTQUEUE_H
#define BUGASSIST_SERVE_REQUESTQUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace bugassist {

class RequestQueue {
public:
  explicit RequestQueue(size_t Workers);

  /// Enqueues request \p Item, round-robin across workers. Called by the
  /// reader thread only.
  void push(size_t Item);

  /// Dequeues the next item for \p Worker: own deque first (LIFO -- the
  /// freshest, cache-warmest request), else a FIFO steal from the peer
  /// with the longest backlog. Blocks while everything is empty and the
  /// queue is open. \returns false when drained *and* closed -- the
  /// worker's signal to exit.
  bool pop(size_t Worker, size_t &Item);

  /// Marks the end of input: blocked and future pop() calls return false
  /// once the deques drain.
  void close();

private:
  std::mutex Mu;
  std::condition_variable NonEmpty;
  std::vector<std::deque<size_t>> Deques;
  size_t NextWorker = 0;
  bool Closed = false;
};

} // namespace bugassist

#endif // BUGASSIST_SERVE_REQUESTQUEUE_H
