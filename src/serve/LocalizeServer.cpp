//===- LocalizeServer.cpp - Batch/daemon localization service -------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/LocalizeServer.h"

#include "cnf/DimacsReader.h"
#include "core/Pipeline.h"
#include "maxsat/Portfolio.h"
#include "programs/Tcas.h"
#include "programs/TcasMutants.h"
#include "serve/FormulaCache.h"
#include "serve/Json.h"
#include "serve/RequestQueue.h"
#include "support/FileUtil.h"

#include <atomic>
#include <chrono>
#include <istream>
#include <map>
#include <ostream>
#include <thread>
#include <vector>

using namespace bugassist;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t elapsedMs(Clock::time_point Start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            Start)
          .count());
}

// --- requests ----------------------------------------------------------------

enum class Cmd { Localize, MaxSat, Sat };

const char *cmdName(Cmd C) {
  switch (C) {
  case Cmd::Localize: return "localize";
  case Cmd::MaxSat:   return "maxsat";
  case Cmd::Sat:      return "sat";
  }
  return "unknown";
}

/// One request line, decoded. Invalid lines never become one of these --
/// the reader answers them directly.
struct Request {
  std::string Id;
  Cmd Command = Cmd::Localize;

  // localize: resolved program text + the per-query pipeline request.
  std::string Source;
  PipelineRequest Pipeline;
  bool Json = false;

  // maxsat / sat: resolved DIMACS text + output options.
  std::string Dimacs;
  std::string Engine = "auto";
  bool Model = true;

  // Per-request resource budget (every command).
  double TimeoutSeconds = 0;
  uint64_t MaxConflicts = 0;
  uint64_t MaxMemoryMb = 0;

  bool hasBudget() const {
    return TimeoutSeconds > 0 || MaxConflicts > 0 || MaxMemoryMb > 0;
  }
  Solver::Budget solverBudget() const {
    Solver::Budget B;
    B.MaxConflicts = MaxConflicts;
    B.MaxArenaBytes = MaxMemoryMb << 20;
    if (TimeoutSeconds > 0)
      B.setDeadlineIn(TimeoutSeconds);
    return B;
  }
};

/// Field-level validators. Each returns false with \p Error set; the
/// messages quote the field name so a typo is findable in the batch.
bool wantString(const JsonValue &V, const char *Name, std::string &Out,
                std::string &Error) {
  if (!V.isString()) {
    Error = std::string("field '") + Name + "' must be a string";
    return false;
  }
  Out = V.Text;
  return true;
}

bool wantBool(const JsonValue &V, const char *Name, bool &Out,
              std::string &Error) {
  if (!V.isBool()) {
    Error = std::string("field '") + Name + "' must be a boolean";
    return false;
  }
  Out = V.BoolVal;
  return true;
}

bool wantInt(const JsonValue &V, const char *Name, int64_t Min, int64_t Max,
             int64_t &Out, std::string &Error) {
  auto I = V.asInt64();
  if (!I || *I < Min || *I > Max) {
    Error = std::string("field '") + Name + "' must be an integer in [" +
            std::to_string(Min) + ", " + std::to_string(Max) + "]";
    return false;
  }
  Out = *I;
  return true;
}

/// Decodes one request object. \p Req.Id is always usable afterwards (the
/// explicit id when one parsed, else the 1-based request number), so even
/// rejected requests get an addressable error response.
bool parseRequest(const JsonValue &Root, size_t Index, Request &Req,
                  std::string &Error) {
  Req.Id = std::to_string(Index + 1);
  if (!Root.isObject()) {
    Error = "request must be a JSON object";
    return false;
  }
  if (const JsonValue *Id = Root.find("id")) {
    if (!wantString(*Id, "id", Req.Id, Error))
      return false;
  }
  const JsonValue *CmdV = Root.find("cmd");
  std::string CmdStr;
  if (!CmdV || !wantString(*CmdV, "cmd", CmdStr, Error)) {
    if (Error.empty())
      Error = "missing required field 'cmd'";
    return false;
  }
  if (CmdStr == "localize")
    Req.Command = Cmd::Localize;
  else if (CmdStr == "maxsat")
    Req.Command = Cmd::MaxSat;
  else if (CmdStr == "sat")
    Req.Command = Cmd::Sat;
  else {
    Error = "field 'cmd' must be \"localize\", \"maxsat\", or \"sat\"";
    return false;
  }

  int ProgramSources = 0; // source/file/tcas (localize), wcnf/cnf/file
  for (const auto &[Key, Val] : Root.Members) {
    int64_t N = 0;
    if (Key == "id" || Key == "cmd") {
      // handled above
    } else if (Key == "timeout") {
      auto D = Val.asDouble();
      // Same bounds as the CLI's --timeout: anything over 1e9 seconds is
      // a typo, not a deadline.
      if (!D || !(*D > 0) || *D > 1e9) {
        Error = "field 'timeout' must be a positive number of seconds";
        return false;
      }
      Req.TimeoutSeconds = *D;
    } else if (Key == "max_conflicts") {
      if (!wantInt(Val, "max_conflicts", 1, INT64_MAX, N, Error))
        return false;
      Req.MaxConflicts = static_cast<uint64_t>(N);
    } else if (Key == "max_memory_mb") {
      // Capped so MaxMemoryMb << 20 cannot overflow uint64_t.
      if (!wantInt(Val, "max_memory_mb", 1, 1ll << 30, N, Error))
        return false;
      Req.MaxMemoryMb = static_cast<uint64_t>(N);
    } else if (Req.Command == Cmd::Localize && Key == "source") {
      if (!wantString(Val, "source", Req.Source, Error))
        return false;
      ++ProgramSources;
    } else if (Req.Command == Cmd::Localize && Key == "tcas") {
      if (!wantInt(Val, "tcas", 0, 41, N, Error))
        return false;
      Req.Source = N == 0 ? tcasSource()
                          : tcasMutants()[static_cast<size_t>(N - 1)].Source;
      ++ProgramSources;
    } else if (Key == "file") {
      std::string Path;
      if (!wantString(Val, "file", Path, Error))
        return false;
      auto Text = readFileToString(Path);
      if (!Text) {
        Error = "cannot read file '" + Path + "'";
        return false;
      }
      (Req.Command == Cmd::Localize ? Req.Source : Req.Dimacs) =
          std::move(*Text);
      ++ProgramSources;
    } else if (Req.Command == Cmd::Localize && Key == "entry") {
      if (!wantString(Val, "entry", Req.Pipeline.Entry, Error))
        return false;
    } else if (Req.Command == Cmd::Localize && Key == "input") {
      std::string Text, ParseError;
      if (!wantString(Val, "input", Text, Error))
        return false;
      auto In = parseInputVector(Text, ParseError);
      if (!In) {
        Error = "bad 'input': " + ParseError;
        return false;
      }
      Req.Pipeline.Input = std::move(*In);
    } else if (Req.Command == Cmd::Localize && Key == "golden") {
      if (!wantInt(Val, "golden", INT64_MIN, INT64_MAX, N, Error))
        return false;
      Req.Pipeline.GoldenReturn = N;
    } else if (Req.Command == Cmd::Localize && Key == "check_obligations") {
      if (!wantBool(Val, "check_obligations", Req.Pipeline.CheckObligations,
                    Error))
        return false;
    } else if (Req.Command == Cmd::Localize && Key == "bounds") {
      if (!wantBool(Val, "bounds", Req.Pipeline.Unroll.CheckArrayBounds,
                    Error))
        return false;
    } else if (Req.Command == Cmd::Localize && Key == "unwind") {
      if (!wantInt(Val, "unwind", 1, 1000000, N, Error))
        return false;
      Req.Pipeline.Unroll.MaxLoopUnwind = static_cast<int>(N);
    } else if (Req.Command == Cmd::Localize && Key == "bitwidth") {
      if (!wantInt(Val, "bitwidth", 1, 64, N, Error))
        return false;
      Req.Pipeline.Unroll.BitWidth = static_cast<int>(N);
    } else if (Req.Command == Cmd::Localize && Key == "hard_lines") {
      std::string Spec;
      if (!wantString(Val, "hard_lines", Spec, Error))
        return false;
      if (!parseHardLinesSpec(Spec, Req.Pipeline.Unroll.HardLines)) {
        Error = "bad 'hard_lines' spec '" + Spec + "'";
        return false;
      }
    } else if (Req.Command == Cmd::Localize && Key == "max_diagnoses") {
      if (!wantInt(Val, "max_diagnoses", 1, INT64_MAX, N, Error))
        return false;
      Req.Pipeline.Localize.MaxDiagnoses = static_cast<size_t>(N);
    } else if (Req.Command == Cmd::Localize && Key == "weighted") {
      if (!wantBool(Val, "weighted", Req.Pipeline.Localize.Weighted, Error))
        return false;
    } else if (Req.Command == Cmd::Localize && Key == "json") {
      if (!wantBool(Val, "json", Req.Json, Error))
        return false;
    } else if (Req.Command == Cmd::MaxSat && Key == "wcnf") {
      if (!wantString(Val, "wcnf", Req.Dimacs, Error))
        return false;
      ++ProgramSources;
    } else if (Req.Command == Cmd::Sat && Key == "cnf") {
      if (!wantString(Val, "cnf", Req.Dimacs, Error))
        return false;
      ++ProgramSources;
    } else if (Req.Command == Cmd::MaxSat && Key == "engine") {
      if (!wantString(Val, "engine", Req.Engine, Error))
        return false;
      if (Req.Engine != "auto" && Req.Engine != "fumalik" &&
          Req.Engine != "linear") {
        Error = "field 'engine' must be \"auto\", \"fumalik\", or "
                "\"linear\"";
        return false;
      }
    } else if (Req.Command != Cmd::Localize && Key == "model") {
      if (!wantBool(Val, "model", Req.Model, Error))
        return false;
    } else {
      // Strict by design: an unknown (or wrong-command) field is a typo
      // the user wants to hear about, not silently-ignored noise.
      Error = "unknown field '" + Key + "' for cmd \"" + CmdStr + "\"";
      return false;
    }
  }

  const char *Wanted = Req.Command == Cmd::Localize
                           ? "'source', 'file', or 'tcas'"
                           : Req.Command == Cmd::MaxSat ? "'wcnf' or 'file'"
                                                        : "'cnf' or 'file'";
  if (ProgramSources == 0) {
    Error = std::string("missing program: give exactly one of ") + Wanted;
    return false;
  }
  if (ProgramSources > 1) {
    Error = std::string("conflicting program fields: give exactly one of ") +
            Wanted;
    return false;
  }
  return true;
}

// --- responses ---------------------------------------------------------------

/// Everything the stats trailer line carries.
struct ResponseStats {
  uint64_t ElapsedMs = 0;
  uint64_t SatCalls = 0;
  SolverStats Search;
};

/// One fully framed response: header line, body bytes, stats trailer line.
std::string frameResponse(const std::string &Id, const char *CmdStr,
                          const char *Status, int Exit, const char *Cache,
                          const std::string &ErrorMsg,
                          const std::string &Body,
                          const ResponseStats &St) {
  std::string Out = "{\"id\":\"" + jsonEscape(Id) + "\",\"cmd\":\"" + CmdStr +
                    "\",\"status\":\"" + Status +
                    "\",\"exit\":" + std::to_string(Exit);
  if (Cache)
    Out += std::string(",\"cache\":\"") + Cache + "\"";
  if (!ErrorMsg.empty())
    Out += ",\"error\":\"" + jsonEscape(ErrorMsg) + "\"";
  Out += ",\"bytes\":" + std::to_string(Body.size()) + "}\n";
  Out += Body;
  Out += "{\"id\":\"" + jsonEscape(Id) +
         "\",\"elapsed_ms\":" + std::to_string(St.ElapsedMs) +
         ",\"sat_calls\":" + std::to_string(St.SatCalls) +
         ",\"conflicts\":" + std::to_string(St.Search.Conflicts) +
         ",\"decisions\":" + std::to_string(St.Search.Decisions) +
         ",\"propagations\":" + std::to_string(St.Search.Propagations) +
         ",\"restarts\":" + std::to_string(St.Search.Restarts) +
         ",\"vars_eliminated\":" + std::to_string(St.Search.VarsEliminated) +
         ",\"clauses_subsumed\":" + std::to_string(St.Search.ClausesSubsumed) +
         ",\"lits_self_subsumed\":" +
         std::to_string(St.Search.LitsSelfSubsumed) +
         ",\"reconstruction_bytes\":" +
         std::to_string(St.Search.ReconstructBytes) + "}\n";
  return Out;
}

/// MaxSAT-Evaluation model line; mirrors the CLI's printModelLine.
void appendModelLine(std::string &Out, const std::vector<LBool> &Model,
                     int NumVars, bool TrailingZero) {
  Out += "v";
  for (int V = 0; V < NumVars; ++V) {
    Out += ' ';
    if (Model[V] != LBool::True)
      Out += '-';
    Out += std::to_string(V + 1);
  }
  if (TrailingZero)
    Out += " 0";
  Out += '\n';
}

/// Per-response outcome counters shared by the workers.
struct Tally {
  std::atomic<uint64_t> Ok{0};
  std::atomic<uint64_t> Incomplete{0};
  std::atomic<uint64_t> Errors{0};
};

std::string respondError(const Request &Req, const std::string &Message,
                         Tally &T, const char *Cache = nullptr,
                         uint64_t ElapsedMs = 0) {
  ++T.Errors;
  ResponseStats St;
  St.ElapsedMs = ElapsedMs;
  return frameResponse(Req.Id, cmdName(Req.Command), "error",
                       /*Exit=*/1, Cache, Message, "", St);
}

// --- per-command processing --------------------------------------------------

std::string processLocalize(const Request &Req, FormulaCache &Cache,
                            Tally &T) {
  auto Start = Clock::now();
  bool Hit = false;
  const CachedProgram &CP =
      Cache.lookup(Req.Source, Req.Pipeline.Entry, Req.Pipeline.Unroll,
                   Req.Pipeline.Encode, &Hit);
  const char *CacheStr = Hit ? "hit" : "miss";
  if (!CP.prepared())
    return respondError(Req, "program does not compile: " + CP.error(), T,
                        CacheStr, elapsedMs(Start));

  PipelineRequest R = Req.Pipeline;
  R.Localize.TimeoutSeconds = Req.TimeoutSeconds;
  R.Localize.MaxConflicts = Req.MaxConflicts;
  R.Localize.MaxMemoryMb = Req.MaxMemoryMb;

  // The encode-once fast path: a clone of the cached base session, primed
  // with TF1 + the soft selectors, completed per-test inside the pipeline.
  // cloneSession can only return nullptr for engines without clone(), and
  // the pipeline then transparently builds a session from scratch.
  std::unique_ptr<MaxSatSession> Session =
      CP.cloneSession(R.Localize.Weighted);
  PipelineResult Res = runLocalizePipeline(*CP.prepared(), R, Session.get());

  if (Res.Status == PipelineStatus::InputNotFailing)
    return respondError(Req, "nothing to localize: " + Res.Message, T,
                        CacheStr, elapsedMs(Start));

  // Localized or NoCounterexample: the body is the one-shot CLI's stdout,
  // byte for byte.
  std::string Body = renderLocalizeOutput(Res, Req.Json);
  bool Incomplete = Res.Report.Incomplete;
  ++(Incomplete ? T.Incomplete : T.Ok);
  ResponseStats St;
  St.ElapsedMs = elapsedMs(Start);
  St.SatCalls = Res.Report.SatCalls;
  St.Search = Res.Report.Search;
  return frameResponse(Req.Id, cmdName(Req.Command),
                       Incomplete ? "incomplete" : "ok", Incomplete ? 2 : 0,
                       CacheStr, "", Body, St);
}

std::string processMaxSat(const Request &Req, Tally &T) {
  auto Start = Clock::now();
  DimacsParseError Err;
  auto Parsed = parseDimacs(Req.Dimacs, Err);
  if (!Parsed)
    return respondError(Req, "bad wcnf: " + Err.render(), T, nullptr,
                        elapsedMs(Start));

  bool AnyWeight = false;
  MaxSatInstance Inst = toMaxSatInstance(std::move(*Parsed), &AnyWeight);
  // Engine dispatch matches the CLI: Fu-Malik ignores weights, so weighted
  // instances force linear search unless fumalik was explicitly requested.
  bool Weighted =
      Req.Engine == "linear" || (Req.Engine == "auto" && AnyWeight);
  std::unique_ptr<MaxSatSession> Session =
      makeMaxSatSession(Inst, Weighted, /*ConflictBudget=*/0,
                        Solver::Options(), /*Canonical=*/true);
  if (Req.hasBudget())
    Session->setBudget(Req.solverBudget());
  MaxSatResult R = Session->solve();

  // The CLI's o/s/v lines with the `c` comment lines removed.
  std::string Body;
  switch (R.Status) {
  case MaxSatStatus::Optimum:
    Body = "o " + std::to_string(R.Cost) + "\ns OPTIMUM FOUND\n";
    if (Req.Model)
      appendModelLine(Body, R.Model, Inst.NumVars, /*TrailingZero=*/false);
    break;
  case MaxSatStatus::HardUnsat:
    Body = "s UNSATISFIABLE\n";
    break;
  case MaxSatStatus::Unknown:
    if (R.UpperBound != UINT64_MAX) {
      Body = "o " + std::to_string(R.UpperBound) + "\ns UNKNOWN\n";
      if (Req.Model && !R.BestModel.empty())
        appendModelLine(Body, R.BestModel, Inst.NumVars,
                        /*TrailingZero=*/false);
    } else {
      Body = "s UNKNOWN\n";
    }
    break;
  }
  bool Incomplete = R.Status == MaxSatStatus::Unknown;
  ++(Incomplete ? T.Incomplete : T.Ok);
  ResponseStats St;
  St.ElapsedMs = elapsedMs(Start);
  St.SatCalls = R.SatCalls;
  St.Search = R.Search;
  return frameResponse(Req.Id, cmdName(Req.Command),
                       Incomplete ? "incomplete" : "ok", Incomplete ? 2 : 0,
                       nullptr, "", Body, St);
}

std::string processSat(const Request &Req, Tally &T) {
  auto Start = Clock::now();
  DimacsParseError Err;
  auto Parsed = parseDimacs(Req.Dimacs, Err);
  if (!Parsed)
    return respondError(Req, "bad cnf: " + Err.render(), T, nullptr,
                        elapsedMs(Start));

  // WCNF soft clauses are decided as hard, as the sat CLI does (which
  // warns on a `c` line; serve bodies carry no comment lines).
  std::vector<Clause> Clauses = std::move(Parsed->Hard);
  for (DimacsSoftClause &C : Parsed->Soft)
    Clauses.push_back(std::move(C.Lits));

  SatRaceResult R =
      racePortfolioSat(Clauses, Parsed->NumVars, /*Threads=*/1,
                       Solver::Options(), Req.solverBudget());
  std::string Body;
  if (R.Result == LBool::True)
    Body = "s SATISFIABLE\n";
  else if (R.Result == LBool::False)
    Body = "s UNSATISFIABLE\n";
  else
    Body = "s UNKNOWN\n";
  if (Req.Model && R.Result == LBool::True)
    appendModelLine(Body, R.Model, Parsed->NumVars, /*TrailingZero=*/true);

  bool Incomplete = R.Result == LBool::Undef;
  ++(Incomplete ? T.Incomplete : T.Ok);
  ResponseStats St;
  St.ElapsedMs = elapsedMs(Start);
  St.SatCalls = 1;
  St.Search = R.Aggregate;
  return frameResponse(Req.Id, cmdName(Req.Command),
                       Incomplete ? "incomplete" : "ok", Incomplete ? 2 : 0,
                       nullptr, "", Body, St);
}

std::string processRequest(const Request &Req, FormulaCache &Cache,
                           Tally &T) {
  switch (Req.Command) {
  case Cmd::Localize:
    return processLocalize(Req, Cache, T);
  case Cmd::MaxSat:
    return processMaxSat(Req, T);
  case Cmd::Sat:
    return processSat(Req, T);
  }
  return respondError(Req, "unreachable", T);
}

// --- ordered emission --------------------------------------------------------

/// Responses computed out of order, written in request order: a worker
/// submits its finished response and whoever holds the next index flushes
/// the contiguous run. No dedicated writer thread; a daemon client sees
/// each response the moment its turn arrives.
class OrderedEmitter {
public:
  explicit OrderedEmitter(std::ostream &Out) : Out(Out) {}

  void emit(size_t Index, std::string Payload) {
    std::lock_guard<std::mutex> Lock(Mu);
    Pending.emplace(Index, std::move(Payload));
    while (!Pending.empty() && Pending.begin()->first == Next) {
      Out << Pending.begin()->second;
      Pending.erase(Pending.begin());
      ++Next;
    }
    Out.flush();
  }

private:
  std::mutex Mu;
  std::ostream &Out;
  size_t Next = 0;
  std::map<size_t, std::string> Pending;
};

} // namespace

ServeSummary LocalizeServer::run(std::istream &In, std::ostream &Out,
                                 std::ostream &Err) {
  auto Start = Clock::now();
  size_t Threads = Opts.Threads ? Opts.Threads : 1;

  FormulaCache Cache;
  RequestQueue Queue(Threads);
  OrderedEmitter Emitter(Out);
  Tally T;

  // Request slots live here; the queue carries indexes. The mutex covers
  // only the vector itself (push_back can reallocate under a reader) --
  // each Request is immutable once enqueued.
  std::mutex SlotsMu;
  std::vector<std::unique_ptr<Request>> Slots;
  auto slot = [&](size_t Index) -> const Request & {
    std::lock_guard<std::mutex> Lock(SlotsMu);
    return *Slots[Index];
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (size_t W = 0; W < Threads; ++W)
    Pool.emplace_back([&, W] {
      size_t Index;
      while (Queue.pop(W, Index)) {
        const Request &Req = slot(Index);
        Emitter.emit(Index, processRequest(Req, Cache, T));
      }
    });

  // Reader loop (this thread): one JSON object per line; blank lines are
  // ignored. A line that fails to parse or validate is answered with an
  // error response in its slot -- the daemon survives and later requests
  // are unaffected.
  size_t NumRequests = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    size_t Index = NumRequests++;
    auto Req = std::make_unique<Request>();
    std::string Error;
    bool ParsedOk = false;
    auto Root = parseJson(Line, Error);
    if (!Root) {
      Error = "bad JSON: " + Error;
      Req->Id = std::to_string(Index + 1);
    } else {
      ParsedOk = parseRequest(*Root, Index, *Req, Error);
    }
    if (!ParsedOk) {
      // Malformed request: answered inline (ordering still holds -- the
      // emitter serializes), with cmd "unknown" unless a valid cmd parsed.
      std::string CmdText = "unknown";
      if (Root)
        if (const JsonValue *C = Root->find("cmd"))
          if (C->isString() && (C->Text == "localize" || C->Text == "maxsat" ||
                                C->Text == "sat"))
            CmdText = C->Text;
      ++T.Errors;
      ResponseStats St;
      Emitter.emit(Index, frameResponse(Req->Id, CmdText.c_str(), "error",
                                        /*Exit=*/1, nullptr, Error, "", St));
      continue;
    }
    {
      std::lock_guard<std::mutex> Lock(SlotsMu);
      if (Slots.size() <= Index)
        Slots.resize(Index + 1);
      Slots[Index] = std::move(Req);
    }
    Queue.push(Index);
  }
  Queue.close();
  for (std::thread &Worker : Pool)
    Worker.join();

  ServeSummary S;
  S.Requests = NumRequests;
  S.Ok = T.Ok;
  S.Incomplete = T.Incomplete;
  S.Errors = T.Errors;
  FormulaCacheStats CS = Cache.stats();
  S.CacheHits = CS.Hits;
  S.CacheMisses = CS.Misses;
  S.ExitCode = S.Errors ? 1 : S.Incomplete ? 2 : 0;

  Err << "{\"requests\":" << S.Requests << ",\"ok\":" << S.Ok
      << ",\"incomplete\":" << S.Incomplete << ",\"errors\":" << S.Errors
      << ",\"cache_hits\":" << S.CacheHits
      << ",\"cache_misses\":" << S.CacheMisses << ",\"threads\":" << Threads
      << ",\"elapsed_ms\":" << elapsedMs(Start) << "}\n";
  Err.flush();
  return S;
}
