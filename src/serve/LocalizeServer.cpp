//===- LocalizeServer.cpp - Batch/daemon localization service -------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Self-healing pool protocol (docs/SERVE.md, "Failure semantics"): each
// worker thread runs workerBody; an exception escaping it -- a crashed
// request, an injected queue-pop fault -- is caught at the thread
// boundary, a death note naming the in-flight request (if any) goes to
// the monitor thread, and the thread exits. The monitor joins the corpse,
// respawns the slot, and hands the replacement the in-flight request with
// an incremented attempt count: bounded retries under exponential
// backoff, the last attempt under a degraded budget, and an error
// response with code `worker-crashed` when every attempt dies. Response
// emission is idempotent per request index (OrderedEmitter), and outcome
// tallying is once per request (Request::Tallied), so no crash/retry
// interleaving can lose, duplicate, or double-count a response.
//
//===----------------------------------------------------------------------===//

#include "serve/LocalizeServer.h"

#include "cnf/DimacsReader.h"
#include "core/Pipeline.h"
#include "maxsat/Portfolio.h"
#include "programs/Tcas.h"
#include "programs/TcasMutants.h"
#include "serve/FormulaCache.h"
#include "serve/Json.h"
#include "serve/OrderedEmitter.h"
#include "serve/RequestQueue.h"
#include "support/FileUtil.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>
#include <vector>

using namespace bugassist;

namespace {

using Clock = std::chrono::steady_clock;

/// The process-global drain request: SIGINT/SIGTERM handlers (installed
/// by the CLI) set it via LocalizeServer::requestDrain, run() clears it
/// on entry and polls it at every stage boundary.
std::atomic<bool> DrainFlag{false};

/// Degraded budget for the final retry of a crash-looping request: enough
/// conflicts to finish any well-behaved query, small enough that a
/// pathological one comes back `incomplete` instead of crashing forever.
constexpr uint64_t DegradedMaxConflicts = 200000;

uint64_t elapsedMs(Clock::time_point Start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            Start)
          .count());
}

// --- requests ----------------------------------------------------------------

enum class Cmd { Localize, Repair, MaxSat, Sat };

const char *cmdName(Cmd C) {
  switch (C) {
  case Cmd::Localize: return "localize";
  case Cmd::Repair:   return "repair";
  case Cmd::MaxSat:   return "maxsat";
  case Cmd::Sat:      return "sat";
  }
  return "unknown";
}

/// One request line, decoded. Invalid lines never become one of these --
/// the reader answers them directly.
struct Request {
  std::string Id;
  Cmd Command = Cmd::Localize;

  // localize / repair: resolved program text + the per-query pipeline
  // request (repair reads the shared Entry/Unroll/Encode/Localize/
  // CheckObligations fields out of Pipeline).
  std::string Source;
  PipelineRequest Pipeline;
  bool Json = false;

  // repair: failing inputs with per-test goldens + Algorithm 2 knobs
  // (only the mutation/budget members of RepairOpts are request-settable;
  // CandidateLines/Unroll/Localize are overwritten by the pipeline).
  std::vector<InputVector> RepairInputs;
  std::vector<int64_t> RepairGoldens;
  RepairOptions RepairOpts;

  // maxsat / sat: resolved DIMACS text + output options.
  std::string Dimacs;
  std::string Engine = "auto";
  bool Model = true;

  // Per-request resource budget (every command).
  double TimeoutSeconds = 0;
  uint64_t MaxConflicts = 0;
  uint64_t MaxMemoryMb = 0;

  /// Set by the first attempt to record this request's outcome in the
  /// summary counters; retries of a crashed worker re-compute the
  /// response (emission is idempotent) but must not re-count it.
  mutable std::atomic<bool> Tallied{false};

  bool hasBudget() const {
    return TimeoutSeconds > 0 || MaxConflicts > 0 || MaxMemoryMb > 0;
  }
  Solver::Budget solverBudget() const {
    Solver::Budget B;
    B.MaxConflicts = MaxConflicts;
    B.MaxArenaBytes = MaxMemoryMb << 20;
    if (TimeoutSeconds > 0)
      B.setDeadlineIn(TimeoutSeconds);
    return B;
  }
};

/// Field-level validators. Each returns false with \p Error set; the
/// messages quote the field name so a typo is findable in the batch.
bool wantString(const JsonValue &V, const char *Name, std::string &Out,
                std::string &Error) {
  if (!V.isString()) {
    Error = std::string("field '") + Name + "' must be a string";
    return false;
  }
  Out = V.Text;
  return true;
}

bool wantBool(const JsonValue &V, const char *Name, bool &Out,
              std::string &Error) {
  if (!V.isBool()) {
    Error = std::string("field '") + Name + "' must be a boolean";
    return false;
  }
  Out = V.BoolVal;
  return true;
}

bool wantInt(const JsonValue &V, const char *Name, int64_t Min, int64_t Max,
             int64_t &Out, std::string &Error) {
  auto I = V.asInt64();
  if (!I || *I < Min || *I > Max) {
    Error = std::string("field '") + Name + "' must be an integer in [" +
            std::to_string(Min) + ", " + std::to_string(Max) + "]";
    return false;
  }
  Out = *I;
  return true;
}

/// Decodes one request object. \p Req.Id is always usable afterwards (the
/// explicit id when one parsed, else the 1-based request number), so even
/// rejected requests get an addressable error response. \p Code
/// classifies the rejection (BadRequest unless a finer code applies).
bool parseRequest(const JsonValue &Root, size_t Index, Request &Req,
                  std::string &Error, ErrorCode &Code) {
  Code = ErrorCode::BadRequest;
  Req.Id = std::to_string(Index + 1);
  if (!Root.isObject()) {
    Error = "request must be a JSON object";
    return false;
  }
  if (const JsonValue *Id = Root.find("id")) {
    if (!wantString(*Id, "id", Req.Id, Error))
      return false;
  }
  const JsonValue *CmdV = Root.find("cmd");
  std::string CmdStr;
  if (!CmdV || !wantString(*CmdV, "cmd", CmdStr, Error)) {
    if (Error.empty())
      Error = "missing required field 'cmd'";
    return false;
  }
  if (CmdStr == "localize")
    Req.Command = Cmd::Localize;
  else if (CmdStr == "repair")
    Req.Command = Cmd::Repair;
  else if (CmdStr == "maxsat")
    Req.Command = Cmd::MaxSat;
  else if (CmdStr == "sat")
    Req.Command = Cmd::Sat;
  else {
    Error = "field 'cmd' must be \"localize\", \"repair\", \"maxsat\", or "
            "\"sat\"";
    return false;
  }
  // Program-shaped commands share the source/encoding/localize fields.
  const bool Prog =
      Req.Command == Cmd::Localize || Req.Command == Cmd::Repair;

  int ProgramSources = 0; // source/file/tcas (localize), wcnf/cnf/file
  for (const auto &[Key, Val] : Root.Members) {
    int64_t N = 0;
    if (Key == "id" || Key == "cmd") {
      // handled above
    } else if (Key == "timeout") {
      auto D = Val.asDouble();
      // Same bounds as the CLI's --timeout: anything over 1e9 seconds is
      // a typo, not a deadline.
      if (!D || !(*D > 0) || *D > 1e9) {
        Error = "field 'timeout' must be a positive number of seconds";
        return false;
      }
      Req.TimeoutSeconds = *D;
    } else if (Key == "max_conflicts") {
      if (!wantInt(Val, "max_conflicts", 1, INT64_MAX, N, Error))
        return false;
      Req.MaxConflicts = static_cast<uint64_t>(N);
    } else if (Key == "max_memory_mb") {
      // Capped so MaxMemoryMb << 20 cannot overflow uint64_t.
      if (!wantInt(Val, "max_memory_mb", 1, 1ll << 30, N, Error))
        return false;
      Req.MaxMemoryMb = static_cast<uint64_t>(N);
    } else if (Prog && Key == "source") {
      if (!wantString(Val, "source", Req.Source, Error))
        return false;
      ++ProgramSources;
    } else if (Prog && Key == "tcas") {
      if (!wantInt(Val, "tcas", 0, 41, N, Error))
        return false;
      Req.Source = N == 0 ? tcasSource()
                          : tcasMutants()[static_cast<size_t>(N - 1)].Source;
      ++ProgramSources;
    } else if (Key == "file") {
      std::string Path;
      if (!wantString(Val, "file", Path, Error))
        return false;
      auto Text = readFileToString(Path);
      if (!Text) {
        Error = "cannot read file '" + Path + "'";
        Code = ErrorCode::FileUnreadable;
        return false;
      }
      (Prog ? Req.Source : Req.Dimacs) =
          std::move(*Text);
      ++ProgramSources;
    } else if (Prog && Key == "entry") {
      if (!wantString(Val, "entry", Req.Pipeline.Entry, Error))
        return false;
    } else if (Req.Command == Cmd::Localize && Key == "input") {
      std::string Text, ParseError;
      if (!wantString(Val, "input", Text, Error))
        return false;
      auto In = parseInputVector(Text, ParseError);
      if (!In) {
        Error = "bad 'input': " + ParseError;
        return false;
      }
      Req.Pipeline.Input = std::move(*In);
    } else if (Req.Command == Cmd::Localize && Key == "golden") {
      if (!wantInt(Val, "golden", INT64_MIN, INT64_MAX, N, Error))
        return false;
      Req.Pipeline.GoldenReturn = N;
    } else if (Prog && Key == "check_obligations") {
      if (!wantBool(Val, "check_obligations", Req.Pipeline.CheckObligations,
                    Error))
        return false;
    } else if (Prog && Key == "bounds") {
      if (!wantBool(Val, "bounds", Req.Pipeline.Unroll.CheckArrayBounds,
                    Error))
        return false;
    } else if (Prog && Key == "unwind") {
      if (!wantInt(Val, "unwind", 1, 1000000, N, Error))
        return false;
      Req.Pipeline.Unroll.MaxLoopUnwind = static_cast<int>(N);
    } else if (Prog && Key == "bitwidth") {
      if (!wantInt(Val, "bitwidth", 1, 64, N, Error))
        return false;
      Req.Pipeline.Unroll.BitWidth = static_cast<int>(N);
    } else if (Prog && Key == "hard_lines") {
      std::string Spec;
      if (!wantString(Val, "hard_lines", Spec, Error))
        return false;
      if (!parseHardLinesSpec(Spec, Req.Pipeline.Unroll.HardLines)) {
        Error = "bad 'hard_lines' spec '" + Spec + "'";
        return false;
      }
    } else if (Prog && Key == "max_diagnoses") {
      if (!wantInt(Val, "max_diagnoses", 1, INT64_MAX, N, Error))
        return false;
      Req.Pipeline.Localize.MaxDiagnoses = static_cast<size_t>(N);
    } else if (Prog && Key == "weighted") {
      if (!wantBool(Val, "weighted", Req.Pipeline.Localize.Weighted, Error))
        return false;
    } else if (Prog && Key == "json") {
      if (!wantBool(Val, "json", Req.Json, Error))
        return false;
    } else if (Req.Command == Cmd::Repair && Key == "inputs") {
      if (Val.K != JsonValue::Kind::Array) {
        Error = "field 'inputs' must be an array of input strings";
        return false;
      }
      for (const JsonValue &E : Val.Elements) {
        std::string Text, ParseError;
        if (!wantString(E, "inputs", Text, Error))
          return false;
        auto In = parseInputVector(Text, ParseError);
        if (!In) {
          Error = "bad 'inputs' entry: " + ParseError;
          return false;
        }
        Req.RepairInputs.push_back(std::move(*In));
      }
    } else if (Req.Command == Cmd::Repair && Key == "goldens") {
      if (Val.K != JsonValue::Kind::Array) {
        Error = "field 'goldens' must be an array of integers";
        return false;
      }
      for (const JsonValue &E : Val.Elements) {
        if (!wantInt(E, "goldens", INT64_MIN, INT64_MAX, N, Error))
          return false;
        Req.RepairGoldens.push_back(N);
      }
    } else if (Req.Command == Cmd::Repair && Key == "off_by_one") {
      if (!wantBool(Val, "off_by_one", Req.RepairOpts.OffByOne, Error))
        return false;
    } else if (Req.Command == Cmd::Repair && Key == "op_swap") {
      if (!wantBool(Val, "op_swap", Req.RepairOpts.OperatorSwap, Error))
        return false;
    } else if (Req.Command == Cmd::Repair && Key == "prescreen") {
      if (!wantBool(Val, "prescreen", Req.RepairOpts.PrescreenLines, Error))
        return false;
    } else if (Req.Command == Cmd::Repair && Key == "max_candidates") {
      if (!wantInt(Val, "max_candidates", 1, INT64_MAX, N, Error))
        return false;
      Req.RepairOpts.MaxCandidates = static_cast<size_t>(N);
    } else if (Req.Command == Cmd::Repair && Key == "verify_budget") {
      if (!wantInt(Val, "verify_budget", 0, INT64_MAX, N, Error))
        return false;
      Req.RepairOpts.VerifyBudget = static_cast<uint64_t>(N);
    } else if (Req.Command == Cmd::MaxSat && Key == "wcnf") {
      if (!wantString(Val, "wcnf", Req.Dimacs, Error))
        return false;
      ++ProgramSources;
    } else if (Req.Command == Cmd::Sat && Key == "cnf") {
      if (!wantString(Val, "cnf", Req.Dimacs, Error))
        return false;
      ++ProgramSources;
    } else if (Req.Command == Cmd::MaxSat && Key == "engine") {
      if (!wantString(Val, "engine", Req.Engine, Error))
        return false;
      if (Req.Engine != "auto" && Req.Engine != "fumalik" &&
          Req.Engine != "linear") {
        Error = "field 'engine' must be \"auto\", \"fumalik\", or "
                "\"linear\"";
        return false;
      }
    } else if (!Prog && Key == "model") {
      if (!wantBool(Val, "model", Req.Model, Error))
        return false;
    } else {
      // Strict by design: an unknown (or wrong-command) field is a typo
      // the user wants to hear about, not silently-ignored noise.
      Error = "unknown field '" + Key + "' for cmd \"" + CmdStr + "\"";
      return false;
    }
  }

  const char *Wanted = Prog ? "'source', 'file', or 'tcas'"
                            : Req.Command == Cmd::MaxSat ? "'wcnf' or 'file'"
                                                         : "'cnf' or 'file'";
  if (ProgramSources == 0) {
    Error = std::string("missing program: give exactly one of ") + Wanted;
    return false;
  }
  if (ProgramSources > 1) {
    Error = std::string("conflicting program fields: give exactly one of ") +
            Wanted;
    return false;
  }
  if (Req.Command == Cmd::Repair) {
    if (Req.RepairInputs.empty()) {
      Error = "repair requires a non-empty 'inputs' array";
      return false;
    }
    if (!Req.RepairGoldens.empty() &&
        Req.RepairGoldens.size() != Req.RepairInputs.size()) {
      Error = "'goldens' must match 'inputs' in length";
      return false;
    }
  }
  return true;
}

// --- responses ---------------------------------------------------------------

/// Everything the stats trailer line carries.
struct ResponseStats {
  uint64_t ElapsedMs = 0;
  uint64_t SatCalls = 0;
  SolverStats Search;
};

/// One fully framed response: header line, body bytes, stats trailer line.
std::string frameResponse(const std::string &Id, const char *CmdStr,
                          const char *Status, int Exit, ErrorCode Code,
                          const char *Cache, const std::string &ErrorMsg,
                          const std::string &Body,
                          const ResponseStats &St) {
  std::string Out = "{\"id\":\"" + jsonEscape(Id) + "\",\"cmd\":\"" + CmdStr +
                    "\",\"status\":\"" + Status +
                    "\",\"exit\":" + std::to_string(Exit) +
                    ",\"code\":\"" + errorCodeName(Code) + "\"";
  if (Cache)
    Out += std::string(",\"cache\":\"") + Cache + "\"";
  if (!ErrorMsg.empty())
    Out += ",\"error\":\"" + jsonEscape(ErrorMsg) + "\"";
  Out += ",\"bytes\":" + std::to_string(Body.size()) + "}\n";
  Out += Body;
  Out += "{\"id\":\"" + jsonEscape(Id) +
         "\",\"elapsed_ms\":" + std::to_string(St.ElapsedMs) +
         ",\"sat_calls\":" + std::to_string(St.SatCalls) +
         ",\"conflicts\":" + std::to_string(St.Search.Conflicts) +
         ",\"decisions\":" + std::to_string(St.Search.Decisions) +
         ",\"propagations\":" + std::to_string(St.Search.Propagations) +
         ",\"restarts\":" + std::to_string(St.Search.Restarts) +
         ",\"vars_eliminated\":" + std::to_string(St.Search.VarsEliminated) +
         ",\"clauses_subsumed\":" + std::to_string(St.Search.ClausesSubsumed) +
         ",\"lits_self_subsumed\":" +
         std::to_string(St.Search.LitsSelfSubsumed) +
         ",\"reconstruction_bytes\":" +
         std::to_string(St.Search.ReconstructBytes) + "}\n";
  return Out;
}

/// MaxSAT-Evaluation model line; mirrors the CLI's printModelLine.
void appendModelLine(std::string &Out, const std::vector<LBool> &Model,
                     int NumVars, bool TrailingZero) {
  Out += "v";
  for (int V = 0; V < NumVars; ++V) {
    Out += ' ';
    if (Model[V] != LBool::True)
      Out += '-';
    Out += std::to_string(V + 1);
  }
  if (TrailingZero)
    Out += " 0";
  Out += '\n';
}

/// A computed response plus its summary classification. The class is
/// applied to the counters exactly once per request (Request::Tallied),
/// no matter how many crash retries re-compute the response.
struct Outcome {
  std::string Frame;
  enum Class : char { Ok = 'o', Incomplete = 'i', Error = 'e',
                      Cancelled = 'c' } Kind = Error;
};

Outcome respondError(const Request &Req, ErrorCode Code,
                     const std::string &Message, const char *Cache = nullptr,
                     uint64_t ElapsedMs = 0) {
  ResponseStats St;
  St.ElapsedMs = ElapsedMs;
  return {frameResponse(Req.Id, cmdName(Req.Command), "error",
                        /*Exit=*/1, Code, Cache, Message, "", St),
          Outcome::Error};
}

// --- in-flight registry ------------------------------------------------------

/// Per-worker registry of the solver answering the in-flight request,
/// with its watchdog deadline. The watchdog thread and the drain sweep
/// call interrupt() under the same mutex the worker uses to register /
/// clear, so an interrupt can never land on a destroyed solver.
class FlightTable {
public:
  explicit FlightTable(size_t Workers)
      : Solvers(Workers, nullptr), Deadline(Workers), HasDeadline(Workers, 0) {
  }

  void set(size_t W, Solver *S, double WatchdogSeconds) {
    std::lock_guard<std::mutex> Lock(Mu);
    Solvers[W] = S;
    HasDeadline[W] = WatchdogSeconds > 0;
    if (WatchdogSeconds > 0)
      Deadline[W] = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(
                                           WatchdogSeconds));
  }

  void clear(size_t W) {
    std::lock_guard<std::mutex> Lock(Mu);
    Solvers[W] = nullptr;
  }

  /// Drain: interrupt every in-flight solve.
  void interruptAll() {
    std::lock_guard<std::mutex> Lock(Mu);
    for (Solver *S : Solvers)
      if (S)
        S->interrupt();
  }

  /// Watchdog tick: interrupt solves past their deadline. \returns how
  /// many were escalated (the summary does not report it; tests can).
  size_t interruptOverdue() {
    std::lock_guard<std::mutex> Lock(Mu);
    Clock::time_point Now = Clock::now();
    size_t N = 0;
    for (size_t W = 0; W < Solvers.size(); ++W)
      if (Solvers[W] && HasDeadline[W] && Now >= Deadline[W]) {
        Solvers[W]->interrupt();
        ++N;
      }
    return N;
  }

private:
  std::mutex Mu;
  std::vector<Solver *> Solvers;
  std::vector<Clock::time_point> Deadline;
  std::vector<char> HasDeadline;
};

/// RAII registration of one request's solver in the flight table.
struct FlightGuard {
  FlightGuard(FlightTable &Table, size_t W, Solver *S, double WatchdogSeconds)
      : Table(Table), W(W) {
    Table.set(W, S, WatchdogSeconds);
  }
  ~FlightGuard() { Table.clear(W); }
  FlightTable &Table;
  size_t W;
};

/// What a worker needs besides the request itself.
struct WorkerCtx {
  size_t Worker = 0;
  FlightTable *Flights = nullptr;
  double WatchdogSeconds = 0;
  /// Final retry of a crash-looping request: clamp the conflict budget so
  /// the attempt ends in `incomplete` rather than another crash-and-burn
  /// cycle. Budgets never change *what* is computed, only how far, so a
  /// degraded attempt that completes is still byte-identical.
  bool Degraded = false;

  uint64_t degradedConflicts(uint64_t Requested) const {
    if (!Degraded)
      return Requested;
    return Requested ? std::min(Requested, DegradedMaxConflicts)
                     : DegradedMaxConflicts;
  }
};

// --- per-command processing --------------------------------------------------

Outcome processLocalize(const Request &Req, FormulaCache &Cache,
                        const WorkerCtx &Ctx) {
  auto Start = Clock::now();
  bool Hit = false;
  const CachedProgram &CP =
      Cache.lookup(Req.Source, Req.Pipeline.Entry, Req.Pipeline.Unroll,
                   Req.Pipeline.Encode, &Hit);
  const char *CacheStr = Hit ? "hit" : "miss";
  if (!CP.prepared())
    return respondError(Req, ErrorCode::CompileError,
                        "program does not compile: " + CP.error(), CacheStr,
                        elapsedMs(Start));

  PipelineRequest R = Req.Pipeline;
  R.Localize.TimeoutSeconds = Req.TimeoutSeconds;
  R.Localize.MaxConflicts = Ctx.degradedConflicts(Req.MaxConflicts);
  R.Localize.MaxMemoryMb = Req.MaxMemoryMb;

  // The encode-once fast path: a clone of the cached base session, primed
  // with TF1 + the soft selectors, completed per-test inside the pipeline.
  // cloneSession can only return nullptr for engines without clone(), and
  // the pipeline then transparently builds a session from scratch.
  std::unique_ptr<MaxSatSession> Session =
      CP.cloneSession(R.Localize.Weighted);
  std::optional<FlightGuard> Flight;
  if (Session && Ctx.Flights)
    Flight.emplace(*Ctx.Flights, Ctx.Worker, &Session->solver(),
                   Ctx.WatchdogSeconds);
  PipelineResult Res = runLocalizePipeline(*CP.prepared(), R, Session.get());
  Flight.reset();

  if (Res.Status == PipelineStatus::InputNotFailing)
    return respondError(Req, Res.Code, "nothing to localize: " + Res.Message,
                        CacheStr, elapsedMs(Start));

  // Localized or NoCounterexample: the body is the one-shot CLI's stdout,
  // byte for byte.
  std::string Body = renderLocalizeOutput(Res, Req.Json);
  bool Incomplete = Res.Report.Incomplete;
  ResponseStats St;
  St.ElapsedMs = elapsedMs(Start);
  St.SatCalls = Res.Report.SatCalls;
  St.Search = Res.Report.Search;
  return {frameResponse(Req.Id, cmdName(Req.Command),
                        Incomplete ? "incomplete" : "ok", Incomplete ? 2 : 0,
                        Res.Code, CacheStr, "", Body, St),
          Incomplete ? Outcome::Incomplete : Outcome::Ok};
}

Outcome processRepair(const Request &Req, FormulaCache &Cache,
                      const WorkerCtx &Ctx) {
  auto Start = Clock::now();
  bool Hit = false;
  const CachedProgram &CP =
      Cache.lookup(Req.Source, Req.Pipeline.Entry, Req.Pipeline.Unroll,
                   Req.Pipeline.Encode, &Hit);
  const char *CacheStr = Hit ? "hit" : "miss";
  if (!CP.prepared())
    return respondError(Req, ErrorCode::CompileError,
                        "program does not compile: " + CP.error(), CacheStr,
                        elapsedMs(Start));

  RepairRequest R;
  R.Entry = Req.Pipeline.Entry;
  R.Unroll = Req.Pipeline.Unroll;
  R.Encode = Req.Pipeline.Encode;
  R.CheckObligations = Req.Pipeline.CheckObligations;
  R.Localize = Req.Pipeline.Localize;
  R.Localize.TimeoutSeconds = Req.TimeoutSeconds;
  R.Localize.MaxConflicts = Ctx.degradedConflicts(Req.MaxConflicts);
  R.Localize.MaxMemoryMb = Req.MaxMemoryMb;
  R.Inputs = Req.RepairInputs;
  R.Goldens = Req.RepairGoldens;
  R.Repair = Req.RepairOpts;

  // Same encode-once fast path as localize: the cached base session
  // serves the localization stage; candidate verification solvers are
  // internal to repairProgram and bounded by verify_budget, so the
  // watchdog rides the localization solve only.
  std::unique_ptr<MaxSatSession> Session =
      CP.cloneSession(R.Localize.Weighted);
  std::optional<FlightGuard> Flight;
  if (Session && Ctx.Flights)
    Flight.emplace(*Ctx.Flights, Ctx.Worker, &Session->solver(),
                   Ctx.WatchdogSeconds);
  RepairPipelineResult Res =
      runRepairPipeline(*CP.prepared(), R, Session.get());
  Flight.reset();

  if (Res.Status != PipelineStatus::Localized)
    return respondError(Req, Res.Code, "nothing to repair: " + Res.Message,
                        CacheStr, elapsedMs(Start));

  // The body is the one-shot CLI's stdout, byte for byte.
  std::string Body = renderRepairOutput(Res, Req.Json);
  bool Incomplete = Res.Code == ErrorCode::BudgetExhausted;
  ResponseStats St;
  St.ElapsedMs = elapsedMs(Start);
  St.SatCalls = Res.Report.SatCalls + Res.Repair.Stats.PrescreenSatCalls;
  St.Search = Res.Report.Search;
  return {frameResponse(Req.Id, cmdName(Req.Command),
                        Incomplete ? "incomplete" : "ok", Incomplete ? 2 : 0,
                        Res.Code, CacheStr, "", Body, St),
          Incomplete ? Outcome::Incomplete : Outcome::Ok};
}

Outcome processMaxSat(const Request &Req, const WorkerCtx &Ctx) {
  auto Start = Clock::now();
  DimacsParseError Err;
  auto Parsed = parseDimacs(Req.Dimacs, Err);
  if (!Parsed)
    return respondError(Req, ErrorCode::BadDimacs, "bad wcnf: " + Err.render(),
                        nullptr, elapsedMs(Start));

  bool AnyWeight = false;
  MaxSatInstance Inst = toMaxSatInstance(std::move(*Parsed), &AnyWeight);
  // Engine dispatch matches the CLI: Fu-Malik ignores weights, so weighted
  // instances force linear search unless fumalik was explicitly requested.
  bool Weighted =
      Req.Engine == "linear" || (Req.Engine == "auto" && AnyWeight);
  std::unique_ptr<MaxSatSession> Session =
      makeMaxSatSession(Inst, Weighted, /*ConflictBudget=*/0,
                        Solver::Options(), /*Canonical=*/true);
  Solver::Budget B = Req.solverBudget();
  B.MaxConflicts = Ctx.degradedConflicts(B.MaxConflicts);
  if (Req.hasBudget() || Ctx.Degraded)
    Session->setBudget(B);
  std::optional<FlightGuard> Flight;
  if (Ctx.Flights)
    Flight.emplace(*Ctx.Flights, Ctx.Worker, &Session->solver(),
                   Ctx.WatchdogSeconds);
  MaxSatResult R = Session->solve();
  Flight.reset();

  // The CLI's o/s/v lines with the `c` comment lines removed.
  std::string Body;
  switch (R.Status) {
  case MaxSatStatus::Optimum:
    Body = "o " + std::to_string(R.Cost) + "\ns OPTIMUM FOUND\n";
    if (Req.Model)
      appendModelLine(Body, R.Model, Inst.NumVars, /*TrailingZero=*/false);
    break;
  case MaxSatStatus::HardUnsat:
    Body = "s UNSATISFIABLE\n";
    break;
  case MaxSatStatus::Unknown:
    if (R.UpperBound != UINT64_MAX) {
      Body = "o " + std::to_string(R.UpperBound) + "\ns UNKNOWN\n";
      if (Req.Model && !R.BestModel.empty())
        appendModelLine(Body, R.BestModel, Inst.NumVars,
                        /*TrailingZero=*/false);
    } else {
      Body = "s UNKNOWN\n";
    }
    break;
  }
  bool Incomplete = R.Status == MaxSatStatus::Unknown;
  ResponseStats St;
  St.ElapsedMs = elapsedMs(Start);
  St.SatCalls = R.SatCalls;
  St.Search = R.Search;
  return {frameResponse(Req.Id, cmdName(Req.Command),
                        Incomplete ? "incomplete" : "ok", Incomplete ? 2 : 0,
                        Incomplete ? ErrorCode::BudgetExhausted
                                   : ErrorCode::Ok,
                        nullptr, "", Body, St),
          Incomplete ? Outcome::Incomplete : Outcome::Ok};
}

Outcome processSat(const Request &Req, const WorkerCtx &Ctx) {
  auto Start = Clock::now();
  DimacsParseError Err;
  auto Parsed = parseDimacs(Req.Dimacs, Err);
  if (!Parsed)
    return respondError(Req, ErrorCode::BadDimacs, "bad cnf: " + Err.render(),
                        nullptr, elapsedMs(Start));

  // WCNF soft clauses are decided as hard, as the sat CLI does (which
  // warns on a `c` line; serve bodies carry no comment lines).
  std::vector<Clause> Clauses = std::move(Parsed->Hard);
  for (DimacsSoftClause &C : Parsed->Soft)
    Clauses.push_back(std::move(C.Lits));

  // The raced solvers are internal to racePortfolioSat, so the watchdog
  // cannot reach them via the flight table; its deadline rides in as a
  // budget deadline instead, which the solver polls at the same cadence
  // as the interrupt flag.
  Solver::Budget B = Req.solverBudget();
  B.MaxConflicts = Ctx.degradedConflicts(B.MaxConflicts);
  if (Ctx.WatchdogSeconds > 0 && Req.TimeoutSeconds <= 0)
    B.setDeadlineIn(Ctx.WatchdogSeconds);
  SatRaceResult R =
      racePortfolioSat(Clauses, Parsed->NumVars, /*Threads=*/1,
                       Solver::Options(), B);
  std::string Body;
  if (R.Result == LBool::True)
    Body = "s SATISFIABLE\n";
  else if (R.Result == LBool::False)
    Body = "s UNSATISFIABLE\n";
  else
    Body = "s UNKNOWN\n";
  if (Req.Model && R.Result == LBool::True)
    appendModelLine(Body, R.Model, Parsed->NumVars, /*TrailingZero=*/true);

  bool Incomplete = R.Result == LBool::Undef;
  ResponseStats St;
  St.ElapsedMs = elapsedMs(Start);
  St.SatCalls = 1;
  St.Search = R.Aggregate;
  return {frameResponse(Req.Id, cmdName(Req.Command),
                        Incomplete ? "incomplete" : "ok", Incomplete ? 2 : 0,
                        Incomplete ? ErrorCode::BudgetExhausted
                                   : ErrorCode::Ok,
                        nullptr, "", Body, St),
          Incomplete ? Outcome::Incomplete : Outcome::Ok};
}

Outcome processRequest(const Request &Req, FormulaCache &Cache,
                       const WorkerCtx &Ctx) {
  switch (Req.Command) {
  case Cmd::Localize:
    return processLocalize(Req, Cache, Ctx);
  case Cmd::Repair:
    return processRepair(Req, Cache, Ctx);
  case Cmd::MaxSat:
    return processMaxSat(Req, Ctx);
  case Cmd::Sat:
    return processSat(Req, Ctx);
  }
  return respondError(Req, ErrorCode::Internal, "unreachable");
}

/// Per-response outcome counters shared by the workers.
struct Tally {
  std::atomic<uint64_t> Ok{0};
  std::atomic<uint64_t> Incomplete{0};
  std::atomic<uint64_t> Errors{0};
  std::atomic<uint64_t> Cancelled{0};

  void count(Outcome::Class K) {
    switch (K) {
    case Outcome::Ok:         ++Ok; break;
    case Outcome::Incomplete: ++Incomplete; break;
    case Outcome::Error:      ++Errors; break;
    case Outcome::Cancelled:  ++Cancelled; break;
    }
  }
};

/// A worker's death note to the monitor: which pool slot died, and which
/// request (if any) was in flight at what attempt number.
struct DeathNote {
  size_t Slot = 0;
  bool Clean = false; ///< normal exit (queue drained), not a crash
  bool HasIndex = false;
  size_t Index = 0;
  int Attempt = 0;
  std::string What; ///< exception text, for the final error response
};

} // namespace

void LocalizeServer::requestDrain() {
  DrainFlag.store(true, std::memory_order_relaxed);
}

bool LocalizeServer::drainRequested() {
  return DrainFlag.load(std::memory_order_relaxed);
}

ServeSummary LocalizeServer::run(std::istream &In, std::ostream &Out,
                                 std::ostream &Err) {
  auto Start = Clock::now();
  DrainFlag.store(false, std::memory_order_relaxed);
  size_t Threads = Opts.Threads ? Opts.Threads : 1;

  FormulaCache Cache;
  RequestQueue Queue(Threads);
  OrderedEmitter Emitter(Out);
  Tally T;
  FlightTable Flights(Threads);
  std::atomic<uint64_t> Respawns{0}, Retries{0};

  // Request slots live here; the queue carries indexes. The mutex covers
  // only the vector itself (push_back can reallocate under a reader) --
  // each Request is immutable once enqueued (Tallied aside, which is
  // atomic).
  std::mutex SlotsMu;
  std::vector<std::unique_ptr<Request>> Slots;
  auto slot = [&](size_t Index) -> const Request & {
    std::lock_guard<std::mutex> Lock(SlotsMu);
    return *Slots[Index];
  };

  // Tally exactly once per request, then emit (emission is idempotent, so
  // the order does not matter for the stream, only for the counters).
  auto tally = [&](const Request &Req, Outcome::Class K) {
    if (!Req.Tallied.exchange(true, std::memory_order_relaxed))
      T.count(K);
  };
  auto tallyAndEmit = [&](size_t Index, const Request &Req, Outcome O) {
    tally(Req, O.Kind);
    Emitter.emit(Index, std::move(O.Frame));
  };
  // Emission from the reader and monitor threads must never throw: emit()
  // records the payload before writing a byte, so after a failure -- a
  // real OOM, an injected flush fault -- the response is already recorded
  // and the next emit or the final flushReady() writes it. Workers
  // deliberately do NOT go through this: an emit-time crash there is a
  // worker death, contained and retried by the pool protocol.
  auto emitNoThrow = [&](size_t Index, std::string Frame) {
    try {
      Emitter.emit(Index, std::move(Frame));
    } catch (...) {
    }
  };

  // One request attempt on worker W. Throws = this worker dies.
  auto handle = [&](size_t W, size_t Index, int Attempt) {
    const Request &Req = slot(Index);
    if (DrainFlag.load(std::memory_order_relaxed)) {
      // Accepted but drained before any work started: answer `cancelled`
      // so the client still gets exactly one response for the id.
      ResponseStats St;
      tallyAndEmit(Index, Req,
                   {frameResponse(Req.Id, cmdName(Req.Command), "cancelled",
                                  /*Exit=*/2, ErrorCode::Cancelled, nullptr,
                                  "request drained before execution", "", St),
                    Outcome::Cancelled});
      return;
    }
    WorkerCtx Ctx;
    Ctx.Worker = W;
    Ctx.Flights = &Flights;
    Ctx.WatchdogSeconds = Opts.WatchdogSeconds;
    Ctx.Degraded = Attempt > 0 && Attempt >= Opts.MaxRetries;
    Outcome O = processRequest(Req, Cache, Ctx);
    tallyAndEmit(Index, Req, std::move(O));
  };

  // Death notes flow from dying workers to the monitor thread.
  std::mutex NotesMu;
  std::condition_variable NotesCv;
  std::deque<DeathNote> Notes;
  auto postNote = [&](DeathNote N) {
    {
      std::lock_guard<std::mutex> Lock(NotesMu);
      Notes.push_back(std::move(N));
    }
    NotesCv.notify_one();
  };

  // The worker thread body. Resume carries a dead predecessor's in-flight
  // request into the respawned thread: it is re-run first (at its bumped
  // attempt count), then the worker joins the ordinary pop loop.
  auto workerBody = [&](size_t W, bool Resume, size_t ResumeIndex,
                        int ResumeAttempt) {
    bool InFlight = false;
    size_t Cur = 0;
    int Attempt = 0;
    try {
      if (Resume) {
        InFlight = true;
        Cur = ResumeIndex;
        Attempt = ResumeAttempt;
        handle(W, Cur, Attempt);
        InFlight = false;
      }
      for (;;) {
        InFlight = false;
        size_t Index;
        // pop() itself can be a crash site (injected queue-pop faults);
        // it throws *before* dequeuing, so no request is lost with the
        // worker -- whoever pops next (usually the respawn) gets it.
        if (!Queue.pop(W, Index))
          break;
        InFlight = true;
        Cur = Index;
        Attempt = 0;
        handle(W, Cur, 0);
      }
      postNote({W, /*Clean=*/true, false, 0, 0, ""});
    } catch (const std::exception &E) {
      Flights.clear(W); // belt and braces; FlightGuard normally did this
      postNote({W, false, InFlight, Cur, Attempt, E.what()});
    } catch (...) {
      Flights.clear(W);
      postNote({W, false, InFlight, Cur, Attempt, "unknown exception"});
    }
  };

  std::vector<std::thread> Pool(Threads);
  for (size_t W = 0; W < Threads; ++W)
    Pool[W] = std::thread(workerBody, W, false, size_t{0}, 0);

  // The monitor: joins dead workers, emits the final error when a request
  // exhausted its retries, and respawns the slot. Exits once every slot
  // has posted a clean (queue-drained) exit.
  std::atomic<bool> PoolDone{false};
  std::thread Monitor([&] {
    size_t Remaining = Threads;
    while (Remaining > 0) {
      DeathNote N;
      {
        std::unique_lock<std::mutex> Lock(NotesMu);
        NotesCv.wait(Lock, [&] { return !Notes.empty(); });
        N = std::move(Notes.front());
        Notes.pop_front();
      }
      if (N.Clean) {
        --Remaining;
        continue;
      }
      // The dead thread posted its note as its final act; join reclaims
      // it, then the slot is respawned -- the pool never shrinks.
      Pool[N.Slot].join();
      ++Respawns;
      bool Resume = N.HasIndex;
      int NextAttempt = N.Attempt + 1;
      if (Resume && NextAttempt > Opts.MaxRetries) {
        // Every attempt crashed: answer the request with a structured
        // error so it is not lost, and respawn the worker fresh.
        const Request &Req = slot(N.Index);
        Outcome O = respondError(Req, ErrorCode::WorkerCrashed,
                                 "worker crashed on every attempt: " + N.What);
        tally(Req, O.Kind);
        emitNoThrow(N.Index, std::move(O.Frame));
        Resume = false;
      } else if (Resume) {
        ++Retries;
        // Exponential backoff before the retry: transient conditions
        // (memory pressure, a fault campaign burst) get time to pass.
        double Ms = Opts.RetryBackoffMs;
        for (int K = 1; K < NextAttempt; ++K)
          Ms *= 2;
        Ms = std::min(Ms, 1000.0);
        if (Ms > 0)
          std::this_thread::sleep_for(std::chrono::duration<double,
                                                            std::milli>(Ms));
      }
      Pool[N.Slot] = std::thread(workerBody, N.Slot, Resume, N.Index,
                                 Resume ? NextAttempt : 0);
    }
    PoolDone.store(true, std::memory_order_relaxed);
  });

  // The watchdog: escalates past-deadline queries via Solver::interrupt()
  // so a stuck solve frees its worker as an `incomplete` response instead
  // of holding its response slot forever.
  std::mutex WdMu;
  std::condition_variable WdCv;
  bool WdStop = false;
  std::thread Watchdog;
  if (Opts.WatchdogSeconds > 0)
    Watchdog = std::thread([&] {
      std::unique_lock<std::mutex> Lock(WdMu);
      while (!WdCv.wait_for(Lock, std::chrono::milliseconds(20),
                            [&] { return WdStop; })) {
        Flights.interruptOverdue();
        if (DrainFlag.load(std::memory_order_relaxed))
          Flights.interruptAll();
      }
    });

  // Reader loop (this thread): one JSON object per line; blank lines are
  // ignored. A line that fails to parse or validate is answered with an
  // error response in its slot -- the daemon survives and later requests
  // are unaffected. A drain request stops intake between lines (and the
  // CLI installs its signal handlers without SA_RESTART, so a daemon
  // blocked in getline on stdin is kicked out by the signal itself).
  size_t NumRequests = 0;
  std::string Line;
  while (!DrainFlag.load(std::memory_order_relaxed) &&
         std::getline(In, Line)) {
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    size_t Index = NumRequests++;
    auto Req = std::make_unique<Request>();
    std::string Error;
    ErrorCode Code = ErrorCode::BadRequest;
    bool ParsedOk = false;
    std::optional<JsonValue> Root;
    try {
      Root = parseJson(Line, Error);
      if (!Root) {
        Error = "bad JSON: " + Error;
        Req->Id = std::to_string(Index + 1);
      } else {
        ParsedOk = parseRequest(*Root, Index, *Req, Error, Code);
      }
    } catch (const std::exception &E) {
      // An exception out of parsing (an injected fault, a real OOM on a
      // huge line) must not kill intake: answer the line and move on.
      Error = std::string("internal error parsing request: ") + E.what();
      Code = ErrorCode::Internal;
      if (Req->Id.empty())
        Req->Id = std::to_string(Index + 1);
      ParsedOk = false;
    }
    if (!ParsedOk) {
      // Malformed request: answered inline (ordering still holds -- the
      // emitter serializes), with cmd "unknown" unless a valid cmd parsed.
      std::string CmdText = "unknown";
      if (Root)
        if (const JsonValue *C = Root->find("cmd"))
          if (C->isString() && (C->Text == "localize" ||
                                C->Text == "repair" ||
                                C->Text == "maxsat" || C->Text == "sat"))
            CmdText = C->Text;
      ++T.Errors;
      ResponseStats St;
      emitNoThrow(Index, frameResponse(Req->Id, CmdText.c_str(), "error",
                                       /*Exit=*/1, Code, nullptr, Error, "",
                                       St));
      continue;
    }
    {
      std::lock_guard<std::mutex> Lock(SlotsMu);
      if (Slots.size() <= Index)
        Slots.resize(Index + 1);
      Slots[Index] = std::move(Req);
    }
    Queue.push(Index);
  }
  bool Drained = DrainFlag.load(std::memory_order_relaxed);
  Queue.close();
  // Drain: keep interrupting in-flight solves until the pool is done, so
  // a request that registered its solver between sweeps is still caught.
  // Queued-not-started requests answer themselves `cancelled` in handle().
  while (Drained && !PoolDone.load(std::memory_order_relaxed)) {
    Flights.interruptAll();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Monitor.join();
  for (std::thread &Worker : Pool)
    if (Worker.joinable())
      Worker.join();
  if (Watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> Lock(WdMu);
      WdStop = true;
    }
    WdCv.notify_one();
    Watchdog.join();
  }
  // A worker that died between recording its response and flushing it
  // leaves the payload stranded in the emitter; write whatever became
  // contiguous so every accepted request's response reaches the stream.
  Emitter.flushReady();

  ServeSummary S;
  S.Requests = NumRequests;
  S.Ok = T.Ok;
  S.Incomplete = T.Incomplete;
  S.Errors = T.Errors;
  S.Cancelled = T.Cancelled;
  FormulaCacheStats CS = Cache.stats();
  S.CacheHits = CS.Hits;
  S.CacheMisses = CS.Misses;
  S.Respawns = Respawns;
  S.Retries = Retries;
  S.Drained = Drained;
  S.ExitCode = S.Errors ? 1 : (S.Incomplete || S.Cancelled) ? 2 : 0;

  Err << "{\"requests\":" << S.Requests << ",\"ok\":" << S.Ok
      << ",\"incomplete\":" << S.Incomplete << ",\"errors\":" << S.Errors
      << ",\"cancelled\":" << S.Cancelled
      << ",\"cache_hits\":" << S.CacheHits
      << ",\"cache_misses\":" << S.CacheMisses
      << ",\"respawns\":" << S.Respawns << ",\"retries\":" << S.Retries
      << ",\"drained\":" << (S.Drained ? "true" : "false")
      << ",\"threads\":" << Threads << ",\"elapsed_ms\":" << elapsedMs(Start)
      << "}\n";
  Err.flush();
  return S;
}
