//===- OrderedEmitter.cpp - Request-order response emission -----------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/OrderedEmitter.h"

#include "support/FaultInject.h"

#include <ostream>
#include <stdexcept>

using namespace bugassist;

void OrderedEmitter::emit(size_t Index, std::string Payload) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Index < Next)
    return; // already written: a retry of a worker that died post-flush
  Pending.emplace(Index, std::move(Payload)); // first payload wins
  // Test-only fault hook (one relaxed load when disarmed), fired after
  // the payload is recorded but before any byte is written: a worker
  // killed here strands a fully recorded response, which the retry's
  // emit() or the server's final flushReady() then writes -- the
  // exactly-once, no-partial-frame property the emitter tests pin down.
  if (faultinject::active() &&
      faultinject::onEvent(faultinject::Event::EmitterFlush))
    throw std::runtime_error("injected emitter-flush fault");
  flushLocked();
}

void OrderedEmitter::flushReady() {
  std::lock_guard<std::mutex> Lock(Mu);
  flushLocked();
}

void OrderedEmitter::flushLocked() {
  bool Wrote = false;
  while (!Pending.empty() && Pending.begin()->first == Next) {
    const std::string &Payload = Pending.begin()->second;
    Out.write(Payload.data(),
              static_cast<std::streamsize>(Payload.size()));
    Pending.erase(Pending.begin());
    ++Next;
    Wrote = true;
  }
  if (Wrote)
    Out.flush();
}

size_t OrderedEmitter::written() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Next;
}

size_t OrderedEmitter::pending() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Pending.size();
}
