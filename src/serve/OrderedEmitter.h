//===- OrderedEmitter.h - Request-order response emission -------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The emission half of the serve pool (docs/ARCHITECTURE.md, "Serve
/// mode"): responses are computed out of order by the workers but written
/// in request order. A worker submits its finished response under the
/// emitter's lock and whoever holds the next index flushes the contiguous
/// run -- no dedicated writer thread, and a daemon client sees each
/// response the moment its turn arrives.
///
/// Crash safety (docs/SERVE.md, "Failure semantics"): emit() is
/// *idempotent per index*. A worker that dies between computing a
/// response and completing the flush is respawned and re-runs its
/// request; the retry's emit() finds the index already recorded (or
/// already written) and the first payload wins, so a response is written
/// exactly once no matter how many times its worker crashed around it.
/// Writes happen under the same lock as recording, each payload in one
/// write() call, so a dying writer can never leave a partial frame
/// interleaved with another response.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SERVE_ORDEREDEMITTER_H
#define BUGASSIST_SERVE_ORDEREDEMITTER_H

#include <cstddef>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

namespace bugassist {

class OrderedEmitter {
public:
  explicit OrderedEmitter(std::ostream &Out) : Out(Out) {}

  /// Records \p Payload for request \p Index and flushes the contiguous
  /// run starting at the next unwritten index, if this submission
  /// completed one. Idempotent per index: re-submissions (a crashed
  /// worker's retry) are dropped, the first payload wins.
  void emit(size_t Index, std::string Payload);

  /// Flushes whatever contiguous run is ready without submitting
  /// anything. run() calls this after the pool drains so a payload
  /// stranded by a worker that died mid-flush (recorded but not yet
  /// written) still reaches the stream.
  void flushReady();

  /// Responses fully written so far (== the next index awaited).
  size_t written() const;

  /// Responses recorded but stalled behind a missing earlier index.
  size_t pending() const;

private:
  void flushLocked();

  mutable std::mutex Mu;
  std::ostream &Out;
  size_t Next = 0;
  std::map<size_t, std::string> Pending;
};

} // namespace bugassist

#endif // BUGASSIST_SERVE_ORDEREDEMITTER_H
