//===- FormulaCache.cpp - Encode-once program cache for serve -------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/FormulaCache.h"

#include "support/FaultInject.h"

#include <stdexcept>

using namespace bugassist;

namespace {

/// Length-prefixed field framing: no concatenation of two distinct key
/// tuples can produce the same string.
void putStr(std::string &Out, std::string_view S) {
  Out += std::to_string(S.size());
  Out += ':';
  Out += S;
  Out += ';';
}

void putInt(std::string &Out, int64_t V) { putStr(Out, std::to_string(V)); }

void putBool(std::string &Out, bool B) { Out += B ? "T;" : "F;"; }

} // namespace

std::string bugassist::serializeCacheKey(const std::string &Source,
                                         const std::string &Entry,
                                         const UnrollOptions &U,
                                         const EncodeOptions &E) {
  std::string Key;
  putStr(Key, Entry);
  putInt(Key, U.MaxLoopUnwind);
  putInt(Key, static_cast<int64_t>(U.LoopUnwindByLine.size()));
  for (const auto &[Line, Bound] : U.LoopUnwindByLine) {
    putInt(Key, Line);
    putInt(Key, Bound);
  }
  putInt(Key, U.MaxInlineDepth);
  putInt(Key, U.BitWidth);
  putBool(Key, U.CheckArrayBounds);
  putInt(Key, static_cast<int64_t>(U.TrustedFunctions.size()));
  for (const std::string &F : U.TrustedFunctions)
    putStr(Key, F);
  putInt(Key, static_cast<int64_t>(U.HardLines.size()));
  for (uint32_t L : U.HardLines)
    putInt(Key, L);
  putBool(Key, U.ConcreteInputs.has_value());
  if (U.ConcreteInputs) {
    putInt(Key, static_cast<int64_t>(U.ConcreteInputs->size()));
    for (const InputValue &V : *U.ConcreteInputs) {
      putBool(Key, V.IsArray);
      if (V.IsArray) {
        putInt(Key, static_cast<int64_t>(V.Array.size()));
        for (int64_t X : V.Array)
          putInt(Key, X);
      } else {
        putInt(Key, V.Scalar);
      }
    }
  }
  putInt(Key, E.BitWidth);
  putBool(Key, E.PerIterationGroups);
  putInt(Key, static_cast<int64_t>(E.BaseWeight));
  putBool(Key, E.ConcretizeTrusted);
  putBool(Key, E.GroupPerDefinition);
  putStr(Key, Source);
  return Key;
}

std::unique_ptr<MaxSatSession>
CachedProgram::cloneSession(bool Weighted) const {
  const TraceFormula &TF = Prepared->Driver->formula();
  std::lock_guard<std::mutex> Lock(BaseMu);
  std::unique_ptr<MaxSatSession> &B = Base[Weighted ? 1 : 0];
  if (!B) {
    B = makeMaxSatSession(TF.sharedInstance(), Weighted,
                          /*ConflictBudget=*/0, Solver::Options(),
                          /*Canonical=*/true);
    // Preprocess the shared base once; clones inherit the shrunken clause
    // database (and the eliminated-variable reconstruction stack) via the
    // member-wise Solver copy, so per-request solves skip the pass. The
    // test-interface variables are frozen by sharedInstance, so the
    // per-test unit clauses added to clones stay legal.
    //
    // If the pass throws (an injected OOM, a real one), the half-built
    // session must not stay behind: a later same-key request would clone
    // a base whose clause database is mid-preprocess. Drop it so the next
    // request rebuilds from scratch.
    try {
      B->solver().preprocess();
    } catch (...) {
      B.reset();
      throw;
    }
  }
  return B->clone();
}

const CachedProgram &FormulaCache::lookup(const std::string &Source,
                                          const std::string &Entry,
                                          const UnrollOptions &Unroll,
                                          const EncodeOptions &Encode,
                                          bool *WasHit) {
  std::string Key = serializeCacheKey(Source, Entry, Unroll, Encode);
  CachedProgram *P;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    std::unique_ptr<CachedProgram> &Slot = Map[std::move(Key)];
    bool Hit = static_cast<bool>(Slot);
    if (Hit) {
      ++Hits;
    } else {
      ++Misses;
      Slot = std::make_unique<CachedProgram>();
    }
    if (WasHit)
      *WasHit = Hit;
    P = Slot.get();
  }
  // Build outside the map lock so a slow encode does not serialize
  // lookups of *other* keys; same-key requesters block here until the
  // one build completes. A build that *throws* (the CacheFill fault
  // below, a real OOM in the encoder) leaves the once_flag unset, so the
  // next same-key request re-runs the build cleanly -- entries are never
  // poisoned by a half-finished fill.
  std::call_once(P->Built, [&] {
    // Test-only fault hook (one relaxed load when disarmed).
    if (faultinject::active() &&
        faultinject::onEvent(faultinject::Event::CacheFill))
      throw std::runtime_error("injected cache-fill fault");
    P->Prepared = prepareProgram(Source, Entry, Unroll, Encode, P->Error);
  });
  return *P;
}

FormulaCacheStats FormulaCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return {Hits, Misses};
}
