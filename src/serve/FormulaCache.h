//===- FormulaCache.h - Encode-once program cache for serve -----*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "one encoding, many queries" half of serve mode (docs/SERVE.md,
/// "Formula cache"). Every localize request resolves its program through
/// this cache: the key is the exact source text plus every option that
/// shapes the trace formula (entry, UnrollOptions, EncodeOptions), the
/// value is the PreparedProgram (parse + sema + unroll + encode, done
/// exactly once) together with lazily built *base* MaxSAT sessions -- one
/// per engine -- over TraceFormula::sharedInstance(). A base session is
/// never solved; queries clone() it and add their per-test clauses, so the
/// cost of loading TF1 into a solver is also paid once per formula.
///
/// Concurrency: lookups from any number of pool workers are safe. The
/// first thread to request a key builds the entry under a per-entry
/// std::call_once; concurrent requesters of the same key block until it is
/// ready (encoding still happens exactly once -- the invariant the tests
/// assert via the miss counter). Base sessions are built under a per-entry
/// mutex on first use and are immutable afterwards, so concurrent clone()
/// calls need no further locking.
///
/// Keys hash with FNV-1a for bucket placement but compare by the full
/// serialized key, so a hash collision costs a probe, never a wrong
/// answer.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SERVE_FORMULACACHE_H
#define BUGASSIST_SERVE_FORMULACACHE_H

#include "core/Pipeline.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace bugassist {

/// One cached program. Exactly one of Prepared / Error is meaningful:
/// compile errors are cached too (a batch that repeats a broken program
/// re-parses it zero times, same as a working one).
class CachedProgram {
public:
  /// The prepared program, or nullptr when the source did not compile.
  const PreparedProgram *prepared() const { return Prepared.get(); }
  /// Rendered diagnostics when prepared() is nullptr.
  const std::string &error() const { return Error; }

  /// A fresh session for one query: a clone of the per-engine base session
  /// (built on first use). \returns nullptr only when the engine does not
  /// support cloning -- the caller then falls back to the fresh-session
  /// path inside runLocalizePipeline, which is always correct, just not
  /// load-once. Requires prepared() != nullptr.
  std::unique_ptr<MaxSatSession> cloneSession(bool Weighted) const;

private:
  friend class FormulaCache;

  std::once_flag Built;
  std::unique_ptr<PreparedProgram> Prepared;
  std::string Error;

  /// Base sessions indexed by Weighted, built lazily under BaseMu and
  /// immutable afterwards (cloned, never solved).
  mutable std::mutex BaseMu;
  mutable std::unique_ptr<MaxSatSession> Base[2];
};

/// Statistics snapshot: Misses counts cache entries *built* (== programs
/// parsed/encoded since the cache was created), Hits counts lookups that
/// found an existing entry. Lookups == Hits + Misses.
struct FormulaCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

class FormulaCache {
public:
  /// Resolves (\p Source, \p Entry, \p Unroll, \p Encode) to its cached
  /// program, building it on first request. \p WasHit (optional) receives
  /// this lookup's outcome -- what the serve response header reports.
  /// Check CachedProgram::prepared() for compile failures. Thread-safe.
  const CachedProgram &lookup(const std::string &Source,
                              const std::string &Entry,
                              const UnrollOptions &Unroll,
                              const EncodeOptions &Encode,
                              bool *WasHit = nullptr);

  /// Current counters (racy snapshot while lookups are in flight; exact
  /// once the pool has drained).
  FormulaCacheStats stats() const;

private:
  /// FNV-1a over the serialized key: cheap, deterministic across runs, and
  /// collisions only cost an equality probe on the full key.
  struct FnvHash {
    size_t operator()(const std::string &S) const {
      uint64_t H = 1469598103934665603ull;
      for (unsigned char C : S) {
        H ^= C;
        H *= 1099511628211ull;
      }
      return static_cast<size_t>(H);
    }
  };

  mutable std::mutex Mu;
  /// Serialized key -> entry. unique_ptr keeps CachedProgram addresses
  /// stable across rehashes (lookup returns references).
  std::unordered_map<std::string, std::unique_ptr<CachedProgram>, FnvHash> Map;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// The cache key serialization (exposed for tests): every field of
/// UnrollOptions and EncodeOptions, the entry name, and the source text,
/// length-prefixed so no two distinct keys collide as strings.
std::string serializeCacheKey(const std::string &Source,
                              const std::string &Entry,
                              const UnrollOptions &Unroll,
                              const EncodeOptions &Encode);

} // namespace bugassist

#endif // BUGASSIST_SERVE_FORMULACACHE_H
