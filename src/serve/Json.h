//===- Json.h - Minimal strict JSON for the serve protocol ------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tiny JSON layer behind the serve wire protocol (docs/SERVE.md): a
/// strict recursive-descent parser for one value, plus the string escaper
/// the response writer uses. Strictness is deliberate -- a request line
/// with trailing garbage, a duplicate key, or a malformed escape is
/// rejected with a diagnostic instead of being half-understood, and the
/// server turns that into an `error` response without dying.
///
/// Deliberately minimal: no DOM mutation, no serialization of arbitrary
/// values (responses are assembled by hand, their shape is fixed), numbers
/// carry their raw token so 64-bit integers round-trip exactly.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SERVE_JSON_H
#define BUGASSIST_SERVE_JSON_H

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bugassist {

/// One parsed JSON value. Members keep source order; lookup is linear
/// (request objects have a dozen keys at most).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Object, Array };
  Kind K = Kind::Null;

  bool BoolVal = false;
  /// Numbers: the raw token (e.g. "-12", "0.5"); asInt64/asDouble parse
  /// it on demand so integers beyond 2^53 survive.
  std::string Text; ///< String payload, or the raw Number token.
  std::vector<std::pair<std::string, JsonValue>> Members; ///< Object
  std::vector<JsonValue> Elements;                        ///< Array

  bool isObject() const { return K == Kind::Object; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }
  bool isBool() const { return K == Kind::Bool; }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue *find(std::string_view Name) const;

  /// The number as int64. \returns std::nullopt for non-numbers and for
  /// tokens that are not exactly a 64-bit integer (fractions, overflow).
  std::optional<int64_t> asInt64() const;
  /// The number as double; std::nullopt for non-numbers.
  std::optional<double> asDouble() const;
};

/// Parses exactly one JSON value covering all of \p Text (surrounding
/// whitespace allowed). \returns std::nullopt and fills \p Error on any
/// deviation: trailing garbage, duplicate object keys, bad escapes,
/// unterminated strings, numbers JSON does not allow.
std::optional<JsonValue> parseJson(std::string_view Text, std::string &Error);

/// Escapes \p S for inclusion inside a JSON string literal (quotes not
/// included): `"` `\` and control characters, everything else verbatim.
std::string jsonEscape(std::string_view S);

} // namespace bugassist

#endif // BUGASSIST_SERVE_JSON_H
