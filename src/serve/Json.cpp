//===- Json.cpp - Minimal strict JSON for the serve protocol --------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"

#include "support/FaultInject.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace bugassist;

const JsonValue *JsonValue::find(std::string_view Name) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Key, Val] : Members)
    if (Key == Name)
      return &Val;
  return nullptr;
}

std::optional<int64_t> JsonValue::asInt64() const {
  if (K != Kind::Number)
    return std::nullopt;
  char *End = nullptr;
  errno = 0;
  long long V = std::strtoll(Text.c_str(), &End, 10);
  if (End != Text.c_str() + Text.size() || errno == ERANGE)
    return std::nullopt; // fractional, exponent form, or out of range
  return static_cast<int64_t>(V);
}

std::optional<double> JsonValue::asDouble() const {
  if (K != Kind::Number)
    return std::nullopt;
  char *End = nullptr;
  errno = 0;
  double V = std::strtod(Text.c_str(), &End);
  if (End != Text.c_str() + Text.size() || errno == ERANGE)
    return std::nullopt;
  return V;
}

namespace {

/// Strict single-pass parser. Positions are byte offsets into the input;
/// errors carry them so a bad request line is diagnosable.
class Parser {
public:
  Parser(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  std::optional<JsonValue> run() {
    skipWs();
    JsonValue V;
    if (!parseValue(V))
      return std::nullopt;
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing characters after the JSON value");
      return std::nullopt;
    }
    return V;
  }

private:
  std::string_view Text;
  std::string &Error;
  size_t Pos = 0;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = "byte " + std::to_string(Pos) + ": " + Msg;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool parseValue(JsonValue &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Text);
    case 't':
      if (!literal("true"))
        return fail("bad literal");
      Out.K = JsonValue::Kind::Bool;
      Out.BoolVal = true;
      return true;
    case 'f':
      if (!literal("false"))
        return fail("bad literal");
      Out.K = JsonValue::Kind::Bool;
      Out.BoolVal = false;
      return true;
    case 'n':
      if (!literal("null"))
        return fail("bad literal");
      Out.K = JsonValue::Kind::Null;
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected '\"' to start an object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      for (const auto &[Existing, Unused] : Out.Members)
        if (Existing == Key)
          return fail("duplicate object key \"" + Key + "\"");
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipWs();
      JsonValue Val;
      if (!parseValue(Val))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(Val));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      JsonValue Val;
      if (!parseValue(Val))
        return false;
      Out.Elements.push_back(std::move(Val));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  /// Appends \p Code as UTF-8.
  static void appendUtf8(std::string &Out, uint32_t Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool parseHex4(uint32_t &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos + I];
      uint32_t D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = C - 'a' + 10;
      else if (C >= 'A' && C <= 'F')
        D = C - 'A' + 10;
      else
        return fail("bad hex digit in \\u escape");
      Out = (Out << 4) | D;
    }
    Pos += 4;
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      unsigned char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      ++Pos;
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':  Out += '"';  break;
      case '\\': Out += '\\'; break;
      case '/':  Out += '/';  break;
      case 'b':  Out += '\b'; break;
      case 'f':  Out += '\f'; break;
      case 'n':  Out += '\n'; break;
      case 'r':  Out += '\r'; break;
      case 't':  Out += '\t'; break;
      case 'u': {
        uint32_t Code;
        if (!parseHex4(Code))
          return false;
        // Surrogate pair: a high surrogate must be followed by \uDC00..
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          if (Pos + 1 < Text.size() && Text[Pos] == '\\' &&
              Text[Pos + 1] == 'u') {
            Pos += 2;
            uint32_t Low;
            if (!parseHex4(Low))
              return false;
            if (Low < 0xDC00 || Low > 0xDFFF)
              return fail("bad low surrogate in \\u escape");
            Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
          } else {
            return fail("lone high surrogate in \\u escape");
          }
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return fail("lone low surrogate in \\u escape");
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    // Integer part: one digit, or a nonzero digit followed by more.
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("bad JSON value");
    if (Text[Pos] == '0') {
      ++Pos;
    } else {
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("digit required after decimal point");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("digit required in exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    Out.K = JsonValue::Kind::Number;
    Out.Text.assign(Text.substr(Start, Pos - Start));
    return true;
  }
};

} // namespace

std::optional<JsonValue> bugassist::parseJson(std::string_view Text,
                                              std::string &Error) {
  Error.clear();
  // Test-only fault hook (one relaxed load when disarmed): Interrupt
  // simulates a transient parse failure (the serve reader answers it as a
  // malformed line and lives on), BadAlloc escapes to the caller.
  if (faultinject::active() &&
      faultinject::onEvent(faultinject::Event::JsonParse)) {
    Error = "injected parse fault";
    return std::nullopt;
  }
  return Parser(Text, Error).run();
}

std::string bugassist::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\b': Out += "\\b";  break;
    case '\f': Out += "\\f";  break;
    case '\n': Out += "\\n";  break;
    case '\r': Out += "\\r";  break;
    case '\t': Out += "\\t";  break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}
