//===- LocalizeServer.h - Batch/daemon localization service -----*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived batch driver behind `bugassist serve` (docs/SERVE.md is
/// the wire-format reference, docs/ARCHITECTURE.md the design rationale).
/// One LocalizeServer::run() call reads JSON-lines requests (localize /
/// maxsat / sat, each with optional per-request budgets) from a stream
/// until EOF, answers them on a work-stealing pool of Threads workers, and
/// writes framed responses -- header line, verbatim body bytes, stats
/// trailer line -- to the output stream *in request order*. The same call
/// serves both front-ends: `--batch FILE` hands it an ifstream, the daemon
/// loop hands it stdin.
///
/// Per the determinism contract, a localize body is byte-identical to the
/// stdout of the equivalent one-shot `bugassist localize` run, at every
/// pool width: programs resolve through the encode-once FormulaCache,
/// queries run on clone()s of the cached base session, and the canonical
/// reports depend only on the formula. A maxsat/sat body equals the
/// one-shot stdout with the `c` comment lines removed.
///
/// Failure isolation: a malformed request line, an uncompilable program,
/// or an exhausted per-request budget produces an `error` / `incomplete`
/// response for that id and nothing else -- the pool, the cache, and the
/// remaining requests are unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SERVE_LOCALIZESERVER_H
#define BUGASSIST_SERVE_LOCALIZESERVER_H

#include <cstdint>
#include <iosfwd>
#include <string>

namespace bugassist {

struct ServeOptions {
  /// Pool width: workers answering requests concurrently. Output bytes do
  /// not depend on it; wall-clock does.
  size_t Threads = 1;
};

/// What one run() produced, mirrored by the JSON summary record written to
/// the error stream.
struct ServeSummary {
  uint64_t Requests = 0;
  uint64_t Ok = 0;         ///< status "ok"
  uint64_t Incomplete = 0; ///< status "incomplete" (budget exhausted)
  uint64_t Errors = 0;     ///< status "error"
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0; ///< == programs parsed + encoded
  /// Process exit code: 1 when any request errored, else 2 when any was
  /// budget-limited, else 0 (docs/SERVE.md, "Exit codes").
  int ExitCode = 0;
};

class LocalizeServer {
public:
  explicit LocalizeServer(const ServeOptions &Opts) : Opts(Opts) {}

  /// Serves \p In to EOF. Responses go to \p Out in request order (each
  /// flushed as soon as it is next, so a daemon sees answers as they
  /// complete); the one-line JSON summary goes to \p Err. Reentrant per
  /// server: each call builds its own cache and pool.
  ServeSummary run(std::istream &In, std::ostream &Out, std::ostream &Err);

private:
  ServeOptions Opts;
};

} // namespace bugassist

#endif // BUGASSIST_SERVE_LOCALIZESERVER_H
