//===- LocalizeServer.h - Batch/daemon localization service -----*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived batch driver behind `bugassist serve` (docs/SERVE.md is
/// the wire-format reference, docs/ARCHITECTURE.md the design rationale).
/// One LocalizeServer::run() call reads JSON-lines requests (localize /
/// maxsat / sat, each with optional per-request budgets) from a stream
/// until EOF, answers them on a work-stealing pool of Threads workers, and
/// writes framed responses -- header line, verbatim body bytes, stats
/// trailer line -- to the output stream *in request order*. The same call
/// serves both front-ends: `--batch FILE` hands it an ifstream, the daemon
/// loop hands it stdin.
///
/// Per the determinism contract, a localize body is byte-identical to the
/// stdout of the equivalent one-shot `bugassist localize` run, at every
/// pool width: programs resolve through the encode-once FormulaCache,
/// queries run on clone()s of the cached base session, and the canonical
/// reports depend only on the formula. A maxsat/sat body equals the
/// one-shot stdout with the `c` comment lines removed.
///
/// Failure semantics (docs/SERVE.md has the full contract): a malformed
/// request line, an uncompilable program, or an exhausted per-request
/// budget produces an `error` / `incomplete` response for that id and
/// nothing else. A worker thread lost to an escaped exception (a real
/// OOM, an injected fault) is detected at the thread boundary and
/// respawned; its in-flight request is re-run with bounded retries under
/// exponential backoff, the last attempt under a degraded budget, and a
/// request that crashes every attempt gets a `worker-crashed` error
/// response -- the pool never shrinks and no accepted request goes
/// unanswered. A watchdog (WatchdogSeconds) escalates past-deadline
/// queries via Solver::interrupt(). requestDrain() -- wired to
/// SIGINT/SIGTERM by the CLI -- stops intake, interrupts in-flight work,
/// answers still-queued requests with `cancelled`, and flushes the
/// emitter so every accepted request still gets exactly one well-formed
/// response.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_SERVE_LOCALIZESERVER_H
#define BUGASSIST_SERVE_LOCALIZESERVER_H

#include <cstdint>
#include <iosfwd>
#include <string>

namespace bugassist {

struct ServeOptions {
  /// Pool width: workers answering requests concurrently. Output bytes do
  /// not depend on it; wall-clock does.
  size_t Threads = 1;
  /// Crash retries per request: a request whose worker dies is re-run up
  /// to this many times (the final retry under a degraded budget) before
  /// it is answered with a `worker-crashed` error. Retried queries stay
  /// byte-identical -- they clone the same cached base session. 0 turns
  /// retry off (a crashed request errors immediately; the worker still
  /// respawns).
  int MaxRetries = 2;
  /// Base of the exponential backoff between retries, in milliseconds
  /// (attempt k sleeps Base * 2^(k-1) ms).
  double RetryBackoffMs = 5.0;
  /// Per-request wall deadline enforced by the watchdog thread: a query
  /// running longer is interrupted via Solver::interrupt() and comes back
  /// `incomplete`, freeing its worker. 0 disables the watchdog.
  double WatchdogSeconds = 0;
};

/// What one run() produced, mirrored by the JSON summary record written to
/// the error stream.
struct ServeSummary {
  uint64_t Requests = 0;
  uint64_t Ok = 0;         ///< status "ok"
  uint64_t Incomplete = 0; ///< status "incomplete" (budget exhausted)
  uint64_t Errors = 0;     ///< status "error"
  uint64_t Cancelled = 0;  ///< status "cancelled" (accepted, then drained)
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0; ///< == programs parsed + encoded
  uint64_t Respawns = 0;    ///< worker threads respawned after a crash
  uint64_t Retries = 0;     ///< request re-runs after a worker crash
  bool Drained = false;     ///< a drain request stopped intake early
  /// Process exit code: 1 when any request errored, else 2 when any was
  /// budget-limited or cancelled, else 0 (docs/SERVE.md, "Exit codes").
  int ExitCode = 0;
};

class LocalizeServer {
public:
  explicit LocalizeServer(const ServeOptions &Opts) : Opts(Opts) {}

  /// Serves \p In to EOF (or drain). Responses go to \p Out in request
  /// order (each flushed as soon as it is next, so a daemon sees answers
  /// as they complete); the one-line JSON summary goes to \p Err.
  /// Reentrant per server: each call builds its own cache and pool, and
  /// clears any stale drain request on entry.
  ServeSummary run(std::istream &In, std::ostream &Out, std::ostream &Err);

  /// Initiates a graceful drain of the (process-global) running serve
  /// loop: intake stops, in-flight solvers are interrupted, queued
  /// requests are answered `cancelled`, the emitter is flushed, and run()
  /// returns with Drained set. Async-signal-safe (one atomic store) --
  /// the CLI's SIGINT/SIGTERM handlers call exactly this.
  static void requestDrain();

  /// True once requestDrain() was called (and not yet cleared by a fresh
  /// run()).
  static bool drainRequested();

private:
  ServeOptions Opts;
};

} // namespace bugassist

#endif // BUGASSIST_SERVE_LOCALIZESERVER_H
