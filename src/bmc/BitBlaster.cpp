//===- BitBlaster.cpp - Word-level circuits to CNF ------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bmc/BitBlaster.h"

#include <cassert>

using namespace bugassist;

BitBlaster::BitBlaster(CnfFormula &F, int Width) : F(F), Width(Width) {
  assert(Width >= 2 && Width <= 62 && "unsupported word width");
  TrueL = mkLit(F.newVar());
  F.addClause(TrueL); // hard: the constant-true anchor
}

void BitBlaster::emit(Clause C) {
  if (CurGroup == NoGroup)
    F.addClause(std::move(C));
  else
    F.addGroupedClause(CurGroup, std::move(C));
}

Lit BitBlaster::freshBit() { return mkLit(F.newVar()); }

Word BitBlaster::freshWord() {
  Word W(Width);
  for (int I = 0; I < Width; ++I)
    W[I] = freshBit();
  return W;
}

Word BitBlaster::constWord(int64_t V) {
  Word W(Width);
  for (int I = 0; I < Width; ++I)
    W[I] = ((V >> I) & 1) ? TrueL : ~TrueL;
  return W;
}

bool BitBlaster::constValue(const Word &Wd, int64_t &Out) const {
  int64_t V = 0;
  for (int I = 0; I < Width; ++I) {
    if (Wd[I] == TrueL)
      V |= (1ll << I);
    else if (Wd[I] != ~TrueL)
      return false;
  }
  // Sign extend.
  if (V & (1ll << (Width - 1)))
    V |= ~((1ll << Width) - 1);
  Out = V;
  return true;
}

// --- gates ----------------------------------------------------------------------

Lit BitBlaster::mkAnd(Lit A, Lit B) {
  if (isConstFalse(A) || isConstFalse(B))
    return falseLit();
  if (isConstTrue(A))
    return B;
  if (isConstTrue(B))
    return A;
  if (A == B)
    return A;
  if (A == ~B)
    return falseLit();
  Lit O = freshBit();
  emit({~O, A});
  emit({~O, B});
  emit({O, ~A, ~B});
  return O;
}

Lit BitBlaster::mkOr(Lit A, Lit B) { return ~mkAnd(~A, ~B); }

Lit BitBlaster::mkXor(Lit A, Lit B) {
  if (isConstFalse(A))
    return B;
  if (isConstTrue(A))
    return ~B;
  if (isConstFalse(B))
    return A;
  if (isConstTrue(B))
    return ~A;
  if (A == B)
    return falseLit();
  if (A == ~B)
    return trueLit();
  Lit O = freshBit();
  emit({~O, A, B});
  emit({~O, ~A, ~B});
  emit({O, ~A, B});
  emit({O, A, ~B});
  return O;
}

Lit BitBlaster::mkMux(Lit Cond, Lit Then, Lit Else) {
  if (isConstTrue(Cond))
    return Then;
  if (isConstFalse(Cond))
    return Else;
  if (Then == Else)
    return Then;
  if (isConstTrue(Then))
    return mkOr(Cond, Else);
  if (isConstFalse(Then))
    return mkAnd(~Cond, Else);
  if (isConstTrue(Else))
    return mkOr(~Cond, Then);
  if (isConstFalse(Else))
    return mkAnd(Cond, Then);
  if (Then == ~Else)
    return mkXor(~Cond, Then); // cond ? t : ~t == ~(cond ^ t)
  Lit O = freshBit();
  emit({~Cond, ~Then, O});
  emit({~Cond, Then, ~O});
  emit({Cond, ~Else, O});
  emit({Cond, Else, ~O});
  return O;
}

Lit BitBlaster::mkAndList(const std::vector<Lit> &Ls) {
  std::vector<Lit> Useful;
  for (Lit L : Ls) {
    if (isConstFalse(L))
      return falseLit();
    if (!isConstTrue(L))
      Useful.push_back(L);
  }
  if (Useful.empty())
    return trueLit();
  if (Useful.size() == 1)
    return Useful[0];
  Lit O = freshBit();
  Clause Long{O};
  for (Lit L : Useful) {
    emit({~O, L});
    Long.push_back(~L);
  }
  emit(std::move(Long));
  return O;
}

Lit BitBlaster::mkOrList(const std::vector<Lit> &Ls) {
  std::vector<Lit> Negated;
  Negated.reserve(Ls.size());
  for (Lit L : Ls)
    Negated.push_back(~L);
  return ~mkAndList(Negated);
}

// --- arithmetic ---------------------------------------------------------------

namespace {
/// Ripple-carry addition with an initial carry, shared by add/sub/neg.
Word addWithCarry(BitBlaster &BB, const Word &A, const Word &B, Lit Carry) {
  int W = BB.width();
  Word Sum(W);
  for (int I = 0; I < W; ++I) {
    Lit AxB = BB.mkXor(A[I], B[I]);
    Sum[I] = BB.mkXor(AxB, Carry);
    if (I + 1 < W)
      Carry = BB.mkOr(BB.mkAnd(A[I], B[I]), BB.mkAnd(Carry, AxB));
  }
  return Sum;
}
} // namespace

Word BitBlaster::add(const Word &A, const Word &B) {
  return addWithCarry(*this, A, B, falseLit());
}

Word BitBlaster::sub(const Word &A, const Word &B) {
  return addWithCarry(*this, A, bitNot(B), trueLit());
}

Word BitBlaster::neg(const Word &A) {
  return addWithCarry(*this, bitNot(A), constWord(0), trueLit());
}

Word BitBlaster::bitNot(const Word &A) {
  Word R(Width);
  for (int I = 0; I < Width; ++I)
    R[I] = ~A[I];
  return R;
}

Word BitBlaster::mul(const Word &A, const Word &B) {
  Word Acc = constWord(0);
  for (int I = 0; I < Width; ++I) {
    // Partial product: B[I] ? (A << I) : 0.
    Word Partial(Width, falseLit());
    for (int J = I; J < Width; ++J)
      Partial[J] = mkAnd(B[I], A[J - I]);
    Acc = add(Acc, Partial);
  }
  return Acc;
}

void BitBlaster::divRem(const Word &A, const Word &B, Word &Quot, Word &Rem) {
  Lit SignA = A[Width - 1];
  Lit SignB = B[Width - 1];
  Word MagA = mux(SignA, neg(A), A);
  Word MagB = mux(SignB, neg(B), B);

  // Restoring division on magnitudes, MSB first.
  Word R = constWord(0);
  Word Q(Width, falseLit());
  for (int I = Width - 1; I >= 0; --I) {
    // R = (R << 1) | magA[I]
    Word Shifted(Width);
    Shifted[0] = MagA[I];
    for (int J = 1; J < Width; ++J)
      Shifted[J] = R[J - 1];
    Lit Geq = ~ult(Shifted, MagB);
    R = mux(Geq, sub(Shifted, MagB), Shifted);
    Q[I] = Geq;
  }

  Lit QNeg = mkXor(SignA, SignB);
  Word SignedQ = mux(QNeg, neg(Q), Q);
  Word SignedR = mux(SignA, neg(R), R);

  // C-aligned /0: both results are 0.
  Lit BZero = eq(B, constWord(0));
  Quot = mux(BZero, constWord(0), SignedQ);
  Rem = mux(BZero, constWord(0), SignedR);
}

// --- bitwise / shifts -------------------------------------------------------------

Word BitBlaster::bitAnd(const Word &A, const Word &B) {
  Word R(Width);
  for (int I = 0; I < Width; ++I)
    R[I] = mkAnd(A[I], B[I]);
  return R;
}

Word BitBlaster::bitOr(const Word &A, const Word &B) {
  Word R(Width);
  for (int I = 0; I < Width; ++I)
    R[I] = mkOr(A[I], B[I]);
  return R;
}

Word BitBlaster::bitXor(const Word &A, const Word &B) {
  Word R(Width);
  for (int I = 0; I < Width; ++I)
    R[I] = mkXor(A[I], B[I]);
  return R;
}

Word BitBlaster::uShiftStage(const Word &A, Lit Sel, int Amount, bool Left,
                             Lit Fill) {
  Word R(Width);
  for (int I = 0; I < Width; ++I) {
    int Src = Left ? I - Amount : I + Amount;
    Lit Shifted = (Src >= 0 && Src < Width) ? A[Src] : Fill;
    R[I] = mkMux(Sel, Shifted, A[I]);
  }
  return R;
}

Word BitBlaster::shl(const Word &A, const Word &Amount) {
  // Barrel shifter over the low bits; any high (or sign) bit set means the
  // amount is outside [0, W) and the result saturates to the fill.
  int Stages = 1;
  while ((1 << Stages) < Width)
    ++Stages;
  Word R = A;
  for (int K = 0; K < Stages; ++K)
    R = uShiftStage(R, Amount[K], 1 << K, /*Left=*/true, falseLit());
  std::vector<Lit> HighBits;
  for (int K = Stages; K < Width; ++K)
    HighBits.push_back(Amount[K]);
  Lit Over = mkOrList(HighBits);
  // Also: amounts >= W but < 2^Stages shift everything out naturally.
  return mux(Over, constWord(0), R);
}

Word BitBlaster::ashr(const Word &A, const Word &Amount) {
  Lit Sign = A[Width - 1];
  int Stages = 1;
  while ((1 << Stages) < Width)
    ++Stages;
  Word R = A;
  for (int K = 0; K < Stages; ++K)
    R = uShiftStage(R, Amount[K], 1 << K, /*Left=*/false, Sign);
  std::vector<Lit> HighBits;
  for (int K = Stages; K < Width; ++K)
    HighBits.push_back(Amount[K]);
  Lit Over = mkOrList(HighBits);
  Word Fill(Width, Sign);
  return mux(Over, Fill, R);
}

// --- comparisons --------------------------------------------------------------------

Lit BitBlaster::eq(const Word &A, const Word &B) {
  std::vector<Lit> Bits;
  Bits.reserve(Width);
  for (int I = 0; I < Width; ++I)
    Bits.push_back(~mkXor(A[I], B[I]));
  return mkAndList(Bits);
}

Lit BitBlaster::ult(const Word &A, const Word &B) {
  Lit Less = falseLit();
  for (int I = 0; I < Width; ++I) {
    Lit Diff = mkXor(A[I], B[I]);
    // If the bits differ, B's bit decides; otherwise keep the verdict from
    // the lower bits. Iterating LSB to MSB gives MSB priority.
    Less = mkMux(Diff, B[I], Less);
  }
  return Less;
}

Lit BitBlaster::slt(const Word &A, const Word &B) {
  // Flip the sign bits and compare unsigned.
  Word A2 = A, B2 = B;
  A2[Width - 1] = ~A2[Width - 1];
  B2[Width - 1] = ~B2[Width - 1];
  return ult(A2, B2);
}

Lit BitBlaster::sle(const Word &A, const Word &B) { return ~slt(B, A); }

// --- selection / assertion --------------------------------------------------------

Word BitBlaster::mux(Lit Cond, const Word &Then, const Word &Else) {
  Word R(Width);
  for (int I = 0; I < Width; ++I)
    R[I] = mkMux(Cond, Then[I], Else[I]);
  return R;
}

void BitBlaster::assertBitEqual(Lit A, Lit B) {
  if (A == B)
    return;
  if (isConstTrue(A)) {
    emit({B});
    return;
  }
  if (isConstFalse(A)) {
    emit({~B});
    return;
  }
  if (isConstTrue(B)) {
    emit({A});
    return;
  }
  if (isConstFalse(B)) {
    emit({~A});
    return;
  }
  emit({~A, B});
  emit({A, ~B});
}

void BitBlaster::assertEqual(const Word &A, const Word &B) {
  assert(A.size() == B.size() && "width mismatch");
  for (size_t I = 0; I < A.size(); ++I)
    assertBitEqual(A[I], B[I]);
}

void BitBlaster::assertTrue(Lit A) {
  if (isConstTrue(A))
    return;
  emit({A});
}
