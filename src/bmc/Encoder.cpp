//===- Encoder.cpp - Trace IR to grouped CNF ------------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bmc/Encoder.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace bugassist;

namespace {

class Encoder {
public:
  Encoder(const UnrolledProgram &UP, const EncodeOptions &Opts)
      : UP(UP), Opts(Opts) {
    EP.Blaster = std::make_unique<BitBlaster>(EP.Formula, Opts.BitWidth);
    BB = EP.Blaster.get();
  }

  EncodedProgram run();

private:
  /// Storage of an SSA symbol: ints are Words, bools single Lits.
  struct Slot {
    bool IsBool = false;
    Lit B = NullLit;
    Word W;
  };

  GroupId groupFor(const TraceDef &D);
  Slot encodeExpr(const SymExpr *E);
  Word asWord(const Slot &S) {
    assert(!S.IsBool && "expected an int value");
    return S.W;
  }
  Lit asBool(const Slot &S) {
    assert(S.IsBool && "expected a bool value");
    return S.B;
  }
  Lit boolOf(SsaId Id) { return asBool(Slots[Id]); }
  Word wordOf(SsaId Id) { return asWord(Slots[Id]); }

  const UnrolledProgram &UP;
  const EncodeOptions &Opts;
  EncodedProgram EP;
  BitBlaster *BB = nullptr;
  std::vector<Slot> Slots;
  /// (line, unwinding-or-0) -> group
  std::map<std::pair<uint32_t, uint32_t>, GroupId> Groups;
};

GroupId Encoder::groupFor(const TraceDef &D) {
  uint32_t GroupUnw = Opts.PerIterationGroups ? D.Unwinding : 0;
  // Ablation mode: a unique key per definition disables line grouping.
  uint32_t Key2 = Opts.GroupPerDefinition ? static_cast<uint32_t>(D.Def)
                                          : GroupUnw;
  auto Key = std::make_pair(D.Line, Key2);
  auto It = Groups.find(Key);
  if (It != Groups.end())
    return It->second;
  // Eq. 3 weights: alpha + eta - kappa for loop iterations; plain alpha
  // elsewhere (kappa = 0 means "not in a loop unwinding").
  uint64_t Weight = Opts.BaseWeight;
  if (Opts.PerIterationGroups && GroupUnw > 0)
    Weight = Opts.BaseWeight + UP.MaxUnwinding - GroupUnw;
  std::string Label = "line " + std::to_string(D.Line);
  if (Opts.PerIterationGroups && GroupUnw > 0)
    Label += " iter " + std::to_string(GroupUnw);
  GroupId G = EP.Formula.newGroup(D.Line, Label, Weight, GroupUnw);
  Groups[Key] = G;
  return G;
}

Encoder::Slot Encoder::encodeExpr(const SymExpr *E) {
  Slot S;
  switch (E->Kind) {
  case SymExpr::ConstInt:
    S.W = BB->constWord(E->IntVal);
    return S;
  case SymExpr::ConstBool:
    S.IsBool = true;
    S.B = E->BoolVal ? BB->trueLit() : BB->falseLit();
    return S;
  case SymExpr::Use:
    return Slots[E->Id];
  case SymExpr::Unary: {
    Slot A = encodeExpr(E->Ops[0].get());
    switch (E->UOp) {
    case UnaryOp::Neg:
      S.W = BB->neg(asWord(A));
      return S;
    case UnaryOp::BitNot:
      S.W = BB->bitNot(asWord(A));
      return S;
    case UnaryOp::LogNot:
      S.IsBool = true;
      S.B = ~asBool(A);
      return S;
    }
    return S;
  }
  case SymExpr::Binary: {
    Slot A = encodeExpr(E->Ops[0].get());
    Slot B2 = encodeExpr(E->Ops[1].get());
    switch (E->BOp) {
    case BinaryOp::Add:
      S.W = BB->add(asWord(A), asWord(B2));
      return S;
    case BinaryOp::Sub:
      S.W = BB->sub(asWord(A), asWord(B2));
      return S;
    case BinaryOp::Mul:
      S.W = BB->mul(asWord(A), asWord(B2));
      return S;
    case BinaryOp::Div: {
      Word Q, R;
      BB->divRem(asWord(A), asWord(B2), Q, R);
      S.W = Q;
      return S;
    }
    case BinaryOp::Rem: {
      Word Q, R;
      BB->divRem(asWord(A), asWord(B2), Q, R);
      S.W = R;
      return S;
    }
    case BinaryOp::Shl:
      S.W = BB->shl(asWord(A), asWord(B2));
      return S;
    case BinaryOp::Shr:
      S.W = BB->ashr(asWord(A), asWord(B2));
      return S;
    case BinaryOp::Lt:
      S.IsBool = true;
      S.B = BB->slt(asWord(A), asWord(B2));
      return S;
    case BinaryOp::Le:
      S.IsBool = true;
      S.B = BB->sle(asWord(A), asWord(B2));
      return S;
    case BinaryOp::Gt:
      S.IsBool = true;
      S.B = BB->slt(asWord(B2), asWord(A));
      return S;
    case BinaryOp::Ge:
      S.IsBool = true;
      S.B = BB->sle(asWord(B2), asWord(A));
      return S;
    case BinaryOp::Eq:
      S.IsBool = true;
      S.B = A.IsBool ? ~BB->mkXor(asBool(A), asBool(B2))
                     : BB->eq(asWord(A), asWord(B2));
      return S;
    case BinaryOp::Ne:
      S.IsBool = true;
      S.B = A.IsBool ? BB->mkXor(asBool(A), asBool(B2))
                     : ~BB->eq(asWord(A), asWord(B2));
      return S;
    case BinaryOp::BitAnd:
      S.W = BB->bitAnd(asWord(A), asWord(B2));
      return S;
    case BinaryOp::BitOr:
      S.W = BB->bitOr(asWord(A), asWord(B2));
      return S;
    case BinaryOp::BitXor:
      S.W = BB->bitXor(asWord(A), asWord(B2));
      return S;
    case BinaryOp::LogAnd:
      S.IsBool = true;
      S.B = BB->mkAnd(asBool(A), asBool(B2));
      return S;
    case BinaryOp::LogOr:
      S.IsBool = true;
      S.B = BB->mkOr(asBool(A), asBool(B2));
      return S;
    }
    return S;
  }
  case SymExpr::Ite: {
    Lit C = asBool(encodeExpr(E->Ops[0].get()));
    Slot T = encodeExpr(E->Ops[1].get());
    Slot F2 = encodeExpr(E->Ops[2].get());
    S.IsBool = T.IsBool;
    if (T.IsBool)
      S.B = BB->mkMux(C, asBool(T), asBool(F2));
    else
      S.W = BB->mux(C, asWord(T), asWord(F2));
    return S;
  }
  case SymExpr::ArrayRead: {
    // Mux chain: idx == k selects element k; out-of-range reads give 0.
    Word Idx = asWord(encodeExpr(E->Ops[0].get()));
    Word Result = BB->constWord(0);
    for (size_t K = E->Elems.size(); K-- > 0;) {
      Lit Hit = BB->eq(Idx, BB->constWord(static_cast<int64_t>(K)));
      Result = BB->mux(Hit, wordOf(E->Elems[K]), Result);
    }
    S.W = Result;
    return S;
  }
  }
  return S;
}

EncodedProgram Encoder::run() {
  Slots.resize(UP.Vars.size());

  for (const TraceDef &D : UP.Defs) {
    bool IsBool = UP.Vars[D.Def].IsBool;
    if (std::getenv("BUGASSIST_TRACE_ENCODER"))
      fprintf(stderr, "encoding def %d '%s' line %u role %d\n", D.Def,
              D.Label.c_str(), D.Line, static_cast<int>(D.Role));

    if (D.Role == DefRole::Input) {
      Slot S;
      S.IsBool = IsBool;
      if (IsBool)
        S.B = BB->freshBit();
      else
        S.W = BB->freshWord();
      Slots[D.Def] = S;
      if (IsBool)
        EP.InputWords.push_back(Word{S.B});
      else
        EP.InputWords.push_back(S.W);
      continue;
    }

    assert(D.Rhs && "non-input definition without RHS");

    // Trusted concretization (Section 6.2 "C"): replace the circuit with
    // the shadow constant. The binding stays hard: library behaviour is
    // not up for repair (Section 6.3).
    if (Opts.ConcretizeTrusted && D.Trusted && D.Shadow) {
      Slot S;
      S.IsBool = IsBool;
      if (IsBool)
        S.B = *D.Shadow ? BB->trueLit() : BB->falseLit();
      else
        S.W = BB->constWord(*D.Shadow);
      Slots[D.Def] = S;
      continue;
    }

    bool Soft = isSoftRole(D.Role) && !D.Trusted;
    GroupId G = Soft ? groupFor(D) : NoGroup;
    BB->setGroup(G);

    Slot Rhs = encodeExpr(D.Rhs.get());

    // The defined variable needs its own formula variables when soft
    // (disabling the group must leave it unconstrained) or when the RHS is
    // shared storage; fresh-variable plus equivalence is uniform and the
    // solver's simplification flattens the hard cases cheaply.
    Slot S;
    S.IsBool = IsBool;
    if (Soft) {
      if (IsBool) {
        S.B = BB->freshBit();
        BB->assertBitEqual(S.B, asBool(Rhs));
      } else {
        S.W = BB->freshWord();
        BB->assertEqual(S.W, asWord(Rhs));
      }
    } else {
      // Hard definitions can share the RHS literals directly.
      S = Rhs;
      S.IsBool = IsBool;
    }
    Slots[D.Def] = S;
    BB->setGroup(NoGroup);
  }

  // Assumptions: (guard => cond), hard.
  for (const TraceAssumption &A : UP.Assumptions) {
    Lit G = boolOf(A.Guard);
    Lit C = boolOf(A.Cond);
    if (BB->isConstTrue(G))
      BB->assertTrue(C);
    else
      EP.Formula.addClause(~G, C);
  }

  // Obligations: SpecLit <-> AND of (guard => cond).
  std::vector<Lit> Parts;
  for (const TraceObligation &O : UP.Obligations)
    Parts.push_back(BB->mkOr(~boolOf(O.Guard), boolOf(O.Cond)));
  EP.SpecLit = BB->mkAndList(Parts);

  if (UP.RetVal != NoSsa) {
    EP.RetIsBool = UP.RetIsBool;
    if (UP.RetIsBool)
      EP.RetWord = Word{boolOf(UP.RetVal)};
    else
      EP.RetWord = wordOf(UP.RetVal);
  }
  EP.Inputs = UP.Inputs;
  EP.InputShapes = UP.InputShapes;
  return std::move(EP);
}

} // namespace

EncodedProgram bugassist::encodeProgram(const UnrolledProgram &UP,
                                        const EncodeOptions &Opts) {
  Encoder E(UP, Opts);
  return E.run();
}
