//===- Encoder.h - Trace IR to grouped CNF ----------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns an UnrolledProgram into a grouped CNF formula (paper Eq. 2):
/// every soft definition's circuit lands in the clause group of its source
/// line (TF1, guarded by the group selector); the selectors themselves
/// become the soft clauses (TF2). Hard definitions, assumptions, and the
/// obligation conjunction are plain hard clauses.
///
/// Options map to the paper's extensions:
///  * PerIterationGroups + weights alpha + eta - kappa implement the loop
///    diagnosis of Section 5.2 (Eq. 3);
///  * ConcretizeTrusted replaces the circuits of trusted definitions that
///    have shadow values with constant bindings (Section 6.2's "C").
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_BMC_ENCODER_H
#define BUGASSIST_BMC_ENCODER_H

#include "bmc/BitBlaster.h"
#include "bmc/Trace.h"
#include "cnf/Cnf.h"

#include <map>
#include <memory>

namespace bugassist {

struct EncodeOptions {
  int BitWidth = 16;
  /// Group selectors per (line, unwinding) instead of per line, and weight
  /// soft groups alpha + eta - kappa (Section 5.2).
  bool PerIterationGroups = false;
  /// alpha: base weight for soft clauses in weighted mode.
  uint64_t BaseWeight = 1;
  /// Replace trusted definitions carrying shadow values with constants.
  bool ConcretizeTrusted = false;
  /// Ablation switch: give every definition its own selector instead of
  /// grouping by source line, to measure what the paper's Section 3.4
  /// clause grouping buys.
  bool GroupPerDefinition = false;
};

/// The CNF image of an unrolled program.
struct EncodedProgram {
  CnfFormula Formula;
  std::unique_ptr<BitBlaster> Blaster; // owns the true-literal anchor
  /// Input words, aligned with UnrolledProgram::Inputs (bools are 1-wide).
  std::vector<Word> InputWords;
  /// Conjunction of all obligations (guard => cond): "the spec holds".
  Lit SpecLit;
  /// Entry return value (empty for void entries; 1-wide for bool).
  Word RetWord;
  /// Stored copies of the source metadata the localizer reports.
  std::vector<TraceInput> Inputs;
  std::vector<InputShape> InputShapes;
  bool RetIsBool = false;

  /// \returns every selector literal, i.e. the paper's TF2.
  std::vector<Lit> allSelectors() const {
    std::vector<Lit> Ls;
    for (const ClauseGroup &G : Formula.groups())
      Ls.push_back(mkLit(G.Selector));
    return Ls;
  }
};

/// Encodes \p UP to CNF.
EncodedProgram encodeProgram(const UnrolledProgram &UP,
                             const EncodeOptions &Opts = {});

} // namespace bugassist

#endif // BUGASSIST_BMC_ENCODER_H
