//===- TraceFormula.cpp - Hard/soft instances per the paper ---------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bmc/TraceFormula.h"

#include "sat/Solver.h"

#include <cassert>

using namespace bugassist;

std::vector<int64_t> TraceFormula::flatten(const InputVector &Test) const {
  std::vector<int64_t> Flat;
  assert(Test.size() == EP.InputShapes.size() && "input arity mismatch");
  for (size_t I = 0; I < Test.size(); ++I) {
    const InputShape &Shape = EP.InputShapes[I];
    if (Shape.IsArray) {
      assert(Test[I].IsArray &&
             Test[I].Array.size() == static_cast<size_t>(Shape.ArraySize) &&
             "array input shape mismatch");
      for (int64_t V : Test[I].Array)
        Flat.push_back(V);
    } else {
      assert(!Test[I].IsArray && "scalar input shape mismatch");
      Flat.push_back(Shape.IsBool ? (Test[I].Scalar != 0) : Test[I].Scalar);
    }
  }
  assert(Flat.size() == EP.InputWords.size() && "flattened arity mismatch");
  return Flat;
}

std::vector<Clause> TraceFormula::bindInput(const InputVector &Test) const {
  std::vector<Clause> Binds;
  std::vector<int64_t> Flat = flatten(Test);
  for (size_t I = 0; I < Flat.size(); ++I) {
    const Word &W = EP.InputWords[I];
    for (size_t B = 0; B < W.size(); ++B) {
      bool BitSet = (Flat[I] >> B) & 1;
      Binds.push_back({BitSet ? W[B] : ~W[B]});
    }
  }
  return Binds;
}

MaxSatInstance TraceFormula::sharedInstance() const {
  MaxSatInstance Inst;
  Inst.NumVars = EP.Formula.numVars();
  Inst.Hard = EP.Formula.hardClauses();

  // Phi_S = TF2: one soft unit clause per clause group (selector),
  // weighted per group (Eq. 3 weights in loop-diagnosis mode). Selector
  // phases start at true so the search departs from the unmodified
  // program.
  for (const ClauseGroup &G : EP.Formula.groups()) {
    Inst.Soft.push_back({{mkLit(G.Selector)}, G.Weight});
    Inst.PreferTrue.push_back(G.Selector);
  }
  // The test interface arrives later (testClauses on a clone adds unit
  // clauses over these variables), so a base session preprocessed before
  // the test is bound must not eliminate them.
  for (const Word &W : EP.InputWords)
    for (Lit L : W)
      Inst.Frozen.push_back(L.var());
  if (EP.SpecLit != NullLit)
    Inst.Frozen.push_back(EP.SpecLit.var());
  for (Lit L : EP.RetWord)
    Inst.Frozen.push_back(L.var());
  return Inst;
}

std::vector<Clause> TraceFormula::testClauses(const InputVector &Test,
                                              const Spec &S) const {
  // [[test]]: the input equals the failing test (hard).
  std::vector<Clause> Hard = bindInput(Test);

  // p: the specification *holds* (hard) -- making the instance UNSAT for a
  // failing test, which is what CoMSS extraction needs.
  if (S.CheckObligations)
    Hard.push_back({EP.SpecLit});
  if (S.GoldenReturn) {
    assert(!EP.RetWord.empty() && "golden spec requires a return value");
    int64_t G = *S.GoldenReturn;
    for (size_t B = 0; B < EP.RetWord.size(); ++B) {
      bool BitSet = (G >> B) & 1;
      Hard.push_back({BitSet ? EP.RetWord[B] : ~EP.RetWord[B]});
    }
  }
  return Hard;
}

MaxSatInstance TraceFormula::localizationInstance(const InputVector &Test,
                                                  const Spec &S) const {
  MaxSatInstance Inst = sharedInstance();
  std::vector<Clause> PerTest = testClauses(Test, S);
  // Keep the historical clause order: TF1, then [[test]] /\ p, with the
  // soft selector units after NumVars -- sharedInstance already placed the
  // soft side, so only the hard suffix moves here.
  Inst.Hard.reserve(Inst.Hard.size() + PerTest.size());
  for (Clause &C : PerTest)
    Inst.Hard.push_back(std::move(C));
  return Inst;
}

std::optional<TraceFormula::EvalOutcome>
TraceFormula::evaluateTest(const InputVector &Test,
                           uint64_t ConflictBudget) const {
  Solver Solve;
  bool Ok = Solve.addFormula(EP.Formula);
  for (const ClauseGroup &G : EP.Formula.groups())
    Ok = Ok && Solve.addClause({mkLit(G.Selector)});
  if (Ok)
    for (Clause &C : bindInput(Test))
      Ok = Ok && Solve.addClause(std::move(C));

  EvalOutcome Out;
  if (!Ok)
    return Out; // infeasible: an assumption rejected the test

  if (ConflictBudget)
    Solve.setConflictBudget(ConflictBudget);
  LBool R = Solve.solve();
  if (R == LBool::Undef)
    return std::nullopt;
  if (R == LBool::False)
    return Out;

  Out.Feasible = true;
  Out.ObligationsHold = Solve.modelValue(EP.SpecLit) == LBool::True;
  if (!EP.RetWord.empty()) {
    int64_t V = 0;
    for (size_t B = 0; B < EP.RetWord.size(); ++B)
      if (Solve.modelValue(EP.RetWord[B]) == LBool::True)
        V |= (1ll << B);
    if (EP.RetWord.size() > 1 && (V & (1ll << (EP.RetWord.size() - 1))))
      V |= ~((1ll << EP.RetWord.size()) - 1);
    Out.RetValue = V;
  }
  return Out;
}

std::optional<InputVector>
TraceFormula::findCounterexample(const Spec &S, bool &Decided,
                                 uint64_t ConflictBudget) const {
  Decided = false;
  Solver Solve;
  if (!Solve.addFormula(EP.Formula))
    return std::nullopt;

  // The program as written: every selector on.
  for (const ClauseGroup &G : EP.Formula.groups())
    if (!Solve.addClause({mkLit(G.Selector)}))
      return std::nullopt;

  // not p: either an obligation fails, or the return differs from golden.
  Clause NotSpec;
  if (S.CheckObligations)
    NotSpec.push_back(~EP.SpecLit);
  if (S.GoldenReturn) {
    assert(!EP.RetWord.empty() && "golden spec requires a return value");
    int64_t G = *S.GoldenReturn;
    for (size_t B = 0; B < EP.RetWord.size(); ++B) {
      bool BitSet = (G >> B) & 1;
      NotSpec.push_back(BitSet ? ~EP.RetWord[B] : EP.RetWord[B]);
    }
  }
  if (NotSpec.empty()) {
    Decided = true; // empty spec cannot be violated
    return std::nullopt;
  }
  if (!Solve.addClause(NotSpec)) {
    Decided = true;
    return std::nullopt;
  }

  if (ConflictBudget)
    Solve.setConflictBudget(ConflictBudget);
  LBool R = Solve.solve();
  if (R == LBool::Undef)
    return std::nullopt;
  Decided = true;
  if (R == LBool::False)
    return std::nullopt;

  // Read the failing input back from the model.
  InputVector Cex;
  size_t Cursor = 0;
  auto ReadWord = [&](const Word &W) {
    int64_t V = 0;
    for (size_t B = 0; B < W.size(); ++B)
      if (Solve.modelValue(W[B]) == LBool::True)
        V |= (1ll << B);
    // Sign-extend full-width words.
    if (W.size() > 1 && (V & (1ll << (W.size() - 1))))
      V |= ~((1ll << W.size()) - 1);
    return V;
  };
  for (const InputShape &Shape : EP.InputShapes) {
    if (Shape.IsArray) {
      std::vector<int64_t> Vals;
      for (int J = 0; J < Shape.ArraySize; ++J)
        Vals.push_back(ReadWord(EP.InputWords[Cursor++]));
      Cex.push_back(InputValue::array(std::move(Vals)));
    } else {
      Cex.push_back(InputValue::scalar(ReadWord(EP.InputWords[Cursor++])));
    }
  }
  return Cex;
}
