//===- TraceFormula.h - Hard/soft instances per the paper -------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles the paper's formulas from an encoded program:
///
///   Phi_H = [[test]] /\ p /\ TF1     (hard)      -- Algorithm 1, line 5
///   Phi_S = TF2 (selector units)     (soft)      -- Algorithm 1, line 6
///
/// where p is the specification: the conjunction of assert/bounds
/// obligations and, optionally, a golden-output constraint on the entry's
/// return value (the Section 6.1 TCAS methodology). Also provides the
/// counterexample-generation side (Section 4.1): solve TF /\ [[selectors]]
/// /\ not p and read the failing input back from the model.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_BMC_TRACEFORMULA_H
#define BUGASSIST_BMC_TRACEFORMULA_H

#include "bmc/Encoder.h"
#include "interp/Interpreter.h"
#include "maxsat/MaxSat.h"

#include <optional>

namespace bugassist {

/// The specification p. Obligations (asserts, array bounds) always come
/// from the program; a golden return value can be added per test.
struct Spec {
  bool CheckObligations = true;
  std::optional<int64_t> GoldenReturn;
};

/// Wraps an EncodedProgram with the instance builders the BugAssist
/// algorithms need. The encoded CNF is built once; per-test input bindings
/// and spec assertions are appended per instance.
class TraceFormula {
public:
  explicit TraceFormula(EncodedProgram EP) : EP(std::move(EP)) {}

  const EncodedProgram &encoded() const { return EP; }

  /// Builds the partial MaxSAT instance (Phi_H, Phi_S) for \p Test.
  MaxSatInstance localizationInstance(const InputVector &Test,
                                      const Spec &S) const;

  /// The test-independent part of localizationInstance: Hard = TF1 only,
  /// Soft/PreferTrue = the full selector structure. A MaxSAT session built
  /// over this instance (and never solved) can be cloned per query and
  /// completed with testClauses() -- the serve-mode encode-once path.
  /// Selector guard variables allocated on top of NumVars land at the same
  /// IDs as in the per-test instance because testClauses adds no variables.
  MaxSatInstance sharedInstance() const;

  /// The per-test hard clauses ([[test]] /\ p) that localizationInstance
  /// appends to TF1, in the same order: input bindings, the SpecLit unit,
  /// then golden-return units. Add them to a clone of a sharedInstance()
  /// session to obtain the exact per-test instance.
  std::vector<Clause> testClauses(const InputVector &Test, const Spec &S) const;

  /// Searches for an input violating \p S with every statement enabled
  /// (bounded model checking; Section 4.1). \returns the counterexample
  /// input, std::nullopt if none exists within the encoding bounds, and
  /// leaves \p Decided false when the conflict budget ran out.
  std::optional<InputVector> findCounterexample(const Spec &S,
                                                bool &Decided,
                                                uint64_t ConflictBudget = 0) const;

  /// \returns the source line of clause group \p G.
  uint32_t lineOfGroup(GroupId G) const { return EP.Formula.group(G).Line; }

  /// Result of executing one concrete test *through the CNF encoding*.
  struct EvalOutcome {
    /// False when an assume/unwinding assumption rejects the input.
    bool Feasible = false;
    /// Truth of the obligation conjunction (asserts + bounds checks).
    bool ObligationsHold = false;
    int64_t RetValue = 0;
  };

  /// Runs \p Test through the encoded program with every statement enabled
  /// -- the SAT-side twin of Interpreter::run, used by differential tests
  /// and by repair validation. \returns std::nullopt only when a conflict
  /// budget is exhausted.
  std::optional<EvalOutcome> evaluateTest(const InputVector &Test,
                                          uint64_t ConflictBudget = 0) const;

private:
  /// Hard unit clauses pinning the input words to \p Test ("[[test]]").
  std::vector<Clause> bindInput(const InputVector &Test) const;
  /// Flattens \p Test into per-element scalar values matching InputWords.
  std::vector<int64_t> flatten(const InputVector &Test) const;

  EncodedProgram EP;
};

} // namespace bugassist

#endif // BUGASSIST_BMC_TRACEFORMULA_H
