//===- Unroller.h - Mini-C to guarded SSA -----------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic execution of the whole program into the guarded-SSA trace IR:
/// functions are inlined (recursion bounded by MaxInlineDepth), loops are
/// unwound MaxLoopUnwind times with an unwinding assumption at the bound,
/// and branches are compiled into phi definitions -- the trace-formula
/// construction of the paper's Section 3.2, engineered the way CBMC does it.
///
/// When \p ConcreteInputs is supplied, a shadow concrete execution runs
/// alongside (concolic style, cf. the paper's Related Work discussion) and
/// every determined definition is annotated with its runtime value; the
/// encoder uses those annotations to concretize trusted functions
/// (Section 6.2's "C" trace reduction).
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_BMC_UNROLLER_H
#define BUGASSIST_BMC_UNROLLER_H

#include "bmc/Trace.h"
#include "interp/Interpreter.h"
#include "lang/Ast.h"

#include <map>
#include <optional>
#include <set>
#include <string>

namespace bugassist {

struct UnrollOptions {
  /// Loop unwinding bound (the paper's eta).
  int MaxLoopUnwind = 16;
  /// Per-loop overrides, keyed by the `while` statement's source line
  /// (CBMC's --unwindset). Missing entries fall back to MaxLoopUnwind.
  std::map<uint32_t, int> LoopUnwindByLine;
  /// Recursion inlining bound (print_tokens used 8 in the paper).
  int MaxInlineDepth = 8;
  /// Bit width of int; must match the interpreter's when comparing.
  int BitWidth = 16;
  /// Generate bounds obligations for array accesses (the implicit
  /// assertions of the paper's Program 1).
  bool CheckArrayBounds = true;
  /// Functions whose constraints are hard (never blamed) and eligible for
  /// concretization, cf. Section 6.3's library-function treatment.
  std::set<std::string> TrustedFunctions;
  /// Source lines whose constraints are hard (never blamed); used for test
  /// harness code such as input-copy statements, which the paper's CBMC
  /// setup pins as part of [[test]].
  std::set<uint32_t> HardLines;
  /// When set, runs the shadow concrete execution seeded with this input.
  std::optional<InputVector> ConcreteInputs;
};

/// Unrolls \p Prog starting at \p Entry. \p Prog must have passed Sema.
/// \returns the trace IR; never fails for well-typed programs (resource
/// bounds are enforced through unwinding/inlining assumptions).
UnrolledProgram unrollProgram(const Program &Prog, const std::string &Entry,
                              const UnrollOptions &Opts = {});

} // namespace bugassist

#endif // BUGASSIST_BMC_UNROLLER_H
