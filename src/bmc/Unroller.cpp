//===- Unroller.cpp - Mini-C to guarded SSA ------------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Architecture notes:
//  * Storage cells hold the *current* SSA id of every live scalar / array
//    element; branches snapshot the whole cell table, execute both sides,
//    and emit phi definitions for cells that diverged (if-conversion).
//  * Each frame carries a Returned flag as an ordinary storage cell, so
//    the phi machinery merges early returns for free. The flag of a callee
//    frame is seeded with the caller's inactivity, which makes one flag per
//    frame sufficient for gating assignments and obligations.
//  * Loops unroll recursively inside their own guard; the bound emits
//    CBMC-style unwinding assumptions.
//
//===----------------------------------------------------------------------===//

#include "bmc/Unroller.h"

#include <cassert>
#include <map>

using namespace bugassist;

SymExprPtr bugassist::cloneSymExpr(const SymExpr *E) {
  if (!E)
    return nullptr;
  auto N = std::make_unique<SymExpr>();
  N->Kind = E->Kind;
  N->IsBool = E->IsBool;
  N->IntVal = E->IntVal;
  N->BoolVal = E->BoolVal;
  N->Id = E->Id;
  N->UOp = E->UOp;
  N->BOp = E->BOp;
  N->Elems = E->Elems;
  for (const auto &Op : E->Ops)
    N->Ops.push_back(cloneSymExpr(Op.get()));
  return N;
}

void bugassist::collectSymExprUses(const SymExpr *E, std::vector<SsaId> &Out) {
  if (!E)
    return;
  if (E->Kind == SymExpr::Use)
    Out.push_back(E->Id);
  for (SsaId Id : E->Elems)
    Out.push_back(Id);
  for (const auto &Op : E->Ops)
    collectSymExprUses(Op.get(), Out);
}

namespace {

/// Light constant folding on SymExpr builders -- only within a single
/// statement's tree (cross-statement folding would hide statements from the
/// localization, since soft statements must stay replaceable).
SymExprPtr foldNot(SymExprPtr A) {
  if (A->Kind == SymExpr::ConstBool)
    return SymExpr::constBool(!A->BoolVal);
  return SymExpr::unary(UnaryOp::LogNot, std::move(A));
}

SymExprPtr foldAnd(SymExprPtr A, SymExprPtr B) {
  if (A->Kind == SymExpr::ConstBool)
    return A->BoolVal ? std::move(B) : SymExpr::constBool(false);
  if (B->Kind == SymExpr::ConstBool)
    return B->BoolVal ? std::move(A) : SymExpr::constBool(false);
  return SymExpr::binary(BinaryOp::LogAnd, std::move(A), std::move(B));
}

class Unroller {
public:
  Unroller(const Program &Prog, const UnrollOptions &Opts)
      : Prog(Prog), Opts(Opts) {}

  UnrolledProgram run(const std::string &Entry);

private:
  // --- storage ---------------------------------------------------------------
  using StorageKey = int;

  struct StorageCell {
    bool IsArray = false;
    SsaId Scalar = NoSsa;
    std::vector<SsaId> Elems;
  };

  struct Frame {
    const FunctionDecl *Fn = nullptr;
    std::map<const VarDecl *, StorageKey> Locals;
    StorageKey RetKey = -1;
    StorageKey ReturnedKey = -1;
    bool Trusted = false;
  };

  StorageKey allocCell() {
    Storage.emplace_back();
    return static_cast<StorageKey>(Storage.size() - 1);
  }

  StorageKey keyOf(const VarDecl *D) {
    if (D->isGlobal()) {
      auto It = GlobalVars.find(D);
      assert(It != GlobalVars.end() && "global not initialized");
      return It->second;
    }
    auto &Locals = Frames.back().Locals;
    auto It = Locals.find(D);
    assert(It != Locals.end() && "sema guarantees resolution");
    return It->second;
  }

  SsaId returnedId() { return Storage[Frames.back().ReturnedKey].Scalar; }

  // --- SSA emission ------------------------------------------------------------
  SsaId newSsa(bool IsBool, std::string Name) {
    UP.Vars.push_back({IsBool, std::move(Name)});
    Shadow.push_back(std::nullopt);
    return static_cast<SsaId>(UP.Vars.size() - 1);
  }

  SsaId emitDef(DefRole Role, bool IsBool, SymExprPtr Rhs, uint32_t Line,
                std::string Label) {
    SsaId Id = newSsa(IsBool, Label);
    TraceDef D;
    D.Def = Id;
    D.Role = Role;
    D.Line = Line;
    D.Label = std::move(Label);
    D.Unwinding = CurUnwind;
    D.Trusted = (!Frames.empty() && Frames.back().Trusted) ||
                (Line != 0 && Opts.HardLines.count(Line) != 0);
    D.Shadow = shadowEval(Rhs.get());
    Shadow[Id] = D.Shadow;
    D.Rhs = std::move(Rhs);
    UP.Defs.push_back(std::move(D));
    return Id;
  }

  SymExprPtr useOf(SsaId Id) { return SymExpr::use(Id, UP.Vars[Id].IsBool); }

  // --- shadow (concolic) evaluation ---------------------------------------------
  std::optional<int64_t> shadowEval(const SymExpr *E) {
    if (!E || !Opts.ConcreteInputs)
      return std::nullopt;
    switch (E->Kind) {
    case SymExpr::ConstInt:
      return wrapToWidth(E->IntVal, Opts.BitWidth);
    case SymExpr::ConstBool:
      return E->BoolVal ? 1 : 0;
    case SymExpr::Use:
      return Shadow[E->Id];
    case SymExpr::Unary: {
      auto V = shadowEval(E->Ops[0].get());
      if (!V)
        return std::nullopt;
      return evalUnaryOp(E->UOp, *V, Opts.BitWidth);
    }
    case SymExpr::Binary: {
      auto A = shadowEval(E->Ops[0].get());
      auto B = shadowEval(E->Ops[1].get());
      if (!A || !B)
        return std::nullopt;
      bool DivZero = false;
      // Encoder-aligned /0 semantics: result 0.
      return evalBinaryOp(E->BOp, *A, *B, Opts.BitWidth, DivZero);
    }
    case SymExpr::Ite: {
      auto C = shadowEval(E->Ops[0].get());
      if (!C)
        return std::nullopt;
      return shadowEval(E->Ops[*C != 0 ? 1 : 2].get());
    }
    case SymExpr::ArrayRead: {
      auto Idx = shadowEval(E->Ops[0].get());
      if (!Idx)
        return std::nullopt;
      if (*Idx < 0 || *Idx >= static_cast<int64_t>(E->Elems.size()))
        return 0; // encoder-aligned OOB read
      return Shadow[E->Elems[static_cast<size_t>(*Idx)]];
    }
    }
    return std::nullopt;
  }

  // --- guards -----------------------------------------------------------------
  SsaId guardAnd(SsaId G, SymExprPtr Extra, uint32_t Line) {
    if (G == TrueId) {
      if (Extra->Kind == SymExpr::Use)
        return Extra->Id;
      return emitDef(DefRole::Guard, true, std::move(Extra), Line, "guard");
    }
    return emitDef(DefRole::Guard, true, foldAnd(useOf(G), std::move(Extra)),
                   Line, "guard");
  }

  /// Guard for obligations/assumptions at the current point: the branch
  /// guard strengthened with "this frame has not returned".
  SsaId effGuard(uint32_t Line) {
    SsaId Returned = returnedId();
    if (Returned == FalseId)
      return CurGuard;
    return emitDef(DefRole::Guard, true,
                   foldAnd(useOf(CurGuard), foldNot(useOf(Returned))), Line,
                   "active");
  }

  /// Condition a statement's effect on "not yet returned".
  SymExprPtr gateByReturned(SymExprPtr NewVal, SsaId OldVal) {
    SsaId Returned = returnedId();
    if (Returned == FalseId)
      return NewVal;
    return SymExpr::ite(useOf(Returned), useOf(OldVal), std::move(NewVal));
  }

  // --- expression translation -----------------------------------------------
  /// Role used for sub-definitions materialized while translating the
  /// current statement (array indexes, stored values).
  struct StmtCtx {
    DefRole TempRole = DefRole::ArrayStore;
    uint32_t Line = 0;
  };

  SymExprPtr evalExpr(const Expr *E, const StmtCtx &Ctx);
  SsaId materialize(SymExprPtr Tree, bool IsBool, const StmtCtx &Ctx,
                    const char *Label) {
    if (Tree->Kind == SymExpr::Use)
      return Tree->Id;
    return emitDef(Ctx.TempRole, IsBool, std::move(Tree), Ctx.Line, Label);
  }

  void emitBoundsObligation(SsaId IdxId, int Size, SourceLoc Loc) {
    if (!Opts.CheckArrayBounds)
      return;
    SymExprPtr InBounds = foldAnd(
        SymExpr::binary(BinaryOp::Ge, useOf(IdxId), SymExpr::constInt(0)),
        SymExpr::binary(BinaryOp::Lt, useOf(IdxId),
                        SymExpr::constInt(Size)));
    SsaId Cond = emitDef(DefRole::SpecEval, true, std::move(InBounds),
                         Loc.Line, "array bounds");
    UP.Obligations.push_back({effGuard(Loc.Line), Cond, Loc, "array bounds"});
  }

  SsaId inlineCall(const CallExpr *C, const StmtCtx &Ctx);

  // --- statement execution -----------------------------------------------------
  void execStmt(const Stmt *S);
  void execBlock(const BlockStmt *B) {
    for (const auto &Sub : B->stmts())
      execStmt(Sub.get());
  }
  void unrollLoop(const WhileStmt *W, int Iteration);
  void mergeBranches(SsaId CondId, std::vector<StorageCell> ThenState,
                     std::vector<StorageCell> ElseState, size_t PrefixSize,
                     uint32_t Line);
  SsaId emitDefBootstrap(bool IsBool, SymExprPtr Rhs, std::string Name);

  const Program &Prog;
  const UnrollOptions &Opts;
  UnrolledProgram UP;
  std::vector<std::optional<int64_t>> Shadow;
  std::vector<StorageCell> Storage;
  std::vector<Frame> Frames;
  std::map<const VarDecl *, StorageKey> GlobalVars;
  std::map<const FunctionDecl *, int> InlineDepth;

  SsaId TrueId = NoSsa;
  SsaId FalseId = NoSsa;
  SsaId ZeroId = NoSsa;
  SsaId CurGuard = NoSsa;
  uint32_t CurUnwind = 0;
};

SymExprPtr Unroller::evalExpr(const Expr *E, const StmtCtx &Ctx) {
  switch (E->kind()) {
  case Expr::IntLiteralKind:
    return SymExpr::constInt(
        wrapToWidth(cast<IntLiteral>(E)->value(), Opts.BitWidth));
  case Expr::BoolLiteralKind:
    return SymExpr::constBool(cast<BoolLiteral>(E)->value());
  case Expr::VarRefKind: {
    const auto *V = cast<VarRef>(E);
    const StorageCell &Cell = Storage[keyOf(V->decl())];
    assert(!Cell.IsArray && "sema rejects bare array reads");
    return useOf(Cell.Scalar);
  }
  case Expr::ArrayIndexKind: {
    const auto *A = cast<ArrayIndex>(E);
    const auto *Base = cast<VarRef>(A->base());
    // Snapshot BEFORE evaluating the index: index evaluation cannot write.
    std::vector<SsaId> Elems = Storage[keyOf(Base->decl())].Elems;
    SymExprPtr IdxTree = evalExpr(A->index(), Ctx);
    SsaId IdxId = materialize(std::move(IdxTree), false, Ctx, "index");
    emitBoundsObligation(IdxId, static_cast<int>(Elems.size()), A->loc());
    return SymExpr::arrayRead(std::move(Elems), useOf(IdxId));
  }
  case Expr::UnaryKind: {
    const auto *U = cast<UnaryExpr>(E);
    return SymExpr::unary(U->op(), evalExpr(U->operand(), Ctx));
  }
  case Expr::BinaryKind: {
    const auto *B = cast<BinaryExpr>(E);
    SymExprPtr L = evalExpr(B->lhs(), Ctx);
    SymExprPtr R = evalExpr(B->rhs(), Ctx);
    return SymExpr::binary(B->op(), std::move(L), std::move(R));
  }
  case Expr::ConditionalKind: {
    const auto *C = cast<ConditionalExpr>(E);
    SymExprPtr Cond = evalExpr(C->cond(), Ctx);
    SymExprPtr T = evalExpr(C->thenExpr(), Ctx);
    SymExprPtr F = evalExpr(C->elseExpr(), Ctx);
    return SymExpr::ite(std::move(Cond), std::move(T), std::move(F));
  }
  case Expr::CallKind: {
    const auto *C = cast<CallExpr>(E);
    SsaId Ret = inlineCall(C, Ctx);
    if (Ret == NoSsa)
      return SymExpr::constInt(0); // void call in expression: unreachable
    return useOf(Ret);
  }
  }
  return SymExpr::constInt(0);
}

SsaId Unroller::inlineCall(const CallExpr *C, const StmtCtx &Ctx) {
  const FunctionDecl *Fn = C->decl();
  assert(Fn && "sema resolves calls");

  int &Depth = InlineDepth[Fn];
  if (Depth >= Opts.MaxInlineDepth) {
    // Recursion bound reached: make paths that get here infeasible
    // (CBMC-style unwinding assumption) and return a dummy value.
    UP.Assumptions.push_back({effGuard(C->loc().Line), FalseId, C->loc()});
    return Fn->returnType().isVoid()
               ? NoSsa
               : (Fn->returnType().isBool() ? FalseId : ZeroId);
  }
  ++Depth;

  Frame NewFrame;
  NewFrame.Fn = Fn;
  NewFrame.Trusted =
      Frames.back().Trusted || Opts.TrustedFunctions.count(Fn->name()) != 0;

  // Bind parameters. Scalars get a ParamBind definition at the call line
  // (soft: a wrong argument is a candidate fix); arrays alias the caller's
  // storage cell.
  for (size_t I = 0; I < Fn->params().size(); ++I) {
    const VarDecl *P = Fn->params()[I].get();
    const Expr *Arg = C->args()[I].get();
    if (P->type().isArray()) {
      NewFrame.Locals[P] = keyOf(cast<VarRef>(Arg)->decl());
      continue;
    }
    SymExprPtr ArgTree = evalExpr(Arg, Ctx);
    SsaId ArgId =
        emitDef(DefRole::ParamBind, P->type().isBool(), std::move(ArgTree),
                C->loc().Line, Fn->name() + ":" + P->name());
    StorageKey K = allocCell();
    Storage[K].Scalar = ArgId;
    NewFrame.Locals[P] = K;
  }

  // Return-value accumulator (0 / false if the body falls off the end) and
  // the Returned flag, seeded with the caller's inactivity so one flag
  // suffices for gating.
  NewFrame.RetKey = allocCell();
  Storage[NewFrame.RetKey].Scalar = Fn->returnType().isBool() ? FalseId : ZeroId;
  NewFrame.ReturnedKey = allocCell();
  Storage[NewFrame.ReturnedKey].Scalar = returnedId();

  Frames.push_back(NewFrame);
  execBlock(Fn->body());
  SsaId Ret = Storage[Frames.back().RetKey].Scalar;
  Frames.pop_back();
  --Depth;
  return Fn->returnType().isVoid() ? NoSsa : Ret;
}

void Unroller::mergeBranches(SsaId CondId, std::vector<StorageCell> ThenState,
                             std::vector<StorageCell> ElseState,
                             size_t PrefixSize, uint32_t Line) {
  // Only cells that existed before the split are merged: indexes beyond
  // PrefixSize were allocated inside a branch (branch-local declarations,
  // inlined callee frames) and the two sides reuse them for unrelated
  // variables. Those cells are dead after the join.
  size_t N = PrefixSize;
  assert(ThenState.size() >= N && ElseState.size() >= N &&
         "branches cannot shrink storage");
  Storage.resize(N);
  for (size_t I = 0; I < N; ++I) {
    StorageCell &Out = Storage[I];
    const StorageCell &T = ThenState[I];
    const StorageCell &F = ElseState[I];
    Out = T;
    if (T.IsArray) {
      assert(F.IsArray && T.Elems.size() == F.Elems.size() &&
             "branch-incompatible cell");
      for (size_t J = 0; J < T.Elems.size(); ++J) {
        if (T.Elems[J] == F.Elems[J])
          continue;
        Out.Elems[J] = emitDef(
            DefRole::Phi, false,
            SymExpr::ite(useOf(CondId), useOf(T.Elems[J]), useOf(F.Elems[J])),
            Line, "phi");
      }
      continue;
    }
    if (T.Scalar == F.Scalar || T.Scalar == NoSsa || F.Scalar == NoSsa)
      continue;
    Out.Scalar = emitDef(
        DefRole::Phi, UP.Vars[T.Scalar].IsBool,
        SymExpr::ite(useOf(CondId), useOf(T.Scalar), useOf(F.Scalar)), Line,
        "phi");
  }
}

void Unroller::unrollLoop(const WhileStmt *W, int Iteration) {
  uint32_t Line = W->loc().Line;
  int Bound = Opts.MaxLoopUnwind;
  auto It = Opts.LoopUnwindByLine.find(Line);
  if (It != Opts.LoopUnwindByLine.end())
    Bound = It->second;
  if (Iteration > Bound) {
    // Unwinding bound: evaluate the condition once more (hard) and assume
    // it is false on every path still active here.
    StmtCtx Ctx{DefRole::SpecEval, Line};
    SsaId CondId = materialize(evalExpr(W->cond(), Ctx), true, Ctx,
                               "unwind check");
    SsaId NotCond = emitDef(DefRole::SpecEval, true, foldNot(useOf(CondId)),
                            Line, "unwind assumption");
    UP.Assumptions.push_back({effGuard(Line), NotCond, W->loc()});
    return;
  }

  uint32_t SavedUnwind = CurUnwind;
  CurUnwind = static_cast<uint32_t>(Iteration);
  UP.MaxUnwinding = std::max(UP.MaxUnwinding, CurUnwind);

  StmtCtx Ctx{DefRole::CondEval, Line};
  SsaId CondId = materialize(evalExpr(W->cond(), Ctx), true, Ctx, "loop cond");

  std::vector<StorageCell> Before = Storage;
  SsaId OuterGuard = CurGuard;
  CurGuard = guardAnd(OuterGuard, useOf(CondId), Line);

  execStmt(W->body());
  unrollLoop(W, Iteration + 1);

  std::vector<StorageCell> After = std::move(Storage);
  size_t PrefixSize = Before.size();
  Storage = Before;
  CurGuard = OuterGuard;
  CurUnwind = SavedUnwind;
  mergeBranches(CondId, std::move(After), std::move(Storage), PrefixSize,
                Line);
}

void Unroller::execStmt(const Stmt *S) {
  switch (S->kind()) {
  case Stmt::BlockStmtKind:
    execBlock(cast<BlockStmt>(S));
    return;

  case Stmt::DeclStmtKind: {
    const VarDecl *D = cast<DeclStmt>(S)->decl();
    StorageKey K = allocCell();
    Frames.back().Locals[D] = K;
    if (D->type().isArray()) {
      Storage[K].IsArray = true;
      Storage[K].Elems.assign(static_cast<size_t>(D->type().ArraySize),
                              ZeroId);
      return;
    }
    if (const Expr *Init = D->init()) {
      StmtCtx Ctx{DefRole::ArrayStore, S->loc().Line};
      SymExprPtr Rhs = evalExpr(Init, Ctx);
      Storage[K].Scalar =
          emitDef(DefRole::UserAssign, D->type().isBool(), std::move(Rhs),
                  S->loc().Line, D->name());
      return;
    }
    Storage[K].Scalar = D->type().isBool() ? FalseId : ZeroId;
    return;
  }

  case Stmt::AssignStmtKind: {
    const auto *A = cast<AssignStmt>(S);
    StorageKey K = keyOf(A->targetDecl());
    StmtCtx Ctx{DefRole::ArrayStore, S->loc().Line};

    if (!A->index()) {
      SymExprPtr Rhs = evalExpr(A->value(), Ctx);
      bool IsBool = A->targetDecl()->type().isBool();
      Rhs = gateByReturned(std::move(Rhs), Storage[K].Scalar);
      Storage[K].Scalar = emitDef(DefRole::UserAssign, IsBool, std::move(Rhs),
                                  S->loc().Line, A->target());
      return;
    }

    // Array element write: materialize index and value, then update every
    // element under the statement's group. OOB writes leave the array
    // unchanged (matching the interpreter's unchecked semantics); a bounds
    // obligation fires when checking is on. Access cells through K, never
    // through a reference: expression evaluation can grow Storage.
    size_t NumElems = Storage[K].Elems.size();
    SymExprPtr IdxTree = evalExpr(A->index(), Ctx);
    SsaId IdxId = materialize(std::move(IdxTree), false, Ctx, "store index");
    emitBoundsObligation(IdxId, static_cast<int>(NumElems), S->loc());
    SymExprPtr ValTree = evalExpr(A->value(), Ctx);
    SsaId ValId = emitDef(DefRole::UserAssign, false, std::move(ValTree),
                          S->loc().Line, A->target() + "[.]");

    SsaId Returned = returnedId();
    for (size_t J = 0; J < NumElems; ++J) {
      SymExprPtr Hit = SymExpr::binary(
          BinaryOp::Eq, useOf(IdxId),
          SymExpr::constInt(static_cast<int64_t>(J)));
      if (Returned != FalseId)
        Hit = foldAnd(foldNot(useOf(Returned)), std::move(Hit));
      SsaId OldElem = Storage[K].Elems[J];
      Storage[K].Elems[J] = emitDef(
          DefRole::ArrayStore, false,
          SymExpr::ite(std::move(Hit), useOf(ValId), useOf(OldElem)),
          S->loc().Line, A->target() + "[" + std::to_string(J) + "]");
    }
    return;
  }

  case Stmt::IfStmtKind: {
    const auto *I = cast<IfStmt>(S);
    StmtCtx Ctx{DefRole::CondEval, S->loc().Line};
    SymExprPtr CondTree = evalExpr(I->cond(), Ctx);
    SsaId CondId = (CondTree->Kind == SymExpr::Use)
                       ? CondTree->Id
                       : emitDef(DefRole::CondEval, true, std::move(CondTree),
                                 S->loc().Line, "if cond");

    std::vector<StorageCell> Before = Storage;
    size_t PrefixSize = Before.size();
    SsaId OuterGuard = CurGuard;

    CurGuard = guardAnd(OuterGuard, useOf(CondId), S->loc().Line);
    execStmt(I->thenStmt());
    std::vector<StorageCell> ThenState = std::move(Storage);

    Storage = Before;
    CurGuard = guardAnd(OuterGuard, foldNot(useOf(CondId)), S->loc().Line);
    if (I->elseStmt())
      execStmt(I->elseStmt());
    std::vector<StorageCell> ElseState = std::move(Storage);

    CurGuard = OuterGuard;
    mergeBranches(CondId, std::move(ThenState), std::move(ElseState),
                  PrefixSize, S->loc().Line);
    return;
  }

  case Stmt::WhileStmtKind:
    unrollLoop(cast<WhileStmt>(S), 1);
    return;

  case Stmt::ReturnStmtKind: {
    const auto *R = cast<ReturnStmt>(S);
    // Note: capture keys, not a Frame reference -- evaluating the return
    // expression can inline calls, growing the Frames vector.
    StorageKey RetKey = Frames.back().RetKey;
    StorageKey ReturnedKey = Frames.back().ReturnedKey;
    bool IsBool = Frames.back().Fn->returnType().isBool();
    if (R->value()) {
      StmtCtx Ctx{DefRole::ArrayStore, S->loc().Line};
      SymExprPtr Rhs = evalExpr(R->value(), Ctx);
      Rhs = gateByReturned(std::move(Rhs), Storage[RetKey].Scalar);
      Storage[RetKey].Scalar = emitDef(DefRole::UserAssign, IsBool,
                                       std::move(Rhs), S->loc().Line,
                                       "return");
    }
    Storage[ReturnedKey].Scalar = TrueId;
    return;
  }

  case Stmt::AssertStmtKind: {
    const auto *A = cast<AssertStmt>(S);
    StmtCtx Ctx{DefRole::SpecEval, S->loc().Line};
    SsaId CondId =
        materialize(evalExpr(A->cond(), Ctx), true, Ctx, "assert cond");
    UP.Obligations.push_back(
        {effGuard(S->loc().Line), CondId, S->loc(), "assert"});
    return;
  }

  case Stmt::AssumeStmtKind: {
    const auto *A = cast<AssumeStmt>(S);
    StmtCtx Ctx{DefRole::SpecEval, S->loc().Line};
    SsaId CondId =
        materialize(evalExpr(A->cond(), Ctx), true, Ctx, "assume cond");
    UP.Assumptions.push_back({effGuard(S->loc().Line), CondId, S->loc()});
    return;
  }

  case Stmt::ExprStmtKind: {
    StmtCtx Ctx{DefRole::ArrayStore, S->loc().Line};
    (void)evalExpr(cast<ExprStmt>(S)->expr(), Ctx);
    return;
  }
  }
}

UnrolledProgram Unroller::run(const std::string &Entry) {
  const FunctionDecl *Fn = Prog.findFunction(Entry);
  assert(Fn && "entry function must exist");

  // Constant pool.
  TrueId = emitDefBootstrap(true, SymExpr::constBool(true), "true");
  FalseId = emitDefBootstrap(true, SymExpr::constBool(false), "false");
  ZeroId = emitDefBootstrap(false, SymExpr::constInt(0), "zero");
  CurGuard = TrueId;

  // Globals.
  for (const auto &G : Prog.globals()) {
    StorageKey K = allocCell();
    GlobalVars[G.get()] = K;
    if (G->type().isArray()) {
      Storage[K].IsArray = true;
      Storage[K].Elems.assign(static_cast<size_t>(G->type().ArraySize),
                              ZeroId);
      continue;
    }
    if (const Expr *Init = G->init()) {
      // Sema guarantees literal initializers.
      SymExprPtr Rhs;
      if (const auto *IL = dyn_cast<IntLiteral>(Init))
        Rhs = SymExpr::constInt(wrapToWidth(IL->value(), Opts.BitWidth));
      else
        Rhs = SymExpr::constBool(cast<BoolLiteral>(Init)->value());
      Storage[K].Scalar = emitDef(DefRole::UserAssign, G->type().isBool(),
                                  std::move(Rhs), G->loc().Line, G->name());
      continue;
    }
    Storage[K].Scalar = G->type().isBool() ? FalseId : ZeroId;
  }

  // Entry frame and inputs.
  Frame Top;
  Top.Fn = Fn;
  Top.Trusted = Opts.TrustedFunctions.count(Fn->name()) != 0;
  size_t InputCursor = 0;
  auto NextConcrete = [&](bool IsArrayElem, size_t ParamIdx,
                          size_t ElemIdx) -> std::optional<int64_t> {
    if (!Opts.ConcreteInputs)
      return std::nullopt;
    const InputVector &In = *Opts.ConcreteInputs;
    if (ParamIdx >= In.size())
      return std::nullopt;
    const InputValue &V = In[ParamIdx];
    if (IsArrayElem) {
      if (!V.IsArray || ElemIdx >= V.Array.size())
        return std::nullopt;
      return wrapToWidth(V.Array[ElemIdx], Opts.BitWidth);
    }
    return V.IsArray ? std::nullopt
                     : std::optional<int64_t>(
                           wrapToWidth(V.Scalar, Opts.BitWidth));
  };
  (void)InputCursor;
  for (size_t I = 0; I < Fn->params().size(); ++I) {
    const VarDecl *P = Fn->params()[I].get();
    StorageKey K = allocCell();
    Top.Locals[P] = K;
    UP.InputShapes.push_back({P->name(), P->type().isArray(),
                              P->type().ArraySize, P->type().isBool()});
    if (P->type().isArray()) {
      Storage[K].IsArray = true;
      for (int J = 0; J < P->type().ArraySize; ++J) {
        SsaId Id = newSsa(false, P->name() + "[" + std::to_string(J) + "]");
        TraceDef D;
        D.Def = Id;
        D.Role = DefRole::Input;
        D.Line = P->loc().Line;
        D.Label = UP.Vars[Id].Name;
        D.Shadow = NextConcrete(true, I, static_cast<size_t>(J));
        Shadow[Id] = D.Shadow;
        UP.Defs.push_back(std::move(D));
        UP.Inputs.push_back({Id, UP.Vars[Id].Name, false});
        Storage[K].Elems.push_back(Id);
      }
      continue;
    }
    bool IsBool = P->type().isBool();
    SsaId Id = newSsa(IsBool, P->name());
    TraceDef D;
    D.Def = Id;
    D.Role = DefRole::Input;
    D.Line = P->loc().Line;
    D.Label = P->name();
    D.Shadow = NextConcrete(false, I, 0);
    if (IsBool && D.Shadow)
      D.Shadow = *D.Shadow != 0 ? 1 : 0;
    Shadow[Id] = D.Shadow;
    UP.Defs.push_back(std::move(D));
    UP.Inputs.push_back({Id, P->name(), IsBool});
    Storage[K].Scalar = Id;
  }
  Top.RetKey = allocCell();
  Storage[Top.RetKey].Scalar = Fn->returnType().isBool() ? FalseId : ZeroId;
  Top.ReturnedKey = allocCell();
  Storage[Top.ReturnedKey].Scalar = FalseId;

  Frames.push_back(Top);
  execBlock(Fn->body());
  if (!Fn->returnType().isVoid()) {
    UP.RetVal = Storage[Frames.back().RetKey].Scalar;
    UP.RetIsBool = Fn->returnType().isBool();
  }
  Frames.pop_back();

  return std::move(UP);
}

SsaId Unroller::emitDefBootstrap(bool IsBool, SymExprPtr Rhs,
                                 std::string Name) {
  // emitDef for the constant pool, before any frame exists. Constants keep
  // their shadow value unconditionally so trusted-only folding works even
  // without concrete inputs.
  SsaId Id = newSsa(IsBool, Name);
  TraceDef D;
  D.Def = Id;
  D.Role = DefRole::Synth;
  D.Label = std::move(Name);
  D.Shadow = Rhs->Kind == SymExpr::ConstBool
                 ? std::optional<int64_t>(Rhs->BoolVal ? 1 : 0)
                 : std::optional<int64_t>(
                       wrapToWidth(Rhs->IntVal, Opts.BitWidth));
  Shadow[Id] = D.Shadow;
  D.Rhs = std::move(Rhs);
  UP.Defs.push_back(std::move(D));
  return Id;
}

} // namespace

UnrolledProgram bugassist::unrollProgram(const Program &Prog,
                                         const std::string &Entry,
                                         const UnrollOptions &Opts) {
  Unroller U(Prog, Opts);
  return U.run(Entry);
}
