//===- Trace.h - Guarded-SSA trace IR ---------------------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate representation between the mini-C front end and the
/// bit blaster: a fully inlined, loop-unwound, single-static-assignment
/// program in the style of CBMC's symbolic execution. Control flow is
/// compiled into phi definitions (`x2 := ite(c, xThen, xElse)`); asserts
/// become guarded *obligations*, assumes and unwinding bounds become
/// guarded *assumptions*.
///
/// Every definition carries:
///  * a DefRole that decides whether its clauses are soft (a candidate
///    "statement to change" with a selector variable -- paper Section 3.4)
///    or hard (plumbing / spec / trusted);
///  * the source line, which is the clause-group key;
///  * the loop unwinding index, for the Section 5.2 per-iteration weights;
///  * an optional concolic shadow value, computed when the unroller is
///    seeded with a concrete test input (the Section 6.2 "C" reduction).
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_BMC_TRACE_H
#define BUGASSIST_BMC_TRACE_H

#include "lang/Ast.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace bugassist {

/// Index of an SSA symbol within an UnrolledProgram.
using SsaId = int32_t;
constexpr SsaId NoSsa = -1;

/// Metadata for one SSA symbol.
struct SsaVarInfo {
  bool IsBool = false;
  std::string Name;
};

/// Symbolic expression over SSA operands. Trees are per-definition (no
/// cross-definition sharing), so disabling one definition's clause group
/// cannot silently disable another's.
struct SymExpr;
using SymExprPtr = std::unique_ptr<SymExpr>;

struct SymExpr {
  enum KindTy {
    ConstInt,
    ConstBool,
    Use,
    Unary,
    Binary,
    Ite,
    /// Array read: Ops[0] is the index; Elems is a snapshot of the array's
    /// element SSA ids at read time. Out-of-range reads yield 0.
    ArrayRead
  } Kind;

  bool IsBool = false;
  int64_t IntVal = 0;
  bool BoolVal = false;
  SsaId Id = NoSsa;
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  std::vector<SymExprPtr> Ops;
  std::vector<SsaId> Elems;

  static SymExprPtr constInt(int64_t V) {
    auto E = std::make_unique<SymExpr>();
    E->Kind = ConstInt;
    E->IntVal = V;
    return E;
  }
  static SymExprPtr constBool(bool V) {
    auto E = std::make_unique<SymExpr>();
    E->Kind = ConstBool;
    E->IsBool = true;
    E->BoolVal = V;
    return E;
  }
  static SymExprPtr use(SsaId Id, bool IsBool) {
    auto E = std::make_unique<SymExpr>();
    E->Kind = Use;
    E->Id = Id;
    E->IsBool = IsBool;
    return E;
  }
  static SymExprPtr unary(UnaryOp Op, SymExprPtr A) {
    auto E = std::make_unique<SymExpr>();
    E->Kind = Unary;
    E->UOp = Op;
    E->IsBool = (Op == UnaryOp::LogNot);
    E->Ops.push_back(std::move(A));
    return E;
  }
  static SymExprPtr binary(BinaryOp Op, SymExprPtr A, SymExprPtr B) {
    auto E = std::make_unique<SymExpr>();
    E->Kind = Binary;
    E->BOp = Op;
    E->IsBool = isComparisonOp(Op) || isLogicalOp(Op);
    E->Ops.push_back(std::move(A));
    E->Ops.push_back(std::move(B));
    return E;
  }
  static SymExprPtr ite(SymExprPtr C, SymExprPtr T, SymExprPtr F) {
    auto E = std::make_unique<SymExpr>();
    E->Kind = Ite;
    E->IsBool = T->IsBool;
    E->Ops.push_back(std::move(C));
    E->Ops.push_back(std::move(T));
    E->Ops.push_back(std::move(F));
    return E;
  }
  static SymExprPtr arrayRead(std::vector<SsaId> Elems, SymExprPtr Index) {
    auto E = std::make_unique<SymExpr>();
    E->Kind = ArrayRead;
    E->Elems = std::move(Elems);
    E->Ops.push_back(std::move(Index));
    return E;
  }
};

/// Deep copy of a symbolic expression tree.
SymExprPtr cloneSymExpr(const SymExpr *E);

/// Collects every SSA id referenced by \p E into \p Out.
void collectSymExprUses(const SymExpr *E, std::vector<SsaId> &Out);

/// Why a definition exists; determines hard/soft classification.
enum class DefRole {
  Input,      ///< entry-parameter element; bound to the test by hard clauses
  UserAssign, ///< a source statement's effect -- SOFT
  ArrayStore, ///< per-element update of an array write -- SOFT (same group)
  CondEval,   ///< branch/loop condition evaluation -- SOFT
  ParamBind,  ///< call argument to formal binding -- SOFT (call-site line)
  Phi,        ///< control-flow merge -- hard
  Guard,      ///< path-guard plumbing -- hard
  ZeroInit,   ///< implicit zero initialization -- hard
  SpecEval,   ///< assert/assume condition evaluation -- hard (specs are hard)
  Synth       ///< other synthesized plumbing -- hard
};

/// \returns true if definitions with \p Role get a soft selector group
/// (unless the definition is Trusted).
inline bool isSoftRole(DefRole Role) {
  return Role == DefRole::UserAssign || Role == DefRole::ArrayStore ||
         Role == DefRole::CondEval || Role == DefRole::ParamBind;
}

/// One SSA definition `Def := Rhs` (Rhs is null for Input).
struct TraceDef {
  SsaId Def = NoSsa;
  SymExprPtr Rhs;
  DefRole Role = DefRole::Synth;
  uint32_t Line = 0;
  std::string Label;
  uint32_t Unwinding = 0;
  /// Defined while inlining a trusted (library) function; eligible for
  /// concretization and never blamed (paper Section 6.3 makes library
  /// constraints hard).
  bool Trusted = false;
  /// Concolic shadow value (0/1 for bools) when the unroller was seeded
  /// with a concrete input and the value is determined.
  std::optional<int64_t> Shadow;
};

/// assert-style proof obligation: on paths where Guard holds, Cond must.
struct TraceObligation {
  SsaId Guard = NoSsa;
  SsaId Cond = NoSsa;
  SourceLoc Loc;
  std::string Label;
};

/// assume-style constraint: Guard implies Cond, enforced hard.
struct TraceAssumption {
  SsaId Guard = NoSsa;
  SsaId Cond = NoSsa;
  SourceLoc Loc;
};

/// One entry input element (scalar parameter, or one array slot).
struct TraceInput {
  SsaId Id = NoSsa;
  std::string Name;
  bool IsBool = false;
};

/// Shape of one entry parameter, used to rebuild InputVectors from
/// counterexample models.
struct InputShape {
  std::string Name;
  bool IsArray = false;
  int ArraySize = 0;
  bool IsBool = false;
};

/// The unrolled program: SSA symbols, ordered definitions, obligations,
/// assumptions, inputs, and the entry return value.
struct UnrolledProgram {
  std::vector<SsaVarInfo> Vars;
  std::vector<TraceDef> Defs;
  std::vector<TraceObligation> Obligations;
  std::vector<TraceAssumption> Assumptions;
  std::vector<TraceInput> Inputs;
  std::vector<InputShape> InputShapes;
  SsaId RetVal = NoSsa;
  bool RetIsBool = false;
  uint32_t MaxUnwinding = 0;

  /// Number of UserAssign definitions -- the "assign#" metric of Table 3.
  size_t numAssignDefs() const {
    size_t N = 0;
    for (const TraceDef &D : Defs)
      if (D.Role == DefRole::UserAssign)
        ++N;
    return N;
  }
};

} // namespace bugassist

#endif // BUGASSIST_BMC_TRACE_H
