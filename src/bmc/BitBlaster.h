//===- BitBlaster.h - Word-level circuits to CNF ----------------*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-precise encoding of W-bit two's-complement arithmetic into CNF
/// (the Section 3.2 reduction: "a C program with finite-bitwidth data can
/// be converted into an equivalent Boolean program by separately tracking
/// each bit"). Words are little-endian literal vectors; Tseitin variables
/// and clauses are emitted into a CnfFormula under the *current clause
/// group*, so an entire statement's circuit is enabled or disabled by one
/// selector variable (Section 3.4).
///
/// Semantics match interp/Interpreter.h exactly: wraparound add/sub/mul,
/// C-style truncating signed division with /0 yielding 0, shifts with
/// amounts outside [0, W) saturating. The agreement is enforced by
/// differential property tests.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_BMC_BITBLASTER_H
#define BUGASSIST_BMC_BITBLASTER_H

#include "cnf/Cnf.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bugassist {

/// A W-bit word: Bits[0] is the least significant bit.
using Word = std::vector<Lit>;

/// Circuit generator writing clauses into a CnfFormula.
///
/// Gates perform constant folding against the true/false literals, so
/// circuits fed constants shrink without a separate simplification pass.
class BitBlaster {
public:
  BitBlaster(CnfFormula &F, int Width);

  int width() const { return Width; }
  CnfFormula &formula() { return F; }

  /// All subsequently emitted clauses belong to \p G (NoGroup = hard).
  void setGroup(GroupId G) { CurGroup = G; }
  GroupId currentGroup() const { return CurGroup; }

  /// The always-true literal (backed by a hard unit clause).
  Lit trueLit() const { return TrueL; }
  Lit falseLit() const { return ~TrueL; }
  bool isConstTrue(Lit L) const { return L == TrueL; }
  bool isConstFalse(Lit L) const { return L == ~TrueL; }

  /// Fresh unconstrained bit / word.
  Lit freshBit();
  Word freshWord();

  /// The W-bit two's complement constant \p V.
  Word constWord(int64_t V);

  /// \returns the constant value of \p W if all bits are constants.
  bool constValue(const Word &Wd, int64_t &Out) const;

  // --- gates -----------------------------------------------------------------
  Lit mkAnd(Lit A, Lit B);
  Lit mkOr(Lit A, Lit B);
  Lit mkXor(Lit A, Lit B);
  Lit mkMux(Lit Cond, Lit Then, Lit Else);
  Lit mkAndList(const std::vector<Lit> &Ls);
  Lit mkOrList(const std::vector<Lit> &Ls);

  // --- arithmetic ------------------------------------------------------------
  Word add(const Word &A, const Word &B);
  Word sub(const Word &A, const Word &B);
  Word neg(const Word &A);
  Word bitNot(const Word &A);
  Word mul(const Word &A, const Word &B);
  /// C-style truncating signed division; quotient and remainder are 0 when
  /// the divisor is 0. INT_MIN / -1 wraps to INT_MIN.
  void divRem(const Word &A, const Word &B, Word &Quot, Word &Rem);

  // --- bitwise / shifts -------------------------------------------------------
  Word bitAnd(const Word &A, const Word &B);
  Word bitOr(const Word &A, const Word &B);
  Word bitXor(const Word &A, const Word &B);
  /// Logical left shift; amounts < 0 or >= W give 0.
  Word shl(const Word &A, const Word &Amount);
  /// Arithmetic right shift; amounts < 0 or >= W give the sign fill.
  Word ashr(const Word &A, const Word &Amount);

  // --- comparisons --------------------------------------------------------------
  Lit eq(const Word &A, const Word &B);
  Lit ult(const Word &A, const Word &B);
  Lit slt(const Word &A, const Word &B);
  Lit sle(const Word &A, const Word &B);

  // --- selection / assertion ---------------------------------------------------
  Word mux(Lit Cond, const Word &Then, const Word &Else);
  /// Forces A == B bitwise (clauses in the current group).
  void assertEqual(const Word &A, const Word &B);
  void assertBitEqual(Lit A, Lit B);
  void assertTrue(Lit A);

private:
  void emit(Clause C);
  Word uShiftStage(const Word &A, Lit Sel, int Amount, bool Left, Lit Fill);

  CnfFormula &F;
  int Width;
  GroupId CurGroup = NoGroup;
  Lit TrueL;
};

} // namespace bugassist

#endif // BUGASSIST_BMC_BITBLASTER_H
