//===- bugassist.cpp - The BugAssist command-line tool ------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// The user-facing entry point to the pipeline (docs/CLI.md is the full
// reference):
//
//   bugassist localize <prog.ba> [--input "..."] [--golden N] ...
//       parse -> sema -> unroll -> trace formula -> CoMSS enumeration on a
//       mini-C source file; prints the ranked per-line report (text or
//       --json). Without --input, a failing input is found by BMC.
//
//   bugassist repair <prog.ba> --input "..." [--golden N] ...
//       localize, then run Algorithm 2 over the suspect lines: off-by-one
//       and near-miss-operator mutants, screened on the failing tests and
//       re-verified by BMC, all through the encode-once Pipeline seam.
//
//   bugassist fuzz <tcas|prog.ba> [--seed N] [--count N] ...
//       deterministic differential sweep: seeded mutants of a golden
//       subject, each localized at --threads 1 and K and with
//       preprocessing off (reports must be byte-identical), scored
//       against the known fault line, repaired on hits; Table-1-style
//       JSON scorecard per fault class.
//
//   bugassist maxsat <file.wcnf> [--threads N]
//       partial (weighted) MaxSAT on a DIMACS/WCNF instance, MaxSAT-
//       Evaluation-style output (o/s/v lines).
//
//   bugassist sat <file.cnf> [--threads N]
//       plain SAT, raced over the portfolio when --threads > 1.
//
//   bugassist dump-tcas [N | --list]
//       prints the checked-in TCAS sources (0 = correct version, 1..41 =
//       the faulty Siemens-style mutants) so they can be fed back into
//       `bugassist localize`.
//
// The localize report is byte-identical at every --threads width: the
// portfolio canonicalizes its optima (see maxsat/Canonical.h), and solver
// statistics -- the only nondeterministic output -- are printed only under
// --stats.
//
//===----------------------------------------------------------------------===//

#include "cnf/DimacsReader.h"
#include "core/Pipeline.h"
#include "lang/Sema.h"
#include "maxsat/MaxSat.h"
#include "maxsat/Portfolio.h"
#include "mutate/FuzzSweep.h"
#include "programs/FaultCatalog.h"
#include "programs/Tcas.h"
#include "programs/TcasMutants.h"
#include "serve/LocalizeServer.h"
#include "support/FaultInject.h"
#include "support/FileUtil.h"
#include "support/Rng.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

using namespace bugassist;

namespace {

// Exit-code contract (docs/CLI.md): 0 = the run completed (a decided
// answer, including UNSATISFIABLE), 1 = input or usage error, 2 = a
// resource budget stopped the run early (the partial output printed is
// best-so-far, flagged INCOMPLETE / UNKNOWN).
constexpr int ExitComplete = 0;
constexpr int ExitInputError = 1;
constexpr int ExitBudgetExhausted = 2;

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> [args]\n"
      "\n"
      "commands:\n"
      "  localize <prog.ba> [options]   fault-localize a mini-C program\n"
      "    --entry NAME          entry function (default: main)\n"
      "    --input \"V,[A,B],..\"  failing input; omitted: find one by BMC\n"
      "    --golden N            expected return value for --input\n"
      "    --no-obligations      ignore assert/bounds obligations\n"
      "    --no-bounds           do not encode array-bounds obligations\n"
      "    --unwind N            loop unwinding bound (default: 16)\n"
      "    --bitwidth W          word width in bits (default: 16)\n"
      "    --hard-lines SPEC     never-blamed lines, e.g. 3,10-12\n"
      "    --max-diagnoses N     CoMSS cap (default: 16)\n"
      "    --weighted            weighted linear-search MaxSAT engine\n"
      "    --threads N           portfolio width (default: 1)\n"
      "    --no-preprocess       disable clause-database simplification\n"
      "    --json                JSON report instead of text\n"
      "    --stats               append solver statistics (nondeterministic)\n"
      "  repair <prog.ba> [options]     localize, then suggest a validated fix\n"
      "    --input \"V,[A,B],..\"  failing input (repeatable; first drives\n"
      "                          localization, all screen candidates)\n"
      "    --golden N            expected return for the matching --input\n"
      "                          (repeatable; count must match --input)\n"
      "    --no-off-by-one       skip constant +/-1 mutations\n"
      "    --no-op-swap          skip near-miss operator swaps\n"
      "    --max-candidates N    candidate mutants to try (default: 256)\n"
      "    --verify-budget N     conflict cap per BMC re-verification\n"
      "    --no-prescreen        skip the pooled per-line SAT prescreen\n"
      "    plus localize's --entry/--unwind/--bitwidth/--hard-lines/\n"
      "    --max-diagnoses/--weighted/--threads/--no-preprocess/\n"
      "    --no-obligations/--no-bounds/--json\n"
      "  fuzz <tcas|prog.ba> [options]  differential mutant sweep (scorecard\n"
      "                                 JSON on stdout; exit 1 on any report\n"
      "                                 mismatch between configurations)\n"
      "    --seed N              mutation stream seed (default: 1)\n"
      "    --count N             mutants to generate (default: 100)\n"
      "    --pool N              test-pool size (default: 400 tcas, 256 file)\n"
      "    --threads N           the K in the 1-vs-K differential (default: 4)\n"
      "    --classes a,b,..      restrict fault classes (op,const,assign,\n"
      "                          code,addcode,init,index,branch)\n"
      "    --max-diagnoses N     CoMSS cap per localization (default: 8)\n"
      "    --max-tests N         failing tests kept per mutant (default: 4)\n"
      "    --no-repair           skip Algorithm 2 repair on hits\n"
      "    --max-candidates N    repair candidate cap (default: 64)\n"
      "    --verify-budget N     repair BMC conflict cap (default: 200000)\n"
      "    --progress            progress counter on stderr\n"
      "    plus --entry/--unwind/--bitwidth/--no-bounds/--hard-lines\n"
      "    (file subjects only; tcas fixes its own harness options)\n"
      "  maxsat <file.wcnf> [--threads N] [--engine fumalik|linear]\n"
      "                     [--no-model] [--no-preprocess] [--stats]\n"
      "  sat <file.cnf> [--threads N] [--no-model] [--no-preprocess]\n"
      "  serve [--batch FILE] [--threads N] [--max-retries N]\n"
      "        [--watchdog SECONDS] [--faults SPEC]\n"
      "                     batch localization service: JSON-lines\n"
      "                     requests from FILE (or stdin as a daemon),\n"
      "                     framed responses on stdout in request order,\n"
      "                     each program parsed/encoded once (docs/SERVE.md).\n"
      "                     Crashed workers respawn and retry the in-flight\n"
      "                     request --max-retries times; --watchdog bounds\n"
      "                     each request's wall time; SIGINT/SIGTERM drain\n"
      "                     gracefully. --faults (or BUGASSIST_FAULTS) arms\n"
      "                     a test-only fault-injection campaign\n"
      "  dump-tcas [N]      print TCAS source (0: correct, 1..41: mutants)\n"
      "  dump-tcas --list   list the mutant catalog\n"
      "\n"
      "resource budgets (localize, repair, maxsat, sat):\n"
      "  --timeout SECONDS     wall-clock deadline (fractional ok)\n"
      "  --max-conflicts N     total conflict cap\n"
      "  --max-memory-mb N     clause-arena cap per solver, in MiB\n"
      "on exhaustion the best-so-far result is printed and the exit code\n"
      "is 2 (0: complete, 1: input/usage error)\n",
      Argv0);
  return 1;
}

/// `--flag value` / `--flag=value` matcher over argv. On a match the value
/// is stored and \p I advanced past whatever was consumed.
bool matchValueFlag(int Argc, char **Argv, int &I, const char *Name,
                    std::string &Out) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Argv[I], Name, Len) != 0)
    return false;
  if (Argv[I][Len] == '=') {
    Out = Argv[I] + Len + 1;
    return true;
  }
  if (Argv[I][Len] == '\0' && I + 1 < Argc) {
    Out = Argv[++I];
    return true;
  }
  return false;
}

bool parseSizeT(const std::string &S, size_t &Out) {
  // strtoull silently negates "-N"; reject any sign explicitly.
  if (S.empty() || S[0] == '-' || S[0] == '+')
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size() || errno == ERANGE)
    return false;
  Out = static_cast<size_t>(V);
  return true;
}

bool parseInt64(const std::string &S, int64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  long long V = std::strtoll(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

bool parsePositiveDouble(const std::string &S, double &Out) {
  if (S.empty() || S[0] == '-' || S[0] == '+')
    return false;
  char *End = nullptr;
  errno = 0;
  double V = std::strtod(S.c_str(), &End);
  if (End != S.c_str() + S.size() || errno == ERANGE || !(V > 0) ||
      V > 1e9) // anything bigger is a typo, not a deadline
    return false;
  Out = V;
  return true;
}

/// The three budget flags shared by localize / maxsat / sat.
struct BudgetFlags {
  double TimeoutSeconds = 0;
  uint64_t MaxConflicts = 0;
  uint64_t MaxMemoryMb = 0;

  bool any() const {
    return TimeoutSeconds > 0 || MaxConflicts > 0 || MaxMemoryMb > 0;
  }
  /// The Solver::Budget equivalent; the deadline starts ticking now.
  Solver::Budget solverBudget() const {
    Solver::Budget B;
    B.MaxConflicts = MaxConflicts;
    B.MaxArenaBytes = MaxMemoryMb << 20;
    if (TimeoutSeconds > 0)
      B.setDeadlineIn(TimeoutSeconds);
    return B;
  }
};

/// Tries the budget flags at Argv[I]. \returns 0 when Argv[I] is not a
/// budget flag, 1 on success, -1 on a bad value (diagnostic printed).
int matchBudgetFlag(int Argc, char **Argv, int &I, BudgetFlags &B) {
  std::string V;
  if (matchValueFlag(Argc, Argv, I, "--timeout", V)) {
    if (!parsePositiveDouble(V, B.TimeoutSeconds)) {
      std::fprintf(stderr, "bugassist: bad --timeout value '%s'\n", V.c_str());
      return -1;
    }
    return 1;
  }
  if (matchValueFlag(Argc, Argv, I, "--max-conflicts", V)) {
    size_t N;
    if (!parseSizeT(V, N) || N < 1) {
      std::fprintf(stderr, "bugassist: bad --max-conflicts value '%s'\n",
                   V.c_str());
      return -1;
    }
    B.MaxConflicts = N;
    return 1;
  }
  if (matchValueFlag(Argc, Argv, I, "--max-memory-mb", V)) {
    size_t N;
    // Capped so MaxMemoryMb << 20 cannot overflow uint64_t.
    if (!parseSizeT(V, N) || N < 1 || N > (1ull << 30)) {
      std::fprintf(stderr, "bugassist: bad --max-memory-mb value '%s'\n",
                   V.c_str());
      return -1;
    }
    B.MaxMemoryMb = N;
    return 1;
  }
  return 0;
}

// --- localize ----------------------------------------------------------------

int cmdLocalize(int Argc, char **Argv, const char *Argv0) {
  if (Argc < 1)
    return usage(Argv0);
  std::string Path = Argv[0];
  PipelineRequest R;
  R.CheckObligations = true;
  bool Json = false, Stats = false;
  BudgetFlags Budget;
  std::string V;
  for (int I = 1; I < Argc; ++I) {
    if (int M = matchBudgetFlag(Argc, Argv, I, Budget)) {
      if (M < 0)
        return ExitInputError;
    } else if (matchValueFlag(Argc, Argv, I, "--entry", V)) {
      R.Entry = V;
    } else if (matchValueFlag(Argc, Argv, I, "--input", V)) {
      std::string Error;
      auto In = parseInputVector(V, Error);
      if (!In) {
        std::fprintf(stderr, "bugassist: bad --input: %s\n", Error.c_str());
        return 1;
      }
      R.Input = std::move(*In);
    } else if (matchValueFlag(Argc, Argv, I, "--golden", V)) {
      int64_t G;
      if (!parseInt64(V, G)) {
        std::fprintf(stderr, "bugassist: bad --golden value '%s'\n",
                     V.c_str());
        return 1;
      }
      R.GoldenReturn = G;
    } else if (std::strcmp(Argv[I], "--no-obligations") == 0) {
      R.CheckObligations = false;
    } else if (std::strcmp(Argv[I], "--no-bounds") == 0) {
      R.Unroll.CheckArrayBounds = false;
    } else if (matchValueFlag(Argc, Argv, I, "--unwind", V)) {
      size_t N;
      // Capped well below INT_MAX: the unrolled trace grows linearly in
      // the bound, so anything bigger is a typo, not a request.
      if (!parseSizeT(V, N) || N < 1 || N > 1000000) {
        std::fprintf(stderr, "bugassist: bad --unwind value '%s'\n",
                     V.c_str());
        return 1;
      }
      R.Unroll.MaxLoopUnwind = static_cast<int>(N);
    } else if (matchValueFlag(Argc, Argv, I, "--bitwidth", V)) {
      size_t W;
      if (!parseSizeT(V, W) || W < 1 || W > 64) {
        std::fprintf(stderr, "bugassist: bad --bitwidth value '%s'\n",
                     V.c_str());
        return 1;
      }
      R.Unroll.BitWidth = static_cast<int>(W);
    } else if (matchValueFlag(Argc, Argv, I, "--hard-lines", V)) {
      if (!parseHardLinesSpec(V, R.Unroll.HardLines)) {
        std::fprintf(stderr, "bugassist: bad --hard-lines spec '%s'\n",
                     V.c_str());
        return 1;
      }
    } else if (matchValueFlag(Argc, Argv, I, "--max-diagnoses", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N < 1) {
        std::fprintf(stderr, "bugassist: bad --max-diagnoses value '%s'\n",
                     V.c_str());
        return 1;
      }
      R.Localize.MaxDiagnoses = N;
    } else if (std::strcmp(Argv[I], "--weighted") == 0) {
      R.Localize.Weighted = true;
    } else if (matchValueFlag(Argc, Argv, I, "--threads", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N < 1 || N > 64) {
        std::fprintf(stderr, "bugassist: bad --threads value '%s'\n",
                     V.c_str());
        return 1;
      }
      R.Localize.Threads = N;
    } else if (std::strcmp(Argv[I], "--no-preprocess") == 0) {
      R.Localize.Preprocess = false;
    } else if (std::strcmp(Argv[I], "--json") == 0) {
      Json = true;
    } else if (std::strcmp(Argv[I], "--stats") == 0) {
      Stats = true;
    } else {
      std::fprintf(stderr, "bugassist: unknown localize option '%s'\n",
                   Argv[I]);
      return 1;
    }
  }
  auto Source = readFileToString(Path);
  if (!Source) {
    std::fprintf(stderr, "bugassist: cannot read '%s'\n", Path.c_str());
    return 1;
  }

  R.Localize.TimeoutSeconds = Budget.TimeoutSeconds;
  R.Localize.MaxConflicts = Budget.MaxConflicts;
  R.Localize.MaxMemoryMb = Budget.MaxMemoryMb;
  PipelineResult Res = runLocalizePipeline(*Source, R);
  switch (Res.Status) {
  case PipelineStatus::CompileError:
    std::fprintf(stderr, "bugassist: %s does not compile:\n%s", Path.c_str(),
                 Res.Message.c_str());
    return 1;
  case PipelineStatus::InputNotFailing:
    std::fprintf(stderr, "bugassist: nothing to localize: %s\n",
                 Res.Message.c_str());
    return 1;
  case PipelineStatus::NoCounterexample:
  case PipelineStatus::Localized:
    break;
  }

  // The canonical output bytes, shared with serve mode so batch responses
  // diff clean against one-shot runs.
  std::string Body = renderLocalizeOutput(Res, Json);
  std::fwrite(Body.data(), 1, Body.size(), stdout);
  if (Res.Status == PipelineStatus::NoCounterexample)
    return 0;
  if (Stats)
    std::printf("%s", renderSearchStats(Res.Report).c_str());
  // The partial report was still printed (INCOMPLETE-marked); the exit
  // code tells scripts the enumeration did not finish.
  return Res.Report.Incomplete ? ExitBudgetExhausted : ExitComplete;
}

// --- repair ------------------------------------------------------------------

int cmdRepair(int Argc, char **Argv, const char *Argv0) {
  if (Argc < 1)
    return usage(Argv0);
  std::string Path = Argv[0];
  RepairRequest R;
  R.CheckObligations = true;
  bool Json = false;
  BudgetFlags Budget;
  std::string V;
  for (int I = 1; I < Argc; ++I) {
    if (int M = matchBudgetFlag(Argc, Argv, I, Budget)) {
      if (M < 0)
        return ExitInputError;
    } else if (matchValueFlag(Argc, Argv, I, "--entry", V)) {
      R.Entry = V;
    } else if (matchValueFlag(Argc, Argv, I, "--input", V)) {
      std::string Error;
      auto In = parseInputVector(V, Error);
      if (!In) {
        std::fprintf(stderr, "bugassist: bad --input: %s\n", Error.c_str());
        return 1;
      }
      R.Inputs.push_back(std::move(*In));
    } else if (matchValueFlag(Argc, Argv, I, "--golden", V)) {
      int64_t G;
      if (!parseInt64(V, G)) {
        std::fprintf(stderr, "bugassist: bad --golden value '%s'\n",
                     V.c_str());
        return 1;
      }
      R.Goldens.push_back(G);
    } else if (std::strcmp(Argv[I], "--no-obligations") == 0) {
      R.CheckObligations = false;
    } else if (std::strcmp(Argv[I], "--no-bounds") == 0) {
      R.Unroll.CheckArrayBounds = false;
    } else if (matchValueFlag(Argc, Argv, I, "--unwind", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N < 1 || N > 1000000) {
        std::fprintf(stderr, "bugassist: bad --unwind value '%s'\n",
                     V.c_str());
        return 1;
      }
      R.Unroll.MaxLoopUnwind = static_cast<int>(N);
    } else if (matchValueFlag(Argc, Argv, I, "--bitwidth", V)) {
      size_t W;
      if (!parseSizeT(V, W) || W < 1 || W > 64) {
        std::fprintf(stderr, "bugassist: bad --bitwidth value '%s'\n",
                     V.c_str());
        return 1;
      }
      R.Unroll.BitWidth = static_cast<int>(W);
    } else if (matchValueFlag(Argc, Argv, I, "--hard-lines", V)) {
      if (!parseHardLinesSpec(V, R.Unroll.HardLines)) {
        std::fprintf(stderr, "bugassist: bad --hard-lines spec '%s'\n",
                     V.c_str());
        return 1;
      }
    } else if (matchValueFlag(Argc, Argv, I, "--max-diagnoses", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N < 1) {
        std::fprintf(stderr, "bugassist: bad --max-diagnoses value '%s'\n",
                     V.c_str());
        return 1;
      }
      R.Localize.MaxDiagnoses = N;
    } else if (std::strcmp(Argv[I], "--weighted") == 0) {
      R.Localize.Weighted = true;
    } else if (matchValueFlag(Argc, Argv, I, "--threads", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N < 1 || N > 64) {
        std::fprintf(stderr, "bugassist: bad --threads value '%s'\n",
                     V.c_str());
        return 1;
      }
      R.Localize.Threads = N;
    } else if (std::strcmp(Argv[I], "--no-preprocess") == 0) {
      R.Localize.Preprocess = false;
    } else if (std::strcmp(Argv[I], "--no-off-by-one") == 0) {
      R.Repair.OffByOne = false;
    } else if (std::strcmp(Argv[I], "--no-op-swap") == 0) {
      R.Repair.OperatorSwap = false;
    } else if (std::strcmp(Argv[I], "--no-prescreen") == 0) {
      R.Repair.PrescreenLines = false;
    } else if (matchValueFlag(Argc, Argv, I, "--max-candidates", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N < 1) {
        std::fprintf(stderr, "bugassist: bad --max-candidates value '%s'\n",
                     V.c_str());
        return 1;
      }
      R.Repair.MaxCandidates = N;
    } else if (matchValueFlag(Argc, Argv, I, "--verify-budget", V)) {
      size_t N;
      if (!parseSizeT(V, N)) {
        std::fprintf(stderr, "bugassist: bad --verify-budget value '%s'\n",
                     V.c_str());
        return 1;
      }
      R.Repair.VerifyBudget = N;
    } else if (std::strcmp(Argv[I], "--json") == 0) {
      Json = true;
    } else {
      std::fprintf(stderr, "bugassist: unknown repair option '%s'\n",
                   Argv[I]);
      return 1;
    }
  }
  if (R.Inputs.empty()) {
    std::fprintf(stderr, "bugassist: repair requires at least one --input\n");
    return 1;
  }
  if (!R.Goldens.empty() && R.Goldens.size() != R.Inputs.size()) {
    std::fprintf(stderr,
                 "bugassist: %zu --golden values for %zu --input values\n",
                 R.Goldens.size(), R.Inputs.size());
    return 1;
  }
  auto Source = readFileToString(Path);
  if (!Source) {
    std::fprintf(stderr, "bugassist: cannot read '%s'\n", Path.c_str());
    return 1;
  }

  R.Localize.TimeoutSeconds = Budget.TimeoutSeconds;
  R.Localize.MaxConflicts = Budget.MaxConflicts;
  R.Localize.MaxMemoryMb = Budget.MaxMemoryMb;

  std::string Error;
  auto Prepared = prepareProgram(*Source, R.Entry, R.Unroll, R.Encode, Error);
  if (!Prepared) {
    std::fprintf(stderr, "bugassist: %s does not compile:\n%s", Path.c_str(),
                 Error.c_str());
    return 1;
  }
  RepairPipelineResult Res = runRepairPipeline(*Prepared, R);
  switch (Res.Status) {
  case PipelineStatus::CompileError:
  case PipelineStatus::NoCounterexample:
  case PipelineStatus::InputNotFailing:
    std::fprintf(stderr, "bugassist: nothing to repair: %s\n",
                 Res.Message.c_str());
    return 1;
  case PipelineStatus::Localized:
    break;
  }
  // Canonical output bytes, shared with serve's `repair` command.
  std::string Body = renderRepairOutput(Res, Json);
  std::fwrite(Body.data(), 1, Body.size(), stdout);
  return Res.Code == ErrorCode::BudgetExhausted ? ExitBudgetExhausted
                                                : ExitComplete;
}

// --- fuzz --------------------------------------------------------------------

/// Seeded pool for a file subject: uniform scalars in a small signed range
/// (and per-element for arrays), matching the spirit of tcasTestPool.
std::vector<InputVector> genericTestPool(const FunctionDecl &Entry,
                                         size_t Count, uint64_t Seed) {
  Rng R(Seed);
  std::vector<InputVector> Pool;
  Pool.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    InputVector In;
    for (const auto &P : Entry.params()) {
      if (P->type().isArray()) {
        std::vector<int64_t> Vs;
        for (int J = 0; J < P->type().ArraySize; ++J)
          Vs.push_back(R.range(-100, 100));
        In.push_back(InputValue::array(std::move(Vs)));
      } else if (P->type().isBool()) {
        In.push_back(InputValue::scalar(static_cast<int64_t>(R.below(2))));
      } else {
        In.push_back(InputValue::scalar(R.range(-100, 100)));
      }
    }
    Pool.push_back(std::move(In));
  }
  return Pool;
}

int cmdFuzz(int Argc, char **Argv, const char *Argv0) {
  if (Argc < 1)
    return usage(Argv0);
  std::string Target = Argv[0];
  FuzzOptions Opts;
  Opts.Threads = 4;
  size_t PoolSize = 0; // 0 = subject default
  std::string Entry = "main";
  UnrollOptions Unroll;
  bool UnrollFlagSeen = false, ShowProgress = false;
  std::set<uint32_t> HardLines;
  std::string V;
  for (int I = 1; I < Argc; ++I) {
    if (matchValueFlag(Argc, Argv, I, "--seed", V)) {
      size_t N;
      if (!parseSizeT(V, N)) {
        std::fprintf(stderr, "bugassist: bad --seed value '%s'\n", V.c_str());
        return 1;
      }
      Opts.Seed = N;
    } else if (matchValueFlag(Argc, Argv, I, "--count", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N < 1 || N > 100000) {
        std::fprintf(stderr, "bugassist: bad --count value '%s'\n", V.c_str());
        return 1;
      }
      Opts.Count = N;
    } else if (matchValueFlag(Argc, Argv, I, "--pool", V)) {
      if (!parseSizeT(V, PoolSize) || PoolSize < 1 || PoolSize > 1000000) {
        std::fprintf(stderr, "bugassist: bad --pool value '%s'\n", V.c_str());
        return 1;
      }
    } else if (matchValueFlag(Argc, Argv, I, "--threads", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N < 1 || N > 64) {
        std::fprintf(stderr, "bugassist: bad --threads value '%s'\n",
                     V.c_str());
        return 1;
      }
      Opts.Threads = static_cast<int>(N);
    } else if (matchValueFlag(Argc, Argv, I, "--classes", V)) {
      for (size_t Pos = 0; Pos < V.size();) {
        size_t Comma = V.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = V.size();
        std::string Name = V.substr(Pos, Comma - Pos);
        ErrorType T;
        if (!errorTypeFromName(Name.c_str(), T)) {
          std::fprintf(stderr, "bugassist: unknown fault class '%s'\n",
                       Name.c_str());
          return 1;
        }
        Opts.Classes.push_back(T);
        Pos = Comma + 1;
      }
    } else if (matchValueFlag(Argc, Argv, I, "--max-diagnoses", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N < 1) {
        std::fprintf(stderr, "bugassist: bad --max-diagnoses value '%s'\n",
                     V.c_str());
        return 1;
      }
      Opts.MaxDiagnoses = N;
    } else if (matchValueFlag(Argc, Argv, I, "--max-tests", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N < 1) {
        std::fprintf(stderr, "bugassist: bad --max-tests value '%s'\n",
                     V.c_str());
        return 1;
      }
      Opts.MaxFailingTests = N;
    } else if (std::strcmp(Argv[I], "--no-repair") == 0) {
      Opts.TryRepair = false;
    } else if (matchValueFlag(Argc, Argv, I, "--max-candidates", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N < 1) {
        std::fprintf(stderr, "bugassist: bad --max-candidates value '%s'\n",
                     V.c_str());
        return 1;
      }
      Opts.RepairMaxCandidates = N;
    } else if (matchValueFlag(Argc, Argv, I, "--verify-budget", V)) {
      size_t N;
      if (!parseSizeT(V, N)) {
        std::fprintf(stderr, "bugassist: bad --verify-budget value '%s'\n",
                     V.c_str());
        return 1;
      }
      Opts.RepairVerifyBudget = N;
    } else if (matchValueFlag(Argc, Argv, I, "--entry", V)) {
      Entry = V;
    } else if (matchValueFlag(Argc, Argv, I, "--unwind", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N < 1 || N > 1000000) {
        std::fprintf(stderr, "bugassist: bad --unwind value '%s'\n",
                     V.c_str());
        return 1;
      }
      Unroll.MaxLoopUnwind = static_cast<int>(N);
      UnrollFlagSeen = true;
    } else if (matchValueFlag(Argc, Argv, I, "--bitwidth", V)) {
      size_t W;
      if (!parseSizeT(V, W) || W < 1 || W > 64) {
        std::fprintf(stderr, "bugassist: bad --bitwidth value '%s'\n",
                     V.c_str());
        return 1;
      }
      Unroll.BitWidth = static_cast<int>(W);
      UnrollFlagSeen = true;
    } else if (std::strcmp(Argv[I], "--no-bounds") == 0) {
      Unroll.CheckArrayBounds = false;
      UnrollFlagSeen = true;
    } else if (matchValueFlag(Argc, Argv, I, "--hard-lines", V)) {
      if (!parseHardLinesSpec(V, HardLines)) {
        std::fprintf(stderr, "bugassist: bad --hard-lines spec '%s'\n",
                     V.c_str());
        return 1;
      }
    } else if (std::strcmp(Argv[I], "--progress") == 0) {
      ShowProgress = true;
    } else {
      std::fprintf(stderr, "bugassist: unknown fuzz option '%s'\n", Argv[I]);
      return 1;
    }
  }

  FuzzSubject Subject;
  std::unique_ptr<Program> Owned;
  DiagEngine Diags;
  if (Target == "tcas") {
    if (UnrollFlagSeen)
      std::fprintf(stderr,
                   "bugassist: note: tcas subject fixes unroll options; "
                   "--unwind/--bitwidth/--no-bounds ignored\n");
    Owned = parseAndAnalyze(tcasSource(), Diags);
    if (!Owned) {
      std::fprintf(stderr, "bugassist: internal: tcas does not compile\n");
      return 1;
    }
    Subject.Name = "tcas";
    Subject.Unroll = tcasUnrollOptions();
    Subject.CheckObligations = false; // golden-return methodology
    Subject.Pool = tcasTestPool(PoolSize ? PoolSize : 400);
  } else {
    auto Source = readFileToString(Target);
    if (!Source) {
      std::fprintf(stderr, "bugassist: cannot read '%s'\n", Target.c_str());
      return 1;
    }
    Owned = parseAndAnalyze(*Source, Diags);
    if (!Owned) {
      std::fprintf(stderr, "bugassist: %s does not compile:\n%s",
                   Target.c_str(), Diags.render().c_str());
      return 1;
    }
    const FunctionDecl *EntryFn = Owned->findFunction(Entry);
    if (!EntryFn) {
      std::fprintf(stderr, "bugassist: no function '%s' in %s\n",
                   Entry.c_str(), Target.c_str());
      return 1;
    }
    size_t Dot = Target.find_last_of("/\\");
    Subject.Name = Dot == std::string::npos ? Target : Target.substr(Dot + 1);
    Subject.Entry = Entry;
    Subject.Unroll = Unroll;
    Subject.CheckObligations = true;
    Subject.Pool =
        genericTestPool(*EntryFn, PoolSize ? PoolSize : 256, 20110601);
  }
  Subject.Base = Owned.get();
  Subject.ProtectedLines = Subject.Unroll.HardLines;
  Subject.ProtectedLines.insert(HardLines.begin(), HardLines.end());
  Subject.Unroll.HardLines.insert(HardLines.begin(), HardLines.end());

  FuzzProgress Progress;
  if (ShowProgress)
    Progress = [](size_t Done, size_t Total) {
      if (Done % 10 == 0 || Done == Total)
        std::fprintf(stderr, "fuzz: %zu/%zu\n", Done, Total);
    };
  FuzzResult Res = runFuzzSweep(Subject, Opts, Progress);
  std::string Card = renderFuzzScorecard(Subject, Opts, Res);
  std::fwrite(Card.data(), 1, Card.size(), stdout);
  for (const std::string &Note : Res.MismatchNotes)
    std::fprintf(stderr, "MISMATCH: %s\n", Note.c_str());
  // Any differential mismatch is a failure, not a warning.
  return Res.TotalMismatches == 0 ? ExitComplete : ExitInputError;
}

// --- maxsat / sat ------------------------------------------------------------

void printModelLine(const std::vector<LBool> &Model, int NumVars,
                    bool TrailingZero) {
  std::printf("v");
  for (int V = 0; V < NumVars; ++V)
    std::printf(" %s%d", Model[V] == LBool::True ? "" : "-", V + 1);
  if (TrailingZero)
    std::printf(" 0");
  std::printf("\n");
}

int cmdMaxsat(int Argc, char **Argv, const char *Argv0) {
  if (Argc < 1)
    return usage(Argv0);
  std::string Path = Argv[0], Engine = "auto", V;
  size_t Threads = 1;
  bool Model = true, Stats = false, Preprocess = true;
  BudgetFlags Budget;
  for (int I = 1; I < Argc; ++I) {
    if (int M = matchBudgetFlag(Argc, Argv, I, Budget)) {
      if (M < 0)
        return ExitInputError;
    } else if (matchValueFlag(Argc, Argv, I, "--threads", V)) {
      if (!parseSizeT(V, Threads) || Threads < 1 || Threads > 64) {
        std::fprintf(stderr, "bugassist: bad --threads value '%s'\n",
                     V.c_str());
        return 1;
      }
    } else if (matchValueFlag(Argc, Argv, I, "--engine", V)) {
      Engine = V;
      if (Engine != "fumalik" && Engine != "linear") {
        std::fprintf(stderr, "bugassist: --engine must be fumalik or "
                             "linear, got '%s'\n",
                     Engine.c_str());
        return 1;
      }
    } else if (std::strcmp(Argv[I], "--no-model") == 0) {
      Model = false;
    } else if (std::strcmp(Argv[I], "--no-preprocess") == 0) {
      Preprocess = false;
    } else if (std::strcmp(Argv[I], "--stats") == 0) {
      Stats = true;
    } else {
      std::fprintf(stderr, "bugassist: unknown maxsat option '%s'\n",
                   Argv[I]);
      return 1;
    }
  }

  DimacsParseError Err;
  auto Parsed = readDimacsFile(Path, Err);
  if (!Parsed) {
    std::fprintf(stderr, "bugassist: %s: %s\n", Path.c_str(),
                 Err.render().c_str());
    return 1;
  }

  bool FromWcnf = Parsed->Weighted;
  bool AnyWeight = false;
  MaxSatInstance Inst = toMaxSatInstance(std::move(*Parsed), &AnyWeight);
  // Fu-Malik ignores weights, so weighted instances force linear search.
  bool Weighted = Engine == "linear" || (Engine == "auto" && AnyWeight);
  if (!Weighted && Engine == "fumalik" && AnyWeight)
    std::printf("c warning: fumalik engine ignores the non-unit weights\n");
  std::printf("c %s: %d vars, %zu hard, %zu soft%s, engine=%s, threads=%zu\n",
              Path.c_str(), Inst.NumVars, Inst.Hard.size(), Inst.Soft.size(),
              FromWcnf ? "" : " (cnf)",
              Weighted ? "linear" : "fumalik", Threads);

  Solver::Options SOpts;
  SOpts.Preprocess = Preprocess;
  std::unique_ptr<MaxSatSession> Session;
  if (Threads > 1)
    Session = makePortfolioSession(Inst, Weighted, Threads,
                                   /*ConflictBudget=*/0, SOpts);
  else
    Session = makeMaxSatSession(Inst, Weighted, /*ConflictBudget=*/0,
                                SOpts, /*Canonical=*/true);
  if (Budget.any())
    Session->setBudget(Budget.solverBudget());
  MaxSatResult R = Session->solve();

  switch (R.Status) {
  case MaxSatStatus::Optimum:
    std::printf("o %llu\ns OPTIMUM FOUND\n",
                static_cast<unsigned long long>(R.Cost));
    if (Model)
      printModelLine(R.Model, Inst.NumVars, /*TrailingZero=*/false);
    break;
  case MaxSatStatus::HardUnsat:
    std::printf("s UNSATISFIABLE\n");
    break;
  case MaxSatStatus::Unknown:
    // Anytime output: the o-line reports the best (timing-dependent)
    // upper bound witnessed before the budget bit, v its model.
    if (R.UpperBound != UINT64_MAX) {
      std::printf("o %llu\n", static_cast<unsigned long long>(R.UpperBound));
      if (R.LowerBound > 0)
        std::printf("c lower bound %llu\n",
                    static_cast<unsigned long long>(R.LowerBound));
      std::printf("s UNKNOWN\n");
      if (Model && !R.BestModel.empty())
        printModelLine(R.BestModel, Inst.NumVars, /*TrailingZero=*/false);
    } else {
      std::printf("s UNKNOWN\n");
    }
    break;
  }
  if (Stats) {
    const SolverStats &S = R.Search;
    std::printf("c sat_calls=%llu conflicts=%llu propagations=%llu "
                "restarts=%llu\n",
                static_cast<unsigned long long>(R.SatCalls),
                static_cast<unsigned long long>(S.Conflicts),
                static_cast<unsigned long long>(S.Propagations),
                static_cast<unsigned long long>(S.Restarts));
    std::printf("c vars_eliminated=%llu clauses_subsumed=%llu "
                "lits_self_subsumed=%llu reconstruction_bytes=%llu\n",
                static_cast<unsigned long long>(S.VarsEliminated),
                static_cast<unsigned long long>(S.ClausesSubsumed),
                static_cast<unsigned long long>(S.LitsSelfSubsumed),
                static_cast<unsigned long long>(S.ReconstructBytes));
  }
  return R.Status == MaxSatStatus::Unknown ? ExitBudgetExhausted
                                           : ExitComplete;
}

int cmdSat(int Argc, char **Argv, const char *Argv0) {
  if (Argc < 1)
    return usage(Argv0);
  std::string Path = Argv[0], V;
  size_t Threads = 1;
  bool Model = true, Preprocess = true;
  BudgetFlags Budget;
  for (int I = 1; I < Argc; ++I) {
    if (int M = matchBudgetFlag(Argc, Argv, I, Budget)) {
      if (M < 0)
        return ExitInputError;
    } else if (matchValueFlag(Argc, Argv, I, "--threads", V)) {
      if (!parseSizeT(V, Threads) || Threads < 1 || Threads > 64) {
        std::fprintf(stderr, "bugassist: bad --threads value '%s'\n",
                     V.c_str());
        return 1;
      }
    } else if (std::strcmp(Argv[I], "--no-model") == 0) {
      Model = false;
    } else if (std::strcmp(Argv[I], "--no-preprocess") == 0) {
      Preprocess = false;
    } else {
      std::fprintf(stderr, "bugassist: unknown sat option '%s'\n", Argv[I]);
      return 1;
    }
  }

  DimacsParseError Err;
  auto Parsed = readDimacsFile(Path, Err);
  if (!Parsed) {
    std::fprintf(stderr, "bugassist: %s: %s\n", Path.c_str(),
                 Err.render().c_str());
    return 1;
  }
  // Soft clauses of a WCNF are solved as hard here; warn instead of
  // silently deciding a different formula.
  std::vector<Clause> Clauses = std::move(Parsed->Hard);
  if (!Parsed->Soft.empty()) {
    std::printf("c warning: treating %zu soft clauses as hard (use the "
                "maxsat command for optimization)\n",
                Parsed->Soft.size());
    for (DimacsSoftClause &C : Parsed->Soft)
      Clauses.push_back(std::move(C.Lits));
  }
  std::printf("c %s: %d vars, %zu clauses, threads=%zu\n", Path.c_str(),
              Parsed->NumVars, Clauses.size(), Threads);

  // Threads <= 1 degenerates to a plain single solver on this thread.
  Solver::Options SOpts;
  SOpts.Preprocess = Preprocess;
  SatRaceResult R = racePortfolioSat(Clauses, Parsed->NumVars, Threads,
                                     SOpts, Budget.solverBudget());
  if (R.Result == LBool::True)
    std::printf("s SATISFIABLE\n");
  else if (R.Result == LBool::False)
    std::printf("s UNSATISFIABLE\n");
  else
    std::printf("s UNKNOWN\n");
  if (Threads > 1 && R.Winner >= 0)
    std::printf("c winner=worker %d\n", R.Winner);
  if (Model && R.Result == LBool::True)
    printModelLine(R.Model, Parsed->NumVars, /*TrailingZero=*/true);
  return R.Result == LBool::Undef ? ExitBudgetExhausted : ExitComplete;
}

// --- serve -------------------------------------------------------------------

/// SIGINT/SIGTERM -> graceful drain. requestDrain is one atomic store
/// (async-signal-safe); the handlers are installed *without* SA_RESTART so
/// a daemon blocked reading stdin is kicked out of the read by the signal
/// and notices the flag immediately.
extern "C" void serveDrainHandler(int) { LocalizeServer::requestDrain(); }

void installDrainHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = serveDrainHandler;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // no SA_RESTART: interrupt blocking reads
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
}

int cmdServe(int Argc, char **Argv, const char *Argv0) {
  ServeOptions SO;
  std::string BatchPath, V;
  // Test-only fault campaign: the env var arms one for a whole harness
  // run; an explicit --faults flag overrides it.
  std::string FaultSpec;
  if (const char *Env = std::getenv("BUGASSIST_FAULTS"))
    FaultSpec = Env;
  for (int I = 0; I < Argc; ++I) {
    if (matchValueFlag(Argc, Argv, I, "--batch", V)) {
      BatchPath = V;
    } else if (matchValueFlag(Argc, Argv, I, "--threads", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N < 1 || N > 64) {
        std::fprintf(stderr, "bugassist: bad --threads value '%s'\n",
                     V.c_str());
        return ExitInputError;
      }
      SO.Threads = N;
    } else if (matchValueFlag(Argc, Argv, I, "--max-retries", V)) {
      size_t N;
      if (!parseSizeT(V, N) || N > 16) {
        std::fprintf(stderr, "bugassist: bad --max-retries value '%s'\n",
                     V.c_str());
        return ExitInputError;
      }
      SO.MaxRetries = static_cast<int>(N);
    } else if (matchValueFlag(Argc, Argv, I, "--watchdog", V)) {
      if (!parsePositiveDouble(V, SO.WatchdogSeconds)) {
        std::fprintf(stderr, "bugassist: bad --watchdog value '%s'\n",
                     V.c_str());
        return ExitInputError;
      }
    } else if (matchValueFlag(Argc, Argv, I, "--faults", V)) {
      FaultSpec = V;
    } else {
      std::fprintf(stderr, "bugassist: unknown serve option '%s'\n", Argv[I]);
      return usage(Argv0);
    }
  }

  if (!FaultSpec.empty()) {
    std::string Error;
    if (!faultinject::armSpec(FaultSpec, Error)) {
      std::fprintf(stderr, "bugassist: bad fault spec: %s\n", Error.c_str());
      return ExitInputError;
    }
  }
  installDrainHandlers();

  LocalizeServer Server(SO);
  if (BatchPath.empty()) {
    // Daemon loop: requests on stdin until EOF, responses flushed as their
    // turn in the request order arrives.
    ServeSummary S = Server.run(std::cin, std::cout, std::cerr);
    return S.ExitCode;
  }
  std::ifstream Batch(BatchPath);
  if (!Batch) {
    std::fprintf(stderr, "bugassist: cannot read '%s'\n", BatchPath.c_str());
    return ExitInputError;
  }
  ServeSummary S = Server.run(Batch, std::cout, std::cerr);
  return S.ExitCode;
}

// --- dump-tcas ---------------------------------------------------------------

int cmdDumpTcas(int Argc, char **Argv) {
  if (Argc >= 1 && std::strcmp(Argv[0], "--list") == 0) {
    std::printf("%-4s %-7s %-7s %-10s %s\n", "ver", "type", "errors",
                "bug lines", "description");
    for (const TcasMutant &M : tcasMutants()) {
      std::string Lines;
      for (uint32_t L : M.BugLines)
        Lines += (Lines.empty() ? "" : ",") + std::to_string(L);
      std::printf("v%-3d %-7s %-7d %-10s %s\n", M.Version,
                  errorTypeName(M.Type), M.ErrorCount, Lines.c_str(),
                  M.Description.c_str());
    }
    return 0;
  }
  int64_t Version = 0;
  if (Argc >= 1 && std::strcmp(Argv[0], "golden") != 0 &&
      (!parseInt64(Argv[0], Version) || Version < 0 || Version > 41)) {
    std::fprintf(stderr,
                 "bugassist: dump-tcas takes 0/golden or a version 1..41\n");
    return 1;
  }
  const std::string &Source =
      Version == 0 ? tcasSource()
                   : tcasMutants()[static_cast<size_t>(Version - 1)].Source;
  std::fwrite(Source.data(), 1, Source.size(), stdout);
  if (!Source.empty() && Source.back() != '\n')
    std::printf("\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage(argv[0]);
  const char *Cmd = argv[1];
  if (std::strcmp(Cmd, "localize") == 0)
    return cmdLocalize(argc - 2, argv + 2, argv[0]);
  if (std::strcmp(Cmd, "repair") == 0)
    return cmdRepair(argc - 2, argv + 2, argv[0]);
  if (std::strcmp(Cmd, "fuzz") == 0)
    return cmdFuzz(argc - 2, argv + 2, argv[0]);
  if (std::strcmp(Cmd, "maxsat") == 0)
    return cmdMaxsat(argc - 2, argv + 2, argv[0]);
  if (std::strcmp(Cmd, "sat") == 0)
    return cmdSat(argc - 2, argv + 2, argv[0]);
  if (std::strcmp(Cmd, "serve") == 0)
    return cmdServe(argc - 2, argv + 2, argv[0]);
  if (std::strcmp(Cmd, "dump-tcas") == 0)
    return cmdDumpTcas(argc - 2, argv + 2);
  if (std::strcmp(Cmd, "--help") == 0 || std::strcmp(Cmd, "-h") == 0 ||
      std::strcmp(Cmd, "help") == 0) {
    usage(argv[0]);
    return 0;
  }
  std::fprintf(stderr, "bugassist: unknown command '%s'\n", Cmd);
  return usage(argv[0]);
}
