#!/usr/bin/env python3
"""Parse a `bugassist serve` output stream into frames.

A frame is a JSON header line, exactly `bytes` body bytes, and a JSON
stats trailer line (docs/SERVE.md). The serve-smoke CI job uses this to
compare responses as parsed frames rather than raw streams -- which of
several same-program requests pays the cache miss, and every timing
number, is scheduling-dependent, while the (id, status, exit, body)
tuples are not.

Usage:
  serve_frames.py OUT               # list id/status/exit/cache per frame
  serve_frames.py OUT --body-of ID  # print one frame's body verbatim
  serve_frames.py OUT --require-status ok   # fail unless all match
"""

import argparse
import json
import sys
from pathlib import Path


def parse_frames(raw: bytes):
    frames = []
    pos = 0
    while pos < len(raw):
        nl = raw.index(b"\n", pos)
        header = json.loads(raw[pos:nl])
        body_len = header["bytes"]
        body = raw[nl + 1 : nl + 1 + body_len]
        if len(body) != body_len:
            raise ValueError(f"truncated body for id {header.get('id')!r}")
        pos = nl + 1 + body_len
        nl = raw.index(b"\n", pos)
        trailer = json.loads(raw[pos:nl])
        pos = nl + 1
        frames.append({"header": header, "body": body, "trailer": trailer})
    return frames


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("stream", type=Path, help="serve stdout capture")
    ap.add_argument("--body-of", metavar="ID",
                    help="print the body of the frame with this id")
    ap.add_argument("--require-status", metavar="STATUS",
                    help="exit 1 unless every frame has this status")
    args = ap.parse_args()

    frames = parse_frames(args.stream.read_bytes())
    if not frames:
        print("no frames parsed", file=sys.stderr)
        return 1

    ok = True
    if args.require_status:
        for f in frames:
            h = f["header"]
            if h["status"] != args.require_status:
                print(f"frame {h.get('id')!r}: status {h['status']!r} "
                      f"(error: {h.get('error', '')!r})", file=sys.stderr)
                ok = False

    if args.body_of is not None:
        matches = [f for f in frames if f["header"].get("id") == args.body_of]
        if len(matches) != 1:
            print(f"{len(matches)} frames with id {args.body_of!r}",
                  file=sys.stderr)
            return 1
        sys.stdout.buffer.write(matches[0]["body"])
    else:
        for f in frames:
            h = f["header"]
            print(h.get("id", ""), h["cmd"], h["status"], h["exit"],
                  h.get("cache", "-"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
