#!/usr/bin/env bash
# Installs GoogleTest on an Ubuntu runner. Prefers the distro's prebuilt
# static libraries; falls back to building the packaged sources when the
# image ships headers only.
set -euo pipefail

sudo apt-get update
sudo apt-get install -y libgtest-dev

if [ ! -e /usr/lib/x86_64-linux-gnu/libgtest.a ] && [ ! -e /usr/lib/libgtest.a ]; then
  sudo cmake -S /usr/src/googletest -B /tmp/gtest-build -DCMAKE_BUILD_TYPE=Release
  sudo cmake --build /tmp/gtest-build -j "$(nproc)"
  sudo cmake --install /tmp/gtest-build
fi
