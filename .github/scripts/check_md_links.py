#!/usr/bin/env python3
"""Fail the build on broken relative links in README.md / docs/*.md.

Checks every markdown link and image target in the repo's top-level
README.md and everything under docs/. External links (http/https/mailto),
pure in-page anchors (#...), and site-relative GitHub URLs that escape the
repository root (e.g. the ../../actions/... badge link) are skipped;
everything else must resolve to an existing file or directory.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

# [text](target) and ![alt](target); target may carry a #fragment.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Fenced code blocks must not contribute false links.
FENCE_RE = re.compile(r"^(```|~~~)")


def iter_md_files():
    readme = REPO / "README.md"
    if readme.exists():
        yield readme
    docs = REPO / "docs"
    if docs.is_dir():
        yield from sorted(docs.rglob("*.md"))


def check_file(md):
    broken = []
    in_fence = False
    for lineno, line in enumerate(md.read_text().splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            try:
                resolved.relative_to(REPO)
            except ValueError:
                continue  # site-relative GitHub URL (escapes the repo)
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main():
    files = list(iter_md_files())
    if not files:
        print("check_md_links: no markdown files found", file=sys.stderr)
        return 1
    failures = 0
    for md in files:
        for lineno, target in check_file(md):
            rel = md.relative_to(REPO)
            print(f"{rel}:{lineno}: broken link: {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"check_md_links: {failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"check_md_links: {len(files)} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
