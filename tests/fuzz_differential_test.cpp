//===- fuzz_differential_test.cpp - Bounded differential fuzz sweep ----------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Tier-1 bounded version of the `bugassist fuzz` campaign: ~100 fixed-seed
// mutants across TCAS v0 and two SmallDemos subjects. Every localized
// mutant is diagnosed under three configurations (threads=1, threads=K,
// preprocessing off) inside runFuzzSweep, which byte-compares the
// canonical reports; any mismatch is a test failure, not a warning. The
// per-class tallies must also be identical no matter which K is used, and
// repairs the sweep machinery accepts must re-verify clean under BMC.
//
//===----------------------------------------------------------------------===//

#include "mutate/FuzzSweep.h"

#include "core/Repair.h"
#include "lang/Sema.h"
#include "programs/SmallDemos.h"
#include "programs/Tcas.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

void expectNoMismatches(const FuzzResult &R) {
  EXPECT_EQ(R.TotalMismatches, 0u);
  for (const std::string &Note : R.MismatchNotes)
    ADD_FAILURE() << Note;
}

bool sameTallies(const FuzzResult &A, const FuzzResult &B) {
  for (size_t I = 0; I < NumErrorTypes; ++I) {
    const FuzzClassStats &X = A.PerClass[I], &Y = B.PerClass[I];
    if (X.Mutants != Y.Mutants || X.Failing != Y.Failing ||
        X.Localized != Y.Localized || X.Hits != Y.Hits ||
        X.Repaired != Y.Repaired || X.Mismatches != Y.Mismatches)
      return false;
  }
  return A.Generated == B.Generated;
}

} // namespace

TEST(FuzzDifferential, TcasSweepIsMismatchFreeAndWidthInvariant) {
  auto Base = compile(tcasSource());
  FuzzSubject Subject;
  Subject.Base = Base.get();
  Subject.Name = "tcas";
  Subject.Unroll = tcasUnrollOptions();
  Subject.CheckObligations = false;
  Subject.Pool = tcasTestPool(300);
  Subject.ProtectedLines = Subject.Unroll.HardLines;

  FuzzOptions Opts;
  Opts.Seed = 1;
  Opts.Count = 60;
  Opts.Threads = 4;
  FuzzResult R4 = runFuzzSweep(Subject, Opts);
  EXPECT_EQ(R4.Generated, 60u);
  expectNoMismatches(R4);

  // Some mutants must actually exercise the full path, or the
  // differential is vacuous.
  size_t Failing = 0, Hits = 0;
  for (const FuzzClassStats &Row : R4.PerClass) {
    Failing += Row.Failing;
    Hits += Row.Hits;
  }
  EXPECT_GT(Failing, 10u);
  EXPECT_GT(Hits, 5u);

  // The scorecard is derived entirely from the threads=1 run, so the
  // width used for the differential twin must not change a single tally.
  Opts.Threads = 2;
  FuzzResult R2 = runFuzzSweep(Subject, Opts);
  expectNoMismatches(R2);
  EXPECT_TRUE(sameTallies(R4, R2)) << "tallies depend on the thread width";

  // Same seed, same options => the sweep itself is deterministic.
  FuzzResult R2b = runFuzzSweep(Subject, Opts);
  EXPECT_TRUE(sameTallies(R2, R2b)) << "sweep is not deterministic";
}

TEST(FuzzDifferential, Program1SweepIsMismatchFree) {
  auto Base = compile(program1Source());
  FuzzSubject Subject;
  Subject.Base = Base.get();
  Subject.Name = "program1";
  Subject.Unroll.BitWidth = 16;
  Subject.CheckObligations = true;
  for (int64_t X = -6; X <= 6; ++X)
    Subject.Pool.push_back({InputValue::scalar(X)});

  FuzzOptions Opts;
  Opts.Seed = 2;
  Opts.Count = 24;
  Opts.Threads = 4;
  FuzzResult R = runFuzzSweep(Subject, Opts);
  EXPECT_EQ(R.Generated, 24u);
  expectNoMismatches(R);
}

TEST(FuzzDifferential, Program3FixedSweepIsMismatchFree) {
  // The squareroot demo, from its *fixed* source: mutants are judged
  // against a verified-correct golden, the paper's Table 1 setup.
  auto Base = compile(program3FixedSource());
  FuzzSubject Subject;
  Subject.Base = Base.get();
  Subject.Name = "program3";
  Subject.Unroll.BitWidth = 16;
  Subject.Unroll.MaxLoopUnwind = 10;
  Subject.CheckObligations = true;
  Subject.Pool.push_back({}); // main() takes no inputs

  FuzzOptions Opts;
  Opts.Seed = 3;
  Opts.Count = 16;
  Opts.Threads = 2;
  FuzzResult R = runFuzzSweep(Subject, Opts);
  EXPECT_EQ(R.Generated, 16u);
  expectNoMismatches(R);
}

TEST(FuzzDifferential, AcceptedRepairsReverifyCleanUnderBmc) {
  // Drive the same pooled repair path the sweep uses, but keep the fixed
  // programs and independently re-verify each: BMC on the accepted mutant
  // must find no counterexample within the encoding bounds.
  auto Base = compile(program1Source());
  UnrollOptions UO;
  UO.BitWidth = 16;

  MutantGeneratorOptions GenOpts;
  GenOpts.Seed = 4;
  MutantGenerator Gen(*Base, GenOpts);
  auto Mutants = Gen.generate(16);
  ASSERT_FALSE(Mutants.empty());

  size_t Accepted = 0;
  for (GeneratedMutant &M : Mutants) {
    // A failing input for this mutant, if one exists in bounds.
    BugAssistDriver Driver(*M.Prog, "main", UO);
    auto Cex = Driver.findCounterexample(Spec{});
    if (!Cex)
      continue;
    RepairOptions RO;
    RO.Unroll = UO;
    RO.MaxCandidates = 64;
    RO.MaxInterpSteps = 100000;
    RepairResult R =
        repairProgram(*M.Prog, Driver, "main", {*Cex}, Spec{}, nullptr, RO);
    if (!R.Found)
      continue;
    ++Accepted;
    BugAssistDriver Fixed(*R.Suggestion.FixedProgram, "main", UO);
    EXPECT_FALSE(Fixed.findCounterexample(Spec{}).has_value())
        << "accepted repair for '" << M.Spec.Description
        << "' still has a counterexample";
  }
  EXPECT_GT(Accepted, 0u) << "no repair was ever accepted; test is vacuous";
}
