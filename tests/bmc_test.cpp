//===- bmc_test.cpp - Unroller / Encoder / TraceFormula tests ------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "bmc/TraceFormula.h"

#include "bmc/Encoder.h"
#include "bmc/Unroller.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

TraceFormula makeFormula(std::string_view Src, UnrollOptions UOpts = {},
                         EncodeOptions EOpts = {}) {
  auto P = compile(Src);
  EOpts.BitWidth = UOpts.BitWidth;
  UnrolledProgram UP = unrollProgram(*P, "main", UOpts);
  return TraceFormula(encodeProgram(UP, EOpts));
}

} // namespace

TEST(Unroller, StraightLineSsa) {
  auto P = compile("int main(int x) { int y = x + 1; y = y * 2; return y; }");
  UnrolledProgram UP = unrollProgram(*P, "main");
  // Inputs: x. UserAssign defs: y=x+1, y=y*2, return y.
  EXPECT_EQ(UP.Inputs.size(), 1u);
  EXPECT_EQ(UP.numAssignDefs(), 3u);
  EXPECT_NE(UP.RetVal, NoSsa);
  EXPECT_TRUE(UP.Obligations.empty());
}

TEST(Unroller, BranchProducesPhi) {
  auto P = compile("int main(int x) {"
                   "  int y = 0;"
                   "  if (x > 0) y = 1; else y = 2;"
                   "  return y;"
                   "}");
  UnrolledProgram UP = unrollProgram(*P, "main");
  bool SawPhi = false;
  for (const TraceDef &D : UP.Defs)
    SawPhi |= D.Role == DefRole::Phi;
  EXPECT_TRUE(SawPhi);
}

TEST(Unroller, LoopUnwindingBoundsDefs) {
  const char *Src = "int main(int n) {"
                    "  int s = 0; int i = 0;"
                    "  while (i < n) { s = s + i; i = i + 1; }"
                    "  return s;"
                    "}";
  auto P = compile(Src);
  UnrollOptions O3;
  O3.MaxLoopUnwind = 3;
  UnrollOptions O6;
  O6.MaxLoopUnwind = 6;
  UnrolledProgram U3 = unrollProgram(*P, "main", O3);
  UnrolledProgram U6 = unrollProgram(*P, "main", O6);
  EXPECT_GT(U6.Defs.size(), U3.Defs.size());
  EXPECT_EQ(U3.MaxUnwinding, 3u);
  EXPECT_EQ(U6.MaxUnwinding, 6u);
  // One unwinding assumption per bound.
  EXPECT_EQ(U3.Assumptions.size(), 1u);
}

TEST(Unroller, AssertMakesObligation) {
  auto P = compile("int main(int x) { assert(x < 10); return x; }");
  UnrolledProgram UP = unrollProgram(*P, "main");
  ASSERT_EQ(UP.Obligations.size(), 1u);
  EXPECT_EQ(UP.Obligations[0].Loc.Line, 1u);
}

TEST(Unroller, ArrayAccessMakesBoundsObligations) {
  auto P = compile("int main(int i) { int a[3]; a[i] = 1; return a[i]; }");
  UnrollOptions On;
  UnrolledProgram UP = unrollProgram(*P, "main", On);
  EXPECT_EQ(UP.Obligations.size(), 2u); // write + read
  UnrollOptions Off;
  Off.CheckArrayBounds = false;
  UnrolledProgram UP2 = unrollProgram(*P, "main", Off);
  EXPECT_TRUE(UP2.Obligations.empty());
}

TEST(Unroller, TrustedFunctionsMarked) {
  const char *Src = "int lib(int x) { return x * 2; }"
                    "int main(int x) { return lib(x) + 1; }";
  auto P = compile(Src);
  UnrollOptions O;
  O.TrustedFunctions.insert("lib");
  UnrolledProgram UP = unrollProgram(*P, "main", O);
  bool SawTrusted = false, SawUntrusted = false;
  for (const TraceDef &D : UP.Defs) {
    if (D.Role == DefRole::UserAssign) {
      if (D.Trusted)
        SawTrusted = true;
      else
        SawUntrusted = true;
    }
  }
  EXPECT_TRUE(SawTrusted);   // lib's return statement
  EXPECT_TRUE(SawUntrusted); // main's return statement
}

TEST(Unroller, ShadowValuesWithConcreteInputs) {
  const char *Src = "int main(int x) { int y = x + 1; return y * 2; }";
  auto P = compile(Src);
  UnrollOptions O;
  O.ConcreteInputs = InputVector{InputValue::scalar(5)};
  UnrolledProgram UP = unrollProgram(*P, "main", O);
  ASSERT_NE(UP.RetVal, NoSsa);
  // Find the def of the return value; its shadow must be (5+1)*2 = 12.
  bool Found = false;
  for (const TraceDef &D : UP.Defs)
    if (D.Def == UP.RetVal) {
      ASSERT_TRUE(D.Shadow.has_value());
      EXPECT_EQ(*D.Shadow, 12);
      Found = true;
    }
  EXPECT_TRUE(Found);
}

TEST(Unroller, InputShapesRecorded) {
  auto P = compile("int main(int x, bool b, int a[3]) { return x; }");
  UnrolledProgram UP = unrollProgram(*P, "main");
  ASSERT_EQ(UP.InputShapes.size(), 3u);
  EXPECT_FALSE(UP.InputShapes[0].IsArray);
  EXPECT_TRUE(UP.InputShapes[1].IsBool);
  EXPECT_TRUE(UP.InputShapes[2].IsArray);
  EXPECT_EQ(UP.InputShapes[2].ArraySize, 3);
  EXPECT_EQ(UP.Inputs.size(), 5u); // x, b, a[0..2]
}

// --- encoder + trace formula end-to-end -----------------------------------------

TEST(TraceFormula, EvaluateStraightLine) {
  TraceFormula TF = makeFormula(
      "int main(int x, int y) { return x * y + 1; }");
  auto Out = TF.evaluateTest({InputValue::scalar(6), InputValue::scalar(7)});
  ASSERT_TRUE(Out.has_value());
  EXPECT_TRUE(Out->Feasible);
  EXPECT_TRUE(Out->ObligationsHold);
  EXPECT_EQ(Out->RetValue, 43);
}

TEST(TraceFormula, EvaluateBranches) {
  TraceFormula TF = makeFormula("int main(int x) {"
                                "  if (x < 0) return -x;"
                                "  return x;"
                                "}");
  auto Neg = TF.evaluateTest({InputValue::scalar(-9)});
  ASSERT_TRUE(Neg && Neg->Feasible);
  EXPECT_EQ(Neg->RetValue, 9);
  auto Pos = TF.evaluateTest({InputValue::scalar(4)});
  ASSERT_TRUE(Pos && Pos->Feasible);
  EXPECT_EQ(Pos->RetValue, 4);
}

TEST(TraceFormula, EvaluateLoop) {
  UnrollOptions O;
  O.MaxLoopUnwind = 12;
  TraceFormula TF = makeFormula("int main(int n) {"
                                "  int s = 0; int i = 1;"
                                "  while (i <= n) { s = s + i; i = i + 1; }"
                                "  return s;"
                                "}",
                                O);
  auto Out = TF.evaluateTest({InputValue::scalar(10)});
  ASSERT_TRUE(Out && Out->Feasible);
  EXPECT_EQ(Out->RetValue, 55);
}

TEST(TraceFormula, UnwindingAssumptionRejectsDeepLoops) {
  UnrollOptions O;
  O.MaxLoopUnwind = 4;
  TraceFormula TF = makeFormula("int main(int n) {"
                                "  int i = 0;"
                                "  while (i < n) { i = i + 1; }"
                                "  return i;"
                                "}",
                                O);
  // n = 3 fits in 4 unwindings; n = 10 does not and is infeasible.
  auto Ok = TF.evaluateTest({InputValue::scalar(3)});
  ASSERT_TRUE(Ok.has_value());
  EXPECT_TRUE(Ok->Feasible);
  EXPECT_EQ(Ok->RetValue, 3);
  auto Deep = TF.evaluateTest({InputValue::scalar(10)});
  ASSERT_TRUE(Deep.has_value());
  EXPECT_FALSE(Deep->Feasible);
}

TEST(TraceFormula, EvaluateCallsAndGlobals) {
  TraceFormula TF = makeFormula("int g;"
                                "void bump(int v) { g = g + v; }"
                                "int main(int x) {"
                                "  bump(x); bump(2 * x);"
                                "  return g;"
                                "}");
  auto Out = TF.evaluateTest({InputValue::scalar(5)});
  ASSERT_TRUE(Out && Out->Feasible);
  EXPECT_EQ(Out->RetValue, 15);
}

TEST(TraceFormula, EvaluateEarlyReturn) {
  TraceFormula TF = makeFormula("int main(int x) {"
                                "  if (x > 0) return 1;"
                                "  x = 99;"
                                "  return x;"
                                "}");
  auto Out = TF.evaluateTest({InputValue::scalar(7)});
  ASSERT_TRUE(Out && Out->Feasible);
  EXPECT_EQ(Out->RetValue, 1);
  auto Out2 = TF.evaluateTest({InputValue::scalar(-1)});
  ASSERT_TRUE(Out2 && Out2->Feasible);
  EXPECT_EQ(Out2->RetValue, 99);
}

TEST(TraceFormula, EvaluateArrays) {
  TraceFormula TF = makeFormula("int main(int i, int v) {"
                                "  int a[4];"
                                "  a[i] = v;"
                                "  a[3] = 7;"
                                "  return a[i] + a[3];"
                                "}");
  auto Out = TF.evaluateTest({InputValue::scalar(1), InputValue::scalar(5)});
  ASSERT_TRUE(Out && Out->Feasible);
  EXPECT_TRUE(Out->ObligationsHold);
  EXPECT_EQ(Out->RetValue, 12);
  // i = 3: the a[3] = 7 write overwrites a[i]; result 14.
  auto Out2 = TF.evaluateTest({InputValue::scalar(3), InputValue::scalar(5)});
  ASSERT_TRUE(Out2 && Out2->Feasible);
  EXPECT_EQ(Out2->RetValue, 14);
  // i = 9: obligations fail (out of bounds).
  auto Bad = TF.evaluateTest({InputValue::scalar(9), InputValue::scalar(5)});
  ASSERT_TRUE(Bad && Bad->Feasible);
  EXPECT_FALSE(Bad->ObligationsHold);
}

TEST(TraceFormula, EvaluateRecursion) {
  UnrollOptions O;
  O.MaxInlineDepth = 8;
  TraceFormula TF = makeFormula(
      "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }"
      "int main(int n) { return fact(n); }",
      O);
  auto Out = TF.evaluateTest({InputValue::scalar(5)});
  ASSERT_TRUE(Out && Out->Feasible);
  EXPECT_EQ(Out->RetValue, 120);
  // Depth 9 would need more inlining: infeasible, not wrong.
  auto Deep = TF.evaluateTest({InputValue::scalar(12)});
  ASSERT_TRUE(Deep.has_value());
  EXPECT_FALSE(Deep->Feasible);
}

TEST(TraceFormula, AssumeRejectsInputs) {
  TraceFormula TF =
      makeFormula("int main(int x) { assume(x > 0); return x; }");
  auto Ok = TF.evaluateTest({InputValue::scalar(3)});
  ASSERT_TRUE(Ok.has_value());
  EXPECT_TRUE(Ok->Feasible);
  auto Bad = TF.evaluateTest({InputValue::scalar(-3)});
  ASSERT_TRUE(Bad.has_value());
  EXPECT_FALSE(Bad->Feasible);
}

TEST(TraceFormula, CounterexampleForAssert) {
  TraceFormula TF = makeFormula("int main(int x) {"
                                "  int y = x * 2;"
                                "  assert(y != 10);"
                                "  return y;"
                                "}");
  bool Decided = false;
  auto Cex = TF.findCounterexample(Spec{}, Decided);
  ASSERT_TRUE(Decided);
  ASSERT_TRUE(Cex.has_value());
  ASSERT_EQ(Cex->size(), 1u);
  EXPECT_EQ((*Cex)[0].Scalar, 5);
}

TEST(TraceFormula, NoCounterexampleForSafeProgram) {
  TraceFormula TF = makeFormula("int main(int x) {"
                                "  int y = x * x;"
                                "  assert(y * y >= 0 || true);"
                                "  return y;"
                                "}");
  bool Decided = false;
  auto Cex = TF.findCounterexample(Spec{}, Decided);
  EXPECT_TRUE(Decided);
  EXPECT_FALSE(Cex.has_value());
}

TEST(TraceFormula, CounterexampleForGoldenOutput) {
  // Spec: main must return 1 (golden); inputs >= 4 return 0.
  TraceFormula TF = makeFormula("int main(int x) {"
                                "  if (x < 4) return 1;"
                                "  return 0;"
                                "}");
  Spec S;
  S.GoldenReturn = 1;
  bool Decided = false;
  auto Cex = TF.findCounterexample(S, Decided);
  ASSERT_TRUE(Decided);
  ASSERT_TRUE(Cex.has_value());
  EXPECT_GE((*Cex)[0].Scalar, 4);
}

TEST(TraceFormula, PaperProgram1Counterexample) {
  const char *Src = "int Array[3];\n"
                    "int main(int index) {\n"
                    "  if (index != 1)\n"
                    "    index = 2;\n"
                    "  else\n"
                    "    index = index + 2;\n"
                    "  int i = index;\n"
                    "  return Array[i];\n"
                    "}\n";
  TraceFormula TF = makeFormula(Src);
  bool Decided = false;
  auto Cex = TF.findCounterexample(Spec{}, Decided);
  ASSERT_TRUE(Decided);
  ASSERT_TRUE(Cex.has_value()) << "bounds violation must be found";
  EXPECT_EQ((*Cex)[0].Scalar, 1) << "only index == 1 fails";
}

TEST(Encoder, ConcretizeTrustedShrinksFormula) {
  const char *Src = "int lib(int x) { int t = x * x; return t + x; }"
                    "int main(int x) { int y = lib(3); return y + x; }";
  auto P = compile(Src);
  UnrollOptions UO;
  UO.TrustedFunctions.insert("lib");
  UO.ConcreteInputs = InputVector{InputValue::scalar(2)};
  UnrolledProgram UP = unrollProgram(*P, "main", UO);

  EncodeOptions Plain;
  Plain.BitWidth = UO.BitWidth;
  EncodeOptions Conc = Plain;
  Conc.ConcretizeTrusted = true;
  EncodedProgram EPlain = encodeProgram(UP, Plain);
  EncodedProgram EConc = encodeProgram(UP, Conc);
  EXPECT_LT(EConc.Formula.numClauses(), EPlain.Formula.numClauses());

  // Semantics preserved for the seeding input.
  TraceFormula TF(std::move(EConc));
  auto Out = TF.evaluateTest({InputValue::scalar(2)});
  ASSERT_TRUE(Out && Out->Feasible);
  EXPECT_EQ(Out->RetValue, 14); // lib(3) = 12, +2
}

TEST(Encoder, PerIterationGroupsAndWeights) {
  const char *Src = "int main(int n) {"
                    "  int i = 0;"
                    "  while (i < n) { i = i + 1; }"
                    "  return i;"
                    "}";
  auto P = compile(Src);
  UnrollOptions UO;
  UO.MaxLoopUnwind = 5;
  UnrolledProgram UP = unrollProgram(*P, "main", UO);

  EncodeOptions EO;
  EO.PerIterationGroups = true;
  EO.BaseWeight = 2;
  EncodedProgram EP = encodeProgram(UP, EO);
  // Expect groups for iterations 1..5 with strictly decreasing weights
  // alpha + eta - kappa (Eq. 3).
  std::map<uint32_t, uint64_t> WeightByIter;
  for (const ClauseGroup &G : EP.Formula.groups())
    if (G.Unwinding > 0)
      WeightByIter[G.Unwinding] = G.Weight;
  ASSERT_EQ(WeightByIter.size(), 5u);
  for (uint32_t K = 1; K <= 5; ++K)
    EXPECT_EQ(WeightByIter[K], 2u + 5u - K) << "iteration " << K;
}

TEST(TraceFormula, LocalizationInstanceShape) {
  TraceFormula TF = makeFormula("int main(int x) {"
                                "  int y = x + 1;"
                                "  assert(y == x + 2);"
                                "  return y;"
                                "}");
  MaxSatInstance Inst =
      TF.localizationInstance({InputValue::scalar(0)}, Spec{});
  EXPECT_FALSE(Inst.Soft.empty());
  // All soft clauses are unit selectors.
  for (const SoftClause &S : Inst.Soft)
    EXPECT_EQ(S.Lits.size(), 1u);
}
