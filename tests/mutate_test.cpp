//===- mutate_test.cpp - MutantGenerator unit tests -------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Hand-checked mutants for every fault class of the Table 2 taxonomy:
// each test pins a subject with exactly one site of the class under test,
// so the ground-truth line is forced and the rendered diff against the
// base program can be checked precisely. Plus the seed-determinism and
// interpreter round-trip contracts the fuzz harness relies on.
//
//===----------------------------------------------------------------------===//

#include "mutate/MutantGenerator.h"

#include "interp/Interpreter.h"
#include "lang/AstPrinter.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

/// Lines of \p Text, for line-wise diffing of printProgram output.
std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Text.size();
    Out.push_back(Text.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Out;
}

/// Number of printed lines that differ between two equal-length renders.
size_t countChangedLines(const std::string &A, const std::string &B) {
  std::vector<std::string> LA = splitLines(A), LB = splitLines(B);
  EXPECT_EQ(LA.size(), LB.size());
  size_t N = 0;
  for (size_t I = 0; I < LA.size() && I < LB.size(); ++I)
    N += LA[I] != LB[I];
  return N;
}

/// A subject with exactly one mutation site per requested class; each
/// per-class test points the generator at one class and checks the
/// resulting line and diff by hand.
const char *OneOfEachSource =
    "int G = 5;\n"                 // 1: Init (global wrap)
    "int main(int x) {\n"          // 2
    "  int a[4];\n"                // 3
    "  int i = 1;\n"               // 4: Init (decl literal)
    "  i = x + 2;\n"               // 5: Op/Const/AddCode/Code sites
    "  a[i] = 7;\n"                // 6: Index (non-literal index)
    "  if (x < 3) {\n"             // 7: Branch (comparison), Code
    "    i = 0;\n"                 // 8
    "  }\n"                        // 9
    "  assume(i >= 0 && i < 4);\n" // 10: spec, never a site
    "  return a[i] + G;\n"         // 11
    "}\n";

std::vector<GeneratedMutant> generateClass(const Program &P, ErrorType T,
                                           size_t N, uint64_t Seed = 1) {
  MutantGeneratorOptions Opts;
  Opts.Seed = Seed;
  Opts.Classes = {T};
  MutantGenerator Gen(P, Opts);
  return Gen.generate(N);
}

} // namespace

// --- determinism --------------------------------------------------------------

TEST(Mutate, SameSeedIsByteIdentical) {
  auto P = compile(OneOfEachSource);
  MutantGeneratorOptions Opts;
  Opts.Seed = 42;
  MutantGenerator A(*P, Opts), B(*P, Opts);
  auto MA = A.generate(24), MB = B.generate(24);
  ASSERT_EQ(MA.size(), MB.size());
  ASSERT_FALSE(MA.empty());
  for (size_t I = 0; I < MA.size(); ++I) {
    EXPECT_EQ(MA[I].Spec.Type, MB[I].Spec.Type) << "mutant " << I;
    EXPECT_EQ(MA[I].Spec.Line, MB[I].Spec.Line) << "mutant " << I;
    EXPECT_EQ(MA[I].Spec.Description, MB[I].Spec.Description) << "mutant " << I;
    EXPECT_EQ(printProgram(*MA[I].Prog), printProgram(*MB[I].Prog))
        << "mutant " << I;
  }
}

TEST(Mutate, GenerateContinuesOneStream) {
  // generate(4) twice must equal generate(8): the stream is stateful, so
  // the fuzz harness can draw incrementally without re-seeding.
  auto P = compile(OneOfEachSource);
  MutantGeneratorOptions Opts;
  Opts.Seed = 7;
  MutantGenerator Inc(*P, Opts), Whole(*P, Opts);
  auto First = Inc.generate(4), Second = Inc.generate(4);
  auto All = Whole.generate(8);
  ASSERT_EQ(First.size() + Second.size(), All.size());
  for (size_t I = 0; I < All.size(); ++I) {
    const GeneratedMutant &M =
        I < First.size() ? First[I] : Second[I - First.size()];
    EXPECT_EQ(M.Spec.Description, All[I].Spec.Description) << "mutant " << I;
    EXPECT_EQ(printProgram(*M.Prog), printProgram(*All[I].Prog))
        << "mutant " << I;
  }
}

TEST(Mutate, RoundRobinCoversAllClassesWithSites) {
  auto P = compile(OneOfEachSource);
  MutantGeneratorOptions Opts;
  Opts.Seed = 3;
  MutantGenerator Gen(*P, Opts);
  for (ErrorType T : AllErrorTypes)
    EXPECT_GT(Gen.siteCount(T), 0u) << errorTypeName(T);
  auto Mutants = Gen.generate(16);
  size_t Seen[NumErrorTypes] = {};
  for (const GeneratedMutant &M : Mutants)
    ++Seen[static_cast<size_t>(M.Spec.Type)];
  for (ErrorType T : AllErrorTypes)
    EXPECT_GT(Seen[static_cast<size_t>(T)], 0u) << errorTypeName(T);
}

// --- hand-checked mutants, one per fault class --------------------------------

TEST(Mutate, OpMutantSwapsOneOperatorInPlace) {
  const char *Src = "int main(int x) {\n"
                    "  int y;\n"
                    "  y = x + 1;\n" // the only near-miss binary operator
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  auto Ms = generateClass(*P, ErrorType::Op, 4);
  ASSERT_FALSE(Ms.empty());
  std::string Base = printProgram(*P);
  for (const GeneratedMutant &M : Ms) {
    EXPECT_EQ(M.Spec.Type, ErrorType::Op);
    EXPECT_EQ(M.Spec.Line, 3u);
    // '+' has exactly one near miss: '-'.
    EXPECT_EQ(M.Spec.Description, "line 3: '+' -> '-'");
    EXPECT_EQ(countChangedLines(Base, printProgram(*M.Prog)), 1u);
    EXPECT_NE(printProgram(*M.Prog).find("(x - 1)"), std::string::npos);
  }
}

TEST(Mutate, ConstMutantPerturbsTheLiteral) {
  const char *Src = "int main(int x) {\n"
                    "  int y;\n"
                    "  y = x + 600;\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  auto Ms = generateClass(*P, ErrorType::Const, 8);
  ASSERT_FALSE(Ms.empty());
  std::string Base = printProgram(*P);
  for (const GeneratedMutant &M : Ms) {
    EXPECT_EQ(M.Spec.Line, 3u);
    // Delta is one of {+1,-1,+2,-2} around the original 600.
    EXPECT_EQ(M.Spec.Description.find("line 3: constant 600 -> "), 0u)
        << M.Spec.Description;
    EXPECT_EQ(countChangedLines(Base, printProgram(*M.Prog)), 1u);
    EXPECT_EQ(printProgram(*M.Prog).find("600"), std::string::npos)
        << "the original literal must be gone";
  }
}

TEST(Mutate, AssignMutantRedirectsTheRhsVariable) {
  const char *Src = "int main(int x, int y) {\n"
                    "  int r;\n"
                    "  r = x;\n" // only scalar VarRef rhs; alternatives: y, r
                    "  return r;\n"
                    "}\n";
  auto P = compile(Src);
  auto Ms = generateClass(*P, ErrorType::Assign, 6);
  ASSERT_FALSE(Ms.empty());
  std::string Base = printProgram(*P);
  for (const GeneratedMutant &M : Ms) {
    EXPECT_EQ(M.Spec.Line, 3u);
    EXPECT_EQ(M.Spec.Description.find("line 3: rhs variable -> '"), 0u)
        << M.Spec.Description;
    EXPECT_NE(M.Spec.Description, "line 3: rhs variable -> 'x'")
        << "must pick a different name";
    EXPECT_EQ(countChangedLines(Base, printProgram(*M.Prog)), 1u);
  }
}

TEST(Mutate, CodeMutantDropsTheStatement) {
  const char *Src = "int main(int x) {\n"
                    "  int y;\n"
                    "  y = 0;\n"
                    "  y = y + x;\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  auto Ms = generateClass(*P, ErrorType::Code, 6);
  ASSERT_FALSE(Ms.empty());
  size_t BaseLines = splitLines(printProgram(*P)).size();
  for (const GeneratedMutant &M : Ms) {
    EXPECT_TRUE(M.Spec.Line == 3u || M.Spec.Line == 4u) << M.Spec.Line;
    EXPECT_NE(M.Spec.Description.find("dropped statement"), std::string::npos);
    // The missing-code ground truth: the statement is gone from the
    // mutant, one printed line shorter.
    EXPECT_EQ(splitLines(printProgram(*M.Prog)).size(), BaseLines - 1);
  }
}

TEST(Mutate, AddCodeMutantDuplicatesTheStatement) {
  const char *Src = "int main(int x) {\n"
                    "  int y;\n"
                    "  y = x + 1;\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  auto Ms = generateClass(*P, ErrorType::AddCode, 4);
  ASSERT_FALSE(Ms.empty());
  size_t BaseLines = splitLines(printProgram(*P)).size();
  for (const GeneratedMutant &M : Ms) {
    EXPECT_EQ(M.Spec.Line, 3u);
    EXPECT_NE(M.Spec.Description.find("duplicated statement"),
              std::string::npos);
    EXPECT_EQ(splitLines(printProgram(*M.Prog)).size(), BaseLines + 1);
  }
}

TEST(Mutate, InitMutantPerturbsDeclOrGlobalInitializer) {
  const char *Src = "int G = 10;\n"
                    "int main(int x) {\n"
                    "  int y = 20;\n"
                    "  return y + G + x;\n"
                    "}\n";
  auto P = compile(Src);
  auto Ms = generateClass(*P, ErrorType::Init, 8);
  ASSERT_FALSE(Ms.empty());
  bool SawGlobal = false, SawDecl = false;
  for (const GeneratedMutant &M : Ms) {
    ASSERT_TRUE(M.Spec.Line == 1u || M.Spec.Line == 3u) << M.Spec.Line;
    // Initializers have two flavors: the literal perturbed directly, or
    // the whole initializer skewed by +/-1. Both tag the init line.
    SawGlobal |= M.Spec.Line == 1u;
    SawDecl |= M.Spec.Line == 3u;
    std::string Prefix = "line " + std::to_string(M.Spec.Line) + ": init ";
    EXPECT_EQ(M.Spec.Description.find(Prefix), 0u) << M.Spec.Description;
  }
  EXPECT_TRUE(SawGlobal);
  EXPECT_TRUE(SawDecl);
}

TEST(Mutate, IndexMutantSkewsTheSubscript) {
  const char *Src = "int main(int i) {\n"
                    "  int a[4];\n"
                    "  assume(i >= 0 && i < 3);\n"
                    "  a[i] = 1;\n"
                    "  return a[i];\n"
                    "}\n";
  auto P = compile(Src);
  auto Ms = generateClass(*P, ErrorType::Index, 6);
  ASSERT_FALSE(Ms.empty());
  std::string Base = printProgram(*P);
  for (const GeneratedMutant &M : Ms) {
    EXPECT_TRUE(M.Spec.Line == 4u || M.Spec.Line == 5u) << M.Spec.Line;
    EXPECT_NE(M.Spec.Description.find("index skewed by"), std::string::npos)
        << M.Spec.Description;
    EXPECT_EQ(countChangedLines(Base, printProgram(*M.Prog)), 1u);
  }
}

TEST(Mutate, BranchMutantNegatesTheCondition) {
  const char *Src = "int main(int x) {\n"
                    "  int y;\n"
                    "  y = 0;\n"
                    "  if (x < 5) {\n"
                    "    y = 1;\n"
                    "  }\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  auto Ms = generateClass(*P, ErrorType::Branch, 4);
  ASSERT_FALSE(Ms.empty());
  std::string Base = printProgram(*P);
  for (const GeneratedMutant &M : Ms) {
    EXPECT_EQ(M.Spec.Line, 4u);
    // Comparison conditions negate by the complementary operator.
    EXPECT_EQ(M.Spec.Description, "line 4: '<' -> '>='");
    EXPECT_EQ(countChangedLines(Base, printProgram(*M.Prog)), 1u);
    EXPECT_NE(printProgram(*M.Prog).find("(x >= 5)"), std::string::npos);
  }
}

// --- exclusions ---------------------------------------------------------------

TEST(Mutate, SpecAndProtectedLinesAreNeverMutated) {
  auto P = compile(OneOfEachSource);
  MutantGeneratorOptions Opts;
  Opts.Seed = 5;
  Opts.ProtectedLines = {5}; // the Op/Const/AddCode/Code hub line
  MutantGenerator Gen(*P, Opts);
  auto Ms = Gen.generate(64);
  ASSERT_FALSE(Ms.empty());
  for (const GeneratedMutant &M : Ms) {
    EXPECT_NE(M.Spec.Line, 5u) << M.Spec.Description;
    EXPECT_NE(M.Spec.Line, 10u)
        << "the assume() spec must never be a fault site: "
        << M.Spec.Description;
  }
}

// --- round trip ---------------------------------------------------------------

TEST(Mutate, MutantsReanalyzeAndRunInTheInterpreter) {
  auto P = compile(OneOfEachSource);
  MutantGeneratorOptions Opts;
  Opts.Seed = 9;
  MutantGenerator Gen(*P, Opts);
  auto Ms = Gen.generate(32);
  ASSERT_FALSE(Ms.empty());
  ExecOptions EO;
  EO.BitWidth = 16;
  EO.MaxSteps = 100000;
  for (const GeneratedMutant &M : Ms) {
    Interpreter I(*M.Prog, EO);
    for (int64_t X : {0, 2, 5}) {
      ExecResult R = I.run("main", {InputValue::scalar(X)});
      // Any semantic outcome is fine (traps included); what must never
      // happen is a malformed program (SetupError).
      EXPECT_NE(R.Status, ExecStatus::SetupError)
          << M.Spec.Description << " x=" << X;
    }
  }
}
