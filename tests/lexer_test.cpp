//===- lexer_test.cpp - Tokenizer tests ----------------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

std::vector<Token> lex(std::string_view Src) {
  DiagEngine Diags;
  Lexer L(Src, Diags);
  auto Tokens = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render();
  return Tokens;
}

std::vector<TokenKind> kinds(std::string_view Src) {
  std::vector<TokenKind> Ks;
  for (const Token &T : lex(Src))
    Ks.push_back(T.Kind);
  return Ks;
}

} // namespace

TEST(Lexer, EmptyInput) {
  auto Ks = kinds("");
  ASSERT_EQ(Ks.size(), 1u);
  EXPECT_EQ(Ks[0], TokenKind::Eof);
}

TEST(Lexer, Keywords) {
  auto Ks = kinds("int bool void true false if else while for return assert assume");
  std::vector<TokenKind> Expected = {
      TokenKind::KwInt,   TokenKind::KwBool,  TokenKind::KwVoid,
      TokenKind::KwTrue,  TokenKind::KwFalse, TokenKind::KwIf,
      TokenKind::KwElse,  TokenKind::KwWhile, TokenKind::KwFor,
      TokenKind::KwReturn, TokenKind::KwAssert, TokenKind::KwAssume,
      TokenKind::Eof};
  EXPECT_EQ(Ks, Expected);
}

TEST(Lexer, IdentifiersVsKeywords) {
  auto Ts = lex("iff intx _x x_1 forx");
  ASSERT_EQ(Ts.size(), 6u);
  for (size_t I = 0; I + 1 < Ts.size(); ++I)
    EXPECT_EQ(Ts[I].Kind, TokenKind::Identifier) << I;
  EXPECT_EQ(Ts[0].Text, "iff");
  EXPECT_EQ(Ts[2].Text, "_x");
}

TEST(Lexer, IntegerLiterals) {
  auto Ts = lex("0 7 12345");
  EXPECT_EQ(Ts[0].IntValue, 0);
  EXPECT_EQ(Ts[1].IntValue, 7);
  EXPECT_EQ(Ts[2].IntValue, 12345);
}

TEST(Lexer, MultiCharOperators) {
  auto Ks = kinds("<= >= == != && || << >> < > = ! & |");
  std::vector<TokenKind> Expected = {
      TokenKind::Le,       TokenKind::Ge,   TokenKind::EqEq,
      TokenKind::NotEq,    TokenKind::AmpAmp, TokenKind::PipePipe,
      TokenKind::Shl,      TokenKind::Shr,  TokenKind::Lt,
      TokenKind::Gt,       TokenKind::Assign, TokenKind::Bang,
      TokenKind::Amp,      TokenKind::Pipe, TokenKind::Eof};
  EXPECT_EQ(Ks, Expected);
}

TEST(Lexer, LineComments) {
  auto Ks = kinds("x // comment with * tokens < >\ny");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Ks, Expected);
}

TEST(Lexer, BlockComments) {
  auto Ks = kinds("a /* multi\nline\ncomment */ b");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Ks, Expected);
}

TEST(Lexer, LineNumbersTracked) {
  auto Ts = lex("a\nb\n  c");
  EXPECT_EQ(Ts[0].Loc.Line, 1u);
  EXPECT_EQ(Ts[1].Loc.Line, 2u);
  EXPECT_EQ(Ts[2].Loc.Line, 3u);
  EXPECT_EQ(Ts[2].Loc.Col, 3u);
}

TEST(Lexer, UnknownCharacterDiagnosed) {
  DiagEngine Diags;
  Lexer L("a @ b", Diags);
  auto Ts = L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
  bool SawError = false;
  for (const Token &T : Ts)
    SawError |= T.is(TokenKind::Error);
  EXPECT_TRUE(SawError);
}

TEST(Lexer, UnterminatedBlockCommentDiagnosed) {
  DiagEngine Diags;
  Lexer L("a /* never closed", Diags);
  (void)L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}
