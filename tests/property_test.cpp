//===- property_test.cpp - Differential encoder/interpreter testing ---------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// The trace formula is only trustworthy if the CNF encoding computes the
// exact same function as the reference interpreter. This harness generates
// random mini-C programs (arithmetic, branches, bounded loops, arrays,
// asserts, assumes) and checks, for random inputs:
//   interpreter Ok          <-> formula feasible, obligations hold, and the
//                               return values agree bit for bit;
//   interpreter Assert/Bounds-> obligations fail;
//   interpreter AssumeFail   -> formula infeasible.
//
//===----------------------------------------------------------------------===//

#include "bmc/TraceFormula.h"

#include "bmc/Encoder.h"
#include "bmc/Unroller.h"
#include "lang/Sema.h"
#include "reduce/Slicer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

/// Generates a random mini-C program over int params a, b and bool p.
class ProgramGen {
public:
  explicit ProgramGen(Rng &R) : R(R) {}

  std::string generate() {
    Src.clear();
    Vars = {"a", "b"};
    Src += "int main(int a, int b, bool p) {\n";
    if (R.chance(1, 3))
      Src += "  assume(a > -50 && a < 50);\n";
    int NumDecls = static_cast<int>(R.range(1, 3));
    for (int I = 0; I < NumDecls; ++I) {
      std::string Name = "v" + std::to_string(I);
      Src += "  int " + Name + " = " + intExpr(2) + ";\n";
      Vars.push_back(Name);
    }
    if (R.chance(1, 2)) {
      Src += "  int arr[4];\n";
      HasArray = true;
      Src += "  arr[" + intExpr(1) + "] = " + intExpr(2) + ";\n";
    }
    int NumStmts = static_cast<int>(R.range(3, 7));
    for (int I = 0; I < NumStmts; ++I)
      stmt(1);
    if (R.chance(2, 3))
      Src += "  assert(" + boolExpr(2) + ");\n";
    Src += "  return " + intExpr(3) + ";\n";
    Src += "}\n";
    return Src;
  }

private:
  void stmt(int Depth) {
    switch (R.below(Depth > 2 ? 2 : 4)) {
    case 0:
      Src += "  " + pickVar() + " = " + intExpr(3) + ";\n";
      return;
    case 1:
      if (HasArray) {
        Src += "  arr[" + intExpr(1) + "] = " + intExpr(2) + ";\n";
        return;
      }
      Src += "  " + pickVar() + " = " + intExpr(2) + ";\n";
      return;
    case 2: {
      Src += "  if (" + boolExpr(2) + ") {\n";
      stmt(Depth + 1);
      if (R.chance(1, 2)) {
        Src += "  } else {\n";
        stmt(Depth + 1);
      }
      Src += "  }\n";
      return;
    }
    case 3: {
      // Bounded counting loop; w# names are unique per loop.
      std::string W = "w" + std::to_string(LoopCount++);
      int64_t Bound = R.range(1, 3);
      Src += "  int " + W + " = 0;\n";
      Src += "  while (" + W + " < " + std::to_string(Bound) + ") {\n";
      stmt(Depth + 1);
      Src += "  " + W + " = " + W + " + 1;\n";
      Src += "  }\n";
      return;
    }
    }
  }

  std::string pickVar() { return Vars[R.below(Vars.size())]; }

  std::string intExpr(int Depth) {
    if (Depth == 0 || R.chance(1, 3)) {
      if (R.chance(1, 3))
        return std::to_string(R.range(-20, 20));
      if (HasArray && R.chance(1, 5))
        return "arr[" + std::to_string(R.range(0, 3)) + "]";
      return pickVar();
    }
    static const char *Ops[] = {"+", "-", "*", "&", "|", "^",
                                "<<", ">>", "/", "%"};
    const char *Op = Ops[R.below(10)];
    std::string L = intExpr(Depth - 1);
    std::string Rhs = intExpr(Depth - 1);
    if (R.chance(1, 6))
      return "(p ? " + L + " : " + Rhs + ")";
    return "(" + L + " " + Op + " " + Rhs + ")";
  }

  std::string boolExpr(int Depth) {
    if (Depth == 0 || R.chance(1, 3)) {
      static const char *Cmps[] = {"<", "<=", ">", ">=", "==", "!="};
      return "(" + intExpr(1) + " " + Cmps[R.below(6)] + " " + intExpr(1) +
             ")";
    }
    switch (R.below(3)) {
    case 0:
      return "(" + boolExpr(Depth - 1) + " && " + boolExpr(Depth - 1) + ")";
    case 1:
      return "(" + boolExpr(Depth - 1) + " || " + boolExpr(Depth - 1) + ")";
    default:
      return "!" + boolExpr(Depth - 1);
    }
  }

  Rng &R;
  std::string Src;
  std::vector<std::string> Vars;
  bool HasArray = false;
  int LoopCount = 0;
};

struct DiffCase {
  uint64_t Seed;
  int Programs;
};

class DifferentialTest : public ::testing::TestWithParam<DiffCase> {};

} // namespace

TEST_P(DifferentialTest, EncoderMatchesInterpreter) {
  const auto &P = GetParam();
  Rng R(P.Seed);
  const int Width = 8;

  int Checked = 0;
  for (int N = 0; N < P.Programs; ++N) {
    ProgramGen Gen(R);
    std::string Src = Gen.generate();
    DiagEngine Diags;
    auto Prog = parseAndAnalyze(Src, Diags);
    ASSERT_TRUE(Prog != nullptr) << Diags.render() << "\n" << Src;

    UnrollOptions UO;
    UO.BitWidth = Width;
    UO.MaxLoopUnwind = 5;
    UnrolledProgram UP = unrollProgram(*Prog, "main", UO);
    EncodeOptions EO;
    EO.BitWidth = Width;
    TraceFormula TF(encodeProgram(UP, EO));

    ExecOptions IO;
    IO.BitWidth = Width;
    IO.CheckDivByZero = false; // encoder-aligned /0 -> 0

    Interpreter Interp(*Prog, IO);

    for (int T = 0; T < 6; ++T) {
      InputVector In = {
          InputValue::scalar(wrapToWidth(static_cast<int64_t>(R.next()), Width)),
          InputValue::scalar(wrapToWidth(static_cast<int64_t>(R.next()), Width)),
          InputValue::scalar(R.chance(1, 2) ? 1 : 0)};
      ExecResult IR = Interp.run("main", In);
      auto FR = TF.evaluateTest(In);
      ASSERT_TRUE(FR.has_value());

      if (IR.Status == ExecStatus::AssumeFail) {
        EXPECT_FALSE(FR->Feasible)
            << "assume divergence\n"
            << Src << "inputs: " << In[0].Scalar << "," << In[1].Scalar
            << "," << In[2].Scalar;
        ++Checked;
        continue;
      }
      ASSERT_NE(IR.Status, ExecStatus::StepLimit) << Src;
      ASSERT_TRUE(FR->Feasible)
          << "feasibility divergence\n"
          << Src << "inputs: " << In[0].Scalar << "," << In[1].Scalar << ","
          << In[2].Scalar;

      bool InterpOk = IR.Status == ExecStatus::Ok;
      EXPECT_EQ(FR->ObligationsHold, InterpOk)
          << "obligation divergence (interp status "
          << static_cast<int>(IR.Status) << ")\n"
          << Src << "inputs: " << In[0].Scalar << "," << In[1].Scalar << ","
          << In[2].Scalar;
      if (InterpOk) {
        EXPECT_EQ(FR->RetValue, IR.ReturnValue)
            << "return divergence\n"
            << Src << "inputs: " << In[0].Scalar << "," << In[1].Scalar
            << "," << In[2].Scalar;
      }
      ++Checked;
    }
  }
  EXPECT_GT(Checked, P.Programs * 3) << "too few comparisons executed";
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DifferentialTest,
                         ::testing::Values(DiffCase{31, 12}, DiffCase{32, 12},
                                           DiffCase{33, 12}, DiffCase{34, 12},
                                           DiffCase{35, 12}, DiffCase{36, 12},
                                           DiffCase{37, 12},
                                           DiffCase{38, 12}));

// Property: slicing preserves feasibility, obligation truth, and the
// return value for every test (it only removes what the spec cannot see).
TEST(DifferentialSlicing, SlicedFormulaEquivalent) {
  Rng R(4242);
  for (int N = 0; N < 20; ++N) {
    ProgramGen Gen(R);
    std::string Src = Gen.generate();
    DiagEngine Diags;
    auto Prog = parseAndAnalyze(Src, Diags);
    ASSERT_TRUE(Prog != nullptr) << Diags.render();

    UnrollOptions UO;
    UO.BitWidth = 8;
    UO.MaxLoopUnwind = 5;
    UnrolledProgram UP = unrollProgram(*Prog, "main", UO);
    UnrolledProgram Sliced = sliceProgram(UP);

    EncodeOptions EO;
    EO.BitWidth = 8;
    TraceFormula Full(encodeProgram(UP, EO));
    TraceFormula Lean(encodeProgram(Sliced, EO));

    for (int T = 0; T < 4; ++T) {
      InputVector In = {
          InputValue::scalar(wrapToWidth(static_cast<int64_t>(R.next()), 8)),
          InputValue::scalar(wrapToWidth(static_cast<int64_t>(R.next()), 8)),
          InputValue::scalar(R.chance(1, 2) ? 1 : 0)};
      auto A = Full.evaluateTest(In);
      auto B = Lean.evaluateTest(In);
      ASSERT_TRUE(A.has_value() && B.has_value());
      EXPECT_EQ(A->Feasible, B->Feasible) << Src;
      if (A->Feasible && B->Feasible) {
        EXPECT_EQ(A->ObligationsHold, B->ObligationsHold) << Src;
        EXPECT_EQ(A->RetValue, B->RetValue) << Src;
      }
    }
  }
}
