//===- sema_test.cpp - Semantic analysis tests ---------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

std::unique_ptr<Program> semaOk(std::string_view Src) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

void semaFails(std::string_view Src, const char *ExpectSubstr = nullptr) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P == nullptr);
  EXPECT_TRUE(Diags.hasErrors());
  if (ExpectSubstr) {
    EXPECT_NE(Diags.render().find(ExpectSubstr), std::string::npos)
        << "diagnostics were:\n"
        << Diags.render();
  }
}

} // namespace

TEST(Sema, ResolvesVariables) {
  auto P = semaOk("int f(int x) { int y = x + 1; return y; }");
  const auto &Stmts = P->functions()[0]->body()->stmts();
  const auto *D = cast<DeclStmt>(Stmts[0].get());
  const auto *B = cast<BinaryExpr>(D->decl()->init());
  const auto *X = cast<VarRef>(B->lhs());
  EXPECT_EQ(X->decl(), P->functions()[0]->params()[0].get());
  EXPECT_TRUE(X->type().isInt());
}

TEST(Sema, ResolvesGlobals) {
  auto P = semaOk("int g = 3; int f() { return g; }");
  const auto *Ret = cast<ReturnStmt>(P->functions()[0]->body()->stmts()[0].get());
  EXPECT_EQ(cast<VarRef>(Ret->value())->decl(), P->globals()[0].get());
}

TEST(Sema, ShadowingInNestedScopes) {
  auto P = semaOk("int f(int x) { { int y = 1; x = y; } { bool y = true; if (y) x = 2; } return x; }");
  EXPECT_TRUE(P != nullptr);
}

TEST(Sema, UndeclaredVariable) {
  semaFails("int f() { return q; }", "undeclared variable 'q'");
}

TEST(Sema, UseBeforeDeclarationInInitializer) {
  semaFails("int f() { int x = x; return x; }", "undeclared");
}

TEST(Sema, RedeclarationSameScope) {
  semaFails("int f() { int x = 1; int x = 2; return x; }", "redeclaration");
}

TEST(Sema, TypeErrors) {
  semaFails("int f(bool b) { return b + 1; }", "must be int");
  semaFails("int f(int x) { if (x) return 1; return 0; }", "must be bool");
  semaFails("int f(int x) { while (x + 1) x = 0; return x; }", "must be bool");
  semaFails("bool f(int x) { return !x; }", "must be bool");
  semaFails("int f(bool a, bool b) { return a && b; }", "return type mismatch");
  semaFails("int f(int x) { bool b = x; return x; }", "cannot initialize");
  semaFails("void f(int x) { assert(x); }", "must be bool");
  semaFails("int f(int x, bool b) { return x == b ? 1 : 0; }", "same scalar");
}

TEST(Sema, EqualityOnBools) {
  semaOk("bool f(bool a, bool b) { return a == b; }");
  semaOk("bool f(bool a, bool b) { return a != b; }");
}

TEST(Sema, ConditionalArmTypesMustAgree) {
  semaFails("int f(bool c) { return c ? 1 : true; }", "same scalar");
  semaOk("int f(bool c) { return c ? 1 : 2; }");
}

TEST(Sema, ArrayRules) {
  semaOk("int f(int a[3], int i) { a[i] = a[0] + 1; return a[i]; }");
  semaFails("int f(int x) { return x[0]; }", "not an array");
  semaFails("int a[3]; int f() { a = a; return 0; }", "whole arrays");
  semaFails("int a[3]; bool f() { return a[true ? 0 : 1] < a; }");
  semaFails("int f(int a[3]) { return a[true]; }", "index must be int");
}

TEST(Sema, CallChecking) {
  semaOk("int g(int x) { return x; } int f() { return g(1); }");
  semaFails("int f() { return g(1); }", "undeclared function");
  semaFails("int g(int x) { return x; } int f() { return g(); }",
            "wrong number of arguments");
  semaFails("int g(int x) { return x; } int f(bool b) { return g(b); }",
            "must be int");
}

TEST(Sema, ArrayArgumentMustBeArrayVariable) {
  semaOk("int g(int a[3]) { return a[0]; } int b[3]; int f() { return g(b); }");
  semaFails("int g(int a[3]) { return a[0]; } int f(int x) { return g(x); }");
  semaFails(
      "int g(int a[3]) { return a[0]; } int b[4]; int f() { return g(b); }",
      "array argument");
}

TEST(Sema, VoidRules) {
  semaOk("void f() { return; }");
  semaFails("void f() { return 1; }", "void function");
  semaFails("int f() { return; }", "must return a value");
  semaFails("void v() {} int f() { int x = v(); return x; }");
}

TEST(Sema, OnlyCallsAsExprStatements) {
  semaOk("void g() {} void f() { g(); }");
}

TEST(Sema, DuplicateFunction) {
  semaFails("int f() { return 1; } int f() { return 2; }", "redefinition");
}

TEST(Sema, GlobalInitMustBeLiteral) {
  semaOk("int g = 5; bool h = false;");
  semaFails("int g = 1 + 2;", "literal constant");
}

TEST(Sema, RecursionDetection) {
  auto P = semaOk("int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }"
                  "int helper(int n) { return fact(n); }"
                  "int plain(int n) { return n + 1; }");
  EXPECT_TRUE(P->findFunction("fact")->isRecursive());
  EXPECT_FALSE(P->findFunction("helper")->isRecursive());
  EXPECT_FALSE(P->findFunction("plain")->isRecursive());
}

TEST(Sema, MutualRecursionBothMarked) {
  // Note: mini-C resolves calls against the whole program, so forward
  // references work without prototypes.
  auto P = semaOk("int even(int n) { if (n == 0) return 1; return odd(n - 1); }"
                  "int odd(int n) { if (n == 0) return 0; return even(n - 1); }");
  EXPECT_TRUE(P->findFunction("even")->isRecursive());
  EXPECT_TRUE(P->findFunction("odd")->isRecursive());
}

TEST(Sema, CloneThenReanalyze) {
  auto P = semaOk("int g; int f(int x) { g = x * 2; return g + 1; }");
  auto Q = cloneProgram(*P);
  DiagEngine Diags;
  EXPECT_TRUE(analyzeProgram(*Q, Diags)) << Diags.render();
  // Resolutions must point into the clone, not the original.
  const auto *A = cast<AssignStmt>(Q->functions()[0]->body()->stmts()[0].get());
  EXPECT_EQ(A->targetDecl(), Q->globals()[0].get());
  EXPECT_NE(A->targetDecl(), P->globals()[0].get());
}
